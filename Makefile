#!/usr/bin/make -f

########################################
### Simulations & CI targets
#
# The simulation campaign is cached in a content-addressed run store
# (internal/runstore); point RUNSTORE elsewhere to isolate runs, or
# delete the directory to force a cold campaign. Modeled on the
# multi-seed/cached-run sims.mk discipline of cosmos-sdk chains.

RUNSTORE ?= $(CURDIR)/.runstore

# µop counts: BENCH_OPS feeds the shared benchmark campaign through
# REPRO_BENCH_OPS (default in bench_test.go is the paper-faithful 1.2M);
# SMOKE_OPS keeps the CI simulation smoke short.
BENCH_OPS ?= 120000
SMOKE_OPS ?= 60000

all: lint test

build:
	@echo "Building all packages..."
	@go build ./...

test:
	@echo "Running unit tests..."
	@go test ./...

test-short:
	@echo "Running short unit tests (skips full campaigns)..."
	@go test -short ./...

race:
	@echo "Running unit tests under the race detector..."
	@go test -race ./...

lint:
	@echo "Checking gofmt..."
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@echo "Running go vet..."
	@go vet ./...

bench-smoke:
	@echo "Running benchmark smoke (ops=$(BENCH_OPS)) against the run store at $(RUNSTORE)..."
	@REPRO_RUNSTORE=$(RUNSTORE) REPRO_BENCH_OPS=$(BENCH_OPS) \
		go test -run '^$$' -bench 'Fig2ModelAccuracy|SimulatorThroughput|TraceGeneration|ModelPredict' \
		-benchtime 1x -benchmem .

bench-full:
	@echo "Running the full paper benchmark campaign. This may take awhile!"
	@REPRO_RUNSTORE=$(RUNSTORE) go test -run '^$$' -bench . -benchtime 1x -benchmem .

sim-smoke:
	@echo "Running a short experiment campaign (ops=$(SMOKE_OPS)) against the run store..."
	@go run ./cmd/experiments -run fig2 -ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) > /dev/null
	@echo "Re-running warm: must be pure store hits..."
	@go run ./cmd/experiments -run fig2 -ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) 2>&1 >/dev/null \
		| grep "0 simulated (100.0% hit rate)"

sweep-smoke:
	@echo "Running a 3-point ROB sweep (ops=$(SMOKE_OPS)) against the run store..."
	@go run ./cmd/sweep -base core2 -param rob -values 48,96,192 -suite cpu2000 \
		-ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) > /dev/null
	@echo "Re-running warm: must be pure store hits..."
	@go run ./cmd/sweep -base core2 -param rob -values 48,96,192 -suite cpu2000 \
		-ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) 2>&1 >/dev/null \
		| grep "0 simulated (100.0% hit rate)"

fuzz-smoke:
	@echo "Fuzzing campaign parsing for 20s..."
	@go test ./internal/experiments -run '^$$' -fuzz '^FuzzParseCampaign$$' -fuzztime 20s

# serve-smoke depends on sim-smoke/sweep-smoke so the run store is warm:
# the whole point of the assertion is that a warm store lets the daemon
# answer predict and sweep requests without dispatching one simulation.
serve-smoke: sim-smoke sweep-smoke
	@echo "Starting mecpid on a random port against the run store at $(RUNSTORE)..."
	@mkdir -p $(CURDIR)/.bin
	@go build -o $(CURDIR)/.bin/mecpid ./cmd/mecpid
	@rm -f $(CURDIR)/.bin/mecpid.addr
	@$(CURDIR)/.bin/mecpid -addr 127.0.0.1:0 -addrfile $(CURDIR)/.bin/mecpid.addr \
		-store $(RUNSTORE) -ops $(SMOKE_OPS) -starts 2 & \
	pid=$$!; \
	trap "kill $$pid 2>/dev/null" EXIT; \
	for i in $$(seq 1 100); do [ -s $(CURDIR)/.bin/mecpid.addr ] && break; sleep 0.1; done; \
	addr=$$(cat $(CURDIR)/.bin/mecpid.addr); \
	echo "daemon at $$addr; hitting healthz, predict, sweep..." && \
	curl -fsS "http://$$addr/healthz" > /dev/null && \
	curl -fsS -X POST "http://$$addr/v1/predict" \
		-d '{"machine": {"name": "core2"}, "suite": "cpu2006", "workload": "mcf"}' > /dev/null && \
	curl -fsS -X POST "http://$$addr/v1/sweep" \
		-d '{"base": {"name": "core2"}, "param": "rob", "values": [48, 96, 192], "suite": "cpu2000"}' > /dev/null && \
	echo "Asserting the warm store dispatched zero simulations..." && \
	curl -fsS "http://$$addr/v1/stats" | grep -q '"simulated": 0'

clean-store:
	@echo "Removing the run store at $(RUNSTORE)..."
	@rm -rf $(RUNSTORE)

.PHONY: all build test test-short race lint bench-smoke bench-full sim-smoke sweep-smoke fuzz-smoke serve-smoke clean-store
