#!/usr/bin/make -f

########################################
### Simulations & CI targets
#
# The simulation campaign is cached in a content-addressed run store
# (internal/runstore); point RUNSTORE elsewhere to isolate runs, or
# delete the directory to force a cold campaign. Modeled on the
# multi-seed/cached-run sims.mk discipline of cosmos-sdk chains.

RUNSTORE ?= $(CURDIR)/.runstore

# µop counts: BENCH_OPS feeds the shared benchmark campaign through
# REPRO_BENCH_OPS (default in bench_test.go is the paper-faithful 1.2M);
# SMOKE_OPS keeps the CI simulation smoke short.
BENCH_OPS ?= 120000
SMOKE_OPS ?= 60000

all: lint test

build:
	@echo "Building all packages..."
	@go build ./...

test:
	@echo "Running unit tests..."
	@go test ./...

test-short:
	@echo "Running short unit tests (skips full campaigns)..."
	@go test -short ./...

race:
	@echo "Running unit tests under the race detector..."
	@go test -race ./...

# The offline-safe checks; CI additionally runs `make staticcheck`,
# which needs the module proxy to fetch the pinned tool.
lint:
	@echo "Checking gofmt..."
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@echo "Running go vet..."
	@go vet ./...

# Pinned so CI runs stay reproducible; bump deliberately.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2025.1

staticcheck:
	@echo "Running staticcheck ($(STATICCHECK))..."
	@go run $(STATICCHECK) ./...

bench-smoke:
	@echo "Running benchmark smoke (ops=$(BENCH_OPS)) against the run store at $(RUNSTORE)..."
	@REPRO_RUNSTORE=$(RUNSTORE) REPRO_BENCH_OPS=$(BENCH_OPS) \
		go test -run '^$$' -bench 'Fig2ModelAccuracy|SimulatorThroughput|TraceGeneration|TraceReplay|GridPlan|ModelPredict|TLBAccess|IQSchedule|SeedsParallel' \
		-benchtime 1x -benchmem .

# profile runs the simulator throughput benchmark under the CPU
# profiler and prints the top-N report (also written to
# .bin/profile.top, which CI uploads as an artifact). The test binary
# is kept next to the profile so `go tool pprof` resolves symbols
# offline; tune PROFILE_BENCH/PROFILE_TOP to profile something else.
PROFILE_BENCH ?= SimulatorThroughput
PROFILE_TOP ?= 25

profile:
	@mkdir -p $(CURDIR)/.bin
	@echo "Profiling $(PROFILE_BENCH) (ops=$(BENCH_OPS))..."
	@REPRO_RUNSTORE=off REPRO_BENCH_OPS=$(BENCH_OPS) \
		go test -run '^$$' -bench '$(PROFILE_BENCH)' -benchtime 5x -benchmem \
		-cpuprofile $(CURDIR)/.bin/profile.cpu -o $(CURDIR)/.bin/profile.test .
	@go tool pprof -top -nodecount=$(PROFILE_TOP) \
		$(CURDIR)/.bin/profile.test $(CURDIR)/.bin/profile.cpu \
		| tee $(CURDIR)/.bin/profile.top

# The committed benchmark baseline this PR's trajectory point lives in;
# regenerate with `make bench-baseline-update` after an intentional
# performance change.
BENCH_BASELINE ?= BENCH_10.json

# bench-baseline re-runs the benchmark smoke, converts the output into a
# machine-readable JSON snapshot (.bin/bench-current.json, uploaded as a
# CI artifact), and fails when SimulatorThroughput lost more than 20% of
# its Mops/s versus the committed baseline.
# The bench run's own exit status is captured through the tee pipe
# (plain `cmd | tee` would report tee's status and mask a failed or
# panicking benchmark), so the gate never judges partial output.
bench-baseline:
	@mkdir -p $(CURDIR)/.bin
	@{ $(MAKE) --no-print-directory bench-smoke; echo $$? > $(CURDIR)/.bin/bench.exit; } \
		| tee $(CURDIR)/.bin/bench.out; \
	[ "$$(cat $(CURDIR)/.bin/bench.exit)" = "0" ]
	@go run ./cmd/benchjson -in $(CURDIR)/.bin/bench.out -out $(CURDIR)/.bin/bench-current.json
	@echo "Gating SimulatorThroughput against $(BENCH_BASELINE)..."
	@go run ./cmd/benchjson -check -in $(CURDIR)/.bin/bench.out -baseline $(BENCH_BASELINE) \
		-bench SimulatorThroughput -metric Mops/s -max-regress 0.20
	@echo "Gating TraceReplay against $(BENCH_BASELINE)..."
	@go run ./cmd/benchjson -check -in $(CURDIR)/.bin/bench.out -baseline $(BENCH_BASELINE) \
		-bench TraceReplay -metric Mops/s -max-regress 0.20
	@echo "Gating GridPlan/replay against $(BENCH_BASELINE)..."
	@go run ./cmd/benchjson -check -in $(CURDIR)/.bin/bench.out -baseline $(BENCH_BASELINE) \
		-bench GridPlan/replay -metric Mops/s -max-regress 0.20
	@echo "Gating TLBAccess against $(BENCH_BASELINE)..."
	@go run ./cmd/benchjson -check -in $(CURDIR)/.bin/bench.out -baseline $(BENCH_BASELINE) \
		-bench TLBAccess -metric Mops/s -max-regress 0.30
	@echo "Gating IQSchedule against $(BENCH_BASELINE)..."
	@go run ./cmd/benchjson -check -in $(CURDIR)/.bin/bench.out -baseline $(BENCH_BASELINE) \
		-bench IQSchedule -metric Mops/s -max-regress 0.20
	@echo "Gating SeedsParallel wall clock against $(BENCH_BASELINE)..."
	@go run ./cmd/benchjson -check -in $(CURDIR)/.bin/bench.out -baseline $(BENCH_BASELINE) \
		-bench SeedsParallel -metric ns/op -max-regress 0.35 -lower-better
	@echo "Gating SimulatorThroughput allocs/op against $(BENCH_BASELINE)..."
	@go run ./cmd/benchjson -check -in $(CURDIR)/.bin/bench.out -baseline $(BENCH_BASELINE) \
		-bench SimulatorThroughput -metric allocs/op -max-regress 0 -lower-better
	@echo "Gating TLBAccess allocs/op against $(BENCH_BASELINE)..."
	@go run ./cmd/benchjson -check -in $(CURDIR)/.bin/bench.out -baseline $(BENCH_BASELINE) \
		-bench TLBAccess -metric allocs/op -max-regress 0 -lower-better

bench-baseline-update:
	@mkdir -p $(CURDIR)/.bin
	@{ $(MAKE) --no-print-directory bench-smoke; echo $$? > $(CURDIR)/.bin/bench.exit; } \
		| tee $(CURDIR)/.bin/bench.out; \
	[ "$$(cat $(CURDIR)/.bin/bench.exit)" = "0" ]
	@go run ./cmd/benchjson -in $(CURDIR)/.bin/bench.out -out $(BENCH_BASELINE)
	@echo "Baseline rewritten: $(BENCH_BASELINE)"

bench-full:
	@echo "Running the full paper benchmark campaign. This may take awhile!"
	@REPRO_RUNSTORE=$(RUNSTORE) go test -run '^$$' -bench . -benchtime 1x -benchmem .

sim-smoke:
	@echo "Running a short experiment campaign (ops=$(SMOKE_OPS)) against the run store..."
	@go run ./cmd/experiments -run fig2 -ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) > /dev/null
	@echo "Re-running warm: must be pure store hits..."
	@go run ./cmd/experiments -run fig2 -ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) 2>&1 >/dev/null \
		| grep "0 simulated (100.0% hit rate)"

sweep-smoke:
	@echo "Running a 3-point ROB sweep (ops=$(SMOKE_OPS)) against the run store..."
	@go run ./cmd/sweep -base core2 -param rob -values 48,96,192 -suite cpu2000 \
		-ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) > /dev/null
	@echo "Re-running warm: must be pure store hits..."
	@go run ./cmd/sweep -base core2 -param rob -values 48,96,192 -suite cpu2000 \
		-ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) 2>&1 >/dev/null \
		| grep "0 simulated (100.0% hit rate)"

# plan-smoke is the grid-plan counterpart of sweep-smoke: a cold 2×2
# rob×mshrs plan through cmd/sweep's repeated -param/-values grid mode,
# then a warm rerun that must be pure store hits with zero trace
# regenerations (the stats line counts actual µop-stream generations;
# a fully warm plan touches neither the simulator nor the generator).
plan-smoke:
	@echo "Running a cold 2x2 grid plan (ops=$(SMOKE_OPS)) against the run store..."
	@go run ./cmd/sweep -base core2 -param rob -values 48,96 -param mshrs -values 4,8 \
		-suite cpu2000 -ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) > /dev/null
	@echo "Re-running warm: must be pure store hits and zero trace regenerations..."
	@go run ./cmd/sweep -base core2 -param rob -values 48,96 -param mshrs -values 4,8 \
		-suite cpu2000 -ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) 2>&1 >/dev/null \
		| grep "0 simulated (100.0% hit rate), 0 traces generated"

# sim-nondeterminism runs the same 2x2 grid plan single-threaded and
# with every core — each against its own fresh run store — and asserts
# byte-identical wire-format plan JSON and byte-identical run-store
# artifacts. Plan cells simulate concurrently over shared trace
# buffers, so this is the gate that scheduling, worker count and
# GOMAXPROCS never leak into results (first slice of the ROADMAP
# determinism harness).
sim-nondeterminism:
	@mkdir -p $(CURDIR)/.bin
	@rm -rf $(CURDIR)/.bin/det-store-1 $(CURDIR)/.bin/det-store-n
	@echo "Running a 2x2 grid plan at GOMAXPROCS=1 (ops=$(SMOKE_OPS))..."
	@GOMAXPROCS=1 go run ./cmd/sweep -base core2 -param rob -values 48,96 -param mshrs -values 4,8 \
		-suite cpu2000 -ops $(SMOKE_OPS) -starts 2 -json \
		-store $(CURDIR)/.bin/det-store-1 > $(CURDIR)/.bin/det-plan-1.json
	@echo "Running the same plan at GOMAXPROCS=$$(nproc)..."
	@GOMAXPROCS=$$(nproc) go run ./cmd/sweep -base core2 -param rob -values 48,96 -param mshrs -values 4,8 \
		-suite cpu2000 -ops $(SMOKE_OPS) -starts 2 -json \
		-store $(CURDIR)/.bin/det-store-n > $(CURDIR)/.bin/det-plan-n.json
	@echo "Comparing plan JSON..."
	@cmp $(CURDIR)/.bin/det-plan-1.json $(CURDIR)/.bin/det-plan-n.json
	@echo "Comparing run-store artifacts..."
	@diff -r $(CURDIR)/.bin/det-store-1 $(CURDIR)/.bin/det-store-n
	@echo "sim-nondeterminism: byte-identical across GOMAXPROCS"

# scale-smoke is sim-nondeterminism's wall-clock companion: the same
# 2x2 grid plan, but built with the race detector and run cold twice —
# once at GOMAXPROCS=1 and once with every core — each against a fresh
# store. Plan JSON and store artifacts must stay byte-identical, and on
# machines with at least 4 cores the parallel run must beat the serial
# one by >=1.5x wall clock: the gate that plan-cell parallelism doesn't
# quietly rot into serialized execution. SCALE_OPS is larger than
# SMOKE_OPS so per-cell work dominates process startup even under
# -race's slowdown.
SCALE_OPS ?= 120000

scale-smoke:
	@mkdir -p $(CURDIR)/.bin
	@rm -rf $(CURDIR)/.bin/scale-store-1 $(CURDIR)/.bin/scale-store-n
	@echo "Building cmd/sweep with the race detector..."
	@go build -race -o $(CURDIR)/.bin/sweep-race ./cmd/sweep
	@echo "Running a cold 2x2 grid plan at GOMAXPROCS=1 (ops=$(SCALE_OPS))..."
	@t0=$$(date +%s%N); \
	GOMAXPROCS=1 $(CURDIR)/.bin/sweep-race -base core2 -param rob -values 48,96 -param mshrs -values 4,8 \
		-suite cpu2000 -ops $(SCALE_OPS) -starts 2 -json \
		-store $(CURDIR)/.bin/scale-store-1 > $(CURDIR)/.bin/scale-plan-1.json; \
	echo $$(( $$(date +%s%N) - t0 )) > $(CURDIR)/.bin/scale-ns-1
	@echo "Running the same cold plan at GOMAXPROCS=$$(nproc)..."
	@t0=$$(date +%s%N); \
	GOMAXPROCS=$$(nproc) $(CURDIR)/.bin/sweep-race -base core2 -param rob -values 48,96 -param mshrs -values 4,8 \
		-suite cpu2000 -ops $(SCALE_OPS) -starts 2 -json \
		-store $(CURDIR)/.bin/scale-store-n > $(CURDIR)/.bin/scale-plan-n.json; \
	echo $$(( $$(date +%s%N) - t0 )) > $(CURDIR)/.bin/scale-ns-n
	@echo "Comparing plan JSON..."
	@cmp $(CURDIR)/.bin/scale-plan-1.json $(CURDIR)/.bin/scale-plan-n.json
	@echo "Comparing run-store artifacts..."
	@diff -r $(CURDIR)/.bin/scale-store-1 $(CURDIR)/.bin/scale-store-n
	@serial=$$(cat $(CURDIR)/.bin/scale-ns-1); par=$$(cat $(CURDIR)/.bin/scale-ns-n); \
	speedup=$$(awk "BEGIN { printf \"%.2f\", $$serial / $$par }"); \
	echo "scale-smoke: serial $$(( serial / 1000000 )) ms, parallel $$(( par / 1000000 )) ms, speedup $${speedup}x on $$(nproc) cores"; \
	if [ "$$(nproc)" -ge 4 ]; then \
		awk "BEGIN { exit !($$serial >= 1.5 * $$par) }" || \
			{ echo "scale-smoke: speedup $${speedup}x < 1.5x"; exit 1; }; \
	else \
		echo "scale-smoke: fewer than 4 cores, skipping the 1.5x wall-clock gate"; \
	fi

# optimize-smoke is the design-space-search counterpart of plan-smoke:
# a cold coordinate-descent search over the committed example spec, then
# a warm -json rerun that must be pure store hits with zero trace
# regenerations — asserted on both the store-stats line and the wire
# report ("simulated": 0, "traceGens": 0), the same fields POST
# /v1/optimize answers.
optimize-smoke:
	@mkdir -p $(CURDIR)/.bin
	@echo "Running a cold design-space optimize (ops=$(SMOKE_OPS)) against the run store..."
	@go run ./cmd/sweep -optimize examples/optimize/core2-min-cpi.json \
		-ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) > /dev/null
	@echo "Re-running warm: must be pure store hits and zero trace regenerations..."
	@go run ./cmd/sweep -optimize examples/optimize/core2-min-cpi.json -json \
		-ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) \
		2>&1 >$(CURDIR)/.bin/optimize-smoke.json \
		| grep "0 simulated (100.0% hit rate), 0 traces generated"
	@grep -q '"simulated": 0' $(CURDIR)/.bin/optimize-smoke.json
	@grep -q '"traceGens": 0' $(CURDIR)/.bin/optimize-smoke.json

# seeds-smoke is the statistical-replication counterpart of
# optimize-smoke: a cold 3-seed sweep over the committed example spec
# (each seed its own workload instantiation, so nothing is shareable
# across seeds), then a warm -json rerun that must be pure store hits
# with zero trace regenerations — asserted on both the store-stats line
# and the wire report ("simulated": 0, "traceGens": 0), the same fields
# POST /v1/seeds answers.
seeds-smoke:
	@mkdir -p $(CURDIR)/.bin
	@echo "Running a cold 3-seed replication sweep (ops=$(SMOKE_OPS)) against the run store..."
	@go run ./cmd/sweep -seeds examples/seeds/core2-seeds.json \
		-ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) > /dev/null
	@echo "Re-running warm: must be pure store hits and zero trace regenerations..."
	@go run ./cmd/sweep -seeds examples/seeds/core2-seeds.json -json \
		-ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) \
		2>&1 >$(CURDIR)/.bin/seeds-smoke.json \
		| grep "0 simulated (100.0% hit rate), 0 traces generated"
	@grep -q '"simulated": 0' $(CURDIR)/.bin/seeds-smoke.json
	@grep -q '"traceGens": 0' $(CURDIR)/.bin/seeds-smoke.json

# trace-smoke exercises the recorded-trace path end to end: tracetool
# generates a one-off trace file from an inline spec and inspects it,
# exports the cpu2000 suite to .mtrc files, import-verifies the
# directory, then runs a one-cell grid plan over the imported traces
# through the "file:DIR" suite form. The warm -json rerun must be pure
# store hits with zero trace loads — recorded streams replay from the
# store, not from disk ("simulated": 0, "traceGens": 0 in the wire
# report, the same fields POST /v1/plan answers). Export is
# deterministic, so the file content hashes — and therefore the store
# keys — are stable across CI runs and the cached run store stays warm.
trace-smoke:
	@mkdir -p $(CURDIR)/.bin
	@rm -rf $(CURDIR)/.bin/traces
	@echo "Generating a one-off trace file from an inline spec..."
	@printf '%s\n' '{"Name": "toy", "Seed": 7, "NumOps": 5000, "LoadFrac": 0.25, "StoreFrac": 0.1, "BranchHardFrac": 0.2, "CodeFootprint": 32768, "CodeLocality": 0.8, "DataFootprint": 1048576, "DataLocality": 0.6, "DepDistMean": 8}' \
		> $(CURDIR)/.bin/trace-smoke-spec.json
	@go run ./cmd/tracetool generate -spec $(CURDIR)/.bin/trace-smoke-spec.json -out $(CURDIR)/.bin/toy.mtrc
	@go run ./cmd/tracetool inspect $(CURDIR)/.bin/toy.mtrc
	@echo "Exporting the cpu2000 suite (ops=$(SMOKE_OPS)) to trace files..."
	@go run ./cmd/tracetool export -suite cpu2000 -ops $(SMOKE_OPS) -out $(CURDIR)/.bin/traces
	@echo "Import-verifying the exported directory..."
	@go run ./cmd/tracetool import $(CURDIR)/.bin/traces > /dev/null
	@echo "Running a cold one-cell plan over the imported traces..."
	@printf '%s\n' '{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [96]}], "suite": "file:$(CURDIR)/.bin/traces"}' \
		> $(CURDIR)/.bin/trace-smoke-plan.json
	@go run ./cmd/sweep -plan $(CURDIR)/.bin/trace-smoke-plan.json \
		-ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) > /dev/null
	@echo "Re-running warm: must be pure store hits and zero trace loads..."
	@go run ./cmd/sweep -plan $(CURDIR)/.bin/trace-smoke-plan.json -json \
		-ops $(SMOKE_OPS) -starts 2 -store $(RUNSTORE) \
		2>&1 >$(CURDIR)/.bin/trace-smoke.json \
		| grep "0 simulated (100.0% hit rate), 0 traces generated"
	@grep -q '"simulated": 0' $(CURDIR)/.bin/trace-smoke.json
	@grep -q '"traceGens": 0' $(CURDIR)/.bin/trace-smoke.json

fuzz-smoke:
	@echo "Fuzzing campaign parsing for 20s..."
	@go test ./internal/experiments -run '^$$' -fuzz '^FuzzParseCampaign$$' -fuzztime 20s

# serve-smoke depends on sim-smoke/sweep-smoke so the run store is warm:
# the whole point of the assertion is that a warm store lets the daemon
# answer predict and sweep requests without dispatching one simulation.
serve-smoke: sim-smoke sweep-smoke
	@echo "Starting mecpid on a random port against the run store at $(RUNSTORE)..."
	@mkdir -p $(CURDIR)/.bin
	@go build -o $(CURDIR)/.bin/mecpid ./cmd/mecpid
	@rm -f $(CURDIR)/.bin/mecpid.addr
	@$(CURDIR)/.bin/mecpid -addr 127.0.0.1:0 -addrfile $(CURDIR)/.bin/mecpid.addr \
		-store $(RUNSTORE) -ops $(SMOKE_OPS) -starts 2 & \
	pid=$$!; \
	trap "kill $$pid 2>/dev/null" EXIT; \
	for i in $$(seq 1 100); do [ -s $(CURDIR)/.bin/mecpid.addr ] && break; sleep 0.1; done; \
	addr=$$(cat $(CURDIR)/.bin/mecpid.addr); \
	echo "daemon at $$addr; hitting healthz, predict, sweep..." && \
	curl -fsS "http://$$addr/healthz" > /dev/null && \
	curl -fsS -X POST "http://$$addr/v1/predict" \
		-d '{"machine": {"name": "core2"}, "suite": "cpu2006", "workload": "mcf"}' > /dev/null && \
	curl -fsS -X POST "http://$$addr/v1/sweep" \
		-d '{"base": {"name": "core2"}, "param": "rob", "values": [48, 96, 192], "suite": "cpu2000"}' > /dev/null && \
	echo "Asserting the warm store dispatched zero simulations..." && \
	curl -fsS "http://$$addr/v1/stats" | grep -q '"simulated": 0'

# jobs-smoke depends on sim-smoke so the run store is warm: the daemon
# must answer a whole background campaign job without dispatching one
# simulation. It submits the paper campaign as an async job, polls it to
# the done state, and asserts the job's progress reports zero simulated
# runs.
jobs-smoke: sim-smoke
	@echo "Starting mecpid on a random port against the run store at $(RUNSTORE)..."
	@mkdir -p $(CURDIR)/.bin
	@go build -o $(CURDIR)/.bin/mecpid ./cmd/mecpid
	@rm -f $(CURDIR)/.bin/mecpid.addr
	@$(CURDIR)/.bin/mecpid -addr 127.0.0.1:0 -addrfile $(CURDIR)/.bin/mecpid.addr \
		-store $(RUNSTORE) -ops $(SMOKE_OPS) -starts 2 & \
	pid=$$!; \
	trap "kill $$pid 2>/dev/null" EXIT; \
	for i in $$(seq 1 100); do [ -s $(CURDIR)/.bin/mecpid.addr ] && break; sleep 0.1; done; \
	addr=$$(cat $(CURDIR)/.bin/mecpid.addr); \
	echo "daemon at $$addr; submitting a campaign job..." && \
	id=$$(curl -fsS -X POST "http://$$addr/v1/jobs" \
		-d '{"kind": "campaign", "campaign": {"machines": [{"name": "pentium4"}, {"name": "core2"}, {"name": "corei7"}], "suites": ["cpu2000", "cpu2006"]}}' \
		| sed -n 's/.*"id": "\([^"]*\)".*/\1/p'); \
	[ -n "$$id" ] || { echo "job submission returned no id"; exit 1; }; \
	echo "job $$id accepted; polling to completion..."; \
	body=""; \
	for i in $$(seq 1 600); do \
		body=$$(curl -fsS "http://$$addr/v1/jobs/$$id"); \
		case "$$body" in \
			*'"state": "done"'*) break;; \
			*'"state": "failed"'*|*'"state": "cancelled"'*) echo "$$body"; exit 1;; \
		esac; \
		sleep 0.2; \
	done; \
	echo "$$body" | grep -q '"state": "done"' && \
	echo "Asserting the warm store dispatched zero simulations..." && \
	echo "$$body" | grep -q '"simulated": 0'

clean-store:
	@echo "Removing the run store at $(RUNSTORE)..."
	@rm -rf $(RUNSTORE)

.PHONY: all build test test-short race lint staticcheck profile bench-smoke bench-full bench-baseline bench-baseline-update sim-smoke sweep-smoke plan-smoke sim-nondeterminism scale-smoke optimize-smoke seeds-smoke trace-smoke fuzz-smoke serve-smoke jobs-smoke clean-store
