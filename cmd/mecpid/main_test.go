package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read the daemon's log while the daemon
// goroutine is still writing it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonLifecycle boots the daemon on port 0, discovers the bound
// address through -addrfile exactly as the serve-smoke script does, hits
// /healthz, and verifies context cancellation shuts it down cleanly.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var log syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- realMain(ctx, &log, "127.0.0.1:0", addrFile, "", "", 1500, 2, 0, 1, 5*time.Second, "127.0.0.1:0")
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("daemon never wrote its address file")
		}
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			addr = string(data)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz: status %d, body %+v", resp.StatusCode, health)
	}

	// The job engine is wired in: an empty listing answers 200.
	resp, err = http.Get("http://" + addr + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(listing.Jobs) != 0 {
		t.Errorf("jobs listing: status %d, body %+v", resp.StatusCode, listing)
	}

	// The profiling endpoints are on the dedicated pprof listener and
	// never on the API listener.
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("API listener served /debug/pprof/ with status %d, want 404", resp.StatusCode)
	}
	var pprofAddr string
	deadline = time.Now().Add(10 * time.Second)
	for pprofAddr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never logged its pprof address:\n%s", log.String())
		}
		for _, line := range strings.Split(log.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "mecpid: pprof on http://"); ok {
				pprofAddr = strings.TrimSuffix(rest, "/debug/pprof/")
			}
		}
		if pprofAddr == "" {
			time.Sleep(20 * time.Millisecond)
		}
	}
	resp, err = http.Get("http://" + pprofAddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof listener: status %d, want 200", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("daemon exited with %v, want clean shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after cancellation")
	}
	if !strings.Contains(log.String(), "listening on http://") {
		t.Errorf("log missing listen line:\n%s", log.String())
	}
	if !strings.Contains(log.String(), "shut down") {
		t.Errorf("log missing shutdown line:\n%s", log.String())
	}
}

func TestDaemonRejectsBadListenAddress(t *testing.T) {
	if err := realMain(context.Background(), bytes.NewBuffer(nil), "256.256.256.256:99999", "", "", "", 1000, 2, 0, 1, time.Second, ""); err == nil {
		t.Error("invalid listen address should fail")
	}
}

func TestDaemonRejectsBadPprofAddress(t *testing.T) {
	if err := realMain(context.Background(), bytes.NewBuffer(nil), "127.0.0.1:0", "", "", "", 1000, 2, 0, 1, time.Second, "256.256.256.256:99999"); err == nil {
		t.Error("invalid pprof listen address should fail")
	}
}
