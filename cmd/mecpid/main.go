// Command mecpid is the model-serving daemon: the paper's fitted
// mechanistic-empirical model behind an HTTP/JSON API, answering the
// CPI and CPI-stack questions a simulator needs minutes for in
// microseconds once a model is fitted. Fitted models are cached
// content-addressed per (machine configuration, suite, fit options)
// with singleflight deduplication — N concurrent requests for an
// unfitted pair trigger exactly one simulate+fit — and simulations are
// warm-started from the same run store the batch CLIs use, so a warm
// store means the daemon never dispatches a simulation.
//
// The API is versioned under /v1 and self-describing: GET /v1 returns
// the endpoint index, simulator version and capability flags, and every
// error is a structured envelope ({"error": {"code": ..., "message":
// ...}}) with a stable machine-readable code. Beyond the blocking calls
// — POST /v1/predict (single machine or a batch), POST /v1/sweep, POST
// /v1/plan (several exploration axes, discoverable via GET /v1/params,
// crossed into a grid of derived machines, fitted once and extrapolated
// per cell, with each workload's µop trace materialized once and
// replayed across the whole grid), and POST /v1/optimize (a design-space
// search that probes only the grid cells coordinate descent or
// successive halving needs, minimizing CPI or a cost proxy under a CPI
// budget, or mapping a Pareto frontier), and POST /v1/seeds (a
// multi-seed replication sweep reporting mean, sample deviation and
// Student-t 95% intervals on CPI and model error plus per-coefficient
// fit stability) — the daemon runs an async job engine: POST /v1/jobs
// executes whole campaigns, sweeps, plans, optimizations and seed
// sweeps in the background through the same entry points as
// cmd/experiments and cmd/sweep (so batch and daemon answers stay
// bit-identical), with per-job progress counters — per-run and, where
// it applies, per-cell, per-probe or per-seed — cancellation via
// DELETE, and terminal states persisted as JSON artifacts next to the
// run store.
//
// Usage:
//
//	mecpid [-addr 127.0.0.1:8080] [-addrfile FILE] [-store DIR]
//	       [-jobs DIR] [-jobworkers N] [-ops N] [-starts N]
//	       [-workers N] [-drain DURATION] [-pprof-addr 127.0.0.1:0]
//	       [-trace-suite NAME=PATH]...
//
// Each -trace-suite registers an imported trace file (or a directory of
// .mtrc files) as a named file-backed suite, usable anywhere a suite
// name is — predict, plan, optimize, jobs. GET /v1/suites reports such
// suites with "source": "file". The unregistered "file:PATH" suite-spec
// form works too, without any flag.
//
// With -pprof-addr the daemon additionally serves net/http/pprof on a
// dedicated listener at that address (off by default). The profiling
// endpoints are never mounted on the API listener: the API surface
// stays exactly the versioned /v1 tree, and the pprof port can be kept
// loopback-only while the API is exposed.
//
// See internal/serve for the endpoint reference. On SIGINT/SIGTERM the
// daemon stops accepting connections and drains in-flight requests and
// jobs for up to -drain (default 2m — a cold predict simulates a whole
// suite, so draining can legitimately take a while); whatever is still
// running then is cut off — jobs by cancellation, which stops the
// dispatch of new simulations and leaves the run store consistent — and
// the daemon exits cleanly either way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/runstore"
	"repro/internal/serve"
	"repro/internal/suites"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file once listening (for scripts)")
	storeDir := flag.String("store", "", "run-store directory for cached simulation results (empty = no cache)")
	jobsDir := flag.String("jobs", "", "directory for terminal job artifacts (default: <store>.jobs next to the run store; empty without -store = in-memory only)")
	jobWorkers := flag.Int("jobworkers", 1, "concurrent background jobs")
	ops := flag.Int("ops", 300000, "µops per workload")
	starts := flag.Int("starts", 12, "regression multi-start count")
	workers := flag.Int("workers", 0, "simulation worker bound (default: NumCPU)")
	drain := flag.Duration("drain", 2*time.Minute, "how long to drain in-flight requests and jobs on shutdown")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address over a dedicated listener (empty = off; never served on -addr)")
	var traceSuites stringList
	flag.Var(&traceSuites, "trace-suite", "register a file-backed suite as NAME=PATH, where PATH is one .mtrc trace file or a directory of them (repeatable)")
	flag.Parse()

	if err := registerTraceSuites(traceSuites); err != nil {
		fmt.Fprintln(os.Stderr, "mecpid:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := realMain(ctx, os.Stderr, *addr, *addrFile, *storeDir, *jobsDir, *ops, *starts, *workers, *jobWorkers, *drain, *pprofAddr); err != nil {
		fmt.Fprintln(os.Stderr, "mecpid:", err)
		os.Exit(1)
	}
}

// stringList collects the values of a repeatable flag.
type stringList []string

func (l *stringList) String() string     { return strings.Join(*l, ",") }
func (l *stringList) Set(v string) error { *l = append(*l, v); return nil }

// registerTraceSuites resolves each NAME=PATH pair into a file-backed
// suite in the process-global registry. Files are read and verified up
// front, so a bad path or corrupt trace fails daemon startup instead of
// the first request that names the suite.
func registerTraceSuites(pairs []string) error {
	for _, p := range pairs {
		name, path, ok := strings.Cut(p, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("-trace-suite %q: want NAME=PATH", p)
		}
		if err := suites.RegisterFile(name, path); err != nil {
			return err
		}
	}
	return nil
}

// realMain runs the daemon until ctx is cancelled (graceful shutdown) or
// the listener fails. It logs the bound address to log — and to
// addrFile when given — once the socket is open, so scripts can start
// the daemon on port 0 and discover where it landed.
func realMain(ctx context.Context, log io.Writer, addr, addrFile, storeDir, jobsDir string, ops, starts, workers, jobWorkers int, drain time.Duration, pprofAddr string) error {
	var store *runstore.Store
	if storeDir != "" {
		var err error
		if store, err = runstore.Open(storeDir); err != nil {
			return err
		}
	}
	opts := experiments.Options{
		NumOps:    ops,
		FitStarts: starts,
		Workers:   workers,
		Store:     store,
	}
	prov := experiments.NewProvider(opts)
	if jobsDir == "" && storeDir != "" {
		// Terminal job artifacts land next to the run store by default,
		// so one -store flag configures the daemon's whole disk footprint.
		jobsDir = filepath.Clean(storeDir) + ".jobs"
	}
	jobs := experiments.NewJobs(opts, experiments.JobsConfig{
		Workers:     jobWorkers,
		ArtifactDir: jobsDir,
	})
	srv := serve.New(prov, jobs)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	storeDesc := "none"
	if store != nil {
		storeDesc = store.Dir()
	}
	jobsDesc := jobsDir
	if jobsDesc == "" {
		jobsDesc = "memory"
	}
	fmt.Fprintf(log, "mecpid: listening on http://%s (ops=%d, starts=%d, store=%s, jobs=%s)\n",
		bound, prov.Opts().NumOps, prov.Opts().FitStarts, storeDesc, jobsDesc)

	if pprofAddr != "" {
		// The profiling endpoints live on their own mux and listener so
		// they can never leak onto the API surface (the stdlib's side
		// effect of registering on DefaultServeMux is irrelevant here:
		// the API handler is an explicit serve.Handler mux). The pprof
		// server is torn down with the process; it needs no drain.
		pln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("pprof listener: %w", err)
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ps := &http.Server{Handler: pmux}
		defer ps.Close()
		go ps.Serve(pln)
		fmt.Fprintf(log, "mecpid: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}

	hs := &http.Server{Handler: srv.Handler()}
	// drainJobsNow cancels whatever jobs are in flight so the engine's
	// workers exit before realMain returns — every exit path, error
	// paths included, must not orphan job goroutines.
	drainJobsNow := func() {
		cancelled, cancel := context.WithCancel(context.Background())
		cancel()
		jobs.Drain(cancelled)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		drainJobsNow() // the listener failed
		return err
	case <-ctx.Done():
		// One drain window covers both the HTTP requests and the job
		// engine: requests first (they are what clients are blocked on),
		// jobs with whatever budget remains.
		shutCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				drainJobsNow()
				return err
			}
			// Requests still running after the drain window (a cold fit
			// can take minutes) are cut off; that is a forced but clean
			// exit, not a daemon failure.
			hs.Close()
			fmt.Fprintf(log, "mecpid: drain window (%v) elapsed; forcing exit\n", drain)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			drainJobsNow()
			return err
		}
		fmt.Fprintln(log, "mecpid: draining jobs...")
		jobs.Drain(shutCtx)
		fmt.Fprintln(log, "mecpid: shut down")
		return nil
	}
}
