// Command mecpid is the model-serving daemon: the paper's fitted
// mechanistic-empirical model behind an HTTP/JSON API, answering the
// CPI and CPI-stack questions a simulator needs minutes for in
// microseconds once a model is fitted. Fitted models are cached
// content-addressed per (machine configuration, suite, fit options)
// with singleflight deduplication — N concurrent requests for an
// unfitted pair trigger exactly one simulate+fit — and simulations are
// warm-started from the same run store the batch CLIs use, so a warm
// store means the daemon never dispatches a simulation.
//
// Usage:
//
//	mecpid [-addr 127.0.0.1:8080] [-addrfile FILE] [-store DIR]
//	       [-ops N] [-starts N] [-workers N] [-drain DURATION]
//
// See internal/serve for the endpoint reference. On SIGINT/SIGTERM the
// daemon stops accepting connections and drains in-flight requests for
// up to -drain (default 2m — a cold predict simulates a whole suite, so
// draining can legitimately take a while); whatever is still running
// then is cut off and the daemon exits cleanly either way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/runstore"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addrfile", "", "write the bound address to this file once listening (for scripts)")
	storeDir := flag.String("store", "", "run-store directory for cached simulation results (empty = no cache)")
	ops := flag.Int("ops", 300000, "µops per workload")
	starts := flag.Int("starts", 12, "regression multi-start count")
	workers := flag.Int("workers", 0, "simulation worker bound (default: NumCPU)")
	drain := flag.Duration("drain", 2*time.Minute, "how long to drain in-flight requests on shutdown")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := realMain(ctx, os.Stderr, *addr, *addrFile, *storeDir, *ops, *starts, *workers, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "mecpid:", err)
		os.Exit(1)
	}
}

// realMain runs the daemon until ctx is cancelled (graceful shutdown) or
// the listener fails. It logs the bound address to log — and to
// addrFile when given — once the socket is open, so scripts can start
// the daemon on port 0 and discover where it landed.
func realMain(ctx context.Context, log io.Writer, addr, addrFile, storeDir string, ops, starts, workers int, drain time.Duration) error {
	var store *runstore.Store
	if storeDir != "" {
		var err error
		if store, err = runstore.Open(storeDir); err != nil {
			return err
		}
	}
	prov := experiments.NewProvider(experiments.Options{
		NumOps:    ops,
		FitStarts: starts,
		Workers:   workers,
		Store:     store,
	})
	srv := serve.New(prov)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	storeDesc := "none"
	if store != nil {
		storeDesc = store.Dir()
	}
	fmt.Fprintf(log, "mecpid: listening on http://%s (ops=%d, starts=%d, store=%s)\n",
		bound, prov.Opts().NumOps, prov.Opts().FitStarts, storeDesc)

	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				return err
			}
			// Requests still running after the drain window (a cold fit
			// can take minutes) are cut off; that is a forced but clean
			// exit, not a daemon failure.
			hs.Close()
			fmt.Fprintf(log, "mecpid: drain window (%v) elapsed; forcing exit\n", drain)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		fmt.Fprintln(log, "mecpid: shut down")
		return nil
	}
}
