// Command calibrate estimates a machine's cache, memory and TLB miss
// latencies with pointer-chase microbenchmarks — the repository's
// equivalent of the paper's Calibrator tool.
//
// Usage:
//
//	calibrate [-machine pentium4|core2|corei7] [-sweep] [-store DIR]
//
// With -store DIR the calibration result is cached content-addressed on
// the machine configuration, so re-calibrating an unchanged machine is
// instant.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/calibrator"
	"repro/internal/runstore"
	"repro/internal/uarch"
)

func main() {
	machine := flag.String("machine", "core2", "machine to calibrate: "+strings.Join(uarch.Names(), ", "))
	sweep := flag.Bool("sweep", false, "also print the raw footprint sweep")
	storeDir := flag.String("store", "", "run-store directory for cached calibrations (empty = no cache)")
	flag.Parse()

	if err := realMain(*machine, *sweep, *storeDir); err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
}

func realMain(name string, sweep bool, storeDir string) error {
	m, err := uarch.ByName(name)
	if err != nil {
		return err
	}
	var store *runstore.Store
	if storeDir != "" {
		if store, err = runstore.Open(storeDir); err != nil {
			return err
		}
	}
	var res *calibrator.Result
	if store != nil {
		var cached calibrator.Result
		hit, err := store.Get(runstore.CalibrationKey(m), &cached)
		if err != nil {
			return err
		}
		if hit {
			fmt.Fprintf(os.Stderr, "run store %s: calibration of %s cached\n", store.Dir(), m.Name)
			res = &cached
		}
	}
	if res == nil {
		if res, err = calibrator.Calibrate(m); err != nil {
			return err
		}
		if store != nil {
			if err := store.Put(runstore.CalibrationKey(m), res); err != nil {
				return err
			}
		}
	}
	e := res.Estimates
	fmt.Printf("calibration of %s:\n", m.Name)
	fmt.Printf("  L1 load-to-use : %4d cycles (configured %d)\n", e.L1Lat, m.L1D.LatCycles)
	fmt.Printf("  L2 latency     : %4d cycles (configured %d)\n", e.L2Lat, m.L2.LatCycles)
	if m.HasL3() {
		fmt.Printf("  L3 latency     : %4d cycles (configured %d)\n", e.L3Lat, m.L3.LatCycles)
	}
	fmt.Printf("  memory latency : %4d cycles (configured %d)\n", e.MemLat, m.MemLat)
	fmt.Printf("  TLB miss walk  : %4d cycles (configured %d)\n", e.TLBLat, m.DTLB.MissLat)
	if sweep {
		fmt.Println("\nfootprint sweep (working set → median load-to-use latency):")
		for _, p := range res.Sweep {
			unit, v := "KB", p.FootprintBytes>>10
			if p.FootprintBytes >= 1<<20 {
				unit, v = "MB", p.FootprintBytes>>20
			}
			fmt.Printf("  %6d%s  %7.1f cycles\n", v, unit, p.MedianLat)
		}
	}
	return nil
}
