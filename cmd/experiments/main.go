// Command experiments regenerates the paper's tables and figures from
// scratch: it simulates both benchmark suites on all three machines, fits
// the mechanistic-empirical models, and prints each requested artifact.
//
// Usage:
//
//	experiments [-run all|table1|table2|fig2|fig3|fig4|fig5|fig6|ablation]
//	            [-ops N] [-starts N] [-store DIR]
//
// Everything is deterministic; re-running reproduces identical output.
// With -store DIR, simulation results are cached content-addressed on
// disk: a warm rerun performs zero new simulations and still emits
// byte-identical artifacts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/runstore"
)

func main() {
	run := flag.String("run", "all", "which artifact to produce: all, table1, table2, fig2..fig6, ablation")
	ops := flag.Int("ops", 1200000, "µops per workload (capacity effects — e.g. the i7's larger LLC removing misses — need ≥1M)")
	starts := flag.Int("starts", 12, "regression multi-start count")
	storeDir := flag.String("store", "", "run-store directory for cached simulation results (empty = no cache)")
	flag.Parse()

	if err := realMain(*run, *ops, *starts, *storeDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func realMain(run string, ops, starts int, storeDir string) error {
	switch run {
	case "all", "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "ablation":
	default:
		return fmt.Errorf("unknown -run value %q", run)
	}
	var store *runstore.Store
	if storeDir != "" {
		var err error
		if store, err = runstore.Open(storeDir); err != nil {
			return err
		}
	}
	lab := experiments.NewLab(experiments.Options{NumOps: ops, FitStarts: starts, Store: store})
	want := func(name string) bool { return run == "all" || run == name }

	needsSim := run == "all" ||
		strings.HasPrefix(run, "fig") || run == "ablation"
	if needsSim {
		fmt.Fprintf(os.Stderr, "simulating 103 workloads × 3 machines (%d µops each)...\n", ops)
		t0 := time.Now()
		if err := lab.Simulate(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simulation done in %v\n", time.Since(t0).Round(time.Millisecond))
		if store != nil {
			st := lab.SimStats()
			fmt.Fprintf(os.Stderr, "run store %s: %d hits, %d simulated (%.1f%% hit rate)\n",
				store.Dir(), st.Hits, st.Simulated,
				100*float64(st.Hits)/float64(st.Hits+st.Simulated))
		}
		fmt.Fprintln(os.Stderr)
	}

	if want("table1") {
		fmt.Println(lab.Table1())
	}
	if want("table2") {
		_, text, err := lab.Table2()
		if err != nil {
			return err
		}
		fmt.Println(text)
	}
	if want("fig2") {
		_, text, err := lab.Fig2()
		if err != nil {
			return err
		}
		fmt.Println(text)
	}
	if want("fig3") {
		_, text, err := lab.Fig3()
		if err != nil {
			return err
		}
		fmt.Println(text)
	}
	if want("fig4") {
		_, text, err := lab.Fig4()
		if err != nil {
			return err
		}
		fmt.Println(text)
	}
	if want("fig5") {
		_, text, err := lab.Fig5("core2", "cpu2006")
		if err != nil {
			return err
		}
		fmt.Println(text)
	}
	if want("fig6") {
		_, text, err := lab.Fig6()
		if err != nil {
			return err
		}
		fmt.Println(text)
	}
	if want("ablation") {
		_, text, err := lab.Ablations("core2")
		if err != nil {
			return err
		}
		fmt.Println(text)
	}

	return nil
}
