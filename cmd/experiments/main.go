// Command experiments regenerates the paper's tables and figures from
// scratch: it simulates the campaign's benchmark suites on its machines,
// fits the mechanistic-empirical models, and prints each requested
// artifact.
//
// Usage:
//
//	experiments [-run all|table1|table2|fig2|fig3|fig4|fig5|fig6|ablation]
//	            [-ops N] [-starts N] [-store DIR] [-scenario FILE]
//	            [-cpuprofile FILE] [-memprofile FILE]
//
// Everything is deterministic; re-running reproduces identical output.
// With -store DIR, simulation results are cached content-addressed on
// disk: a warm rerun performs zero new simulations and still emits
// byte-identical artifacts. With -scenario FILE the campaign comes from
// a declarative JSON scenario (machines — stock or derived — × suites)
// instead of the paper's fixed grid; only the campaign-generic artifacts
// (table1, table2, fig2) run there, as the rest are defined in terms of
// the paper's specific machines and suites.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/runstore"
)

// artifact is one producible output. The table is the single source of
// truth for -run validation, simulation need, scenario compatibility,
// and dispatch, so the flag's accepted values and the emitters cannot
// drift apart.
type artifact struct {
	name     string
	needsSim bool // requires the simulation campaign (not just configs)
	generic  bool // meaningful under any campaign, not only the paper grid
	emit     func(l *experiments.Lab) (string, error)
}

var artifacts = []artifact{
	{"table1", false, true, func(l *experiments.Lab) (string, error) {
		return l.Table1(), nil
	}},
	{"table2", false, true, func(l *experiments.Lab) (string, error) {
		_, text, err := l.Table2()
		return text, err
	}},
	{"fig2", true, true, func(l *experiments.Lab) (string, error) {
		_, text, err := l.Fig2()
		return text, err
	}},
	{"fig3", true, false, func(l *experiments.Lab) (string, error) {
		_, text, err := l.Fig3()
		return text, err
	}},
	{"fig4", true, false, func(l *experiments.Lab) (string, error) {
		_, text, err := l.Fig4()
		return text, err
	}},
	{"fig5", true, false, func(l *experiments.Lab) (string, error) {
		_, text, err := l.Fig5("core2", "cpu2006")
		return text, err
	}},
	{"fig6", true, false, func(l *experiments.Lab) (string, error) {
		_, text, err := l.Fig6()
		return text, err
	}},
	{"ablation", true, false, func(l *experiments.Lab) (string, error) {
		_, text, err := l.Ablations("core2")
		return text, err
	}},
}

func artifactNames() []string {
	names := make([]string, len(artifacts))
	for i, a := range artifacts {
		names[i] = a.name
	}
	return names
}

func main() {
	run := flag.String("run", "all", "which artifact to produce: all, "+strings.Join(artifactNames(), ", "))
	ops := flag.Int("ops", 0, "µops per workload (default: the scenario's ops, else 1200000 — capacity effects need ≥1M)")
	starts := flag.Int("starts", 0, "regression multi-start count (default: the scenario's fitStarts, else 12)")
	storeDir := flag.String("store", "", "run-store directory for cached simulation results (empty = no cache)")
	scenario := flag.String("scenario", "", "JSON scenario file declaring the campaign (empty = the paper's grid)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	err = realMain(os.Stdout, *run, *ops, *starts, *storeDir, *scenario)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func realMain(out io.Writer, run string, ops, starts int, storeDir, scenario string) error {
	var selected []artifact
	for _, a := range artifacts {
		if run == "all" || run == a.name {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		return fmt.Errorf("unknown -run value %q (want all, %s)", run, strings.Join(artifactNames(), ", "))
	}

	var store *runstore.Store
	if storeDir != "" {
		var err error
		if store, err = runstore.Open(storeDir); err != nil {
			return err
		}
	}
	opts := experiments.Options{NumOps: ops, FitStarts: starts, Store: store}

	var lab *experiments.Lab
	if scenario == "" {
		// The paper campaign defaults to 1.2M µops (capacity effects —
		// e.g. the i7's larger LLC removing misses — need ≥1M) and the
		// paper's 12 fit starts; explicit flags override.
		if opts.NumOps <= 0 {
			opts.NumOps = 1200000
		}
		if opts.FitStarts <= 0 {
			opts.FitStarts = 12
		}
		lab = experiments.NewLab(opts)
	} else {
		campaign, err := experiments.LoadCampaign(scenario)
		if err != nil {
			return err
		}
		if lab, err = experiments.NewCampaignLab(campaign, opts); err != nil {
			return err
		}
		if run == "all" {
			kept := selected[:0]
			for _, a := range selected {
				if a.generic {
					kept = append(kept, a)
				}
			}
			selected = kept
		} else if !selected[0].generic {
			return fmt.Errorf("artifact %q is defined by the paper campaign; drop -scenario to produce it", run)
		}
	}

	needsSim := false
	for _, a := range selected {
		needsSim = needsSim || a.needsSim
	}
	if needsSim {
		fmt.Fprintf(os.Stderr, "simulating %d workloads × %d machines (%d µops each)...\n",
			lab.NumWorkloads(), len(lab.Machines()), lab.NumOps())
		t0 := time.Now()
		if err := lab.Simulate(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "simulation done in %v\n", time.Since(t0).Round(time.Millisecond))
		if store != nil {
			st := lab.SimStats()
			fmt.Fprintf(os.Stderr, "run store %s: %d hits, %d simulated (%.1f%% hit rate)\n",
				store.Dir(), st.Hits, st.Simulated,
				100*float64(st.Hits)/float64(st.Hits+st.Simulated))
		}
		fmt.Fprintln(os.Stderr)
	}

	for _, a := range selected {
		text, err := a.emit(lab)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, text)
	}
	return nil
}
