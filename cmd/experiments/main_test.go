package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFig2GoldenOutput pins the fig2 artifact byte-for-byte against the
// output captured from the pre-scenario-engine code (ops=20000,
// starts=2): the refactor onto registries, campaigns and struct run keys
// must be invisible in the emitted artifacts. Regenerate with
//
//	go run ./cmd/experiments -run fig2 -ops 20000 -starts 2 2>/dev/null \
//	  > cmd/experiments/testdata/fig2_ops20000_starts2.golden
//
// only when an intentional simulator/model change (sim.Version bump)
// changes the numbers.
func TestFig2GoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig2 campaign is slow")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "fig2_ops20000_starts2.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := realMain(&out, "fig2", 20000, 2, "", ""); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("fig2 output drifted from pre-refactor golden (%d vs %d bytes)",
			out.Len(), len(want))
	}
}

func TestUnknownArtifactListsValidNames(t *testing.T) {
	err := realMain(&bytes.Buffer{}, "fig9", 1000, 2, "", "")
	if err == nil {
		t.Fatal("expected error for unknown artifact")
	}
	for _, name := range artifactNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error should list %q: %v", name, err)
		}
	}
}

func TestArtifactTableIsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range artifacts {
		if a.name == "" || a.name == "all" {
			t.Errorf("reserved or empty artifact name %q", a.name)
		}
		if seen[a.name] {
			t.Errorf("duplicate artifact %q", a.name)
		}
		seen[a.name] = true
		if a.emit == nil {
			t.Errorf("artifact %q has no emitter", a.name)
		}
	}
	for _, want := range []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "ablation"} {
		if !seen[want] {
			t.Errorf("artifact table lost %q", want)
		}
	}
}

func TestPaperOnlyArtifactRejectedUnderScenario(t *testing.T) {
	dir := t.TempDir()
	scenario := filepath.Join(dir, "s.json")
	if err := os.WriteFile(scenario, []byte(`{
		"machines": [
			{"name": "core2"},
			{"name": "core2-rob48", "base": "core2", "overrides": {"robSize": 48}}
		],
		"suites": ["cpu2000"]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := realMain(&bytes.Buffer{}, "fig6", 1000, 2, "", scenario)
	if err == nil || !strings.Contains(err.Error(), "paper campaign") {
		t.Errorf("fig6 under a scenario should be rejected, got %v", err)
	}
}

func TestScenarioCampaignRunsGenericArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario campaign is slow")
	}
	dir := t.TempDir()
	scenario := filepath.Join(dir, "s.json")
	if err := os.WriteFile(scenario, []byte(`{
		"machines": [
			{"name": "core2"},
			{"name": "core2-mem320", "base": "core2", "overrides": {"memLat": 320}}
		],
		"suites": ["cpu2000"],
		"fitStarts": 2
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := realMain(&out, "all", 5000, 2, "", scenario); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "core2-mem320") {
		t.Errorf("output should cover the derived machine:\n%s", text)
	}
	if strings.Contains(text, "Figure 6") || strings.Contains(text, "Ablations") {
		t.Error("paper-only artifacts must not run under a scenario")
	}
}
