// Command tracetool works with trace files: the versioned binary .mtrc
// format (see internal/trace) that lets workloads leave the process
// that generated them and come back as file-backed suites.
//
// Usage:
//
//	tracetool generate -spec SPEC.json [-out FILE]
//	tracetool export -suite NAME [-workload WL] [-ops N] [-seedbase N] -out DIR
//	tracetool inspect [-json] FILE...
//	tracetool import PATH
//	tracetool convert -out FILE IN
//
// generate materializes one workload from a strict-JSON trace.Spec and
// writes it as a trace file. export materializes every workload of a
// registered suite (or any "file:PATH" suite spec) into a directory of
// trace files — the directory then works as a file-backed suite
// ("file:DIR", suites.RegisterFile, or mecpid -trace-suite). import
// verifies a trace file or directory exactly as suite resolution would
// — checksums included — and prints the workload roster. inspect prints
// one file's embedded spec, op count and content hash. convert decodes
// a trace file and re-encodes it at the current format version.
//
// Every file is checksummed on read; a corrupt, truncated or
// wrong-version file is a hard error, never a partial answer.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/suites"
	"repro/internal/trace"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

func realMain(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "generate":
		err = cmdGenerate(args[1:], stdout)
	case "export":
		err = cmdExport(args[1:], stdout)
	case "inspect":
		err = cmdInspect(args[1:], stdout)
	case "import":
		err = cmdImport(args[1:], stdout)
	case "convert":
		err = cmdConvert(args[1:], stdout)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "tracetool: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "tracetool:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  tracetool generate -spec SPEC.json [-out FILE]
  tracetool export -suite NAME [-workload WL] [-ops N] [-seedbase N] -out DIR
  tracetool inspect [-json] FILE...
  tracetool import PATH
  tracetool convert -out FILE IN
`)
}

// cmdGenerate materializes one workload from a strict-JSON spec file.
func cmdGenerate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	specPath := fs.String("spec", "", "trace spec as strict JSON (required)")
	out := fs.String("out", "", "output trace file (default: <spec name>"+trace.FileExt+")")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("generate: -spec is required")
	}
	raw, err := os.ReadFile(*specPath)
	if err != nil {
		return err
	}
	var spec trace.Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return fmt.Errorf("generate: %s: %v", *specPath, err)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	buf, err := trace.MaterializeSpec(spec)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = spec.Name + trace.FileExt
	}
	if err := trace.WriteFile(path, buf); err != nil {
		return err
	}
	written, err := trace.ReadFileSpec(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: workload %s, %d ops, content %s\n", path, written.Name, written.NumOps, written.Content)
	return nil
}

// cmdExport materializes a suite's workloads into a directory of trace
// files, one per workload, named after the workload.
func cmdExport(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	suiteName := fs.String("suite", "", "suite to export: a registered name or file:PATH (required)")
	workload := fs.String("workload", "", "export only this workload (default: all)")
	ops := fs.Int("ops", 300000, "µops per workload (generated suites only)")
	seedBase := fs.Uint64("seedbase", 0, "seed base for replication variants (generated suites only)")
	out := fs.String("out", "", "output directory (required; created if missing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suiteName == "" || *out == "" {
		return fmt.Errorf("export: -suite and -out are required")
	}
	suite, err := suites.ByName(*suiteName, suites.Options{NumOps: *ops, SeedBase: *seedBase})
	if err != nil {
		return err
	}
	specs := suite.Workloads
	if *workload != "" {
		spec, ok := suite.Find(*workload)
		if !ok {
			return fmt.Errorf("export: suite %s has no workload %q", suite.Name, *workload)
		}
		specs = []trace.Spec{spec}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, spec := range specs {
		buf, err := trace.MaterializeSpec(spec)
		if err != nil {
			return err
		}
		path := filepath.Join(*out, spec.Name+trace.FileExt)
		if err := trace.WriteFile(path, buf); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d ops)\n", path, buf.NumOps())
	}
	fmt.Fprintf(stdout, "exported %d workloads from %s to %s\n", len(specs), suite.Name, *out)
	return nil
}

// cmdInspect prints one or more files' embedded spec and identity.
func cmdInspect(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit one JSON object per file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("inspect: no files given")
	}
	for _, path := range fs.Args() {
		spec, err := trace.ReadFileSpec(path)
		if err != nil {
			return err
		}
		if *asJSON {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				File    string     `json:"file"`
				Version int        `json:"version"`
				Spec    trace.Spec `json:"spec"`
			}{path, trace.FileVersion, spec}); err != nil {
				return err
			}
			continue
		}
		fmt.Fprintf(stdout, "%s: workload %s, %d ops, format version %d\n", path, spec.Name, spec.NumOps, trace.FileVersion)
		fmt.Fprintf(stdout, "  content %s\n", spec.Content)
		if len(spec.Phases) > 0 {
			fmt.Fprintf(stdout, "  phases  %d piecewise-stationary segments\n", len(spec.Phases))
		}
		if spec.BurstFrac > 0 {
			fmt.Fprintf(stdout, "  bursts  %.0f%% of accesses in mean-%.0f-access bursts\n", 100*spec.BurstFrac, spec.BurstLen)
		}
	}
	return nil
}

// cmdImport verifies a trace file or directory as a file-backed suite —
// the same resolution campaigns and the daemon perform — and prints the
// roster it would contribute.
func cmdImport(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("import", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("import: want exactly one PATH")
	}
	path := fs.Arg(0)
	suite, err := suites.ByName(suites.FilePrefix+path, suites.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "suite %s: %d workloads verified\n", suite.Name, len(suite.Workloads))
	for _, wl := range suite.Workloads {
		fmt.Fprintf(stdout, "  %-24s %8d ops  content %.16s…\n", wl.Name, wl.NumOps, wl.Content)
	}
	return nil
}

// cmdConvert decodes a trace file and re-encodes it at the current
// format version. For a current-version file this is a verified,
// normalized rewrite; for files from older builds it is the upgrade
// path.
func cmdConvert(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	out := fs.String("out", "", "output trace file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" || fs.NArg() != 1 {
		return fmt.Errorf("convert: want -out FILE and exactly one input")
	}
	buf, err := trace.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := trace.WriteFile(*out, buf); err != nil {
		return err
	}
	spec, err := trace.ReadFileSpec(*out)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "converted %s -> %s (format version %d, content %s)\n", fs.Arg(0), *out, trace.FileVersion, spec.Content)
	return nil
}
