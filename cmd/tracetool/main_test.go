package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func run(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := realMain(args, &out, &errBuf)
	return out.String(), errBuf.String(), code
}

func TestGenerateInspectImportConvert(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	spec := trace.Spec{
		Name: "toy", Seed: 7, NumOps: 5000,
		LoadFrac: 0.25, StoreFrac: 0.1,
		BranchHardFrac: 0.2, CodeFootprint: 32 << 10, CodeLocality: 0.8,
		DataFootprint: 1 << 20, DataLocality: 0.6,
		DepDistMean: 8,
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(specPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "toy.mtrc")
	stdout, stderr, code := run(t, "generate", "-spec", specPath, "-out", out)
	if code != 0 {
		t.Fatalf("generate failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "workload toy, 5000 ops") {
		t.Errorf("generate output %q", stdout)
	}

	stdout, stderr, code = run(t, "inspect", out)
	if code != 0 {
		t.Fatalf("inspect failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "workload toy, 5000 ops") || !strings.Contains(stdout, "content ") {
		t.Errorf("inspect output %q", stdout)
	}

	stdout, _, code = run(t, "inspect", "-json", out)
	if code != 0 {
		t.Fatal("inspect -json failed")
	}
	var rep struct {
		Version int        `json:"version"`
		Spec    trace.Spec `json:"spec"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("inspect -json emitted bad JSON: %v", err)
	}
	if rep.Version != trace.FileVersion || rep.Spec.Name != "toy" || rep.Spec.Content == "" {
		t.Errorf("inspect -json report %+v", rep)
	}

	stdout, stderr, code = run(t, "import", out)
	if code != 0 {
		t.Fatalf("import failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "1 workloads verified") || !strings.Contains(stdout, "toy") {
		t.Errorf("import output %q", stdout)
	}

	conv := filepath.Join(dir, "toy2.mtrc")
	_, stderr, code = run(t, "convert", "-out", conv, out)
	if code != 0 {
		t.Fatalf("convert failed (%d): %s", code, stderr)
	}
	a, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(conv)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("converting a current-version file is not byte-identical")
	}
}

func TestExportSuiteDirectory(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bursty")
	stdout, stderr, code := run(t, "export", "-suite", "bursty", "-ops", "4000", "-out", out)
	if code != 0 {
		t.Fatalf("export failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "exported 8 workloads from bursty") {
		t.Errorf("export output %q", stdout)
	}
	files, err := filepath.Glob(filepath.Join(out, "*"+trace.FileExt))
	if err != nil || len(files) != 8 {
		t.Fatalf("exported %d trace files (%v), want 8", len(files), err)
	}

	// The directory must resolve as a file-backed suite.
	stdout, stderr, code = run(t, "import", out)
	if code != 0 {
		t.Fatalf("import of exported dir failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "8 workloads verified") {
		t.Errorf("import output %q", stdout)
	}
}

func TestExportSingleWorkload(t *testing.T) {
	dir := t.TempDir()
	stdout, stderr, code := run(t, "export", "-suite", "phased", "-workload", "gc-pause", "-ops", "4000", "-out", dir)
	if code != 0 {
		t.Fatalf("export failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "exported 1 workloads") {
		t.Errorf("export output %q", stdout)
	}
	if _, err := trace.ReadFileSpec(filepath.Join(dir, "gc-pause.mtrc")); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if _, _, code := run(t, "bogus"); code != 2 {
		t.Error("unknown command should exit 2")
	}
	if _, _, code := run(t); code != 2 {
		t.Error("no command should exit 2")
	}
	if _, stderr, code := run(t, "export", "-suite", "nope", "-out", t.TempDir()); code != 1 || !strings.Contains(stderr, "unknown suite") {
		t.Errorf("export of unknown suite: code %d, stderr %q", code, stderr)
	}
	if _, _, code := run(t, "import", filepath.Join(t.TempDir(), "missing.mtrc")); code != 1 {
		t.Error("import of missing path should exit 1")
	}
	// A corrupt file must error cleanly through every verb.
	bad := filepath.Join(t.TempDir(), "bad.mtrc")
	if err := os.WriteFile(bad, []byte("MECPITRC but not really"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, verb := range [][]string{
		{"inspect", bad},
		{"import", bad},
		{"convert", "-out", bad + ".out", bad},
	} {
		if _, _, code := run(t, verb...); code != 1 {
			t.Errorf("%v on corrupt file: exit %d, want 1", verb, code)
		}
	}
}
