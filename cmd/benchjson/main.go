// Command benchjson turns `go test -bench` text output into a
// machine-readable JSON baseline and gates benchmark regressions against
// a committed one — the tooling behind the bench-baseline CI job and the
// repository's BENCH_*.json trajectory.
//
// Usage:
//
//	# Convert bench output (stdin or -in) to JSON (stdout or -out):
//	go test -bench . -benchmem | benchjson -out BENCH_4.json
//
//	# Gate: fail (exit 1) when the named benchmark's metric regressed
//	# more than -max-regress versus the committed baseline:
//	benchjson -check -in bench.out -baseline BENCH_4.json \
//	    -bench SimulatorThroughput -metric Mops/s -max-regress 0.20
//
// The JSON maps benchmark name (GOMAXPROCS suffix stripped, so
// baselines compare across core counts) to its metrics: the standard
// ns/op, B/op and allocs/op plus every custom b.ReportMetric unit, e.g.
// the simulator's Mops/s. For -check, throughput-style metrics (higher
// is better, the default) fail when new < (1-maxRegress)*old; pass
// -lower-better for latency-style metrics, which fail when
// new > (1+maxRegress)*old. A lower-better metric with a zero baseline
// (e.g. a locked-in allocs/op == 0) fails on any increase.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// FormatVersion is the baseline file format.
const FormatVersion = 1

// Baseline is the persisted shape of one benchmark run.
type Baseline struct {
	Format     int                  `json:"format"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// Benchmark is one benchmark's measurements: the iteration count and
// every (value, unit) pair of its output line.
type Benchmark struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	in := flag.String("in", "", "bench output file (default: stdin)")
	out := flag.String("out", "", "JSON output file (default: stdout; ignored with -check)")
	check := flag.Bool("check", false, "gate mode: compare -in against -baseline instead of converting")
	baseline := flag.String("baseline", "", "committed baseline JSON (required with -check)")
	bench := flag.String("bench", "", "benchmark to gate, without the Benchmark prefix (required with -check)")
	metric := flag.String("metric", "ns/op", "metric to gate")
	maxRegress := flag.Float64("max-regress", 0.20, "allowed fractional regression")
	lowerBetter := flag.Bool("lower-better", false, "the gated metric improves downward (latency-style)")
	flag.Parse()

	if err := realMain(*in, *out, *check, *baseline, *bench, *metric, *maxRegress, *lowerBetter); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func realMain(in, out string, check bool, baselinePath, bench, metric string, maxRegress float64, lowerBetter bool) error {
	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	current, err := Parse(r)
	if err != nil {
		return err
	}
	if len(current.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}

	if check {
		if baselinePath == "" || bench == "" {
			return fmt.Errorf("-check needs -baseline and -bench")
		}
		data, err := os.ReadFile(baselinePath)
		if err != nil {
			return err
		}
		var base Baseline
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parse %s: %w", baselinePath, err)
		}
		verdict, err := Compare(base, current, bench, metric, maxRegress, lowerBetter)
		fmt.Println(verdict)
		return err
	}

	data, err := json.MarshalIndent(current, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

// Parse extracts every benchmark result line from go test -bench output.
// Non-benchmark lines (the make banner, PASS, pkg: headers) are skipped.
func Parse(r io.Reader) (Baseline, error) {
	out := Baseline{Format: FormatVersion, Benchmarks: map[string]Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// A result line is: BenchmarkName-N  iterations  value unit [value unit ...]
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark...: output" noise
		}
		name := strings.TrimPrefix(trimCPUSuffix(fields[0]), "Benchmark")
		b := Benchmark{Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return Baseline{}, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
			}
			b.Metrics[fields[i+1]] = v
		}
		out.Benchmarks[name] = b
	}
	return out, sc.Err()
}

// trimCPUSuffix drops the trailing -GOMAXPROCS from a benchmark name.
// Dashed names with a non-numeric tail pass through untouched; a
// *numeric*-tailed sub-benchmark name ("Sweep/rob-192") is
// indistinguishable from a CPU suffix when GOMAXPROCS=1 omits it, so
// such names would be mis-trimmed — keep numeric size tails out of
// benchmark names that feed a baseline (none of this repo's do).
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Compare gates one metric of one benchmark and returns a human-readable
// verdict; a regression beyond maxRegress is an error.
func Compare(base, current Baseline, bench, metric string, maxRegress float64, lowerBetter bool) (string, error) {
	oldB, ok := base.Benchmarks[bench]
	if !ok {
		return "", fmt.Errorf("benchmark %q not in baseline (has: %s)", bench, names(base))
	}
	newB, ok := current.Benchmarks[bench]
	if !ok {
		return "", fmt.Errorf("benchmark %q not in current run (has: %s)", bench, names(current))
	}
	oldV, ok := oldB.Metrics[metric]
	if !ok {
		return "", fmt.Errorf("metric %q not in baseline for %s", metric, bench)
	}
	newV, ok := newB.Metrics[metric]
	if !ok {
		return "", fmt.Errorf("metric %q not in current run for %s", metric, bench)
	}
	if oldV < 0 || (oldV == 0 && !lowerBetter) {
		return "", fmt.Errorf("baseline %s %s is %v; cannot gate on it", bench, metric, oldV)
	}
	if oldV == 0 {
		// A zero baseline on a lower-better metric is the strictest gate
		// there is: it locks in a property (e.g. allocs/op == 0), so any
		// increase fails regardless of -max-regress.
		verdict := fmt.Sprintf("%s %s: baseline 0, current %g (zero baseline: any increase fails)",
			bench, metric, newV)
		if newV > 0 {
			return verdict, fmt.Errorf("%s %s regressed from a zero baseline", bench, metric)
		}
		return verdict + ": OK", nil
	}
	change := newV/oldV - 1
	verdict := fmt.Sprintf("%s %s: baseline %g, current %g (%+.1f%%; allowed regression %.0f%%)",
		bench, metric, oldV, newV, 100*change, 100*maxRegress)
	regressed := change < -maxRegress
	if lowerBetter {
		regressed = change > maxRegress
	}
	if regressed {
		return verdict, fmt.Errorf("%s %s regressed beyond the %.0f%% gate", bench, metric, 100*maxRegress)
	}
	return verdict + ": OK", nil
}

func names(b Baseline) string {
	out := make([]string, 0, len(b.Benchmarks))
	for name := range b.Benchmarks {
		out = append(out, name)
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}
