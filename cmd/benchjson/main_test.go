package main

import (
	"strings"
	"testing"
)

// sample is genuine `make bench-smoke` output shape: a make banner,
// go test headers, result lines with custom metrics, and the trailer.
const sample = `Running benchmark smoke (ops=120000) against the run store at /repo/.runstore...
goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkFig2ModelAccuracy-8         	       1	 252947132 ns/op	        10.21 avg-err-2000-%	         9.847 avg-err-2006-%	 1443184 B/op	    8120 allocs/op
BenchmarkSimulatorThroughput-8       	       1	  22969141 ns/op	         4.354 Mops/s	    2112 B/op	      27 allocs/op
BenchmarkTraceGeneration-8           	       1	   4969141 ns/op	        20.12 Mops/s	       0 B/op	       0 allocs/op
BenchmarkModelPredict-16             	35608032	        33.63 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	1.334s
`

func TestParse(t *testing.T) {
	b, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(b.Benchmarks), b)
	}
	st, ok := b.Benchmarks["SimulatorThroughput"]
	if !ok {
		t.Fatal("SimulatorThroughput missing (CPU suffix not stripped?)")
	}
	if st.Iterations != 1 || st.Metrics["ns/op"] != 22969141 || st.Metrics["Mops/s"] != 4.354 ||
		st.Metrics["allocs/op"] != 27 {
		t.Errorf("SimulatorThroughput = %+v", st)
	}
	if b.Benchmarks["ModelPredict"].Metrics["ns/op"] != 33.63 {
		t.Errorf("ModelPredict = %+v", b.Benchmarks["ModelPredict"])
	}
	if fig2 := b.Benchmarks["Fig2ModelAccuracy"]; fig2.Metrics["avg-err-2000-%"] != 10.21 {
		t.Errorf("custom percent metric lost: %+v", fig2)
	}
}

func mustParse(t *testing.T, s string) Baseline {
	t.Helper()
	b, err := Parse(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCompareGate(t *testing.T) {
	base := mustParse(t, "BenchmarkSimulatorThroughput-8 1 22969141 ns/op 4.000 Mops/s\n")
	cases := []struct {
		name        string
		current     string
		metric      string
		lowerBetter bool
		wantFail    bool
	}{
		{"within gate", "BenchmarkSimulatorThroughput-8 1 25000000 ns/op 3.500 Mops/s\n", "Mops/s", false, false},
		{"improvement", "BenchmarkSimulatorThroughput-4 1 20000000 ns/op 8.000 Mops/s\n", "Mops/s", false, false},
		{"regression", "BenchmarkSimulatorThroughput-8 1 40000000 ns/op 3.100 Mops/s\n", "Mops/s", false, true},
		{"exact boundary passes", "BenchmarkSimulatorThroughput-8 1 25000000 ns/op 3.200 Mops/s\n", "Mops/s", false, false},
		{"latency regression", "BenchmarkSimulatorThroughput-8 1 40000000 ns/op 4.000 Mops/s\n", "ns/op", true, true},
		{"latency within gate", "BenchmarkSimulatorThroughput-8 1 24000000 ns/op 4.000 Mops/s\n", "ns/op", true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			verdict, err := Compare(base, mustParse(t, tc.current), "SimulatorThroughput",
				tc.metric, 0.20, tc.lowerBetter)
			if (err != nil) != tc.wantFail {
				t.Errorf("Compare error = %v, wantFail = %v (verdict %q)", err, tc.wantFail, verdict)
			}
			if verdict == "" {
				t.Error("empty verdict")
			}
		})
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := mustParse(t, "BenchmarkSimulatorThroughput-8 1 22969141 ns/op 0 allocs/op\n")
	clean := mustParse(t, "BenchmarkSimulatorThroughput-8 1 21000000 ns/op 0 allocs/op\n")
	dirty := mustParse(t, "BenchmarkSimulatorThroughput-8 1 21000000 ns/op 3 allocs/op\n")
	if _, err := Compare(base, clean, "SimulatorThroughput", "allocs/op", 0.2, true); err != nil {
		t.Errorf("zero stays zero should pass: %v", err)
	}
	if _, err := Compare(base, dirty, "SimulatorThroughput", "allocs/op", 0.2, true); err == nil {
		t.Error("any increase from a zero lower-better baseline should fail")
	}
	// Higher-better metrics still cannot gate on a zero baseline.
	if _, err := Compare(base, clean, "SimulatorThroughput", "allocs/op", 0.2, false); err == nil {
		t.Error("zero baseline on a higher-better metric should be rejected")
	}
}

func TestCompareMissing(t *testing.T) {
	base := mustParse(t, "BenchmarkSimulatorThroughput-8 1 22969141 ns/op 4.000 Mops/s\n")
	cur := mustParse(t, "BenchmarkTraceGeneration-8 1 22969141 ns/op 20.0 Mops/s\n")
	if _, err := Compare(base, cur, "SimulatorThroughput", "Mops/s", 0.2, false); err == nil {
		t.Error("missing benchmark in current run should fail")
	}
	if _, err := Compare(base, base, "SimulatorThroughput", "speedup-x", 0.2, false); err == nil {
		t.Error("missing metric should fail")
	}
	if _, err := Compare(cur, cur, "SimulatorThroughput", "Mops/s", 0.2, false); err == nil {
		t.Error("missing benchmark in baseline should fail")
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo-128":      "BenchmarkFoo",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkSweep-rob-16": "BenchmarkSweep-rob",
		"BenchmarkFoo-bar":      "BenchmarkFoo-bar",
	}
	for in, want := range cases {
		if got := trimCPUSuffix(in); got != want {
			t.Errorf("trimCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
