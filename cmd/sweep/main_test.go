package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseValues(t *testing.T) {
	got, err := parseValues(" 32, 64,128 ")
	if err != nil || len(got) != 3 || got[0] != 32 || got[2] != 128 {
		t.Errorf("parseValues: %v, %v", got, err)
	}
	for _, bad := range []string{"", "a,b", "64,-1", "64,,128"} {
		if _, err := parseValues(bad); err == nil {
			t.Errorf("parseValues(%q) should fail", bad)
		}
	}
}

func TestParseAxesPairsFlags(t *testing.T) {
	axes, err := parseAxes([]string{"rob", "memlat"}, []string{"64,128", "150"})
	if err != nil || len(axes) != 2 || axes[1].Param != "memlat" || axes[1].Values[0] != 150 {
		t.Errorf("parseAxes: %+v, %v", axes, err)
	}
	if _, err := parseAxes([]string{"rob", "memlat"}, []string{"64"}); err == nil {
		t.Error("mismatched -param/-values counts should fail")
	}
}

func TestRealMainRejectsBadAxis(t *testing.T) {
	run := func(param, values string) error {
		return realMain(&bytes.Buffer{}, "core2", []string{param}, []string{values}, "cpu2000", 1000, 2, 0, 0, "", "", "", "", false)
	}
	err := run("cores", "1,2")
	if err == nil || !strings.Contains(err.Error(), "rob") {
		t.Errorf("unknown axis should list valid ones: %v", err)
	}
	if err := realMain(&bytes.Buffer{}, "atom", []string{"rob"}, []string{"64"}, "cpu2000", 1000, 2, 0, 0, "", "", "", "", false); err == nil {
		t.Error("unknown base machine should fail")
	}
	if err := run("rob", ""); err == nil {
		t.Error("missing values should fail")
	}
	if err := run("rob", "64,64"); err == nil {
		t.Error("duplicate values should be rejected at validation time")
	}
	// Grid path validates too: a duplicated value on any axis fails
	// before anything simulates.
	err = realMain(&bytes.Buffer{}, "core2", []string{"rob", "memlat"}, []string{"64,96", "200,200"},
		"cpu2000", 1000, 2, 0, 0, "", "", "", "", false)
	if err == nil || !strings.Contains(err.Error(), "listed twice") {
		t.Errorf("duplicate grid values should be rejected: %v", err)
	}
}

func TestRealMainPlanFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "plan.json")
	if err := os.WriteFile(good, []byte(`{
		"base": {"name": "core2"},
		"axes": [{"param": "rob", "values": [48, 96]}, {"param": "mshrs", "values": [4, 8]}],
		"suite": "cpu2000"
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := realMain(&out, "core2", nil, nil, "cpu2000", 2000, 2, 0, 0, "", good, "", "", false); err != nil {
		t.Fatalf("plan file run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"plan: core2 × rob×mshrs on cpu2000 (4 cells", "sim-CPI", "worst extrapolation"} {
		if !strings.Contains(text, want) {
			t.Errorf("grid output missing %q:\n%s", want, text)
		}
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"base": {"name": "core2"}, "axes": [], "suite": "cpu2000"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := realMain(&out, "core2", nil, nil, "cpu2000", 1000, 2, 0, 0, "", bad, "", "", false); err == nil {
		t.Error("axis-free plan file should fail")
	}
	if err := realMain(&out, "core2", []string{"rob"}, []string{"64"}, "cpu2000", 1000, 2, 0, 0, "", good, "", "", false); err == nil {
		t.Error("-plan together with -param should fail")
	}
}

func TestRealMainOptimizeFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "opt.json")
	if err := os.WriteFile(spec, []byte(`{
		"base": {"name": "core2"},
		"axes": [{"param": "width", "values": [2, 4]}, {"param": "memlat", "values": [150, 300]}],
		"suite": "cpu2000",
		"objective": {"kind": "min-cpi"}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	store := filepath.Join(dir, "store")
	var out bytes.Buffer
	if err := realMain(&out, "core2", nil, nil, "cpu2000", 2000, 2, 0, 0, store, "", spec, "", false); err != nil {
		t.Fatalf("optimize run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"optimize: core2 over width×memlat on cpu2000", "min-cpi", "coordinate-descent", "probes:", "best:", "model stack:"} {
		if !strings.Contains(text, want) {
			t.Errorf("optimize output missing %q:\n%s", want, text)
		}
	}

	// The warm -json rerun is the smoke-test contract: every run from
	// the store, zero simulations, zero regenerated traces.
	out.Reset()
	if err := realMain(&out, "core2", nil, nil, "cpu2000", 2000, 2, 0, 0, store, "", spec, "", true); err != nil {
		t.Fatalf("warm optimize rerun: %v", err)
	}
	var rep struct {
		Probes int `json:"probes"`
		Sims   struct {
			Simulated int `json:"simulated"`
			TraceGens int `json:"traceGens"`
		} `json:"sims"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
	}
	if rep.Probes == 0 {
		t.Error("JSON report missing probe accounting")
	}
	if rep.Sims.Simulated != 0 || rep.Sims.TraceGens != 0 {
		t.Errorf("warm rerun sims = %+v, want zero simulated and zero trace generations", rep.Sims)
	}

	// -optimize is exclusive with -plan and -param, and -json needs it.
	if err := realMain(&out, "core2", []string{"rob"}, []string{"64"}, "cpu2000", 1000, 2, 0, 0, "", "", spec, "", false); err == nil {
		t.Error("-optimize together with -param should fail")
	}
	if err := realMain(&out, "core2", nil, nil, "cpu2000", 1000, 2, 0, 0, "", spec, spec, "", false); err == nil {
		t.Error("-optimize together with -plan should fail")
	}
	if err := realMain(&out, "core2", nil, nil, "cpu2000", 1000, 2, 0, 0, "", "", "", "", true); err == nil {
		t.Error("-json without -optimize should fail")
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [48]}], "suite": "cpu2000", "objective": {"kind": "max-fun"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := realMain(&out, "core2", nil, nil, "cpu2000", 1000, 2, 0, 0, "", "", bad, "", false); err == nil {
		t.Error("unknown objective kind should fail before anything simulates")
	}
}

func TestRealMainSeedsFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "seeds.json")
	if err := os.WriteFile(spec, []byte(`{
		"base": {"name": "core2"},
		"suite": "cpu2000",
		"count": 2
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	store := filepath.Join(dir, "store")
	var out bytes.Buffer
	if err := realMain(&out, "core2", nil, nil, "cpu2006", 2000, 2, 0, 0, store, "", "", spec, false); err != nil {
		t.Fatalf("seeds run: %v", err)
	}
	text := out.String()
	for _, want := range []string{"seeds: 2 replications [1 2]", "mean-CPI", "95% CI", "coefficient stability"} {
		if !strings.Contains(text, want) {
			t.Errorf("seeds output missing %q:\n%s", want, text)
		}
	}

	// The warm -json rerun is the smoke-test contract: every run from
	// the store, zero simulations, zero regenerated traces.
	out.Reset()
	if err := realMain(&out, "core2", nil, nil, "cpu2006", 2000, 2, 0, 0, store, "", "", spec, true); err != nil {
		t.Fatalf("warm seeds rerun: %v", err)
	}
	var rep struct {
		Seeds []uint64 `json:"seeds"`
		Cells []struct {
			CPI struct {
				PerSeed []float64 `json:"perSeed"`
			} `json:"cpi"`
		} `json:"cells"`
		Sims struct {
			StoreHits int `json:"storeHits"`
			Simulated int `json:"simulated"`
			TraceGens int `json:"traceGens"`
		} `json:"sims"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Seeds) != 2 || len(rep.Cells) != 1 || len(rep.Cells[0].CPI.PerSeed) != 2 {
		t.Errorf("JSON report shape wrong: %+v", rep)
	}
	if rep.Sims.Simulated != 0 || rep.Sims.TraceGens != 0 {
		t.Errorf("warm rerun sims = %+v, want zero simulated and zero trace generations", rep.Sims)
	}
	if rep.Sims.StoreHits == 0 {
		t.Error("warm rerun should report store hits")
	}

	// -seeds is exclusive with the other modes, and bad specs fail fast.
	if err := realMain(&out, "core2", []string{"rob"}, []string{"64"}, "cpu2000", 1000, 2, 0, 0, "", "", "", spec, false); err == nil {
		t.Error("-seeds together with -param should fail")
	}
	bad := filepath.Join(dir, "badseeds.json")
	if err := os.WriteFile(bad, []byte(`{"base": {"name": "core2"}, "suite": "cpu2000", "seeds": [0]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := realMain(&out, "core2", nil, nil, "cpu2000", 1000, 2, 0, 0, "", "", "", bad, false); err == nil {
		t.Error("seed 0 should fail before anything simulates")
	}
}
