package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseValues(t *testing.T) {
	got, err := parseValues(" 32, 64,128 ")
	if err != nil || len(got) != 3 || got[0] != 32 || got[2] != 128 {
		t.Errorf("parseValues: %v, %v", got, err)
	}
	for _, bad := range []string{"", "a,b", "64,-1", "64,,128"} {
		if _, err := parseValues(bad); err == nil {
			t.Errorf("parseValues(%q) should fail", bad)
		}
	}
}

func TestRealMainRejectsBadAxis(t *testing.T) {
	err := realMain(&bytes.Buffer{}, "core2", "cores", "1,2", "cpu2000", 1000, 2, "")
	if err == nil || !strings.Contains(err.Error(), "rob") {
		t.Errorf("unknown axis should list valid ones: %v", err)
	}
	if err := realMain(&bytes.Buffer{}, "atom", "rob", "64", "cpu2000", 1000, 2, ""); err == nil {
		t.Error("unknown base machine should fail")
	}
	if err := realMain(&bytes.Buffer{}, "core2", "rob", "", "cpu2000", 1000, 2, ""); err == nil {
		t.Error("missing values should fail")
	}
}
