// Command sweep runs one-axis micro-architecture parameter sweeps: it
// derives one machine per swept value from a registered base machine,
// simulates a suite on every point (incrementally, through the run
// store), fits the mechanistic-empirical model at the base
// configuration, and prints sensitivity tables of simulated vs
// model-predicted CPI — overall and per CPI-stack component. This is the
// model-extrapolation experiment the paper gestures at but never runs:
// the empirical coefficients are frozen at the fit point, so the tables
// show exactly where the fitted model keeps tracking the hardware as a
// parameter scales and where it falls off.
//
// Usage:
//
//	sweep -base core2 -param rob -values 32,64,128,256
//	      [-suite cpu2006] [-ops N] [-starts N] [-store DIR]
//
// Everything is deterministic; with -store DIR a repeated sweep
// dispatches zero simulations (100% run-store hits).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/runstore"
	"repro/internal/uarch"
)

func main() {
	var paramDocs []string
	for _, p := range experiments.SweepParams() {
		paramDocs = append(paramDocs, p.Name)
	}
	base := flag.String("base", "core2", "base machine to derive sweep points from")
	param := flag.String("param", "rob", "parameter to sweep: "+strings.Join(paramDocs, ", "))
	values := flag.String("values", "", "comma-separated parameter values, e.g. 32,64,128,256")
	suite := flag.String("suite", "cpu2006", "suite to simulate and fit on")
	ops := flag.Int("ops", 300000, "µops per workload")
	starts := flag.Int("starts", 12, "regression multi-start count")
	storeDir := flag.String("store", "", "run-store directory for cached simulation results (empty = no cache)")
	flag.Parse()

	if err := realMain(os.Stdout, *base, *param, *values, *suite, *ops, *starts, *storeDir); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func parseValues(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("no -values given (want e.g. -values 32,64,128)")
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad sweep value %q: %w", f, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("sweep value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func realMain(out io.Writer, baseName, param, valueList, suiteName string, ops, starts int, storeDir string) error {
	vals, err := parseValues(valueList)
	if err != nil {
		return err
	}
	if _, err := experiments.SweepParamByName(param); err != nil {
		return err
	}
	base, err := uarch.ByName(baseName)
	if err != nil {
		return err
	}
	var store *runstore.Store
	if storeDir != "" {
		if store, err = runstore.Open(storeDir); err != nil {
			return err
		}
	}

	fmt.Fprintf(os.Stderr, "sweeping %s %s over %v on %s (%d µops/workload)...\n",
		baseName, param, vals, suiteName, ops)
	t0 := time.Now()
	res, err := experiments.RunSweep(base, param, vals, suiteName, experiments.Options{
		NumOps: ops, FitStarts: starts, Store: store,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep done in %v\n", time.Since(t0).Round(time.Millisecond))
	if store != nil {
		st := res.Stats
		fmt.Fprintf(os.Stderr, "run store %s: %d hits, %d simulated (%.1f%% hit rate)\n",
			store.Dir(), st.Hits, st.Simulated,
			100*float64(st.Hits)/float64(st.Hits+st.Simulated))
	}
	fmt.Fprintln(os.Stderr)

	fmt.Fprint(out, res.Render())
	return nil
}
