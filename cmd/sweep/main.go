// Command sweep runs micro-architecture parameter explorations: it
// derives machines from a registered base, simulates a suite on every
// point (incrementally, through the run store), fits the
// mechanistic-empirical model at the base configuration, and prints
// sensitivity tables of simulated vs model-predicted CPI.
//
// With one -param/-values pair it is the classic one-axis sweep,
// overall and per CPI-stack component — the model-extrapolation
// experiment the paper gestures at but never runs. Repeating
// -param/-values crosses the axes into a multi-axis exploration plan: a
// full grid of derived machines, fitted once at the base point and
// extrapolated per cell, with every workload's µop trace materialized
// once and replayed across all grid machines. -plan loads the same grid
// from a strict-JSON plan file ({"base": ..., "axes": [...], "suite":
// ...}), the format POST /v1/plan accepts over the wire.
//
// -optimize searches a grid instead of enumerating it: it loads a
// strict-JSON optimize spec ({"base": ..., "axes": [...], "suite": ...,
// "objective": ..., "search": ...} — the POST /v1/optimize format),
// fits the model once at the base point and lets coordinate descent or
// successive halving probe only the cells the search needs, printing
// the best point (or Pareto frontier) with per-component CPI stacks and
// the probe count. -json emits the wire-format report instead of the
// table.
//
// -seeds replicates a whole campaign across workload-generator seeds:
// it loads a strict-JSON seeds spec ({"base": ..., "suite": ...,
// "seeds": [...]} or {"campaign": ..., "count": N} — the POST /v1/seeds
// format), simulates and fits every (machine, suite) cell once per
// seed, and prints mean, sample standard deviation and Student-t 95%
// confidence intervals on CPI and model error, plus a per-coefficient
// fit-stability table. Store keys include the seed, so reruns and
// overlapping sweeps stay warm.
//
// Usage:
//
//	sweep -base core2 -param rob -values 32,64,128,256
//	      [-suite cpu2006] [-ops N] [-starts N] [-store DIR]
//	sweep -base core2 -param rob -values 64,128 -param memlat -values 150,300
//	sweep -plan grid.json [-ops N] [-starts N] [-store DIR]
//	sweep -optimize spec.json [-json] [-ops N] [-starts N] [-store DIR]
//	sweep -seeds spec.json [-json] [-ops N] [-starts N] [-store DIR]
//	      [-cpuprofile FILE] [-memprofile FILE]
//
// Everything is deterministic; with -store DIR a repeated run
// dispatches zero simulations (100% run-store hits) and regenerates
// zero traces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/runstore"
	"repro/internal/serve"
	"repro/internal/uarch"
)

// multiFlag collects repeated occurrences of one flag, so -param and
// -values can be given once per grid axis.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, " ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var paramDocs []string
	for _, p := range experiments.SweepParams() {
		paramDocs = append(paramDocs, p.Name)
	}
	base := flag.String("base", "core2", "base machine to derive exploration points from")
	var params, valueLists multiFlag
	flag.Var(&params, "param", "parameter to explore, repeatable for a grid: "+strings.Join(paramDocs, ", "))
	flag.Var(&valueLists, "values", "comma-separated values for the matching -param (repeat once per axis), e.g. 32,64,128,256")
	planFile := flag.String("plan", "", "plan file (strict JSON {base, axes, suite}); replaces -base/-param/-values/-suite")
	optimizeFile := flag.String("optimize", "", "optimize spec file (strict JSON {base, axes, suite, objective[, search]}); replaces -base/-param/-values/-suite")
	seedsFile := flag.String("seeds", "", "seeds spec file (strict JSON {base, suite, seeds|count} or {campaign, seeds|count}); replaces -base/-param/-values/-suite")
	jsonOut := flag.Bool("json", false, "with -optimize, -seeds or a grid plan, print the wire-format JSON report instead of the table")
	suite := flag.String("suite", "cpu2006", "suite to simulate and fit on")
	ops := flag.Int("ops", 300000, "µops per workload")
	starts := flag.Int("starts", 12, "regression multi-start count")
	storeDir := flag.String("store", "", "run-store directory for cached simulation results (empty = no cache)")
	workers := flag.Int("workers", 0, "simulation worker count (0 = GOMAXPROCS)")
	liveBufs := flag.Int("livebufs", 0, "max materialized µop streams live at once, ≈56·ops bytes each (0 = workers+1)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	err = realMain(os.Stdout, *base, params, valueLists, *suite, *ops, *starts, *workers, *liveBufs, *storeDir, *planFile, *optimizeFile, *seedsFile, *jsonOut)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func parseValues(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("no -values given (want e.g. -values 32,64,128)")
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad sweep value %q: %w", f, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("sweep value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseAxes pairs each -param occurrence with the -values occurrence at
// the same position.
func parseAxes(params, valueLists []string) ([]experiments.PlanAxis, error) {
	if len(params) != len(valueLists) {
		return nil, fmt.Errorf("%d -param flags but %d -values flags (give one -values per -param)",
			len(params), len(valueLists))
	}
	axes := make([]experiments.PlanAxis, 0, len(params))
	for i, p := range params {
		vals, err := parseValues(valueLists[i])
		if err != nil {
			return nil, err
		}
		axes = append(axes, experiments.PlanAxis{Param: p, Values: vals})
	}
	return axes, nil
}

func realMain(out io.Writer, baseName string, params, valueLists []string, suiteName string, ops, starts, workers, liveBufs int, storeDir, planFile, optimizeFile, seedsFile string, jsonOut bool) error {
	opts := experiments.Options{NumOps: ops, FitStarts: starts, Workers: workers, LiveBuffers: liveBufs}
	if storeDir != "" {
		store, err := runstore.Open(storeDir)
		if err != nil {
			return err
		}
		opts.Store = store
	}

	// A seeds spec carries its own subject (base+suite or campaign) and
	// replication list.
	if seedsFile != "" {
		if planFile != "" || optimizeFile != "" || len(params) > 0 || len(valueLists) > 0 {
			return fmt.Errorf("-seeds replaces -plan/-optimize/-param/-values; give one or the other")
		}
		spec, err := experiments.LoadSeedsSpec(seedsFile)
		if err != nil {
			return err
		}
		sweep, err := spec.Resolve()
		if err != nil {
			return err
		}
		return runSeeds(out, sweep, opts, jsonOut)
	}

	// An optimize spec carries its own base, axes, suite and objective.
	if optimizeFile != "" {
		if planFile != "" || len(params) > 0 || len(valueLists) > 0 {
			return fmt.Errorf("-optimize replaces -plan/-param/-values; give one or the other")
		}
		spec, err := experiments.LoadOptimizeSpec(optimizeFile)
		if err != nil {
			return err
		}
		o, err := spec.Resolve()
		if err != nil {
			return err
		}
		return runOptimize(out, o, opts, jsonOut)
	}

	// A plan file carries its own base, axes and suite; otherwise the
	// axes come from the repeated -param/-values pairs.
	if planFile != "" {
		if len(params) > 0 || len(valueLists) > 0 {
			return fmt.Errorf("-plan replaces -param/-values; give one or the other")
		}
		ps, err := experiments.LoadPlanSpec(planFile)
		if err != nil {
			return err
		}
		plan, err := ps.Resolve()
		if err != nil {
			return err
		}
		return runGrid(out, plan, opts, jsonOut)
	}

	if len(params) == 0 {
		params = []string{"rob"}
		if len(valueLists) == 0 {
			return fmt.Errorf("no -values given (want e.g. -values 32,64,128)")
		}
	}
	axes, err := parseAxes(params, valueLists)
	if err != nil {
		return err
	}
	base, err := uarch.ByName(baseName)
	if err != nil {
		return err
	}

	if len(axes) == 1 {
		// The classic one-axis sweep, with its original output format.
		if jsonOut {
			return fmt.Errorf("-json is only meaningful with -optimize or a multi-axis grid plan")
		}
		if _, err := experiments.SweepParamByName(axes[0].Param); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweeping %s %s over %v on %s (%d µops/workload)...\n",
			baseName, axes[0].Param, axes[0].Values, suiteName, ops)
		t0 := time.Now()
		res, err := experiments.RunSweep(base, axes[0].Param, axes[0].Values, suiteName, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep done in %v\n", time.Since(t0).Round(time.Millisecond))
		if opts.Store != nil {
			st := res.Stats
			fmt.Fprintf(os.Stderr, "run store %s: %d hits, %d simulated (%.1f%% hit rate)\n",
				opts.Store.Dir(), st.Hits, st.Simulated,
				100*float64(st.Hits)/float64(st.Hits+st.Simulated))
		}
		fmt.Fprintln(os.Stderr)

		fmt.Fprint(out, res.Render())
		return nil
	}

	plan, err := experiments.NewPlan(base, axes, suiteName)
	if err != nil {
		return err
	}
	return runGrid(out, plan, opts, jsonOut)
}

// runOptimize executes a validated design-space search and prints the
// rendered result (or, with -json, the same wire-format report POST
// /v1/optimize answers — machine-greppable for smoke tests).
func runOptimize(out io.Writer, o *experiments.Optimize, opts experiments.Options, jsonOut bool) error {
	var axisNames []string
	for _, ax := range o.Plan.Axes {
		axisNames = append(axisNames, ax.Param)
	}
	fmt.Fprintf(os.Stderr, "optimizing %s over %s on %s: %s via %s, %d cells (%d µops/workload)...\n",
		o.Plan.Base.Name, strings.Join(axisNames, "×"), o.Plan.Suite,
		o.Objective.Kind, o.Search.Algorithm, len(o.Plan.Cells), opts.NumOps)
	t0 := time.Now()
	res, err := experiments.RunOptimize(o, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "optimize done in %v: %d of %d cells probed\n",
		time.Since(t0).Round(time.Millisecond), res.Probes, res.GridCells)
	st := res.Stats
	if opts.Store != nil {
		fmt.Fprintf(os.Stderr, "run store %s: %d hits, %d simulated (%.1f%% hit rate), %d traces generated\n",
			opts.Store.Dir(), st.Hits, st.Simulated,
			100*float64(st.Hits)/float64(st.Hits+st.Simulated), st.TraceGens)
	} else {
		fmt.Fprintf(os.Stderr, "%d simulated, %d traces generated\n", st.Simulated, st.TraceGens)
	}
	fmt.Fprintln(os.Stderr)

	if jsonOut {
		data, err := json.MarshalIndent(res.Report(), "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		_, err = out.Write(data)
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

// runSeeds executes a validated seed sweep and prints the rendered
// statistics (or, with -json, the same wire-format report POST
// /v1/seeds answers — machine-greppable for smoke tests).
func runSeeds(out io.Writer, s *experiments.Seeds, opts experiments.Options, jsonOut bool) error {
	var machineNames []string
	for _, m := range s.Machines {
		machineNames = append(machineNames, m.Name)
	}
	fmt.Fprintf(os.Stderr, "seed-sweeping %s × %s over %d seeds %v (%d µops/workload)...\n",
		strings.Join(machineNames, ","), strings.Join(s.Suites, ","),
		len(s.SeedList), s.SeedList, opts.NumOps)
	t0 := time.Now()
	res, err := experiments.RunSeeds(s, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "seeds done in %v\n", time.Since(t0).Round(time.Millisecond))
	st := res.Stats
	if opts.Store != nil {
		fmt.Fprintf(os.Stderr, "run store %s: %d hits, %d simulated (%.1f%% hit rate), %d traces generated\n",
			opts.Store.Dir(), st.Hits, st.Simulated,
			100*float64(st.Hits)/float64(st.Hits+st.Simulated), st.TraceGens)
	} else {
		fmt.Fprintf(os.Stderr, "%d simulated, %d traces generated\n", st.Simulated, st.TraceGens)
	}
	fmt.Fprintln(os.Stderr)

	if jsonOut {
		data, err := json.MarshalIndent(res.Report(), "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		_, err = out.Write(data)
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}

// runGrid executes a validated multi-axis plan and prints the grid
// table plus sourcing statistics (including how many µop traces were
// actually generated — a warm store regenerates none, and a cold grid
// generates one per workload, not one per cell).
func runGrid(out io.Writer, plan *experiments.Plan, opts experiments.Options, jsonOut bool) error {
	var axisNames []string
	for _, ax := range plan.Axes {
		axisNames = append(axisNames, ax.Param)
	}
	fmt.Fprintf(os.Stderr, "planning %s over %s on %s: %d cells (%d µops/workload)...\n",
		plan.Base.Name, strings.Join(axisNames, "×"), plan.Suite, len(plan.Cells), opts.NumOps)
	t0 := time.Now()
	res, err := experiments.RunPlan(plan, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "plan done in %v\n", time.Since(t0).Round(time.Millisecond))
	st := res.Stats
	if opts.Store != nil {
		fmt.Fprintf(os.Stderr, "run store %s: %d hits, %d simulated (%.1f%% hit rate), %d traces generated\n",
			opts.Store.Dir(), st.Hits, st.Simulated,
			100*float64(st.Hits)/float64(st.Hits+st.Simulated), st.TraceGens)
	} else {
		fmt.Fprintf(os.Stderr, "%d simulated, %d traces generated\n", st.Simulated, st.TraceGens)
	}
	fmt.Fprintln(os.Stderr)

	if jsonOut {
		data, err := json.MarshalIndent(serve.PlanResponseFrom(res), "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		_, err = out.Write(data)
		return err
	}
	fmt.Fprint(out, res.Render())
	return nil
}
