// Command mecpi is the user-facing tool of the library: it fits a
// mechanistic-empirical performance model for a machine from a benchmark
// suite and prints CPI stacks — the paper's headline capability of
// constructing CPI stacks "on real hardware" (here: on the simulated
// machines, from performance counters only).
//
// Usage:
//
//	mecpi [-machine core2] [-suite cpu2006] [-workload mcf] [-ops N]
//	      [-starts N] [-truth] [-store DIR]
//	      [-cpuprofile FILE] [-memprofile FILE]
//
// Without -workload it prints the fitted model and the suite-wide
// accuracy; with -workload it prints that workload's CPI stack, and with
// -truth also the simulator's ground-truth stack next to it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/runstore"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/suites"
	"repro/internal/uarch"
)

func main() {
	machine := flag.String("machine", "core2", "target machine: "+strings.Join(uarch.Names(), ", "))
	suiteName := flag.String("suite", "cpu2006", "suite to infer the model from: "+strings.Join(suites.Names(), ", "))
	workload := flag.String("workload", "", "workload whose CPI stack to print (default: suite summary)")
	ops := flag.Int("ops", 300000, "µops per workload")
	starts := flag.Int("starts", 12, "regression multi-start count")
	truth := flag.Bool("truth", false, "also print the simulator's ground-truth stack")
	characterize := flag.Bool("characterize", false, "classify every workload by its dominant CPI component")
	storeDir := flag.String("store", "", "run-store directory for cached simulation results (empty = no cache)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mecpi:", err)
		os.Exit(1)
	}
	err = realMain(*machine, *suiteName, *workload, *ops, *starts, *truth, *characterize, *storeDir)
	if perr := stopProf(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mecpi:", err)
		os.Exit(1)
	}
}

func realMain(machineName, suiteName, workload string, ops, starts int, truth, characterize bool, storeDir string) error {
	m, err := uarch.ByName(machineName)
	if err != nil {
		return err
	}
	suite, err := suites.ByName(suiteName, suites.Options{NumOps: ops})
	if err != nil {
		return err
	}
	var store *runstore.Store
	if storeDir != "" {
		if store, err = runstore.Open(storeDir); err != nil {
			return err
		}
	}

	// The provider is the same simulate+fit path the mecpid daemon
	// serves from, so this one-shot answer is bit-identical to the
	// daemon's for identical options.
	prov := experiments.NewProvider(experiments.Options{NumOps: ops, FitStarts: starts, Store: store})

	fmt.Fprintf(os.Stderr, "running %d workloads on %s...\n", len(suite.Workloads), m.Name)
	fmt.Fprintf(os.Stderr, "fitting the mechanistic-empirical model...\n")
	f, err := prov.Fitted(m, suiteName)
	if err != nil {
		return err
	}
	obs, model, runs := f.Obs, f.Model, f.Runs
	if store != nil {
		st := store.Stats()
		fmt.Fprintf(os.Stderr, "run store %s: %d hits, %d misses\n", store.Dir(), st.Hits, st.Misses)
	}

	if characterize {
		fmt.Print(core.RenderCharacterization(core.Characterize(model, obs)))
		fmt.Println()
		fmt.Print(stack.RenderCPIStack(
			fmt.Sprintf("mean CPI stack of %s on %s", suite.Name, m.Name),
			core.SuiteProfile(model, obs)))
		return nil
	}

	if workload == "" {
		fmt.Println(model)
		pred := model.PredictAll(obs)
		meas := make([]float64, len(obs))
		for i := range obs {
			meas[i] = obs[i].MeasuredCPI
		}
		errs := stats.RelErrs(pred, meas)
		fmt.Printf("\nsuite accuracy on %s/%s: avg err %.1f%%, max %.1f%%, %.0f%% of benchmarks < 20%%\n",
			m.Name, suite.Name, 100*stats.Mean(errs), 100*stats.Max(errs),
			100*stats.FractionBelow(errs, 0.20))
		fmt.Printf("\nper-workload CPI (measured → predicted):\n")
		for i, o := range obs {
			fmt.Printf("  %-14s %7.3f → %7.3f  (%+5.1f%%)\n",
				o.Name, o.MeasuredCPI, pred[i], 100*(pred[i]-o.MeasuredCPI)/o.MeasuredCPI)
		}
		return nil
	}

	var target *core.Observation
	for i := range obs {
		if obs[i].Name == workload {
			target = &obs[i]
			break
		}
	}
	if target == nil {
		return fmt.Errorf("workload %q not in suite %s", workload, suite.Name)
	}
	predStack := model.Stack(target.Feat)
	if truth {
		truthStack := runs[workload].Truth.CPIStack(runs[workload].Counters.Uops)
		fmt.Print(stack.RenderComparison(
			fmt.Sprintf("CPI stack for %s on %s (model vs ground truth):", workload, m.Name),
			predStack, truthStack))
		return nil
	}
	fmt.Print(stack.RenderCPIStack(
		fmt.Sprintf("CPI stack for %s on %s", workload, m.Name), predStack))
	fmt.Printf("measured CPI: %.4f\n", target.MeasuredCPI)
	return nil
}
