package ann

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestTrainLinearFunction(t *testing.T) {
	// An MLP should easily learn a linear map.
	r := rng.New(3)
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{r.Float64() * 4, r.Float64() * 4}
		y[i] = 2*X[i][0] - X[i][1] + 3
	}
	net, err := Train(X, y, Options{Hidden: 6, Epochs: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pred := net.PredictAll(X)
	if mare := stats.MARE(pred, y); mare > 0.05 {
		t.Errorf("linear-function MARE %.3f, want < 0.05", mare)
	}
}

func TestTrainNonlinearFunction(t *testing.T) {
	// y = x1² + sin(x2); needs the hidden layer.
	r := rng.New(11)
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{r.Float64()*2 - 1, r.Float64() * 3}
		y[i] = X[i][0]*X[i][0] + math.Sin(X[i][1]) + 2
	}
	net, err := Train(X, y, Options{Hidden: 12, Epochs: 4000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pred := net.PredictAll(X)
	if mare := stats.MARE(pred, y); mare > 0.08 {
		t.Errorf("nonlinear MARE %.3f, want < 0.08", mare)
	}
}

func TestTrainDeterministic(t *testing.T) {
	X := [][]float64{{1, 2}, {2, 1}, {3, 3}, {0, 1}, {2, 2}}
	y := []float64{1, 2, 3, 0.5, 2.5}
	a, err := Train(X, y, Options{Hidden: 4, Epochs: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(X, y, Options{Hidden: 4, Epochs: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if a.Predict(x) != b.Predict(x) {
			t.Fatalf("non-deterministic training at sample %d", i)
		}
	}
}

func TestTrainSeedsDiffer(t *testing.T) {
	X := [][]float64{{1, 2}, {2, 1}, {3, 3}, {0, 1}}
	y := []float64{1, 2, 3, 0.5}
	a, _ := Train(X, y, Options{Hidden: 4, Epochs: 50, Seed: 1})
	b, _ := Train(X, y, Options{Hidden: 4, Epochs: 50, Seed: 2})
	same := true
	for _, x := range X {
		if a.Predict(x) != b.Predict(x) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical networks")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, Options{}); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := Train([][]float64{{1}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("expected error on length mismatch")
	}
}

func TestConstantTarget(t *testing.T) {
	// Degenerate target: zero output variance must not blow up training.
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	net, err := Train(X, y, Options{Hidden: 3, Epochs: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		p := net.Predict(x)
		if math.Abs(p-5) > 0.5 || math.IsNaN(p) {
			t.Errorf("constant-target prediction %v, want ~5", p)
		}
	}
}

func TestOverfitsSmallSample(t *testing.T) {
	// Documenting the behaviour the paper exploits in Figure 4: with few
	// training points and enough capacity, the ANN interpolates training
	// data nearly perfectly but generalizes poorly out of range.
	X := [][]float64{{0.1}, {0.3}, {0.5}, {0.7}, {0.9}}
	y := []float64{1.0, 1.8, 1.2, 2.5, 1.1}
	net, err := Train(X, y, Options{Hidden: 16, Epochs: 6000, L2: 1e-9, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pred := net.PredictAll(X)
	if mare := stats.MARE(pred, y); mare > 0.05 {
		t.Errorf("training MARE %.3f, expected near-interpolation", mare)
	}
	// Out-of-range extrapolation should be visibly wrong for at least one
	// probe (tanh saturation makes it flat, nothing like the oscillation).
	probe := net.Predict([]float64{3.0})
	if math.IsNaN(probe) || math.IsInf(probe, 0) {
		t.Errorf("extrapolation produced %v", probe)
	}
}

func TestHiddenAccessor(t *testing.T) {
	net, err := Train([][]float64{{1}, {2}}, []float64{1, 2}, Options{Hidden: 5, Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if net.Hidden() != 5 {
		t.Errorf("Hidden()=%d, want 5", net.Hidden())
	}
}
