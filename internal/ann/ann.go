// Package ann implements the artificial-neural-network baseline the paper
// compares against: a multi-layer perceptron with one hidden layer whose
// nodes compute tanh of a weighted sum of all inputs, and a linear output
// node over the hidden activations (Section 4 of the paper). Training
// minimizes mean squared error on standardized inputs/targets with Adam;
// initialization and shuffling are fully deterministic.
package ann

import (
	"fmt"
	"math"

	"repro/internal/regress"
	"repro/internal/rng"
)

// Options configures network topology and training.
type Options struct {
	Hidden    int     // hidden nodes (default 8)
	Epochs    int     // training epochs (default 2000)
	LearnRate float64 // Adam step size (default 0.01)
	L2        float64 // weight decay (default 1e-4)
	Seed      uint64  // init/shuffle seed (default 1)
}

func (o Options) withDefaults() Options {
	if o.Hidden <= 0 {
		o.Hidden = 8
	}
	if o.Epochs <= 0 {
		o.Epochs = 2000
	}
	if o.LearnRate <= 0 {
		o.LearnRate = 0.01
	}
	if o.L2 < 0 {
		o.L2 = 0
	} else if o.L2 == 0 {
		o.L2 = 1e-4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Network is a trained MLP for scalar regression.
type Network struct {
	inDim  int
	hidden int
	// Parameters: w1[h][i] input→hidden weights, b1[h] hidden biases,
	// w2[h] hidden→output weights, b2 output bias.
	w1 [][]float64
	b1 []float64
	w2 []float64
	b2 float64

	inScale  *regress.Standardizer
	outMean  float64
	outScale float64
}

// Train fits an MLP to (X, y). X is row-major; y are scalar targets.
func Train(X [][]float64, y []float64, opts Options) (*Network, error) {
	opts = opts.withDefaults()
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("ann: Train needs matching non-empty X (%d) and y (%d)", n, len(y))
	}
	inDim := len(X[0])
	scale, err := regress.FitStandardizer(X)
	if err != nil {
		return nil, err
	}
	Z := scale.ApplyAll(X)

	// Standardize targets too so the learning rate is scale-free.
	var mu, sd float64
	for _, v := range y {
		mu += v
	}
	mu /= float64(n)
	for _, v := range y {
		d := v - mu
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(n))
	if sd < 1e-12 {
		sd = 1
	}
	t := make([]float64, n)
	for i, v := range y {
		t[i] = (v - mu) / sd
	}

	net := &Network{
		inDim:    inDim,
		hidden:   opts.Hidden,
		w1:       make([][]float64, opts.Hidden),
		b1:       make([]float64, opts.Hidden),
		w2:       make([]float64, opts.Hidden),
		inScale:  scale,
		outMean:  mu,
		outScale: sd,
	}
	r := rng.New(opts.Seed)
	// Xavier-style init.
	s1 := math.Sqrt(2.0 / float64(inDim+opts.Hidden))
	s2 := math.Sqrt(2.0 / float64(opts.Hidden+1))
	for h := 0; h < opts.Hidden; h++ {
		net.w1[h] = make([]float64, inDim)
		for i := range net.w1[h] {
			net.w1[h][i] = r.NormFloat64() * s1
		}
		net.w2[h] = r.NormFloat64() * s2
	}

	net.adam(Z, t, opts, r)
	return net, nil
}

// adam runs full-batch Adam on standardized data.
func (net *Network) adam(Z [][]float64, t []float64, opts Options, r *rng.RNG) {
	h := net.hidden
	in := net.inDim
	n := len(Z)

	// Flatten parameter views for the optimizer state.
	nParams := h*in + h + h + 1
	m := make([]float64, nParams)
	v := make([]float64, nParams)
	grad := make([]float64, nParams)
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	hid := make([]float64, h)
	for epoch := 1; epoch <= opts.Epochs; epoch++ {
		for i := range grad {
			grad[i] = 0
		}
		// Full-batch gradient of ½·MSE.
		for s := 0; s < n; s++ {
			x := Z[s]
			for j := 0; j < h; j++ {
				a := net.b1[j]
				w := net.w1[j]
				for i := 0; i < in; i++ {
					a += w[i] * x[i]
				}
				hid[j] = math.Tanh(a)
			}
			out := net.b2
			for j := 0; j < h; j++ {
				out += net.w2[j] * hid[j]
			}
			e := (out - t[s]) / float64(n)
			// Output layer grads.
			gi := h * in
			for j := 0; j < h; j++ {
				grad[gi+h+j] += e * hid[j] // w2
			}
			grad[nParams-1] += e // b2
			// Hidden layer grads: parameter layout is w1 rows first
			// (row j at offset j*in), then b1 at gi+j, then w2 at gi+h+j,
			// then b2 last.
			for j := 0; j < h; j++ {
				d := e * net.w2[j] * (1 - hid[j]*hid[j])
				grad[gi+j] += d
				base := j * in
				for i := 0; i < in; i++ {
					grad[base+i] += d * x[i]
				}
			}
		}
		// L2 on weights (not biases).
		if opts.L2 > 0 {
			for j := 0; j < h; j++ {
				base := j * in
				for i := 0; i < in; i++ {
					grad[base+i] += opts.L2 * net.w1[j][i]
				}
				grad[h*in+h+j] += opts.L2 * net.w2[j]
			}
		}
		// Adam update.
		lr := opts.LearnRate
		bc1 := 1 - math.Pow(beta1, float64(epoch))
		bc2 := 1 - math.Pow(beta2, float64(epoch))
		apply := func(idx int, p *float64) {
			m[idx] = beta1*m[idx] + (1-beta1)*grad[idx]
			v[idx] = beta2*v[idx] + (1-beta2)*grad[idx]*grad[idx]
			mh := m[idx] / bc1
			vh := v[idx] / bc2
			*p -= lr * mh / (math.Sqrt(vh) + eps)
		}
		for j := 0; j < h; j++ {
			base := j * in
			for i := 0; i < in; i++ {
				apply(base+i, &net.w1[j][i])
			}
		}
		gi := h * in
		for j := 0; j < h; j++ {
			apply(gi+j, &net.b1[j])
			apply(gi+h+j, &net.w2[j])
		}
		apply(nParams-1, &net.b2)
	}
}

// Predict evaluates the network on one raw (unstandardized) feature vector.
func (net *Network) Predict(x []float64) float64 {
	z := net.inScale.Apply(x)
	out := net.b2
	for j := 0; j < net.hidden; j++ {
		a := net.b1[j]
		for i := 0; i < net.inDim; i++ {
			a += net.w1[j][i] * z[i]
		}
		out += net.w2[j] * math.Tanh(a)
	}
	return out*net.outScale + net.outMean
}

// PredictAll evaluates the network on every row of X.
func (net *Network) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = net.Predict(x)
	}
	return out
}

// Hidden returns the hidden-layer width (for reporting).
func (net *Network) Hidden() int { return net.hidden }
