package stack

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

func sampleStack() sim.Stack {
	var s sim.Stack
	s.Cycles[sim.CompBase] = 0.25
	s.Cycles[sim.CompBranch] = 0.10
	s.Cycles[sim.CompLLCLoad] = 0.30
	s.Cycles[sim.CompResource] = 0.05
	return s
}

func TestBar(t *testing.T) {
	b := Bar(1, 1, 10)
	if !strings.Contains(b, "|") {
		t.Error("bar missing axis")
	}
	if strings.Count(b, "█") != 10 {
		t.Errorf("full positive bar should have 10 blocks: %q", b)
	}
	neg := Bar(-0.5, 1, 10)
	idx := strings.Index(neg, "|")
	if !strings.Contains(neg[:idx], "█") || strings.Contains(neg[idx:], "█") {
		t.Errorf("negative bar should extend left only: %q", neg)
	}
	if z := Bar(0, 1, 10); strings.Contains(z, "█") {
		t.Errorf("zero bar should be empty: %q", z)
	}
	// Clamped overflow.
	if over := Bar(100, 1, 5); strings.Count(over, "█") != 5 {
		t.Errorf("overflow should clamp: %q", over)
	}
	// Degenerate inputs must not panic.
	Bar(1, 0, 0)
}

func TestRenderCPIStack(t *testing.T) {
	out := RenderCPIStack("test", sampleStack())
	for _, want := range []string{"total CPI 0.7", "base", "llc-load", "branch", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Empty stack must not divide by zero.
	var empty sim.Stack
	if out := RenderCPIStack("empty", empty); !strings.Contains(out, "0.0000") {
		t.Error("empty stack should render zeros")
	}
}

func TestRenderComparison(t *testing.T) {
	pred := sampleStack()
	truth := sampleStack()
	truth.Cycles[sim.CompBranch] = 0.20
	out := RenderComparison("fig5", pred, truth)
	if !strings.Contains(out, "predicted") || !strings.Contains(out, "actual") {
		t.Error("comparison missing headers")
	}
	if !strings.Contains(out, "-50.0%") {
		t.Errorf("expected -50%% branch error:\n%s", out)
	}
	if !strings.Contains(out, "TOTAL") {
		t.Error("missing total row")
	}
	// Zero actual renders an em-dash, not a division by zero.
	if !strings.Contains(out, "—") {
		t.Error("zero-actual components should render —")
	}
}

func TestRenderDelta(t *testing.T) {
	d := &core.DeltaStacks{
		OldName: "pentium4", NewName: "core2", Workloads: 48,
		Overall: core.OverallDelta{Width: -0.1, Fusion: -0.05, Branch: -0.2, Memory: 0.02},
		Branch:  core.BranchDelta{Mispredictions: 0.05, Resolution: -0.15, FrontEnd: -0.1},
		LLC:     core.LLCDelta{Misses: -0.1, Latency: -0.05, MLP: 0.08},
		OldCPI:  1.5, NewCPI: 1.1,
	}
	out := RenderDelta(d)
	for _, want := range []string{
		"pentium4 → core2", "wider dispatch", "µop fusion", "#mispredictions",
		"front-end depth", "#misses", "MLP", "TOTAL",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("delta rendering missing %q", want)
		}
	}
}

func TestRenderScatter(t *testing.T) {
	pts := []ScatterPoint{
		{Name: "a", Measured: 0.5, Predicted: 0.52},
		{Name: "b", Measured: 1.0, Predicted: 0.9},
		{Name: "c", Measured: 2.0, Predicted: 2.4},
	}
	out := RenderScatter("fig2", pts, 16)
	if !strings.Contains(out, "@") || !strings.Contains(out, "/") {
		t.Errorf("scatter missing points or bisector:\n%s", out)
	}
	if !strings.Contains(out, "measured") {
		t.Error("scatter missing axis label")
	}
	// Degenerate cases.
	RenderScatter("empty", nil, 4)
	RenderScatter("zero", []ScatterPoint{{Measured: 0, Predicted: 0}}, 8)
}

func TestRenderCDF(t *testing.T) {
	curves := map[string][]float64{
		"cpu2006 model": {0.01, 0.05, 0.10, 0.20},
		"cpu2000 model": {0.02, 0.08, 0.15, 0.30},
	}
	out := RenderCDF("fig3", curves)
	if !strings.Contains(out, "cpu2006 model") || !strings.Contains(out, "cpu2000 model") {
		t.Error("CDF missing curve names")
	}
	if !strings.Contains(out, "30.0%") {
		t.Errorf("CDF should show the max error:\n%s", out)
	}
	if !strings.Contains(out, "0.50") {
		t.Error("CDF missing fraction grid")
	}
}
