// Package stack renders CPI stacks and CPI-delta stacks as ASCII tables
// and bar charts for terminal output — the presentation layer for the
// paper's Figures 5 and 6 and for the mecpi CLI.
package stack

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
)

// Bar renders a signed horizontal bar of the given half-width scale:
// negative values extend left, positive right.
func Bar(v, scale float64, width int) string {
	if width < 1 {
		width = 1
	}
	n := 0
	if scale > 0 {
		n = int(v/scale*float64(width) + 0.5*sign(v))
	}
	if n > width {
		n = width
	}
	if n < -width {
		n = -width
	}
	left := strings.Repeat(" ", width)
	right := strings.Repeat(" ", width)
	if n < 0 {
		left = strings.Repeat(" ", width+n) + strings.Repeat("█", -n)
	} else if n > 0 {
		right = strings.Repeat("█", n) + strings.Repeat(" ", width-n)
	}
	return left + "|" + right
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

// RenderCPIStack formats a per-µop CPI stack as an aligned table with
// proportional bars, components in stack order, and a total line.
func RenderCPIStack(title string, s sim.Stack) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (total CPI %.4f)\n", title, s.Total())
	maxVal := 0.0
	for _, c := range sim.Components() {
		if s.Cycles[c] > maxVal {
			maxVal = s.Cycles[c]
		}
	}
	for _, c := range sim.Components() {
		v := s.Cycles[c]
		bar := ""
		if maxVal > 0 {
			n := int(v / maxVal * 40)
			bar = strings.Repeat("█", n)
		}
		fmt.Fprintf(&b, "  %-11s %8.4f  %5.1f%%  %s\n", c, v, 100*safeFrac(v, s.Total()), bar)
	}
	return b.String()
}

func safeFrac(v, total float64) float64 {
	if total == 0 {
		return 0
	}
	return v / total
}

// RenderComparison formats two stacks side by side (e.g. model-predicted
// vs. simulator ground truth, Figure 5 style) with per-component errors.
func RenderComparison(title string, predicted, truth sim.Stack) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "  %-11s %10s %10s %9s\n", "component", "predicted", "actual", "error")
	for _, c := range sim.Components() {
		p, a := predicted.Cycles[c], truth.Cycles[c]
		errStr := "    —"
		if a > 1e-9 {
			errStr = fmt.Sprintf("%+7.1f%%", 100*(p-a)/a)
		}
		fmt.Fprintf(&b, "  %-11s %10.4f %10.4f %9s\n", c, p, a, errStr)
	}
	fmt.Fprintf(&b, "  %-11s %10.4f %10.4f %+8.1f%%\n", "TOTAL",
		predicted.Total(), truth.Total(), 100*(predicted.Total()-truth.Total())/truth.Total())
	return b.String()
}

// deltaRow is one labeled value in a delta rendering.
type deltaRow struct {
	label string
	value float64
}

func renderDeltaRows(b *strings.Builder, rows []deltaRow) {
	scale := 0.0
	for _, r := range rows {
		if v := abs(r.value); v > scale {
			scale = v
		}
	}
	if scale == 0 {
		scale = 1
	}
	for _, r := range rows {
		fmt.Fprintf(b, "  %-16s %+9.4f  %s\n", r.label, r.value, Bar(r.value, scale, 20))
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// RenderDelta formats a full CPI-delta stack set (Figure 6 style): the
// overall decomposition plus the branch and LLC factor breakdowns.
// Negative values are improvements on the newer machine.
func RenderDelta(d *core.DeltaStacks) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CPI-delta stacks: %s → %s over %d workloads\n", d.OldName, d.NewName, d.Workloads)
	fmt.Fprintf(&b, "mean CPI/instr: %.4f → %.4f (Δ %+0.4f; negative = %s faster)\n\n",
		d.OldCPI, d.NewCPI, d.NewCPI-d.OldCPI, d.NewName)

	fmt.Fprintf(&b, "overall (per instruction):\n")
	renderDeltaRows(&b, []deltaRow{
		{"wider dispatch", d.Overall.Width},
		{"µop fusion", d.Overall.Fusion},
		{"I-cache (+ITLB)", d.Overall.ICache},
		{"memory (D+DTLB)", d.Overall.Memory},
		{"branch", d.Overall.Branch},
		{"other (stalls)", d.Overall.Other},
	})
	fmt.Fprintf(&b, "  %-16s %+9.4f\n\n", "TOTAL", d.Overall.Total())

	fmt.Fprintf(&b, "branch component factors:\n")
	renderDeltaRows(&b, []deltaRow{
		{"#mispredictions", d.Branch.Mispredictions},
		{"resolution time", d.Branch.Resolution},
		{"front-end depth", d.Branch.FrontEnd},
	})
	fmt.Fprintf(&b, "  %-16s %+9.4f\n\n", "TOTAL", d.Branch.Total())

	fmt.Fprintf(&b, "last-level cache component factors:\n")
	renderDeltaRows(&b, []deltaRow{
		{"#misses", d.LLC.Misses},
		{"latency", d.LLC.Latency},
		{"MLP", d.LLC.MLP},
	})
	fmt.Fprintf(&b, "  %-16s %+9.4f\n", "TOTAL", d.LLC.Total())
	return b.String()
}

// ScatterPoint is one (measured, predicted) pair with a label.
type ScatterPoint struct {
	Name      string
	Measured  float64
	Predicted float64
}

// RenderScatter draws a Figure 2-style measured-vs-predicted scatter as
// an ASCII grid with the bisector marked. Points landing on the same cell
// merge; the bisector is drawn with '/', points with '●'.
func RenderScatter(title string, pts []ScatterPoint, size int) string {
	if size < 8 {
		size = 8
	}
	maxV := 0.0
	for _, p := range pts {
		if p.Measured > maxV {
			maxV = p.Measured
		}
		if p.Predicted > maxV {
			maxV = p.Predicted
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	maxV *= 1.05
	grid := make([][]byte, size)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", size))
	}
	for i := 0; i < size; i++ {
		grid[size-1-i][i] = '/'
	}
	for _, p := range pts {
		x := int(p.Measured / maxV * float64(size))
		y := int(p.Predicted / maxV * float64(size))
		if x >= size {
			x = size - 1
		}
		if y >= size {
			y = size - 1
		}
		grid[size-1-y][x] = '@'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (axes 0..%.2f CPI; '/' = bisector, '@' = benchmark)\n", title, maxV)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", size) + "  measured →\n")
	return b.String()
}

// RenderCDF formats a cumulative error distribution (Figure 3 style):
// "x% of benchmarks have error below y%". Curves are named and rendered
// at fixed fraction grid points.
func RenderCDF(title string, curves map[string][]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	names := make([]string, 0, len(curves))
	for n := range curves {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "  %-10s", "fraction")
	for _, n := range names {
		fmt.Fprintf(&b, " %14s", n)
	}
	b.WriteByte('\n')
	for _, frac := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0} {
		fmt.Fprintf(&b, "  %-10.2f", frac)
		for _, n := range names {
			errs := curves[n]
			sorted := append([]float64(nil), errs...)
			sort.Float64s(sorted)
			idx := int(frac*float64(len(sorted))) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sorted) {
				idx = len(sorted) - 1
			}
			fmt.Fprintf(&b, " %13.1f%%", 100*sorted[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
