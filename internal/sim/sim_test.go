package sim

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/trace"
	"repro/internal/uarch"
)

func baseSpec(name string, seed uint64) trace.Spec {
	return trace.Spec{
		Name:             name,
		Seed:             seed,
		NumOps:           60000,
		LoadFrac:         0.25,
		StoreFrac:        0.10,
		FPFrac:           0.08,
		MulFrac:          0.02,
		DivFrac:          0.002,
		BranchHardFrac:   0.25,
		CodeFootprint:    32 << 10,
		CodeLocality:     0.8,
		DataFootprint:    512 << 10,
		DataLocality:     0.6,
		PointerChaseFrac: 0.05,
		DepDistMean:      10,
		LongChainFrac:    0.05,
		FusibleFrac:      0.3,
	}
}

func mustRun(t *testing.T, m *uarch.Machine, spec trace.Spec) *Result {
	t.Helper()
	s, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(trace.New(spec))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunBasicConsistency(t *testing.T) {
	for _, m := range uarch.StockMachines() {
		r := mustRun(t, m, baseSpec("consistency", 1))
		c := &r.Counters
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if c.Uops == 0 || c.Cycles == 0 {
			t.Fatalf("%s: empty run", m.Name)
		}
		// CPI per µop must be at least 1/D (can't beat dispatch width).
		if cpi := c.CPI(); cpi < 1/float64(m.DispatchWidth) {
			t.Errorf("%s: CPI %.3f below 1/width", m.Name, cpi)
		}
		// Stack total must equal total cycles (slot accounting is exact).
		if diff := math.Abs(r.Truth.Total() - float64(c.Cycles)); diff > 1.5 {
			t.Errorf("%s: stack total %.1f vs cycles %d (diff %.2f)",
				m.Name, r.Truth.Total(), c.Cycles, diff)
		}
		// Base component equals N/D.
		wantBase := float64(c.Uops) / float64(m.DispatchWidth)
		if math.Abs(r.Truth.Cycles[CompBase]-wantBase) > 1 {
			t.Errorf("%s: base %.1f, want N/D=%.1f", m.Name, r.Truth.Cycles[CompBase], wantBase)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	m := uarch.CoreTwo()
	a := mustRun(t, m, baseSpec("det", 7))
	b := mustRun(t, m, baseSpec("det", 7))
	if a.Counters != b.Counters {
		t.Errorf("counters differ across identical runs:\n%v\n%v", a.Counters, b.Counters)
	}
	if a.Truth != b.Truth {
		t.Error("ground-truth stacks differ across identical runs")
	}
}

func TestSimulatorReusableAcrossRuns(t *testing.T) {
	m := uarch.CoreI7()
	s, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	g := trace.New(baseSpec("reuse", 3))
	r1, err := s.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Counters != r2.Counters {
		t.Error("re-running the same generator on the same simulator diverged")
	}
}

func TestNewRejectsInvalidMachine(t *testing.T) {
	m := uarch.CoreTwo()
	m.ROBSize = 0
	if _, err := New(m); err == nil {
		t.Error("expected validation error")
	}
}

func TestEmptyStreamFails(t *testing.T) {
	// NumOps must be >=1 by spec validation, so simulate exhaustion by
	// running a 1-op stream twice without reset... Run resets, so instead
	// check that the minimal stream works.
	spec := baseSpec("tiny", 1)
	spec.NumOps = 1
	r := mustRun(t, uarch.CoreTwo(), spec)
	if r.Counters.Uops != 1 {
		t.Errorf("tiny run committed %d µops", r.Counters.Uops)
	}
}

func TestMemoryBoundSlowerThanComputeBound(t *testing.T) {
	m := uarch.CoreTwo()
	small := baseSpec("smallws", 11)
	small.DataFootprint = 16 << 10 // fits in L1
	big := baseSpec("bigws", 11)
	big.DataFootprint = 64 << 20 // 16× the 4MB L2
	big.DataLocality = 0.1
	rs := mustRun(t, m, small)
	rb := mustRun(t, m, big)
	if rb.Counters.CPI() <= rs.Counters.CPI()*1.5 {
		t.Errorf("memory-bound CPI %.3f should far exceed cache-resident CPI %.3f",
			rb.Counters.CPI(), rs.Counters.CPI())
	}
	if rb.Counters.LLCDLoadMisses == 0 {
		t.Error("big working set should miss the LLC")
	}
	if rb.Truth.Cycles[CompLLCLoad] <= rs.Truth.Cycles[CompLLCLoad] {
		t.Error("LLC-load component should grow with the working set")
	}
}

func TestBranchEntropyRaisesMispredictions(t *testing.T) {
	m := uarch.CoreTwo()
	easy := baseSpec("easy", 13)
	easy.BranchHardFrac = 0
	hard := baseSpec("hard", 13)
	hard.BranchHardFrac = 0.9
	re := mustRun(t, m, easy)
	rh := mustRun(t, m, hard)
	mpkiE := re.Counters.MPKI(re.Counters.BranchMispredicts)
	mpkiH := rh.Counters.MPKI(rh.Counters.BranchMispredicts)
	if mpkiH < 2*mpkiE+1 {
		t.Errorf("hard-branch MPKI %.2f should dwarf easy MPKI %.2f", mpkiH, mpkiE)
	}
	if rh.Truth.Cycles[CompBranch] <= re.Truth.Cycles[CompBranch] {
		t.Error("branch component should grow with misprediction rate")
	}
}

func TestPipelineDepthAmplifiesBranchPenalty(t *testing.T) {
	// Same predictor and workload; deeper front end → larger branch
	// component per misprediction.
	shallow := uarch.CoreTwo()
	deep := uarch.CoreTwo()
	deep.Name = "core2-deep"
	deep.FrontEndDepth = 40
	spec := baseSpec("depth", 17)
	spec.BranchHardFrac = 0.6
	rs := mustRun(t, shallow, spec)
	rd := mustRun(t, deep, spec)
	// Identical streams and predictors → same misprediction counts.
	if rs.Counters.BranchMispredicts != rd.Counters.BranchMispredicts {
		t.Fatalf("misprediction counts differ: %d vs %d",
			rs.Counters.BranchMispredicts, rd.Counters.BranchMispredicts)
	}
	perMissS := rs.Truth.Cycles[CompBranch] / float64(rs.Counters.BranchMispredicts)
	perMissD := rd.Truth.Cycles[CompBranch] / float64(rd.Counters.BranchMispredicts)
	if perMissD-perMissS < 20 || perMissD-perMissS > 32 {
		t.Errorf("depth +26 should add ~26 cycles per miss, got %.1f → %.1f", perMissS, perMissD)
	}
}

func TestICacheFootprintEffect(t *testing.T) {
	m := uarch.CoreTwo()
	smallCode := baseSpec("smallcode", 19)
	smallCode.CodeFootprint = 8 << 10 // fits 32KB L1I
	bigCode := baseSpec("bigcode", 19)
	bigCode.CodeFootprint = 1 << 20 // 1MB, blows out L1I
	bigCode.CodeLocality = 0.1
	rs := mustRun(t, m, smallCode)
	rb := mustRun(t, m, bigCode)
	if rb.Counters.L1IMisses < 10*rs.Counters.L1IMisses+10 {
		t.Errorf("big code L1I misses %d vs small %d", rb.Counters.L1IMisses, rs.Counters.L1IMisses)
	}
	icacheCycles := func(r *Result) float64 {
		return r.Truth.Cycles[CompICacheL2] + r.Truth.Cycles[CompICacheL3] + r.Truth.Cycles[CompICacheMem]
	}
	if icacheCycles(rb) <= icacheCycles(rs) {
		t.Error("I-cache component should grow with code footprint")
	}
}

func TestMLPParallelVsPointerChase(t *testing.T) {
	m := uarch.CoreI7()
	parallel := baseSpec("parallel", 23)
	parallel.DataFootprint = 64 << 20
	parallel.DataLocality = 0.05
	parallel.PointerChaseFrac = 0
	parallel.DepDistMean = 30
	chase := parallel
	chase.Name = "chase"
	chase.PointerChaseFrac = 0.95
	chase.LoadFrac = parallel.LoadFrac
	rp := mustRun(t, m, parallel)
	rc := mustRun(t, m, chase)
	if rp.MeasuredMLP < 1.3 {
		t.Errorf("independent misses should overlap: MLP %.2f", rp.MeasuredMLP)
	}
	if rc.MeasuredMLP > rp.MeasuredMLP-0.2 {
		t.Errorf("pointer chasing should suppress MLP: chase %.2f vs parallel %.2f",
			rc.MeasuredMLP, rp.MeasuredMLP)
	}
}

func TestFusionReducesUopsNotInstructions(t *testing.T) {
	noFuse := uarch.CoreI7()
	noFuse.FusionRate = 0
	fuse := uarch.CoreI7()
	fuse.Name = "corei7-fused"
	spec := baseSpec("fusion", 29)
	spec.FusibleFrac = 0.5
	rn := mustRun(t, noFuse, spec)
	rf := mustRun(t, fuse, spec)
	if rn.Counters.Instructions != rf.Counters.Instructions {
		t.Errorf("instruction counts must match: %d vs %d",
			rn.Counters.Instructions, rf.Counters.Instructions)
	}
	if rf.Counters.Uops >= rn.Counters.Uops {
		t.Errorf("fusion should shrink µop count: %d vs %d", rf.Counters.Uops, rn.Counters.Uops)
	}
	// With ~50% of pairs fusible at rate 0.75, expect a >5% µop reduction.
	ratio := float64(rf.Counters.Uops) / float64(rn.Counters.Uops)
	if ratio > 0.95 {
		t.Errorf("fusion ratio %.3f, want < 0.95", ratio)
	}
}

func TestLongChainsCauseResourceStalls(t *testing.T) {
	// Suppress branch effects (chains also lengthen branch resolution,
	// which would otherwise absorb the extra cycles) and compare per-µop
	// resource-stall cycles directly.
	m := uarch.CoreTwo()
	ilp := baseSpec("ilp", 31)
	ilp.BranchHardFrac = 0
	ilp.DepDistMean = 40
	ilp.LongChainFrac = 0
	ilp.DivFrac = 0
	chain := baseSpec("chain", 31)
	chain.BranchHardFrac = 0
	chain.DepDistMean = 1.5
	chain.LongChainFrac = 0.8
	chain.FPFrac = 0.25
	chain.DivFrac = 0.02
	ri := mustRun(t, m, ilp)
	rc := mustRun(t, m, chain)
	perUopI := ri.Truth.Cycles[CompResource] / float64(ri.Counters.Uops)
	perUopC := rc.Truth.Cycles[CompResource] / float64(rc.Counters.Uops)
	if perUopC <= perUopI {
		t.Errorf("dependence chains should raise resource-stall cycles per µop: %.3f vs %.3f",
			perUopC, perUopI)
	}
	if rc.Counters.CPI() <= ri.Counters.CPI() {
		t.Error("serial chains should raise CPI")
	}
}

func TestGenerationalSpeedup(t *testing.T) {
	// On a representative workload the Core 2 should outperform the
	// Pentium 4 per instruction, and the i7 should at least match Core 2
	// (the paper's overall delta stacks).
	spec := baseSpec("generations", 37)
	var cpis []float64
	for _, m := range uarch.StockMachines() {
		r := mustRun(t, m, spec)
		cpis = append(cpis, r.Counters.CPIPerInstr())
	}
	if cpis[1] >= cpis[0] {
		t.Errorf("Core 2 CPI/instr %.3f should beat Pentium 4 %.3f", cpis[1], cpis[0])
	}
	if cpis[2] > cpis[1]*1.1 {
		t.Errorf("i7 CPI/instr %.3f should not regress vs Core 2 %.3f", cpis[2], cpis[1])
	}
}

func TestDTLBComponent(t *testing.T) {
	m := uarch.PentiumFour() // tiny 64-entry DTLB, 70-cycle walks
	spec := baseSpec("tlbheavy", 41)
	spec.DataFootprint = 32 << 20 // 8192 pages >> 64 TLB entries
	spec.DataLocality = 0
	r := mustRun(t, m, spec)
	if r.Counters.DTLBMisses == 0 {
		t.Fatal("expected DTLB misses")
	}
	if r.Truth.Cycles[CompDTLB] == 0 && r.Truth.Cycles[CompLLCLoad] == 0 {
		t.Error("TLB-heavy workload should show DTLB or LLC cycles")
	}
}

func TestStackComponentsNonNegative(t *testing.T) {
	r := mustRun(t, uarch.CoreI7(), baseSpec("nonneg", 43))
	for _, c := range Components() {
		if r.Truth.Cycles[c] < 0 {
			t.Errorf("component %v negative: %v", c, r.Truth.Cycles[c])
		}
	}
}

func TestComponentStrings(t *testing.T) {
	for _, c := range Components() {
		if c.String() == "" {
			t.Errorf("component %d has empty name", c)
		}
	}
	if Component(99).String() == "" {
		t.Error("unknown component should render")
	}
}

func TestStackHelpers(t *testing.T) {
	var s Stack
	s.Cycles[CompBase] = 30
	s.Cycles[CompBranch] = 10
	if s.Total() != 40 {
		t.Errorf("total %v", s.Total())
	}
	if f := s.Fraction(CompBranch); math.Abs(f-0.25) > 1e-12 {
		t.Errorf("fraction %v", f)
	}
	per := s.CPIStack(10)
	if per.Cycles[CompBase] != 3 {
		t.Errorf("CPIStack base %v", per.Cycles[CompBase])
	}
	var empty Stack
	if empty.Fraction(CompBase) != 0 {
		t.Error("empty stack fraction should be 0")
	}
	if z := empty.CPIStack(0); z.Total() != 0 {
		t.Error("CPIStack(0) should be zero")
	}
}

func TestMinHeap(t *testing.T) {
	h := newMinHeap(4)
	for _, v := range []uint64{5, 3, 8, 1, 9, 2} {
		h.push(v)
	}
	want := []uint64{1, 2, 3, 5, 8, 9}
	for _, w := range want {
		if h.min() != w {
			t.Fatalf("min %d, want %d", h.min(), w)
		}
		h.pop()
	}
	if h.len() != 0 {
		t.Error("heap should be empty")
	}
	h.push(4)
	h.push(6)
	h.popUpTo(5)
	if h.len() != 1 || h.min() != 6 {
		t.Error("popUpTo should remove values <= bound")
	}
}

func TestPrefetchEnabledMachine(t *testing.T) {
	// End-to-end: a streamer-equipped Core 2 must run correctly and speed
	// up a sequential-scan workload without perturbing counters validity.
	stock := uarch.CoreTwo()
	pf := uarch.CoreTwo()
	pf.Name = "core2-pf"
	pf.Prefetch = uarch.PrefetchConfig{Enabled: true, Streams: 64, Degree: 4}
	spec := baseSpec("stream", 53)
	spec.DataFootprint = 64 << 20
	spec.DataLocality = 0.1
	spec.PointerChaseFrac = 0
	rStock := mustRun(t, stock, spec)
	rPF := mustRun(t, pf, spec)
	if err := rPF.Counters.Validate(); err != nil {
		t.Fatal(err)
	}
	// The Zipf stream is not purely sequential, so demand misses don't
	// vanish, but the L2-visible misses must not increase.
	if rPF.Counters.LLCDLoadMisses > rStock.Counters.LLCDLoadMisses {
		t.Errorf("prefetch increased demand LLC misses: %d vs %d",
			rPF.Counters.LLCDLoadMisses, rStock.Counters.LLCDLoadMisses)
	}
	if rPF.Counters.CPI() > rStock.Counters.CPI()*1.02 {
		t.Errorf("prefetch should not slow the machine down: %.3f vs %.3f",
			rPF.Counters.CPI(), rStock.Counters.CPI())
	}
}

// Property: for arbitrary small workloads and any stock machine, the
// counters stay internally consistent and the ground-truth stack sums to
// the measured cycle count.
func TestSimInvariantsProperty(t *testing.T) {
	machines := uarch.StockMachines()
	sims := make([]*Simulator, len(machines))
	for i, m := range machines {
		s, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		sims[i] = s
	}
	f := func(seed uint64, loadF, hardF, mIdx uint8) bool {
		spec := baseSpec("prop", seed)
		spec.NumOps = 4000
		spec.LoadFrac = float64(loadF%35) / 100
		spec.BranchHardFrac = float64(hardF%100) / 100
		s := sims[int(mIdx)%len(sims)]
		r, err := s.Run(trace.New(spec))
		if err != nil {
			return false
		}
		if r.Counters.Validate() != nil {
			return false
		}
		if math.Abs(r.Truth.Total()-float64(r.Counters.Cycles)) > 1.5 {
			return false
		}
		for _, c := range Components() {
			if r.Truth.Cycles[c] < 0 {
				return false
			}
		}
		// CPI cannot beat the dispatch width.
		return r.Counters.CPI() >= 1/float64(s.Machine().DispatchWidth)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestResultEncodeRoundTripAndDeterminism(t *testing.T) {
	s, err := New(uarch.CoreTwo())
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(trace.New(baseSpec("encode", 5)))
	if err != nil {
		t.Fatal(err)
	}
	b1, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Error("Encode is not deterministic")
	}
	got, err := DecodeResult(b1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("decode(encode(r)) != r:\n got %+v\nwant %+v", got, r)
	}
	if _, err := DecodeResult([]byte("{")); err == nil {
		t.Error("want error for truncated encoding")
	}
}

func TestMSHRHeapMatchesLinearScan(t *testing.T) {
	// The heap must hand out exactly the values a least-soon-free linear
	// scan would: replaceMin always replaces the minimum, and the minimum
	// sequence matches a reference slice implementation.
	h := mshrHeap{a: make([]uint64, 5)}
	h.reset()
	ref := make([]uint64, 5)
	r := rng.New(7)
	var now uint64
	for i := 0; i < 2000; i++ {
		now += r.Uint64() % 50
		best := 0
		for j := 1; j < len(ref); j++ {
			if ref[j] < ref[best] {
				best = j
			}
		}
		if got := h.min(); got != ref[best] {
			t.Fatalf("step %d: heap min %d, scan min %d", i, got, ref[best])
		}
		start := now
		if ref[best] > start {
			start = ref[best]
		}
		end := start + 1 + r.Uint64()%300
		ref[best] = end
		h.replaceMin(end)
	}
}

func TestBadPredictorConfigFailsAtRun(t *testing.T) {
	// New no longer builds a predictor (Run constructs a fresh one per
	// run), so a broken predictor config surfaces on the first Run.
	m := uarch.CoreTwo()
	m.Predictor.Kind = uarch.PredictorKind(99)
	s, err := New(m)
	if err != nil {
		t.Fatalf("New should defer predictor validation to Run: %v", err)
	}
	if _, err := s.Run(trace.New(baseSpec("badpred", 3))); err == nil {
		t.Error("Run should reject an unknown predictor kind")
	}
}

// Buffer-fed runs must produce per-float-identical Results to
// generator-fed runs on every stock machine: the run store and the grid
// plan engine treat the two source kinds as interchangeable.
func TestBufferReplayResultsBitIdentical(t *testing.T) {
	spec := baseSpec("replay", 23)
	buf := trace.Materialize(spec)
	for _, m := range uarch.StockMachines() {
		want := mustRun(t, m, spec) // generator-fed
		s, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Run(buf.Replay())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: buffer-fed result differs from generator-fed", m.Name)
		}
		// And replaying the same shared buffer again must be stable.
		again, err := s.Run(buf.Replay())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, want) {
			t.Errorf("%s: second replay drifted", m.Name)
		}
	}
}
