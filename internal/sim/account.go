// Package sim implements the cycle-level, trace-driven out-of-order
// superscalar simulator that plays the role of the paper's real hardware,
// plus the FMT-style interval accounting (after Eyerman et al.,
// ASPLOS 2006) that attributes every dispatch slot to a CPI component —
// the ground truth against which the model's CPI stacks are validated
// (the paper's Figure 5).
//
// The core is a greedy dataflow timing model driven by the dispatch
// stream: every micro-op's issue and completion times are computed when
// it dispatches, subject to operand readiness, issue bandwidth,
// functional-unit latency, memory-hierarchy latency, and MSHR
// availability; dispatch itself is gated by front-end events (I-cache
// and I-TLB misses, branch-misprediction redirects) and window occupancy
// (ROB and issue queue). This reproduces the mechanisms the
// mechanistic-empirical model abstracts — branch resolution along the
// dependence critical path, memory-level parallelism bounded by MSHRs
// and the window, dispatch stalls behind long dependence chains — while
// remaining fast enough to run hundred-workload suites in seconds.
package sim

import "fmt"

// Component identifies a CPI-stack component in the ground-truth
// interval accounting. The mapping to the model's Equation 1 terms:
//
//	CompBase      ↔ N/D
//	CompICacheL2  ↔ m_L1I · c_L2   (L1 I-miss satisfied in L2)
//	CompICacheL3  ↔ m_L2I · c_L3   (3-level machines)
//	CompICacheMem ↔ m_LLCI · c_mem
//	CompITLB      ↔ m_ITLB · c_TLB
//	CompBranch    ↔ m_br · (c_br + c_fe)
//	CompLLCLoad   ↔ m_L2D$ · c_mem / MLP
//	CompDTLB      ↔ m_DTLB · c_TLB / MLP
//	CompResource  ↔ c_stall
type Component int

// CPI-stack components.
const (
	CompBase Component = iota
	CompICacheL2
	CompICacheL3
	CompICacheMem
	CompITLB
	CompBranch
	CompLLCLoad
	CompDTLB
	CompResource
	NumComponents
)

func (c Component) String() string {
	switch c {
	case CompBase:
		return "base"
	case CompICacheL2:
		return "icache-L2"
	case CompICacheL3:
		return "icache-L3"
	case CompICacheMem:
		return "icache-mem"
	case CompITLB:
		return "itlb"
	case CompBranch:
		return "branch"
	case CompLLCLoad:
		return "llc-load"
	case CompDTLB:
		return "dtlb"
	case CompResource:
		return "resource"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// Components lists all components in stack order (base first).
func Components() []Component {
	out := make([]Component, NumComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Stack is a ground-truth cycle accounting: Cycles[c] is the number of
// cycles attributed to component c. The sum over components equals total
// execution cycles (slot-level accounting divides empty dispatch slots by
// the dispatch width).
type Stack struct {
	Cycles [NumComponents]float64
}

// Total returns the sum over all components.
func (s *Stack) Total() float64 {
	var t float64
	for _, v := range s.Cycles {
		t += v
	}
	return t
}

// CPIStack returns the per-µop stack (each component divided by n µops).
func (s *Stack) CPIStack(n uint64) Stack {
	var out Stack
	if n == 0 {
		return out
	}
	for i, v := range s.Cycles {
		out.Cycles[i] = v / float64(n)
	}
	return out
}

// Fraction returns component c's share of the total.
func (s *Stack) Fraction(c Component) float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return s.Cycles[c] / t
}
