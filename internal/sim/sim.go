package sim

import (
	"encoding/json"
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/perfctr"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Version identifies the timing semantics of the simulator (including the
// cache, branch-predictor, and trace-generator substrates it drives).
// Content-addressed caches of Results key on it, so bump it whenever a
// change anywhere in the pipeline can alter any Result — stale cached
// runs are then never reused.
const Version = "sim-v1"

// Result is the outcome of running one workload on one machine.
type Result struct {
	// Counters is everything a performance-counter tool could read — the
	// model's only per-workload input.
	Counters perfctr.Counters
	// Truth is the ground-truth cycle accounting (simulator oracle, not
	// available on real hardware) used to validate CPI stacks (Fig. 5).
	Truth Stack
	// MeasuredMLP is the oracle average number of outstanding memory
	// accesses while at least one is outstanding (Chou et al.'s MLP
	// definition). Not measurable with counters; used for validation.
	MeasuredMLP float64
}

// Encode serializes the result deterministically: field order is fixed by
// the struct definitions and floats use Go's shortest exact round-trip
// encoding, so equal Results always produce byte-identical encodings.
func (r *Result) Encode() ([]byte, error) {
	return json.Marshal(r)
}

// DecodeResult parses a Result previously produced by Encode.
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("sim: decode result: %w", err)
	}
	return &r, nil
}

// numKinds sizes per-kind lookup tables (trace.Kind values are < 8).
const numKinds = 8

// Simulator executes µop streams on one machine configuration. It is
// reusable across runs (state is reset per Run) and holds all its
// working storage — window, rings, predictor, heaps — so steady-state
// runs allocate nothing. Not safe for concurrent use.
type Simulator struct {
	m    *uarch.Machine
	hier *cache.Hierarchy
	pred branch.Predictor // built lazily on first Run, Reset per run
	mshr mshrHeap

	issue issueRing // issue-bandwidth ring: issues per future cycle
	seq   seqRing   // completion times by canonical sequence number
	rob   []robMeta
	iq    iqRing

	// Per-machine constants hoisted out of the per-op path.
	d           int
	fD          float64 // float64(DispatchWidth)
	invD        float64 // 1 / float64(DispatchWidth); CompBase per slot
	robSize     uint64
	iqSize      int
	issueWidth  int
	commitWidth int
	fusionRate  float64
	frontEnd    uint64 // FrontEndDepth
	lineShift   uint
	latByKind   [numKinds]uint64 // FU latencies; loads/stores special-cased
	itlbMiss    uint64
	l2Lat       uint64
	l3Lat       uint64
	memLat      uint64
	loadAGU     uint64
	storeLat    uint64

	// Per-run state, reset by RunInto.
	res        *Result
	ctr        *perfctr.Counters
	cycle      uint64 // current dispatch cycle
	slots      int    // dispatch slots used this cycle
	nextFetch  uint64 // front end unavailable before this cycle
	feReason   Component
	lastLine   uint64
	entryCount uint64 // dispatched entries (committed µops)
	robPos     int    // entryCount % ROBSize, maintained incrementally
	headIdx    uint64 // oldest possibly-uncommitted entry
	headPos    int    // headIdx % ROBSize
	lastCommit uint64
	commitCnt  int

	// MLP oracle accumulators (union-of-busy-intervals watermark).
	memBusySum   uint64
	memUnion     uint64
	coveredUntil uint64

	// Per-op scratch shared between step and doHalf.
	execStart uint64
	lat       uint64
	meta      robMeta
}

// New builds a simulator for machine m. The branch predictor is not
// built here: Run constructs one lazily anyway (a predictor-configuration
// error surfaces on the first Run).
func New(m *uarch.Machine) (*Simulator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.IssueWidth > issueCntMask {
		return nil, fmt.Errorf("sim: issue width %d exceeds the ring's %d-issue capacity",
			m.IssueWidth, issueCntMask)
	}
	hier, err := cache.NewHierarchy(m)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		m:     m,
		hier:  hier,
		mshr:  mshrHeap{a: make([]uint64, m.MSHRs)},
		issue: newIssueRing(),
		rob:   make([]robMeta, m.ROBSize),
		iq:    newIQRing(),

		d:           m.DispatchWidth,
		fD:          float64(m.DispatchWidth),
		invD:        1 / float64(m.DispatchWidth),
		robSize:     uint64(m.ROBSize),
		iqSize:      m.IQSize,
		issueWidth:  m.IssueWidth,
		commitWidth: m.CommitWidth,
		fusionRate:  m.FusionRate,
		frontEnd:    uint64(m.FrontEndDepth),
		itlbMiss:    uint64(m.ITLB.MissLat),
		l2Lat:       uint64(m.L2.LatCycles),
		l3Lat:       uint64(m.L3.LatCycles),
		memLat:      uint64(m.MemLat),
		loadAGU:     uint64(m.LoadAGU),
		storeLat:    uint64(m.StoreLat),
	}
	for m.L1I.LineBytes>>s.lineShift > 1 {
		s.lineShift++
	}
	for k := range s.latByKind {
		s.latByKind[k] = uint64(m.IntLat)
	}
	s.latByKind[trace.KindMul] = uint64(m.MulLat)
	s.latByKind[trace.KindFP] = uint64(m.FPLat)
	s.latByKind[trace.KindDiv] = uint64(m.DivLat)
	return s, nil
}

// Machine returns the simulated machine.
func (s *Simulator) Machine() *uarch.Machine { return s.m }

// fuseHash decides micro-fusion per static PC, deterministically: the
// same pair fuses on every execution, as in a real decoder.
func fuseHash(pc uint64) float64 {
	x := pc
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x&0xffff) / 65536
}

// robMeta is the per-ROB-entry metadata the accounting needs.
type robMeta struct {
	commit   uint64
	complete uint64
	isLoad   bool
	memTrip  bool
	dtlbMiss bool
}

// Run executes the workload stream g to completion and returns counters
// and ground-truth accounting. It is RunInto with a fresh Result.
func (s *Simulator) Run(g trace.Source) (*Result, error) {
	res := &Result{}
	if err := s.RunInto(res, g); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto executes the workload stream g to completion and fills *res
// with counters and ground-truth accounting, overwriting any previous
// contents. The source is reset first, so the same Generator or Buffer
// cursor can be run on several machines. A materialized trace.Buffer
// replay produces the exact stream its Generator would, so Results are
// bit-identical across source kinds (the buffer takes the batched
// Chunked path, the generator the streaming path; both drive the same
// per-op step).
//
// All working state lives on the Simulator, so steady-state calls
// allocate nothing — the benchmark gate asserts 0 B/op.
func (s *Simulator) RunInto(res *Result, g trace.Source) error {
	g.Reset()
	s.hier.Reset()
	if s.pred == nil {
		// Built on first use so a bad predictor config errors here, and
		// Reset thereafter: a reset predictor is bit-identical to a fresh
		// one, and runs stay independent without per-run allocation.
		pred, err := branch.New(s.m.Predictor)
		if err != nil {
			return err
		}
		s.pred = pred
	} else {
		s.pred.Reset()
	}
	s.issue.reset()
	s.seq.reset()
	s.mshr.reset()
	s.iq.reset()
	// Stale rob entries need no clearing: every slot consulted is first
	// written by this run (reads are bounded by entryCount/headIdx).

	*res = Result{}
	s.res = res
	s.ctr = &res.Counters
	s.cycle, s.slots = 0, 0
	s.nextFetch = 0
	s.feReason = CompBranch
	s.lastLine = ^uint64(0)
	s.entryCount, s.robPos = 0, 0
	s.headIdx, s.headPos = 0, 0
	s.lastCommit, s.commitCnt = 0, 0
	s.memBusySum, s.memUnion, s.coveredUntil = 0, 0, 0

	var ok bool
	if c, isChunked := g.(trace.Chunked); isChunked {
		ok = s.driveChunked(c)
	} else {
		ok = s.driveGeneric(g)
	}
	if !ok {
		s.res, s.ctr = nil, nil
		return fmt.Errorf("sim: empty µop stream for %q", g.Spec().Name)
	}
	s.finish()
	s.res, s.ctr = nil, nil
	if err := res.Counters.Validate(); err != nil {
		return fmt.Errorf("sim: inconsistent counters for %q on %s: %w",
			g.Spec().Name, s.m.Name, err)
	}
	return nil
}

// driveGeneric streams ops one at a time with one-op lookahead for
// fusion — the path for Generator-backed (or any non-Chunked) sources.
// It reports false for an empty stream.
func (s *Simulator) driveGeneric(g trace.Source) bool {
	var cur, nxt trace.MicroOp
	haveNxt := g.Next(&nxt)
	if !haveNxt {
		return false
	}
	for haveNxt {
		cur = nxt
		haveNxt = g.Next(&nxt)
		if cur.FuseHead && haveNxt && fuseHash(cur.PC) < s.fusionRate {
			tail := nxt
			haveNxt = g.Next(&nxt)
			s.step(&cur, &tail)
		} else {
			s.step(&cur, nil)
		}
	}
	return true
}

// driveChunked consumes a Chunked source by iterating its slices
// directly — no interface call or µop copy per op. Fusion lookahead is
// in-slice except at a chunk boundary, where the final op's potential
// partner is the head of the next chunk. The op sequence and fusion
// decisions are exactly driveGeneric's.
func (s *Simulator) driveChunked(c trace.Chunked) bool {
	ops := c.NextChunk()
	if len(ops) == 0 {
		return false
	}
	for {
		last := len(ops) - 1
		i := 0
		for i < last {
			cur := &ops[i]
			if cur.FuseHead && fuseHash(cur.PC) < s.fusionRate {
				s.step(cur, &ops[i+1])
				i += 2
			} else {
				s.step(cur, nil)
				i++
			}
		}
		if i > last {
			// A fused pair consumed the chunk exactly.
			ops = c.NextChunk()
			if len(ops) == 0 {
				return true
			}
			continue
		}
		// Final op of the chunk: copy it out before advancing the cursor
		// (a source may recycle its chunk storage across NextChunk calls).
		carry := ops[last]
		ops = c.NextChunk()
		if carry.FuseHead && len(ops) > 0 && fuseHash(carry.PC) < s.fusionRate {
			s.step(&carry, &ops[0])
			ops = ops[1:]
		} else {
			s.step(&carry, nil)
		}
		if len(ops) == 0 {
			ops = c.NextChunk()
			if len(ops) == 0 {
				return true
			}
		}
	}
}

// stall charges empty dispatch slots up to target to comp. Slot-level
// accounting invariant: the sum of Truth.Cycles always equals
// cycle + slots/D.
func (s *Simulator) stall(target uint64, comp Component) {
	if target <= s.cycle {
		return
	}
	s.res.Truth.Cycles[comp] += float64(s.d-s.slots)/s.fD + float64(target-s.cycle-1)
	s.cycle = target
	s.slots = 0
}

// classify attributes a window (ROB/IQ) stall at the current cycle to
// the oldest uncompleted in-flight op, ASPLOS'06-style: a pending
// last-level load miss → memory component; a pending D-TLB walk →
// D-TLB; anything else (dependence chains, FU latency, commit width)
// → resource stall.
func (s *Simulator) classify() Component {
	for s.headIdx < s.entryCount && s.rob[s.headPos].commit <= s.cycle {
		s.headIdx++
		s.headPos++
		if s.headPos == len(s.rob) {
			s.headPos = 0
		}
	}
	pos := s.headPos
	for j := s.headIdx; j < s.entryCount; j++ {
		mm := &s.rob[pos]
		pos++
		if pos == len(s.rob) {
			pos = 0
		}
		if mm.complete > s.cycle {
			switch {
			case mm.memTrip:
				return CompLLCLoad
			case mm.dtlbMiss:
				return CompDTLB
			default:
				return CompResource
			}
		}
	}
	return CompResource
}

// findIssueSlot books the first cycle ≥ t with spare issue bandwidth.
func (s *Simulator) findIssueSlot(t uint64) uint64 {
	if t > s.cycle+issueRingSize-4096 {
		// Beyond the tracked horizon; bandwidth contention there is
		// immaterial because the window has long since drained.
		return t
	}
	return s.issue.findSlot(t, s.issueWidth)
}

// considerDeps raises ready to the completion time of op's producers.
func (s *Simulator) considerDeps(op *trace.MicroOp, ready uint64) uint64 {
	if op.Dep1 != 0 {
		if t := s.seq.lookup(op.Seq - uint64(op.Dep1)); t > ready {
			ready = t
		}
	}
	if op.Dep2 != 0 {
		if t := s.seq.lookup(op.Seq - uint64(op.Dep2)); t > ready {
			ready = t
		}
	}
	return ready
}

// doHalf executes one half of a (possibly fused) dispatch group: loads
// access the data hierarchy, possibly acquiring an MSHR for memory
// trips (which can push execStart back); the group latency is the max
// across halves.
func (s *Simulator) doHalf(op *trace.MicroOp) {
	var l uint64
	switch op.Kind {
	case trace.KindLoad:
		r := s.hier.DoLoad(op.Addr)
		s.meta.isLoad = true
		if r.TLBMiss {
			s.meta.dtlbMiss = true
		}
		if r.MemTrip {
			s.meta.memTrip = true
			// Acquire the least-soon-free MSHR; stall issue if none.
			if free := s.mshr.min(); free > s.execStart {
				s.execStart = s.findIssueSlot(free)
			}
			end := s.execStart + uint64(r.Lat)
			s.mshr.replaceMin(end)
			s.memBusySum += uint64(r.Lat)
			start := s.execStart
			if start < s.coveredUntil {
				start = s.coveredUntil
			}
			if end > start {
				s.memUnion += end - start
			}
			if end > s.coveredUntil {
				s.coveredUntil = end
			}
		}
		l = s.loadAGU + uint64(r.Lat)
	case trace.KindStore:
		s.hier.DoStore(op.Addr)
		l = s.storeLat
	default:
		l = s.latByKind[op.Kind&(numKinds-1)]
	}
	if l > s.lat {
		s.lat = l
	}
	if op.Kind == trace.KindFP || op.Kind == trace.KindDiv {
		s.ctr.FPOps++
	}
	if op.InstrFirst {
		s.ctr.Instructions++
	}
}

// resolveBranch trains the predictor and, on a misprediction, redirects
// the front end once the branch resolves.
func (s *Simulator) resolveBranch(op *trace.MicroOp, complete uint64) {
	s.ctr.Branches++
	if s.pred.PredictUpdate(op.PC, op.Taken) != op.Taken {
		s.ctr.BranchMispredicts++
		if redirect := complete + s.frontEnd; redirect > s.nextFetch {
			s.nextFetch = redirect
			s.feReason = CompBranch
		}
		s.lastLine = ^uint64(0) // refetch the target line
	}
}

// step dispatches one µop (with an optional fused tail) and advances
// every machine structure: front end, window occupancy, issue, execute,
// branch resolution, and in-order commit. Ops are read-only — chunked
// sources pass pointers into a backing store shared across concurrent
// simulations.
func (s *Simulator) step(cur, tail *trace.MicroOp) {
	// --- Dispatch-width boundary.
	if s.slots == s.d {
		s.cycle++
		s.slots = 0
	}

	// --- Front-end availability (branch redirects, earlier I-misses).
	if s.nextFetch > s.cycle {
		s.stall(s.nextFetch, s.feReason)
	}

	// --- Instruction-side cache/TLB on fetch-line change.
	if line := cur.PC >> s.lineShift; line != s.lastLine {
		s.lastLine = line
		r := s.hier.DoInstr(cur.PC)
		if r.TLBMiss {
			s.stall(s.cycle+s.itlbMiss, CompITLB)
		}
		switch r.Level {
		case cache.LvlL2:
			s.stall(s.cycle+s.l2Lat, CompICacheL2)
		case cache.LvlL3:
			s.stall(s.cycle+s.l3Lat, CompICacheL3)
		case cache.LvlMem:
			s.stall(s.cycle+s.memLat, CompICacheMem)
		}
	}

	// --- ROB occupancy. The entry about to be overwritten is the one
	// dispatched ROBSize ops ago ((entryCount-ROBSize) ≡ entryCount
	// mod ROBSize — the same slot the new op will fill).
	if s.entryCount >= s.robSize {
		if free := s.rob[s.robPos].commit; free > s.cycle {
			s.stall(free, s.classify())
		}
	}

	// --- Issue-queue occupancy.
	s.iq.popUpTo(s.cycle)
	for s.iq.len() >= s.iqSize {
		tmin := s.iq.min()
		comp := s.classify()
		if tmin <= s.cycle {
			tmin = s.cycle + 1
		}
		s.stall(tmin, comp)
		s.iq.popUpTo(s.cycle)
	}

	// --- Dispatch at the current cycle.
	s.slots++

	// Operand readiness across both halves of a fused pair.
	ready := s.cycle + 1
	ready = s.considerDeps(cur, ready)
	if tail != nil {
		ready = s.considerDeps(tail, ready)
	}
	s.execStart = s.findIssueSlot(ready)

	// Execute both halves.
	s.lat = 0
	s.meta = robMeta{}
	s.doHalf(cur)
	if tail != nil {
		s.doHalf(tail)
	}
	complete := s.execStart + s.lat
	s.iq.push(s.execStart)

	// Branch resolution and misprediction redirect.
	if cur.Kind == trace.KindBranch {
		s.resolveBranch(cur, complete)
	}
	if tail != nil && tail.Kind == trace.KindBranch {
		s.resolveBranch(tail, complete)
	}

	// In-order commit, CommitWidth per cycle.
	t := complete + 1
	if t < s.lastCommit {
		t = s.lastCommit
	}
	if t == s.lastCommit {
		if s.commitCnt == s.commitWidth {
			t++
			s.commitCnt = 1
		} else {
			s.commitCnt++
		}
	} else {
		s.commitCnt = 1
	}
	s.lastCommit = t
	s.meta.commit = t
	s.meta.complete = complete
	s.rob[s.robPos] = s.meta

	s.seq.store(cur.Seq, complete)
	if tail != nil {
		s.seq.store(tail.Seq, complete)
	}

	// Accounting: the dispatched slot is base work.
	s.res.Truth.Cycles[CompBase] += s.invD
	s.entryCount++
	s.robPos++
	if s.robPos == len(s.rob) {
		s.robPos = 0
	}
	s.ctr.Uops++
}

// finish attributes the window-drain tail after the last dispatch and
// folds the hierarchy statistics into the counters.
func (s *Simulator) finish() {
	res, ctr := s.res, s.ctr
	accounted := float64(s.cycle) + float64(s.slots)/s.fD
	pos := s.headPos
	for j := s.headIdx; j < s.entryCount; j++ {
		mm := &s.rob[pos]
		pos++
		if pos == len(s.rob) {
			pos = 0
		}
		ct := float64(mm.commit)
		if ct <= accounted {
			continue
		}
		comp := CompResource
		if mm.memTrip {
			comp = CompLLCLoad
		} else if mm.dtlbMiss {
			comp = CompDTLB
		}
		res.Truth.Cycles[comp] += ct - accounted
		accounted = ct
	}

	is, ds := s.hier.IStats, s.hier.DStats
	ctr.Cycles = s.lastCommit
	ctr.L1IMisses = is.L1Misses
	ctr.L2IMisses = is.L2Misses
	ctr.L3IMisses = is.L3Misses
	ctr.LLCIMisses = is.LLCMisses
	ctr.ITLBMisses = is.TLBMisses
	ctr.L1DLoadMisses = ds.L1LoadMisses
	ctr.L1DLoadL2Hits = ds.L1LoadL2Hits
	ctr.LLCDLoadMisses = ds.LLCLoadMisses
	ctr.DTLBMisses = ds.TLBMisses

	if s.memUnion > 0 {
		res.MeasuredMLP = float64(s.memBusySum) / float64(s.memUnion)
	}
}
