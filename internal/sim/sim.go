package sim

import (
	"encoding/json"
	"fmt"

	"repro/internal/branch"
	"repro/internal/cache"
	"repro/internal/perfctr"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Version identifies the timing semantics of the simulator (including the
// cache, branch-predictor, and trace-generator substrates it drives).
// Content-addressed caches of Results key on it, so bump it whenever a
// change anywhere in the pipeline can alter any Result — stale cached
// runs are then never reused.
const Version = "sim-v1"

// Result is the outcome of running one workload on one machine.
type Result struct {
	// Counters is everything a performance-counter tool could read — the
	// model's only per-workload input.
	Counters perfctr.Counters
	// Truth is the ground-truth cycle accounting (simulator oracle, not
	// available on real hardware) used to validate CPI stacks (Fig. 5).
	Truth Stack
	// MeasuredMLP is the oracle average number of outstanding memory
	// accesses while at least one is outstanding (Chou et al.'s MLP
	// definition). Not measurable with counters; used for validation.
	MeasuredMLP float64
}

// Encode serializes the result deterministically: field order is fixed by
// the struct definitions and floats use Go's shortest exact round-trip
// encoding, so equal Results always produce byte-identical encodings.
func (r *Result) Encode() ([]byte, error) {
	return json.Marshal(r)
}

// DecodeResult parses a Result previously produced by Encode.
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("sim: decode result: %w", err)
	}
	return &r, nil
}

// Simulator executes µop streams on one machine configuration. It is
// reusable across runs (state is reset per Run) but not safe for
// concurrent use.
type Simulator struct {
	m    *uarch.Machine
	hier *cache.Hierarchy
	pred branch.Predictor // built fresh per Run; runs must be independent
	mshr mshrHeap

	// Issue-bandwidth ring: counts issues per future cycle.
	issueTag []uint64
	issueCnt []uint8
}

// Ring geometry for the issue-bandwidth tracker. The horizon must exceed
// the largest lead of any op's issue time over the dispatch cycle, which
// is bounded by the window draining serially through worst-case latencies
// (ROB × (memLat + TLB walk) ≈ 60K cycles on the Pentium 4 config).
const (
	issueRingBits = 18
	issueRingSize = 1 << issueRingBits
	issueRingMask = issueRingSize - 1
)

// Completion ring: maps recent canonical sequence numbers to completion
// times. Dependences reach at most 256 µops back (the generator clamps
// them), far less than the ring size.
const (
	seqRingBits = 10
	seqRingSize = 1 << seqRingBits
	seqRingMask = seqRingSize - 1
)

// New builds a simulator for machine m. The branch predictor is not
// built here: Run constructs a fresh one per run anyway (runs must be
// independent), and a predictor-configuration error surfaces on the
// first Run.
func New(m *uarch.Machine) (*Simulator, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(m)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		m:        m,
		hier:     hier,
		mshr:     mshrHeap{a: make([]uint64, m.MSHRs)},
		issueTag: make([]uint64, issueRingSize),
		issueCnt: make([]uint8, issueRingSize),
	}, nil
}

// Machine returns the simulated machine.
func (s *Simulator) Machine() *uarch.Machine { return s.m }

// fuseHash decides micro-fusion per static PC, deterministically: the
// same pair fuses on every execution, as in a real decoder.
func fuseHash(pc uint64) float64 {
	x := pc
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x&0xffff) / 65536
}

// robMeta is the per-ROB-entry metadata the accounting needs.
type robMeta struct {
	commit   uint64
	complete uint64
	isLoad   bool
	memTrip  bool
	dtlbMiss bool
}

// Run executes the workload stream g to completion and returns counters
// and ground-truth accounting. The source is reset first, so the same
// Generator or Buffer cursor can be run on several machines. A
// materialized trace.Buffer replay produces the exact stream its
// Generator would, so Results are bit-identical across source kinds.
func (s *Simulator) Run(g trace.Source) (*Result, error) {
	g.Reset()
	s.hier.Reset()
	// A fresh predictor per run: runs must be independent.
	pred, err := branch.New(s.m.Predictor)
	if err != nil {
		return nil, err
	}
	s.pred = pred
	for i := range s.issueTag {
		s.issueTag[i] = ^uint64(0)
		s.issueCnt[i] = 0
	}

	m := s.m
	D := m.DispatchWidth
	res := &Result{}
	ctr := &res.Counters

	lineShift := uint(0)
	for m.L1I.LineBytes>>lineShift > 1 {
		lineShift++
	}

	// Window state.
	rob := make([]robMeta, m.ROBSize)
	iq := newMinHeap(m.IQSize + 1)
	s.mshr.reset()

	var (
		cycle      uint64 // current dispatch cycle
		slots      int    // dispatch slots used this cycle
		nextFetch  uint64 // front end unavailable before this cycle
		feReason   = CompBranch
		lastLine   = ^uint64(0)
		entryCount uint64 // dispatched entries (committed µops)
		headIdx    uint64 // oldest possibly-uncommitted entry
		lastCommit uint64
		commitCnt  int
	)

	// Completion-time ring by canonical sequence number.
	var completeAt [seqRingSize]uint64
	var completeTag [seqRingSize]uint64 // seq+1; 0 = empty

	lookupComplete := func(seq uint64) uint64 {
		i := seq & seqRingMask
		if completeTag[i] == seq+1 {
			return completeAt[i]
		}
		return 0 // long-retired producer: completed in the distant past
	}
	storeComplete := func(seq, t uint64) {
		i := seq & seqRingMask
		completeTag[i] = seq + 1
		completeAt[i] = t
	}

	// Slot-level accounting: empty dispatch slots are charged to a
	// component; filled slots are base. The invariant is that the sum of
	// Truth.Cycles always equals cycle + slots/D.
	stall := func(target uint64, comp Component) {
		if target <= cycle {
			return
		}
		res.Truth.Cycles[comp] += float64(D-slots)/float64(D) + float64(target-cycle-1)
		cycle = target
		slots = 0
	}

	// classify attributes a window (ROB/IQ) stall at the current cycle to
	// the oldest uncompleted in-flight op, ASPLOS'06-style: a pending
	// last-level load miss → memory component; a pending D-TLB walk →
	// D-TLB; anything else (dependence chains, FU latency, commit width)
	// → resource stall.
	classify := func() Component {
		for headIdx < entryCount && rob[headIdx%uint64(m.ROBSize)].commit <= cycle {
			headIdx++
		}
		for j := headIdx; j < entryCount; j++ {
			mm := &rob[j%uint64(m.ROBSize)]
			if mm.complete > cycle {
				switch {
				case mm.memTrip:
					return CompLLCLoad
				case mm.dtlbMiss:
					return CompDTLB
				default:
					return CompResource
				}
			}
		}
		return CompResource
	}

	findIssueSlot := func(t uint64) uint64 {
		if t > cycle+issueRingSize-4096 {
			// Beyond the tracked horizon; bandwidth contention there is
			// immaterial because the window has long since drained.
			return t
		}
		for {
			i := t & issueRingMask
			if s.issueTag[i] != t {
				s.issueTag[i] = t
				s.issueCnt[i] = 0
			}
			if int(s.issueCnt[i]) < m.IssueWidth {
				s.issueCnt[i]++
				return t
			}
			t++
		}
	}

	// MLP oracle accumulators (union-of-busy-intervals watermark).
	var memBusySum, memUnion, coveredUntil uint64

	fuLat := func(k trace.Kind) uint64 {
		switch k {
		case trace.KindMul:
			return uint64(m.MulLat)
		case trace.KindFP:
			return uint64(m.FPLat)
		case trace.KindDiv:
			return uint64(m.DivLat)
		default:
			return uint64(m.IntLat)
		}
	}

	// Stream with one-op lookahead for fusion.
	var cur, nxt trace.MicroOp
	haveNxt := g.Next(&nxt)
	if !haveNxt {
		return nil, fmt.Errorf("sim: empty µop stream for %q", g.Spec().Name)
	}

	for haveNxt {
		cur = nxt
		haveNxt = g.Next(&nxt)
		var tail trace.MicroOp
		fused := false
		if cur.FuseHead && haveNxt && fuseHash(cur.PC) < m.FusionRate {
			tail = nxt
			fused = true
			haveNxt = g.Next(&nxt)
		}

		// --- Dispatch-width boundary.
		if slots == D {
			cycle++
			slots = 0
		}

		// --- Front-end availability (branch redirects, earlier I-misses).
		if nextFetch > cycle {
			stall(nextFetch, feReason)
		}

		// --- Instruction-side cache/TLB on fetch-line change.
		line := cur.PC >> lineShift
		if line != lastLine {
			lastLine = line
			r := s.hier.Do(cache.Access{Addr: cur.PC, IsInstr: true})
			if r.TLBMiss {
				stall(cycle+uint64(m.ITLB.MissLat), CompITLB)
			}
			switch r.Level {
			case cache.LvlL2:
				stall(cycle+uint64(m.L2.LatCycles), CompICacheL2)
			case cache.LvlL3:
				stall(cycle+uint64(m.L3.LatCycles), CompICacheL3)
			case cache.LvlMem:
				stall(cycle+uint64(m.MemLat), CompICacheMem)
			}
		}

		// --- ROB occupancy.
		if entryCount >= uint64(m.ROBSize) {
			free := rob[(entryCount-uint64(m.ROBSize))%uint64(m.ROBSize)].commit
			if free > cycle {
				stall(free, classify())
			}
		}

		// --- Issue-queue occupancy.
		iq.popUpTo(cycle)
		for iq.len() >= m.IQSize {
			tmin := iq.min()
			comp := classify()
			if tmin <= cycle {
				tmin = cycle + 1
			}
			stall(tmin, comp)
			iq.popUpTo(cycle)
		}

		// --- Dispatch at the current cycle.
		slots++
		dispatchCycle := cycle

		// Operand readiness across both halves of a fused pair.
		ready := dispatchCycle + 1
		consider := func(op *trace.MicroOp) {
			if op.Dep1 != 0 {
				if t := lookupComplete(op.Seq - uint64(op.Dep1)); t > ready {
					ready = t
				}
			}
			if op.Dep2 != 0 {
				if t := lookupComplete(op.Seq - uint64(op.Dep2)); t > ready {
					ready = t
				}
			}
		}
		consider(&cur)
		if fused {
			consider(&tail)
		}

		execStart := findIssueSlot(ready)

		// Execute: take the max latency across halves; loads access the
		// data hierarchy, possibly acquiring an MSHR for memory trips.
		var lat uint64
		meta := robMeta{}
		doHalf := func(op *trace.MicroOp) {
			var l uint64
			switch op.Kind {
			case trace.KindLoad:
				r := s.hier.Do(cache.Access{Addr: op.Addr})
				meta.isLoad = true
				if r.TLBMiss {
					meta.dtlbMiss = true
				}
				if r.MemTrip {
					meta.memTrip = true
					// Acquire the least-soon-free MSHR; stall issue if none.
					if free := s.mshr.min(); free > execStart {
						execStart = findIssueSlot(free)
					}
					end := execStart + uint64(r.Lat)
					s.mshr.replaceMin(end)
					memBusySum += uint64(r.Lat)
					start := execStart
					if start < coveredUntil {
						start = coveredUntil
					}
					if end > start {
						memUnion += end - start
					}
					if end > coveredUntil {
						coveredUntil = end
					}
				}
				l = uint64(m.LoadAGU + r.Lat)
			case trace.KindStore:
				s.hier.Do(cache.Access{Addr: op.Addr, IsWrite: true})
				l = uint64(m.StoreLat)
			case trace.KindBranch:
				l = uint64(m.IntLat)
			default:
				l = fuLat(op.Kind)
			}
			if l > lat {
				lat = l
			}
			if op.Kind == trace.KindFP || op.Kind == trace.KindDiv {
				ctr.FPOps++
			}
			if op.InstrFirst {
				ctr.Instructions++
			}
		}
		doHalf(&cur)
		if fused {
			doHalf(&tail)
		}
		complete := execStart + lat
		iq.push(execStart)

		// Branch resolution and misprediction redirect.
		handleBranch := func(op *trace.MicroOp) {
			if op.Kind != trace.KindBranch {
				return
			}
			ctr.Branches++
			predicted := s.pred.Predict(op.PC)
			s.pred.Update(op.PC, op.Taken)
			if predicted != op.Taken {
				ctr.BranchMispredicts++
				redirect := complete + uint64(m.FrontEndDepth)
				if redirect > nextFetch {
					nextFetch = redirect
					feReason = CompBranch
				}
				lastLine = ^uint64(0) // refetch the target line
			}
		}
		handleBranch(&cur)
		if fused {
			handleBranch(&tail)
		}

		// In-order commit, CommitWidth per cycle.
		t := complete + 1
		if t < lastCommit {
			t = lastCommit
		}
		if t == lastCommit {
			if commitCnt == m.CommitWidth {
				t++
				commitCnt = 1
			} else {
				commitCnt++
			}
		} else {
			commitCnt = 1
		}
		lastCommit = t
		meta.commit = t
		meta.complete = complete
		rob[entryCount%uint64(m.ROBSize)] = meta

		storeComplete(cur.Seq, complete)
		if fused {
			storeComplete(tail.Seq, complete)
		}

		// Accounting: the dispatched slot is base work.
		res.Truth.Cycles[CompBase] += 1 / float64(D)
		entryCount++
		ctr.Uops++
	}

	// --- Drain: attribute the window-drain tail after the last dispatch.
	accounted := float64(cycle) + float64(slots)/float64(D)
	for j := headIdx; j < entryCount; j++ {
		mm := &rob[j%uint64(m.ROBSize)]
		ct := float64(mm.commit)
		if ct <= accounted {
			continue
		}
		comp := CompResource
		if mm.memTrip {
			comp = CompLLCLoad
		} else if mm.dtlbMiss {
			comp = CompDTLB
		}
		res.Truth.Cycles[comp] += ct - accounted
		accounted = ct
	}

	// --- Counters from hierarchy statistics.
	is, ds := s.hier.IStats, s.hier.DStats
	ctr.Cycles = lastCommit
	ctr.L1IMisses = is.L1Misses
	ctr.L2IMisses = is.L2Misses
	ctr.L3IMisses = is.L3Misses
	ctr.LLCIMisses = is.LLCMisses
	ctr.ITLBMisses = is.TLBMisses
	ctr.L1DLoadMisses = ds.L1LoadMisses
	ctr.L1DLoadL2Hits = ds.L1LoadL2Hits
	ctr.LLCDLoadMisses = ds.LLCLoadMisses
	ctr.DTLBMisses = ds.TLBMisses

	if memUnion > 0 {
		res.MeasuredMLP = float64(memBusySum) / float64(memUnion)
	}
	if err := ctr.Validate(); err != nil {
		return nil, fmt.Errorf("sim: inconsistent counters for %q on %s: %w",
			g.Spec().Name, m.Name, err)
	}
	return res, nil
}

// mshrHeap tracks the free times of the machine's MSHRs as a binary
// min-heap, so a memory trip finds the least-soon-free MSHR at the root
// in O(1) and commits its new free time in O(log MSHRs) — replacing the
// linear least-soon-free scan per trip. The occupancy pattern only ever
// replaces the minimum with a later time (the trip starts no earlier
// than the MSHR frees), so a single sift-down maintains the invariant.
type mshrHeap struct {
	a []uint64
}

func (h *mshrHeap) reset() {
	for i := range h.a {
		h.a[i] = 0
	}
}

// min returns the earliest free time across all MSHRs.
func (h *mshrHeap) min() uint64 { return h.a[0] }

// replaceMin overwrites the earliest free time with v (which must be
// ≥ the current minimum) and restores heap order.
func (h *mshrHeap) replaceMin(v uint64) {
	a := h.a
	n := len(a)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		sv := v
		if l < n && a[l] < sv {
			small, sv = l, a[l]
		}
		if r < n && a[r] < sv {
			small = r
		}
		if small == i {
			break
		}
		a[i] = a[small]
		i = small
	}
	a[i] = v
}

// minHeap is a binary min-heap of uint64 (issue-queue departure times).
type minHeap struct {
	a []uint64
}

func newMinHeap(capHint int) *minHeap {
	return &minHeap{a: make([]uint64, 0, capHint)}
}

func (h *minHeap) len() int    { return len(h.a) }
func (h *minHeap) min() uint64 { return h.a[0] }

func (h *minHeap) push(v uint64) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *minHeap) pop() uint64 {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l] < h.a[small] {
			small = l
		}
		if r < last && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return v
}

// popUpTo removes all entries with value <= cycle (ops that have issued).
func (h *minHeap) popUpTo(cycle uint64) {
	for len(h.a) > 0 && h.a[0] <= cycle {
		h.pop()
	}
}
