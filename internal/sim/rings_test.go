package sim

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestIssueRingBandwidth pins the core booking behavior: a cycle hands
// out exactly width slots, then overflows into the next cycle.
func TestIssueRingBandwidth(t *testing.T) {
	r := newIssueRing()
	r.reset()
	const width = 4
	for i := 0; i < width; i++ {
		if got := r.findSlot(100, width); got != 100 {
			t.Fatalf("claim %d: findSlot(100) = %d, want 100", i, got)
		}
	}
	if got := r.findSlot(100, width); got != 101 {
		t.Errorf("full cycle should overflow: findSlot(100) = %d, want 101", got)
	}
	// A request for a later cycle never lands on an earlier one.
	if got := r.findSlot(200, width); got != 200 {
		t.Errorf("findSlot(200) = %d, want 200", got)
	}
}

// TestIssueRingWrapAround drives the ring across its issueRingSize
// horizon: a slot whose index collides with a long-past cycle must be
// lazily re-tagged, not treated as occupied, and the stale bookings of
// the old cycle must not leak into the new one.
func TestIssueRingWrapAround(t *testing.T) {
	r := newIssueRing()
	r.reset()
	const width = 2
	base := uint64(7)
	// Exhaust cycle base so its ring word carries a full count.
	if r.findSlot(base, width) != base || r.findSlot(base, width) != base {
		t.Fatal("setup: could not book cycle base twice")
	}
	// One horizon later the same index must look free again: the tag
	// mismatch re-claims it with a fresh count of one.
	wrapped := base + issueRingSize
	if got := r.findSlot(wrapped, width); got != wrapped {
		t.Fatalf("findSlot(base+ringSize) = %d, want %d (stale slot not re-tagged)", got, wrapped)
	}
	if got := r.findSlot(wrapped, width); got != wrapped {
		t.Fatalf("second claim after wrap = %d, want %d (stale count leaked)", got, wrapped)
	}
	if got := r.findSlot(wrapped, width); got != wrapped+1 {
		t.Errorf("third claim after wrap = %d, want %d", got, wrapped+1)
	}
	// Several horizons later, same story — the tag comparison is on the
	// full cycle, not the wrapped index.
	far := base + 5*issueRingSize
	if got := r.findSlot(far, width); got != far {
		t.Errorf("findSlot(base+5*ringSize) = %d, want %d", got, far)
	}
}

// TestIssueRingResetClearsBookings pins the per-run reset: bookings
// from a previous run must never alias into the next, including the
// cycle-0 slot (the reset tag must be unreachable, not just unlikely).
func TestIssueRingResetClearsBookings(t *testing.T) {
	r := newIssueRing()
	r.reset()
	const width = 1
	if r.findSlot(0, width) != 0 {
		t.Fatal("setup: cycle 0 not bookable on a fresh ring")
	}
	if got := r.findSlot(0, width); got != 1 {
		t.Fatalf("setup: second claim = %d, want overflow to 1", got)
	}
	r.reset()
	if got := r.findSlot(0, width); got != 0 {
		t.Errorf("after reset, findSlot(0) = %d, want 0", got)
	}
}

// TestSeqRingWrapAround drives the completion ring across its
// seqRingSize horizon: a sequence number whose index collides with an
// evicted one must read as 0 (completed in the distant past), and a
// fresh store must win over the stale entry.
func TestSeqRingWrapAround(t *testing.T) {
	var r seqRing
	r.reset()
	const seq = uint64(42)
	r.store(seq, 900)
	if got := r.lookup(seq); got != 900 {
		t.Fatalf("lookup(%d) = %d, want 900", seq, got)
	}
	// The colliding sequence one horizon later misses before its store...
	collide := seq + seqRingSize
	if got := r.lookup(collide); got != 0 {
		t.Errorf("lookup(seq+ringSize) = %d, want 0 before store", got)
	}
	// ...and after its store, the original is the stale one.
	r.store(collide, 1800)
	if got := r.lookup(collide); got != 1800 {
		t.Errorf("lookup(seq+ringSize) = %d, want 1800 after store", got)
	}
	if got := r.lookup(seq); got != 0 {
		t.Errorf("lookup(seq) = %d, want 0 after eviction by the colliding store", got)
	}
}

// TestSeqRingZeroSequence pins the tag encoding: sequence 0 is a valid
// key (tag stores seq+1 precisely so the zero word means empty).
func TestSeqRingZeroSequence(t *testing.T) {
	var r seqRing
	r.reset()
	if got := r.lookup(0); got != 0 {
		t.Fatalf("lookup(0) on an empty ring = %d, want 0", got)
	}
	r.store(0, 77)
	if got := r.lookup(0); got != 77 {
		t.Errorf("lookup(0) = %d, want 77", got)
	}
	r.reset()
	if got := r.lookup(0); got != 0 {
		t.Errorf("lookup(0) after reset = %d, want 0 (stale tag survived)", got)
	}
}

// refIQ mirrors the iqRing against the plain min-heap it replaced,
// driven with the simulator's discipline (drain to the current cycle
// before pushing values above it).
type refIQ struct {
	q   iqRing
	h   minHeap
	rng *rand.Rand
	t   *testing.T
}

func (r *refIQ) check(where string) {
	r.t.Helper()
	if r.q.len() != r.h.len() {
		r.t.Fatalf("%s: len ring=%d heap=%d", where, r.q.len(), r.h.len())
	}
	if r.h.len() > 0 {
		if qm, hm := r.q.min(), r.h.min(); qm != hm {
			r.t.Fatalf("%s: min ring=%d heap=%d", where, qm, hm)
		}
	}
}

// TestIQRingMatchesMinHeap drives the calendar ring and the reference
// heap through randomized push/popUpTo sequences — including leads past
// the ring horizon (far overflow) and cycle ranges crossing the 2^16
// wrap boundary — requiring identical len/min at every step.
func TestIQRingMatchesMinHeap(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		r := &refIQ{q: newIQRing(), h: newMinHeap(8), rng: rand.New(rand.NewSource(int64(trial)))}
		r.t = t
		// Start some trials just below a wrap boundary so draining and
		// pushing straddle multiples of iqRingSize.
		cycle := uint64(r.rng.Intn(1000))
		if trial%2 == 1 {
			cycle = uint64(trial)*iqRingSize - 500
		}
		for op := 0; op < 5000; op++ {
			cycle += uint64(r.rng.Intn(40))
			r.q.popUpTo(cycle)
			r.h.popUpTo(cycle)
			r.check("drain")
			for n := r.rng.Intn(4); n > 0; n-- {
				lead := uint64(1 + r.rng.Intn(300))
				switch r.rng.Intn(20) {
				case 0: // near the horizon
					lead = iqRingSize - uint64(r.rng.Intn(3))
				case 1: // past the horizon: far-heap overflow
					lead = iqRingSize + uint64(r.rng.Intn(1<<20))
				}
				v := cycle + lead
				r.q.push(v)
				r.h.push(v)
				r.check("push")
			}
		}
	}
}

// TestIQRingFarOverflow pins the overflow path directly: values at and
// past the horizon live in the far heap, stay exact, and win min() only
// when the ring side is empty or later.
func TestIQRingFarOverflow(t *testing.T) {
	q := newIQRing()
	q.popUpTo(99)            // low = 100
	q.push(100 + iqRingSize) // exactly at the horizon → far
	q.push(100 + 2*iqRingSize)
	if q.far.len() != 2 || q.total != 0 {
		t.Fatalf("far=%d ring=%d, want 2/0", q.far.len(), q.total)
	}
	if q.len() != 2 || q.min() != 100+iqRingSize {
		t.Fatalf("len=%d min=%d", q.len(), q.min())
	}
	q.push(100 + iqRingSize - 1) // just inside → ring
	if q.total != 1 || q.min() != 100+iqRingSize-1 {
		t.Fatalf("ring push landed wrong: total=%d min=%d", q.total, q.min())
	}
	// Draining past the ring entry exposes the far minimum again.
	q.popUpTo(100 + iqRingSize - 1)
	if q.len() != 2 || q.min() != 100+iqRingSize {
		t.Fatalf("after drain: len=%d min=%d", q.len(), q.min())
	}
	// Far entries drain through popUpTo like ring entries.
	q.popUpTo(100 + 2*iqRingSize)
	if q.len() != 0 {
		t.Fatalf("after full drain: len=%d", q.len())
	}
}

// TestIQRingWrapAround exercises bucket reuse across the 2^16 horizon:
// an entry popped at cycle c must not ghost-occupy the bucket when
// cycle c+iqRingSize comes around.
func TestIQRingWrapAround(t *testing.T) {
	q := newIQRing()
	for gen := uint64(0); gen < 5; gen++ {
		base := gen * iqRingSize
		q.popUpTo(base)
		q.push(base + 7)
		q.push(base + 7) // duplicate values share a bucket
		q.push(base + 9)
		if q.len() != 3 || q.min() != base+7 {
			t.Fatalf("gen %d: len=%d min=%d", gen, q.len(), q.min())
		}
		q.popUpTo(base + 7)
		if q.len() != 1 || q.min() != base+9 {
			t.Fatalf("gen %d after pop: len=%d min=%d", gen, q.len(), q.min())
		}
		q.popUpTo(base + 9)
		if q.len() != 0 {
			t.Fatalf("gen %d not drained", gen)
		}
	}
}

// TestIQRingReset requires reset to restore the freshly-built state —
// counts, bitmaps, window, and overflow heap — so reused simulators
// start bit-identical runs.
func TestIQRingReset(t *testing.T) {
	q := newIQRing()
	q.popUpTo(12345)
	for i := 0; i < 200; i++ {
		q.push(12346 + uint64(i*37)%iqRingSize)
	}
	q.push(12346 + iqRingSize) // one far entry
	q.reset()
	fresh := newIQRing()
	if !reflect.DeepEqual(q.cnt, fresh.cnt) || !reflect.DeepEqual(q.bm, fresh.bm) ||
		!reflect.DeepEqual(q.bm2, fresh.bm2) {
		t.Error("reset left counts or bitmaps dirty")
	}
	if q.total != 0 || q.low != 0 || q.cursor != 0 || q.far.len() != 0 {
		t.Errorf("reset scalars: total=%d low=%d cursor=%d far=%d", q.total, q.low, q.cursor, q.far.len())
	}
	// Behaves like new after reset.
	q.push(3)
	if q.len() != 1 || q.min() != 3 {
		t.Errorf("post-reset push: len=%d min=%d", q.len(), q.min())
	}
}
