package sim

import "testing"

// TestIssueRingBandwidth pins the core booking behavior: a cycle hands
// out exactly width slots, then overflows into the next cycle.
func TestIssueRingBandwidth(t *testing.T) {
	r := newIssueRing()
	r.reset()
	const width = 4
	for i := 0; i < width; i++ {
		if got := r.findSlot(100, width); got != 100 {
			t.Fatalf("claim %d: findSlot(100) = %d, want 100", i, got)
		}
	}
	if got := r.findSlot(100, width); got != 101 {
		t.Errorf("full cycle should overflow: findSlot(100) = %d, want 101", got)
	}
	// A request for a later cycle never lands on an earlier one.
	if got := r.findSlot(200, width); got != 200 {
		t.Errorf("findSlot(200) = %d, want 200", got)
	}
}

// TestIssueRingWrapAround drives the ring across its issueRingSize
// horizon: a slot whose index collides with a long-past cycle must be
// lazily re-tagged, not treated as occupied, and the stale bookings of
// the old cycle must not leak into the new one.
func TestIssueRingWrapAround(t *testing.T) {
	r := newIssueRing()
	r.reset()
	const width = 2
	base := uint64(7)
	// Exhaust cycle base so its ring word carries a full count.
	if r.findSlot(base, width) != base || r.findSlot(base, width) != base {
		t.Fatal("setup: could not book cycle base twice")
	}
	// One horizon later the same index must look free again: the tag
	// mismatch re-claims it with a fresh count of one.
	wrapped := base + issueRingSize
	if got := r.findSlot(wrapped, width); got != wrapped {
		t.Fatalf("findSlot(base+ringSize) = %d, want %d (stale slot not re-tagged)", got, wrapped)
	}
	if got := r.findSlot(wrapped, width); got != wrapped {
		t.Fatalf("second claim after wrap = %d, want %d (stale count leaked)", got, wrapped)
	}
	if got := r.findSlot(wrapped, width); got != wrapped+1 {
		t.Errorf("third claim after wrap = %d, want %d", got, wrapped+1)
	}
	// Several horizons later, same story — the tag comparison is on the
	// full cycle, not the wrapped index.
	far := base + 5*issueRingSize
	if got := r.findSlot(far, width); got != far {
		t.Errorf("findSlot(base+5*ringSize) = %d, want %d", got, far)
	}
}

// TestIssueRingResetClearsBookings pins the per-run reset: bookings
// from a previous run must never alias into the next, including the
// cycle-0 slot (the reset tag must be unreachable, not just unlikely).
func TestIssueRingResetClearsBookings(t *testing.T) {
	r := newIssueRing()
	r.reset()
	const width = 1
	if r.findSlot(0, width) != 0 {
		t.Fatal("setup: cycle 0 not bookable on a fresh ring")
	}
	if got := r.findSlot(0, width); got != 1 {
		t.Fatalf("setup: second claim = %d, want overflow to 1", got)
	}
	r.reset()
	if got := r.findSlot(0, width); got != 0 {
		t.Errorf("after reset, findSlot(0) = %d, want 0", got)
	}
}

// TestSeqRingWrapAround drives the completion ring across its
// seqRingSize horizon: a sequence number whose index collides with an
// evicted one must read as 0 (completed in the distant past), and a
// fresh store must win over the stale entry.
func TestSeqRingWrapAround(t *testing.T) {
	var r seqRing
	r.reset()
	const seq = uint64(42)
	r.store(seq, 900)
	if got := r.lookup(seq); got != 900 {
		t.Fatalf("lookup(%d) = %d, want 900", seq, got)
	}
	// The colliding sequence one horizon later misses before its store...
	collide := seq + seqRingSize
	if got := r.lookup(collide); got != 0 {
		t.Errorf("lookup(seq+ringSize) = %d, want 0 before store", got)
	}
	// ...and after its store, the original is the stale one.
	r.store(collide, 1800)
	if got := r.lookup(collide); got != 1800 {
		t.Errorf("lookup(seq+ringSize) = %d, want 1800 after store", got)
	}
	if got := r.lookup(seq); got != 0 {
		t.Errorf("lookup(seq) = %d, want 0 after eviction by the colliding store", got)
	}
}

// TestSeqRingZeroSequence pins the tag encoding: sequence 0 is a valid
// key (tag stores seq+1 precisely so the zero word means empty).
func TestSeqRingZeroSequence(t *testing.T) {
	var r seqRing
	r.reset()
	if got := r.lookup(0); got != 0 {
		t.Fatalf("lookup(0) on an empty ring = %d, want 0", got)
	}
	r.store(0, 77)
	if got := r.lookup(0); got != 77 {
		t.Errorf("lookup(0) = %d, want 77", got)
	}
	r.reset()
	if got := r.lookup(0); got != 0 {
		t.Errorf("lookup(0) after reset = %d, want 0 (stale tag survived)", got)
	}
}
