package sim

import "math/bits"

// Ring geometry for the issue-bandwidth tracker. The horizon must exceed
// the largest lead of any op's issue time over the dispatch cycle, which
// is bounded by the window draining serially through worst-case latencies
// (ROB × (memLat + TLB walk) ≈ 60K cycles on the Pentium 4 config).
const (
	issueRingBits = 18
	issueRingSize = 1 << issueRingBits
	issueRingMask = issueRingSize - 1
)

// Per-cycle issue counts are packed into the low bits of the ring word,
// so the machine's issue width must fit in issueCntMask (sim.New
// enforces this).
const (
	issueCntBits = 6
	issueCntMask = (1 << issueCntBits) - 1
)

// Completion ring: maps recent canonical sequence numbers to completion
// times. Dependences reach at most 256 µops back (the generator clamps
// them), far less than the ring size.
const (
	seqRingBits = 10
	seqRingSize = 1 << seqRingBits
	seqRingMask = seqRingSize - 1
)

// issueRing counts issues per future cycle so dispatch can find the
// first cycle with spare issue bandwidth. Each ring word packs the
// owning cycle and that cycle's issue count as cycle<<issueCntBits|count
// — one load/store per probe instead of separate tag and count arrays.
// Ring slots are lazily re-tagged as the cycle horizon advances; reset
// words are all-ones, a tag no reachable cycle can have (it would need
// cycle ≥ 2^58).
type issueRing struct {
	w []uint64
}

func newIssueRing() issueRing {
	return issueRing{w: make([]uint64, issueRingSize)}
}

func (r *issueRing) reset() {
	for i := range r.w {
		r.w[i] = ^uint64(0)
	}
}

// findSlot returns the first cycle ≥ t with spare issue bandwidth and
// books one issue there. width must be in [1, issueCntMask].
func (r *issueRing) findSlot(t uint64, width int) uint64 {
	for {
		i := t & issueRingMask
		w := r.w[i]
		if w>>issueCntBits != t {
			// Slot belongs to a long-past cycle: claim it for t.
			r.w[i] = t<<issueCntBits | 1
			return t
		}
		if int(w&issueCntMask) < width {
			r.w[i] = w + 1
			return t
		}
		t++
	}
}

// seqRing maps recent canonical sequence numbers to completion times.
// The tag stores seq+1 so the zero value means empty; a lookup past the
// ring horizon (or before the producer dispatched) reports 0, i.e.
// completed in the distant past.
type seqRing struct {
	tag [seqRingSize]uint64
	at  [seqRingSize]uint64
}

func (r *seqRing) reset() {
	clear(r.tag[:])
}

func (r *seqRing) lookup(seq uint64) uint64 {
	i := seq & seqRingMask
	if r.tag[i] == seq+1 {
		return r.at[i]
	}
	return 0
}

func (r *seqRing) store(seq, t uint64) {
	i := seq & seqRingMask
	r.tag[i] = seq + 1
	r.at[i] = t
}

// mshrHeap tracks the free times of the machine's MSHRs as a binary
// min-heap, so a memory trip finds the least-soon-free MSHR at the root
// in O(1) and commits its new free time in O(log MSHRs) — replacing the
// linear least-soon-free scan per trip. The occupancy pattern only ever
// replaces the minimum with a later time (the trip starts no earlier
// than the MSHR frees), so a single sift-down maintains the invariant.
type mshrHeap struct {
	a []uint64
}

func (h *mshrHeap) reset() {
	for i := range h.a {
		h.a[i] = 0
	}
}

// min returns the earliest free time across all MSHRs.
func (h *mshrHeap) min() uint64 { return h.a[0] }

// replaceMin overwrites the earliest free time with v (which must be
// ≥ the current minimum) and restores heap order.
func (h *mshrHeap) replaceMin(v uint64) {
	a := h.a
	n := len(a)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		sv := v
		if l < n && a[l] < sv {
			small, sv = l, a[l]
		}
		if r < n && a[r] < sv {
			small = r
		}
		if small == i {
			break
		}
		a[i] = a[small]
		i = small
	}
	a[i] = v
}

// Calendar-ring geometry for the issue-queue departure times. Departure
// leads over the dispatch cycle are bounded by the latency LUT's
// worst-case completion chains (far below 2^16 for every stock machine);
// the rare op scheduled further out than the ring horizon — possible
// only through the issueRing's beyond-horizon escape — spills into an
// exact min-heap overflow, so the ring is an optimization, never an
// approximation.
const (
	iqRingBits = 16
	iqRingSize = 1 << iqRingBits
	iqRingMask = iqRingSize - 1
)

// iqRing tracks issue-queue departure times as a calendar queue: a ring
// of per-cycle departure counts indexed cycle&iqRingMask, with a
// two-level occupancy bitmap so min() and popUpTo() find the next
// occupied cycle in a handful of word scans instead of O(log n) heap
// sifts per op.
//
// Correctness hinges on the window invariant: every value resident in
// the ring lies in [low, low+iqRingSize), so a bucket index maps back to
// a unique cycle. low is the last popUpTo cycle plus one; the simulator
// always drains departures up to the current cycle before pushing (and
// pushes are ≥ cycle+1), so pushes never land below low, and a push at
// least iqRingSize ahead of low goes to the far heap instead of
// aliasing. cursor is a scan cache — no resident ring value is below it
// — advanced by scans and pulled back by pushes below it.
type iqRing struct {
	cnt    []uint32 // departures per cycle, indexed cycle&iqRingMask
	bm     []uint64 // bit b of word w set ⇔ cnt[w*64+b] > 0
	bm2    []uint64 // bit b of word w set ⇔ bm[w*64+b] != 0
	total  int      // entries resident in the ring (excludes far)
	low    uint64   // window base: resident values ∈ [low, low+iqRingSize)
	cursor uint64   // scan lower bound: no resident value < cursor
	far    minHeap  // exact overflow for values ≥ low+iqRingSize
}

func newIQRing() iqRing {
	return iqRing{
		cnt: make([]uint32, iqRingSize),
		bm:  make([]uint64, iqRingSize/64),
		bm2: make([]uint64, iqRingSize/64/64),
		far: newMinHeap(16),
	}
}

func (q *iqRing) len() int { return q.total + q.far.len() }

// push inserts departure time v. The caller guarantees v ≥ low (the
// simulator pushes only values above the cycle it last drained to).
func (q *iqRing) push(v uint64) {
	if v-q.low >= iqRingSize {
		q.far.push(v)
		return
	}
	i := v & iqRingMask
	if q.cnt[i] == 0 {
		q.bm[i>>6] |= 1 << (i & 63)
		q.bm2[i>>12] |= 1 << ((i >> 6) & 63)
	}
	q.cnt[i]++
	q.total++
	if q.total == 1 || v < q.cursor {
		q.cursor = v
	}
}

// nextOccupied returns the smallest resident value ≥ from. It must only
// be called with total > 0 and from ≤ the smallest resident value.
func (q *iqRing) nextOccupied(from uint64) uint64 {
	i := from & iqRingMask
	if word := q.bm[i>>6] >> (i & 63); word != 0 {
		return from + uint64(bits.TrailingZeros64(word))
	}
	// Jump to the next nonempty 64-bucket word — strictly after from's —
	// via the summary bitmap, wrapping cyclically at most once.
	wi := i >> 6
	sw := wi >> 6
	sword := q.bm2[sw] &^ (^uint64(0) >> (63 - wi&63))
	for k := uint64(1); sword == 0; k++ {
		sw = (wi>>6 + k) & uint64(len(q.bm2)-1)
		sword = q.bm2[sw]
	}
	w2 := sw<<6 + uint64(bits.TrailingZeros64(sword))
	b2 := w2<<6 + uint64(bits.TrailingZeros64(q.bm[w2]))
	// The window invariant makes the cyclic bucket distance from `from`
	// the true cycle distance.
	return from + ((b2 - i) & iqRingMask)
}

// min returns the earliest departure time. Must only be called when
// len() > 0.
func (q *iqRing) min() uint64 {
	m := ^uint64(0)
	if q.total > 0 {
		m = q.nextOccupied(q.cursor)
		q.cursor = m
	}
	if q.far.len() > 0 && q.far.a[0] < m {
		m = q.far.a[0]
	}
	return m
}

// popUpTo removes all entries with value ≤ cycle (ops that have issued)
// and advances the window base to cycle+1.
func (q *iqRing) popUpTo(cycle uint64) {
	q.far.popUpTo(cycle)
	for q.total > 0 {
		v := q.nextOccupied(q.cursor)
		q.cursor = v
		if v > cycle {
			break
		}
		i := v & iqRingMask
		q.total -= int(q.cnt[i])
		q.cnt[i] = 0
		q.bm[i>>6] &^= 1 << (i & 63)
		if q.bm[i>>6] == 0 {
			q.bm2[i>>12] &^= 1 << ((i >> 6) & 63)
		}
		q.cursor = v + 1
	}
	if cycle+1 > q.low {
		q.low = cycle + 1
	}
	if q.cursor < q.low {
		q.cursor = q.low
	}
}

// reset empties the ring. Only occupied buckets can hold nonzero
// counts, so it walks the bitmaps instead of clearing the whole array.
func (q *iqRing) reset() {
	for sw, sword := range q.bm2 {
		for ; sword != 0; sword &= sword - 1 {
			w := sw<<6 + bits.TrailingZeros64(sword)
			for word := q.bm[w]; word != 0; word &= word - 1 {
				q.cnt[w<<6+bits.TrailingZeros64(word)] = 0
			}
			q.bm[w] = 0
		}
		q.bm2[sw] = 0
	}
	q.total = 0
	q.low = 0
	q.cursor = 0
	q.far.a = q.far.a[:0]
}

// minHeap is a binary min-heap of uint64 (issue-queue departure times).
type minHeap struct {
	a []uint64
}

func newMinHeap(capHint int) minHeap {
	return minHeap{a: make([]uint64, 0, capHint)}
}

func (h *minHeap) len() int    { return len(h.a) }
func (h *minHeap) min() uint64 { return h.a[0] }

func (h *minHeap) push(v uint64) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *minHeap) pop() uint64 {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l] < h.a[small] {
			small = l
		}
		if r < last && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return v
}

// popUpTo removes all entries with value <= cycle (ops that have issued).
func (h *minHeap) popUpTo(cycle uint64) {
	for len(h.a) > 0 && h.a[0] <= cycle {
		h.pop()
	}
}
