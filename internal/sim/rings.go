package sim

// Ring geometry for the issue-bandwidth tracker. The horizon must exceed
// the largest lead of any op's issue time over the dispatch cycle, which
// is bounded by the window draining serially through worst-case latencies
// (ROB × (memLat + TLB walk) ≈ 60K cycles on the Pentium 4 config).
const (
	issueRingBits = 18
	issueRingSize = 1 << issueRingBits
	issueRingMask = issueRingSize - 1
)

// Per-cycle issue counts are packed into the low bits of the ring word,
// so the machine's issue width must fit in issueCntMask (sim.New
// enforces this).
const (
	issueCntBits = 6
	issueCntMask = (1 << issueCntBits) - 1
)

// Completion ring: maps recent canonical sequence numbers to completion
// times. Dependences reach at most 256 µops back (the generator clamps
// them), far less than the ring size.
const (
	seqRingBits = 10
	seqRingSize = 1 << seqRingBits
	seqRingMask = seqRingSize - 1
)

// issueRing counts issues per future cycle so dispatch can find the
// first cycle with spare issue bandwidth. Each ring word packs the
// owning cycle and that cycle's issue count as cycle<<issueCntBits|count
// — one load/store per probe instead of separate tag and count arrays.
// Ring slots are lazily re-tagged as the cycle horizon advances; reset
// words are all-ones, a tag no reachable cycle can have (it would need
// cycle ≥ 2^58).
type issueRing struct {
	w []uint64
}

func newIssueRing() issueRing {
	return issueRing{w: make([]uint64, issueRingSize)}
}

func (r *issueRing) reset() {
	for i := range r.w {
		r.w[i] = ^uint64(0)
	}
}

// findSlot returns the first cycle ≥ t with spare issue bandwidth and
// books one issue there. width must be in [1, issueCntMask].
func (r *issueRing) findSlot(t uint64, width int) uint64 {
	for {
		i := t & issueRingMask
		w := r.w[i]
		if w>>issueCntBits != t {
			// Slot belongs to a long-past cycle: claim it for t.
			r.w[i] = t<<issueCntBits | 1
			return t
		}
		if int(w&issueCntMask) < width {
			r.w[i] = w + 1
			return t
		}
		t++
	}
}

// seqRing maps recent canonical sequence numbers to completion times.
// The tag stores seq+1 so the zero value means empty; a lookup past the
// ring horizon (or before the producer dispatched) reports 0, i.e.
// completed in the distant past.
type seqRing struct {
	tag [seqRingSize]uint64
	at  [seqRingSize]uint64
}

func (r *seqRing) reset() {
	clear(r.tag[:])
}

func (r *seqRing) lookup(seq uint64) uint64 {
	i := seq & seqRingMask
	if r.tag[i] == seq+1 {
		return r.at[i]
	}
	return 0
}

func (r *seqRing) store(seq, t uint64) {
	i := seq & seqRingMask
	r.tag[i] = seq + 1
	r.at[i] = t
}

// mshrHeap tracks the free times of the machine's MSHRs as a binary
// min-heap, so a memory trip finds the least-soon-free MSHR at the root
// in O(1) and commits its new free time in O(log MSHRs) — replacing the
// linear least-soon-free scan per trip. The occupancy pattern only ever
// replaces the minimum with a later time (the trip starts no earlier
// than the MSHR frees), so a single sift-down maintains the invariant.
type mshrHeap struct {
	a []uint64
}

func (h *mshrHeap) reset() {
	for i := range h.a {
		h.a[i] = 0
	}
}

// min returns the earliest free time across all MSHRs.
func (h *mshrHeap) min() uint64 { return h.a[0] }

// replaceMin overwrites the earliest free time with v (which must be
// ≥ the current minimum) and restores heap order.
func (h *mshrHeap) replaceMin(v uint64) {
	a := h.a
	n := len(a)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		sv := v
		if l < n && a[l] < sv {
			small, sv = l, a[l]
		}
		if r < n && a[r] < sv {
			small = r
		}
		if small == i {
			break
		}
		a[i] = a[small]
		i = small
	}
	a[i] = v
}

// minHeap is a binary min-heap of uint64 (issue-queue departure times).
type minHeap struct {
	a []uint64
}

func newMinHeap(capHint int) minHeap {
	return minHeap{a: make([]uint64, 0, capHint)}
}

func (h *minHeap) len() int    { return len(h.a) }
func (h *minHeap) min() uint64 { return h.a[0] }

func (h *minHeap) push(v uint64) {
	h.a = append(h.a, v)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.a[p] <= h.a[i] {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *minHeap) pop() uint64 {
	v := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.a[l] < h.a[small] {
			small = l
		}
		if r < last && h.a[r] < h.a[small] {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return v
}

// popUpTo removes all entries with value <= cycle (ops that have issued).
func (h *minHeap) popUpTo(cycle uint64) {
	for len(h.a) > 0 && h.a[0] <= cycle {
		h.pop()
	}
}
