package perfctr

import (
	"math"
	"strings"
	"testing"
)

func sample() Counters {
	return Counters{
		Cycles: 2000, Uops: 1000, Instructions: 800,
		Branches: 100, BranchMispredicts: 5,
		L1IMisses: 20, L2IMisses: 4, L3IMisses: 1, LLCIMisses: 1, ITLBMisses: 2,
		L1DLoadMisses: 50, L1DLoadL2Hits: 40, LLCDLoadMisses: 6, DTLBMisses: 3,
		FPOps: 150,
	}
}

func TestValidateOK(t *testing.T) {
	c := sample()
	if err := c.Validate(); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesInconsistencies(t *testing.T) {
	breakers := []func(*Counters){
		func(c *Counters) { c.Cycles = 0 },
		func(c *Counters) { c.Uops = 0 },
		func(c *Counters) { c.Instructions = 0 },
		func(c *Counters) { c.BranchMispredicts = c.Branches + 1 },
		func(c *Counters) { c.L1DLoadL2Hits = c.L1DLoadMisses + 1 },
		func(c *Counters) { c.LLCDLoadMisses = c.L1DLoadMisses + 1 },
	}
	for i, b := range breakers {
		c := sample()
		b(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("breaker %d: expected validation error", i)
		}
	}
}

func TestRatios(t *testing.T) {
	c := sample()
	if got := c.CPI(); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("CPI %v", got)
	}
	if got := c.CPIPerInstr(); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("CPI/instr %v", got)
	}
	if got := c.PerUop(c.BranchMispredicts); math.Abs(got-0.005) > 1e-12 {
		t.Errorf("PerUop %v", got)
	}
	if got := c.MPKI(c.BranchMispredicts); math.Abs(got-6.25) > 1e-12 {
		t.Errorf("MPKI %v", got)
	}
	var zero Counters
	if zero.CPI() != 0 || zero.CPIPerInstr() != 0 || zero.PerUop(5) != 0 || zero.MPKI(5) != 0 {
		t.Error("zero counters should yield zero ratios, not NaN")
	}
}

func TestAdd(t *testing.T) {
	a := sample()
	b := sample()
	a.Add(&b)
	if a.Cycles != 4000 || a.Uops != 2000 || a.FPOps != 300 || a.DTLBMisses != 6 {
		t.Errorf("Add result wrong: %+v", a)
	}
	// Original b untouched.
	if b.Cycles != 2000 {
		t.Error("Add modified its argument")
	}
}

func TestString(t *testing.T) {
	c := sample()
	s := c.String()
	for _, want := range []string{"cycles=2000", "CPI=2.000", "brMiss=5", "fp=150"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}
