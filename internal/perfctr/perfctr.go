// Package perfctr defines the hardware-performance-counter interface of
// the simulated machines — the exact counter list Section 4 of the paper
// collects with perfex/perfmon on real hardware: cycles, committed µops
// and macro-instructions, branch mispredictions, cache misses per level
// and side, TLB misses, and floating-point operation counts.
//
// The mechanistic-empirical model consumes only these counters plus the
// Table 2 machine parameters; it never sees simulator internals. That
// boundary is what makes the reproduction faithful: the model must infer
// branch resolution time, MLP and resource stalls from the same limited
// information it would have on real silicon.
package perfctr

import "fmt"

// Counters is one workload's counter readout on one machine.
type Counters struct {
	Cycles       uint64 // total execution cycles
	Uops         uint64 // committed micro-operations (after fusion) — the model's N
	Instructions uint64 // committed macro-instructions

	BranchMispredicts uint64
	Branches          uint64 // committed conditional branches

	L1IMisses      uint64 // L1 I-cache misses (satisfied anywhere below)
	L2IMisses      uint64 // I-side misses at L2 (go to L3 or memory)
	L3IMisses      uint64 // I-side misses at L3 (3-level machines only)
	LLCIMisses     uint64 // I-side trips to main memory
	ITLBMisses     uint64
	L1DLoadMisses  uint64 // load misses in L1D
	L1DLoadL2Hits  uint64 // load misses in L1D that hit in L2 (model's mpµ_DL1)
	LLCDLoadMisses uint64 // D-side load trips to main memory (model's m_L2D$)
	DTLBMisses     uint64

	FPOps uint64 // committed floating-point µops
}

// Validate sanity-checks counter consistency.
func (c *Counters) Validate() error {
	if c.Cycles == 0 || c.Uops == 0 {
		return fmt.Errorf("perfctr: empty measurement (cycles=%d uops=%d)", c.Cycles, c.Uops)
	}
	if c.Instructions == 0 {
		return fmt.Errorf("perfctr: no instructions committed")
	}
	if c.BranchMispredicts > c.Branches {
		return fmt.Errorf("perfctr: more mispredictions (%d) than branches (%d)",
			c.BranchMispredicts, c.Branches)
	}
	if c.L1DLoadL2Hits > c.L1DLoadMisses {
		return fmt.Errorf("perfctr: more L2 load hits (%d) than L1 load misses (%d)",
			c.L1DLoadL2Hits, c.L1DLoadMisses)
	}
	if c.LLCDLoadMisses > c.L1DLoadMisses {
		return fmt.Errorf("perfctr: more LLC load misses (%d) than L1 load misses (%d)",
			c.LLCDLoadMisses, c.L1DLoadMisses)
	}
	return nil
}

// CPI returns measured cycles per µop — the model's target value.
func (c *Counters) CPI() float64 {
	if c.Uops == 0 {
		return 0
	}
	return float64(c.Cycles) / float64(c.Uops)
}

// CPIPerInstr returns cycles per macro-instruction (used by the
// cross-machine delta stacks, where µop counts differ due to fusion).
func (c *Counters) CPIPerInstr() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.Cycles) / float64(c.Instructions)
}

// PerUop returns v normalized per committed µop (the model's "per
// micro-operation" rates such as mpµ_br).
func (c *Counters) PerUop(v uint64) float64 {
	if c.Uops == 0 {
		return 0
	}
	return float64(v) / float64(c.Uops)
}

// MPKI returns v per thousand macro-instructions (the unit the paper uses
// when discussing branch predictor quality across machines).
func (c *Counters) MPKI(v uint64) float64 {
	if c.Instructions == 0 {
		return 0
	}
	return 1000 * float64(v) / float64(c.Instructions)
}

// Add accumulates other into c (for aggregating suite totals).
func (c *Counters) Add(other *Counters) {
	c.Cycles += other.Cycles
	c.Uops += other.Uops
	c.Instructions += other.Instructions
	c.BranchMispredicts += other.BranchMispredicts
	c.Branches += other.Branches
	c.L1IMisses += other.L1IMisses
	c.L2IMisses += other.L2IMisses
	c.L3IMisses += other.L3IMisses
	c.LLCIMisses += other.LLCIMisses
	c.ITLBMisses += other.ITLBMisses
	c.L1DLoadMisses += other.L1DLoadMisses
	c.L1DLoadL2Hits += other.L1DLoadL2Hits
	c.LLCDLoadMisses += other.LLCDLoadMisses
	c.DTLBMisses += other.DTLBMisses
	c.FPOps += other.FPOps
}

// String renders the counters on one line for logs.
func (c *Counters) String() string {
	return fmt.Sprintf("cycles=%d uops=%d instr=%d CPI=%.3f brMiss=%d L1I=%d LLCI=%d ITLB=%d L1DLd=%d LLCDLd=%d DTLB=%d fp=%d",
		c.Cycles, c.Uops, c.Instructions, c.CPI(), c.BranchMispredicts, c.L1IMisses,
		c.LLCIMisses, c.ITLBMisses, c.L1DLoadMisses, c.LLCDLoadMisses, c.DTLBMisses, c.FPOps)
}
