// Package core implements the paper's primary contribution: the
// mechanistic-empirical processor performance model of Equations (1)–(6),
// its inference by non-linear regression on hardware performance
// counters, CPI-stack construction, and CPI-delta stacks for comparing
// machine generations.
//
// The model predicts per-µop CPI as
//
//	CPI = 1/D + mpµ_L1I·c_L2 [+ mpµ_L2I·c_L3] + mpµ_LLCI·c_mem
//	    + mpµ_ITLB·c_TLB
//	    + mpµ_br·(c_br + c_fe)
//	    + mpµ_LLCD·c_mem/MLP + mpµ_DTLB·c_TLB/MLP
//	    + cpi_stall                                  (Eq. 1, per µop)
//
// where c_br (Eq. 2), MLP (Eq. 3) and cpi_stall (Eqs. 4–6) are structured
// sub-models with ten free parameters b1..b10 fitted by minimizing the
// sum of relative squared errors of predicted vs. measured CPI.
//
// Note on Eq. 2: the paper prints max(128, 1/mpµ_br), but its own prose
// ("we cap this factor … the dependence path to the branch is limited by
// the size of the instruction window") requires a ceiling, so this
// implementation uses min(128, 1/mpµ_br). With the printed max the factor
// would grow without bound exactly in the case the text says it must not.
package core

import (
	"fmt"

	"repro/internal/perfctr"
)

// Features are the per-workload model inputs: per-µop miss-event rates
// and the floating-point fraction, all derived from hardware performance
// counters (Figure 1 of the paper). The same vector feeds the
// mechanistic-empirical model, the linear-regression baseline, and the
// ANN baseline ("the exact same input", Section 4).
type Features struct {
	MpuL1I  float64 // L1 I-cache misses per µop (satisfied in L2)
	MpuL2I  float64 // L2 I-side misses per µop (satisfied in L3; 3-level machines)
	MpuLLCI float64 // I-side trips to memory per µop
	MpuITLB float64 // I-TLB misses per µop

	MpuBr float64 // branch mispredictions per µop

	MpuDL1  float64 // L1D load misses that hit in L2, per µop (Eq. 2/5 input)
	MpuLLCD float64 // last-level-cache load misses per µop (Eq. 1/3 input)
	MpuDTLB float64 // D-TLB misses per µop

	FP float64 // floating-point fraction of committed µops
}

// FeaturesFrom derives the model inputs from a counter readout.
//
// The I-side per-level rates are exclusive: an instruction fetch that
// misses all the way to memory is charged to MpuLLCI only, matching the
// simulator's (and real hardware's) non-additive latencies.
func FeaturesFrom(c *perfctr.Counters) (Features, error) {
	if err := c.Validate(); err != nil {
		return Features{}, err
	}
	n := float64(c.Uops)
	l1iToL2 := float64(c.L1IMisses) - float64(c.L2IMisses)
	if l1iToL2 < 0 {
		return Features{}, fmt.Errorf("core: inconsistent I-side counters (L1I=%d < L2I=%d)",
			c.L1IMisses, c.L2IMisses)
	}
	l2iToL3 := float64(c.L2IMisses) - float64(c.L3IMisses) - func() float64 {
		// On 2-level machines L3IMisses is 0 and every L2 I-miss goes to
		// memory; the exclusive L3 tier is then empty.
		if c.L3IMisses == 0 && c.LLCIMisses == c.L2IMisses {
			return float64(c.L2IMisses)
		}
		return 0
	}()
	if l2iToL3 < 0 {
		l2iToL3 = 0
	}
	return Features{
		MpuL1I:  l1iToL2 / n,
		MpuL2I:  l2iToL3 / n,
		MpuLLCI: float64(c.LLCIMisses) / n,
		MpuITLB: float64(c.ITLBMisses) / n,
		MpuBr:   float64(c.BranchMispredicts) / n,
		MpuDL1:  float64(c.L1DLoadL2Hits) / n,
		MpuLLCD: float64(c.LLCDLoadMisses) / n,
		MpuDTLB: float64(c.DTLBMisses) / n,
		FP:      float64(c.FPOps) / n,
	}, nil
}

// Vector flattens the features for the empirical baselines (linear
// regression and the ANN), in a fixed documented order.
func (f Features) Vector() []float64 {
	return []float64{
		f.MpuL1I, f.MpuL2I, f.MpuLLCI, f.MpuITLB,
		f.MpuBr, f.MpuDL1, f.MpuLLCD, f.MpuDTLB, f.FP,
	}
}

// FeatureNames labels Vector's columns.
func FeatureNames() []string {
	return []string{
		"mpu_l1i", "mpu_l2i", "mpu_llci", "mpu_itlb",
		"mpu_br", "mpu_dl1", "mpu_llcd", "mpu_dtlb", "fp",
	}
}

// Observation pairs a workload's features with its measured CPI — one
// training/evaluation sample.
type Observation struct {
	Name        string
	Feat        Features
	MeasuredCPI float64
}

// ObservationFrom builds an Observation directly from counters.
func ObservationFrom(name string, c *perfctr.Counters) (Observation, error) {
	f, err := FeaturesFrom(c)
	if err != nil {
		return Observation{}, err
	}
	return Observation{Name: name, Feat: f, MeasuredCPI: c.CPI()}, nil
}
