package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/uarch"
)

// demoModel returns a model with hand-set parameters so the examples are
// deterministic without running a fit.
func demoModel() *core.Model {
	return &core.Model{
		Machine: uarch.CoreTwo().Params(),
		P: core.Params{
			B1: 1.2, B2: 0.5, B3: 1.0, B4: 20,
			B5: 6, B6: 0.25, B7: 0.05,
			B8: 0.08, B9: 1.5, B10: 30,
		},
	}
}

// ExampleModel_PredictCPI evaluates Equation 1 on a counter-derived
// feature vector.
func ExampleModel_PredictCPI() {
	m := demoModel()
	f := core.Features{
		MpuL1I: 0.002, MpuLLCI: 0.0001, MpuITLB: 0.00005,
		MpuBr: 0.004, MpuDL1: 0.01, MpuLLCD: 0.001, MpuDTLB: 0.0002,
		FP: 0.1,
	}
	fmt.Printf("CPI = %.4f\n", m.PredictCPI(f))
	// Output:
	// CPI = 0.6125
}

// ExampleModel_Stack shows the paper's headline deliverable: a CPI stack
// built from counters alone. Components sum to the predicted CPI.
func ExampleModel_Stack() {
	m := demoModel()
	f := core.Features{MpuBr: 0.004, MpuLLCD: 0.001, MpuDL1: 0.01, MpuDTLB: 0.0002, FP: 0.1}
	st := m.Stack(f)
	fmt.Printf("base   %.4f\n", st.Cycles[sim.CompBase])
	fmt.Printf("branch %.4f\n", st.Cycles[sim.CompBranch])
	fmt.Printf("memory %.4f\n", st.Cycles[sim.CompLLCLoad])
	fmt.Printf("total  %.4f (= PredictCPI %.4f)\n", st.Total(), m.PredictCPI(f))
	// Output:
	// base   0.2500
	// branch 0.1277
	// memory 0.1690
	// total  0.5743 (= PredictCPI 0.5743)
}

// ExampleModel_BranchResolution evaluates Equation 2: the inferred
// branch resolution time, capped at the instruction-window scale.
func ExampleModel_BranchResolution() {
	m := demoModel()
	frequent := core.Features{MpuBr: 0.02} // interval 50 < window
	rare := core.Features{MpuBr: 0.001}    // interval capped at 128
	fmt.Printf("frequent mispredictions: %.2f cycles\n", m.BranchResolution(frequent))
	fmt.Printf("rare mispredictions:     %.2f cycles\n", m.BranchResolution(rare))
	// Output:
	// frequent mispredictions: 8.49 cycles
	// rare mispredictions:     13.58 cycles
}

// ExampleModel_MLP evaluates Equation 3: more outstanding misses mean
// more memory-level parallelism, so a lower effective penalty per miss.
func ExampleModel_MLP() {
	m := demoModel()
	few := core.Features{MpuLLCD: 0.0001, MpuDTLB: 0.0005}
	many := core.Features{MpuLLCD: 0.01, MpuDTLB: 0.0005}
	fmt.Printf("few misses:  MLP %.2f\n", m.MLP(few))
	fmt.Printf("many misses: MLP %.2f\n", m.MLP(many))
	// Output:
	// few misses:  MLP 1.00
	// many misses: MLP 1.30
}
