package core

import (
	"fmt"

	"repro/internal/perfctr"
	"repro/internal/sim"
)

// CPI-delta stacks (Section 6 / Figure 6): given two machine generations
// that ran the same workloads, the fitted models break the per-instruction
// CPI difference into component deltas, and each component into the
// factors the model computes it from. Deltas are new − old, normalized
// per macro-instruction (not per µop, so that µop fusion is visible);
// negative values are improvements.

// MachineRun is one workload's measurement on one machine.
type MachineRun struct {
	Name string // workload name (must match across machines)
	Ctr  perfctr.Counters
}

// OverallDelta is the top-row decomposition: per-instruction CPI delta by
// source. Width and Fusion together are the base-component delta; ICache
// includes the I-TLB; Memory is D-side (LLC loads + D-TLB); Other is the
// resource-stall component.
type OverallDelta struct {
	Width  float64 // dispatch-width change applied to the old µop count
	Fusion float64 // µop-count change (micro-/macro-fusion) at the new width
	ICache float64
	Memory float64
	Branch float64
	Other  float64
}

// Total sums the overall components.
func (d OverallDelta) Total() float64 {
	return d.Width + d.Fusion + d.ICache + d.Memory + d.Branch + d.Other
}

// BranchDelta is the middle-row decomposition of the branch component:
// mispredictions-per-instruction, resolution time, and front-end depth,
// attributed by sequential substitution old→new (in that order).
type BranchDelta struct {
	Mispredictions float64
	Resolution     float64
	FrontEnd       float64
}

// Total sums the branch factors.
func (d BranchDelta) Total() float64 { return d.Mispredictions + d.Resolution + d.FrontEnd }

// LLCDelta is the bottom-row decomposition of the last-level-cache load
// component: miss count, memory latency, and MLP, attributed by
// sequential substitution old→new (in that order).
type LLCDelta struct {
	Misses  float64
	Latency float64
	MLP     float64
}

// Total sums the LLC factors.
func (d LLCDelta) Total() float64 { return d.Misses + d.Latency + d.MLP }

// DeltaStacks bundles all three decompositions for one machine pair,
// averaged over a workload set.
type DeltaStacks struct {
	OldName, NewName string
	Workloads        int
	Overall          OverallDelta
	Branch           BranchDelta
	LLC              LLCDelta
	// OldCPI and NewCPI are the mean per-instruction CPIs (for context).
	OldCPI, NewCPI float64
}

// ComputeDelta builds CPI-delta stacks from two fitted models and the
// matching per-workload runs. Runs are matched by workload name; both
// slices must cover the same workload set.
func ComputeDelta(oldName string, oldModel *Model, oldRuns []MachineRun,
	newName string, newModel *Model, newRuns []MachineRun) (*DeltaStacks, error) {

	if len(oldRuns) == 0 || len(oldRuns) != len(newRuns) {
		return nil, fmt.Errorf("core: delta needs matching run sets (%d vs %d)", len(oldRuns), len(newRuns))
	}
	newByName := make(map[string]*MachineRun, len(newRuns))
	for i := range newRuns {
		newByName[newRuns[i].Name] = &newRuns[i]
	}

	out := &DeltaStacks{OldName: oldName, NewName: newName, Workloads: len(oldRuns)}
	for i := range oldRuns {
		or := &oldRuns[i]
		nr, ok := newByName[or.Name]
		if !ok {
			return nil, fmt.Errorf("core: workload %q missing from %s runs", or.Name, newName)
		}
		if err := accumulateDelta(out, oldModel, or, newModel, nr); err != nil {
			return nil, fmt.Errorf("core: workload %q: %w", or.Name, err)
		}
	}
	n := float64(len(oldRuns))
	out.Overall.Width /= n
	out.Overall.Fusion /= n
	out.Overall.ICache /= n
	out.Overall.Memory /= n
	out.Overall.Branch /= n
	out.Overall.Other /= n
	out.Branch.Mispredictions /= n
	out.Branch.Resolution /= n
	out.Branch.FrontEnd /= n
	out.LLC.Misses /= n
	out.LLC.Latency /= n
	out.LLC.MLP /= n
	out.OldCPI /= n
	out.NewCPI /= n
	return out, nil
}

func accumulateDelta(out *DeltaStacks, oldModel *Model, or *MachineRun,
	newModel *Model, nr *MachineRun) error {

	of, err := FeaturesFrom(&or.Ctr)
	if err != nil {
		return err
	}
	nf, err := FeaturesFrom(&nr.Ctr)
	if err != nil {
		return err
	}
	// µops per instruction on each machine (fusion shrinks this).
	oUPI := float64(or.Ctr.Uops) / float64(or.Ctr.Instructions)
	nUPI := float64(nr.Ctr.Uops) / float64(nr.Ctr.Instructions)
	oD := float64(oldModel.Machine.DispatchWidth)
	nD := float64(newModel.Machine.DispatchWidth)

	// Per-µop model stacks, converted to per-instruction.
	oStack := oldModel.Stack(of)
	nStack := newModel.Stack(nf)
	perInstr := func(s sim.Stack, upi float64, comps ...sim.Component) float64 {
		var v float64
		for _, c := range comps {
			v += s.Cycles[c]
		}
		return v * upi
	}

	// Base split: width effect first (at the old µop count), then fusion.
	out.Overall.Width += oUPI*(1/nD) - oUPI*(1/oD)
	out.Overall.Fusion += (nUPI - oUPI) * (1 / nD)
	out.Overall.ICache += perInstr(nStack, nUPI, sim.CompICacheL2, sim.CompICacheL3, sim.CompICacheMem, sim.CompITLB) -
		perInstr(oStack, oUPI, sim.CompICacheL2, sim.CompICacheL3, sim.CompICacheMem, sim.CompITLB)
	out.Overall.Memory += perInstr(nStack, nUPI, sim.CompLLCLoad, sim.CompDTLB) -
		perInstr(oStack, oUPI, sim.CompLLCLoad, sim.CompDTLB)
	out.Overall.Branch += perInstr(nStack, nUPI, sim.CompBranch) -
		perInstr(oStack, oUPI, sim.CompBranch)
	out.Overall.Other += perInstr(nStack, nUPI, sim.CompResource) -
		perInstr(oStack, oUPI, sim.CompResource)

	// Branch factor decomposition, per instruction:
	// branchCPI = mpi · (c_br + c_fe).
	oMPI := float64(or.Ctr.BranchMispredicts) / float64(or.Ctr.Instructions)
	nMPI := float64(nr.Ctr.BranchMispredicts) / float64(nr.Ctr.Instructions)
	oCbr := oldModel.BranchResolution(of)
	nCbr := newModel.BranchResolution(nf)
	oCfe := float64(oldModel.Machine.FrontEndDepth)
	nCfe := float64(newModel.Machine.FrontEndDepth)
	out.Branch.Mispredictions += (nMPI - oMPI) * (oCbr + oCfe)
	out.Branch.Resolution += nMPI * (nCbr - oCbr)
	out.Branch.FrontEnd += nMPI * (nCfe - oCfe)

	// LLC factor decomposition, per instruction:
	// llcCPI = mpi_llc · c_mem / MLP.
	oMiss := float64(or.Ctr.LLCDLoadMisses) / float64(or.Ctr.Instructions)
	nMiss := float64(nr.Ctr.LLCDLoadMisses) / float64(nr.Ctr.Instructions)
	oLat := float64(oldModel.Machine.MemLat)
	nLat := float64(newModel.Machine.MemLat)
	oMLP := oldModel.MLP(of)
	nMLP := newModel.MLP(nf)
	out.LLC.Misses += (nMiss - oMiss) * oLat / oMLP
	out.LLC.Latency += nMiss * (nLat - oLat) / oMLP
	out.LLC.MLP += nMiss * nLat * (1/nMLP - 1/oMLP)

	out.OldCPI += or.Ctr.CPIPerInstr()
	out.NewCPI += nr.Ctr.CPIPerInstr()
	return nil
}
