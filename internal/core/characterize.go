package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Workload characterization (Section 6 lists it among the CPI stack's
// applications): classify each workload by the component that dominates
// its non-base CPI, and summarize a whole suite as a mean CPI stack.

// Characterization classifies one workload by its model CPI stack.
type Characterization struct {
	Name          string
	Stack         sim.Stack     // per-µop model stack
	PredictedCPI  float64       // stack total
	Dominant      sim.Component // largest non-base component
	DominantShare float64       // its share of total CPI
}

// Characterize builds a per-workload classification from a fitted model,
// sorted by descending dominant-component share (most bottlenecked
// first).
func Characterize(m *Model, obs []Observation) []Characterization {
	out := make([]Characterization, 0, len(obs))
	for _, o := range obs {
		st := m.Stack(o.Feat)
		c := Characterization{
			Name:         o.Name,
			Stack:        st,
			PredictedCPI: st.Total(),
		}
		best := sim.CompBase
		var bestVal float64
		for _, comp := range sim.Components() {
			if comp == sim.CompBase {
				continue
			}
			if st.Cycles[comp] > bestVal {
				bestVal = st.Cycles[comp]
				best = comp
			}
		}
		c.Dominant = best
		if t := st.Total(); t > 0 {
			c.DominantShare = bestVal / t
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DominantShare != out[j].DominantShare {
			return out[i].DominantShare > out[j].DominantShare
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SuiteProfile returns the mean per-µop CPI stack over the observations —
// the suite's aggregate bottleneck profile.
func SuiteProfile(m *Model, obs []Observation) sim.Stack {
	var mean sim.Stack
	if len(obs) == 0 {
		return mean
	}
	for _, o := range obs {
		st := m.Stack(o.Feat)
		for i := range mean.Cycles {
			mean.Cycles[i] += st.Cycles[i]
		}
	}
	for i := range mean.Cycles {
		mean.Cycles[i] /= float64(len(obs))
	}
	return mean
}

// RenderCharacterization formats the classification as a table grouped by
// dominant component.
func RenderCharacterization(chars []Characterization) string {
	var b strings.Builder
	byComp := map[sim.Component][]Characterization{}
	for _, c := range chars {
		byComp[c.Dominant] = append(byComp[c.Dominant], c)
	}
	fmt.Fprintf(&b, "workload characterization (%d workloads, by dominant CPI component):\n", len(chars))
	for _, comp := range sim.Components() {
		group := byComp[comp]
		if len(group) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s-bound (%d):\n", comp, len(group))
		for _, c := range group {
			fmt.Fprintf(&b, "  %-14s CPI %6.3f  %4.1f%% %s\n",
				c.Name, c.PredictedCPI, 100*c.DominantShare, c.Dominant)
		}
	}
	return b.String()
}
