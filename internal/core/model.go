package core

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/uarch"
)

// WindowCap is the instruction-window ceiling on the interval-length
// factor in Eq. 2 (the paper uses 128, the typical ROB scale).
const WindowCap = 128

// Params are the ten regression parameters b1..b10 of Equations 2, 3, 5.
type Params struct {
	B1  float64 // branch resolution: scale
	B2  float64 // branch resolution: interval-length exponent (power law)
	B3  float64 // branch resolution: FP-fraction factor
	B4  float64 // branch resolution: L1D-miss factor
	B5  float64 // MLP: scale
	B6  float64 // MLP: LLC-miss-rate exponent (power law)
	B7  float64 // MLP: D-TLB-miss-rate exponent (power law)
	B8  float64 // resource stall: scale (per-µop cycles)
	B9  float64 // resource stall: FP-fraction factor
	B10 float64 // resource stall: L1D-miss factor
}

func (p Params) slice() []float64 {
	return []float64{p.B1, p.B2, p.B3, p.B4, p.B5, p.B6, p.B7, p.B8, p.B9, p.B10}
}

// Slice returns the parameters in b1..b10 order, matching ParamNames.
// Callers that aggregate coefficients across fits (e.g. fit-stability
// over seeds) index the two in lockstep.
func (p Params) Slice() []float64 { return p.slice() }

// ParamNames returns the wire-stable names of the ten regression
// parameters, in the same order Slice reports their values.
func ParamNames() []string {
	return []string{"b1", "b2", "b3", "b4", "b5", "b6", "b7", "b8", "b9", "b10"}
}

func paramsFromSlice(s []float64) Params {
	return Params{s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7], s[8], s[9]}
}

// Model is a fitted mechanistic-empirical performance model for one
// machine (and, implicitly, the workload population it was inferred
// from).
type Model struct {
	Machine uarch.ModelParams
	P       Params

	// ablation deactivates individual structural choices of Eqs. 2–4 for
	// the ablation studies; the zero value is the paper's full model.
	ablation ablation
}

// epsRate guards power laws against zero miss rates: a workload with no
// observed misses of a kind contributes a tiny, not infinite or zero,
// factor. (The paper does not discuss this corner; SPSS presumably
// handled it via its own parameter constraints.)
const epsRate = 1e-9

// BranchResolution evaluates Eq. 2: the predicted branch resolution time
// in cycles, a power law in the interval length (capped at the window
// size) with multiplicative FP and L1D-miss factors.
func (m *Model) BranchResolution(f Features) float64 {
	interval := WindowCap * 1.0
	if f.MpuBr > 1.0/WindowCap {
		interval = 1 / f.MpuBr
	} else if m.ablation.noWindowCap {
		interval = 1 / (f.MpuBr + epsRate)
	}
	if m.ablation.additiveBranch {
		// Ablated variant: additive instead of multiplicative factors
		// (the paper argues multiplication captures interactions — e.g.
		// L1D misses on an FP chain — with fewer parameters).
		return m.P.B1*math.Pow(interval, m.P.B2) + m.P.B3*f.FP + m.P.B4*f.MpuDL1
	}
	return m.P.B1 * math.Pow(interval, m.P.B2) *
		(1 + m.P.B3*f.FP) * (1 + m.P.B4*f.MpuDL1)
}

// MLP evaluates Eq. 3: the memory-level-parallelism correction factor, a
// power law in the LLC and D-TLB miss rates, clamped to at least 1 (a
// penalty cannot exceed the full memory latency).
func (m *Model) MLP(f Features) float64 {
	v := m.P.B5
	if !m.ablation.constantMLP {
		v *= math.Pow(f.MpuLLCD+epsRate, m.P.B6) *
			math.Pow(f.MpuDTLB+epsRate, m.P.B7)
	}
	if v < 1 {
		return 1
	}
	return v
}

// missCPI returns the total per-µop miss-event cycles (Eq. 6 normalized
// by N): every Eq. 1 term except base and resource stalls.
func (m *Model) missCPI(f Features) float64 {
	mc := &m.Machine
	mlp := m.MLP(f)
	cpi := f.MpuL1I * float64(mc.L2Lat)
	if mc.L3Lat > 0 {
		cpi += f.MpuL2I * float64(mc.L3Lat)
	}
	cpi += f.MpuLLCI * float64(mc.MemLat)
	cpi += f.MpuITLB * float64(mc.TLBLat)
	cpi += f.MpuBr * (m.BranchResolution(f) + float64(mc.FrontEndDepth))
	cpi += f.MpuLLCD * float64(mc.MemLat) / mlp
	cpi += f.MpuDTLB * float64(mc.TLBLat) / mlp
	return cpi
}

// ResourceStall evaluates Eqs. 4–6 per µop: the dispatch-stall cycles on
// a full ROB/issue queue, scaled down by the fraction of time already
// spent handling miss events.
func (m *Model) ResourceStall(f Features) float64 {
	cstall := m.P.B8 * (1 + m.P.B9*f.FP) * (1 + m.P.B10*f.MpuDL1) // Eq. 5 (per µop)
	if m.ablation.unscaledStall {
		return cstall
	}
	cmiss := m.missCPI(f) // Eq. 6 (per µop)
	base := 1 / float64(m.Machine.DispatchWidth)
	scale := 1 - cmiss/(base+cstall)
	if scale < 0 {
		scale = 0
	}
	return scale * cstall // Eq. 4
}

// PredictCPI evaluates Eq. 1 normalized per µop.
func (m *Model) PredictCPI(f Features) float64 {
	return 1/float64(m.Machine.DispatchWidth) + m.missCPI(f) + m.ResourceStall(f)
}

// PredictAll evaluates the model on each observation's features.
func (m *Model) PredictAll(obs []Observation) []float64 {
	out := make([]float64, len(obs))
	for i, o := range obs {
		out[i] = m.PredictCPI(o.Feat)
	}
	return out
}

// Stack returns the model's CPI stack for a workload — the paper's key
// deliverable: per-µop cycles attributed to each component, directly
// comparable to the simulator's ground-truth accounting (Figure 5). The
// components sum to PredictCPI.
func (m *Model) Stack(f Features) sim.Stack {
	mc := &m.Machine
	mlp := m.MLP(f)
	var s sim.Stack
	s.Cycles[sim.CompBase] = 1 / float64(mc.DispatchWidth)
	s.Cycles[sim.CompICacheL2] = f.MpuL1I * float64(mc.L2Lat)
	if mc.L3Lat > 0 {
		s.Cycles[sim.CompICacheL3] = f.MpuL2I * float64(mc.L3Lat)
	}
	s.Cycles[sim.CompICacheMem] = f.MpuLLCI * float64(mc.MemLat)
	s.Cycles[sim.CompITLB] = f.MpuITLB * float64(mc.TLBLat)
	s.Cycles[sim.CompBranch] = f.MpuBr * (m.BranchResolution(f) + float64(mc.FrontEndDepth))
	s.Cycles[sim.CompLLCLoad] = f.MpuLLCD * float64(mc.MemLat) / mlp
	s.Cycles[sim.CompDTLB] = f.MpuDTLB * float64(mc.TLBLat) / mlp
	s.Cycles[sim.CompResource] = m.ResourceStall(f)
	return s
}

// String summarizes the fitted parameters.
func (m *Model) String() string {
	p := m.P
	return fmt.Sprintf(
		"mecpi model (D=%d, cfe=%d, cL2=%d, cL3=%d, cmem=%d, cTLB=%d)\n"+
			"  branch: b1=%.4g b2=%.4g b3=%.4g b4=%.4g\n"+
			"  mlp:    b5=%.4g b6=%.4g b7=%.4g\n"+
			"  stall:  b8=%.4g b9=%.4g b10=%.4g",
		m.Machine.DispatchWidth, m.Machine.FrontEndDepth, m.Machine.L2Lat,
		m.Machine.L3Lat, m.Machine.MemLat, m.Machine.TLBLat,
		p.B1, p.B2, p.B3, p.B4, p.B5, p.B6, p.B7, p.B8, p.B9, p.B10)
}
