package core

import (
	"math"
	"testing"

	"repro/internal/perfctr"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/suites"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// testCounters is a consistent counter fixture for delta tests.
func testCounters() perfctr.Counters {
	return perfctr.Counters{
		Cycles: 2_000_000, Uops: 1_000_000, Instructions: 700_000,
		Branches: 120_000, BranchMispredicts: 4_000,
		L1IMisses: 8_000, L2IMisses: 500, LLCIMisses: 500, ITLBMisses: 200,
		L1DLoadMisses: 30_000, L1DLoadL2Hits: 26_000, LLCDLoadMisses: 2_500,
		DTLBMisses: 900, FPOps: 90_000,
	}
}

// syntheticObservations draws features from plausible ranges and labels
// them with a known ground-truth model (+ optional multiplicative noise).
func syntheticObservations(n int, seed uint64, noise float64) ([]Observation, *Model) {
	truth := &Model{Machine: testMachineParams(), P: testParams()}
	r := rng.New(seed)
	obs := make([]Observation, n)
	for i := range obs {
		f := Features{
			MpuL1I:  0.01 * r.Float64() * r.Float64(),
			MpuLLCI: 0.001 * r.Float64() * r.Float64(),
			MpuITLB: 0.0005 * r.Float64() * r.Float64(),
			MpuBr:   0.015*r.Float64()*r.Float64() + 0.0001,
			MpuDL1:  0.03 * r.Float64(),
			MpuLLCD: 0.004 * r.Float64() * r.Float64(),
			MpuDTLB: 0.001 * r.Float64() * r.Float64(),
			FP:      0.35 * r.Float64(),
		}
		cpi := truth.PredictCPI(f) * (1 + noise*(2*r.Float64()-1))
		obs[i] = Observation{Name: "synth", Feat: f, MeasuredCPI: cpi}
	}
	return obs, truth
}

func TestFitRecoversSyntheticModel(t *testing.T) {
	obs, _ := syntheticObservations(60, 5, 0)
	m, err := Fit(testMachineParams(), obs, FitOptions{Starts: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.PredictAll(obs)
	meas := make([]float64, len(obs))
	for i := range obs {
		meas[i] = obs[i].MeasuredCPI
	}
	if mare := stats.MARE(pred, meas); mare > 0.02 {
		t.Errorf("noiseless synthetic fit MARE %.4f, want < 0.02", mare)
	}
}

func TestFitToleratesNoise(t *testing.T) {
	obs, _ := syntheticObservations(60, 7, 0.10)
	m, err := Fit(testMachineParams(), obs, FitOptions{Starts: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.PredictAll(obs)
	meas := make([]float64, len(obs))
	for i := range obs {
		meas[i] = obs[i].MeasuredCPI
	}
	if mare := stats.MARE(pred, meas); mare > 0.10 {
		t.Errorf("noisy synthetic fit MARE %.4f, want <= noise level 0.10", mare)
	}
}

func TestFitDeterministic(t *testing.T) {
	obs, _ := syntheticObservations(30, 9, 0.05)
	a, err := Fit(testMachineParams(), obs, FitOptions{Starts: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(testMachineParams(), obs, FitOptions{Starts: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.P != b.P {
		t.Errorf("fits differ:\n%+v\n%+v", a.P, b.P)
	}
}

func TestFitErrors(t *testing.T) {
	obs, _ := syntheticObservations(5, 1, 0)
	if _, err := Fit(testMachineParams(), obs, FitOptions{}); err == nil {
		t.Error("expected error with too few observations")
	}
	obs, _ = syntheticObservations(20, 1, 0)
	if _, err := Fit(uarch.ModelParams{}, obs, FitOptions{}); err == nil {
		t.Error("expected error with invalid machine params")
	}
	obs[3].MeasuredCPI = 0
	if _, err := Fit(testMachineParams(), obs, FitOptions{}); err == nil {
		t.Error("expected error with non-positive CPI")
	}
}

// TestFitOnSimulatedWorkloads is the end-to-end heart of the
// reproduction: simulate a slice of the CPU2000-like suite on the Core 2
// machine, fit the model on the resulting counters, and require a Figure
// 2-like accuracy (the paper reports ~10% average error; the bar here is
// deliberately looser because this subset is small and short).
func TestFitOnSimulatedWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	m := uarch.CoreTwo()
	s, err := sim.New(m)
	if err != nil {
		t.Fatal(err)
	}
	suite := suites.CPU2000Like(suites.Options{NumOps: 80000})
	var obs []Observation
	for i, w := range suite.Workloads {
		if i%2 == 1 { // every other workload: keep the test fast
			continue
		}
		r, err := s.Run(trace.New(w))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		o, err := ObservationFrom(w.Name, &r.Counters)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		obs = append(obs, o)
	}
	model, err := Fit(m.Params(), obs, FitOptions{Starts: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pred := model.PredictAll(obs)
	meas := make([]float64, len(obs))
	for i := range obs {
		meas[i] = obs[i].MeasuredCPI
	}
	mare := stats.MARE(pred, meas)
	t.Logf("end-to-end fit on %d workloads: MARE %.1f%%", len(obs), 100*mare)
	if mare > 0.20 {
		t.Errorf("end-to-end MARE %.1f%%, want < 20%%", 100*mare)
	}
}

func TestComputeDeltaSelfIsZero(t *testing.T) {
	// Comparing a machine against itself must yield an all-zero delta.
	ctr := testCounters()
	model := &Model{Machine: testMachineParams(), P: testParams()}
	runs := []MachineRun{{Name: "w1", Ctr: ctr}}
	d, err := ComputeDelta("a", model, runs, "b", model, runs)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"width": d.Overall.Width, "fusion": d.Overall.Fusion,
		"icache": d.Overall.ICache, "memory": d.Overall.Memory,
		"branch": d.Overall.Branch, "other": d.Overall.Other,
		"br-miss": d.Branch.Mispredictions, "br-res": d.Branch.Resolution,
		"br-fe": d.Branch.FrontEnd, "llc-miss": d.LLC.Misses,
		"llc-lat": d.LLC.Latency, "llc-mlp": d.LLC.MLP,
	} {
		if math.Abs(v) > 1e-12 {
			t.Errorf("self-delta %s = %v, want 0", name, v)
		}
	}
}

func TestComputeDeltaErrors(t *testing.T) {
	model := &Model{Machine: testMachineParams(), P: testParams()}
	ctr := testCounters()
	if _, err := ComputeDelta("a", model, nil, "b", model, nil); err == nil {
		t.Error("expected error on empty runs")
	}
	oldRuns := []MachineRun{{Name: "w1", Ctr: ctr}}
	newRuns := []MachineRun{{Name: "other", Ctr: ctr}}
	if _, err := ComputeDelta("a", model, oldRuns, "b", model, newRuns); err == nil {
		t.Error("expected error on mismatched workload names")
	}
}

func TestDeltaDecompositionSumsMatch(t *testing.T) {
	// The branch factor deltas must sum to the branch-component change
	// computed directly from the two models.
	oldM := &Model{Machine: uarch.PentiumFour().Params(), P: testParams()}
	newM := &Model{Machine: uarch.CoreTwo().Params(), P: testParams()}
	oldCtr := testCounters()
	newCtr := oldCtr
	newCtr.BranchMispredicts = oldCtr.BranchMispredicts * 2 // worse predictor
	newCtr.Uops = oldCtr.Uops * 9 / 10                      // fusion
	oldRuns := []MachineRun{{Name: "w", Ctr: oldCtr}}
	newRuns := []MachineRun{{Name: "w", Ctr: newCtr}}
	d, err := ComputeDelta("p4", oldM, oldRuns, "core2", newM, newRuns)
	if err != nil {
		t.Fatal(err)
	}
	of, _ := FeaturesFrom(&oldCtr)
	nf, _ := FeaturesFrom(&newCtr)
	oMPI := float64(oldCtr.BranchMispredicts) / float64(oldCtr.Instructions)
	nMPI := float64(newCtr.BranchMispredicts) / float64(newCtr.Instructions)
	wantBranch := nMPI*(newM.BranchResolution(nf)+float64(newM.Machine.FrontEndDepth)) -
		oMPI*(oldM.BranchResolution(of)+float64(oldM.Machine.FrontEndDepth))
	if math.Abs(d.Branch.Total()-wantBranch) > 1e-9 {
		t.Errorf("branch factor sum %v, want %v", d.Branch.Total(), wantBranch)
	}
	// LLC factors likewise.
	oMiss := float64(oldCtr.LLCDLoadMisses) / float64(oldCtr.Instructions)
	nMiss := float64(newCtr.LLCDLoadMisses) / float64(newCtr.Instructions)
	wantLLC := nMiss*float64(newM.Machine.MemLat)/newM.MLP(nf) -
		oMiss*float64(oldM.Machine.MemLat)/oldM.MLP(of)
	if math.Abs(d.LLC.Total()-wantLLC) > 1e-9 {
		t.Errorf("LLC factor sum %v, want %v", d.LLC.Total(), wantLLC)
	}
	// Overall total equals the model-CPI-per-instruction change.
	oUPI := float64(oldCtr.Uops) / float64(oldCtr.Instructions)
	nUPI := float64(newCtr.Uops) / float64(newCtr.Instructions)
	wantTotal := newM.PredictCPI(nf)*nUPI - oldM.PredictCPI(of)*oUPI
	if math.Abs(d.Overall.Total()-wantTotal) > 1e-9 {
		t.Errorf("overall total %v, want %v", d.Overall.Total(), wantTotal)
	}
}
