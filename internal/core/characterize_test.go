package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func charObs() []Observation {
	memBound := Observation{Name: "membound", Feat: Features{
		MpuLLCD: 0.01, MpuDTLB: 0.001, MpuBr: 0.0005, FP: 0.2}, MeasuredCPI: 1.5}
	brBound := Observation{Name: "branchy", Feat: Features{
		MpuBr: 0.01, MpuDL1: 0.005, FP: 0.0}, MeasuredCPI: 0.8}
	quiet := Observation{Name: "quiet", Feat: Features{FP: 0.05}, MeasuredCPI: 0.3}
	return []Observation{memBound, brBound, quiet}
}

func TestCharacterize(t *testing.T) {
	m := &Model{Machine: testMachineParams(), P: testParams()}
	chars := Characterize(m, charObs())
	if len(chars) != 3 {
		t.Fatalf("want 3 characterizations, got %d", len(chars))
	}
	byName := map[string]Characterization{}
	for _, c := range chars {
		byName[c.Name] = c
	}
	if byName["membound"].Dominant != sim.CompLLCLoad {
		t.Errorf("membound classified as %v", byName["membound"].Dominant)
	}
	if byName["branchy"].Dominant != sim.CompBranch {
		t.Errorf("branchy classified as %v", byName["branchy"].Dominant)
	}
	// Sorted by descending dominant share.
	for i := 1; i < len(chars); i++ {
		if chars[i].DominantShare > chars[i-1].DominantShare {
			t.Error("characterizations not sorted by dominant share")
		}
	}
	// Shares in [0,1].
	for _, c := range chars {
		if c.DominantShare < 0 || c.DominantShare > 1 {
			t.Errorf("%s share %v out of range", c.Name, c.DominantShare)
		}
	}
}

func TestSuiteProfile(t *testing.T) {
	m := &Model{Machine: testMachineParams(), P: testParams()}
	obs := charObs()
	mean := SuiteProfile(m, obs)
	// Mean of stacks equals stack of means component-wise: verify total.
	var want float64
	for _, o := range obs {
		want += m.PredictCPI(o.Feat)
	}
	want /= float64(len(obs))
	if diff := mean.Total() - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("suite profile total %v, want %v", mean.Total(), want)
	}
	var empty sim.Stack
	if SuiteProfile(m, nil) != empty {
		t.Error("empty observations should give a zero profile")
	}
}

func TestRenderCharacterization(t *testing.T) {
	m := &Model{Machine: testMachineParams(), P: testParams()}
	out := RenderCharacterization(Characterize(m, charObs()))
	for _, want := range []string{"membound", "branchy", "llc-load-bound", "branch-bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("characterization output missing %q:\n%s", want, out)
		}
	}
}
