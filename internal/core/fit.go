package core

import (
	"fmt"

	"repro/internal/regress"
	"repro/internal/uarch"
)

// FitOptions tunes the regression (sensible defaults everywhere).
type FitOptions struct {
	// Starts is the number of random multi-start restarts (default 12).
	Starts int
	// Seed drives the random restarts (default 1).
	Seed uint64
	// MaxIter bounds each Nelder–Mead run (default 4000).
	MaxIter int

	// Ablation switches (all default false = the paper's model). These
	// exist to quantify the design choices Section 3 argues for.
	AdditiveBranch bool // Eq. 2 with additive instead of multiplicative factors
	ConstantMLP    bool // Eq. 3 replaced by a single fitted constant
	UnscaledStall  bool // Eq. 4 without the miss-time scaling factor
	NoWindowCap    bool // Eq. 2 without the min(128, ·) window cap
}

func (o FitOptions) withDefaults() FitOptions {
	if o.Starts <= 0 {
		o.Starts = 12
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 4000
	}
	return o
}

// fitBounds are the parameter box constraints. Scales are positive;
// power-law exponents live in modest ranges (the paper's power laws are
// sublinear); factor coefficients are non-negative.
func fitBounds() regress.Bounds {
	return regress.Bounds{
		//           b1    b2   b3  b4   b5   b6  b7   b8  b9  b10
		Lo: []float64{1e-4, 0.0, 0, 0, 0.05, 0, 0, 0, 0, 0},
		Hi: []float64{50, 1.5, 20, 300, 80, 1.0, 1.0, 2.0, 20, 300},
	}
}

// defaultStart is a physically plausible initial parameter vector:
// branch resolution around b1·interval^0.5 ≈ 10 cycles, MLP a few, a
// small baseline stall.
func defaultStart() []float64 {
	return []float64{1, 0.5, 1, 10, 4, 0.2, 0.05, 0.1, 1, 10}
}

// Fit infers a mechanistic-empirical model for the machine from the
// observations, minimizing the sum of relative squared CPI errors
// (the paper's SPSS setup, Section 4). At least as many observations as
// parameters are required.
func Fit(machine uarch.ModelParams, obs []Observation, opts FitOptions) (*Model, error) {
	opts = opts.withDefaults()
	if len(obs) < 10 {
		return nil, fmt.Errorf("core: need at least 10 observations to fit 10 parameters, have %d", len(obs))
	}
	if machine.DispatchWidth <= 0 {
		return nil, fmt.Errorf("core: invalid machine parameters (dispatch width %d)", machine.DispatchWidth)
	}
	for _, o := range obs {
		if o.MeasuredCPI <= 0 {
			return nil, fmt.Errorf("core: observation %q has non-positive CPI %v", o.Name, o.MeasuredCPI)
		}
	}

	measured := make([]float64, len(obs))
	for i, o := range obs {
		measured[i] = o.MeasuredCPI
	}

	eval := modelEvaluator(machine, obs, opts)
	res := regress.MinimizeRelSq(eval, measured, defaultStart(), fitBounds(),
		regress.MultiStartOptions{
			Starts: opts.Starts,
			Seed:   opts.Seed,
			NM:     regress.NMOptions{MaxIter: opts.MaxIter},
		})

	m := &Model{Machine: machine, P: paramsFromSlice(res.Params)}
	m.ablation = ablationFrom(opts)
	return m, nil
}

// modelEvaluator returns a closure mapping a raw parameter vector to the
// per-observation CPI predictions, honouring the ablation switches.
func modelEvaluator(machine uarch.ModelParams, obs []Observation, opts FitOptions) func([]float64) []float64 {
	return func(params []float64) []float64 {
		m := Model{Machine: machine, P: paramsFromSlice(params), ablation: ablationFrom(opts)}
		out := make([]float64, len(obs))
		for i, o := range obs {
			out[i] = m.PredictCPI(o.Feat)
		}
		return out
	}
}

// ablation mirrors the FitOptions switches inside the model so that a
// model fitted with an ablated structure also predicts with it.
type ablation struct {
	additiveBranch bool
	constantMLP    bool
	unscaledStall  bool
	noWindowCap    bool
}

func ablationFrom(o FitOptions) ablation {
	return ablation{
		additiveBranch: o.AdditiveBranch,
		constantMLP:    o.ConstantMLP,
		unscaledStall:  o.UnscaledStall,
		noWindowCap:    o.NoWindowCap,
	}
}
