package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/perfctr"
	"repro/internal/sim"
	"repro/internal/uarch"
)

func testMachineParams() uarch.ModelParams {
	return uarch.CoreTwo().Params()
}

func testParams() Params {
	return Params{
		B1: 1.2, B2: 0.5, B3: 1.0, B4: 20,
		B5: 6, B6: 0.25, B7: 0.05,
		B8: 0.08, B9: 1.5, B10: 30,
	}
}

func testFeatures() Features {
	return Features{
		MpuL1I: 0.002, MpuLLCI: 0.0001, MpuITLB: 0.00005,
		MpuBr: 0.004, MpuDL1: 0.01, MpuLLCD: 0.001, MpuDTLB: 0.0002,
		FP: 0.1,
	}
}

func TestBranchResolutionEquationTwo(t *testing.T) {
	m := &Model{Machine: testMachineParams(), P: testParams()}
	f := testFeatures()
	// interval = min(128, 1/0.004=250) = 128 → capped.
	want := 1.2 * math.Pow(128, 0.5) * (1 + 1.0*0.1) * (1 + 20*0.01)
	if got := m.BranchResolution(f); math.Abs(got-want) > 1e-9 {
		t.Errorf("cbr = %v, want %v", got, want)
	}
	// Uncapped region: mpuBr = 0.02 → interval 50.
	f.MpuBr = 0.02
	want = 1.2 * math.Pow(50, 0.5) * 1.1 * 1.2
	if got := m.BranchResolution(f); math.Abs(got-want) > 1e-9 {
		t.Errorf("uncapped cbr = %v, want %v", got, want)
	}
}

func TestWindowCapMonotone(t *testing.T) {
	// Resolution time must not grow as mispredictions become rarer than
	// one per window (the cap region).
	m := &Model{Machine: testMachineParams(), P: testParams()}
	f := testFeatures()
	f.MpuBr = 1.0 / 200
	rare := m.BranchResolution(f)
	f.MpuBr = 1.0 / 128
	atCap := m.BranchResolution(f)
	if math.Abs(rare-atCap) > 1e-9 {
		t.Errorf("cap should freeze the interval factor: %v vs %v", rare, atCap)
	}
}

func TestMLPEquationThree(t *testing.T) {
	m := &Model{Machine: testMachineParams(), P: testParams()}
	f := testFeatures()
	want := 6 * math.Pow(0.001+epsRate, 0.25) * math.Pow(0.0002+epsRate, 0.05)
	if want < 1 {
		want = 1
	}
	if got := m.MLP(f); math.Abs(got-want) > 1e-9 {
		t.Errorf("MLP = %v, want %v", got, want)
	}
	// More misses → more MLP (power law with positive exponent).
	f2 := f
	f2.MpuLLCD = 0.01
	if m.MLP(f2) <= m.MLP(f) {
		t.Error("MLP should grow with the miss rate")
	}
	// Clamped at 1 from below.
	f3 := f
	f3.MpuLLCD = 0
	f3.MpuDTLB = 0
	if m.MLP(f3) < 1 {
		t.Error("MLP must never drop below 1")
	}
}

func TestResourceStallScaling(t *testing.T) {
	m := &Model{Machine: testMachineParams(), P: testParams()}
	// No miss events: the full c'stall applies.
	quiet := Features{FP: 0.1, MpuDL1: 0.01}
	full := m.P.B8 * (1 + m.P.B9*0.1) * (1 + m.P.B10*0.01)
	if got := m.ResourceStall(quiet); math.Abs(got-full) > 1e-9 {
		t.Errorf("quiet stall %v, want full %v", got, full)
	}
	// Heavy miss traffic shrinks the stall component (Eq. 4).
	busy := testFeatures()
	busy.MpuLLCD = 0.02
	busy.MpuBr = 0.02
	if m.ResourceStall(busy) >= full {
		t.Error("miss-heavy workload should see a reduced stall component")
	}
	if m.ResourceStall(busy) < 0 {
		t.Error("stall component must be non-negative")
	}
}

func TestStackSumsToPrediction(t *testing.T) {
	m := &Model{Machine: testMachineParams(), P: testParams()}
	for _, f := range []Features{testFeatures(), {}, {MpuBr: 0.05, FP: 0.3}} {
		s := m.Stack(f)
		if d := math.Abs(s.Total() - m.PredictCPI(f)); d > 1e-9 {
			t.Errorf("stack total %v vs prediction %v", s.Total(), m.PredictCPI(f))
		}
		if s.Cycles[sim.CompBase] != 0.25 {
			t.Errorf("base %v, want 1/4", s.Cycles[sim.CompBase])
		}
	}
}

func TestThreeLevelMachineUsesL3Term(t *testing.T) {
	m := &Model{Machine: uarch.CoreI7().Params(), P: testParams()}
	f := testFeatures()
	f.MpuL2I = 0.001
	s := m.Stack(f)
	if s.Cycles[sim.CompICacheL3] <= 0 {
		t.Error("i7 model should have an L3 I-cache term")
	}
	m2 := &Model{Machine: testMachineParams(), P: testParams()}
	if s2 := m2.Stack(f); s2.Cycles[sim.CompICacheL3] != 0 {
		t.Error("2-level machine must have no L3 term")
	}
}

func TestFeaturesFrom(t *testing.T) {
	c := perfctr.Counters{
		Cycles: 1000, Uops: 1000, Instructions: 700,
		Branches: 120, BranchMispredicts: 4,
		L1IMisses: 10, L2IMisses: 2, LLCIMisses: 2, ITLBMisses: 1,
		L1DLoadMisses: 30, L1DLoadL2Hits: 25, LLCDLoadMisses: 3, DTLBMisses: 2,
		FPOps: 100,
	}
	f, err := FeaturesFrom(&c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.MpuL1I-0.008) > 1e-12 { // (10-2)/1000 exclusive
		t.Errorf("MpuL1I %v", f.MpuL1I)
	}
	// 2-level machine: L2I misses all go to memory → exclusive L3 tier 0.
	if f.MpuL2I != 0 {
		t.Errorf("MpuL2I %v, want 0 on 2-level counters", f.MpuL2I)
	}
	if math.Abs(f.MpuLLCI-0.002) > 1e-12 {
		t.Errorf("MpuLLCI %v", f.MpuLLCI)
	}
	if math.Abs(f.MpuBr-0.004) > 1e-12 || math.Abs(f.FP-0.1) > 1e-12 {
		t.Errorf("MpuBr %v FP %v", f.MpuBr, f.FP)
	}
	if math.Abs(f.MpuDL1-0.025) > 1e-12 {
		t.Errorf("MpuDL1 %v", f.MpuDL1)
	}
	// Three-level counters keep an exclusive L3 tier.
	c3 := c
	c3.L2IMisses = 5
	c3.L3IMisses = 2
	c3.LLCIMisses = 2
	f3, err := FeaturesFrom(&c3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f3.MpuL2I-0.003) > 1e-12 { // (5-2)/1000
		t.Errorf("3-level MpuL2I %v", f3.MpuL2I)
	}
}

func TestFeaturesFromErrors(t *testing.T) {
	bad := perfctr.Counters{}
	if _, err := FeaturesFrom(&bad); err == nil {
		t.Error("expected error on empty counters")
	}
	inconsistent := perfctr.Counters{
		Cycles: 10, Uops: 10, Instructions: 5,
		L1IMisses: 1, L2IMisses: 5,
	}
	if _, err := FeaturesFrom(&inconsistent); err == nil {
		t.Error("expected error on L2I > L1I")
	}
}

func TestVectorAndNames(t *testing.T) {
	f := testFeatures()
	v := f.Vector()
	if len(v) != len(FeatureNames()) {
		t.Fatalf("vector len %d vs names %d", len(v), len(FeatureNames()))
	}
	if v[4] != f.MpuBr || v[8] != f.FP {
		t.Error("vector order broken")
	}
}

func TestModelString(t *testing.T) {
	m := &Model{Machine: testMachineParams(), P: testParams()}
	s := m.String()
	if !strings.Contains(s, "b1=") || !strings.Contains(s, "b10=") {
		t.Errorf("model string missing parameters: %s", s)
	}
}

func TestAblationsChangeBehaviour(t *testing.T) {
	base := &Model{Machine: testMachineParams(), P: testParams()}
	f := testFeatures()
	f.MpuBr = 0.0001 // rare mispredictions: cap matters

	noCap := *base
	noCap.ablation.noWindowCap = true
	if noCap.BranchResolution(f) <= base.BranchResolution(f) {
		t.Error("removing the window cap should inflate resolution time for rare branches")
	}

	add := *base
	add.ablation.additiveBranch = true
	if add.BranchResolution(f) == base.BranchResolution(f) {
		t.Error("additive branch model should differ")
	}

	constMLP := *base
	constMLP.ablation.constantMLP = true
	if constMLP.MLP(f) != 6 {
		t.Errorf("constant MLP should be b5, got %v", constMLP.MLP(f))
	}

	unscaled := *base
	unscaled.ablation.unscaledStall = true
	busy := testFeatures()
	busy.MpuLLCD = 0.05
	if unscaled.ResourceStall(busy) <= base.ResourceStall(busy) {
		t.Error("unscaled stall should exceed the miss-scaled one on busy workloads")
	}
}
