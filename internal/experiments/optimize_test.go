package experiments

import (
	"strings"
	"testing"

	"repro/internal/runstore"
)

func TestParseOptimizeSpecStrict(t *testing.T) {
	good := []byte(`{
		"base": {"name": "core2"},
		"axes": [{"param": "rob", "values": [48, 96]}],
		"suite": "cpu2000",
		"objective": {"kind": "min-cpi"},
		"search": {"algorithm": "coordinate-descent", "trustRadius": 2}
	}`)
	spec, err := ParseOptimizeSpec(good)
	if err != nil || spec.Base.Name != "core2" || spec.Objective.Kind != ObjectiveMinCPI {
		t.Fatalf("ParseOptimizeSpec: %+v, %v", spec, err)
	}
	if _, err := spec.Resolve(); err != nil {
		t.Errorf("good spec should resolve: %v", err)
	}

	for name, doc := range map[string]string{
		"unknown field":     `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [64]}], "suite": "cpu2000", "objective": {"kind": "min-cpi"}, "cores": 4}`,
		"typoed search key": `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [64]}], "suite": "cpu2000", "objective": {"kind": "min-cpi"}, "search": {"algo": "x"}}`,
		"trailing data":     `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [64]}], "suite": "cpu2000", "objective": {"kind": "min-cpi"}} {}`,
		"no axes":           `{"base": {"name": "core2"}, "axes": [], "suite": "cpu2000", "objective": {"kind": "min-cpi"}}`,
		"no suite":          `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [64]}], "objective": {"kind": "min-cpi"}}`,
		"no objective":      `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [64]}], "suite": "cpu2000"}`,
	} {
		if _, err := ParseOptimizeSpec([]byte(doc)); err == nil {
			t.Errorf("%s should fail strict parsing", name)
		}
	}
}

func TestOptimizeSpecValidation(t *testing.T) {
	// base returns a fresh valid two-axis spec for each case to mutate.
	base := func() OptimizeSpec {
		return OptimizeSpec{
			Base:      MachineSpec{Name: "core2"},
			Axes:      []PlanAxis{{Param: "rob", Values: []int{48, 96}}, {Param: "mshrs", Values: []int{4, 8}}},
			Suite:     "cpu2000",
			Objective: ObjectiveSpec{Kind: ObjectiveMinCPI},
		}
	}
	cases := []struct {
		name    string
		mutate  func(*OptimizeSpec)
		wantErr string
	}{
		{"unknown objective", func(s *OptimizeSpec) { s.Objective.Kind = "min-watts" }, "unknown objective kind"},
		{"negative budget", func(s *OptimizeSpec) { s.Objective.CPIBudget = -1 }, "must be positive"},
		{"budget and slack", func(s *OptimizeSpec) {
			s.Objective.Kind = ObjectiveMinCost
			s.Objective.CPIBudget = 1
			s.Objective.CPISlack = 0.1
		}, "not both"},
		{"min-cpi with budget", func(s *OptimizeSpec) { s.Objective.CPIBudget = 1 }, "takes no CPI budget"},
		{"min-cost without budget", func(s *OptimizeSpec) { s.Objective.Kind = ObjectiveMinCost }, "needs a cpiBudget"},
		{"points outside pareto", func(s *OptimizeSpec) { s.Objective.Points = 3 }, "only applies to pareto"},
		{"pareto needs 2+ axes", func(s *OptimizeSpec) {
			s.Objective.Kind = ObjectivePareto
			s.Axes = s.Axes[:1]
		}, "wants 2 or 3 axes"},
		{"pareto points range", func(s *OptimizeSpec) {
			s.Objective.Kind = ObjectivePareto
			s.Objective.Points = 50
		}, "points must be 2–9"},
		{"unknown algorithm", func(s *OptimizeSpec) { s.Search.Algorithm = "simulated-annealing" }, "unknown search algorithm"},
		{"negative maxProbes", func(s *OptimizeSpec) { s.Search.MaxProbes = -1 }, "maxProbes"},
		{"negative trustRadius", func(s *OptimizeSpec) { s.Search.TrustRadius = -0.5 }, "trustRadius"},
		{"rungs with descent", func(s *OptimizeSpec) { s.Search.Rungs = 3 }, "rungs only apply"},
		{"rungs range", func(s *OptimizeSpec) {
			s.Search.Algorithm = SearchSuccessiveHalving
			s.Search.Rungs = 9
		}, "rungs must be 2–6"},
		{"unknown machine", func(s *OptimizeSpec) { s.Base.Name = "core9" }, "unknown machine"},
		{"unknown axis", func(s *OptimizeSpec) { s.Axes[0].Param = "cores" }, "unknown sweep parameter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := base()
			tc.mutate(&spec)
			_, err := spec.Resolve()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Resolve error = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}

	// Defaults: empty search resolves to coordinate descent with one
	// doubling of trust; pareto defaults to 5 scalarizations; halving
	// defaults to 3 rungs.
	spec := base()
	o, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if o.Search.Algorithm != SearchCoordinateDescent || o.Search.TrustRadius != 1 {
		t.Errorf("search defaults: %+v", o.Search)
	}
	spec = base()
	spec.Objective.Kind = ObjectivePareto
	if o, err = spec.Resolve(); err != nil || o.Objective.Points != 5 {
		t.Errorf("pareto points default: %+v, %v", o.Objective, err)
	}
	spec = base()
	spec.Search.Algorithm = SearchSuccessiveHalving
	if o, err = spec.Resolve(); err != nil || o.Search.Rungs != 3 {
		t.Errorf("halving rungs default: %+v, %v", o.Search, err)
	}
}

func TestOptimizeBounds(t *testing.T) {
	spec := OptimizeSpec{
		Base:      MachineSpec{Name: "core2"},
		Axes:      []PlanAxis{{Param: "rob", Values: []int{48, 96, 192}}, {Param: "mshrs", Values: []int{4, 8}}},
		Suite:     "cpu2000",
		Objective: ObjectiveSpec{Kind: ObjectiveMinCPI},
	}
	o, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if o.ProbeBound() != 6 || o.runBound(12) != (1+6)*12 {
		t.Errorf("descent bounds: probes %d, runs %d", o.ProbeBound(), o.runBound(12))
	}
	spec.Search = SearchSpec{MaxProbes: 2}
	if o, err = spec.Resolve(); err != nil || o.ProbeBound() != 2 || o.runBound(12) != (1+2)*12 {
		t.Errorf("capped bounds: %+v, %v", o, err)
	}
	// Two-rung halving screens the whole grid once at reduced fidelity
	// before the full-fidelity survivors.
	spec.Search = SearchSpec{Algorithm: SearchSuccessiveHalving, Rungs: 2}
	if o, err = spec.Resolve(); err != nil || o.runBound(12) != (1+6+6)*12 {
		t.Errorf("halving bounds: %+v, %v", o, err)
	}
}

// optimizeGrid is the shared small-grid fixture: core2 over
// width×memlat on the tiny suite — two axes the extrapolated model
// discriminates on, monotone in both, so coordinate descent provably
// reaches the global optimum the exhaustive plan finds.
func optimizeGrid(t *testing.T, objective ObjectiveSpec, search SearchSpec) *Optimize {
	t.Helper()
	spec := OptimizeSpec{
		Base: MachineSpec{Name: "core2"},
		Axes: []PlanAxis{
			{Param: "width", Values: []int{2, 4, 8}},
			{Param: "memlat", Values: []int{150, 300}},
		},
		Suite:     tinySuite(t),
		Objective: objective,
		Search:    search,
	}
	o, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestOptimizeDescentMatchesExhaustivePlan is the acceptance property:
// on the committed example-style grid, coordinate descent finds the
// exact argmin cell the exhaustive plan enumeration finds — same
// machine, bit-identical extrapolated CPI — while probing strictly
// fewer cells, and a warm rerun answers entirely from the store.
func TestOptimizeDescentMatchesExhaustivePlan(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation is slow")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumOps: 2000, FitStarts: 2, Store: store}
	// TrustRadius wide open: every probe extrapolates from the frozen
	// base fit, exactly as RunPlan does, so CPIs compare bit-for-bit.
	o := optimizeGrid(t, ObjectiveSpec{Kind: ObjectiveMinCPI}, SearchSpec{TrustRadius: 99})

	exhaustive, err := RunPlan(o.Plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	argmin := exhaustive.Points[0]
	for _, pt := range exhaustive.Points[1:] {
		if pt.ModelCPI < argmin.ModelCPI {
			argmin = pt
		}
	}

	res, err := RunOptimize(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("min-cpi search returned no best point")
	}
	if res.Best.Machine != argmin.Machine {
		t.Errorf("optimizer argmin %s, exhaustive argmin %s", res.Best.Machine, argmin.Machine)
	}
	if res.Best.ModelCPI != argmin.ModelCPI || res.Best.SimCPI != argmin.SimCPI {
		t.Errorf("optimizer CPIs (%v, %v) not bit-identical to plan (%v, %v)",
			res.Best.ModelCPI, res.Best.SimCPI, argmin.ModelCPI, argmin.SimCPI)
	}
	if res.GridCells != 6 || res.Probes >= res.GridCells {
		t.Errorf("probes %d must beat exhaustive enumeration of %d cells", res.Probes, res.GridCells)
	}
	if res.Refits != 0 {
		t.Errorf("wide-open trust radius re-fitted %d times", res.Refits)
	}
	if !strings.Contains(res.Render(), "probes:") || !strings.Contains(res.Render(), "best:") {
		t.Errorf("render missing sections:\n%s", res.Render())
	}

	// The exhaustive plan already warmed the store for every cell, so
	// the probe phase was pure hits; only the base fit belongs to both.
	if res.Stats.Simulated != 0 || res.Stats.TraceGens != 0 {
		t.Errorf("optimize after plan should be store-warm: %+v", res.Stats)
	}

	// A rerun is deterministic and fully warm.
	again, err := RunOptimize(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.Simulated != 0 || again.Stats.TraceGens != 0 {
		t.Errorf("warm rerun simulated: %+v", again.Stats)
	}
	if again.Render() != res.Render() {
		t.Error("warm rerun output differs from cold")
	}
}

func TestOptimizeMinCostBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation is slow")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumOps: 2000, FitStarts: 2, Store: store}
	// A budget loose enough that every cell qualifies: the cheapest cell
	// outright — half the width, the slowest (cheapest) memory — wins.
	o := optimizeGrid(t, ObjectiveSpec{Kind: ObjectiveMinCost, CPISlack: 4.0}, SearchSpec{TrustRadius: 99})
	res, err := RunOptimize(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPIBudget != res.BaseCPI*5 {
		t.Errorf("relative budget resolved to %v, want base %v × 5", res.CPIBudget, res.BaseCPI)
	}
	if res.Best == nil || !res.Best.Feasible {
		t.Fatalf("loose budget must yield a feasible best: %+v", res.Best)
	}
	if res.Best.Values[0] != 2 || res.Best.Values[1] != 300 {
		t.Errorf("cheapest cell is width=2 memlat=300, got %v", res.Best.Values)
	}
	// Cost proxy: width at half base (4→2) plus memlat inverted
	// (CostDown: 169/300), both relative to a base cost of 1 per axis.
	// Computed in float64 (not constant arithmetic) to match bit-for-bit.
	want := float64(2)/float64(4) + float64(169)/float64(300)
	if res.Best.Cost != want {
		t.Errorf("cost proxy %v, want %v", res.Best.Cost, want)
	}

	// An impossible budget leaves every probe infeasible — reported, not
	// hidden behind an arbitrary winner.
	o = optimizeGrid(t, ObjectiveSpec{Kind: ObjectiveMinCost, CPIBudget: 0.0001}, SearchSpec{TrustRadius: 99})
	res, err = RunOptimize(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Best.Feasible {
		t.Errorf("impossible budget must report an infeasible best: %+v", res.Best)
	}
}

func TestOptimizeSuccessiveHalving(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation is slow")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumOps: 2000, FitStarts: 2, Store: store}
	o := optimizeGrid(t, ObjectiveSpec{Kind: ObjectiveMinCPI},
		SearchSpec{Algorithm: SearchSuccessiveHalving, Rungs: 2, TrustRadius: 99})
	res, err := RunOptimize(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Two rungs: the whole 6-cell grid screened at half fidelity, the
	// better half promoted to full fidelity.
	if len(res.Rungs) != 1 || res.Rungs[0].Ops != 1000 || res.Rungs[0].Probes != 6 {
		t.Errorf("rungs %+v, want one 6-cell screen at 1000 µops", res.Rungs)
	}
	if res.Probes != 3 || res.Probes >= res.GridCells {
		t.Errorf("halving promoted %d cells to full fidelity, want 3 of %d", res.Probes, res.GridCells)
	}
	if res.Best == nil || res.Best.SimCPI <= 0 || res.Best.ModelCPI <= 0 {
		t.Fatalf("degenerate best point: %+v", res.Best)
	}

	// Reduced-fidelity screens key separately in the store, so a rerun
	// is pure hits at both fidelities.
	again, err := RunOptimize(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.Simulated != 0 || again.Stats.TraceGens != 0 {
		t.Errorf("warm halving rerun simulated: %+v", again.Stats)
	}
	if again.Best.Machine != res.Best.Machine || again.Best.ModelCPI != res.Best.ModelCPI {
		t.Errorf("warm rerun disagrees: %+v vs %+v", again.Best, res.Best)
	}
}

func TestOptimizeParetoFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation is slow")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumOps: 2000, FitStarts: 2, Store: store}
	o := optimizeGrid(t, ObjectiveSpec{Kind: ObjectivePareto}, SearchSpec{TrustRadius: 99})
	res, err := RunOptimize(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil {
		t.Error("pareto reports a frontier, not a single best")
	}
	if len(res.Frontier) < 2 {
		t.Fatalf("frontier has %d points, want the trade-off curve", len(res.Frontier))
	}
	// Sorted by CPI, mutually non-dominated: cost must strictly fall as
	// CPI rises.
	for i := 1; i < len(res.Frontier); i++ {
		p, q := res.Frontier[i-1], res.Frontier[i]
		if q.ModelCPI < p.ModelCPI {
			t.Errorf("frontier not sorted by CPI at %d: %v after %v", i, q.ModelCPI, p.ModelCPI)
		}
		if q.Cost >= p.Cost {
			t.Errorf("frontier point %d dominated: cost %v after %v", i, q.Cost, p.Cost)
		}
	}

	// The pure-CPI and pure-cost scalarizations anchor the endpoints:
	// the frontier must include the grid's global CPI argmin and the
	// globally cheapest cell (monotone axes place them at the corners).
	first, last := res.Frontier[0], res.Frontier[len(res.Frontier)-1]
	if first.Values[0] != 8 || first.Values[1] != 150 {
		t.Errorf("frontier CPI endpoint %v, want width=8 memlat=150", first.Values)
	}
	if last.Values[0] != 2 || last.Values[1] != 300 {
		t.Errorf("frontier cost endpoint %v, want width=2 memlat=300", last.Values)
	}
	// The shared probe memo means the scalarizations together still beat
	// enumerating the grid once per λ.
	if res.Probes > res.GridCells {
		t.Errorf("pareto probed %d cells on a %d-cell grid", res.Probes, res.GridCells)
	}
}

func TestOptimizeRefitBeyondTrustRadius(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation is slow")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumOps: 2000, FitStarts: 2, Store: store}
	spec := OptimizeSpec{
		Base:      MachineSpec{Name: "core2"},
		Axes:      []PlanAxis{{Param: "rob", Values: []int{96, 192}}},
		Suite:     tinySuite(t),
		Objective: ObjectiveSpec{Kind: ObjectiveMinCPI},
		// rob=192 sits one doubling from the base 96: beyond this radius.
		Search: SearchSpec{TrustRadius: 0.5},
	}
	o, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	tight, err := RunOptimize(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Refits != 1 {
		t.Errorf("one probe beyond the radius, %d re-fits", tight.Refits)
	}

	spec.Search.TrustRadius = 99
	if o, err = spec.Resolve(); err != nil {
		t.Fatal(err)
	}
	wide, err := RunOptimize(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Refits != 0 {
		t.Errorf("wide radius re-fitted %d times", wide.Refits)
	}
	// Both runs probe the same cells; when the doubled-ROB cell wins in
	// both, the re-fit must actually have changed its prediction.
	tb, wb := tight.Best, wide.Best
	if tb.Values[0] == 192 && !tb.Refit {
		t.Error("far cell not marked re-fitted under the tight radius")
	}
	if wb.Refit {
		t.Error("no cell should re-fit under the wide radius")
	}
	if tb.Values[0] == 192 && wb.Values[0] == 192 && tb.ModelCPI == wb.ModelCPI {
		t.Error("re-fit produced the same prediction as frozen extrapolation")
	}
	if tb.SimCPI != wb.SimCPI && tb.Values[0] == wb.Values[0] {
		t.Error("re-fit must not change the measured CPI")
	}
}

func TestProviderOptimizeReusesBaseFit(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation is slow")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := NewProvider(Options{NumOps: 2000, FitStarts: 2, Store: store})
	o := optimizeGrid(t, ObjectiveSpec{Kind: ObjectiveMinCPI}, SearchSpec{TrustRadius: 99})

	first, err := p.Optimize(o)
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Fits != 1 {
		t.Errorf("first optimize fitted %d models, want 1", st.Fits)
	}
	second, err := p.Optimize(o)
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Fits != 1 || st.ModelHits != 1 {
		t.Errorf("second optimize should join the cached fit: %+v", p.Stats())
	}
	if second.Best.Machine != first.Best.Machine || second.Best.ModelCPI != first.Best.ModelCPI {
		t.Errorf("cached-fit rerun disagrees: %+v vs %+v", second.Best, first.Best)
	}
	if second.Stats.Simulated != 0 || second.Stats.TraceGens != 0 {
		t.Errorf("warm provider rerun simulated: %+v", second.Stats)
	}

	// The provider path matches the standalone path bit-for-bit (same
	// fit inputs, same extrapolation).
	standalone, err := RunOptimize(o, Options{NumOps: 2000, FitStarts: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if standalone.Best.Machine != first.Best.Machine || standalone.Best.ModelCPI != first.Best.ModelCPI {
		t.Errorf("provider and standalone optimizers disagree: %+v vs %+v", standalone.Best, first.Best)
	}
}
