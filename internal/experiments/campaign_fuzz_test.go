package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzParseCampaign asserts two invariants over arbitrary scenario
// bytes: ParseCampaign never panics, and every accepted campaign
// round-trips — marshalling it and parsing the result yields the same
// campaign, so nothing a user can express is lost or mutated by the
// strict decoder. The seed corpus is every example scenario plus the
// malformed shapes the decoder is supposed to reject loudly (unknown
// fields, trailing documents, negative overrides, type confusion).
func FuzzParseCampaign(f *testing.F) {
	scenarios, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(scenarios) == 0 {
		f.Fatal("no example scenarios found for the seed corpus")
	}
	for _, path := range scenarios {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	for _, seed := range []string{
		``,
		`{}`,
		`not json at all`,
		`{"machines": [{"name": "core2"}], "suites": ["cpu2000"]}`,
		`{"machines": [{"name": "core2"}], "suites": ["cpu2000"], "typo": 1}`,
		`{"machines": [{"name": "core2", "overrides": {"robSize": -5}}], "suites": ["cpu2000"]}`,
		`{"machines": [{"name": "x", "base": "core2", "overrides": {"fusionRate": 0}}], "suites": ["cpu2000"]}`,
		`{"machines": [{"name": "core2"}], "suites": ["cpu2000"]} {"trailing": "doc"}`,
		`{"machines": [], "suites": []}`,
		`{"machines": [{"name": "core2"}], "suites": ["cpu2000"], "ops": 1.5}`,
		`{"machines": [{"name": "core2"}], "suites": ["cpu2000"], "ops": -3, "seed": 7}`,
		`{"machines": [{"name": "core2", "overrides": {"l2": {"sizeBytes": 1048576}}}], "suites": ["cpu2000", "cpu2000"]}`,
		`[{"name": "core2"}]`,
		`{"machines": "core2", "suites": "cpu2000"}`,
	} {
		f.Add([]byte(seed))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseCampaign(data)
		if err != nil {
			return // rejection is fine; panicking or corrupting is not
		}
		out, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("accepted campaign does not marshal: %v\n%s", err, data)
		}
		c2, err := ParseCampaign(out)
		if err != nil {
			t.Fatalf("marshalled campaign does not re-parse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(c, c2) {
			t.Fatalf("campaign round-trip mutated the value:\n in  %+v\n out %+v\n(json %s)", c, c2, out)
		}
	})
}
