package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/suites"
)

// Objective kinds: minimize the suite-mean model CPI outright, minimize
// the hardware-cost proxy subject to a CPI budget, or map the Pareto
// frontier of the CPI/cost trade-off.
const (
	ObjectiveMinCPI  = "min-cpi"
	ObjectiveMinCost = "min-cost"
	ObjectivePareto  = "pareto"
)

// Search algorithms: coordinate descent walks axis lines from the base
// point; successive halving screens the whole grid at reduced µop
// fidelity and promotes survivors rung by rung.
const (
	SearchCoordinateDescent = "coordinate-descent"
	SearchSuccessiveHalving = "successive-halving"
)

// ObjectiveSpec declares what the optimizer minimizes. Exactly one of
// CPIBudget (an absolute suite-mean CPI cap) or CPISlack (a relative cap:
// base CPI × (1+slack)) constrains a min-cost search; a pareto search may
// carry one optionally, restricting the frontier to feasible cells.
// Points is pareto-only: how many weighted-sum scalarizations to run
// (default 5).
type ObjectiveSpec struct {
	Kind      string  `json:"kind"`
	CPIBudget float64 `json:"cpiBudget,omitempty"`
	CPISlack  float64 `json:"cpiSlack,omitempty"`
	Points    int     `json:"points,omitempty"`
}

// SearchSpec tunes how the optimizer walks the grid. Zero values resolve
// to defaults: coordinate descent, no probe cap, a trust radius of one
// doubling, three successive-halving rungs.
type SearchSpec struct {
	Algorithm string `json:"algorithm,omitempty"`
	// MaxProbes caps the full-fidelity cells the search may evaluate
	// (0 = the whole grid). A search that hits the cap reports
	// Truncated and answers from what it probed.
	MaxProbes int `json:"maxProbes,omitempty"`
	// TrustRadius bounds how far (in per-axis doublings: the max over
	// axes of |log2(value/baseValue)|) the frozen-coefficient
	// extrapolation is trusted. A probe beyond it re-fits the model at
	// its own machine before predicting.
	TrustRadius float64 `json:"trustRadius,omitempty"`
	// Rungs is the successive-halving rung count, the last rung at full
	// µop fidelity (default 3, valid 2–6; successive-halving only).
	Rungs int `json:"rungs,omitempty"`
}

// OptimizeSpec is the declarative form of a design-space optimization:
// the JSON schema of optimize files, POST /v1/optimize bodies and
// optimize job payloads. The grid (base × axes × suite) follows exactly
// the plan-spec rules; the objective and search sections say what to
// minimize and how to walk the grid without exhausting it.
type OptimizeSpec struct {
	Base      MachineSpec   `json:"base"`
	Axes      []PlanAxis    `json:"axes"`
	Suite     string        `json:"suite"`
	Objective ObjectiveSpec `json:"objective"`
	Search    SearchSpec    `json:"search,omitzero"`
}

// ParseOptimizeSpec decodes an optimize document with the scenario-file
// rules: unknown fields and trailing data are errors.
func ParseOptimizeSpec(data []byte) (OptimizeSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec OptimizeSpec
	if err := dec.Decode(&spec); err != nil {
		return OptimizeSpec{}, fmt.Errorf("experiments: parse optimize: %w", err)
	}
	if dec.More() {
		return OptimizeSpec{}, fmt.Errorf("experiments: parse optimize: trailing data after optimize document")
	}
	if len(spec.Axes) == 0 {
		return OptimizeSpec{}, fmt.Errorf("experiments: optimize has no axes")
	}
	if spec.Suite == "" {
		return OptimizeSpec{}, fmt.Errorf("experiments: optimize has no suite")
	}
	if spec.Objective.Kind == "" {
		return OptimizeSpec{}, fmt.Errorf("experiments: optimize has no objective kind")
	}
	return spec, nil
}

// LoadOptimizeSpec reads and parses an optimize file.
func LoadOptimizeSpec(path string) (OptimizeSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return OptimizeSpec{}, fmt.Errorf("experiments: %w", err)
	}
	spec, err := ParseOptimizeSpec(data)
	if err != nil {
		return OptimizeSpec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return spec, nil
}

// Optimize is a validated, fully resolved optimization: the grid
// expanded through NewPlan (base machine via the uarch registry, axes
// via the param registry, every cell derived and validated up front) and
// the objective/search sections with defaults applied.
type Optimize struct {
	Spec OptimizeSpec
	Plan *Plan

	Objective ObjectiveSpec
	Search    SearchSpec
}

// Resolve materializes the spec into a validated Optimize. Everything
// that can be rejected without simulating — unknown machines, bogus
// axes, underivable cells, contradictory objectives — is rejected here,
// so the serving layer and job engine fail fast.
func (spec OptimizeSpec) Resolve() (*Optimize, error) {
	base, err := spec.Base.Resolve()
	if err != nil {
		return nil, err
	}
	plan, err := NewPlan(base, spec.Axes, spec.Suite)
	if err != nil {
		return nil, err
	}
	o := &Optimize{Spec: spec, Plan: plan, Objective: spec.Objective, Search: spec.Search}

	ob := &o.Objective
	switch ob.Kind {
	case ObjectiveMinCPI, ObjectiveMinCost, ObjectivePareto:
	case "":
		return nil, fmt.Errorf("experiments: optimize needs an objective kind (%q, %q or %q)",
			ObjectiveMinCPI, ObjectiveMinCost, ObjectivePareto)
	default:
		return nil, fmt.Errorf("experiments: unknown objective kind %q (want %q, %q or %q)",
			ob.Kind, ObjectiveMinCPI, ObjectiveMinCost, ObjectivePareto)
	}
	if ob.CPIBudget < 0 || ob.CPISlack < 0 {
		return nil, fmt.Errorf("experiments: optimize cpiBudget and cpiSlack must be positive")
	}
	if ob.CPIBudget > 0 && ob.CPISlack > 0 {
		return nil, fmt.Errorf("experiments: optimize takes cpiBudget or cpiSlack, not both")
	}
	switch ob.Kind {
	case ObjectiveMinCPI:
		if ob.CPIBudget > 0 || ob.CPISlack > 0 {
			return nil, fmt.Errorf("experiments: %s takes no CPI budget", ObjectiveMinCPI)
		}
	case ObjectiveMinCost:
		if ob.CPIBudget == 0 && ob.CPISlack == 0 {
			return nil, fmt.Errorf("experiments: %s needs a cpiBudget or cpiSlack", ObjectiveMinCost)
		}
	}
	if ob.Kind == ObjectivePareto {
		if len(spec.Axes) < 2 || len(spec.Axes) > 3 {
			return nil, fmt.Errorf("experiments: %s wants 2 or 3 axes, got %d", ObjectivePareto, len(spec.Axes))
		}
		if ob.Points == 0 {
			ob.Points = 5
		}
		if ob.Points < 2 || ob.Points > 9 {
			return nil, fmt.Errorf("experiments: %s points must be 2–9, got %d", ObjectivePareto, ob.Points)
		}
	} else if ob.Points != 0 {
		return nil, fmt.Errorf("experiments: objective points only applies to %s", ObjectivePareto)
	}

	se := &o.Search
	switch se.Algorithm {
	case "":
		se.Algorithm = SearchCoordinateDescent
	case SearchCoordinateDescent, SearchSuccessiveHalving:
	default:
		return nil, fmt.Errorf("experiments: unknown search algorithm %q (want %q or %q)",
			se.Algorithm, SearchCoordinateDescent, SearchSuccessiveHalving)
	}
	if se.MaxProbes < 0 {
		return nil, fmt.Errorf("experiments: search maxProbes must not be negative")
	}
	if se.TrustRadius < 0 {
		return nil, fmt.Errorf("experiments: search trustRadius must not be negative")
	}
	if se.TrustRadius == 0 {
		se.TrustRadius = 1
	}
	if se.Algorithm == SearchSuccessiveHalving {
		if se.Rungs == 0 {
			se.Rungs = 3
		}
		if se.Rungs < 2 || se.Rungs > 6 {
			return nil, fmt.Errorf("experiments: search rungs must be 2–6, got %d", se.Rungs)
		}
	} else if se.Rungs != 0 {
		return nil, fmt.Errorf("experiments: search rungs only apply to %s", SearchSuccessiveHalving)
	}
	return o, nil
}

// ProbeBound is the most full-fidelity probes this search may spend: the
// grid size, or MaxProbes when tighter. Progress reporting uses it as
// the probe denominator.
func (o *Optimize) ProbeBound() int {
	cells := len(o.Plan.Cells)
	if o.Search.MaxProbes > 0 && o.Search.MaxProbes < cells {
		return o.Search.MaxProbes
	}
	return cells
}

// rungSizes returns the successive-halving candidate count per rung:
// the whole grid screened at the first (cheapest) rung, half the
// survivors promoted to each next, the last rung at full fidelity.
func (o *Optimize) rungSizes() []int {
	sizes := make([]int, o.Search.Rungs)
	n := len(o.Plan.Cells)
	for r := range sizes {
		sizes[r] = n
		n = (n + 1) / 2
	}
	return sizes
}

// runBound is an upper bound on the simulation runs an execution may
// dispatch or serve from the store: the base fit plus every grid cell at
// full fidelity, plus (successive halving) the reduced-fidelity rung
// screens. An optimizer that finishes well below this bound is the
// point; the job engine reports the bound as TotalRuns.
func (o *Optimize) runBound(workloads int) int {
	n := 1 + o.ProbeBound()
	if o.Search.Algorithm == SearchSuccessiveHalving {
		sizes := o.rungSizes()
		for _, s := range sizes[:len(sizes)-1] {
			n += s
		}
	}
	return n * workloads
}

// OptimizePoint is one probed grid cell: its axis values (in axis
// order), the derived machine, the suite-mean simulated and
// model-predicted CPI, the cost proxy, and how the prediction was made
// (frozen-base extrapolation, or a re-fit beyond the trust radius).
type OptimizePoint struct {
	Values  []int
	Machine string
	// SimCPI and ModelCPI are suite-mean CPIs: the simulator's measured
	// value vs the model's prediction (extrapolated, or re-fitted when
	// Refit is set).
	SimCPI   float64
	ModelCPI float64
	// Cost is the hardware-cost proxy: the sum over explored axes of the
	// cell's value relative to base (inverted on CostDown axes), so the
	// base point costs exactly the axis count.
	Cost float64
	// Distance is the probe's distance from the fit point in per-axis
	// doublings: max over axes of |log2(value/baseValue)|.
	Distance float64
	// Refit reports that Distance exceeded the trust radius, so ModelCPI
	// comes from a model re-fitted at this cell's machine.
	Refit bool
	// Feasible reports ModelCPI within the CPI budget (always true when
	// the objective carries none).
	Feasible bool
	// SimStack and ModelStack are suite-mean per-µop cycle stacks.
	SimStack   sim.Stack
	ModelStack sim.Stack
}

// Err returns the model's relative CPI error at this point.
func (p OptimizePoint) Err() float64 { return stats.RelErr(p.ModelCPI, p.SimCPI) }

// OptimizeRung counts one successive-halving screen: how many cells were
// evaluated at the rung's reduced µop count. The final full-fidelity
// rung is not listed here — its evaluations are the Probes count.
type OptimizeRung struct {
	Ops    int `json:"ops"`
	Probes int `json:"probes"`
}

// OptimizeResult is an executed optimization. Probes counts the
// full-fidelity cells actually evaluated — the number to compare against
// GridCells to see what the search saved over exhaustive enumeration.
// Best is set for scalar objectives; Frontier for pareto (sorted by
// ModelCPI, mutually non-dominated in (ModelCPI, Cost)).
type OptimizeResult struct {
	Base       string
	Suite      string
	NumOps     int
	Axes       []PlanAxis
	BaseValues []int
	Objective  ObjectiveSpec
	Algorithm  string

	GridCells int
	Probes    int
	Rungs     []OptimizeRung
	Refits    int
	Truncated bool

	// BaseCPI is the suite-mean measured CPI at the base machine — the
	// reference a relative CPI budget (cpiSlack) resolves against.
	BaseCPI float64
	// CPIBudget is the resolved absolute budget (0 = unconstrained).
	CPIBudget float64

	Best     *OptimizePoint
	Frontier []OptimizePoint

	Stats SimStats
}

// RunSourcing is the wire form of SimStats, shared by the optimize
// report and (aliased) the serving layer.
type RunSourcing struct {
	StoreHits int `json:"storeHits"`
	Simulated int `json:"simulated"`
	TraceGens int `json:"traceGens"`
}

// OptimizePointReport is the wire form of an OptimizePoint. RelErr is
// signed (negative = the model under-predicts), matching the serving
// convention.
type OptimizePointReport struct {
	Values     []int      `json:"values"`
	Machine    string     `json:"machine"`
	SimCPI     float64    `json:"simCPI"`
	ModelCPI   float64    `json:"modelCPI"`
	RelErr     float64    `json:"relErr"`
	Cost       float64    `json:"cost"`
	Distance   float64    `json:"distance"`
	Refit      bool       `json:"refit"`
	Feasible   bool       `json:"feasible"`
	SimStack   []StackCPI `json:"simStack"`
	ModelStack []StackCPI `json:"modelStack"`
}

// OptimizeReport is the wire form of an OptimizeResult — the one JSON
// shape shared by POST /v1/optimize responses, optimize job results and
// cmd/sweep -optimize -json output, so every surface stays
// byte-comparable.
type OptimizeReport struct {
	Base       string         `json:"base"`
	Suite      string         `json:"suite"`
	Ops        int            `json:"ops"`
	Axes       []PlanAxis     `json:"axes"`
	BaseValues []int          `json:"baseValues"`
	Objective  ObjectiveSpec  `json:"objective"`
	Algorithm  string         `json:"algorithm"`
	GridCells  int            `json:"gridCells"`
	Probes     int            `json:"probes"`
	Rungs      []OptimizeRung `json:"rungs,omitempty"`
	Refits     int            `json:"refits"`
	Truncated  bool           `json:"truncated,omitempty"`
	BaseCPI    float64        `json:"baseCPI"`
	CPIBudget  float64        `json:"cpiBudget,omitempty"`

	Best     *OptimizePointReport  `json:"best,omitempty"`
	Frontier []OptimizePointReport `json:"frontier,omitempty"`

	Sims RunSourcing `json:"sims"`
}

func pointReport(p *OptimizePoint) *OptimizePointReport {
	return &OptimizePointReport{
		Values:     p.Values,
		Machine:    p.Machine,
		SimCPI:     p.SimCPI,
		ModelCPI:   p.ModelCPI,
		RelErr:     (p.ModelCPI - p.SimCPI) / p.SimCPI,
		Cost:       p.Cost,
		Distance:   p.Distance,
		Refit:      p.Refit,
		Feasible:   p.Feasible,
		SimStack:   stackCPIs(p.SimStack),
		ModelStack: stackCPIs(p.ModelStack),
	}
}

// Report flattens the result into its wire form.
func (r *OptimizeResult) Report() *OptimizeReport {
	rep := &OptimizeReport{
		Base:       r.Base,
		Suite:      r.Suite,
		Ops:        r.NumOps,
		Axes:       r.Axes,
		BaseValues: r.BaseValues,
		Objective:  r.Objective,
		Algorithm:  r.Algorithm,
		GridCells:  r.GridCells,
		Probes:     r.Probes,
		Rungs:      r.Rungs,
		Refits:     r.Refits,
		Truncated:  r.Truncated,
		BaseCPI:    r.BaseCPI,
		CPIBudget:  r.CPIBudget,
		Sims: RunSourcing{
			StoreHits: r.Stats.Hits,
			Simulated: r.Stats.Simulated,
			TraceGens: r.Stats.TraceGens,
		},
	}
	if r.Best != nil {
		rep.Best = pointReport(r.Best)
	}
	for i := range r.Frontier {
		rep.Frontier = append(rep.Frontier, *pointReport(&r.Frontier[i]))
	}
	return rep
}

// RunOptimize executes the optimization standalone: the base suite is
// simulated (through opts.Store when configured) and fitted here, then
// the grid is searched. The result's Stats include the base fit. For a
// long-running caller that wants the base fit cached and deduplicated
// across optimizations, use Provider.Optimize.
func RunOptimize(o *Optimize, opts Options) (*OptimizeResult, error) {
	return RunOptimizeContext(context.Background(), o, opts, nil)
}

// RunOptimizeContext is RunOptimize with cancellation and a probe hook:
// cancelling ctx stops the dispatch of new simulations and returns
// ctx.Err(), with every completed run already persisted to the store so
// a rerun resumes warm. onProbe, when non-nil, is called after each
// batch of full-fidelity probes with the cumulative probe count (calls
// are never concurrent). The async Jobs engine runs optimize jobs
// through here.
func RunOptimizeContext(ctx context.Context, o *Optimize, opts Options, onProbe func(done int)) (*OptimizeResult, error) {
	opts = opts.withDefaults()
	suite, err := suites.ByName(o.Plan.Suite, suites.Options{NumOps: opts.NumOps, SeedBase: opts.SeedBase})
	if err != nil {
		return nil, err
	}
	base := o.Plan.Base
	jobs := make([]simJob, 0, len(suite.Workloads))
	for _, w := range suite.Workloads {
		jobs = append(jobs, simJob{machine: base, spec: w,
			run: RunKey{Machine: base.Name, Suite: o.Plan.Suite, Workload: w.Name}})
	}
	runs := make(map[string]*sim.Result, len(jobs))
	baseSt, err := runSimJobs(ctx, jobs, opts, func(rk RunKey, r *sim.Result) {
		runs[rk.Workload] = r
	})
	if err != nil {
		return nil, err
	}
	obs, err := observationsFor(base.Name, suite, func(workload string) (*sim.Result, error) {
		r, ok := runs[workload]
		if !ok {
			return nil, fmt.Errorf("experiments: missing run for %s/%s on %s", o.Plan.Suite, workload, base.Name)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	model, err := fitModel(base, obs, opts)
	if err != nil {
		return nil, err
	}
	f := &Fitted{Machine: base, Suite: suite, Model: model, Obs: obs, Runs: runs}
	res, st, err := runOptimize(ctx, o, f, opts, onProbe)
	if err != nil {
		return nil, err
	}
	res.Stats = SimStats{
		Hits:      baseSt.Hits + st.Hits,
		Simulated: baseSt.Simulated + st.Simulated,
		TraceGens: baseSt.TraceGens + st.TraceGens,
	}
	return res, nil
}

// optimizer is one search execution over a resolved grid: the probe
// memo (full-fidelity cells are evaluated at most once, no matter how
// many axis lines or scalarizations revisit them), the reduced-fidelity
// screen cache, and the counters the result reports.
type optimizer struct {
	ctx     context.Context
	o       *Optimize
	base    *Fitted
	opts    Options
	onProbe func(done int)

	maxProbes int
	budgetCPI float64 // resolved absolute budget; 0 = none
	baseCPI   float64
	baseCost  float64

	memo      map[int]*OptimizePoint // full-fidelity probes by cell index
	low       map[lowKey]*OptimizePoint
	rungEvals map[int]int // reduced-fidelity evaluations by ops
	stats     SimStats
	refits    int
	truncated bool
}

type lowKey struct {
	ops  int
	cell int
}

// better orders two probed points under an objective; it must be a
// strict order (a point never beats itself) so the descent terminates.
type better func(a, b *OptimizePoint) bool

// runOptimize searches the grid against an already-fitted base — the
// shared back half of RunOptimize and Provider.Optimize. The returned
// SimStats cover the probe simulations only (the caller accounts for the
// base fit).
func runOptimize(ctx context.Context, o *Optimize, base *Fitted, opts Options, onProbe func(done int)) (*OptimizeResult, SimStats, error) {
	z := &optimizer{
		ctx:       ctx,
		o:         o,
		base:      base,
		opts:      opts,
		onProbe:   onProbe,
		maxProbes: o.ProbeBound(),
		baseCost:  float64(len(o.Plan.Axes)),
		memo:      map[int]*OptimizePoint{},
		low:       map[lowKey]*OptimizePoint{},
		rungEvals: map[int]int{},
	}
	cpis := make([]float64, 0, len(base.Obs))
	for i := range base.Obs {
		cpis = append(cpis, base.Obs[i].MeasuredCPI)
	}
	z.baseCPI = stats.Mean(cpis)
	switch {
	case o.Objective.CPIBudget > 0:
		z.budgetCPI = o.Objective.CPIBudget
	case o.Objective.CPISlack > 0:
		z.budgetCPI = z.baseCPI * (1 + o.Objective.CPISlack)
	}

	res := &OptimizeResult{
		Base:       o.Plan.Base.Name,
		Suite:      o.Plan.Suite,
		NumOps:     opts.NumOps,
		Axes:       o.Plan.Axes,
		BaseValues: o.Plan.BaseValues(),
		Objective:  o.Objective,
		Algorithm:  o.Search.Algorithm,
		GridCells:  len(o.Plan.Cells),
		BaseCPI:    z.baseCPI,
		CPIBudget:  z.budgetCPI,
	}

	var err error
	if o.Objective.Kind == ObjectivePareto {
		res.Frontier, err = z.pareto()
	} else {
		res.Best, err = z.search(z.scalarBetter())
	}
	if err != nil {
		return nil, z.stats, err
	}
	res.Probes = len(z.memo)
	res.Refits = z.refits
	res.Truncated = z.truncated
	for ops := range z.rungEvals {
		res.Rungs = append(res.Rungs, OptimizeRung{Ops: ops, Probes: z.rungEvals[ops]})
	}
	sort.Slice(res.Rungs, func(a, b int) bool { return res.Rungs[a].Ops < res.Rungs[b].Ops })
	res.Stats = z.stats
	return res, z.stats, nil
}

// search runs the configured algorithm under one comparator.
func (z *optimizer) search(b better) (*OptimizePoint, error) {
	if z.o.Search.Algorithm == SearchSuccessiveHalving {
		return z.successiveHalving(b)
	}
	return z.coordinateDescent(b)
}

// scalarBetter builds the comparator for the scalar objectives. Ties
// break toward lower cost, then lower CPI, then lexicographically
// smaller axis values, so identical inputs always elect the same cell.
func (z *optimizer) scalarBetter() better {
	if z.o.Objective.Kind == ObjectiveMinCost {
		// Feasibility first, then cost, then CPI: among machines meeting
		// the budget, the cheapest wins; with no feasible probe yet, the
		// comparator still totally orders the infeasible ones.
		return func(a, b *OptimizePoint) bool {
			if a.Feasible != b.Feasible {
				return a.Feasible
			}
			if a.Cost != b.Cost {
				return a.Cost < b.Cost
			}
			if a.ModelCPI != b.ModelCPI {
				return a.ModelCPI < b.ModelCPI
			}
			return lexLess(a.Values, b.Values)
		}
	}
	return func(a, b *OptimizePoint) bool {
		if a.ModelCPI != b.ModelCPI {
			return a.ModelCPI < b.ModelCPI
		}
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return lexLess(a.Values, b.Values)
	}
}

// weightedBetter builds one pareto scalarization: a weighted sum of the
// base-normalized CPI and cost. λ=1 is pure CPI, λ=0 pure cost.
func (z *optimizer) weightedBetter(lambda float64) better {
	score := func(p *OptimizePoint) float64 {
		return lambda*(p.ModelCPI/z.baseCPI) + (1-lambda)*(p.Cost/z.baseCost)
	}
	return func(a, b *OptimizePoint) bool {
		sa, sb := score(a), score(b)
		if sa != sb {
			return sa < sb
		}
		return lexLess(a.Values, b.Values)
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// flat maps per-axis value indices to the row-major (last axis fastest)
// cell index NewPlan enumerated.
func (z *optimizer) flat(coords []int) int {
	idx := 0
	for i, ax := range z.o.Plan.Axes {
		idx = idx*len(ax.Values) + coords[i]
	}
	return idx
}

// coordsOf inverts a cell's axis values back to per-axis indices.
func (z *optimizer) coordsOf(values []int) []int {
	out := make([]int, len(values))
	for i, ax := range z.o.Plan.Axes {
		for vi, v := range ax.Values {
			if v == values[i] {
				out[i] = vi
				break
			}
		}
	}
	return out
}

// startCoords picks the grid cell nearest the base machine (smallest
// per-axis log2 distance, first value on ties) — the cell where the
// frozen-base extrapolation is most trustworthy, so the descent starts
// from solid ground.
func (z *optimizer) startCoords() []int {
	baseVals := z.o.Plan.BaseValues()
	out := make([]int, len(z.o.Plan.Axes))
	for i, ax := range z.o.Plan.Axes {
		bestD := math.Inf(1)
		for vi, v := range ax.Values {
			d := math.Abs(math.Log2(float64(v) / float64(baseVals[i])))
			if d < bestD {
				bestD = d
				out[i] = vi
			}
		}
	}
	return out
}

// distance is the cell's trust-radius metric: the max over axes of
// |log2(value/baseValue)| — how many doublings the probe sits from the
// fit point on its most-stretched axis.
func (z *optimizer) distance(values []int) float64 {
	baseVals := z.o.Plan.BaseValues()
	d := 0.0
	for i, v := range values {
		if a := math.Abs(math.Log2(float64(v) / float64(baseVals[i]))); a > d {
			d = a
		}
	}
	return d
}

// cost is the hardware-cost proxy: the sum over axes of value/baseValue
// ratios, inverted on CostDown axes (lower memory latency = pricier
// memory). The base point costs exactly len(axes); doubling one
// capacity axis adds 1.
func (z *optimizer) cost(values []int) float64 {
	baseVals := z.o.Plan.BaseValues()
	c := 0.0
	for i, v := range values {
		var r float64
		if z.o.Plan.params[i].CostDown {
			r = float64(baseVals[i]) / float64(v)
		} else {
			r = float64(v) / float64(baseVals[i])
		}
		c += r
	}
	return c
}

// evalCells simulates the given cells' machines over one suite
// instantiation (through the run store, with traces shared workload-wise
// across the batch) and turns each into an OptimizePoint: the base fit's
// frozen coefficients extrapolated with the cell's own machine
// parameters and measured counters — or, when allowRefit is set and the
// cell sits beyond the trust radius, a model re-fitted at the cell.
func (z *optimizer) evalCells(suite suites.Suite, idxs []int, allowRefit bool) (map[int]*OptimizePoint, error) {
	jobs := make([]simJob, 0, len(idxs)*len(suite.Workloads))
	cellOf := make(map[string]int, len(idxs))
	for _, idx := range idxs {
		m := z.o.Plan.Machines[1+idx]
		cellOf[m.Name] = idx
		for _, w := range suite.Workloads {
			jobs = append(jobs, simJob{machine: m, spec: w,
				run: RunKey{Machine: m.Name, Suite: z.o.Plan.Suite, Workload: w.Name}})
		}
	}
	runs := make(map[int]map[string]*sim.Result, len(idxs))
	st, err := runSimJobs(z.ctx, jobs, z.opts, func(rk RunKey, r *sim.Result) {
		c := cellOf[rk.Machine]
		if runs[c] == nil {
			runs[c] = make(map[string]*sim.Result, len(suite.Workloads))
		}
		runs[c][rk.Workload] = r
	})
	z.stats.Hits += st.Hits
	z.stats.Simulated += st.Simulated
	z.stats.TraceGens += st.TraceGens
	if err != nil {
		return nil, err
	}

	out := make(map[int]*OptimizePoint, len(idxs))
	for _, idx := range idxs {
		m := z.o.Plan.Machines[1+idx]
		cellRuns := runs[idx]
		obs, err := observationsFor(m.Name, suite, func(workload string) (*sim.Result, error) {
			r, ok := cellRuns[workload]
			if !ok {
				return nil, fmt.Errorf("experiments: missing run for %s/%s on %s", z.o.Plan.Suite, workload, m.Name)
			}
			return r, nil
		})
		if err != nil {
			return nil, err
		}
		values := z.o.Plan.Cells[idx]
		pt := &OptimizePoint{
			Values:   values,
			Machine:  m.Name,
			Cost:     z.cost(values),
			Distance: z.distance(values),
		}
		p := z.base.Model.P
		if allowRefit && pt.Distance > z.o.Search.TrustRadius {
			model, err := fitModel(m, obs, z.opts)
			if err != nil {
				return nil, err
			}
			p = model.P
			pt.Refit = true
			z.refits++
		}
		extrap := &core.Model{Machine: m.Params(), P: p}
		n := float64(len(obs))
		for i := range obs {
			o := &obs[i]
			pt.SimCPI += o.MeasuredCPI / n
			pt.ModelCPI += extrap.PredictCPI(o.Feat) / n
			ms := extrap.Stack(o.Feat)
			r := cellRuns[o.Name]
			ts := r.Truth.CPIStack(r.Counters.Uops)
			for _, c := range sim.Components() {
				pt.SimStack.Cycles[c] += ts.Cycles[c] / n
				pt.ModelStack.Cycles[c] += ms.Cycles[c] / n
			}
		}
		pt.Feasible = z.budgetCPI == 0 || pt.ModelCPI <= z.budgetCPI
		out[idx] = pt
	}
	return out, nil
}

// probeFull evaluates cells at full fidelity, memoized: revisited cells
// are free, and the probe budget (MaxProbes) is charged only for fresh
// evaluations — when it runs out, the remaining requests are dropped and
// the search is marked truncated.
func (z *optimizer) probeFull(idxs []int) error {
	var missing []int
	seen := map[int]bool{}
	for _, idx := range idxs {
		if _, ok := z.memo[idx]; !ok && !seen[idx] {
			seen[idx] = true
			missing = append(missing, idx)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if room := z.maxProbes - len(z.memo); len(missing) > room {
		missing = missing[:room]
		z.truncated = true
	}
	if len(missing) == 0 {
		return nil
	}
	pts, err := z.evalCells(z.base.Suite, missing, true)
	if err != nil {
		return err
	}
	for idx, pt := range pts {
		z.memo[idx] = pt
	}
	if z.onProbe != nil {
		z.onProbe(len(z.memo))
	}
	return nil
}

// probeLow evaluates cells at a reduced µop count for successive-halving
// screens, cached per (ops, cell) so pareto's repeated scalarizations
// never re-screen. No re-fits at reduced fidelity: the screen only ranks
// candidates, and the full-fidelity final rung re-judges the survivors.
func (z *optimizer) probeLow(ops int, idxs []int) (map[int]*OptimizePoint, error) {
	out := make(map[int]*OptimizePoint, len(idxs))
	var missing []int
	for _, idx := range idxs {
		if pt, ok := z.low[lowKey{ops, idx}]; ok {
			out[idx] = pt
		} else {
			missing = append(missing, idx)
		}
	}
	if len(missing) == 0 {
		return out, nil
	}
	suite, err := suites.ByName(z.o.Plan.Suite, suites.Options{NumOps: ops, SeedBase: z.opts.SeedBase})
	if err != nil {
		return nil, err
	}
	pts, err := z.evalCells(suite, missing, false)
	if err != nil {
		return nil, err
	}
	z.rungEvals[ops] += len(missing)
	for idx, pt := range pts {
		z.low[lowKey{ops, idx}] = pt
		out[idx] = pt
	}
	return out, nil
}

// bestProbed returns the comparator-minimum over every full-fidelity
// probe so far, scanning cells in index order so ties are deterministic.
func (z *optimizer) bestProbed(b better) *OptimizePoint {
	idxs := make([]int, 0, len(z.memo))
	for idx := range z.memo {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var best *OptimizePoint
	for _, idx := range idxs {
		if pt := z.memo[idx]; best == nil || b(pt, best) {
			best = pt
		}
	}
	return best
}

// coordinateDescent starts at the cell nearest the base point and
// repeatedly probes whole axis lines through the incumbent, moving to
// the line's best cell, until a full pass over the axes improves
// nothing. Probes are batched per line (sharing traces workload-wise)
// and memoized, so a descent typically pays a few lines — not the grid.
func (z *optimizer) coordinateDescent(b better) (*OptimizePoint, error) {
	if err := z.probeFull([]int{z.flat(z.startCoords())}); err != nil {
		return nil, err
	}
	best := z.bestProbed(b)
	if best == nil {
		return nil, fmt.Errorf("experiments: optimize probed no cells")
	}
	for {
		prev := best
		cur := z.coordsOf(best.Values)
		for ax := range z.o.Plan.Axes {
			line := make([]int, 0, len(z.o.Plan.Axes[ax].Values))
			coords := append([]int(nil), cur...)
			for vi := range z.o.Plan.Axes[ax].Values {
				coords[ax] = vi
				line = append(line, z.flat(coords))
			}
			if err := z.probeFull(line); err != nil {
				return nil, err
			}
			if nb := z.bestProbed(b); nb != best {
				best = nb
				cur = z.coordsOf(best.Values)
			}
		}
		if best == prev {
			return best, nil
		}
	}
}

// successiveHalving screens every cell at the cheapest rung's reduced
// µop count, promotes the better half rung by rung (each rung doubling
// the fidelity), and evaluates only the last rung's survivors at full
// fidelity. The store keys reduced-ops runs separately, so screens warm
// the store for reruns without polluting full-fidelity results.
func (z *optimizer) successiveHalving(b better) (*OptimizePoint, error) {
	cand := make([]int, len(z.o.Plan.Cells))
	for i := range cand {
		cand[i] = i
	}
	sizes := z.rungSizes()
	for r := 0; r < z.o.Search.Rungs-1; r++ {
		ops := z.rungOps(r)
		pts, err := z.probeLow(ops, cand)
		if err != nil {
			return nil, err
		}
		sort.SliceStable(cand, func(i, j int) bool { return b(pts[cand[i]], pts[cand[j]]) })
		cand = cand[:sizes[r+1]]
	}
	if err := z.probeFull(cand); err != nil {
		return nil, err
	}
	return z.bestProbed(b), nil
}

// rungSizes delegates to the resolved spec (shared with runBound).
func (z *optimizer) rungSizes() []int { return z.o.rungSizes() }

// rungOps is rung r's µop count: the full count halved once per
// remaining rung, floored at 500 so a screen still exercises every
// workload phase.
func (z *optimizer) rungOps(r int) int {
	ops := z.opts.NumOps >> (z.o.Search.Rungs - 1 - r)
	if ops < 500 {
		ops = 500
	}
	if ops > z.opts.NumOps {
		ops = z.opts.NumOps
	}
	return ops
}

// pareto maps the CPI/cost trade-off: the scalar search runs once per
// weighted-sum scalarization (λ from pure-cost to pure-CPI), all sharing
// one probe memo, and the frontier is the non-dominated set of every
// cell probed along the way. Weighted sums find the frontier's convex
// (supported) points; cells probed en route can fill in the rest, but a
// strongly non-convex frontier may be under-sampled — raise
// objective.points or maxProbes to sharpen it.
func (z *optimizer) pareto() ([]OptimizePoint, error) {
	k := z.o.Objective.Points
	for i := 0; i < k; i++ {
		lambda := float64(i) / float64(k-1)
		if _, err := z.search(z.weightedBetter(lambda)); err != nil {
			return nil, err
		}
	}
	idxs := make([]int, 0, len(z.memo))
	for idx := range z.memo {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	var frontier []OptimizePoint
	for _, i := range idxs {
		p := z.memo[i]
		if !p.Feasible {
			continue
		}
		dominated := false
		for _, j := range idxs {
			q := z.memo[j]
			if !q.Feasible || q == p {
				continue
			}
			if q.ModelCPI <= p.ModelCPI && q.Cost <= p.Cost &&
				(q.ModelCPI < p.ModelCPI || q.Cost < p.Cost) {
				dominated = true
				break
			}
		}
		if !dominated {
			frontier = append(frontier, *p)
		}
	}
	sort.Slice(frontier, func(a, b int) bool {
		if frontier[a].ModelCPI != frontier[b].ModelCPI {
			return frontier[a].ModelCPI < frontier[b].ModelCPI
		}
		if frontier[a].Cost != frontier[b].Cost {
			return frontier[a].Cost < frontier[b].Cost
		}
		return lexLess(frontier[a].Values, frontier[b].Values)
	})
	return frontier, nil
}

// Render returns the optimization as text: the search header, the probe
// economics (what the search paid vs exhaustive enumeration), and the
// winner — or the frontier — each with its per-component model CPI
// stack, so the trade-off each point buys is visible at a glance.
func (r *OptimizeResult) Render() string {
	var b strings.Builder
	var axisNames []string
	var fitAt []string
	for i, ax := range r.Axes {
		axisNames = append(axisNames, ax.Param)
		fitAt = append(fitAt, fmt.Sprintf("%s=%d", ax.Param, r.BaseValues[i]))
	}
	fmt.Fprintf(&b, "optimize: %s over %s on %s (%d-cell grid, %d µops/workload; objective %s, %s; fitted at %s)\n",
		r.Base, strings.Join(axisNames, "×"), r.Suite, r.GridCells, r.NumOps,
		r.Objective.Kind, r.Algorithm, strings.Join(fitAt, " "))
	if r.CPIBudget > 0 {
		fmt.Fprintf(&b, "budget: suite-mean CPI ≤ %.4f (base %.4f)\n", r.CPIBudget, r.BaseCPI)
	}
	fmt.Fprintf(&b, "probes: %d of %d grid cells at full fidelity", r.Probes, r.GridCells)
	for _, rung := range r.Rungs {
		fmt.Fprintf(&b, " + %d at %d µops", rung.Probes, rung.Ops)
	}
	fmt.Fprintf(&b, "; %d re-fit beyond trust radius", r.Refits)
	if r.Truncated {
		fmt.Fprintf(&b, "; probe budget exhausted")
	}
	fmt.Fprintf(&b, "\n")

	point := func(label string, p *OptimizePoint) {
		var vals []string
		for i, ax := range r.Axes {
			vals = append(vals, fmt.Sprintf("%s=%d", ax.Param, p.Values[i]))
		}
		how := "extrapolated"
		if p.Refit {
			how = "re-fitted"
		}
		fmt.Fprintf(&b, "%s: %s (%s)  sim-CPI %.4f  model-CPI %.4f (%s)  cost %.2f\n",
			label, p.Machine, strings.Join(vals, " "), p.SimCPI, p.ModelCPI, how, p.Cost)
		if !p.Feasible {
			fmt.Fprintf(&b, "  over budget: no probed cell met the CPI budget\n")
		}
		fmt.Fprintf(&b, "  model stack:%s\n", renderStack(p.ModelStack))
	}
	if r.Best != nil {
		point("best", r.Best)
	}
	if len(r.Frontier) > 0 {
		fmt.Fprintf(&b, "pareto frontier: %d non-dominated points (CPI vs cost)\n", len(r.Frontier))
		for i := range r.Frontier {
			point(fmt.Sprintf("  [%d]", i+1), &r.Frontier[i])
		}
	}
	return b.String()
}

func renderStack(st sim.Stack) string {
	var b strings.Builder
	for _, c := range sim.Components() {
		fmt.Fprintf(&b, " %s %.4f", c.String(), st.Cycles[c])
	}
	return b.String()
}
