package experiments

import (
	"strings"
	"testing"

	"repro/internal/runstore"
	"repro/internal/uarch"
)

func TestSweepParamByName(t *testing.T) {
	for _, p := range SweepParams() {
		got, err := SweepParamByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("%s: %v", p.Name, err)
		}
		base := uarch.CoreTwo()
		if v := p.Get(base); v <= 0 {
			t.Errorf("%s: base value %d", p.Name, v)
		}
		d, err := uarch.Derive(base, "x-"+p.Name, p.Set(p.Get(base)*2))
		if err != nil {
			t.Errorf("%s: derive: %v", p.Name, err)
		} else if p.Get(d) != p.Get(base)*2 {
			t.Errorf("%s: override did not land (%d vs %d)", p.Name, p.Get(d), p.Get(base)*2)
		}
	}
	_, err := SweepParamByName("cores")
	if err == nil || !strings.Contains(err.Error(), "rob") {
		t.Errorf("unknown param error should list valid names: %v", err)
	}
}

func TestRunSweepIncrementalThroughStore(t *testing.T) {
	sn := tinySuite(t)
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumOps: 3000, FitStarts: 2, Store: store}

	cold, err := RunSweep(uarch.CoreTwo(), "mshrs", []int{1, 4, 8}, sn, opts)
	if err != nil {
		t.Fatal(err)
	}
	// 4 machines (base + 3 points) × 12 workloads, all simulated cold.
	if cold.Stats.Hits != 0 || cold.Stats.Simulated != 48 {
		t.Errorf("cold stats %+v, want 0 hits / 48 simulated", cold.Stats)
	}
	if len(cold.Points) != 3 || cold.BaseValue != 8 {
		t.Fatalf("sweep shape wrong: %+v", cold)
	}
	for _, p := range cold.Points {
		if p.SimCPI <= 0 || p.ModelCPI <= 0 {
			t.Errorf("point %d: degenerate CPIs %+v", p.Value, p)
		}
		if p.SimStack.Total() == 0 {
			t.Errorf("point %d: empty ground-truth stack", p.Value)
		}
	}
	// Starving MSHRs must hurt: simulated CPI at 1 MSHR strictly above 8.
	if !(cold.Points[0].SimCPI > cold.Points[2].SimCPI) {
		t.Errorf("MSHR starvation should raise CPI: %+v", cold.Points)
	}

	warm, err := RunSweep(uarch.CoreTwo(), "mshrs", []int{1, 4, 8}, sn, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Hits != 48 || warm.Stats.Simulated != 0 {
		t.Errorf("warm stats %+v, want 48 hits / 0 simulated", warm.Stats)
	}
	if warm.Render() != cold.Render() {
		t.Error("warm sweep output differs from cold")
	}

	text := cold.Render()
	for _, want := range []string{"model fitted at mshrs=8", "sim-CPI", "llc-load", "simulated|model"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered sweep missing %q:\n%s", want, text)
		}
	}
}

func TestRunSweepRejectsBadInput(t *testing.T) {
	base := uarch.CoreTwo()
	if _, err := RunSweep(base, "cores", []int{1}, "cpu2000", Options{NumOps: 1000}); err == nil {
		t.Error("unknown param should fail")
	}
	if _, err := RunSweep(base, "rob", nil, "cpu2000", Options{NumOps: 1000}); err == nil {
		t.Error("empty values should fail")
	}
	if _, err := RunSweep(base, "rob", []int{64, 64}, "cpu2000", Options{NumOps: 1000}); err == nil {
		t.Error("duplicate values should fail")
	}
	if _, err := RunSweep(base, "rob", []int{0, 64}, "cpu2000", Options{NumOps: 1000}); err == nil {
		t.Error("non-positive value should fail (zero override would mislabel a base rerun)")
	}
	if _, err := RunSweep(base, "rob", []int{64}, "cpu2017", Options{NumOps: 1000}); err == nil {
		t.Error("unknown suite should fail")
	}
	if _, err := RunSweep(base, "l2kb", []int{3}, "cpu2000", Options{NumOps: 1000}); err == nil {
		t.Error("geometrically invalid derived machine should fail")
	}
}
