package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// SweepPoint is one swept machine: its parameter value, the mean
// simulated behaviour of the suite, and the extrapolated model's
// prediction for the same point.
type SweepPoint struct {
	Value   int
	Machine string
	// SimCPI and ModelCPI are suite-mean CPIs: the simulator's measured
	// value vs the base-fitted model extrapolated to this configuration.
	SimCPI   float64
	ModelCPI float64
	// SimStack and ModelStack are suite-mean per-µop cycle stacks
	// (ground-truth accounting vs model decomposition).
	SimStack   sim.Stack
	ModelStack sim.Stack
}

// Err returns the model's relative CPI error at this point.
func (p SweepPoint) Err() float64 { return stats.RelErr(p.ModelCPI, p.SimCPI) }

// SweepResult is a one-axis sensitivity experiment: the model is fitted
// once at the base configuration and extrapolated — empirical
// coefficients frozen, machine parameters and counters updated — to each
// swept configuration, the model-extrapolation study the paper gestures
// at but never runs. It is the single-axis projection of a PlanResult.
type SweepResult struct {
	Base      string
	Param     SweepParam
	BaseValue int
	Suite     string
	NumOps    int
	Points    []SweepPoint
	Stats     SimStats
}

// RunSweep simulates base and one derived machine per value on the named
// suite (through opts.Store when configured, so reruns are incremental),
// fits the model at base, and evaluates it at every point. It is a thin
// adapter over the plan engine: a one-axis Plan executed by RunPlan,
// projected back into the sweep shape — values, machine names, and every
// float bit-identical to the pre-plan implementation. For a long-running
// caller that wants the base fit cached and deduplicated across sweeps,
// use Provider.Sweep.
func RunSweep(base *uarch.Machine, param string, values []int, suiteName string, opts Options) (*SweepResult, error) {
	return RunSweepContext(context.Background(), base, param, values, suiteName, opts)
}

// RunSweepContext is RunSweep with cancellation: cancelling ctx stops
// the dispatch of new point simulations and skips the fit, returning
// ctx.Err(). Completed simulations stay in the store, so a rerun
// resumes warm. The async Jobs engine runs sweep jobs through here.
func RunSweepContext(ctx context.Context, base *uarch.Machine, param string, values []int, suiteName string, opts Options) (*SweepResult, error) {
	p, err := NewPlan(base, []PlanAxis{{Param: param, Values: values}}, suiteName)
	if err != nil {
		return nil, err
	}
	res, err := RunPlanContext(ctx, p, opts)
	if err != nil {
		return nil, err
	}
	return sweepFromPlan(res)
}

// ValidateSweepValues rejects value lists a sweep or plan axis cannot
// run: empty, non-positive (overrides treat zero as "keep base", which
// would silently mislabel the point as a second base run), or
// duplicated (which would silently double-simulate the same cell).
// This is the single validation source for plans, sweeps and the
// serving layer's request checking.
func ValidateSweepValues(values []int) error {
	if len(values) == 0 {
		return fmt.Errorf("experiments: sweep needs at least one value")
	}
	seen := map[int]bool{}
	for _, v := range values {
		if v <= 0 {
			return fmt.Errorf("experiments: sweep value %d must be positive", v)
		}
		if seen[v] {
			return fmt.Errorf("experiments: sweep value %d listed twice", v)
		}
		seen[v] = true
	}
	return nil
}

// sweepFromPlan projects a single-axis plan result into the sweep
// shape. The floats are carried over untouched, so the projection
// preserves bit-identity with the legacy sweep computation.
func sweepFromPlan(res *PlanResult) (*SweepResult, error) {
	if len(res.Axes) != 1 {
		return nil, fmt.Errorf("experiments: sweep projection of a %d-axis plan", len(res.Axes))
	}
	sp, err := SweepParamByName(res.Axes[0].Param)
	if err != nil {
		return nil, err
	}
	out := &SweepResult{
		Base:      res.Base,
		Param:     sp,
		BaseValue: res.BaseValues[0],
		Suite:     res.Suite,
		NumOps:    res.NumOps,
		Stats:     res.Stats,
	}
	for _, pt := range res.Points {
		out.Points = append(out.Points, SweepPoint{
			Value:      pt.Values[0],
			Machine:    pt.Machine,
			SimCPI:     pt.SimCPI,
			ModelCPI:   pt.ModelCPI,
			SimStack:   pt.SimStack,
			ModelStack: pt.ModelStack,
		})
	}
	return out, nil
}

// Render returns the sensitivity tables as text: suite-mean simulated vs
// model-predicted CPI per swept value, then the per-component breakdown.
func (r *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %s %s on %s (%d µops/workload; model fitted at %s=%d)\n",
		r.Base, r.Param.Name, r.Suite, r.NumOps, r.Param.Name, r.BaseValue)
	fmt.Fprintf(&b, "  %8s %9s %10s %7s\n", r.Param.Name, "sim-CPI", "model-CPI", "err")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %8d %9.4f %10.4f %6.1f%%\n", p.Value, p.SimCPI, p.ModelCPI, 100*p.Err())
	}
	b.WriteString("\ncomponent sensitivity (suite-mean cycles/µop, simulated vs model):\n")
	// Only components that matter somewhere in the sweep get a column.
	var comps []sim.Component
	for _, c := range sim.Components() {
		for _, p := range r.Points {
			if p.SimStack.Cycles[c] >= 0.001 || p.ModelStack.Cycles[c] >= 0.001 {
				comps = append(comps, c)
				break
			}
		}
	}
	fmt.Fprintf(&b, "  %8s", r.Param.Name)
	for _, c := range comps {
		fmt.Fprintf(&b, " %17s", c)
	}
	b.WriteByte('\n')
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %8d", p.Value)
		for _, c := range comps {
			fmt.Fprintf(&b, "   %7.4f|%7.4f", p.SimStack.Cycles[c], p.ModelStack.Cycles[c])
		}
		b.WriteByte('\n')
	}
	b.WriteString("  (format: simulated|model)\n")
	return b.String()
}
