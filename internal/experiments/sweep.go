package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/suites"
	"repro/internal/uarch"
)

// SweepParam is one sweepable machine axis: a name, a reader for the
// base value, and a translation of a swept value into machine overrides.
type SweepParam struct {
	Name string
	Doc  string
	Get  func(*uarch.Machine) int
	Set  func(int) uarch.Overrides
}

// SweepParams lists the sweepable axes in display order.
func SweepParams() []SweepParam {
	return []SweepParam{
		{"rob", "reorder-buffer entries",
			func(m *uarch.Machine) int { return m.ROBSize },
			func(v int) uarch.Overrides { return uarch.Overrides{ROBSize: v} }},
		{"mshrs", "outstanding memory misses",
			func(m *uarch.Machine) int { return m.MSHRs },
			func(v int) uarch.Overrides { return uarch.Overrides{MSHRs: v} }},
		{"memlat", "main-memory latency (cycles)",
			func(m *uarch.Machine) int { return m.MemLat },
			func(v int) uarch.Overrides { return uarch.Overrides{MemLat: v} }},
		{"depth", "front-end pipeline depth",
			func(m *uarch.Machine) int { return m.FrontEndDepth },
			func(v int) uarch.Overrides { return uarch.Overrides{FrontEndDepth: v} }},
		{"width", "dispatch/issue/commit width",
			func(m *uarch.Machine) int { return m.DispatchWidth },
			func(v int) uarch.Overrides {
				return uarch.Overrides{DispatchWidth: v, IssueWidth: v, CommitWidth: v}
			}},
		{"l2kb", "L2 capacity (KB)",
			func(m *uarch.Machine) int { return m.L2.SizeBytes >> 10 },
			func(v int) uarch.Overrides {
				return uarch.Overrides{L2: uarch.CacheOverrides{SizeBytes: v << 10}}
			}},
	}
}

// SweepParamByName resolves a sweep axis; unknown names list the valid
// ones.
func SweepParamByName(name string) (SweepParam, error) {
	var known []string
	for _, p := range SweepParams() {
		if p.Name == name {
			return p, nil
		}
		known = append(known, p.Name)
	}
	return SweepParam{}, fmt.Errorf("experiments: unknown sweep parameter %q (want one of %s)",
		name, strings.Join(known, ", "))
}

// SweepPoint is one swept machine: its parameter value, the mean
// simulated behaviour of the suite, and the extrapolated model's
// prediction for the same point.
type SweepPoint struct {
	Value   int
	Machine string
	// SimCPI and ModelCPI are suite-mean CPIs: the simulator's measured
	// value vs the base-fitted model extrapolated to this configuration.
	SimCPI   float64
	ModelCPI float64
	// SimStack and ModelStack are suite-mean per-µop cycle stacks
	// (ground-truth accounting vs model decomposition).
	SimStack   sim.Stack
	ModelStack sim.Stack
}

// Err returns the model's relative CPI error at this point.
func (p SweepPoint) Err() float64 { return stats.RelErr(p.ModelCPI, p.SimCPI) }

// SweepResult is a one-axis sensitivity experiment: the model is fitted
// once at the base configuration and extrapolated — empirical
// coefficients frozen, machine parameters and counters updated — to each
// swept configuration, the model-extrapolation study the paper gestures
// at but never runs.
type SweepResult struct {
	Base      string
	Param     SweepParam
	BaseValue int
	Suite     string
	NumOps    int
	Points    []SweepPoint
	Stats     SimStats
}

// RunSweep simulates base and one derived machine per value on the named
// suite (through opts.Store when configured, so reruns are incremental),
// fits the model at base, and evaluates it at every point. For a
// long-running caller that wants the base fit cached and deduplicated
// across sweeps, use Provider.Sweep, which shares the extrapolation
// below.
func RunSweep(base *uarch.Machine, param string, values []int, suiteName string, opts Options) (*SweepResult, error) {
	return RunSweepContext(context.Background(), base, param, values, suiteName, opts)
}

// RunSweepContext is RunSweep with cancellation: cancelling ctx stops
// the dispatch of new point simulations and skips the fit, returning
// ctx.Err(). Completed simulations stay in the store, so a rerun
// resumes warm. The async Jobs engine runs sweep jobs through here.
func RunSweepContext(ctx context.Context, base *uarch.Machine, param string, values []int, suiteName string, opts Options) (*SweepResult, error) {
	opts = opts.withDefaults()
	p, machines, err := sweepMachines(base, param, values)
	if err != nil {
		return nil, err
	}
	suite, err := suites.ByName(suiteName, suites.Options{NumOps: opts.NumOps})
	if err != nil {
		return nil, err
	}
	lab, err := NewCustomLab(machines, []suites.Suite{suite}, opts)
	if err != nil {
		return nil, err
	}
	if err := lab.SimulateContext(ctx); err != nil {
		return nil, err
	}
	fitted, err := lab.Model(base.Name, suiteName)
	if err != nil {
		return nil, err
	}
	return sweepResult(lab, base, p, suiteName, fitted)
}

// ValidateSweepValues rejects value lists a sweep cannot run: empty,
// non-positive (overrides treat zero as "keep base", which would
// silently mislabel the point as a second base run), or duplicated.
// This is the single validation source for RunSweep, Provider.Sweep and
// the serving layer's request checking.
func ValidateSweepValues(values []int) error {
	if len(values) == 0 {
		return fmt.Errorf("experiments: sweep needs at least one value")
	}
	seen := map[int]bool{}
	for _, v := range values {
		if v <= 0 {
			return fmt.Errorf("experiments: sweep value %d must be positive", v)
		}
		if seen[v] {
			return fmt.Errorf("experiments: sweep value %d listed twice", v)
		}
		seen[v] = true
	}
	return nil
}

// sweepMachines validates the swept values and derives one machine per
// value from base; machines[0] is base itself.
func sweepMachines(base *uarch.Machine, param string, values []int) (SweepParam, []*uarch.Machine, error) {
	p, err := SweepParamByName(param)
	if err != nil {
		return SweepParam{}, nil, err
	}
	if err := ValidateSweepValues(values); err != nil {
		return SweepParam{}, nil, err
	}
	machines := []*uarch.Machine{base}
	for _, v := range values {
		d, err := uarch.Derive(base, fmt.Sprintf("%s-%s%d", base.Name, p.Name, v), p.Set(v))
		if err != nil {
			return SweepParam{}, nil, err
		}
		machines = append(machines, d)
	}
	return p, machines, nil
}

// sweepResult extrapolates the base-fitted model to every swept point of
// a simulated lab — the shared back half of RunSweep and Provider.Sweep.
func sweepResult(lab *Lab, base *uarch.Machine, p SweepParam, suiteName string, fitted *core.Model) (*SweepResult, error) {
	res := &SweepResult{
		Base:      base.Name,
		Param:     p,
		BaseValue: p.Get(base),
		Suite:     suiteName,
		NumOps:    lab.NumOps(),
		Stats:     lab.SimStats(),
	}
	for _, m := range lab.Machines()[1:] {
		// Extrapolate: frozen empirical coefficients, this point's
		// machine parameters, this point's measured counters.
		extrap := &core.Model{Machine: m.Params(), P: fitted.P}
		obs, err := lab.Observations(m.Name, suiteName)
		if err != nil {
			return nil, err
		}
		pt := SweepPoint{Value: p.Get(m), Machine: m.Name}
		n := float64(len(obs))
		for _, o := range obs {
			pt.SimCPI += o.MeasuredCPI / n
			pt.ModelCPI += extrap.PredictCPI(o.Feat) / n
			ms := extrap.Stack(o.Feat)
			r, err := lab.Run(m.Name, suiteName, o.Name)
			if err != nil {
				return nil, err
			}
			ts := r.Truth.CPIStack(r.Counters.Uops)
			for _, c := range sim.Components() {
				pt.SimStack.Cycles[c] += ts.Cycles[c] / n
				pt.ModelStack.Cycles[c] += ms.Cycles[c] / n
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render returns the sensitivity tables as text: suite-mean simulated vs
// model-predicted CPI per swept value, then the per-component breakdown.
func (r *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %s %s on %s (%d µops/workload; model fitted at %s=%d)\n",
		r.Base, r.Param.Name, r.Suite, r.NumOps, r.Param.Name, r.BaseValue)
	fmt.Fprintf(&b, "  %8s %9s %10s %7s\n", r.Param.Name, "sim-CPI", "model-CPI", "err")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %8d %9.4f %10.4f %6.1f%%\n", p.Value, p.SimCPI, p.ModelCPI, 100*p.Err())
	}
	b.WriteString("\ncomponent sensitivity (suite-mean cycles/µop, simulated vs model):\n")
	// Only components that matter somewhere in the sweep get a column.
	var comps []sim.Component
	for _, c := range sim.Components() {
		for _, p := range r.Points {
			if p.SimStack.Cycles[c] >= 0.001 || p.ModelStack.Cycles[c] >= 0.001 {
				comps = append(comps, c)
				break
			}
		}
	}
	fmt.Fprintf(&b, "  %8s", r.Param.Name)
	for _, c := range comps {
		fmt.Fprintf(&b, " %17s", c)
	}
	b.WriteByte('\n')
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %8d", p.Value)
		for _, c := range comps {
			fmt.Fprintf(&b, "   %7.4f|%7.4f", p.SimStack.Cycles[c], p.ModelStack.Cycles[c])
		}
		b.WriteByte('\n')
	}
	b.WriteString("  (format: simulated|model)\n")
	return b.String()
}
