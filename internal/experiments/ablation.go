package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// AblationResult quantifies one structural choice of the model: the
// cross-validated accuracy with the choice intact vs. removed. The
// paper's Section 3 argues for each of these choices qualitatively; the
// ablations measure them.
type AblationResult struct {
	Name         string
	Machine      string
	FullCVErr    float64 // cross-validated MARE, full model
	AblatedCVErr float64 // cross-validated MARE, ablated model
}

// Ablations fits ablated model variants on cpu2000 and evaluates on
// cpu2006 (the harder transfer direction) for the given machine.
func (l *Lab) Ablations(machine string) ([]AblationResult, string, error) {
	trainObs, err := l.Observations(machine, "cpu2000")
	if err != nil {
		return nil, "", err
	}
	evalObs, err := l.Observations(machine, "cpu2006")
	if err != nil {
		return nil, "", err
	}
	mc, err := l.Machine(machine)
	if err != nil {
		return nil, "", err
	}
	meas := make([]float64, len(evalObs))
	for i, o := range evalObs {
		meas[i] = o.MeasuredCPI
	}

	cvErr := func(opts core.FitOptions) (float64, error) {
		opts.Starts = l.opts.FitStarts
		opts.Seed = l.opts.Seed
		m, err := core.Fit(mc.Params(), trainObs, opts)
		if err != nil {
			return 0, err
		}
		return stats.MARE(m.PredictAll(evalObs), meas), nil
	}

	full, err := cvErr(core.FitOptions{})
	if err != nil {
		return nil, "", err
	}
	variants := []struct {
		name string
		opts core.FitOptions
	}{
		{"additive-branch (Eq.2 multiplicative→additive)", core.FitOptions{AdditiveBranch: true}},
		{"constant-MLP (Eq.3 power law→constant)", core.FitOptions{ConstantMLP: true}},
		{"unscaled-stall (Eq.4 without miss scaling)", core.FitOptions{UnscaledStall: true}},
		{"no-window-cap (Eq.2 without min(128,·))", core.FitOptions{NoWindowCap: true}},
	}
	var out []AblationResult
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations on %s (train cpu2000, evaluate cpu2006):\n", machine)
	fmt.Fprintf(&b, "  %-48s %10s %10s\n", "variant", "full", "ablated")
	for _, v := range variants {
		e, err := cvErr(v.opts)
		if err != nil {
			return nil, "", err
		}
		out = append(out, AblationResult{Name: v.name, Machine: machine, FullCVErr: full, AblatedCVErr: e})
		fmt.Fprintf(&b, "  %-48s %9.1f%% %9.1f%%\n", v.name, 100*full, 100*e)
	}
	return out, b.String(), nil
}
