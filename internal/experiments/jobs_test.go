package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/runstore"
)

// waitJob polls until the job is terminal, asserting the progress
// counters only ever increase, and returns the terminal snapshot.
func waitJob(t *testing.T, jobs *Jobs, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var prev JobProgress
	for {
		st, ok := jobs.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if st.Progress.DoneRuns < prev.DoneRuns || st.Progress.StoreHits < prev.StoreHits ||
			st.Progress.Simulated < prev.Simulated {
			t.Fatalf("progress went backwards: %+v then %+v", prev, st.Progress)
		}
		prev = st.Progress
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v (progress %+v)", id, st.State, timeout, st.Progress)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func drainJobs(t *testing.T, jobs *Jobs) {
	t.Helper()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		jobs.Drain(ctx)
	})
}

func TestJobsSubmitValidation(t *testing.T) {
	jobs := NewJobs(Options{NumOps: 1000, FitStarts: 2}, JobsConfig{})
	drainJobs(t, jobs)
	small := &Campaign{Machines: []MachineSpec{{Name: "core2"}}, Suites: []string{"cpu2000"}}
	cases := []struct {
		name    string
		spec    JobSpec
		wantErr string
	}{
		{"unknown kind", JobSpec{Kind: "fleet"}, "unknown job kind"},
		{"campaign without payload", JobSpec{Kind: JobKindCampaign}, "without a campaign payload"},
		{"campaign with sweep payload", JobSpec{Kind: JobKindCampaign, Campaign: small,
			Sweep: &SweepSpec{}}, "with a sweep payload"},
		{"sweep without payload", JobSpec{Kind: JobKindSweep}, "without a sweep payload"},
		{"unknown machine", JobSpec{Kind: JobKindCampaign, Campaign: &Campaign{
			Machines: []MachineSpec{{Name: "core9"}}, Suites: []string{"cpu2000"}}}, "unknown machine"},
		{"unknown suite", JobSpec{Kind: JobKindCampaign, Campaign: &Campaign{
			Machines: []MachineSpec{{Name: "core2"}}, Suites: []string{"cpu2017"}}}, "unknown suite"},
		{"unknown sweep param", JobSpec{Kind: JobKindSweep, Sweep: &SweepSpec{
			Base: MachineSpec{Name: "core2"}, Param: "cores", Values: []int{2}, Suite: "cpu2000"}},
			"unknown sweep parameter"},
		{"bad sweep values", JobSpec{Kind: JobKindSweep, Sweep: &SweepSpec{
			Base: MachineSpec{Name: "core2"}, Param: "rob", Values: nil, Suite: "cpu2000"}},
			"at least one value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := jobs.Submit(tc.spec); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Submit error = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
	if got := len(jobs.List()); got != 0 {
		t.Errorf("invalid submissions left %d jobs registered", got)
	}
}

// TestJobsCampaignRunsAndPersists executes a small campaign job to done
// and checks the terminal artifact on disk.
func TestJobsCampaignRunsAndPersists(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	artDir := filepath.Join(t.TempDir(), "jobs")
	jobs := NewJobs(Options{NumOps: 2000, FitStarts: 2, Store: store},
		JobsConfig{ArtifactDir: artDir})
	drainJobs(t, jobs)

	spec := JobSpec{Kind: JobKindCampaign, Campaign: &Campaign{
		Machines: []MachineSpec{{Name: "core2"}}, Suites: []string{"cpu2000"}}}
	st, err := jobs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued || st.Kind != JobKindCampaign {
		t.Errorf("submitted snapshot = %+v, want queued campaign", st)
	}
	if st.Progress.TotalRuns != 48 {
		t.Errorf("TotalRuns = %d, want 48 (cpu2000 on one machine)", st.Progress.TotalRuns)
	}

	final := waitJob(t, jobs, st.ID, 60*time.Second)
	if final.State != JobDone {
		t.Fatalf("job finished %s (error %q), want done", final.State, final.Error)
	}
	if final.Progress.DoneRuns != 48 || final.Progress.DoneRuns !=
		final.Progress.StoreHits+final.Progress.Simulated {
		t.Errorf("terminal progress inconsistent: %+v", final.Progress)
	}
	var res CampaignJobResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Models) != 1 || res.Models[0].Machine != "core2" || len(res.Models[0].Workloads) != 48 {
		t.Errorf("result shape wrong: %d models", len(res.Models))
	}

	// The terminal state is persisted as a JSON artifact that round-trips.
	data, err := os.ReadFile(filepath.Join(artDir, final.ID+".json"))
	if err != nil {
		t.Fatalf("terminal artifact missing: %v", err)
	}
	var persisted JobStatus
	if err := json.Unmarshal(data, &persisted); err != nil {
		t.Fatal(err)
	}
	if persisted.ID != final.ID || persisted.State != JobDone ||
		persisted.Progress != final.Progress {
		t.Errorf("persisted artifact diverges: %+v vs %+v", persisted, final)
	}

	// A rerun of the same campaign is warm through the shared store.
	st2, err := jobs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final2 := waitJob(t, jobs, st2.ID, 60*time.Second)
	if final2.State != JobDone || final2.Progress.Simulated != 0 || final2.Progress.StoreHits != 48 {
		t.Errorf("warm rerun = %s with progress %+v, want done with 48 store hits", final2.State, final2.Progress)
	}
	// And its result is bit-identical to the cold one's.
	if string(final2.Result) != string(final.Result) {
		t.Error("warm rerun result differs from the cold run")
	}
}

func TestJobsSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	jobs := NewJobs(Options{NumOps: 2000, FitStarts: 2}, JobsConfig{})
	drainJobs(t, jobs)
	st, err := jobs.Submit(JobSpec{Kind: JobKindSweep, Sweep: &SweepSpec{
		Base: MachineSpec{Name: "core2"}, Param: "rob", Values: []int{48, 96}, Suite: "cpu2000"}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Progress.TotalRuns != 3*48 {
		t.Errorf("TotalRuns = %d, want 144 (base + 2 points)", st.Progress.TotalRuns)
	}
	final := waitJob(t, jobs, st.ID, 60*time.Second)
	if final.State != JobDone {
		t.Fatalf("sweep finished %s (error %q)", final.State, final.Error)
	}
	var res SweepJobResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Base != "core2" || res.Param != "rob" || len(res.Points) != 2 {
		t.Errorf("sweep result = %+v", res)
	}
	for _, p := range res.Points {
		if p.SimCPI <= 0 || p.ModelCPI <= 0 || len(p.SimStack) != 9 || len(p.ModelStack) != 9 {
			t.Errorf("degenerate sweep point %+v", p)
		}
	}
}

// TestJobsCancelMidFlight is the cancellation contract under the race
// detector: cancelling a mid-flight campaign job stops the dispatch of
// new simulations, reports a cancelled terminal state, and leaves the
// run store consistent for a follow-up warm run.
func TestJobsCancelMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end campaign is slow")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// One simulation worker and a real µop count keep the campaign in
	// flight long enough to cancel deterministically mid-run.
	opts := Options{NumOps: 50000, FitStarts: 2, Workers: 1, Store: store}
	jobs := NewJobs(opts, JobsConfig{})
	drainJobs(t, jobs)

	campaign := Campaign{
		Machines: []MachineSpec{{Name: "core2"}, {Name: "corei7"}},
		Suites:   []string{"cpu2000"},
	}
	st, err := jobs.Submit(JobSpec{Kind: JobKindCampaign, Campaign: &campaign})
	if err != nil {
		t.Fatal(err)
	}
	total := st.Progress.TotalRuns
	if total != 96 {
		t.Fatalf("TotalRuns = %d, want 96", total)
	}

	// Wait until the job is demonstrably mid-flight, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, ok := jobs.Get(st.ID)
		if !ok {
			t.Fatal("job disappeared")
		}
		if cur.State == JobRunning && cur.Progress.DoneRuns >= 2 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished %s before it could be cancelled; raise NumOps", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never got mid-flight")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := jobs.Cancel(st.ID); !ok {
		t.Fatal("Cancel reported unknown job")
	}

	final := waitJob(t, jobs, st.ID, 30*time.Second)
	if final.State != JobCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", final.State)
	}
	if final.Error != "" || len(final.Result) != 0 {
		t.Errorf("cancelled job carries error %q / result %d bytes", final.Error, len(final.Result))
	}
	if final.Progress.DoneRuns >= total {
		t.Errorf("cancelled job completed all %d runs; cancellation did nothing", total)
	}

	// No further simulations are dispatched after the terminal state.
	time.Sleep(100 * time.Millisecond)
	again, _ := jobs.Get(st.ID)
	if again.Progress != final.Progress {
		t.Errorf("progress moved after cancellation: %+v then %+v", final.Progress, again.Progress)
	}

	// Cancel is idempotent on a terminal job.
	st2, ok := jobs.Cancel(st.ID)
	if !ok || st2.State != JobCancelled {
		t.Errorf("re-cancel = %+v, %v", st2, ok)
	}

	// The store stayed consistent: a blocking follow-up campaign resumes
	// warm — every run the cancelled job persisted is a hit — and
	// completes the grid.
	lab, err := NewCampaignLab(campaign, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Simulate(); err != nil {
		t.Fatal(err)
	}
	sim := lab.SimStats()
	if sim.Hits+sim.Simulated != total {
		t.Errorf("follow-up run covered %d runs, want %d", sim.Hits+sim.Simulated, total)
	}
	if sim.Hits < final.Progress.Simulated {
		t.Errorf("follow-up hit %d runs, want at least the %d the cancelled job simulated",
			sim.Hits, final.Progress.Simulated)
	}
}

// TestJobsDrainCancelsStragglers proves Drain's deadline path: a job
// still running when the drain context expires is cancelled rather than
// awaited.
func TestJobsDrainCancelsStragglers(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end campaign is slow")
	}
	jobs := NewJobs(Options{NumOps: 50000, FitStarts: 2, Workers: 1}, JobsConfig{})
	st, err := jobs.Submit(JobSpec{Kind: JobKindCampaign, Campaign: &Campaign{
		Machines: []MachineSpec{{Name: "core2"}}, Suites: []string{"cpu2000", "cpu2006"}}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	jobs.Drain(ctx)
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Errorf("Drain took %v, want prompt cancellation", elapsed)
	}
	final, _ := jobs.Get(st.ID)
	if !final.State.Terminal() {
		t.Errorf("job still %s after Drain", final.State)
	}
	if _, err := jobs.Submit(JobSpec{Kind: JobKindCampaign, Campaign: &Campaign{
		Machines: []MachineSpec{{Name: "core2"}}, Suites: []string{"cpu2000"}}}); !errors.Is(err, ErrJobsDraining) {
		t.Errorf("Submit after Drain = %v, want ErrJobsDraining", err)
	}
}

// TestJobsRetainTerminal proves the in-memory retention bound: with a
// single worker pinned on a long job, cancelled queued jobs go terminal
// immediately and the oldest terminal one is evicted from the API while
// the newest stays queryable.
func TestJobsRetainTerminal(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a running job")
	}
	jobs := NewJobs(Options{NumOps: 50000, FitStarts: 2, Workers: 1},
		JobsConfig{RetainTerminal: 1})
	drainJobs(t, jobs)
	spec := JobSpec{Kind: JobKindCampaign, Campaign: &Campaign{
		Machines: []MachineSpec{{Name: "core2"}}, Suites: []string{"cpu2000"}}}
	running, err := jobs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to pick up the long job so the next two
	// submissions stay queued.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := jobs.Get(running.ID)
		if st.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	first, err := jobs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := jobs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	jobs.Cancel(first.ID)
	jobs.Cancel(second.ID) // 2 terminal > RetainTerminal=1: first evicted
	if _, ok := jobs.Get(first.ID); ok {
		t.Error("oldest terminal job should have been evicted")
	}
	if st, ok := jobs.Get(second.ID); !ok || st.State != JobCancelled {
		t.Errorf("newest terminal job = %+v, %v; want a queryable cancelled job", st, ok)
	}
	if st, ok := jobs.Get(running.ID); !ok || st.State.Terminal() {
		t.Errorf("running job = %+v, %v; must never be evicted", st, ok)
	}
	jobs.Cancel(running.ID)
}

// TestJobsQueueBounded proves the backlog bound: with a single worker
// busy, QueueDepth+? submissions beyond the bound are rejected without
// being registered.
func TestJobsQueueBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a running job")
	}
	jobs := NewJobs(Options{NumOps: 50000, FitStarts: 2, Workers: 1},
		JobsConfig{QueueDepth: 2})
	drainJobs(t, jobs)
	spec := JobSpec{Kind: JobKindCampaign, Campaign: &Campaign{
		Machines: []MachineSpec{{Name: "core2"}}, Suites: []string{"cpu2000"}}}
	// The queue holds 2; the worker may have popped the first already, so
	// 4 submissions guarantee at least one rejection.
	var rejected int
	var ids []string
	for i := 0; i < 4; i++ {
		st, err := jobs.Submit(spec)
		if err != nil {
			if !errors.Is(err, ErrJobQueueFull) {
				t.Fatalf("unexpected Submit error: %v", err)
			}
			rejected++
			continue
		}
		ids = append(ids, st.ID)
	}
	if rejected == 0 {
		t.Error("no submission was rejected by the bounded queue")
	}
	if got := len(jobs.List()); got != len(ids) {
		t.Errorf("listing has %d jobs, want the %d accepted", got, len(ids))
	}
	for _, id := range ids {
		jobs.Cancel(id)
	}
}

// TestJobsPlanRunsWithCellProgress executes a 2×2 grid plan job to done
// and checks the per-cell progress counters land exactly: every grid
// machine (base included) completes as a cell.
func TestJobsPlanRunsWithCellProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	sn := tinySuite(t)
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobs := NewJobs(Options{NumOps: 2000, FitStarts: 2, Store: store}, JobsConfig{})
	drainJobs(t, jobs)
	spec := JobSpec{Kind: JobKindPlan, Plan: &PlanSpec{
		Base: MachineSpec{Name: "core2"},
		Axes: []PlanAxis{
			{Param: "rob", Values: []int{48, 96}},
			{Param: "mshrs", Values: []int{4, 8}},
		},
		Suite: sn,
	}}
	st, err := jobs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Progress.TotalRuns != 5*12 {
		t.Errorf("TotalRuns = %d, want 60 (base + 4 cells × 12 workloads)", st.Progress.TotalRuns)
	}
	// Cell totals are part of the submission snapshot, not discovered
	// at run time.
	if st.Progress.TotalCells != 5 || st.Progress.DoneCells != 0 {
		t.Errorf("submitted cell progress %+v, want 5 total / 0 done", st.Progress)
	}
	final := waitJob(t, jobs, st.ID, 60*time.Second)
	if final.State != JobDone {
		t.Fatalf("plan job finished %s (error %q)", final.State, final.Error)
	}
	if final.Progress.TotalCells != 5 || final.Progress.DoneCells != 5 {
		t.Errorf("cell progress %+v, want 5/5", final.Progress)
	}
	if final.Progress.DoneRuns != 60 {
		t.Errorf("run progress %+v, want 60 done", final.Progress)
	}
	var res PlanJobResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Base != "core2" || len(res.Axes) != 2 || len(res.Cells) != 4 {
		t.Fatalf("plan result shape: %+v", res)
	}
	for _, c := range res.Cells {
		if len(c.Values) != 2 || c.SimCPI <= 0 || c.ModelCPI <= 0 ||
			len(c.SimStack) != 9 || len(c.ModelStack) != 9 {
			t.Errorf("degenerate plan cell %+v", c)
		}
	}

	// The job's cells are bit-identical to the blocking RunPlan on the
	// same (now warm) store.
	plan, err := spec.Plan.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	blocking, err := RunPlan(plan, Options{NumOps: 2000, FitStarts: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if blocking.Stats.Simulated != 0 {
		t.Errorf("blocking rerun simulated %d runs; job left the store cold", blocking.Stats.Simulated)
	}
	for i, c := range res.Cells {
		pt := blocking.Points[i]
		if c.Machine != pt.Machine || c.SimCPI != pt.SimCPI || c.ModelCPI != pt.ModelCPI {
			t.Errorf("cell %d: job %+v vs blocking %+v", i, c, pt)
		}
	}

	// A mis-tagged plan submission fails loudly.
	if _, err := jobs.Submit(JobSpec{Kind: JobKindPlan}); err == nil ||
		!strings.Contains(err.Error(), "without a plan payload") {
		t.Errorf("payload-free plan job = %v", err)
	}
	if _, err := jobs.Submit(JobSpec{Kind: JobKindPlan, Plan: spec.Plan,
		Sweep: &SweepSpec{}}); err == nil || !strings.Contains(err.Error(), "with a sweep payload") {
		t.Errorf("plan job with sweep payload = %v", err)
	}
	// Duplicate axis values are rejected at submission, before anything
	// runs — the wire-path half of the duplicate-values fix.
	if _, err := jobs.Submit(JobSpec{Kind: JobKindPlan, Plan: &PlanSpec{
		Base:  MachineSpec{Name: "core2"},
		Axes:  []PlanAxis{{Param: "rob", Values: []int{64, 64}}},
		Suite: sn,
	}}); err == nil || !strings.Contains(err.Error(), "listed twice") {
		t.Errorf("duplicate plan values = %v", err)
	}
}

// TestJobsPlanCancelMidFlight is the plan flavour of the cancellation
// contract under the race detector: cancelling a mid-flight grid job
// stops the dispatch of new simulations and leaves the run store
// warm-consistent — a follow-up blocking plan hits everything the
// cancelled job persisted and completes the grid.
func TestJobsPlanCancelMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end grid is slow")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// One simulation worker and a real µop count keep the grid in
	// flight long enough to cancel deterministically mid-run.
	opts := Options{NumOps: 50000, FitStarts: 2, Workers: 1, Store: store}
	jobs := NewJobs(opts, JobsConfig{})
	drainJobs(t, jobs)

	planSpec := &PlanSpec{
		Base: MachineSpec{Name: "core2"},
		Axes: []PlanAxis{
			{Param: "rob", Values: []int{48, 96}},
			{Param: "memlat", Values: []int{150, 300}},
		},
		Suite: "cpu2000",
	}
	st, err := jobs.Submit(JobSpec{Kind: JobKindPlan, Plan: planSpec})
	if err != nil {
		t.Fatal(err)
	}
	total := st.Progress.TotalRuns
	if total != 5*48 {
		t.Fatalf("TotalRuns = %d, want 240", total)
	}

	// Wait until the job is demonstrably mid-flight, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, ok := jobs.Get(st.ID)
		if !ok {
			t.Fatal("job disappeared")
		}
		if cur.State == JobRunning && cur.Progress.DoneRuns >= 2 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished %s before it could be cancelled; raise NumOps", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never got mid-flight")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := jobs.Cancel(st.ID); !ok {
		t.Fatal("Cancel reported unknown job")
	}
	final := waitJob(t, jobs, st.ID, 30*time.Second)
	if final.State != JobCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", final.State)
	}
	if final.Progress.DoneRuns >= total {
		t.Errorf("cancelled job completed all %d runs; cancellation did nothing", total)
	}
	if final.Progress.DoneCells >= final.Progress.TotalCells {
		t.Errorf("cancelled job completed all %d cells", final.Progress.TotalCells)
	}

	// The store stayed warm-consistent: the blocking follow-up hits
	// every run the cancelled job persisted and completes the grid.
	plan, err := planSpec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPlan(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Hits+res.Stats.Simulated != total {
		t.Errorf("follow-up covered %d runs, want %d", res.Stats.Hits+res.Stats.Simulated, total)
	}
	if res.Stats.Hits < final.Progress.Simulated {
		t.Errorf("follow-up hit %d runs, want at least the %d the cancelled job simulated",
			res.Stats.Hits, final.Progress.Simulated)
	}
}

// TestJobsOptimizeRunsWithProbeProgress executes an optimize job to
// done: the submission snapshot reports the search's run upper bound
// and probe bound, the probe counter tracks full-fidelity evaluations,
// and the finished job proves the searched-grid saving by completing
// below its own TotalRuns bound, bit-identical to the blocking
// RunOptimize on the same store.
func TestJobsOptimizeRunsWithProbeProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	sn := tinySuite(t)
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jobs := NewJobs(Options{NumOps: 2000, FitStarts: 2, Store: store}, JobsConfig{})
	drainJobs(t, jobs)
	optSpec := &OptimizeSpec{
		Base: MachineSpec{Name: "core2"},
		Axes: []PlanAxis{
			{Param: "width", Values: []int{2, 4, 8}},
			{Param: "memlat", Values: []int{150, 300}},
		},
		Suite:     sn,
		Objective: ObjectiveSpec{Kind: ObjectiveMinCPI},
		Search:    SearchSpec{TrustRadius: 99},
	}
	st, err := jobs.Submit(JobSpec{Kind: JobKindOptimize, Optimize: optSpec})
	if err != nil {
		t.Fatal(err)
	}
	if st.Progress.TotalRuns != (1+6)*12 {
		t.Errorf("TotalRuns = %d, want the 84-run exhaustive bound", st.Progress.TotalRuns)
	}
	if st.Progress.TotalProbes != 6 || st.Progress.DoneProbes != 0 {
		t.Errorf("submitted probe progress %+v, want 6 total / 0 done", st.Progress)
	}
	final := waitJob(t, jobs, st.ID, 60*time.Second)
	if final.State != JobDone {
		t.Fatalf("optimize job finished %s (error %q)", final.State, final.Error)
	}
	var rep OptimizeReport
	if err := json.Unmarshal(final.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Probes >= rep.GridCells {
		t.Errorf("job probed %d of %d cells; search saved nothing", rep.Probes, rep.GridCells)
	}
	if final.Progress.DoneProbes != rep.Probes {
		t.Errorf("probe counter %d, result reports %d", final.Progress.DoneProbes, rep.Probes)
	}
	// The run saving is the point: the finished job never touched the
	// cells the search skipped.
	if want := (1 + rep.Probes) * 12; final.Progress.DoneRuns != want {
		t.Errorf("DoneRuns = %d, want %d (base + %d probed cells × 12 workloads)",
			final.Progress.DoneRuns, want, rep.Probes)
	}
	if final.Progress.DoneRuns >= final.Progress.TotalRuns {
		t.Errorf("optimize job used its whole %d-run bound", final.Progress.TotalRuns)
	}
	if rep.Best == nil || rep.Best.SimCPI <= 0 || len(rep.Best.ModelStack) != 9 {
		t.Fatalf("degenerate best point: %+v", rep.Best)
	}

	// Bit-identical to the blocking path on the now-warm store.
	o, err := optSpec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	blocking, err := RunOptimize(o, Options{NumOps: 2000, FitStarts: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if blocking.Stats.Simulated != 0 {
		t.Errorf("blocking rerun simulated %d runs; job left the store cold", blocking.Stats.Simulated)
	}
	if blocking.Best.Machine != rep.Best.Machine || blocking.Best.ModelCPI != rep.Best.ModelCPI {
		t.Errorf("job best %+v vs blocking %+v", rep.Best, blocking.Best)
	}

	// Mis-tagged and invalid optimize submissions fail at Submit.
	if _, err := jobs.Submit(JobSpec{Kind: JobKindOptimize}); err == nil ||
		!strings.Contains(err.Error(), "without a optimize payload") {
		t.Errorf("payload-free optimize job = %v", err)
	}
	if _, err := jobs.Submit(JobSpec{Kind: JobKindOptimize, Optimize: optSpec,
		Plan: &PlanSpec{}}); err == nil || !strings.Contains(err.Error(), "with a plan payload") {
		t.Errorf("optimize job with plan payload = %v", err)
	}
	bad := *optSpec
	bad.Objective = ObjectiveSpec{Kind: "min-watts"}
	if _, err := jobs.Submit(JobSpec{Kind: JobKindOptimize, Optimize: &bad}); err == nil ||
		!strings.Contains(err.Error(), "unknown objective kind") {
		t.Errorf("bad objective at submission = %v", err)
	}
}

// TestJobsOptimizeCancelMidFlight is the optimize flavour of the
// cancellation contract under the race detector: cancelling a
// mid-flight search stops the dispatch of new simulations and leaves
// the run store warm-consistent — a follow-up blocking optimize hits
// everything the cancelled job persisted and finishes the search.
func TestJobsOptimizeCancelMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end search is slow")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// One simulation worker and a real µop count keep the search in
	// flight long enough to cancel deterministically mid-run.
	opts := Options{NumOps: 50000, FitStarts: 2, Workers: 1, Store: store}
	jobs := NewJobs(opts, JobsConfig{})
	drainJobs(t, jobs)

	optSpec := &OptimizeSpec{
		Base: MachineSpec{Name: "core2"},
		Axes: []PlanAxis{
			{Param: "width", Values: []int{2, 4}},
			{Param: "memlat", Values: []int{150, 300}},
		},
		Suite:     "cpu2000",
		Objective: ObjectiveSpec{Kind: ObjectiveMinCPI},
		Search:    SearchSpec{TrustRadius: 99},
	}
	st, err := jobs.Submit(JobSpec{Kind: JobKindOptimize, Optimize: optSpec})
	if err != nil {
		t.Fatal(err)
	}
	if st.Progress.TotalRuns != 5*48 || st.Progress.TotalProbes != 4 {
		t.Fatalf("submission bounds %+v, want 240 runs / 4 probes", st.Progress)
	}

	// Wait until the job is demonstrably mid-flight, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, ok := jobs.Get(st.ID)
		if !ok {
			t.Fatal("job disappeared")
		}
		if cur.State == JobRunning && cur.Progress.DoneRuns >= 2 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished %s before it could be cancelled; raise NumOps", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never got mid-flight")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := jobs.Cancel(st.ID); !ok {
		t.Fatal("Cancel reported unknown job")
	}
	final := waitJob(t, jobs, st.ID, 30*time.Second)
	if final.State != JobCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", final.State)
	}
	if final.Progress.DoneRuns >= final.Progress.TotalRuns {
		t.Errorf("cancelled job hit its whole %d-run bound", final.Progress.TotalRuns)
	}

	// The store stayed warm-consistent: the search is deterministic, so
	// the follow-up requests the same runs in the same order and hits
	// every one the cancelled job persisted.
	o, err := optSpec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOptimize(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("follow-up search found no best point")
	}
	if res.Stats.Hits < final.Progress.Simulated {
		t.Errorf("follow-up hit %d runs, want at least the %d the cancelled job simulated",
			res.Stats.Hits, final.Progress.Simulated)
	}
}

// TestJobsSeedsRunsWithSeedProgress executes a seeds job to done: the
// submission snapshot reports the sweep's run total and seed count, the
// seed counter tracks fully evaluated replications, and the finished
// job's report is bit-identical to a blocking RunSeeds on the same
// (now-warm) store.
func TestJobsSeedsRunsWithSeedProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	sn := tinySuite(t)
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumOps: 2000, FitStarts: 2, Store: store}
	jobs := NewJobs(opts, JobsConfig{})
	drainJobs(t, jobs)
	seedsSpec := &SeedsSpec{Base: &MachineSpec{Name: "core2"}, Suite: sn, Count: 2}

	st, err := jobs.Submit(JobSpec{Kind: JobKindSeeds, Seeds: seedsSpec})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != JobQueued || st.Kind != JobKindSeeds {
		t.Errorf("submitted snapshot = %+v, want queued seeds job", st)
	}
	if st.Progress.TotalRuns != 2*12 {
		t.Errorf("TotalRuns = %d, want 24 (2 seeds × 12 workloads)", st.Progress.TotalRuns)
	}
	if st.Progress.TotalSeeds != 2 || st.Progress.DoneSeeds != 0 {
		t.Errorf("submitted seed progress %+v, want 2 total / 0 done", st.Progress)
	}

	final := waitJob(t, jobs, st.ID, 60*time.Second)
	if final.State != JobDone {
		t.Fatalf("seeds job finished %s (error %q), want done", final.State, final.Error)
	}
	if final.Progress.DoneSeeds != 2 || final.Progress.DoneRuns != 24 {
		t.Errorf("final progress %+v, want 2 seeds / 24 runs done", final.Progress)
	}
	var rep SeedsReport
	if err := json.Unmarshal(final.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Seeds) != 2 || len(rep.Cells) != 1 || len(rep.Cells[0].CPI.PerSeed) != 2 {
		t.Fatalf("seeds report shape: %+v", rep)
	}

	// Bit-identical to the blocking path on the store the job warmed
	// (JSON float round-trips are exact, so the comparison is per-bit).
	s, err := seedsSpec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	blocking, err := RunSeeds(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if blocking.Stats.Simulated != 0 || blocking.Stats.TraceGens != 0 {
		t.Errorf("blocking rerun stats %+v; job left the store cold", blocking.Stats)
	}
	if !reflect.DeepEqual(rep.Cells, blocking.Report().Cells) {
		t.Error("job report diverged from the blocking sweep")
	}

	// Mis-tagged and invalid seeds submissions fail at Submit.
	if _, err := jobs.Submit(JobSpec{Kind: JobKindSeeds}); err == nil ||
		!strings.Contains(err.Error(), "without a seeds payload") {
		t.Errorf("payload-free seeds job = %v", err)
	}
	if _, err := jobs.Submit(JobSpec{Kind: JobKindSeeds, Seeds: seedsSpec,
		Plan: &PlanSpec{}}); err == nil || !strings.Contains(err.Error(), "with a plan payload") {
		t.Errorf("seeds job with plan payload = %v", err)
	}
	if _, err := jobs.Submit(JobSpec{Kind: JobKindCampaign, Campaign: &Campaign{
		Machines: []MachineSpec{{Name: "core2"}}, Suites: []string{sn}},
		Seeds: seedsSpec}); err == nil || !strings.Contains(err.Error(), "with a seeds payload") {
		t.Errorf("campaign job with seeds payload = %v", err)
	}
	bad := *seedsSpec
	bad.Count = 0
	bad.Seeds = []uint64{0}
	if _, err := jobs.Submit(JobSpec{Kind: JobKindSeeds, Seeds: &bad}); err == nil ||
		!strings.Contains(err.Error(), "reserved") {
		t.Errorf("seed 0 at submission = %v", err)
	}
}

// TestJobsSeedsCancelMidFlight is the seeds flavour of the cancellation
// contract under the race detector: cancelling a mid-flight sweep stops
// the dispatch of new simulations and leaves the run store
// warm-consistent — a follow-up blocking sweep hits everything the
// cancelled job persisted and completes the replications.
func TestJobsSeedsCancelMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep is slow")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// One simulation worker and a real µop count keep the sweep in
	// flight long enough to cancel deterministically mid-run.
	opts := Options{NumOps: 50000, FitStarts: 2, Workers: 1, Store: store}
	jobs := NewJobs(opts, JobsConfig{})
	drainJobs(t, jobs)

	seedsSpec := &SeedsSpec{Base: &MachineSpec{Name: "core2"}, Suite: "cpu2000", Count: 3}
	st, err := jobs.Submit(JobSpec{Kind: JobKindSeeds, Seeds: seedsSpec})
	if err != nil {
		t.Fatal(err)
	}
	total := st.Progress.TotalRuns
	if total != 3*48 || st.Progress.TotalSeeds != 3 {
		t.Fatalf("submission bounds %+v, want 144 runs / 3 seeds", st.Progress)
	}

	// Wait until the job is demonstrably mid-flight, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, ok := jobs.Get(st.ID)
		if !ok {
			t.Fatal("job disappeared")
		}
		if cur.State == JobRunning && cur.Progress.DoneRuns >= 2 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished %s before it could be cancelled; raise NumOps", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never got mid-flight")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, ok := jobs.Cancel(st.ID); !ok {
		t.Fatal("Cancel reported unknown job")
	}
	final := waitJob(t, jobs, st.ID, 30*time.Second)
	if final.State != JobCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", final.State)
	}
	if final.Progress.DoneRuns >= total {
		t.Errorf("cancelled job completed all %d runs; cancellation did nothing", total)
	}
	if final.Progress.DoneSeeds >= final.Progress.TotalSeeds {
		t.Errorf("cancelled job completed all %d seeds", final.Progress.TotalSeeds)
	}

	// The store stayed warm-consistent: the blocking follow-up hits
	// every run the cancelled job persisted and completes the sweep.
	s, err := seedsSpec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSeeds(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Hits+res.Stats.Simulated != total {
		t.Errorf("follow-up covered %d runs, want %d", res.Stats.Hits+res.Stats.Simulated, total)
	}
	if res.Stats.Hits < final.Progress.Simulated {
		t.Errorf("follow-up hit %d runs, want at least the %d the cancelled job simulated",
			res.Stats.Hits, final.Progress.Simulated)
	}
}
