package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/runstore"
	"repro/internal/sim"
	"repro/internal/suites"
	"repro/internal/uarch"
)

func TestNewPlanGridShape(t *testing.T) {
	base := uarch.CoreTwo()
	p, err := NewPlan(base, []PlanAxis{
		{Param: "rob", Values: []int{48, 96}},
		{Param: "memlat", Values: []int{150, 250, 350}},
	}, "cpu2000")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cells) != 6 || len(p.Machines) != 7 {
		t.Fatalf("grid shape: %d cells, %d machines; want 6 and 7", len(p.Cells), len(p.Machines))
	}
	if p.Machines[0] != base {
		t.Error("Machines[0] must be the base fit point")
	}
	// Row-major with the last axis fastest, composite names per cell.
	wantCells := [][2]int{{48, 150}, {48, 250}, {48, 350}, {96, 150}, {96, 250}, {96, 350}}
	for i, want := range wantCells {
		got := p.Cells[i]
		if got[0] != want[0] || got[1] != want[1] {
			t.Errorf("cell %d = %v, want %v", i, got, want)
		}
		wantName := fmt.Sprintf("core2-rob%d-memlat%d", want[0], want[1])
		if p.Machines[1+i].Name != wantName {
			t.Errorf("cell %d machine %q, want %q", i, p.Machines[1+i].Name, wantName)
		}
		if p.Machines[1+i].ROBSize != want[0] || p.Machines[1+i].MemLat != want[1] {
			t.Errorf("cell %d overrides did not land: %+v", i, p.Machines[1+i])
		}
	}
	if bv := p.BaseValues(); len(bv) != 2 || bv[0] != base.ROBSize || bv[1] != base.MemLat {
		t.Errorf("BaseValues = %v", bv)
	}

	// A single-axis plan derives exactly the legacy sweep machine names.
	sp, err := NewPlan(base, []PlanAxis{{Param: "rob", Values: []int{48, 96, 192}}}, "cpu2000")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []int{48, 96, 192} {
		if want := fmt.Sprintf("core2-rob%d", v); sp.Machines[1+i].Name != want {
			t.Errorf("single-axis machine %q, want %q", sp.Machines[1+i].Name, want)
		}
	}
}

func TestNewPlanValidation(t *testing.T) {
	base := uarch.CoreTwo()
	cases := []struct {
		name    string
		axes    []PlanAxis
		suite   string
		wantErr string
	}{
		{"no axes", nil, "cpu2000", "at least one axis"},
		{"no suite", []PlanAxis{{Param: "rob", Values: []int{64}}}, "", "needs a suite"},
		{"unknown param", []PlanAxis{{Param: "cores", Values: []int{2}}}, "cpu2000", "unknown sweep parameter"},
		{"duplicate axis", []PlanAxis{
			{Param: "rob", Values: []int{64}}, {Param: "rob", Values: []int{128}}}, "cpu2000", "twice"},
		{"empty values", []PlanAxis{{Param: "rob", Values: nil}}, "cpu2000", "at least one value"},
		{"duplicate values", []PlanAxis{{Param: "rob", Values: []int{64, 64}}}, "cpu2000", "listed twice"},
		{"non-positive value", []PlanAxis{{Param: "rob", Values: []int{0}}}, "cpu2000", "must be positive"},
		{"invalid cell", []PlanAxis{{Param: "l2kb", Values: []int{3}}}, "cpu2000", "derive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewPlan(base, tc.axes, tc.suite)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("NewPlan error = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}

	// The grid cap: 3 axes of 17 values would be 4913 > 4096 cells.
	wide := make([]int, 17)
	for i := range wide {
		wide[i] = 100 + i
	}
	_, err := NewPlan(base, []PlanAxis{
		{Param: "rob", Values: wide},
		{Param: "memlat", Values: wide},
		{Param: "mshrs", Values: wide},
	}, "cpu2000")
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("oversized grid should hit the cell cap: %v", err)
	}

	// The cap is checked per axis, so a many-axis request whose total
	// product would overflow int64 (and wrap past a single final check)
	// is still rejected — cheaply, before any machine derives.
	huge := make([]int, 1500)
	for i := range huge {
		huge[i] = 100 + i
	}
	_, err = NewPlan(base, []PlanAxis{
		{Param: "rob", Values: huge},
		{Param: "memlat", Values: huge},
		{Param: "mshrs", Values: huge},
		{Param: "depth", Values: huge},
		{Param: "width", Values: huge},
		{Param: "l2kb", Values: huge},
	}, "cpu2000")
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("overflowing grid should hit the cell cap: %v", err)
	}
}

func TestParsePlanSpecStrict(t *testing.T) {
	good := []byte(`{
		"base": {"name": "core2"},
		"axes": [{"param": "rob", "values": [48, 96]}],
		"suite": "cpu2000"
	}`)
	ps, err := ParsePlanSpec(good)
	if err != nil || ps.Base.Name != "core2" || len(ps.Axes) != 1 || ps.Suite != "cpu2000" {
		t.Fatalf("ParsePlanSpec: %+v, %v", ps, err)
	}
	if _, err := ps.Resolve(); err != nil {
		t.Errorf("good spec should resolve: %v", err)
	}

	for name, doc := range map[string]string{
		"unknown field":   `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [64]}], "suite": "cpu2000", "cores": 4}`,
		"typoed axis key": `{"base": {"name": "core2"}, "axes": [{"parm": "rob", "values": [64]}], "suite": "cpu2000"}`,
		"trailing data":   `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [64]}], "suite": "cpu2000"} {}`,
		"no axes":         `{"base": {"name": "core2"}, "axes": [], "suite": "cpu2000"}`,
		"no suite":        `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [64]}]}`,
	} {
		if _, err := ParsePlanSpec([]byte(doc)); err == nil {
			t.Errorf("%s should fail strict parsing", name)
		}
	}
}

// legacySweep reimplements the pre-plan one-axis sweep path verbatim —
// explicit derived machines, a custom lab, generator-fed simulations
// (trace sharing disabled), and the inline extrapolation loop — as the
// reference the plan engine must match float-for-float.
func legacySweep(t *testing.T, base *uarch.Machine, param string, values []int, suiteName string, opts Options) *SweepResult {
	t.Helper()
	opts.NoSharedTraces = true
	p, err := SweepParamByName(param)
	if err != nil {
		t.Fatal(err)
	}
	machines := []*uarch.Machine{base}
	for _, v := range values {
		d, err := uarch.Derive(base, fmt.Sprintf("%s-%s%d", base.Name, p.Name, v), p.Set(v))
		if err != nil {
			t.Fatal(err)
		}
		machines = append(machines, d)
	}
	suite, err := suites.ByName(suiteName, suites.Options{NumOps: opts.NumOps})
	if err != nil {
		t.Fatal(err)
	}
	lab, err := NewCustomLab(machines, []suites.Suite{suite}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Simulate(); err != nil {
		t.Fatal(err)
	}
	fitted, err := lab.Model(base.Name, suiteName)
	if err != nil {
		t.Fatal(err)
	}
	res := &SweepResult{Base: base.Name, Param: p, BaseValue: p.Get(base),
		Suite: suiteName, NumOps: lab.NumOps()}
	for _, m := range lab.Machines()[1:] {
		extrap := &core.Model{Machine: m.Params(), P: fitted.P}
		obs, err := lab.Observations(m.Name, suiteName)
		if err != nil {
			t.Fatal(err)
		}
		pt := SweepPoint{Value: p.Get(m), Machine: m.Name}
		n := float64(len(obs))
		for _, o := range obs {
			pt.SimCPI += o.MeasuredCPI / n
			pt.ModelCPI += extrap.PredictCPI(o.Feat) / n
			ms := extrap.Stack(o.Feat)
			r, err := lab.Run(m.Name, suiteName, o.Name)
			if err != nil {
				t.Fatal(err)
			}
			ts := r.Truth.CPIStack(r.Counters.Uops)
			for _, c := range sim.Components() {
				pt.SimStack.Cycles[c] += ts.Cycles[c] / n
				pt.ModelStack.Cycles[c] += ms.Cycles[c] / n
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// TestSingleAxisPlanMatchesLegacySweep is the refactor's bit-identity
// property: across every registered axis, the plan-engine-backed
// RunSweep (shared trace buffers included) must reproduce the legacy
// generator-fed sweep computation per-float.
func TestSingleAxisPlanMatchesLegacySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("six fits are slow")
	}
	sn := tinySuite(t)
	base := uarch.CoreTwo()
	opts := Options{NumOps: 2000, FitStarts: 2}
	values := map[string][]int{
		"rob":    {48, 96},
		"mshrs":  {4, 8},
		"memlat": {150, 300},
		"depth":  {10, 18},
		"width":  {2, 4},
		"l2kb":   {1024, 4096},
	}
	for _, p := range SweepParams() {
		vals, ok := values[p.Name]
		if !ok {
			t.Fatalf("no test values for axis %q; extend the table", p.Name)
		}
		t.Run(p.Name, func(t *testing.T) {
			want := legacySweep(t, base, p.Name, vals, sn, opts)
			got, err := RunSweep(base, p.Name, vals, sn, opts)
			if err != nil {
				t.Fatal(err)
			}
			if got.Base != want.Base || got.BaseValue != want.BaseValue ||
				got.Suite != want.Suite || got.NumOps != want.NumOps ||
				got.Param.Name != want.Param.Name || len(got.Points) != len(want.Points) {
				t.Fatalf("sweep header differs: %+v vs %+v", got, want)
			}
			for i := range got.Points {
				g, w := got.Points[i], want.Points[i]
				if g.Value != w.Value || g.Machine != w.Machine {
					t.Fatalf("point %d identity differs: %+v vs %+v", i, g, w)
				}
				if g.SimCPI != w.SimCPI || g.ModelCPI != w.ModelCPI {
					t.Errorf("point %d CPIs differ: sim %v vs %v, model %v vs %v",
						i, g.SimCPI, w.SimCPI, g.ModelCPI, w.ModelCPI)
				}
				for _, c := range sim.Components() {
					if g.SimStack.Cycles[c] != w.SimStack.Cycles[c] ||
						g.ModelStack.Cycles[c] != w.ModelStack.Cycles[c] {
						t.Errorf("point %d component %s differs", i, c)
					}
				}
			}
			if got.Render() != want.Render() {
				t.Error("rendered sweep output differs from the legacy computation")
			}
		})
	}
}

// TestRunPlanSharedTraceStats pins the trace-replay economics: a cold
// grid generates each workload's stream once (not once per cell), a
// warm rerun generates none, and disabling sharing falls back to one
// generation per simulation — all with bit-identical results.
func TestRunPlanSharedTraceStats(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation is slow")
	}
	sn := tinySuite(t)
	base := uarch.CoreTwo()
	axes := []PlanAxis{
		{Param: "rob", Values: []int{48, 96}},
		{Param: "mshrs", Values: []int{4, 8}},
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumOps: 2000, FitStarts: 2, Store: store}
	plan, err := NewPlan(base, axes, sn)
	if err != nil {
		t.Fatal(err)
	}
	const machines, workloads = 5, 12 // base + 2×2 cells; tinySuite size

	cold, err := RunPlan(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Simulated != machines*workloads || cold.Stats.Hits != 0 {
		t.Errorf("cold stats %+v, want %d simulated", cold.Stats, machines*workloads)
	}
	if cold.Stats.TraceGens != workloads {
		t.Errorf("cold plan generated %d traces, want one per workload (%d)",
			cold.Stats.TraceGens, workloads)
	}
	if len(cold.Points) != 4 {
		t.Fatalf("plan has %d points, want 4", len(cold.Points))
	}
	for _, pt := range cold.Points {
		if pt.SimCPI <= 0 || pt.ModelCPI <= 0 || pt.SimStack.Total() == 0 {
			t.Errorf("degenerate cell %+v", pt)
		}
	}

	warm, err := RunPlan(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Hits != machines*workloads || warm.Stats.Simulated != 0 || warm.Stats.TraceGens != 0 {
		t.Errorf("warm stats %+v, want pure hits and zero trace generations", warm.Stats)
	}
	if warm.Render() != cold.Render() {
		t.Error("warm plan output differs from cold")
	}

	// Per-cell regeneration (sharing disabled, fresh store) must agree
	// float-for-float while paying one generation per simulation.
	regenOpts := opts
	regenOpts.NoSharedTraces = true
	if regenOpts.Store, err = runstore.Open(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	regen, err := RunPlan(plan, regenOpts)
	if err != nil {
		t.Fatal(err)
	}
	if regen.Stats.TraceGens != machines*workloads {
		t.Errorf("unshared plan generated %d traces, want %d", regen.Stats.TraceGens, machines*workloads)
	}
	for i := range cold.Points {
		g, w := regen.Points[i], cold.Points[i]
		if g.SimCPI != w.SimCPI || g.ModelCPI != w.ModelCPI {
			t.Errorf("cell %d: shared vs regenerated traces disagree: %+v vs %+v", i, g, w)
		}
	}
}

// TestRunPlanDeterministicAcrossWorkers pins the cell-parallel
// execution model: the same plan run with one worker, with an
// oversubscribed pool (more workers than the host has cores), and with
// that pool squeezed onto a single P via GOMAXPROCS must agree
// float-for-float per cell and byte-for-byte in rendered output —
// scheduling must never leak into results. CI runs this under -race,
// so it doubles as the race check on the materializer/worker buffer
// hand-off. make sim-nondeterminism asserts the same property
// end-to-end through cmd/sweep and the run store.
func TestRunPlanDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("grid simulation is slow")
	}
	sn := tinySuite(t)
	base := uarch.CoreTwo()
	axes := []PlanAxis{
		{Param: "rob", Values: []int{48, 96}},
		{Param: "mshrs", Values: []int{4, 8}},
	}
	plan, err := NewPlan(base, axes, sn)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *PlanResult {
		t.Helper()
		res, err := RunPlan(plan, Options{NumOps: 2000, FitStarts: 2, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	prev := runtime.GOMAXPROCS(0)
	for _, tc := range []struct {
		name     string
		workers  int
		maxProcs int
	}{
		{"oversubscribed pool", 8, prev},
		{"pool on a single P", 8, 1},
		// Past-4-cores check: more Ps than the host's cores, with a
		// worker pool sized to saturate them — scheduling at high
		// GOMAXPROCS must leak into results no more than at 1.
		{"high GOMAXPROCS", 16, 4 * prev},
	} {
		runtime.GOMAXPROCS(tc.maxProcs)
		got := run(tc.workers)
		runtime.GOMAXPROCS(prev)
		if len(got.Points) != len(want.Points) {
			t.Fatalf("%s: %d cells, want %d", tc.name, len(got.Points), len(want.Points))
		}
		for i := range got.Points {
			g, w := got.Points[i], want.Points[i]
			if g.Machine != w.Machine || g.SimCPI != w.SimCPI || g.ModelCPI != w.ModelCPI {
				t.Errorf("%s: cell %d differs from the single-worker run: %+v vs %+v",
					tc.name, i, g, w)
			}
			for _, c := range sim.Components() {
				if g.SimStack.Cycles[c] != w.SimStack.Cycles[c] ||
					g.ModelStack.Cycles[c] != w.ModelStack.Cycles[c] {
					t.Errorf("%s: cell %d component %s differs", tc.name, i, c)
				}
			}
		}
		if got.Render() != want.Render() {
			t.Errorf("%s: rendered plan differs from the single-worker run", tc.name)
		}
	}
}
