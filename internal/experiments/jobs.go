package experiments

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/suites"
)

// Job kinds: a declarative campaign (machines × suites, the
// cmd/experiments grid), a one-axis sensitivity sweep (the cmd/sweep
// experiment), a multi-axis exploration plan (the crossed grid of
// derived machines behind POST /v1/plan and cmd/sweep's grid mode), a
// design-space optimization (the searched grid behind POST /v1/optimize
// and cmd/sweep's -optimize mode), or a seed-sweep campaign (the
// replication sweep behind POST /v1/seeds and cmd/sweep's -seeds mode).
const (
	JobKindCampaign = "campaign"
	JobKindSweep    = "sweep"
	JobKindPlan     = "plan"
	JobKindOptimize = "optimize"
	JobKindSeeds    = "seeds"
)

// JobState is a job's lifecycle position. Jobs move
// queued → running → one of the terminal states (done, failed,
// cancelled); a queued job cancelled before a worker picks it up goes
// straight to cancelled.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// SweepSpec declares a sweep job: the base machine spec, the swept axis,
// the swept values, and the suite — exactly cmd/sweep's flags as JSON.
type SweepSpec struct {
	Base   MachineSpec `json:"base"`
	Param  string      `json:"param"`
	Values []int       `json:"values"`
	Suite  string      `json:"suite"`
}

// JobSpec is the submitted description of an asynchronous job: the kind
// plus exactly one matching payload. It is the JSON schema of the
// POST /v1/jobs body.
//
// A campaign job's explicit fit options (ops, fitStarts, seed) win over
// the engine's defaults — a job is fully declarative, unlike
// NewCampaignLab where the caller's explicit options model CLI flags —
// and unset fields inherit the engine's. Sweep and plan jobs always use
// the engine's options, as cmd/sweep's flags do.
type JobSpec struct {
	Kind     string        `json:"kind"`
	Campaign *Campaign     `json:"campaign,omitempty"`
	Sweep    *SweepSpec    `json:"sweep,omitempty"`
	Plan     *PlanSpec     `json:"plan,omitempty"`
	Optimize *OptimizeSpec `json:"optimize,omitempty"`
	Seeds    *SeedsSpec    `json:"seeds,omitempty"`
}

// JobProgress counts a job's simulation runs. Counters only ever
// increase; DoneRuns == StoreHits + Simulated, and a finished
// campaign/sweep/plan job that ran to completion has
// DoneRuns == TotalRuns. For an optimize job TotalRuns is the search's
// upper bound (exhaustive enumeration plus any reduced-fidelity
// screens): finishing with DoneRuns well below it is the searched-grid
// saving, and the probe counters — full-fidelity cells evaluated, out
// of the search's probe bound — are the meaningful completion gauge.
// Plan jobs additionally report grid-cell completion: a cell is done
// once every workload of its derived machine has a run (the base fit
// point counts as a cell too). Seeds jobs report replication
// completion: a seed is done once every (machine, suite) cell of that
// replication is simulated and fitted. Cell, probe and seed counters
// stay zero for the kinds they don't apply to.
type JobProgress struct {
	TotalRuns   int `json:"totalRuns"`
	DoneRuns    int `json:"doneRuns"`
	StoreHits   int `json:"storeHits"`
	Simulated   int `json:"simulated"`
	TotalCells  int `json:"totalCells,omitempty"`
	DoneCells   int `json:"doneCells,omitempty"`
	TotalProbes int `json:"totalProbes,omitempty"`
	DoneProbes  int `json:"doneProbes,omitempty"`
	TotalSeeds  int `json:"totalSeeds,omitempty"`
	DoneSeeds   int `json:"doneSeeds,omitempty"`
}

// JobStatus is an immutable snapshot of one job: what the GET /v1/jobs
// endpoints serve and what terminal-state artifacts persist. Result is
// set only in state done: a CampaignJobResult or SweepJobResult,
// matching the job's kind.
type JobStatus struct {
	ID        string          `json:"id"`
	Kind      string          `json:"kind"`
	State     JobState        `json:"state"`
	Spec      JobSpec         `json:"spec"`
	Progress  JobProgress     `json:"progress"`
	Error     string          `json:"error,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// WorkloadCPI is one workload's measured vs model-predicted CPI. RelErr
// is signed (negative = the model under-predicts), matching the serving
// wire convention.
type WorkloadCPI struct {
	Workload     string  `json:"workload"`
	MeasuredCPI  float64 `json:"measuredCPI"`
	PredictedCPI float64 `json:"predictedCPI"`
	RelErr       float64 `json:"relErr"`
}

// CampaignModelResult is one fitted (machine, suite) cell of a campaign
// job: the fitted parameters, every workload's prediction, and the
// suite-wide accuracy aggregates (error magnitudes).
type CampaignModelResult struct {
	Machine        string        `json:"machine"`
	ConfigHash     string        `json:"configHash"`
	Suite          string        `json:"suite"`
	Params         core.Params   `json:"params"`
	Workloads      []WorkloadCPI `json:"workloads"`
	AvgRelErr      float64       `json:"avgRelErr"`
	MaxRelErr      float64       `json:"maxRelErr"`
	FracBelow20Pct float64       `json:"fracBelow20pct"`
}

// CampaignJobResult is a campaign job's terminal result: one fitted
// model per machine × suite, in campaign order. The numbers are
// bit-identical to what the equivalent blocking cmd/experiments run
// computes — both paths share Lab.Simulate, observationsFor and
// fitModel.
type CampaignJobResult struct {
	Ops       int                   `json:"ops"`
	FitStarts int                   `json:"fitStarts"`
	Seed      uint64                `json:"seed"`
	Models    []CampaignModelResult `json:"models"`
}

// StackCPI is one CPI-stack component, in stack order (base first).
type StackCPI struct {
	Component string  `json:"component"`
	CPI       float64 `json:"cpi"`
}

func stackCPIs(st sim.Stack) []StackCPI {
	out := make([]StackCPI, 0, sim.NumComponents)
	for _, c := range sim.Components() {
		out = append(out, StackCPI{Component: c.String(), CPI: st.Cycles[c]})
	}
	return out
}

// SweepJobPoint is one swept configuration: simulated vs
// model-extrapolated suite-mean CPI and stacks. RelErr is signed.
type SweepJobPoint struct {
	Value      int        `json:"value"`
	Machine    string     `json:"machine"`
	SimCPI     float64    `json:"simCPI"`
	ModelCPI   float64    `json:"modelCPI"`
	RelErr     float64    `json:"relErr"`
	SimStack   []StackCPI `json:"simStack"`
	ModelStack []StackCPI `json:"modelStack"`
}

// SweepJobResult is a sweep job's terminal result, bit-identical to the
// equivalent blocking RunSweep (cmd/sweep) computation.
type SweepJobResult struct {
	Base      string          `json:"base"`
	Param     string          `json:"param"`
	BaseValue int             `json:"baseValue"`
	Suite     string          `json:"suite"`
	Ops       int             `json:"ops"`
	Points    []SweepJobPoint `json:"points"`
}

// PlanJobCell is one evaluated grid cell of a plan job: its axis values
// (aligned with the plan's axes), the derived machine, and simulated vs
// model-extrapolated suite-mean CPI and stacks. RelErr is signed.
type PlanJobCell struct {
	Values     []int      `json:"values"`
	Machine    string     `json:"machine"`
	SimCPI     float64    `json:"simCPI"`
	ModelCPI   float64    `json:"modelCPI"`
	RelErr     float64    `json:"relErr"`
	SimStack   []StackCPI `json:"simStack"`
	ModelStack []StackCPI `json:"modelStack"`
}

// PlanJobResult is a plan job's terminal result, bit-identical to the
// equivalent blocking RunPlan (cmd/sweep grid mode) computation. Cells
// appear row-major with the last axis fastest; BaseValues is the fit
// point on each axis.
type PlanJobResult struct {
	Base       string        `json:"base"`
	Suite      string        `json:"suite"`
	Ops        int           `json:"ops"`
	Axes       []PlanAxis    `json:"axes"`
	BaseValues []int         `json:"baseValues"`
	Cells      []PlanJobCell `json:"cells"`
}

// Backpressure sentinels: Submit failures that are about the engine's
// state, not the spec. Callers (the HTTP layer) match with errors.Is to
// answer 503-retry-later instead of 400 — never by error text, which a
// submitted machine or suite name could collide with.
var (
	// ErrJobQueueFull reports a backlog at its QueueDepth bound.
	ErrJobQueueFull = errors.New("experiments: job queue full")
	// ErrJobsDraining reports an engine that is shutting down.
	ErrJobsDraining = errors.New("experiments: job engine is draining, not accepting jobs")
)

// JobCounts are the engine's lifecycle gauges, as served by /v1/stats.
type JobCounts struct {
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// JobsConfig tunes the Jobs engine.
type JobsConfig struct {
	// Workers is the number of jobs executed concurrently (default 1:
	// each job already parallelizes its simulations across
	// Options.Workers CPU workers, so more job workers oversubscribe).
	Workers int
	// QueueDepth bounds the backlog of unstarted jobs (default 64);
	// Submit fails once it is full.
	QueueDepth int
	// ArtifactDir, when non-empty, is where terminal job states are
	// persisted as <id>.json files (conventionally next to the run
	// store). Empty keeps jobs in memory only.
	ArtifactDir string
	// RetainTerminal bounds how many terminal jobs stay queryable in
	// memory (default 256): a long-running daemon must not grow with
	// every campaign it ever ran. Beyond the bound the oldest terminal
	// jobs are evicted from the API; their artifacts, when configured,
	// remain on disk.
	RetainTerminal int
}

func (c JobsConfig) withDefaults() JobsConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetainTerminal <= 0 {
		c.RetainTerminal = 256
	}
	return c
}

// Jobs executes campaigns, sweeps, plans, optimizations and seed
// sweeps asynchronously: Submit validates and enqueues, a bounded
// worker pool executes through the same Lab.Simulate / RunSweep /
// RunPlan / RunOptimize / RunSeeds entry points the blocking CLIs use
// (so batch and daemon answers stay bit-identical, and the run store is
// shared),
// per-job progress counters are fed from the store-hit/simulated
// callbacks, Cancel stops a job mid-flight via context cancellation,
// and terminal states are persisted as JSON artifacts. Safe for
// concurrent use.
type Jobs struct {
	opts Options
	cfg  JobsConfig

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	closed bool

	queue chan *job
	wg    sync.WaitGroup
}

// job is the engine's mutable record; all fields past the immutable
// header are guarded by Jobs.mu.
type job struct {
	id        string
	spec      JobSpec
	plan      *Plan     // resolved grid for plan jobs; nil otherwise
	optimize  *Optimize // resolved search for optimize jobs; nil otherwise
	seeds     *Seeds    // resolved sweep for seeds jobs; nil otherwise
	submitted time.Time
	ctx       context.Context
	cancel    context.CancelFunc

	state    JobState
	progress JobProgress
	// cellLeft tracks, for a plan job, how many workload runs each grid
	// machine still owes (armed at submission); a machine draining to
	// zero completes a cell. Nil for other kinds.
	cellLeft map[string]int
	err      error
	result   json.RawMessage
	started  time.Time
	finished time.Time
}

// NewJobs builds a job engine executing with the given simulation
// options (defaults applied as in Lab; Store shared with whatever else
// uses it) and starts its workers. Callers must Drain it on shutdown.
func NewJobs(opts Options, cfg JobsConfig) *Jobs {
	cfg = cfg.withDefaults()
	j := &Jobs{
		opts:  opts.withDefaults(),
		cfg:   cfg,
		jobs:  map[string]*job{},
		queue: make(chan *job, cfg.QueueDepth),
	}
	for i := 0; i < j.cfg.Workers; i++ {
		j.wg.Add(1)
		go j.worker()
	}
	return j
}

// newJobID returns a fresh random job identifier. Randomness (rather
// than a counter) keeps artifacts from distinct daemon runs in one
// directory from colliding.
func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("experiments: job id entropy: %v", err))
	}
	return "job-" + hex.EncodeToString(b[:])
}

// validate checks a spec without running anything and returns the total
// run count its execution will dispatch or serve from the store (for an
// optimize job: the search's upper bound). For a plan job it also
// returns the resolved grid, for an optimize job the resolved search,
// and for a seeds job the resolved sweep, so Submit can record totals
// and the worker never re-derives the machines.
func (j *Jobs) validate(spec JobSpec) (int, *Plan, *Optimize, *Seeds, error) {
	if err := spec.payloadMatchesKind(); err != nil {
		return 0, nil, nil, nil, err
	}
	switch spec.Kind {
	case JobKindCampaign:
		lab, err := campaignJobLab(*spec.Campaign, j.opts)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		return len(lab.Machines()) * lab.NumWorkloads(), nil, nil, nil, nil
	case JobKindSweep:
		sw := spec.Sweep
		base, err := sw.Base.Resolve()
		if err != nil {
			return 0, nil, nil, nil, err
		}
		if _, err := NewPlan(base, []PlanAxis{{Param: sw.Param, Values: sw.Values}}, sw.Suite); err != nil {
			return 0, nil, nil, nil, err
		}
		suite, err := suites.ByName(sw.Suite, suites.Options{NumOps: j.opts.NumOps})
		if err != nil {
			return 0, nil, nil, nil, err
		}
		return (1 + len(sw.Values)) * len(suite.Workloads), nil, nil, nil, nil
	case JobKindPlan:
		plan, err := spec.Plan.Resolve()
		if err != nil {
			return 0, nil, nil, nil, err
		}
		suite, err := suites.ByName(plan.Suite, suites.Options{NumOps: j.opts.NumOps})
		if err != nil {
			return 0, nil, nil, nil, err
		}
		return len(plan.Machines) * len(suite.Workloads), plan, nil, nil, nil
	case JobKindOptimize:
		o, err := spec.Optimize.Resolve()
		if err != nil {
			return 0, nil, nil, nil, err
		}
		suite, err := suites.ByName(o.Plan.Suite, suites.Options{NumOps: j.opts.NumOps})
		if err != nil {
			return 0, nil, nil, nil, err
		}
		return o.runBound(len(suite.Workloads)), nil, o, nil, nil
	case JobKindSeeds:
		s, err := spec.Seeds.Resolve()
		if err != nil {
			return 0, nil, nil, nil, err
		}
		return s.TotalRuns(), nil, nil, s, nil
	default:
		return 0, nil, nil, nil, fmt.Errorf("experiments: unknown job kind %q (want %q, %q, %q, %q or %q)",
			spec.Kind, JobKindCampaign, JobKindSweep, JobKindPlan, JobKindOptimize, JobKindSeeds)
	}
}

// payloadMatchesKind rejects a spec whose payloads disagree with its
// kind: the matching payload must be present and every other absent, so
// a mis-tagged submission fails loudly instead of silently running the
// wrong experiment.
func (spec JobSpec) payloadMatchesKind() error {
	if spec.Kind != JobKindCampaign && spec.Kind != JobKindSweep &&
		spec.Kind != JobKindPlan && spec.Kind != JobKindOptimize &&
		spec.Kind != JobKindSeeds {
		return nil // validate's default case names the valid kinds
	}
	payloads := []struct {
		kind string
		set  bool
	}{
		{JobKindCampaign, spec.Campaign != nil},
		{JobKindSweep, spec.Sweep != nil},
		{JobKindPlan, spec.Plan != nil},
		{JobKindOptimize, spec.Optimize != nil},
		{JobKindSeeds, spec.Seeds != nil},
	}
	for _, p := range payloads {
		if p.kind == spec.Kind && !p.set {
			return fmt.Errorf("experiments: %s job without a %s payload", spec.Kind, spec.Kind)
		}
	}
	for _, p := range payloads {
		if p.kind != spec.Kind && p.set {
			return fmt.Errorf("experiments: %s job with a %s payload", spec.Kind, p.kind)
		}
	}
	return nil
}

// campaignJobLab builds the lab a campaign job executes in. The
// campaign's explicit fit options take precedence over the engine's (see
// JobSpec); zeroing the engine fields makes NewCampaignLab inherit the
// campaign's values.
func campaignJobLab(c Campaign, opts Options) (*Lab, error) {
	if c.NumOps > 0 {
		opts.NumOps = 0
	}
	if c.FitStarts > 0 {
		opts.FitStarts = 0
	}
	if c.Seed > 0 {
		opts.Seed = 0
	}
	return NewCampaignLab(c, opts)
}

// Submit validates spec, enqueues it, and returns the queued snapshot.
// It fails fast — without enqueuing — on an invalid spec, a full queue,
// or an engine that is draining.
func (j *Jobs) Submit(spec JobSpec) (JobStatus, error) {
	total, plan, optimize, seeds, err := j.validate(spec)
	if err != nil {
		return JobStatus{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	jb := &job{
		id:        newJobID(),
		spec:      spec,
		plan:      plan,
		optimize:  optimize,
		seeds:     seeds,
		submitted: time.Now().UTC(),
		ctx:       ctx,
		cancel:    cancel,
		state:     JobQueued,
		progress:  JobProgress{TotalRuns: total},
	}
	if optimize != nil {
		jb.progress.TotalProbes = optimize.ProbeBound()
	}
	if seeds != nil {
		jb.progress.TotalSeeds = len(seeds.SeedList)
	}
	if plan != nil {
		// Cell totals are known at submission: the 202 snapshot already
		// reports them, and per-machine countdowns arm cell completion
		// once the worker's progress hook starts firing.
		jb.progress.TotalCells = len(plan.Machines)
		jb.cellLeft = make(map[string]int, len(plan.Machines))
		workloads := total / len(plan.Machines)
		for _, m := range plan.Machines {
			jb.cellLeft[m.Name] = workloads
		}
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		cancel()
		return JobStatus{}, ErrJobsDraining
	}
	select {
	case j.queue <- jb:
	default:
		j.mu.Unlock()
		cancel()
		return JobStatus{}, fmt.Errorf("%w (%d pending)", ErrJobQueueFull, j.cfg.QueueDepth)
	}
	j.jobs[jb.id] = jb
	j.order = append(j.order, jb.id)
	st := jb.snapshotLocked()
	j.mu.Unlock()
	return st, nil
}

// Get returns a snapshot of the identified job.
func (j *Jobs) Get(id string) (JobStatus, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	jb, ok := j.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return jb.snapshotLocked(), true
}

// List returns snapshots of every job in submission order.
func (j *Jobs) List() []JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JobStatus, 0, len(j.order))
	for _, id := range j.order {
		out = append(out, j.jobs[id].snapshotLocked())
	}
	return out
}

// Counts returns the lifecycle gauges.
func (j *Jobs) Counts() JobCounts {
	j.mu.Lock()
	defer j.mu.Unlock()
	var c JobCounts
	for _, jb := range j.jobs {
		switch jb.state {
		case JobQueued:
			c.Queued++
		case JobRunning:
			c.Running++
		case JobDone:
			c.Done++
		case JobFailed:
			c.Failed++
		case JobCancelled:
			c.Cancelled++
		}
	}
	return c
}

// Cancel cancels the identified job and returns its snapshot. A queued
// job goes terminal immediately; a running job stops dispatching new
// simulations and goes terminal once its worker observes the
// cancellation (poll Get for the transition). Cancelling a job that is
// already terminal is a no-op returning its current state.
func (j *Jobs) Cancel(id string) (JobStatus, bool) {
	j.mu.Lock()
	jb, ok := j.jobs[id]
	if !ok {
		j.mu.Unlock()
		return JobStatus{}, false
	}
	jb.cancel()
	if jb.state == JobQueued {
		j.finishLocked(jb, JobCancelled, nil, nil)
	}
	st := jb.snapshotLocked()
	j.mu.Unlock()
	return st, true
}

// Drain stops accepting new jobs and waits for the queued and running
// ones to finish. When ctx expires first, every remaining job is
// cancelled and Drain waits for the workers to observe that (bounded:
// cancellation stops new simulation dispatch, so a worker returns after
// at most its in-flight simulations). Safe to call more than once.
func (j *Jobs) Drain(ctx context.Context) {
	j.mu.Lock()
	if !j.closed {
		j.closed = true
		close(j.queue)
	}
	j.mu.Unlock()

	done := make(chan struct{})
	go func() {
		j.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		j.cancelAll()
		<-done
	}
}

// cancelAll cancels every non-terminal job.
func (j *Jobs) cancelAll() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, jb := range j.jobs {
		if jb.state.Terminal() {
			continue
		}
		jb.cancel()
		if jb.state == JobQueued {
			j.finishLocked(jb, JobCancelled, nil, nil)
		}
	}
}

func (j *Jobs) worker() {
	defer j.wg.Done()
	for jb := range j.queue {
		j.run(jb)
	}
}

func (j *Jobs) run(jb *job) {
	j.mu.Lock()
	if jb.state != JobQueued { // cancelled while waiting in the queue
		j.mu.Unlock()
		return
	}
	jb.state = JobRunning
	jb.started = time.Now().UTC()
	j.mu.Unlock()

	result, err := j.execute(jb)
	var raw json.RawMessage
	if err == nil {
		raw, err = json.Marshal(result)
	}

	j.mu.Lock()
	switch {
	case err == nil:
		// A completed job stays done even if a cancel raced the last
		// simulation: the work exists, hiding it helps nobody.
		j.finishLocked(jb, JobDone, raw, nil)
	case jb.ctx.Err() != nil:
		j.finishLocked(jb, JobCancelled, nil, nil)
	default:
		j.finishLocked(jb, JobFailed, nil, err)
	}
	j.mu.Unlock()
}

// execute runs the job's spec under its cancellation context, with the
// job's progress counters hooked into the shared runSimJobs path.
func (j *Jobs) execute(jb *job) (any, error) {
	opts := j.opts
	opts.Progress = func(run RunKey, hit bool) {
		j.mu.Lock()
		jb.progress.DoneRuns++
		if hit {
			jb.progress.StoreHits++
		} else {
			jb.progress.Simulated++
		}
		if left, ok := jb.cellLeft[run.Machine]; ok {
			if left == 1 {
				delete(jb.cellLeft, run.Machine)
				jb.progress.DoneCells++
			} else {
				jb.cellLeft[run.Machine] = left - 1
			}
		}
		j.mu.Unlock()
	}
	switch jb.spec.Kind {
	case JobKindCampaign:
		return runCampaignJob(jb.ctx, *jb.spec.Campaign, opts)
	case JobKindSweep:
		return runSweepJob(jb.ctx, *jb.spec.Sweep, opts)
	case JobKindPlan:
		return j.runPlanJob(jb, opts)
	case JobKindOptimize:
		return j.runOptimizeJob(jb, opts)
	case JobKindSeeds:
		return j.runSeedsJob(jb, opts)
	default:
		return nil, fmt.Errorf("experiments: unknown job kind %q", jb.spec.Kind) // unreachable past Submit
	}
}

// runCampaignJob executes a campaign exactly as cmd/experiments does —
// NewCampaignLab, Simulate, Model per (machine, suite) — and condenses
// the fits into the job result.
func runCampaignJob(ctx context.Context, c Campaign, opts Options) (*CampaignJobResult, error) {
	lab, err := campaignJobLab(c, opts)
	if err != nil {
		return nil, err
	}
	if err := lab.SimulateContext(ctx); err != nil {
		return nil, err
	}
	out := &CampaignJobResult{
		Ops:       lab.opts.NumOps,
		FitStarts: lab.opts.FitStarts,
		Seed:      lab.opts.Seed,
	}
	for _, m := range lab.Machines() {
		for _, suiteName := range lab.SuiteNames() {
			// Fits are not individually cancellable, but a cancelled job
			// stops between them.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			model, err := lab.Model(m.Name, suiteName)
			if err != nil {
				return nil, err
			}
			obs, err := lab.Observations(m.Name, suiteName)
			if err != nil {
				return nil, err
			}
			mr := CampaignModelResult{
				Machine:    m.Name,
				ConfigHash: m.ConfigHash(),
				Suite:      suiteName,
				Params:     model.P,
			}
			errs := make([]float64, 0, len(obs))
			for i := range obs {
				o := &obs[i]
				pred := model.PredictCPI(o.Feat)
				mr.Workloads = append(mr.Workloads, WorkloadCPI{
					Workload:     o.Name,
					MeasuredCPI:  o.MeasuredCPI,
					PredictedCPI: pred,
					RelErr:       (pred - o.MeasuredCPI) / o.MeasuredCPI,
				})
				errs = append(errs, stats.RelErr(pred, o.MeasuredCPI))
			}
			mr.AvgRelErr = stats.Mean(errs)
			mr.MaxRelErr = stats.Max(errs)
			mr.FracBelow20Pct = stats.FractionBelow(errs, 0.20)
			out.Models = append(out.Models, mr)
		}
	}
	return out, nil
}

// runSweepJob executes a sweep exactly as cmd/sweep does (RunSweep) and
// flattens the result into its serializable form.
func runSweepJob(ctx context.Context, sw SweepSpec, opts Options) (*SweepJobResult, error) {
	base, err := sw.Base.Resolve()
	if err != nil {
		return nil, err
	}
	res, err := RunSweepContext(ctx, base, sw.Param, sw.Values, sw.Suite, opts)
	if err != nil {
		return nil, err
	}
	out := &SweepJobResult{
		Base:      res.Base,
		Param:     res.Param.Name,
		BaseValue: res.BaseValue,
		Suite:     res.Suite,
		Ops:       res.NumOps,
	}
	for _, p := range res.Points {
		out.Points = append(out.Points, SweepJobPoint{
			Value:      p.Value,
			Machine:    p.Machine,
			SimCPI:     p.SimCPI,
			ModelCPI:   p.ModelCPI,
			RelErr:     (p.ModelCPI - p.SimCPI) / p.SimCPI,
			SimStack:   stackCPIs(p.SimStack),
			ModelStack: stackCPIs(p.ModelStack),
		})
	}
	return out, nil
}

// runPlanJob executes a plan exactly as cmd/sweep's grid mode does
// (RunPlan, over the grid Submit already resolved) and flattens the
// result into its serializable form. Cell progress was armed at
// submission: every grid machine (the base fit point included) owes one
// run per workload, and a machine draining to zero marks its cell done.
func (j *Jobs) runPlanJob(jb *job, opts Options) (*PlanJobResult, error) {
	res, err := RunPlanContext(jb.ctx, jb.plan, opts)
	if err != nil {
		return nil, err
	}
	out := &PlanJobResult{
		Base:       res.Base,
		Suite:      res.Suite,
		Ops:        res.NumOps,
		Axes:       res.Axes,
		BaseValues: res.BaseValues,
	}
	for _, pt := range res.Points {
		out.Cells = append(out.Cells, PlanJobCell{
			Values:     pt.Values,
			Machine:    pt.Machine,
			SimCPI:     pt.SimCPI,
			ModelCPI:   pt.ModelCPI,
			RelErr:     (pt.ModelCPI - pt.SimCPI) / pt.SimCPI,
			SimStack:   stackCPIs(pt.SimStack),
			ModelStack: stackCPIs(pt.ModelStack),
		})
	}
	return out, nil
}

// runOptimizeJob executes a design-space search exactly as cmd/sweep's
// -optimize mode does (RunOptimizeContext, over the search Submit
// already resolved) and returns its wire report. The run counters flow
// through the shared progress hook; the probe counter is fed by the
// optimizer's own hook, firing after each full-fidelity probe batch.
func (j *Jobs) runOptimizeJob(jb *job, opts Options) (*OptimizeReport, error) {
	onProbe := func(done int) {
		j.mu.Lock()
		jb.progress.DoneProbes = done
		j.mu.Unlock()
	}
	res, err := RunOptimizeContext(jb.ctx, jb.optimize, opts, onProbe)
	if err != nil {
		return nil, err
	}
	return res.Report(), nil
}

// runSeedsJob executes a seed sweep exactly as cmd/sweep's -seeds mode
// does (RunSeedsContext, over the sweep Submit already resolved) and
// returns its wire report. The run counters flow through the shared
// progress hook; the seed counter is fed by the sweep's own hook,
// firing after each fully evaluated replication. A cancelled job keeps
// every completed simulation in the store, so a resubmission resumes
// warm.
func (j *Jobs) runSeedsJob(jb *job, opts Options) (*SeedsReport, error) {
	onSeed := func(done int) {
		j.mu.Lock()
		jb.progress.DoneSeeds = done
		j.mu.Unlock()
	}
	res, err := RunSeedsContext(jb.ctx, jb.seeds, opts, onSeed)
	if err != nil {
		return nil, err
	}
	return res.Report(), nil
}

// finishLocked moves jb to a terminal state and persists its artifact
// before the new state becomes observable (the caller holds j.mu, which
// every snapshot takes): a client that polls a job to completion can
// rely on the artifact already being on disk. The file is a few KB, so
// briefly holding the lock across the write is cheaper than the
// artifact-after-terminal race it removes.
func (j *Jobs) finishLocked(jb *job, state JobState, result json.RawMessage, err error) {
	jb.state = state
	jb.result = result
	jb.err = err
	jb.finished = time.Now().UTC()
	j.persist(jb.snapshotLocked())
	j.pruneLocked()
}

// pruneLocked evicts the oldest terminal jobs beyond the retention
// bound. Caller holds j.mu.
func (j *Jobs) pruneLocked() {
	terminal := 0
	for _, jb := range j.jobs {
		if jb.state.Terminal() {
			terminal++
		}
	}
	excess := terminal - j.cfg.RetainTerminal
	if excess <= 0 {
		return
	}
	kept := j.order[:0]
	for _, id := range j.order {
		if excess > 0 && j.jobs[id].state.Terminal() {
			delete(j.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	j.order = kept
}

// snapshotLocked builds the job's immutable status. Caller holds j.mu.
func (jb *job) snapshotLocked() JobStatus {
	st := JobStatus{
		ID:        jb.id,
		Kind:      jb.spec.Kind,
		State:     jb.state,
		Spec:      jb.spec,
		Progress:  jb.progress,
		Submitted: jb.submitted,
		Result:    jb.result,
	}
	if jb.err != nil {
		st.Error = jb.err.Error()
	}
	if !jb.started.IsZero() {
		t := jb.started
		st.Started = &t
	}
	if !jb.finished.IsZero() {
		t := jb.finished
		st.Finished = &t
	}
	return st
}

// persist writes a terminal snapshot as a JSON artifact under the
// configured directory, with the run store's atomic temp+rename
// discipline so readers never observe a torn file. Persistence is best
// effort: an unwritable artifact directory must not fail the job whose
// result is still served from memory.
func (j *Jobs) persist(st JobStatus) {
	if j.cfg.ArtifactDir == "" || !st.State.Terminal() {
		return
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return
	}
	data = append(data, '\n')
	if err := os.MkdirAll(j.cfg.ArtifactDir, 0o755); err != nil {
		return
	}
	dst := filepath.Join(j.cfg.ArtifactDir, st.ID+".json")
	tmp, err := os.CreateTemp(j.cfg.ArtifactDir, "."+st.ID+".tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
	}
}
