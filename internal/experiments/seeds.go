package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/suites"
	"repro/internal/uarch"
)

// MaxSeeds bounds a seed sweep's replication count. Each seed costs a
// full campaign simulation plus one fit per (machine, suite) cell, and
// the t-based confidence intervals gain little past a few dozen
// replications, so an accidental "count": 1000000 is rejected eagerly.
const MaxSeeds = 64

// SeedsSpec is the declarative form of a seed-sweep campaign: the JSON
// schema of seeds files, POST /v1/seeds bodies and seeds job payloads.
// The subject grid is either a single base machine × suite (the common
// case) or a whole campaign; the replications are either an explicit
// seed list or a count N standing for seeds 1..N. Exactly one of each
// pair must be set.
//
// A campaign used here must not carry its own fit options (ops,
// fitStarts, seed): the sweep owns the seed axis, and ops/fitStarts
// come from the executing engine's options — the same rule that keeps
// daemon and CLI answers bit-identical for every other kind.
type SeedsSpec struct {
	Base     *MachineSpec `json:"base,omitempty"`
	Suite    string       `json:"suite,omitempty"`
	Campaign *Campaign    `json:"campaign,omitempty"`
	Seeds    []uint64     `json:"seeds,omitempty"`
	Count    int          `json:"count,omitempty"`
}

// ParseSeedsSpec decodes a seeds document with the scenario-file rules:
// unknown fields and trailing data are errors.
func ParseSeedsSpec(data []byte) (SeedsSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var spec SeedsSpec
	if err := dec.Decode(&spec); err != nil {
		return SeedsSpec{}, fmt.Errorf("experiments: parse seeds: %w", err)
	}
	if dec.More() {
		return SeedsSpec{}, fmt.Errorf("experiments: parse seeds: trailing data after seeds document")
	}
	return spec, nil
}

// LoadSeedsSpec reads and parses a seeds file.
func LoadSeedsSpec(path string) (SeedsSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SeedsSpec{}, fmt.Errorf("experiments: %w", err)
	}
	spec, err := ParseSeedsSpec(data)
	if err != nil {
		return SeedsSpec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return spec, nil
}

// Seeds is a validated, fully resolved seed sweep: the subject machines
// materialized through the uarch registry, the suite names checked
// against the suite registry, and the replication list expanded and
// deduplicated.
type Seeds struct {
	Spec     SeedsSpec
	Machines []*uarch.Machine
	Suites   []string
	SeedList []uint64

	// runsPerMachine is the per-seed workload count of one machine
	// (summed over the suites) — the job engine's run accounting.
	runsPerMachine int
}

// Resolve materializes the spec into a validated Seeds. Everything that
// can be rejected without simulating — unknown machines or suites,
// ambiguous subjects, empty or duplicated seed lists — is rejected
// here, so the serving layer and job engine fail fast.
func (spec SeedsSpec) Resolve() (*Seeds, error) {
	s := &Seeds{Spec: spec}

	switch {
	case spec.Campaign != nil:
		if spec.Base != nil || spec.Suite != "" {
			return nil, fmt.Errorf("experiments: seeds take a base+suite or a campaign, not both")
		}
		c := spec.Campaign
		if c.NumOps != 0 || c.FitStarts != 0 || c.Seed != 0 {
			return nil, fmt.Errorf("experiments: a seeds campaign must not set ops, fitStarts or seed (the sweep owns the seed axis; ops and fitStarts come from the engine options)")
		}
		if len(c.Machines) == 0 {
			return nil, fmt.Errorf("experiments: seeds campaign has no machines")
		}
		if len(c.Suites) == 0 {
			return nil, fmt.Errorf("experiments: seeds campaign has no suites")
		}
		machines, err := c.resolveMachines()
		if err != nil {
			return nil, err
		}
		s.Machines = machines
		seen := map[string]bool{}
		for _, name := range c.Suites {
			if seen[name] {
				return nil, fmt.Errorf("experiments: seeds campaign lists suite %q twice", name)
			}
			seen[name] = true
			s.Suites = append(s.Suites, name)
		}
	case spec.Base != nil:
		if spec.Suite == "" {
			return nil, fmt.Errorf("experiments: seeds with a base need a suite")
		}
		m, err := spec.Base.Resolve()
		if err != nil {
			return nil, err
		}
		s.Machines = []*uarch.Machine{m}
		s.Suites = []string{spec.Suite}
	default:
		return nil, fmt.Errorf("experiments: seeds need a base+suite or a campaign")
	}

	// Suite names are validated through the registry here (yielding the
	// ErrUnknownSuite sentinel the serving layer classifies), and the
	// per-seed workload count is recorded for run accounting. The
	// workload roster depends only on the suite name, never on ops or
	// seed base, so the default instantiation is the cheap one to ask.
	for _, name := range s.Suites {
		// Seed sweeps redraw every workload from a shifted seed base,
		// which a recorded trace file cannot do — reject file-backed
		// suites here, before any cell runs, rather than failing on the
		// first non-canonical seed mid-campaign.
		if suites.IsFileBacked(name) {
			return nil, fmt.Errorf("experiments: suite %q is file-backed: recorded traces cannot be re-seeded for a seed sweep", name)
		}
		suite, err := suites.ByName(name, suites.Options{})
		if err != nil {
			return nil, err
		}
		s.runsPerMachine += len(suite.Workloads)
	}

	switch {
	case len(spec.Seeds) > 0 && spec.Count != 0:
		return nil, fmt.Errorf("experiments: seeds take a seed list or a count, not both")
	case len(spec.Seeds) > 0:
		seen := map[uint64]bool{}
		for _, seed := range spec.Seeds {
			if seed == 0 {
				return nil, fmt.Errorf("experiments: seed 0 is reserved (seeds start at 1; seed 1 is the canonical single-seed campaign)")
			}
			if seen[seed] {
				return nil, fmt.Errorf("experiments: seed %d listed twice", seed)
			}
			seen[seed] = true
		}
		s.SeedList = append([]uint64(nil), spec.Seeds...)
	case spec.Count > 0:
		s.SeedList = make([]uint64, spec.Count)
		for i := range s.SeedList {
			s.SeedList[i] = uint64(i + 1)
		}
	case spec.Count < 0:
		return nil, fmt.Errorf("experiments: seeds count must be positive, got %d", spec.Count)
	default:
		return nil, fmt.Errorf("experiments: seeds need a seed list or a count")
	}
	if len(s.SeedList) > MaxSeeds {
		return nil, fmt.Errorf("experiments: %d seeds exceed the limit of %d", len(s.SeedList), MaxSeeds)
	}
	return s, nil
}

// TotalRuns is the simulation-run count a full execution dispatches or
// serves from the store: every seed runs every workload of every suite
// on every machine.
func (s *Seeds) TotalRuns() int {
	return len(s.SeedList) * len(s.Machines) * s.runsPerMachine
}

// seedOptions maps one campaign seed onto the two seed knobs of an
// execution: the fit-restart seed and the workload-generator base.
// Seed s uses SeedBase s-1, so seed 1 (Seed=1, SeedBase=0) is exactly
// the canonical single-seed campaign — a sweep over {1} reproduces
// every existing result bit-identically, and its runs come straight
// from a warm store.
func seedOptions(opts Options, seed uint64) Options {
	opts.Seed = seed
	opts.SeedBase = seed - 1
	return opts
}

// SeedMetric is the across-seed distribution of one scalar: the
// per-seed values (in SeedList order) and their sample statistics. The
// interval is Student-t at 95% over the sample (Bessel-corrected)
// standard deviation; with a single seed no interval exists and the
// bounds collapse to the mean (stats.CI95), keeping every field finite
// for JSON.
type SeedMetric struct {
	PerSeed   []float64 `json:"perSeed"`
	Mean      float64   `json:"mean"`
	SampleStd float64   `json:"sampleStd"`
	CI95Lo    float64   `json:"ci95Lo"`
	CI95Hi    float64   `json:"ci95Hi"`
	Min       float64   `json:"min"`
	Max       float64   `json:"max"`
}

func seedMetric(xs []float64) SeedMetric {
	lo, hi, _ := stats.CI95(xs)
	return SeedMetric{
		PerSeed:   xs,
		Mean:      stats.Mean(xs),
		SampleStd: stats.SampleStdDev(xs),
		CI95Lo:    lo,
		CI95Hi:    hi,
		Min:       stats.Min(xs),
		Max:       stats.Max(xs),
	}
}

// CoeffStability is the across-seed stability of one fitted regression
// parameter. CV is the coefficient of variation SampleStd/|Mean| — the
// scale-free answer to "does this coefficient mean anything, or is the
// fit chasing the workload draw?" — defined 0 when the mean is 0.
type CoeffStability struct {
	Name      string  `json:"name"`
	Mean      float64 `json:"mean"`
	SampleStd float64 `json:"sampleStd"`
	CV        float64 `json:"cv"`
}

func coeffStability(name string, xs []float64) CoeffStability {
	m := stats.Mean(xs)
	sd := stats.SampleStdDev(xs)
	cv := 0.0
	if m != 0 {
		cv = sd / math.Abs(m)
	}
	return CoeffStability{Name: name, Mean: m, SampleStd: sd, CV: cv}
}

// SeedsCell is one (machine, suite) cell of a seeds report: the
// across-seed distributions of the suite-mean measured CPI and of the
// model's mean absolute relative error, plus the fit-stability of every
// mechanistic-empirical coefficient. MaxCoeffCV is the worst CV over
// the coefficients — the single number to watch for a fit whose
// parameters are not seed-stable.
type SeedsCell struct {
	Machine    string           `json:"machine"`
	Suite      string           `json:"suite"`
	CPI        SeedMetric       `json:"cpi"`
	MARE       SeedMetric       `json:"mare"`
	Coeffs     []CoeffStability `json:"coeffs"`
	MaxCoeffCV float64          `json:"maxCoeffCV"`
}

// SeedsReport is the wire form of a SeedsResult — the one JSON shape
// shared by POST /v1/seeds responses, seeds job results and cmd/sweep
// -seeds -json output, so every surface stays byte-comparable.
type SeedsReport struct {
	Seeds     []uint64    `json:"seeds"`
	Ops       int         `json:"ops"`
	FitStarts int         `json:"fitStarts"`
	Machines  []string    `json:"machines"`
	Suites    []string    `json:"suites"`
	Cells     []SeedsCell `json:"cells"`
	Sims      RunSourcing `json:"sims"`
}

// SeedsResult is an executed seed sweep. Cells appear machine-major in
// campaign order (every suite of the first machine, then the second),
// with per-seed values in SeedList order.
type SeedsResult struct {
	Seeds     []uint64
	NumOps    int
	FitStarts int
	Machines  []string
	Suites    []string
	Cells     []SeedsCell

	Stats SimStats
}

// Report flattens the result into its wire form.
func (r *SeedsResult) Report() *SeedsReport {
	return &SeedsReport{
		Seeds:     r.Seeds,
		Ops:       r.NumOps,
		FitStarts: r.FitStarts,
		Machines:  r.Machines,
		Suites:    r.Suites,
		Cells:     r.Cells,
		Sims: RunSourcing{
			StoreHits: r.Stats.Hits,
			Simulated: r.Stats.Simulated,
			TraceGens: r.Stats.TraceGens,
		},
	}
}

// Render returns the seeds report as text: one line per (machine,
// suite) cell with mean ± CI for CPI and model error, then the
// least-stable coefficients.
func (r *SeedsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seeds: %d replications %v (%d µops/workload, %d fit starts)\n",
		len(r.Seeds), r.Seeds, r.NumOps, r.FitStarts)
	fmt.Fprintf(&b, "  %-12s %-8s %9s %19s %9s %17s %8s\n",
		"machine", "suite", "mean-CPI", "95% CI", "MARE", "95% CI", "max-CV")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-12s %-8s %9.4f [%8.4f,%8.4f] %8.2f%% [%6.2f%%,%6.2f%%] %7.3f\n",
			c.Machine, c.Suite,
			c.CPI.Mean, c.CPI.CI95Lo, c.CPI.CI95Hi,
			100*c.MARE.Mean, 100*c.MARE.CI95Lo, 100*c.MARE.CI95Hi,
			c.MaxCoeffCV)
	}
	b.WriteString("\ncoefficient stability (CV = sample-std/|mean| across seeds):\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %s/%s:", c.Machine, c.Suite)
		for _, co := range c.Coeffs {
			fmt.Fprintf(&b, " %s=%.3f", co.Name, co.CV)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// seedCellData accumulates one (machine, suite) cell across seeds. All
// per-seed slots are preallocated and written by seed index, so the
// aggregation order is SeedList order no matter which seed's fit
// finishes first — the concurrent and sequential execution paths fill
// identical grids.
type seedCellData struct {
	cpis   []float64
	mares  []float64
	coeffs [][]float64 // per parameter, per seed
}

func newSeedCellGrid(machines, suiteNames, coeffNames, seeds int) [][]seedCellData {
	grid := make([][]seedCellData, machines)
	for mi := range grid {
		grid[mi] = make([]seedCellData, suiteNames)
		for si := range grid[mi] {
			d := &grid[mi][si]
			d.cpis = make([]float64, seeds)
			d.mares = make([]float64, seeds)
			d.coeffs = make([][]float64, coeffNames)
			for ci := range d.coeffs {
				d.coeffs[ci] = make([]float64, seeds)
			}
		}
	}
	return grid
}

func (d *seedCellData) set(seedIdx int, cpi, mare float64, coeffs []float64) {
	d.cpis[seedIdx] = cpi
	d.mares[seedIdx] = mare
	for i, v := range coeffs {
		d.coeffs[i][seedIdx] = v
	}
}

// evalSeedCell reduces one fitted (machine, suite, seed) cell to its
// two scalars: the suite-mean measured CPI and the model's mean
// absolute relative prediction error, both over the fit's own sorted
// observation order — the same numbers every other reporting surface
// derives, so a sweep over seed {1} is bit-identical to them.
func evalSeedCell(model *core.Model, obs []core.Observation) (cpi, mare float64) {
	cpis := make([]float64, 0, len(obs))
	errs := make([]float64, 0, len(obs))
	for i := range obs {
		o := &obs[i]
		cpis = append(cpis, o.MeasuredCPI)
		errs = append(errs, stats.RelErr(model.PredictCPI(o.Feat), o.MeasuredCPI))
	}
	return stats.Mean(cpis), stats.Mean(errs)
}

// seedsResultFrom aggregates the accumulated per-seed cells into the
// result, in the fixed machine-major order both execution paths share —
// the aggregation arithmetic runs in one place, so the blocking and
// provider paths emit per-float identical reports.
func seedsResultFrom(s *Seeds, opts Options, grid [][]seedCellData, st SimStats) *SeedsResult {
	names := core.ParamNames()
	machines := make([]string, len(s.Machines))
	for i, m := range s.Machines {
		machines[i] = m.Name
	}
	res := &SeedsResult{
		Seeds:     s.SeedList,
		NumOps:    opts.NumOps,
		FitStarts: opts.FitStarts,
		Machines:  machines,
		Suites:    s.Suites,
		Stats:     st,
	}
	for mi := range s.Machines {
		for si, suiteName := range s.Suites {
			d := &grid[mi][si]
			cell := SeedsCell{
				Machine: machines[mi],
				Suite:   suiteName,
				CPI:     seedMetric(d.cpis),
				MARE:    seedMetric(d.mares),
			}
			for ci, name := range names {
				co := coeffStability(name, d.coeffs[ci])
				cell.Coeffs = append(cell.Coeffs, co)
				if co.CV > cell.MaxCoeffCV {
					cell.MaxCoeffCV = co.CV
				}
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res
}

// RunSeeds executes the seed sweep standalone, simulating and fitting
// every (machine, suite, seed) cell through opts.Store when configured.
// For a long-running caller that wants the per-seed fits cached and
// deduplicated across sweeps, use Provider.Seeds.
func RunSeeds(s *Seeds, opts Options) (*SeedsResult, error) {
	return RunSeedsContext(context.Background(), s, opts, nil)
}

// RunSeedsContext is RunSeeds with cancellation and a progress hook:
// cancelling ctx stops the dispatch of new simulations (in-flight ones
// finish and land in the store, so a rerun resumes warm) and skips the
// remaining fits, returning ctx.Err(). onSeed, when non-nil, is called
// each time another seed has been fully evaluated, with the cumulative
// seed count (calls are never concurrent). The async Jobs engine runs
// seeds jobs through here.
//
// Replications fan out across the worker pool rather than running one
// lab per seed sequentially: every seed's pending runs join a single
// runSimJobs batch (each job recording into its own seed's lab), and
// the per-cell fits are then dispatched to the same worker bound. The
// report is per-float identical to the sequential execution: run
// results are keyed by (machine, spec, seed base) independent of
// scheduling, each cell's fit consumes only its own seed's
// observations, and the grid is written by seed index, so aggregation
// order never depends on completion order.
func RunSeedsContext(ctx context.Context, s *Seeds, opts Options, onSeed func(done int)) (*SeedsResult, error) {
	opts = opts.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	grid := newSeedCellGrid(len(s.Machines), len(s.Suites), len(core.ParamNames()), len(s.SeedList))

	// One lab per seed — each carries its seed's fit options and
	// accumulates its own runs — but one combined simulation batch, so
	// seeds share the worker pool and the materializer pipeline.
	labs := make([]*Lab, len(s.SeedList))
	var jobs []simJob
	for i, seed := range s.SeedList {
		sopts := seedOptions(opts, seed)
		suiteList := make([]suites.Suite, 0, len(s.Suites))
		for _, name := range s.Suites {
			suite, err := suites.ByName(name, suites.Options{NumOps: sopts.NumOps, SeedBase: sopts.SeedBase})
			if err != nil {
				return nil, err
			}
			suiteList = append(suiteList, suite)
		}
		lab, err := NewCustomLab(s.Machines, suiteList, sopts)
		if err != nil {
			return nil, err
		}
		labs[i] = lab
		jobs = append(jobs, lab.pendingJobs()...)
	}
	st, err := runSimJobs(ctx, jobs, opts, nil)
	if err != nil {
		return nil, err
	}

	// Fit phase: every (seed, machine, suite) cell is independent, so
	// they run concurrently under the same worker bound. onSeed fires
	// under the mutex whenever some seed's last cell completes, keeping
	// the cumulative count monotone and the calls serialized.
	type fitCell struct{ seedIdx, mi, si int }
	cells := make([]fitCell, 0, len(s.SeedList)*len(s.Machines)*len(s.Suites))
	for i := range s.SeedList {
		for mi := range s.Machines {
			for si := range s.Suites {
				cells = append(cells, fitCell{seedIdx: i, mi: mi, si: si})
			}
		}
	}
	var (
		mu        sync.Mutex
		firstErr  error
		doneSeeds int
		remaining = make([]int, len(s.SeedList))
		wg        sync.WaitGroup
	)
	for i := range remaining {
		remaining[i] = len(s.Machines) * len(s.Suites)
	}
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	stopped := func() bool {
		if ctx.Err() != nil {
			return true
		}
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	workers := opts.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	cellCh := make(chan fitCell)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range cellCh {
				// Fits are not individually cancellable, but a cancelled
				// or failed sweep stops between them.
				if stopped() {
					continue
				}
				m := s.Machines[c.mi]
				suiteName := s.Suites[c.si]
				lab := labs[c.seedIdx]
				obs, err := lab.Observations(m.Name, suiteName)
				if err != nil {
					fail(err)
					continue
				}
				model, err := fitModel(m, obs, seedOptions(opts, s.SeedList[c.seedIdx]))
				if err != nil {
					fail(err)
					continue
				}
				cpi, mare := evalSeedCell(model, obs)
				mu.Lock()
				grid[c.mi][c.si].set(c.seedIdx, cpi, mare, model.P.Slice())
				remaining[c.seedIdx]--
				if remaining[c.seedIdx] == 0 {
					doneSeeds++
					if onSeed != nil {
						onSeed(doneSeeds)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, c := range cells {
		cellCh <- c
	}
	close(cellCh)
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return seedsResultFrom(s, opts, grid, st), nil
}

// Seeds runs a seed sweep through the provider: every (machine, suite,
// seed) cell joins the singleflight-deduplicated model cache — whose
// key covers the seed knobs — so repeated sweeps, overlapping sweeps
// and single-seed requests for the same cells all share fits. The
// returned result's Stats cover only this call's simulations: a sweep
// served entirely from cache (or a warm run store) reports zeros.
// onSeed, when non-nil, is called after each fully evaluated seed with
// the cumulative seed count. The fits themselves are not cancellable
// (they complete for any concurrent joiner); ctx is observed between
// cells.
func (p *Provider) Seeds(ctx context.Context, s *Seeds, onSeed func(done int)) (*SeedsResult, error) {
	grid := newSeedCellGrid(len(s.Machines), len(s.Suites), len(core.ParamNames()), len(s.SeedList))
	var st SimStats
	for i, seed := range s.SeedList {
		sopts := seedOptions(p.opts, seed)
		for mi, m := range s.Machines {
			for si, suiteName := range s.Suites {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				f, fst, err := p.fittedWith(m, suiteName, sopts)
				st.Hits += fst.Hits
				st.Simulated += fst.Simulated
				st.TraceGens += fst.TraceGens
				if err != nil {
					return nil, err
				}
				cpi, mare := evalSeedCell(f.Model, f.Obs)
				grid[mi][si].set(i, cpi, mare, f.Model.P.Slice())
			}
		}
		if onSeed != nil {
			onSeed(i + 1)
		}
	}
	return seedsResultFrom(s, p.opts, grid, st), nil
}
