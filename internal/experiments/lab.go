// Package experiments orchestrates the paper's full evaluation: it runs
// the two benchmark suites on the three simulated machines, fits
// mechanistic-empirical models (plus the linear-regression and ANN
// baselines), and regenerates every table and figure of the paper as
// structured data with ASCII renderings. cmd/experiments and the
// top-level benchmarks are thin wrappers around this package.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/runstore"
	"repro/internal/sim"
	"repro/internal/suites"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Options configures a Lab.
type Options struct {
	// NumOps per workload (default 300000; benchmarks shrink this).
	NumOps int
	// FitStarts is the multi-start count for model fitting (default 12).
	FitStarts int
	// Seed drives fitting restarts (default 1).
	Seed uint64
	// Workers bounds simulation parallelism (default NumCPU).
	Workers int
	// Store, when non-nil, is consulted before every simulation and
	// updated as workers finish, making Simulate incremental across
	// processes: a warm store satisfies the whole campaign without
	// dispatching a single job.
	Store *runstore.Store
}

func (o Options) withDefaults() Options {
	if o.NumOps <= 0 {
		o.NumOps = 300000
	}
	if o.FitStarts <= 0 {
		o.FitStarts = 12
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	return o
}

// runKey identifies one (machine, workload) simulation.
type runKey struct {
	machine  string
	workload string
}

// Lab owns the machines, suites, simulation results, and fitted models.
// Construct with NewLab, populate with Simulate, then call the Table*/
// Fig* methods in any order. Not safe for concurrent method calls.
type Lab struct {
	opts     Options
	machines []*uarch.Machine
	suiteSet map[string]suites.Suite
	runs     map[runKey]*sim.Result
	models   map[string]*core.Model // key: machine + "/" + suite
	stats    SimStats
}

// SimStats reports how Simulate sourced its runs, cumulatively over all
// Simulate calls on this Lab.
type SimStats struct {
	// Hits is the number of runs satisfied from the run store.
	Hits int
	// Simulated is the number of runs actually dispatched to workers
	// (store misses, or all runs when no store is configured).
	Simulated int
}

// NewLab builds a lab with the paper's three machines and two suites.
func NewLab(opts Options) *Lab {
	opts = opts.withDefaults()
	return &Lab{
		opts:     opts,
		machines: uarch.StockMachines(),
		suiteSet: map[string]suites.Suite{
			"cpu2000": suites.CPU2000Like(suites.Options{NumOps: opts.NumOps}),
			"cpu2006": suites.CPU2006Like(suites.Options{NumOps: opts.NumOps}),
		},
		runs:   map[runKey]*sim.Result{},
		models: map[string]*core.Model{},
	}
}

// Machines returns the lab's machines in generation order.
func (l *Lab) Machines() []*uarch.Machine { return l.machines }

// SuiteNames returns the suite names in a fixed order.
func (l *Lab) SuiteNames() []string { return []string{"cpu2000", "cpu2006"} }

// Suite returns a suite by name.
func (l *Lab) Suite(name string) (suites.Suite, bool) {
	s, ok := l.suiteSet[name]
	return s, ok
}

// Simulate runs every workload of both suites on every machine. It is
// idempotent: already-computed runs are kept, and when a run store is
// configured every pending run is first looked up there — only misses
// are dispatched to the worker pool, and their results are written back
// atomically as workers finish. Results are deterministic regardless of
// scheduling (every run is independent and seeded) and regardless of the
// store (a cached Result is exactly what re-simulating would produce).
// SimStats reports how many runs each path served.
func (l *Lab) Simulate() error {
	type job struct {
		m   *uarch.Machine
		w   trace.Spec
		key string // run-store key; "" when no store is configured
	}
	var jobs []job
	for _, m := range l.machines {
		for _, sname := range l.SuiteNames() {
			for _, w := range l.suiteSet[sname].Workloads {
				rk := runKey{m.Name, w.Name + "@" + sname}
				if _, done := l.runs[rk]; done {
					continue
				}
				j := job{m: m, w: withSuiteTag(w, sname)}
				if l.opts.Store != nil {
					// Key on the spec the generator will actually see.
					j.key = runstore.SimKey(m, stripSuiteTag(j.w))
					res, ok, err := l.opts.Store.GetResult(j.key)
					if err != nil {
						return fmt.Errorf("experiments: %s on %s: %w", j.w.Name, m.Name, err)
					}
					if ok {
						l.runs[rk] = res
						l.stats.Hits++
						continue
					}
				}
				jobs = append(jobs, j)
			}
		}
	}
	if len(jobs) == 0 {
		return nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	ch := make(chan job)
	for i := 0; i < l.opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One simulator per machine per worker, lazily built.
			sims := map[string]*sim.Simulator{}
			for j := range ch {
				s, ok := sims[j.m.Name]
				if !ok {
					var err error
					s, err = sim.New(j.m)
					if err != nil {
						fail(err)
						continue
					}
					sims[j.m.Name] = s
				}
				res, err := s.Run(trace.New(stripSuiteTag(j.w)))
				if err != nil {
					fail(fmt.Errorf("experiments: %s on %s: %w", j.w.Name, j.m.Name, err))
					continue
				}
				if j.key != "" {
					if err := l.opts.Store.PutResult(j.key, res); err != nil {
						fail(fmt.Errorf("experiments: %s on %s: %w", j.w.Name, j.m.Name, err))
						continue
					}
				}
				mu.Lock()
				l.runs[runKey{j.m.Name, j.w.Name}] = res
				l.stats.Simulated++
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobs {
		// Stop feeding once a worker has failed: the campaign is doomed
		// anyway, and the remaining simulations would waste minutes.
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		ch <- j
	}
	close(ch)
	wg.Wait()
	return firstErr
}

// SimStats returns cumulative run-sourcing counts over all Simulate
// calls: store hits vs actually-dispatched simulations.
func (l *Lab) SimStats() SimStats { return l.stats }

// withSuiteTag/stripSuiteTag disambiguate workloads that exist in both
// suites (e.g. bzip2 variants) without altering the generated stream.
func withSuiteTag(w trace.Spec, suite string) trace.Spec {
	w.Name = w.Name + "@" + suite
	return w
}

func stripSuiteTag(w trace.Spec) trace.Spec {
	for i := len(w.Name) - 1; i >= 0; i-- {
		if w.Name[i] == '@' {
			w.Name = w.Name[:i]
			break
		}
	}
	return w
}

// Run returns the cached simulation of workload w (of the named suite)
// on machine m.
func (l *Lab) Run(machine, suite, workload string) (*sim.Result, error) {
	r, ok := l.runs[runKey{machine, workload + "@" + suite}]
	if !ok {
		return nil, fmt.Errorf("experiments: no run for %s/%s on %s (call Simulate first)",
			suite, workload, machine)
	}
	return r, nil
}

// Observations converts a (machine, suite) run set into model
// observations, sorted by workload name for determinism.
func (l *Lab) Observations(machine, suite string) ([]core.Observation, error) {
	s, ok := l.suiteSet[suite]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown suite %q", suite)
	}
	obs := make([]core.Observation, 0, len(s.Workloads))
	for _, w := range s.Workloads {
		r, err := l.Run(machine, suite, w.Name)
		if err != nil {
			return nil, err
		}
		o, err := core.ObservationFrom(w.Name, &r.Counters)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s on %s: %w", suite, w.Name, machine, err)
		}
		obs = append(obs, o)
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i].Name < obs[j].Name })
	return obs, nil
}

// MachineRuns packages a (machine, suite) run set for delta stacks.
func (l *Lab) MachineRuns(machine, suite string) ([]core.MachineRun, error) {
	s, ok := l.suiteSet[suite]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown suite %q", suite)
	}
	runs := make([]core.MachineRun, 0, len(s.Workloads))
	for _, w := range s.Workloads {
		r, err := l.Run(machine, suite, w.Name)
		if err != nil {
			return nil, err
		}
		runs = append(runs, core.MachineRun{Name: w.Name, Ctr: r.Counters})
	}
	return runs, nil
}

// ResetModels drops all cached fitted models (simulation results are
// kept). Benchmarks use this so every iteration re-runs the regression.
func (l *Lab) ResetModels() {
	l.models = map[string]*core.Model{}
}

// Model fits (or returns the cached) mechanistic-empirical model for the
// (machine, suite) pair — e.g. the paper's "CPU2006 model" for Core i7.
func (l *Lab) Model(machine, suite string) (*core.Model, error) {
	key := machine + "/" + suite
	if m, ok := l.models[key]; ok {
		return m, nil
	}
	obs, err := l.Observations(machine, suite)
	if err != nil {
		return nil, err
	}
	mc, err := uarch.ByName(machine)
	if err != nil {
		return nil, err
	}
	m, err := core.Fit(mc.Params(), obs, core.FitOptions{
		Starts: l.opts.FitStarts,
		Seed:   l.opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	l.models[key] = m
	return m, nil
}
