// Package experiments orchestrates the paper's evaluation — and any
// scenario beyond it. A Lab executes a declarative Campaign (machines ×
// suites, resolved through the uarch and suites registries), fits
// mechanistic-empirical models (plus the linear-regression and ANN
// baselines), and regenerates every table and figure of the paper as
// structured data with ASCII renderings; RunPlan executes multi-axis
// exploration plans (crossed grids of derived machines, fitted once at
// the base point and extrapolated per cell, with each workload's µop
// trace materialized once and replayed across the grid), and RunSweep
// is its one-axis projection. cmd/experiments, cmd/sweep and the
// top-level benchmarks are thin wrappers around this package.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/runstore"
	"repro/internal/sim"
	"repro/internal/suites"
	"repro/internal/uarch"
)

// Options configures a Lab.
type Options struct {
	// NumOps per workload (default 300000; benchmarks shrink this).
	NumOps int
	// FitStarts is the multi-start count for model fitting (default 12).
	FitStarts int
	// Seed drives fitting restarts (default 1).
	Seed uint64
	// SeedBase offsets every workload generator seed (default 0, the
	// canonical instantiation). Distinct SeedBase values draw entirely
	// fresh synthetic workloads with the same names and statistical
	// recipe — the replication axis seed-sweep campaigns vary. It is
	// part of the trace spec, so run-store keys and fitted-model cache
	// keys distinguish replications automatically.
	SeedBase uint64
	// Workers bounds simulation parallelism (default GOMAXPROCS).
	Workers int
	// LiveBuffers bounds how many materialized shared µop streams may be
	// live at once (default Workers+1: every worker replaying a distinct
	// buffer while the materializer fills the next). Each live buffer
	// holds one workload's stream — NumOps µops ≈ 56·NumOps bytes, so
	// e.g. 300K ops ≈ 16 MB per buffer — which makes the pipeline's
	// memory ceiling ≈ LiveBuffers·56·NumOps bytes. Raising it past the
	// default only helps when materialization, not simulation, is the
	// bottleneck; results are identical either way.
	LiveBuffers int
	// Store, when non-nil, is consulted before every simulation and
	// updated as workers finish, making Simulate incremental across
	// processes: a warm store satisfies the whole campaign without
	// dispatching a single job.
	Store *runstore.Store
	// Progress, when non-nil, is invoked once per completed run with its
	// RunKey and sourcing (true = store hit, false = simulated). Calls
	// are never concurrent. The async Jobs engine feeds its per-job
	// run and grid-cell progress counters through this hook.
	Progress func(run RunKey, hit bool)
	// NoSharedTraces disables the per-workload materialized trace
	// buffers runSimJobs shares across machines, regenerating every
	// stream per (machine, workload) pair instead. Results are
	// bit-identical either way; this trades the grid-plan speedup back
	// for the lower memory floor of pure streaming (one buffer holds
	// NumOps µops ≈ 56·NumOps bytes). BenchmarkGridPlan measures the
	// difference.
	NoSharedTraces bool
}

func (o Options) withDefaults() Options {
	if o.NumOps <= 0 {
		o.NumOps = 300000
	}
	if o.FitStarts <= 0 {
		o.FitStarts = 12
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		// GOMAXPROCS, not NumCPU: the pool can't use more parallelism
		// than the runtime will schedule, and tests that pin GOMAXPROCS
		// expect the derived worker count to follow.
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// RunKey identifies one (machine, suite, workload) simulation of a
// campaign. Workloads sharing a name across suites (e.g. the bzip2
// variants) stay distinct through the Suite field.
type RunKey struct {
	Machine  string
	Suite    string
	Workload string
}

// modelKey identifies one fitted model.
type modelKey struct {
	machine string
	suite   string
}

// Lab owns the campaign's machines and suites, its simulation results,
// and the fitted models. Construct with NewLab (the paper campaign),
// NewCampaignLab (a declarative scenario) or NewCustomLab (explicit
// values), populate with Simulate, then call the Table*/Fig* methods in
// any order. Not safe for concurrent method calls.
type Lab struct {
	opts     Options
	machines []*uarch.Machine
	suites   []suites.Suite // campaign order
	suiteSet map[string]suites.Suite
	runs     map[RunKey]*sim.Result
	models   map[modelKey]*core.Model
	stats    SimStats
}

// SimStats reports how Simulate sourced its runs, cumulatively over all
// Simulate calls on this Lab.
type SimStats struct {
	// Hits is the number of runs satisfied from the run store.
	Hits int
	// Simulated is the number of runs actually dispatched to workers
	// (store misses, or all runs when no store is configured).
	Simulated int
	// TraceGens is the number of µop streams actually produced — by the
	// generator for synthetic specs, or decoded from disk for
	// file-backed ones: one per materialized shared buffer plus one per
	// unshared simulation. Store hits produce nothing, and a grid
	// sharing one buffer across M machines counts 1, not M — the
	// regeneration the plan engine's replay path removes.
	TraceGens int
}

// NewLab builds a lab with the paper's three machines and two suites.
func NewLab(opts Options) *Lab {
	l, err := NewCampaignLab(PaperCampaign(), opts)
	if err != nil {
		// The paper campaign resolves entirely from init-registered
		// machines and suites; failure is a programming bug.
		panic(fmt.Sprintf("experiments: paper campaign: %v", err))
	}
	return l
}

// Machines returns the lab's machines in campaign order.
func (l *Lab) Machines() []*uarch.Machine { return l.machines }

// Machine returns the campaign machine with the given name.
func (l *Lab) Machine(name string) (*uarch.Machine, error) {
	for _, m := range l.machines {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("experiments: machine %q not in this campaign", name)
}

// SuiteNames returns the suite names in campaign order.
func (l *Lab) SuiteNames() []string {
	names := make([]string, len(l.suites))
	for i, s := range l.suites {
		names[i] = s.Name
	}
	return names
}

// Suite returns a suite by name.
func (l *Lab) Suite(name string) (suites.Suite, bool) {
	s, ok := l.suiteSet[name]
	return s, ok
}

// NumOps returns the effective per-workload µop count after option and
// campaign resolution.
func (l *Lab) NumOps() int { return l.opts.NumOps }

// NumWorkloads returns the total workload count across the campaign's
// suites (each machine runs all of them).
func (l *Lab) NumWorkloads() int {
	n := 0
	for _, s := range l.suites {
		n += len(s.Workloads)
	}
	return n
}

// Simulate runs every workload of every campaign suite on every
// campaign machine. It is idempotent: already-computed runs are kept,
// and when a run store is configured every pending run is first looked
// up there — only misses are dispatched to the worker pool, and their
// results are written back atomically as workers finish (the shared
// runSimJobs path, which the Provider's on-demand fits also use).
// SimStats reports how many runs each path served.
func (l *Lab) Simulate() error {
	return l.SimulateContext(context.Background())
}

// SimulateContext is Simulate with cancellation: cancelling ctx stops
// the dispatch of new simulations (in-flight ones finish and are
// recorded and stored) and returns ctx.Err(). The lab keeps every run
// completed before the cancellation, so a later Simulate call resumes
// incrementally.
func (l *Lab) SimulateContext(ctx context.Context) error {
	st, err := runSimJobs(ctx, l.pendingJobs(), l.opts, nil)
	l.stats.Hits += st.Hits
	l.stats.Simulated += st.Simulated
	l.stats.TraceGens += st.TraceGens
	return err
}

// pendingJobs returns one simJob per not-yet-computed campaign run,
// each recording its result into this lab. Seed sweeps combine the
// pending jobs of several per-seed labs into a single runSimJobs batch;
// the per-job record keeps every result routed to its own lab.
func (l *Lab) pendingJobs() []simJob {
	var jobs []simJob
	for _, m := range l.machines {
		for _, s := range l.suites {
			for _, w := range s.Workloads {
				rk := RunKey{Machine: m.Name, Suite: s.Name, Workload: w.Name}
				if _, done := l.runs[rk]; done {
					continue
				}
				jobs = append(jobs, simJob{machine: m, spec: w, run: rk, record: l.recordRun})
			}
		}
	}
	return jobs
}

func (l *Lab) recordRun(rk RunKey, r *sim.Result) { l.runs[rk] = r }

// SimStats returns cumulative run-sourcing counts over all Simulate
// calls: store hits vs actually-dispatched simulations.
func (l *Lab) SimStats() SimStats { return l.stats }

// Run returns the cached simulation of workload w (of the named suite)
// on machine m.
func (l *Lab) Run(machine, suite, workload string) (*sim.Result, error) {
	r, ok := l.runs[RunKey{Machine: machine, Suite: suite, Workload: workload}]
	if !ok {
		return nil, fmt.Errorf("experiments: no run for %s/%s on %s (call Simulate first)",
			suite, workload, machine)
	}
	return r, nil
}

// Observations converts a (machine, suite) run set into model
// observations, sorted by workload name for determinism.
func (l *Lab) Observations(machine, suite string) ([]core.Observation, error) {
	s, ok := l.suiteSet[suite]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown suite %q", suite)
	}
	return observationsFor(machine, s, func(workload string) (*sim.Result, error) {
		return l.Run(machine, suite, workload)
	})
}

// observationsFor converts one (machine, suite) run set into model
// observations, sorted by workload name for determinism. The run lookup
// is abstracted so the Lab (RunKey map) and the Provider (per-fit map)
// share one conversion — and therefore one fit input ordering.
func observationsFor(machine string, s suites.Suite, run func(workload string) (*sim.Result, error)) ([]core.Observation, error) {
	obs := make([]core.Observation, 0, len(s.Workloads))
	for _, w := range s.Workloads {
		r, err := run(w.Name)
		if err != nil {
			return nil, err
		}
		o, err := core.ObservationFrom(w.Name, &r.Counters)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s/%s on %s: %w", s.Name, w.Name, machine, err)
		}
		obs = append(obs, o)
	}
	sort.Slice(obs, func(i, j int) bool { return obs[i].Name < obs[j].Name })
	return obs, nil
}

// MachineRuns packages a (machine, suite) run set for delta stacks.
func (l *Lab) MachineRuns(machine, suite string) ([]core.MachineRun, error) {
	s, ok := l.suiteSet[suite]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown suite %q", suite)
	}
	runs := make([]core.MachineRun, 0, len(s.Workloads))
	for _, w := range s.Workloads {
		r, err := l.Run(machine, suite, w.Name)
		if err != nil {
			return nil, err
		}
		runs = append(runs, core.MachineRun{Name: w.Name, Ctr: r.Counters})
	}
	return runs, nil
}

// ResetModels drops all cached fitted models (simulation results are
// kept). Benchmarks use this so every iteration re-runs the regression.
func (l *Lab) ResetModels() {
	l.models = map[modelKey]*core.Model{}
}

// Model fits (or returns the cached) mechanistic-empirical model for the
// (machine, suite) pair — e.g. the paper's "CPU2006 model" for Core i7.
// The machine parameters come from the campaign machine itself, so
// derived variants fit against their own configuration.
func (l *Lab) Model(machine, suite string) (*core.Model, error) {
	key := modelKey{machine: machine, suite: suite}
	if m, ok := l.models[key]; ok {
		return m, nil
	}
	obs, err := l.Observations(machine, suite)
	if err != nil {
		return nil, err
	}
	mc, err := l.Machine(machine)
	if err != nil {
		return nil, err
	}
	m, err := fitModel(mc, obs, l.opts)
	if err != nil {
		return nil, err
	}
	l.models[key] = m
	return m, nil
}

// fitModel fits the mechanistic-empirical model for one machine over one
// observation set with the campaign-level fit options — the single fit
// entry point under Lab.Model and the Provider, so batch and serving
// paths produce bit-identical models for identical inputs.
func fitModel(m *uarch.Machine, obs []core.Observation, opts Options) (*core.Model, error) {
	return core.Fit(m.Params(), obs, core.FitOptions{
		Starts: opts.FitStarts,
		Seed:   opts.Seed,
	})
}

// adopt seeds the lab with a provider-fitted (machine, suite) pair: its
// runs and its model. Provider.Sweep uses this so the sweep's base point
// neither re-simulates nor re-fits.
func (l *Lab) adopt(machine, suite string, f *Fitted) {
	for w, r := range f.Runs {
		l.runs[RunKey{Machine: machine, Suite: suite, Workload: w}] = r
	}
	l.models[modelKey{machine: machine, suite: suite}] = f.Model
}
