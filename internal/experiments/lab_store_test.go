package experiments

import (
	"reflect"
	"testing"

	"repro/internal/runstore"
	"repro/internal/uarch"
)

// totalRuns is the campaign size: every workload of both suites on every
// machine.
func totalRuns(l *Lab) int {
	n := 0
	for _, sname := range l.SuiteNames() {
		s, _ := l.Suite(sname)
		n += len(s.Workloads) * len(l.Machines())
	}
	return n
}

// TestSimulateStoreEquivalence checks the store is invisible to results:
// a cold run (populating the store), a warm run (served entirely from
// it), and a store-less run all produce identical Results.
func TestSimulateStoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign is slow")
	}
	dir := t.TempDir()
	opts := Options{NumOps: 5000}

	cold, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldLab := NewLab(opts)
	coldLab.opts.Store = cold
	if err := coldLab.Simulate(); err != nil {
		t.Fatal(err)
	}
	want := totalRuns(coldLab)
	if st := coldLab.SimStats(); st.Hits != 0 || st.Simulated != want {
		t.Fatalf("cold stats = %+v, want 0 hits / %d simulated", st, want)
	}

	warm, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warmLab := NewLab(opts)
	warmLab.opts.Store = warm
	if err := warmLab.Simulate(); err != nil {
		t.Fatal(err)
	}
	if st := warmLab.SimStats(); st.Hits != want || st.Simulated != 0 {
		t.Fatalf("warm stats = %+v, want %d hits / 0 simulated", st, want)
	}

	plainLab := NewLab(opts)
	if err := plainLab.Simulate(); err != nil {
		t.Fatal(err)
	}

	if len(coldLab.runs) != want || len(warmLab.runs) != want || len(plainLab.runs) != want {
		t.Fatalf("run counts %d/%d/%d, want %d", len(coldLab.runs), len(warmLab.runs),
			len(plainLab.runs), want)
	}
	for k, r := range coldLab.runs {
		if !reflect.DeepEqual(warmLab.runs[k], r) {
			t.Fatalf("%v: warm run differs from cold run", k)
		}
		if !reflect.DeepEqual(plainLab.runs[k], r) {
			t.Fatalf("%v: store-less run differs from cold run", k)
		}
	}
}

// TestSimulateIdempotentWithStore checks a second Simulate on the same
// Lab does nothing: runs are already resident, so neither the store nor
// the workers are consulted again.
func TestSimulateIdempotentWithStore(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign is slow")
	}
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	l := NewLab(Options{NumOps: 5000})
	l.opts.Store = store
	if err := l.Simulate(); err != nil {
		t.Fatal(err)
	}
	before := l.SimStats()
	if err := l.Simulate(); err != nil {
		t.Fatal(err)
	}
	if after := l.SimStats(); after != before {
		t.Errorf("re-Simulate changed stats: %+v -> %+v", before, after)
	}
}

// TestSimulateAbortsOnError checks a failing campaign reports the error
// without recording any runs (and, per the job-feed fix, without
// grinding through the remaining workloads).
func TestSimulateAbortsOnError(t *testing.T) {
	l := NewLab(Options{NumOps: 5000, Workers: 1})
	bad := uarch.CoreTwo()
	bad.ROBSize = -1 // fails uarch validation inside sim.New
	l.machines = []*uarch.Machine{bad}
	if err := l.Simulate(); err == nil {
		t.Fatal("want error from invalid machine")
	}
	if st := l.SimStats(); st.Simulated != 0 || st.Hits != 0 {
		t.Errorf("failed campaign recorded runs: %+v", st)
	}
	if len(l.runs) != 0 {
		t.Errorf("failed campaign left %d runs", len(l.runs))
	}
}
