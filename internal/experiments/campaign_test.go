package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/suites"
	"repro/internal/trace"
	"repro/internal/uarch"
)

func TestParseCampaign(t *testing.T) {
	c, err := ParseCampaign([]byte(`{
		"machines": [
			{"name": "corei7"},
			{"name": "i7-rob256", "base": "corei7", "overrides": {"robSize": 256, "l2": {"sizeBytes": 524288}}}
		],
		"suites": ["cpu2006"],
		"ops": 12345,
		"fitStarts": 3
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Machines) != 2 || c.Machines[1].Overrides.ROBSize != 256 ||
		c.Machines[1].Overrides.L2.SizeBytes != 512<<10 {
		t.Errorf("parsed campaign wrong: %+v", c)
	}
	if c.NumOps != 12345 || c.FitStarts != 3 {
		t.Errorf("fit options wrong: %+v", c)
	}
}

func TestParseCampaignRejectsUnknownFields(t *testing.T) {
	if _, err := ParseCampaign([]byte(`{"machines":[{"name":"core2"}],"suites":["cpu2006"],"robsize":1}`)); err == nil {
		t.Error("unknown top-level field should fail")
	}
	if _, err := ParseCampaign([]byte(`{"machines":[{"name":"core2","overides":{}}],"suites":["cpu2006"]}`)); err == nil {
		t.Error("typoed machine field should fail")
	}
	if _, err := ParseCampaign([]byte(`{"machines":[],"suites":["cpu2006"]}`)); err == nil {
		t.Error("empty machine list should fail")
	}
	if _, err := ParseCampaign([]byte(`{"machines":[{"name":"core2"}],"suites":[]}`)); err == nil {
		t.Error("empty suite list should fail")
	}
	if _, err := ParseCampaign([]byte(`{"machines":[{"name":"core2"}],"suites":["cpu2006"]}{"machines":[{"name":"corei7"}],"suites":["cpu2000"]}`)); err == nil {
		t.Error("trailing scenario document should fail, not be silently dropped")
	}
}

func TestNewCampaignLabResolvesAndValidates(t *testing.T) {
	ok := Campaign{
		Machines: []MachineSpec{
			{Name: "core2"},
			{Name: "core2-fast", Base: "core2", Overrides: uarch.Overrides{MemLat: 100}},
		},
		Suites: []string{"cpu2000"},
	}
	l, err := NewCampaignLab(ok, Options{NumOps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	m, err := l.Machine("core2-fast")
	if err != nil || m.MemLat != 100 {
		t.Errorf("derived campaign machine wrong: %v, %+v", err, m)
	}
	if got := l.SuiteNames(); len(got) != 1 || got[0] != "cpu2000" {
		t.Errorf("suite names %v", got)
	}

	bad := []Campaign{
		{Machines: []MachineSpec{{Name: "atom"}}, Suites: []string{"cpu2000"}},
		{Machines: []MachineSpec{{Name: "x", Base: "atom"}}, Suites: []string{"cpu2000"}},
		{Machines: []MachineSpec{{Name: "core2"}, {Name: "core2"}}, Suites: []string{"cpu2000"}},
		{Machines: []MachineSpec{{Name: "core2"}}, Suites: []string{"cpu2017"}},
		{Machines: []MachineSpec{{Name: "core2"}}, Suites: []string{"cpu2000", "cpu2000"}},
		{Machines: []MachineSpec{{Name: ""}}, Suites: []string{"cpu2000"}},
		{Machines: []MachineSpec{{Name: "broken", Base: "core2",
			Overrides: uarch.Overrides{ROBSize: 8, IQSize: 64}}}, Suites: []string{"cpu2000"}},
	}
	for i, c := range bad {
		if _, err := NewCampaignLab(c, Options{NumOps: 1000}); err == nil {
			t.Errorf("campaign %d should fail: %+v", i, c)
		}
	}
}

func TestCampaignFitOptionsYieldToExplicitOptions(t *testing.T) {
	c := PaperCampaign()
	c.NumOps = 2222
	c.FitStarts = 3
	c.Seed = 9
	l, err := NewCampaignLab(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.opts.NumOps != 2222 || l.opts.FitStarts != 3 || l.opts.Seed != 9 {
		t.Errorf("campaign fit options not inherited: %+v", l.opts)
	}
	l, err = NewCampaignLab(c, Options{NumOps: 4444, FitStarts: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if l.opts.NumOps != 4444 || l.opts.FitStarts != 5 || l.opts.Seed != 2 {
		t.Errorf("explicit options should win: %+v", l.opts)
	}
}

func TestPaperCampaignMatchesLegacyNewLab(t *testing.T) {
	l := NewLab(Options{NumOps: 1000})
	var names []string
	for _, m := range l.Machines() {
		names = append(names, m.Name)
	}
	if strings.Join(names, ",") != "pentium4,core2,corei7" {
		t.Errorf("machines %v", names)
	}
	if got := strings.Join(l.SuiteNames(), ","); got != "cpu2000,cpu2006" {
		t.Errorf("suites %s", got)
	}
	if l.NumWorkloads() != 48+55 {
		t.Errorf("NumWorkloads %d, want 103", l.NumWorkloads())
	}
}

// tinySuite is a 12-workload suite (just enough observations for the
// 10-parameter fit) registered once for campaign/sweep tests, so grid
// plumbing is exercised without full SPEC-scale runs.
func tinySuite(t *testing.T) string {
	t.Helper()
	const name = "tiny-test"
	if _, err := suites.ByName(name, suites.Options{}); err == nil {
		return name
	}
	err := suites.Register(name, func(opts suites.Options) suites.Suite {
		if opts.NumOps <= 0 {
			opts.NumOps = 2000
		}
		s := suites.Suite{Name: name}
		for i := 0; i < 12; i++ {
			f := float64(i)
			s.Workloads = append(s.Workloads, trace.Spec{
				Name: fmt.Sprintf("w%02d", i), Seed: uint64(100+i) + opts.SeedBase, NumOps: opts.NumOps,
				LoadFrac: 0.22 + 0.01*f, StoreFrac: 0.1, FPFrac: 0.02 * f,
				BranchHardFrac: 0.05 + 0.03*f,
				CodeFootprint:  int64(16+40*i) << 10, CodeLocality: 0.85 - 0.02*f,
				DataFootprint: int64(1+3*i) << 20, DataLocality: 0.7 - 0.04*f,
				PointerChaseFrac: 0.03 * f, DepDistMean: 5 + 0.8*f,
				LongChainFrac: 0.08 + 0.01*f, FusibleFrac: 0.4,
			})
		}
		return s
	})
	if err != nil {
		t.Fatal(err)
	}
	return name
}

func TestCampaignLabSimulatesDerivedGrid(t *testing.T) {
	sn := tinySuite(t)
	c := Campaign{
		Machines: []MachineSpec{
			{Name: "core2"},
			{Name: "core2-rob48c", Base: "core2", Overrides: uarch.Overrides{ROBSize: 48}},
			{Name: "core2-mshr2", Base: "core2", Overrides: uarch.Overrides{MSHRs: 2}},
		},
		Suites:    []string{sn},
		NumOps:    3000,
		FitStarts: 2,
	}
	l, err := NewCampaignLab(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Simulate(); err != nil {
		t.Fatal(err)
	}
	if st := l.SimStats(); st.Simulated != 36 {
		t.Errorf("simulated %d runs, want 36 (3 machines × 12 workloads)", st.Simulated)
	}
	for _, mn := range []string{"core2", "core2-rob48c", "core2-mshr2"} {
		if _, err := l.Model(mn, sn); err != nil {
			t.Errorf("fit on %s: %v", mn, err)
		}
	}
	// Distinct configurations must produce distinct measurements.
	a, _ := l.Run("core2", sn, "w11")
	b, _ := l.Run("core2-mshr2", sn, "w11")
	if a.Counters.Cycles == b.Counters.Cycles {
		t.Error("MSHR-starved variant should not match base cycle count")
	}
}
