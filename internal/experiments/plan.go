package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/suites"
	"repro/internal/uarch"
)

// PlanAxis is one explored axis of a plan: a registered sweep parameter
// (see SweepParams) and the values it takes. Values must be positive
// and unique — a duplicated value would silently double-simulate the
// same cell, so validation rejects it on both the CLI and wire paths.
type PlanAxis struct {
	Param  string `json:"param"`
	Values []int  `json:"values"`
}

// PlanSpec is the declarative form of a multi-axis exploration plan:
// the JSON schema of plan files, POST /v1/plan bodies, and plan job
// payloads. Axes are crossed into a full grid of derived machines; the
// model is fitted once at the base configuration and extrapolated to
// every cell — the paper's design-space-exploration use case as one
// request.
type PlanSpec struct {
	Base  MachineSpec `json:"base"`
	Axes  []PlanAxis  `json:"axes"`
	Suite string      `json:"suite"`
}

// MaxPlanCells bounds the grid a single plan may expand to. The cap
// protects the serving layer from a three-axis typo exploding into
// millions of simulations; genuinely larger explorations should be
// split into plans per sub-grid, which the run store then makes
// incremental anyway.
const MaxPlanCells = 4096

// ParsePlanSpec decodes a plan document with the scenario-file rules:
// unknown fields and trailing data are errors.
func ParsePlanSpec(data []byte) (PlanSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var ps PlanSpec
	if err := dec.Decode(&ps); err != nil {
		return PlanSpec{}, fmt.Errorf("experiments: parse plan: %w", err)
	}
	if dec.More() {
		return PlanSpec{}, fmt.Errorf("experiments: parse plan: trailing data after plan document")
	}
	if len(ps.Axes) == 0 {
		return PlanSpec{}, fmt.Errorf("experiments: plan has no axes")
	}
	if ps.Suite == "" {
		return PlanSpec{}, fmt.Errorf("experiments: plan has no suite")
	}
	return ps, nil
}

// LoadPlanSpec reads and parses a plan file.
func LoadPlanSpec(path string) (PlanSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return PlanSpec{}, fmt.Errorf("experiments: %w", err)
	}
	ps, err := ParsePlanSpec(data)
	if err != nil {
		return PlanSpec{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return ps, nil
}

// Resolve materializes the spec into a validated Plan: the base machine
// through the uarch registry, every axis through the param registry,
// and the full cross product into derived machines.
func (ps PlanSpec) Resolve() (*Plan, error) {
	base, err := ps.Base.Resolve()
	if err != nil {
		return nil, err
	}
	return NewPlan(base, ps.Axes, ps.Suite)
}

// Plan is a validated, fully resolved exploration grid. Machines[0] is
// the base (fit point); Machines[1+i] is the derived machine of
// Cells[i]. Cells enumerate the axis cross product row-major with the
// last axis fastest, each cell holding one value per axis in Axes
// order; a single-axis plan therefore lists its cells in the axis's
// value order, exactly like the legacy one-axis sweep.
type Plan struct {
	Base  *uarch.Machine
	Axes  []PlanAxis
	Suite string

	Machines []*uarch.Machine
	Cells    [][]int

	params []SweepParam // resolved axis params, aligned with Axes
}

// BaseValues returns the base machine's value on each axis, in axis
// order — the fit point of the grid.
func (p *Plan) BaseValues() []int {
	out := make([]int, len(p.params))
	for i, sp := range p.params {
		out[i] = sp.Get(p.Base)
	}
	return out
}

// NewPlan validates the axes against the param registry and expands the
// cross product into derived machines. Every axis must be a registered
// param with positive, duplicate-free values; axes must not repeat; and
// the grid must stay within MaxPlanCells. Derivations are validated, so
// a geometrically impossible cell fails here, before anything
// simulates.
func NewPlan(base *uarch.Machine, axes []PlanAxis, suiteName string) (*Plan, error) {
	if suiteName == "" {
		return nil, fmt.Errorf("experiments: plan needs a suite")
	}
	if len(axes) == 0 {
		return nil, fmt.Errorf("experiments: plan needs at least one axis")
	}
	p := &Plan{Base: base, Axes: axes, Suite: suiteName}
	cells := 1
	seen := map[string]bool{}
	for _, ax := range axes {
		sp, err := SweepParamByName(ax.Param)
		if err != nil {
			return nil, err
		}
		if seen[ax.Param] {
			return nil, fmt.Errorf("experiments: plan lists axis %q twice", ax.Param)
		}
		seen[ax.Param] = true
		if err := ValidateSweepValues(ax.Values); err != nil {
			return nil, fmt.Errorf("%w (axis %s)", err, ax.Param)
		}
		p.params = append(p.params, sp)
		// Capping inside the loop keeps the running product small, so
		// a many-axis request cannot overflow it past the check.
		cells *= len(ax.Values)
		if cells > MaxPlanCells {
			return nil, fmt.Errorf("experiments: plan grid exceeds the %d-cell cap", MaxPlanCells)
		}
	}

	p.Machines = make([]*uarch.Machine, 0, 1+cells)
	p.Machines = append(p.Machines, base)
	p.Cells = make([][]int, 0, cells)
	idx := make([]int, len(axes))
	for {
		values := make([]int, len(axes))
		m, name := base, base.Name
		for i, ax := range axes {
			v := ax.Values[idx[i]]
			values[i] = v
			name = fmt.Sprintf("%s-%s%d", name, p.params[i].Name, v)
			var err error
			if m, err = uarch.Derive(m, name, p.params[i].Set(v)); err != nil {
				return nil, err
			}
		}
		p.Cells = append(p.Cells, values)
		p.Machines = append(p.Machines, m)

		// Advance the odometer, last axis fastest.
		k := len(axes) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(axes[k].Values) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return p, nil
}

// PlanPoint is one evaluated grid cell: its axis values (in plan-axis
// order), the derived machine, and the suite-mean simulated vs
// model-extrapolated behaviour.
type PlanPoint struct {
	Values  []int
	Machine string
	// SimCPI and ModelCPI are suite-mean CPIs: the simulator's measured
	// value vs the base-fitted model extrapolated to this cell.
	SimCPI   float64
	ModelCPI float64
	// SimStack and ModelStack are suite-mean per-µop cycle stacks
	// (ground-truth accounting vs model decomposition).
	SimStack   sim.Stack
	ModelStack sim.Stack
}

// Err returns the model's relative CPI error at this cell.
func (p PlanPoint) Err() float64 { return stats.RelErr(p.ModelCPI, p.SimCPI) }

// PlanResult is an executed plan: the model fitted once at the base
// configuration and extrapolated — empirical coefficients frozen,
// machine parameters and counters updated — to every grid cell. The
// one-axis SweepResult is a projection of this (RunSweep adapts it).
type PlanResult struct {
	Base       string
	Axes       []PlanAxis
	BaseValues []int
	Suite      string
	NumOps     int
	Points     []PlanPoint
	Stats      SimStats
}

// RunPlan simulates the plan's base and every grid cell on its suite
// (through opts.Store when configured, so reruns are incremental, and
// with one materialized trace buffer shared across all the grid's
// machines per workload), fits the model at base, and evaluates it at
// every cell. For a long-running caller that wants the base fit cached
// and deduplicated across plans, use Provider.Plan, which shares the
// extrapolation below.
func RunPlan(p *Plan, opts Options) (*PlanResult, error) {
	return RunPlanContext(context.Background(), p, opts)
}

// RunPlanContext is RunPlan with cancellation: cancelling ctx stops the
// dispatch of new cell simulations and skips the fit, returning
// ctx.Err(). Completed simulations stay in the store, so a rerun
// resumes warm. The async Jobs engine runs plan jobs through here.
func RunPlanContext(ctx context.Context, p *Plan, opts Options) (*PlanResult, error) {
	opts = opts.withDefaults()
	suite, err := suites.ByName(p.Suite, suites.Options{NumOps: opts.NumOps, SeedBase: opts.SeedBase})
	if err != nil {
		return nil, err
	}
	lab, err := NewCustomLab(p.Machines, []suites.Suite{suite}, opts)
	if err != nil {
		return nil, err
	}
	if err := lab.SimulateContext(ctx); err != nil {
		return nil, err
	}
	fitted, err := lab.Model(p.Base.Name, p.Suite)
	if err != nil {
		return nil, err
	}
	return planResult(lab, p, fitted)
}

// planResult extrapolates the base-fitted model to every cell of a
// simulated lab — the shared back half of RunPlan and Provider.Plan,
// and (through the single-axis adapters) of RunSweep and
// Provider.Sweep. The accumulation order is fixed (observations sorted
// by workload name, components in stack order), so identical inputs
// produce bit-identical floats on every path.
func planResult(lab *Lab, p *Plan, fitted *core.Model) (*PlanResult, error) {
	res := &PlanResult{
		Base:       p.Base.Name,
		Axes:       p.Axes,
		BaseValues: p.BaseValues(),
		Suite:      p.Suite,
		NumOps:     lab.NumOps(),
		Stats:      lab.SimStats(),
	}
	for ci, m := range lab.Machines()[1:] {
		// Extrapolate: frozen empirical coefficients, this cell's
		// machine parameters, this cell's measured counters.
		extrap := &core.Model{Machine: m.Params(), P: fitted.P}
		obs, err := lab.Observations(m.Name, p.Suite)
		if err != nil {
			return nil, err
		}
		pt := PlanPoint{Values: p.Cells[ci], Machine: m.Name}
		n := float64(len(obs))
		for _, o := range obs {
			pt.SimCPI += o.MeasuredCPI / n
			pt.ModelCPI += extrap.PredictCPI(o.Feat) / n
			ms := extrap.Stack(o.Feat)
			r, err := lab.Run(m.Name, p.Suite, o.Name)
			if err != nil {
				return nil, err
			}
			ts := r.Truth.CPIStack(r.Counters.Uops)
			for _, c := range sim.Components() {
				pt.SimStack.Cycles[c] += ts.Cycles[c] / n
				pt.ModelStack.Cycles[c] += ms.Cycles[c] / n
			}
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Render returns the grid table as text: one row per cell with its
// axis values, the suite-mean simulated vs model-predicted CPI, and
// the relative error, followed by a worst-cell summary.
func (r *PlanResult) Render() string {
	var b strings.Builder
	var axisNames []string
	for _, ax := range r.Axes {
		axisNames = append(axisNames, ax.Param)
	}
	var fitAt []string
	for i, ax := range r.Axes {
		fitAt = append(fitAt, fmt.Sprintf("%s=%d", ax.Param, r.BaseValues[i]))
	}
	fmt.Fprintf(&b, "plan: %s × %s on %s (%d cells, %d µops/workload; model fitted at %s)\n",
		r.Base, strings.Join(axisNames, "×"), r.Suite, len(r.Points), r.NumOps,
		strings.Join(fitAt, " "))
	for _, name := range axisNames {
		fmt.Fprintf(&b, " %7s", name)
	}
	fmt.Fprintf(&b, " %9s %10s %7s\n", "sim-CPI", "model-CPI", "err")
	worst := -1.0
	worstCell := ""
	for _, p := range r.Points {
		for _, v := range p.Values {
			fmt.Fprintf(&b, " %7d", v)
		}
		fmt.Fprintf(&b, " %9.4f %10.4f %6.1f%%\n", p.SimCPI, p.ModelCPI, 100*p.Err())
		if e := p.Err(); e > worst {
			worst = e
			worstCell = p.Machine
		}
	}
	fmt.Fprintf(&b, "worst extrapolation: %s (%.1f%% CPI error)\n", worstCell, 100*worst)
	return b.String()
}
