package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/suites"
	"repro/internal/uarch"
)

// MachineSpec names one campaign machine: either a registered machine
// ("name" alone) or a variant derived from a registered base ("base" +
// "overrides", published under "name").
type MachineSpec struct {
	Name      string          `json:"name"`
	Base      string          `json:"base,omitempty"`
	Overrides uarch.Overrides `json:"overrides,omitzero"`
}

// Campaign is a declarative experiment grid: which machines run which
// suites, and how the models are fitted. It is the JSON schema of
// scenario files; the zero fit options inherit the Lab's defaults.
type Campaign struct {
	Machines  []MachineSpec `json:"machines"`
	Suites    []string      `json:"suites"`
	NumOps    int           `json:"ops,omitempty"`
	FitStarts int           `json:"fitStarts,omitempty"`
	Seed      uint64        `json:"seed,omitempty"`
}

// PaperCampaign returns the paper's fixed grid: the three stock machines
// by the two SPEC-like suites.
func PaperCampaign() Campaign {
	return Campaign{
		Machines: []MachineSpec{{Name: "pentium4"}, {Name: "core2"}, {Name: "corei7"}},
		Suites:   []string{"cpu2000", "cpu2006"},
	}
}

// ParseCampaign decodes a scenario document. Unknown fields are errors,
// so a typoed override name fails loudly instead of silently running the
// base configuration.
func ParseCampaign(data []byte) (Campaign, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Campaign
	if err := dec.Decode(&c); err != nil {
		return Campaign{}, fmt.Errorf("experiments: parse campaign: %w", err)
	}
	if dec.More() {
		return Campaign{}, fmt.Errorf("experiments: parse campaign: trailing data after scenario document")
	}
	if len(c.Machines) == 0 {
		return Campaign{}, fmt.Errorf("experiments: campaign has no machines")
	}
	if len(c.Suites) == 0 {
		return Campaign{}, fmt.Errorf("experiments: campaign has no suites")
	}
	return c, nil
}

// LoadCampaign reads and parses a scenario file.
func LoadCampaign(path string) (Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Campaign{}, fmt.Errorf("experiments: %w", err)
	}
	c, err := ParseCampaign(data)
	if err != nil {
		return Campaign{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return c, nil
}

// Resolve materializes the spec through the uarch registry: a registered
// machine looked up by name, or a validated derivation from a registered
// base. This is the one spec-to-machine path, shared by campaign
// resolution and the serving layer's request decoding.
func (ms MachineSpec) Resolve() (*uarch.Machine, error) {
	if ms.Name == "" {
		return nil, fmt.Errorf("experiments: machine spec with empty name")
	}
	if ms.Base == "" {
		return uarch.ByName(ms.Name)
	}
	base, err := uarch.ByName(ms.Base)
	if err != nil {
		return nil, err
	}
	return uarch.Derive(base, ms.Name, ms.Overrides)
}

// resolveMachines materializes the campaign's machine list through the
// uarch registry, derivations included.
func (c Campaign) resolveMachines() ([]*uarch.Machine, error) {
	out := make([]*uarch.Machine, 0, len(c.Machines))
	seen := map[string]bool{}
	for _, ms := range c.Machines {
		if seen[ms.Name] {
			return nil, fmt.Errorf("experiments: campaign lists machine %q twice", ms.Name)
		}
		seen[ms.Name] = true
		m, err := ms.Resolve()
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// NewCampaignLab builds a Lab executing the given campaign. Explicit
// Options fields win over the campaign's fit options; both fall back to
// the usual defaults.
func NewCampaignLab(c Campaign, opts Options) (*Lab, error) {
	if opts.NumOps <= 0 {
		opts.NumOps = c.NumOps
	}
	if opts.FitStarts <= 0 {
		opts.FitStarts = c.FitStarts
	}
	if opts.Seed == 0 {
		opts.Seed = c.Seed
	}
	opts = opts.withDefaults()
	machines, err := c.resolveMachines()
	if err != nil {
		return nil, err
	}
	suiteList := make([]suites.Suite, 0, len(c.Suites))
	seen := map[string]bool{}
	for _, name := range c.Suites {
		if seen[name] {
			return nil, fmt.Errorf("experiments: campaign lists suite %q twice", name)
		}
		seen[name] = true
		s, err := suites.ByName(name, suites.Options{NumOps: opts.NumOps, SeedBase: opts.SeedBase})
		if err != nil {
			return nil, err
		}
		suiteList = append(suiteList, s)
	}
	return newLab(machines, suiteList, opts)
}

// NewCustomLab builds a Lab over explicit machine and suite values,
// bypassing the registries — the entry point for programmatic grids such
// as parameter sweeps over unregistered variants.
func NewCustomLab(machines []*uarch.Machine, suiteList []suites.Suite, opts Options) (*Lab, error) {
	return newLab(machines, suiteList, opts.withDefaults())
}

func newLab(machines []*uarch.Machine, suiteList []suites.Suite, opts Options) (*Lab, error) {
	if len(machines) == 0 || len(suiteList) == 0 {
		return nil, fmt.Errorf("experiments: lab needs at least one machine and one suite")
	}
	l := &Lab{
		opts:     opts,
		machines: machines,
		suites:   suiteList,
		suiteSet: map[string]suites.Suite{},
		runs:     map[RunKey]*sim.Result{},
		models:   map[modelKey]*core.Model{},
	}
	seenM := map[string]bool{}
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if seenM[m.Name] {
			return nil, fmt.Errorf("experiments: duplicate machine %q in lab", m.Name)
		}
		seenM[m.Name] = true
	}
	for _, s := range suiteList {
		if _, dup := l.suiteSet[s.Name]; dup {
			return nil, fmt.Errorf("experiments: duplicate suite %q in lab", s.Name)
		}
		l.suiteSet[s.Name] = s
	}
	return l, nil
}
