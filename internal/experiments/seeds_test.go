package experiments

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/runstore"
	"repro/internal/stats"
	"repro/internal/suites"
)

func TestParseSeedsSpecStrict(t *testing.T) {
	spec, err := ParseSeedsSpec([]byte(`{"base": {"name": "core2"}, "suite": "cpu2000", "count": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Base == nil || spec.Base.Name != "core2" || spec.Count != 3 {
		t.Errorf("parsed spec = %+v", spec)
	}
	for name, doc := range map[string]string{
		"unknown field": `{"base": {"name": "core2"}, "suite": "cpu2000", "count": 3, "ops": 500}`,
		"trailing data": `{"base": {"name": "core2"}, "suite": "cpu2000", "count": 3} {}`,
		"not JSON":      `seeds!`,
	} {
		if _, err := ParseSeedsSpec([]byte(doc)); err == nil {
			t.Errorf("%s should fail to parse", name)
		}
	}
}

func TestSeedsSpecValidation(t *testing.T) {
	base := &MachineSpec{Name: "core2"}
	camp := &Campaign{Machines: []MachineSpec{{Name: "core2"}}, Suites: []string{"cpu2000"}}
	cases := []struct {
		name    string
		spec    SeedsSpec
		wantErr string
	}{
		{"no subject", SeedsSpec{Count: 2}, "base+suite or a campaign"},
		{"base and campaign", SeedsSpec{Base: base, Suite: "cpu2000", Campaign: camp, Count: 2}, "not both"},
		{"base without suite", SeedsSpec{Base: base, Count: 2}, "need a suite"},
		{"unknown machine", SeedsSpec{Base: &MachineSpec{Name: "core9"}, Suite: "cpu2000", Count: 2}, "unknown machine"},
		{"campaign with ops", SeedsSpec{Campaign: &Campaign{Machines: camp.Machines,
			Suites: camp.Suites, NumOps: 500}, Count: 2}, "must not set ops"},
		{"campaign with seed", SeedsSpec{Campaign: &Campaign{Machines: camp.Machines,
			Suites: camp.Suites, Seed: 7}, Count: 2}, "must not set ops"},
		{"campaign without machines", SeedsSpec{Campaign: &Campaign{Suites: camp.Suites}, Count: 2}, "no machines"},
		{"campaign without suites", SeedsSpec{Campaign: &Campaign{Machines: camp.Machines}, Count: 2}, "no suites"},
		{"duplicate suite", SeedsSpec{Campaign: &Campaign{Machines: camp.Machines,
			Suites: []string{"cpu2000", "cpu2000"}}, Count: 2}, "twice"},
		{"seeds and count", SeedsSpec{Base: base, Suite: "cpu2000", Seeds: []uint64{1}, Count: 2}, "not both"},
		{"no replications", SeedsSpec{Base: base, Suite: "cpu2000"}, "seed list or a count"},
		{"seed zero", SeedsSpec{Base: base, Suite: "cpu2000", Seeds: []uint64{1, 0}}, "reserved"},
		{"duplicate seed", SeedsSpec{Base: base, Suite: "cpu2000", Seeds: []uint64{3, 3}}, "listed twice"},
		{"negative count", SeedsSpec{Base: base, Suite: "cpu2000", Count: -1}, "positive"},
		{"count over limit", SeedsSpec{Base: base, Suite: "cpu2000", Count: MaxSeeds + 1}, "exceed"},
		{"list over limit", SeedsSpec{Base: base, Suite: "cpu2000",
			Seeds: func() []uint64 {
				xs := make([]uint64, MaxSeeds+1)
				for i := range xs {
					xs[i] = uint64(i + 1)
				}
				return xs
			}()}, "exceed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.Resolve(); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Resolve error = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}

	// An unknown suite yields the registry sentinel the serving layer
	// classifies into its structured error code.
	_, err := SeedsSpec{Base: base, Suite: "cpu2017", Count: 2}.Resolve()
	if !errors.Is(err, suites.ErrUnknownSuite) {
		t.Errorf("unknown suite error = %v, want errors.Is(ErrUnknownSuite)", err)
	}

	// A count expands to seeds 1..N; run accounting covers the grid.
	s, err := SeedsSpec{Base: base, Suite: "cpu2000", Count: 3}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.SeedList, []uint64{1, 2, 3}) {
		t.Errorf("SeedList = %v, want [1 2 3]", s.SeedList)
	}
	if s.TotalRuns() != 3*48 {
		t.Errorf("TotalRuns = %d, want 144 (3 seeds × 48 cpu2000 workloads)", s.TotalRuns())
	}
}

// TestSeedsSingleSeedMatchesCampaign pins the seed mapping: a sweep over
// the single seed {1} is the canonical single-seed campaign, per-float
// bit-identical — same measured CPIs, same model error, same fitted
// coefficients — and its degenerate statistics stay finite (no interval,
// zero spread).
func TestSeedsSingleSeedMatchesCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	sn := tinySuite(t)
	opts := Options{NumOps: 2000, FitStarts: 2}
	s, err := SeedsSpec{Base: &MachineSpec{Name: "core2"}, Suite: sn, Seeds: []uint64{1}}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSeeds(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(res.Cells))
	}
	cell := res.Cells[0]

	// The reference: the existing campaign path with the same options.
	lab, err := NewCampaignLab(Campaign{Machines: []MachineSpec{{Name: "core2"}},
		Suites: []string{sn}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Simulate(); err != nil {
		t.Fatal(err)
	}
	model, err := lab.Model("core2", sn)
	if err != nil {
		t.Fatal(err)
	}
	obs, err := lab.Observations("core2", sn)
	if err != nil {
		t.Fatal(err)
	}
	var cpis, errs []float64
	for i := range obs {
		cpis = append(cpis, obs[i].MeasuredCPI)
		errs = append(errs, stats.RelErr(model.PredictCPI(obs[i].Feat), obs[i].MeasuredCPI))
	}
	wantCPI, wantMARE := stats.Mean(cpis), stats.Mean(errs)

	if math.Float64bits(cell.CPI.PerSeed[0]) != math.Float64bits(wantCPI) ||
		math.Float64bits(cell.CPI.Mean) != math.Float64bits(wantCPI) {
		t.Errorf("seed-1 CPI %v, campaign %v (bit mismatch)", cell.CPI.Mean, wantCPI)
	}
	if math.Float64bits(cell.MARE.Mean) != math.Float64bits(wantMARE) {
		t.Errorf("seed-1 MARE %v, campaign %v (bit mismatch)", cell.MARE.Mean, wantMARE)
	}
	for i, want := range model.P.Slice() {
		if math.Float64bits(cell.Coeffs[i].Mean) != math.Float64bits(want) {
			t.Errorf("coefficient %s = %v, campaign fit %v (bit mismatch)",
				cell.Coeffs[i].Name, cell.Coeffs[i].Mean, want)
		}
		if cell.Coeffs[i].CV != 0 {
			t.Errorf("coefficient %s CV = %v, want 0 for a single seed", cell.Coeffs[i].Name, cell.Coeffs[i].CV)
		}
	}

	// One replication: no interval exists, bounds collapse to the mean,
	// spread is zero — every field finite and JSON-safe.
	if cell.CPI.SampleStd != 0 || cell.MARE.SampleStd != 0 || cell.MaxCoeffCV != 0 {
		t.Errorf("single-seed spread nonzero: %+v", cell)
	}
	if cell.CPI.CI95Lo != cell.CPI.Mean || cell.CPI.CI95Hi != cell.CPI.Mean {
		t.Errorf("single-seed CI [%v, %v], want collapsed to mean %v",
			cell.CPI.CI95Lo, cell.CPI.CI95Hi, cell.CPI.Mean)
	}
}

// TestRunSeedsWarmRerun is the store-economics contract: distinct seeds
// never collide in the run store (the cold sweep simulates every run),
// and a repeated sweep is answered entirely from the store — zero
// simulations, zero regenerated traces, identical floats.
func TestRunSeedsWarmRerun(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	sn := tinySuite(t)
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumOps: 2000, FitStarts: 2, Store: store}
	s, err := SeedsSpec{Base: &MachineSpec{Name: "core2"}, Suite: sn, Count: 2}.Resolve()
	if err != nil {
		t.Fatal(err)
	}

	cold, err := RunSeeds(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	total := s.TotalRuns()
	if cold.Stats.Simulated != total || cold.Stats.Hits != 0 {
		t.Errorf("cold sweep stats %+v, want all %d runs simulated (seeds must not collide in the store)",
			cold.Stats, total)
	}
	cell := cold.Cells[0]
	if math.Float64bits(cell.CPI.PerSeed[0]) == math.Float64bits(cell.CPI.PerSeed[1]) {
		t.Error("seeds 1 and 2 produced bit-identical CPI; the seed base is not reaching the generators")
	}

	warm, err := RunSeeds(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := warm.Report()
	if rep.Sims.Simulated != 0 || rep.Sims.TraceGens != 0 {
		t.Errorf("warm rerun sims = %+v, want zero simulated and zero trace generations", rep.Sims)
	}
	if rep.Sims.StoreHits != total {
		t.Errorf("warm rerun hit %d runs, want %d", rep.Sims.StoreHits, total)
	}
	if !reflect.DeepEqual(cold.Cells, warm.Cells) {
		t.Error("warm rerun diverged from the cold sweep")
	}
}

// TestProviderSeedsMatchesRunSeeds: the provider path — per-cell fits
// joining the seed-keyed model cache — emits the same report per-float
// as the blocking path, reports only its own sourcing (zeros once the
// cache is warm), and observes cancellation.
func TestProviderSeedsMatchesRunSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	sn := tinySuite(t)
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumOps: 2000, FitStarts: 2, Store: store}
	s, err := SeedsSpec{Base: &MachineSpec{Name: "core2"}, Suite: sn, Count: 2}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	blocking, err := RunSeeds(s, opts)
	if err != nil {
		t.Fatal(err)
	}

	prov := NewProvider(opts)
	var done []int
	res, err := prov.Seeds(context.Background(), s, func(d int) { done = append(done, d) })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Cells, blocking.Cells) {
		t.Error("provider sweep diverged from the blocking sweep")
	}
	if !reflect.DeepEqual(done, []int{1, 2}) {
		t.Errorf("onSeed calls = %v, want [1 2]", done)
	}
	// The blocking sweep warmed the run store, so the provider's own
	// sourcing is all hits; its model cache now holds one fit per seed.
	if res.Stats.Simulated != 0 || res.Stats.TraceGens != 0 || res.Stats.Hits != s.TotalRuns() {
		t.Errorf("provider sweep stats %+v, want %d store hits and nothing simulated",
			res.Stats, s.TotalRuns())
	}
	if prov.CachedModels() != len(s.SeedList) {
		t.Errorf("cached models = %d, want one per seed", prov.CachedModels())
	}

	// A repeated sweep joins the cache outright: identical cells, zero
	// sourcing of any kind.
	again, err := prov.Seeds(context.Background(), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Cells, res.Cells) {
		t.Error("cached provider sweep diverged")
	}
	if again.Stats != (SimStats{}) {
		t.Errorf("cached sweep stats %+v, want zeros", again.Stats)
	}

	// Cancellation is observed before any work on both paths.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prov.Seeds(ctx, s, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("provider sweep on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := RunSeedsContext(ctx, s, opts, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("blocking sweep on cancelled ctx = %v, want context.Canceled", err)
	}
}

// sequentialSeedsReference is the pre-fan-out RunSeeds algorithm — one
// lab per seed, simulated and fitted in SeedList order — kept as the
// behavioral reference for the concurrent execution path.
func sequentialSeedsReference(t *testing.T, s *Seeds, opts Options) *SeedsResult {
	t.Helper()
	opts = opts.withDefaults()
	grid := newSeedCellGrid(len(s.Machines), len(s.Suites), len(core.ParamNames()), len(s.SeedList))
	var st SimStats
	for i, seed := range s.SeedList {
		sopts := seedOptions(opts, seed)
		suiteList := make([]suites.Suite, 0, len(s.Suites))
		for _, name := range s.Suites {
			suite, err := suites.ByName(name, suites.Options{NumOps: sopts.NumOps, SeedBase: sopts.SeedBase})
			if err != nil {
				t.Fatal(err)
			}
			suiteList = append(suiteList, suite)
		}
		lab, err := NewCustomLab(s.Machines, suiteList, sopts)
		if err != nil {
			t.Fatal(err)
		}
		if err := lab.Simulate(); err != nil {
			t.Fatal(err)
		}
		st.Hits += lab.SimStats().Hits
		st.Simulated += lab.SimStats().Simulated
		st.TraceGens += lab.SimStats().TraceGens
		for mi, m := range s.Machines {
			for si, suiteName := range s.Suites {
				model, err := lab.Model(m.Name, suiteName)
				if err != nil {
					t.Fatal(err)
				}
				obs, err := lab.Observations(m.Name, suiteName)
				if err != nil {
					t.Fatal(err)
				}
				cpi, mare := evalSeedCell(model, obs)
				grid[mi][si].set(i, cpi, mare, model.P.Slice())
			}
		}
	}
	return seedsResultFrom(s, opts, grid, st)
}

// TestRunSeedsParallelMatchesSequential pins the fan-out contract: the
// concurrent sweep — all seeds' runs in one worker-pool batch, fits
// dispatched cell-parallel — must emit a report per-float identical to
// the sequential lab-per-seed execution, with the same sourcing totals,
// at any worker count.
func TestRunSeedsParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	sn := tinySuite(t)
	opts := Options{NumOps: 2000, FitStarts: 2}
	s, err := SeedsSpec{Base: &MachineSpec{Name: "core2"}, Suite: sn, Count: 3}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	want := sequentialSeedsReference(t, s, opts)
	for _, workers := range []int{1, 8} {
		wopts := opts
		wopts.Workers = workers
		var done []int
		got, err := RunSeedsContext(context.Background(), s, wopts, func(d int) { done = append(done, d) })
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Cells, want.Cells) {
			t.Errorf("workers=%d: concurrent sweep diverged from the sequential reference", workers)
		}
		if !reflect.DeepEqual(done, []int{1, 2, 3}) {
			t.Errorf("workers=%d: onSeed calls = %v, want cumulative [1 2 3]", workers, done)
		}
		if got.Stats != want.Stats {
			t.Errorf("workers=%d: stats %+v, want %+v", workers, got.Stats, want.Stats)
		}
		if !reflect.DeepEqual(got.Report(), want.Report()) {
			t.Errorf("workers=%d: wire report diverged", workers)
		}
	}
}

// TestRunSeedsCancelMidFlight mirrors the plan/optimize cancellation
// contracts directly on the concurrent sweep (the jobs-engine flavour
// lives in jobs_test.go): cancelling mid-simulation stops dispatch,
// returns ctx.Err(), and leaves the store warm-consistent — a follow-up
// sweep hits everything the cancelled one persisted and completes the
// replications. CI runs this under -race, so it doubles as the race
// check on the combined multi-seed batch.
func TestRunSeedsCancelMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep is slow")
	}
	sn := tinySuite(t)
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, err := SeedsSpec{Base: &MachineSpec{Name: "core2"}, Suite: sn, Count: 3}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var simulated int
	opts := Options{NumOps: 20000, FitStarts: 2, Workers: 2, Store: store,
		Progress: func(run RunKey, hit bool) {
			if !hit {
				simulated++
				if simulated == 3 {
					cancel() // mid-flight: later runs are still pending
				}
			}
		}}
	_, err = RunSeedsContext(ctx, s, opts, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep error = %v, want context.Canceled", err)
	}
	persisted := simulated
	total := s.TotalRuns()
	if persisted >= total {
		t.Fatalf("cancelled sweep completed all %d runs; cancellation did nothing", total)
	}

	opts.Progress = nil
	res, err := RunSeeds(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Hits+res.Stats.Simulated != total {
		t.Errorf("follow-up covered %d runs, want %d", res.Stats.Hits+res.Stats.Simulated, total)
	}
	if res.Stats.Hits < persisted {
		t.Errorf("follow-up hit %d runs, want at least the %d the cancelled sweep simulated",
			res.Stats.Hits, persisted)
	}
}
