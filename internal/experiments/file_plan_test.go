package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runstore"
	"repro/internal/sim"
	"repro/internal/suites"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// TestPlanOverImportedTraces is the import acceptance pin: a plan over
// an exported-then-imported suite must agree per-float with the plan
// over the generated suite, its store keys must NOT collide with the
// generated runs (the file's content hash is part of workload
// identity), and a warm rerun over the imported traces must be pure
// store hits with zero trace loads.
func TestPlanOverImportedTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four small plans")
	}
	const suiteName = "cpu2000"
	dir := t.TempDir()
	suite, err := suites.ByName(suiteName, suites.Options{NumOps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range suite.Workloads {
		buf, err := trace.MaterializeSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteFile(filepath.Join(dir, spec.Name+trace.FileExt), buf); err != nil {
			t.Fatal(err)
		}
	}
	fileSuite := suites.FilePrefix + dir

	base := uarch.CoreTwo()
	axes := []PlanAxis{{Param: "rob", Values: []int{48, 96}}}
	genStore, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	genOpts := Options{NumOps: 2000, FitStarts: 2, Store: genStore}

	genPlan, err := NewPlan(base, axes, suiteName)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := RunPlan(genPlan, genOpts)
	if err != nil {
		t.Fatal(err)
	}

	filePlan, err := NewPlan(base, axes, fileSuite)
	if err != nil {
		t.Fatal(err)
	}
	fileStore, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fileOpts := genOpts
	fileOpts.Store = fileStore
	cold, err := RunPlan(filePlan, fileOpts)
	if err != nil {
		t.Fatal(err)
	}
	runs := (len(axes[0].Values) + 1) * len(suite.Workloads) // base + cells
	if cold.Stats.Simulated != runs || cold.Stats.Hits != 0 {
		t.Errorf("cold imported plan stats %+v, want %d simulated", cold.Stats, runs)
	}
	if cold.Stats.TraceGens != len(suite.Workloads) {
		t.Errorf("cold imported plan loaded %d traces, want one per workload (%d)",
			cold.Stats.TraceGens, len(suite.Workloads))
	}

	// Per-float identity with the generated-suite plan: the recorded
	// streams are the generated streams, so every simulator counter and
	// every fitted coefficient must agree exactly.
	if len(gen.Points) != len(cold.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(gen.Points), len(cold.Points))
	}
	for i := range gen.Points {
		g, f := gen.Points[i], cold.Points[i]
		if g.SimCPI != f.SimCPI || g.ModelCPI != f.ModelCPI {
			t.Errorf("point %d: generated vs imported CPIs differ: sim %v vs %v, model %v vs %v",
				i, g.SimCPI, f.SimCPI, g.ModelCPI, f.ModelCPI)
		}
		for _, c := range sim.Components() {
			if g.SimStack.Cycles[c] != f.SimStack.Cycles[c] || g.ModelStack.Cycles[c] != f.ModelStack.Cycles[c] {
				t.Errorf("point %d component %s differs between generated and imported", i, c)
			}
		}
	}

	// Imported workloads must not collide with generated ones in the
	// store: running the imported plan against the generated plan's warm
	// store stays fully cold.
	crossOpts := fileOpts
	crossOpts.Store = genStore
	cross, err := RunPlan(filePlan, crossOpts)
	if err != nil {
		t.Fatal(err)
	}
	if cross.Stats.Hits != 0 || cross.Stats.Simulated != runs {
		t.Errorf("imported plan hit the generated store (%+v): content hash is not folding into keys", cross.Stats)
	}

	// Warm rerun over the imported traces: pure hits, nothing loaded.
	warm, err := RunPlan(filePlan, fileOpts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Hits != runs || warm.Stats.Simulated != 0 || warm.Stats.TraceGens != 0 {
		t.Errorf("warm imported plan stats %+v, want %d pure hits and zero trace loads", warm.Stats, runs)
	}
	for i := range warm.Points {
		if warm.Points[i].SimCPI != cold.Points[i].SimCPI || warm.Points[i].ModelCPI != cold.Points[i].ModelCPI {
			t.Errorf("point %d differs between cold and warm imported runs", i)
		}
	}
}

// TestSeedsRejectFileSuites pins the eager rejection: a seed sweep
// over a file-backed suite must fail at Resolve, before any cell runs.
func TestSeedsRejectFileSuites(t *testing.T) {
	dir := t.TempDir()
	spec := trace.Spec{
		Name: "rec", Seed: 5, NumOps: 1000,
		LoadFrac: 0.2, BranchHardFrac: 0.2,
		CodeFootprint: 16 << 10, CodeLocality: 0.8,
		DataFootprint: 1 << 20, DataLocality: 0.5, DepDistMean: 6,
	}
	if err := trace.WriteFile(filepath.Join(dir, "rec.mtrc"), trace.Materialize(spec)); err != nil {
		t.Fatal(err)
	}
	_, err := SeedsSpec{
		Base:  &MachineSpec{Name: "core2", Base: "core2"},
		Suite: suites.FilePrefix + dir,
		Count: 2,
	}.Resolve()
	if err == nil {
		t.Fatal("seed sweep over a file-backed suite resolved")
	}
}

// TestRunnerReportsFileErrors: a workload whose backing file disappears
// after suite resolution must fail the run with an error — not a panic,
// not a silent skip.
func TestRunnerReportsFileErrors(t *testing.T) {
	dir := t.TempDir()
	spec := trace.Spec{
		Name: "gone", Seed: 5, NumOps: 1000,
		LoadFrac: 0.2, BranchHardFrac: 0.2,
		CodeFootprint: 16 << 10, CodeLocality: 0.8,
		DataFootprint: 1 << 20, DataLocality: 0.5, DepDistMean: 6,
	}
	path := filepath.Join(dir, "gone.mtrc")
	if err := trace.WriteFile(path, trace.Materialize(spec)); err != nil {
		t.Fatal(err)
	}
	suite, err := suites.ByName(suites.FilePrefix+dir, suites.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	lab, err := NewCustomLab([]*uarch.Machine{uarch.CoreTwo()}, []suites.Suite{suite}, Options{NumOps: 1000, FitStarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Simulate(); err == nil {
		t.Fatal("simulating a vanished trace file succeeded")
	}
}
