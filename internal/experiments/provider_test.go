package experiments

import (
	"math"
	"sync"
	"testing"

	"repro/internal/runstore"
	"repro/internal/suites"
	"repro/internal/uarch"
)

func testMachine(t *testing.T, name string) *uarch.Machine {
	t.Helper()
	m, err := uarch.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestProviderFitMatchesLabModel(t *testing.T) {
	if testing.Short() {
		t.Skip("fitting is slow")
	}
	opts := Options{NumOps: 3000, FitStarts: 2}
	m := testMachine(t, "core2")

	prov := NewProvider(opts)
	f, err := prov.Fitted(m, "cpu2000")
	if err != nil {
		t.Fatal(err)
	}

	suite, err := suites.ByName("cpu2000", suites.Options{NumOps: opts.NumOps})
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewCustomLab([]*uarch.Machine{m}, []suites.Suite{suite}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Simulate(); err != nil {
		t.Fatal(err)
	}
	lm, err := l.Model("core2", "cpu2000")
	if err != nil {
		t.Fatal(err)
	}

	// The provider and the lab share runSimJobs, observationsFor and
	// fitModel, so identical inputs must yield bit-identical parameters.
	if f.Model.P != lm.P {
		t.Errorf("provider fit diverged from lab fit:\n  provider %+v\n  lab      %+v", f.Model.P, lm.P)
	}
	for i := range f.Obs {
		if math.Float64bits(f.Model.PredictCPI(f.Obs[i].Feat)) !=
			math.Float64bits(lm.PredictCPI(f.Obs[i].Feat)) {
			t.Errorf("prediction for %s differs between provider and lab", f.Obs[i].Name)
		}
	}
}

func TestProviderSingleflightDedupes(t *testing.T) {
	if testing.Short() {
		t.Skip("fitting is slow")
	}
	prov := NewProvider(Options{NumOps: 2000, FitStarts: 2})
	m := testMachine(t, "core2")

	const callers = 8
	results := make([]*Fitted, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := prov.Fitted(m, "cpu2000")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = f
		}(i)
	}
	wg.Wait()

	st := prov.Stats()
	if st.Fits != 1 {
		t.Errorf("%d concurrent requests fitted %d models, want exactly 1", callers, st.Fits)
	}
	if st.ModelHits != callers-1 {
		t.Errorf("model hits = %d, want %d", st.ModelHits, callers-1)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Errorf("caller %d got a different *Fitted instance", i)
		}
	}

	// A later call is a pure cache hit.
	if _, err := prov.Fitted(m, "cpu2000"); err != nil {
		t.Fatal(err)
	}
	st = prov.Stats()
	if st.Fits != 1 || st.ModelHits != callers {
		t.Errorf("after warm call: fits=%d hits=%d, want 1/%d", st.Fits, st.ModelHits, callers)
	}
	if prov.CachedModels() != 1 {
		t.Errorf("cached models = %d, want 1", prov.CachedModels())
	}
}

func TestProviderDistinctConfigsFitSeparately(t *testing.T) {
	if testing.Short() {
		t.Skip("fitting is slow")
	}
	prov := NewProvider(Options{NumOps: 2000, FitStarts: 2})
	m := testMachine(t, "core2")
	if _, err := prov.Fitted(m, "cpu2000"); err != nil {
		t.Fatal(err)
	}

	// A different machine configuration is a different model.
	d, err := uarch.Derive(m, "core2-rob48", uarch.Overrides{ROBSize: 48})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prov.Fitted(d, "cpu2000"); err != nil {
		t.Fatal(err)
	}
	if st := prov.Stats(); st.Fits != 2 {
		t.Errorf("distinct configs should fit separately: fits=%d, want 2", st.Fits)
	}
}

func TestProviderWarmStoreDispatchesZeroSimulations(t *testing.T) {
	if testing.Short() {
		t.Skip("fitting is slow")
	}
	dir := t.TempDir()
	store, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NumOps: 2000, FitStarts: 2, Store: store}
	m := testMachine(t, "core2")

	cold := NewProvider(opts)
	if _, err := cold.Fitted(m, "cpu2000"); err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Sim.Simulated == 0 {
		t.Fatal("cold provider should have simulated")
	}

	warmStore, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewProvider(Options{NumOps: 2000, FitStarts: 2, Store: warmStore})
	wf, err := warm.Fitted(m, "cpu2000")
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Sim.Simulated != 0 {
		t.Errorf("warm provider dispatched %d simulations, want 0", st.Sim.Simulated)
	}
	if st.Sim.Hits == 0 {
		t.Error("warm provider should have served runs from the store")
	}

	// Warm-started fits are bit-identical to cold ones.
	cf, _ := cold.Fitted(m, "cpu2000")
	if wf.Model.P != cf.Model.P {
		t.Errorf("warm fit diverged from cold fit:\n  warm %+v\n  cold %+v", wf.Model.P, cf.Model.P)
	}
}

func TestProviderSweepMatchesRunSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are slow")
	}
	opts := Options{NumOps: 2000, FitStarts: 2}
	m := testMachine(t, "core2")
	values := []int{48, 96}

	want, err := RunSweep(m, "rob", values, "cpu2000", opts)
	if err != nil {
		t.Fatal(err)
	}

	prov := NewProvider(opts)
	got, err := prov.Sweep(m, "rob", values, "cpu2000")
	if err != nil {
		t.Fatal(err)
	}

	if len(got.Points) != len(want.Points) {
		t.Fatalf("point count %d, want %d", len(got.Points), len(want.Points))
	}
	for i := range got.Points {
		g, w := got.Points[i], want.Points[i]
		if g.Value != w.Value || g.Machine != w.Machine {
			t.Errorf("point %d identity mismatch: %v vs %v", i, g, w)
		}
		if math.Float64bits(g.SimCPI) != math.Float64bits(w.SimCPI) ||
			math.Float64bits(g.ModelCPI) != math.Float64bits(w.ModelCPI) {
			t.Errorf("point %d CPIs diverged: sim %v vs %v, model %v vs %v",
				i, g.SimCPI, w.SimCPI, g.ModelCPI, w.ModelCPI)
		}
	}

	// The sweep shares the provider's model cache: a predict for the
	// same base is now a hit, and a second identical sweep fits nothing.
	fitsAfterOne := prov.Stats().Fits
	if fitsAfterOne != 1 {
		t.Errorf("sweep fitted %d models, want 1", fitsAfterOne)
	}
	if _, err := prov.Sweep(m, "rob", values, "cpu2000"); err != nil {
		t.Fatal(err)
	}
	if st := prov.Stats(); st.Fits != 1 {
		t.Errorf("second sweep re-fitted (fits=%d), want cached base model", st.Fits)
	}
}

func TestProviderErrorsAreNotCached(t *testing.T) {
	prov := NewProvider(Options{NumOps: 1000, FitStarts: 2})
	m := testMachine(t, "core2")
	if _, err := prov.Fitted(m, "no-such-suite"); err == nil {
		t.Fatal("unknown suite should fail")
	}
	if prov.CachedModels() != 0 {
		t.Errorf("failed fit left %d cache entries, want 0", prov.CachedModels())
	}
	if st := prov.Stats(); st.Fits != 0 {
		t.Errorf("failed fit counted as a fit (fits=%d)", st.Fits)
	}
}

// TestProviderSweepValidatesBeforeFitting: a bogus sweep request must
// fail before the provider spends a suite simulation and fit on it.
func TestProviderSweepValidatesBeforeFitting(t *testing.T) {
	prov := NewProvider(Options{NumOps: 1000, FitStarts: 2})
	m := testMachine(t, "core2")
	if _, err := prov.Sweep(m, "bogus", []int{64}, "cpu2000"); err == nil {
		t.Fatal("unknown sweep param should fail")
	}
	if _, err := prov.Sweep(m, "rob", []int{0}, "cpu2000"); err == nil {
		t.Fatal("non-positive sweep value should fail")
	}
	if _, err := prov.Sweep(m, "rob", nil, "cpu2000"); err == nil {
		t.Fatal("empty sweep values should fail")
	}
	if st := prov.Stats(); st.Fits != 0 || st.Sim.Simulated != 0 {
		t.Errorf("invalid sweeps spent work: fits=%d simulated=%d, want 0/0",
			st.Fits, st.Sim.Simulated)
	}
}

// TestProviderFailedFitReleasesWaiters: concurrent requests for a key
// whose fit fails must all return the error — nobody hangs on the done
// channel, nothing is cached, and joining a failure is not a hit.
func TestProviderFailedFitReleasesWaiters(t *testing.T) {
	prov := NewProvider(Options{NumOps: 1000, FitStarts: 2})
	m := testMachine(t, "core2")
	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := prov.Fitted(m, "no-such-suite"); err == nil {
				t.Error("unknown suite should fail for every caller")
			}
		}()
	}
	wg.Wait()
	st := prov.Stats()
	if st.Fits != 0 || st.ModelHits != 0 {
		t.Errorf("failure run counted fits=%d hits=%d, want 0/0", st.Fits, st.ModelHits)
	}
	if prov.CachedModels() != 0 {
		t.Errorf("failure left %d cache entries, want 0", prov.CachedModels())
	}
}
