package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/uarch"
)

// SweepParam is one explorable machine axis: a name, a documentation
// string, a reader for the current value, and a translation of an
// explored value into machine overrides. The same axes drive one-axis
// sweeps (RunSweep, cmd/sweep, POST /v1/sweep) and multi-axis plans
// (RunPlan, POST /v1/plan); GET /v1/params serves the registered set so
// clients can discover valid axes instead of hard-coding them.
type SweepParam struct {
	Name string
	Doc  string
	Get  func(*uarch.Machine) int
	Set  func(int) uarch.Overrides
	// CostDown marks axes where a *smaller* value is the more expensive
	// design point (faster memory costs more than slower memory). The
	// optimizer's cost proxy inverts such axes: cost grows as the value
	// shrinks. Capacity-like axes (ROB entries, L2 KB, widths) leave it
	// false — bigger is costlier.
	CostDown bool
}

// The param registry is the single source of axis knowledge, shared by
// the sweep/plan engines, cmd/sweep's flag documentation and the
// serving layer's validation and discovery endpoint. The stock axes
// self-register below; extensions can RegisterSweepParam their own.
var (
	paramMu  sync.RWMutex
	paramReg []SweepParam
)

// RegisterSweepParam adds an axis to the registry. Registering a
// duplicate or incomplete axis is an error, so two packages cannot
// silently fight over an axis name.
func RegisterSweepParam(p SweepParam) error {
	if p.Name == "" {
		return fmt.Errorf("experiments: cannot register sweep param with empty name")
	}
	if p.Get == nil || p.Set == nil {
		return fmt.Errorf("experiments: sweep param %q needs Get and Set", p.Name)
	}
	paramMu.Lock()
	defer paramMu.Unlock()
	for _, q := range paramReg {
		if q.Name == p.Name {
			return fmt.Errorf("experiments: sweep param %q already registered", p.Name)
		}
	}
	paramReg = append(paramReg, p)
	return nil
}

// SweepParams lists the registered axes in registration (display)
// order.
func SweepParams() []SweepParam {
	paramMu.RLock()
	defer paramMu.RUnlock()
	out := make([]SweepParam, len(paramReg))
	copy(out, paramReg)
	return out
}

// SweepParamByName resolves an axis; unknown names list the valid ones.
func SweepParamByName(name string) (SweepParam, error) {
	paramMu.RLock()
	defer paramMu.RUnlock()
	var known []string
	for _, p := range paramReg {
		if p.Name == name {
			return p, nil
		}
		known = append(known, p.Name)
	}
	return SweepParam{}, fmt.Errorf("experiments: unknown sweep parameter %q (want one of %s)",
		name, strings.Join(known, ", "))
}

func init() {
	for _, p := range []SweepParam{
		{Name: "rob", Doc: "reorder-buffer entries",
			Get: func(m *uarch.Machine) int { return m.ROBSize },
			Set: func(v int) uarch.Overrides { return uarch.Overrides{ROBSize: v} }},
		{Name: "mshrs", Doc: "outstanding memory misses",
			Get: func(m *uarch.Machine) int { return m.MSHRs },
			Set: func(v int) uarch.Overrides { return uarch.Overrides{MSHRs: v} }},
		{Name: "memlat", Doc: "main-memory latency (cycles)",
			Get:      func(m *uarch.Machine) int { return m.MemLat },
			Set:      func(v int) uarch.Overrides { return uarch.Overrides{MemLat: v} },
			CostDown: true}, // lower latency = faster, pricier memory
		{Name: "depth", Doc: "front-end pipeline depth",
			Get: func(m *uarch.Machine) int { return m.FrontEndDepth },
			Set: func(v int) uarch.Overrides { return uarch.Overrides{FrontEndDepth: v} }},
		{Name: "width", Doc: "dispatch/issue/commit width",
			Get: func(m *uarch.Machine) int { return m.DispatchWidth },
			Set: func(v int) uarch.Overrides {
				return uarch.Overrides{DispatchWidth: v, IssueWidth: v, CommitWidth: v}
			}},
		{Name: "l2kb", Doc: "L2 capacity (KB)",
			Get: func(m *uarch.Machine) int { return m.L2.SizeBytes >> 10 },
			Set: func(v int) uarch.Overrides {
				return uarch.Overrides{L2: uarch.CacheOverrides{SizeBytes: v << 10}}
			}},
	} {
		if err := RegisterSweepParam(p); err != nil {
			panic(err) // static registrations cannot collide
		}
	}
}
