package experiments

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/uarch"
)

// SweepParam is one explorable machine axis: a name, a documentation
// string, a reader for the current value, and a translation of an
// explored value into machine overrides. The same axes drive one-axis
// sweeps (RunSweep, cmd/sweep, POST /v1/sweep) and multi-axis plans
// (RunPlan, POST /v1/plan); GET /v1/params serves the registered set so
// clients can discover valid axes instead of hard-coding them.
type SweepParam struct {
	Name string
	Doc  string
	Get  func(*uarch.Machine) int
	Set  func(int) uarch.Overrides
}

// The param registry is the single source of axis knowledge, shared by
// the sweep/plan engines, cmd/sweep's flag documentation and the
// serving layer's validation and discovery endpoint. The stock axes
// self-register below; extensions can RegisterSweepParam their own.
var (
	paramMu  sync.RWMutex
	paramReg []SweepParam
)

// RegisterSweepParam adds an axis to the registry. Registering a
// duplicate or incomplete axis is an error, so two packages cannot
// silently fight over an axis name.
func RegisterSweepParam(p SweepParam) error {
	if p.Name == "" {
		return fmt.Errorf("experiments: cannot register sweep param with empty name")
	}
	if p.Get == nil || p.Set == nil {
		return fmt.Errorf("experiments: sweep param %q needs Get and Set", p.Name)
	}
	paramMu.Lock()
	defer paramMu.Unlock()
	for _, q := range paramReg {
		if q.Name == p.Name {
			return fmt.Errorf("experiments: sweep param %q already registered", p.Name)
		}
	}
	paramReg = append(paramReg, p)
	return nil
}

// SweepParams lists the registered axes in registration (display)
// order.
func SweepParams() []SweepParam {
	paramMu.RLock()
	defer paramMu.RUnlock()
	out := make([]SweepParam, len(paramReg))
	copy(out, paramReg)
	return out
}

// SweepParamByName resolves an axis; unknown names list the valid ones.
func SweepParamByName(name string) (SweepParam, error) {
	paramMu.RLock()
	defer paramMu.RUnlock()
	var known []string
	for _, p := range paramReg {
		if p.Name == name {
			return p, nil
		}
		known = append(known, p.Name)
	}
	return SweepParam{}, fmt.Errorf("experiments: unknown sweep parameter %q (want one of %s)",
		name, strings.Join(known, ", "))
}

func init() {
	for _, p := range []SweepParam{
		{"rob", "reorder-buffer entries",
			func(m *uarch.Machine) int { return m.ROBSize },
			func(v int) uarch.Overrides { return uarch.Overrides{ROBSize: v} }},
		{"mshrs", "outstanding memory misses",
			func(m *uarch.Machine) int { return m.MSHRs },
			func(v int) uarch.Overrides { return uarch.Overrides{MSHRs: v} }},
		{"memlat", "main-memory latency (cycles)",
			func(m *uarch.Machine) int { return m.MemLat },
			func(v int) uarch.Overrides { return uarch.Overrides{MemLat: v} }},
		{"depth", "front-end pipeline depth",
			func(m *uarch.Machine) int { return m.FrontEndDepth },
			func(v int) uarch.Overrides { return uarch.Overrides{FrontEndDepth: v} }},
		{"width", "dispatch/issue/commit width",
			func(m *uarch.Machine) int { return m.DispatchWidth },
			func(v int) uarch.Overrides {
				return uarch.Overrides{DispatchWidth: v, IssueWidth: v, CommitWidth: v}
			}},
		{"l2kb", "L2 capacity (KB)",
			func(m *uarch.Machine) int { return m.L2.SizeBytes >> 10 },
			func(v int) uarch.Overrides {
				return uarch.Overrides{L2: uarch.CacheOverrides{SizeBytes: v << 10}}
			}},
	} {
		if err := RegisterSweepParam(p); err != nil {
			panic(err) // static registrations cannot collide
		}
	}
}
