package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ann"
	"repro/internal/calibrator"
	"repro/internal/core"
	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/stats"
	"repro/internal/uarch"
)

// Table1 renders the machine descriptions (the paper's Table 1).
func (l *Lab) Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: simulated processor configurations\n")
	// Column width follows the longest campaign machine name (derived
	// variants often exceed the stock names' 10 characters).
	width := 10
	for _, m := range l.machines {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	fmt.Fprintf(&b, "  %-14s", "")
	for _, m := range l.machines {
		fmt.Fprintf(&b, " %*s", width, m.Name)
	}
	b.WriteByte('\n')
	row := func(label string, f func(m *uarch.Machine) string) {
		fmt.Fprintf(&b, "  %-14s", label)
		for _, m := range l.machines {
			fmt.Fprintf(&b, " %*s", width, f(m))
		}
		b.WriteByte('\n')
	}
	row("L1 I-cache", func(m *uarch.Machine) string { return fmt.Sprintf("%dKB", m.L1I.SizeBytes>>10) })
	row("L1 D-cache", func(m *uarch.Machine) string { return fmt.Sprintf("%dKB", m.L1D.SizeBytes>>10) })
	row("L2 cache", func(m *uarch.Machine) string {
		if m.L2.SizeBytes >= 1<<20 {
			return fmt.Sprintf("%dMB", m.L2.SizeBytes>>20)
		}
		return fmt.Sprintf("%dKB", m.L2.SizeBytes>>10)
	})
	row("L3 cache", func(m *uarch.Machine) string {
		if !m.HasL3() {
			return "—"
		}
		return fmt.Sprintf("%dMB", m.L3.SizeBytes>>20)
	})
	row("ROB / IQ", func(m *uarch.Machine) string { return fmt.Sprintf("%d/%d", m.ROBSize, m.IQSize) })
	row("predictor", func(m *uarch.Machine) string { return m.Predictor.Kind.String() })
	row("fusion rate", func(m *uarch.Machine) string { return fmt.Sprintf("%.2f", m.FusionRate) })
	return b.String()
}

// Table2Result holds calibrated vs. configured latencies per machine.
type Table2Result struct {
	Machine    string
	Configured uarch.ModelParams
	Measured   uarch.ModelParams
}

// Table2 runs the calibrator on each machine and compares against the
// configured values (the paper's Table 2, produced the paper's way:
// width and depth from the spec, latencies from microbenchmarks).
func (l *Lab) Table2() ([]Table2Result, string, error) {
	var out []Table2Result
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: micro-architecture parameters (calibrated via microbenchmarks)\n")
	fmt.Fprintf(&b, "  %-10s %6s %6s %9s %9s %9s %9s\n",
		"platform", "width", "depth", "L2", "L3", "mem", "TLB")
	for _, m := range l.machines {
		res, err := calibrator.Calibrate(m)
		if err != nil {
			return nil, "", err
		}
		meas := res.Estimates.Params(m)
		out = append(out, Table2Result{Machine: m.Name, Configured: m.Params(), Measured: meas})
		cell := func(measured, configured int) string {
			if configured == 0 && measured == 0 {
				return "—"
			}
			return fmt.Sprintf("%d(%d)", measured, configured)
		}
		cfg := m.Params()
		fmt.Fprintf(&b, "  %-10s %6d %6d %9s %9s %9s %9s\n",
			m.Name, meas.DispatchWidth, meas.FrontEndDepth,
			cell(meas.L2Lat, cfg.L2Lat), cell(meas.L3Lat, cfg.L3Lat),
			cell(meas.MemLat, cfg.MemLat), cell(meas.TLBLat, cfg.TLBLat))
	}
	b.WriteString("  (format: measured(configured) cycles)\n")
	return out, b.String(), nil
}

// Fig2Panel is one suite×machine accuracy panel of Figure 2.
type Fig2Panel struct {
	Suite, Machine string
	Points         []stack.ScatterPoint
	MARE           float64
	MaxErr         float64
	FracBelow20    float64
}

// Fig2 fits a model per (machine, suite) — no cross-validation — and
// reports measured-vs-predicted CPI per workload. Paper expectations:
// average error ≈10%, max ≈35%, ≥90% of benchmarks below 20%.
func (l *Lab) Fig2() ([]Fig2Panel, string, error) {
	var panels []Fig2Panel
	var b strings.Builder
	b.WriteString("Figure 2: measured vs predicted CPI (no cross-validation)\n\n")
	for _, suite := range l.SuiteNames() {
		for _, m := range l.machines {
			model, err := l.Model(m.Name, suite)
			if err != nil {
				return nil, "", err
			}
			obs, err := l.Observations(m.Name, suite)
			if err != nil {
				return nil, "", err
			}
			panel := Fig2Panel{Suite: suite, Machine: m.Name}
			var pred, meas []float64
			for _, o := range obs {
				p := model.PredictCPI(o.Feat)
				pred = append(pred, p)
				meas = append(meas, o.MeasuredCPI)
				panel.Points = append(panel.Points, stack.ScatterPoint{
					Name: o.Name, Measured: o.MeasuredCPI, Predicted: p,
				})
			}
			errs := stats.RelErrs(pred, meas)
			panel.MARE = stats.Mean(errs)
			panel.MaxErr = stats.Max(errs)
			panel.FracBelow20 = stats.FractionBelow(errs, 0.20)
			panels = append(panels, panel)

			b.WriteString(stack.RenderScatter(
				fmt.Sprintf("%s -- %s: avg err %.1f%%, max %.1f%%, %.0f%% of benchmarks < 20%%",
					suite, m.Name, 100*panel.MARE, 100*panel.MaxErr, 100*panel.FracBelow20),
				panel.Points, 24))
			b.WriteByte('\n')
		}
	}
	return panels, b.String(), nil
}

// Fig3Result holds the robustness comparison for one machine: absolute
// relative errors on CPU2006 of the model trained on CPU2006 (in-suite)
// vs. the model trained on CPU2000 (transferred).
type Fig3Result struct {
	Machine      string
	InSuiteErrs  []float64 // CPU2006 model on CPU2006
	TransferErrs []float64 // CPU2000 model on CPU2006
	InSuiteMARE  float64
	TransferMARE float64
}

// Fig3 evaluates model robustness: the CPU2000-trained model should be
// only slightly less accurate on CPU2006 than the CPU2006-trained model.
func (l *Lab) Fig3() ([]Fig3Result, string, error) {
	var out []Fig3Result
	var b strings.Builder
	b.WriteString("Figure 3: robustness — CPU2000 vs CPU2006 models evaluated on CPU2006\n\n")
	for _, m := range l.machines {
		inModel, err := l.Model(m.Name, "cpu2006")
		if err != nil {
			return nil, "", err
		}
		trModel, err := l.Model(m.Name, "cpu2000")
		if err != nil {
			return nil, "", err
		}
		obs, err := l.Observations(m.Name, "cpu2006")
		if err != nil {
			return nil, "", err
		}
		r := Fig3Result{Machine: m.Name}
		for _, o := range obs {
			r.InSuiteErrs = append(r.InSuiteErrs, stats.RelErr(inModel.PredictCPI(o.Feat), o.MeasuredCPI))
			r.TransferErrs = append(r.TransferErrs, stats.RelErr(trModel.PredictCPI(o.Feat), o.MeasuredCPI))
		}
		r.InSuiteMARE = stats.Mean(r.InSuiteErrs)
		r.TransferMARE = stats.Mean(r.TransferErrs)
		out = append(out, r)
		b.WriteString(stack.RenderCDF(
			fmt.Sprintf("%s (avg: cpu2006 model %.1f%%, cpu2000 model %.1f%%)",
				m.Name, 100*r.InSuiteMARE, 100*r.TransferMARE),
			map[string][]float64{
				"cpu2006 model": r.InSuiteErrs,
				"cpu2000 model": r.TransferErrs,
			}))
		b.WriteByte('\n')
	}
	return out, b.String(), nil
}

// Fig4Cell is one model-type average error in one panel of Figure 4.
type Fig4Cell struct {
	TrainSuite, EvalSuite, Machine string
	Mechanistic, Linear, ANN       float64 // MAREs
}

// Fig4 compares the mechanistic-empirical model against linear regression
// and an ANN on identical inputs, with and without cross-validation.
// Paper expectation: comparable without cross-validation, ME clearly best
// with it (the empirical models overfit).
func (l *Lab) Fig4() ([]Fig4Cell, string, error) {
	var cells []Fig4Cell
	combos := []struct{ train, eval string }{
		{"cpu2000", "cpu2000"}, // (a) no cross-validation
		{"cpu2006", "cpu2006"},
		{"cpu2006", "cpu2000"}, // (b) cross-validation
		{"cpu2000", "cpu2006"},
	}
	for _, cb := range combos {
		for _, m := range l.machines {
			cell := Fig4Cell{TrainSuite: cb.train, EvalSuite: cb.eval, Machine: m.Name}
			trainObs, err := l.Observations(m.Name, cb.train)
			if err != nil {
				return nil, "", err
			}
			evalObs, err := l.Observations(m.Name, cb.eval)
			if err != nil {
				return nil, "", err
			}
			meas := make([]float64, len(evalObs))
			for i, o := range evalObs {
				meas[i] = o.MeasuredCPI
			}

			// Mechanistic-empirical.
			meModel, err := l.Model(m.Name, cb.train)
			if err != nil {
				return nil, "", err
			}
			cell.Mechanistic = stats.MARE(meModel.PredictAll(evalObs), meas)

			// Linear regression on the same inputs.
			X := make([][]float64, len(trainObs))
			y := make([]float64, len(trainObs))
			for i, o := range trainObs {
				X[i] = o.Feat.Vector()
				y[i] = o.MeasuredCPI
			}
			lin, err := regress.FitLinearRelative(X, y)
			if err != nil {
				return nil, "", err
			}
			linPred := make([]float64, len(evalObs))
			for i, o := range evalObs {
				linPred[i] = lin.Predict(o.Feat.Vector())
			}
			cell.Linear = stats.MARE(linPred, meas)

			// ANN on the same inputs (paper topology: one tanh hidden
			// layer, linear output).
			net, err := ann.Train(X, y, ann.Options{Hidden: 8, Epochs: 3000, Seed: 7})
			if err != nil {
				return nil, "", err
			}
			annPred := make([]float64, len(evalObs))
			for i, o := range evalObs {
				annPred[i] = net.Predict(o.Feat.Vector())
			}
			cell.ANN = stats.MARE(annPred, meas)

			cells = append(cells, cell)
		}
	}

	var b strings.Builder
	b.WriteString("Figure 4: mechanistic-empirical vs purely empirical models (avg CPI error)\n")
	for _, cb := range combos {
		label := "no cross-validation"
		if cb.train != cb.eval {
			label = "cross-validation"
		}
		fmt.Fprintf(&b, "\n%s model on %s (%s):\n", cb.train, cb.eval, label)
		fmt.Fprintf(&b, "  %-10s %14s %14s %14s\n", "machine", "mech-empirical", "neural net", "linear regr")
		for _, c := range cells {
			if c.TrainSuite == cb.train && c.EvalSuite == cb.eval {
				fmt.Fprintf(&b, "  %-10s %13.1f%% %13.1f%% %13.1f%%\n",
					c.Machine, 100*c.Mechanistic, 100*c.ANN, 100*c.Linear)
			}
		}
	}
	return cells, b.String(), nil
}

// Fig5Result reports per-CPI-component accuracy of the model against the
// simulator's ground-truth interval accounting.
type Fig5Result struct {
	Machine string
	// MAREByComp is the mean per-component error normalized by the
	// workload's *total* CPI (|predicted_c − actual_c| / CPI_total),
	// averaged over the workloads where the component is significant
	// (>1% of CPI) — the paper's Figure 5 metric, which reports e.g.
	// "9.2% error" for the LLC component as a share of overall CPI.
	MAREByComp map[sim.Component]float64
	Samples    map[sim.Component]int
}

// Fig5 validates individual CPI components against the ground truth
// (the paper validates against the ASPLOS'06 counter architecture in
// SimpleScalar; here the FMT-style accounting plays that role). Paper
// expectation: LLC-load is the hardest component (crude MLP proxy),
// resource stalls second.
func (l *Lab) Fig5(machine, suite string) (*Fig5Result, string, error) {
	model, err := l.Model(machine, suite)
	if err != nil {
		return nil, "", err
	}
	obs, err := l.Observations(machine, suite)
	if err != nil {
		return nil, "", err
	}
	s, _ := l.Suite(suite)

	res := &Fig5Result{
		Machine:    machine,
		MAREByComp: map[sim.Component]float64{},
		Samples:    map[sim.Component]int{},
	}
	sums := map[sim.Component]float64{}
	var example string
	for _, w := range s.Workloads {
		run, err := l.Run(machine, suite, w.Name)
		if err != nil {
			return nil, "", err
		}
		var o *core.Observation
		for i := range obs {
			if obs[i].Name == w.Name {
				o = &obs[i]
				break
			}
		}
		if o == nil {
			return nil, "", fmt.Errorf("experiments: observation for %s missing", w.Name)
		}
		pred := model.Stack(o.Feat)
		truth := run.Truth.CPIStack(run.Counters.Uops)
		total := truth.Total()
		for _, c := range sim.Components() {
			if truth.Cycles[c] < 0.01*total {
				continue // insignificant component
			}
			sums[c] += math.Abs(pred.Cycles[c]-truth.Cycles[c]) / total
			res.Samples[c]++
		}
		if example == "" && truth.Cycles[sim.CompLLCLoad] > 0.05*total {
			example = stack.RenderComparison(
				fmt.Sprintf("example workload %s on %s:", w.Name, machine), pred, truth)
		}
	}
	for c, s := range sums {
		res.MAREByComp[c] = s / float64(res.Samples[c])
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: CPI-component accuracy vs ground-truth accounting (%s, %s)\n",
		machine, suite)
	comps := sim.Components()
	sort.Slice(comps, func(i, j int) bool { return comps[i] < comps[j] })
	fmt.Fprintf(&b, "  %-11s %10s %9s\n", "component", "avg error", "samples")
	for _, c := range comps {
		if n := res.Samples[c]; n > 0 {
			fmt.Fprintf(&b, "  %-11s %9.1f%% %9d\n", c, 100*res.MAREByComp[c], n)
		}
	}
	if example != "" {
		b.WriteByte('\n')
		b.WriteString(example)
	}
	return res, b.String(), nil
}

// Fig6 builds the CPI-delta stacks for the two generation steps on both
// suites (six panels in the paper: overall/branch/LLC × two comparisons,
// for each suite).
func (l *Lab) Fig6() (map[string]*core.DeltaStacks, string, error) {
	out := map[string]*core.DeltaStacks{}
	var b strings.Builder
	b.WriteString("Figure 6: CPI-delta stacks (negative = newer machine faster)\n\n")
	pairs := []struct{ oldM, newM string }{
		{"pentium4", "core2"},
		{"core2", "corei7"},
	}
	for _, suite := range l.SuiteNames() {
		for _, p := range pairs {
			oldModel, err := l.Model(p.oldM, suite)
			if err != nil {
				return nil, "", err
			}
			newModel, err := l.Model(p.newM, suite)
			if err != nil {
				return nil, "", err
			}
			oldRuns, err := l.MachineRuns(p.oldM, suite)
			if err != nil {
				return nil, "", err
			}
			newRuns, err := l.MachineRuns(p.newM, suite)
			if err != nil {
				return nil, "", err
			}
			d, err := core.ComputeDelta(p.oldM, oldModel, oldRuns, p.newM, newModel, newRuns)
			if err != nil {
				return nil, "", err
			}
			key := suite + ":" + p.oldM + "->" + p.newM
			out[key] = d
			fmt.Fprintf(&b, "=== %s ===\n%s\n", key, stack.RenderDelta(d))
		}
	}
	return out, b.String(), nil
}
