package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/suites"
	"repro/internal/uarch"
)

// Provider serves fitted mechanistic-empirical models on demand — the
// concurrent, long-lived counterpart to the batch Lab, and the engine
// behind the mecpid daemon. Fitted models are cached content-addressed
// on (machine configuration hash, suite, fit options). The configuration
// hash covers the complete machine — the name included, exactly like the
// run store's keys — so a renamed variant is a distinct model even with
// equal parameters, and a variant can never alias its base. Concurrent
// requests for an uncached key are deduplicated singleflight-style —
// exactly one caller simulates and fits (warm-started from the run store
// when one is configured) while the others block on the same result.
// Failed fits are not cached; the next request retries.
//
// The cache only grows: a Fitted entry (model, observations, runs) is a
// few hundred KB, so even thousands of distinct machine×suite keys stay
// cheap next to the simulations they replace.
type Provider struct {
	opts Options

	mu     sync.Mutex
	models map[string]*fitCall
	stats  ProviderStats
}

// ProviderStats counts how the provider sourced its answers, cumulative
// since NewProvider.
type ProviderStats struct {
	// Fits is the number of models actually fitted.
	Fits int
	// ModelHits is the number of Fitted calls served without fitting:
	// from the cache, or by joining an in-flight fit of the same key.
	ModelHits int
	// Sim aggregates run sourcing (store hits vs dispatched simulations)
	// across all fits and sweeps.
	Sim SimStats
}

// Fitted bundles everything the provider derives for one (machine,
// suite) pair. Instances are shared across callers and cached forever:
// treat every field as immutable.
type Fitted struct {
	Machine *uarch.Machine
	Suite   suites.Suite
	Model   *core.Model
	// Obs are the fitting observations, sorted by workload name (the
	// same ordering Lab.Observations uses, so fits are bit-identical).
	Obs []core.Observation
	// Runs holds the underlying simulations by workload name.
	Runs map[string]*sim.Result
}

// Observation returns the named workload's fitting observation.
func (f *Fitted) Observation(workload string) (*core.Observation, error) {
	for i := range f.Obs {
		if f.Obs[i].Name == workload {
			return &f.Obs[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: workload %q not in suite %s", workload, f.Suite.Name)
}

// fitCall is one singleflight slot: the winner closes done after filling
// res/err, and every later caller for the same key blocks on done.
type fitCall struct {
	done chan struct{}
	res  *Fitted
	err  error
}

// NewProvider builds a provider with the given options (defaults applied
// as in Lab). The provider is safe for concurrent use.
func NewProvider(opts Options) *Provider {
	return &Provider{opts: opts.withDefaults(), models: map[string]*fitCall{}}
}

// Opts returns the provider's resolved options.
func (p *Provider) Opts() Options { return p.opts }

// Stats returns a snapshot of the provider counters.
func (p *Provider) Stats() ProviderStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// CachedModels returns the number of model-cache entries, in-flight fits
// included.
func (p *Provider) CachedModels() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.models)
}

// key content-addresses one fitted model: everything that determines its
// value — the complete machine configuration, the suite, and the fit
// options (ops and seedbase are part of the suite instantiation; starts
// and seed drive the regression restarts).
func (p *Provider) key(m *uarch.Machine, suiteName string, opts Options) string {
	return fmt.Sprintf("%s\n%s\nops=%d starts=%d seed=%d seedbase=%d",
		m.ConfigHash(), suiteName, opts.NumOps, opts.FitStarts, opts.Seed, opts.SeedBase)
}

// Fitted returns the fitted model (plus its observations and runs) for
// the machine on the named suite, simulating and fitting at most once
// per distinct key no matter how many callers ask concurrently.
func (p *Provider) Fitted(m *uarch.Machine, suiteName string) (*Fitted, error) {
	f, _, err := p.fittedWith(m, suiteName, p.opts)
	return f, err
}

// fittedWith is Fitted parametrized by fit options — the seeds path
// varies Seed/SeedBase per replication while sharing the provider's
// model cache, since the key covers the options. The returned SimStats
// are this call's alone: a cache or singleflight join reports zeros,
// which is how warm seeds reruns can prove "simulated": 0 end to end.
func (p *Provider) fittedWith(m *uarch.Machine, suiteName string, opts Options) (*Fitted, SimStats, error) {
	key := p.key(m, suiteName, opts)
	p.mu.Lock()
	if c, ok := p.models[key]; ok {
		p.mu.Unlock()
		<-c.done
		// Only a successful join is a hit: callers that waited on a fit
		// which then failed were served an error, not a cached model.
		if c.err == nil {
			p.mu.Lock()
			p.stats.ModelHits++
			p.mu.Unlock()
		}
		return c.res, SimStats{}, c.err
	}
	c := &fitCall{done: make(chan struct{})}
	p.models[key] = c
	p.mu.Unlock()

	// The completion runs deferred so a panic inside the fit (and the
	// simulator under it) cannot poison the key: waiters are released
	// with an error, the slot is freed for a retry, and the panic then
	// propagates to this caller.
	defer func() {
		if c.res == nil && c.err == nil {
			c.err = fmt.Errorf("experiments: fit for %s on %s panicked", suiteName, m.Name)
		}
		p.mu.Lock()
		if c.err != nil {
			delete(p.models, key) // failed fits retry on the next request
		} else {
			p.stats.Fits++
		}
		p.mu.Unlock()
		close(c.done)
	}()
	var st SimStats
	c.res, st, c.err = p.fit(m, suiteName, opts)
	p.addSimStats(st)
	return c.res, st, c.err
}

// fit simulates the suite on the machine (through the run store when
// configured) and fits the model, via the same runSimJobs /
// observationsFor / fitModel path Lab uses. The caller accounts the
// returned SimStats.
func (p *Provider) fit(m *uarch.Machine, suiteName string, opts Options) (*Fitted, SimStats, error) {
	if err := m.Validate(); err != nil {
		return nil, SimStats{}, err
	}
	suite, err := suites.ByName(suiteName, suites.Options{NumOps: opts.NumOps, SeedBase: opts.SeedBase})
	if err != nil {
		return nil, SimStats{}, err
	}
	jobs := make([]simJob, 0, len(suite.Workloads))
	for _, w := range suite.Workloads {
		jobs = append(jobs, simJob{machine: m, spec: w,
			run: RunKey{Machine: m.Name, Suite: suiteName, Workload: w.Name}})
	}
	runs := make(map[string]*sim.Result, len(jobs))
	st, err := runSimJobs(context.Background(), jobs, opts, func(rk RunKey, r *sim.Result) {
		runs[rk.Workload] = r
	})
	if err != nil {
		return nil, st, err
	}
	obs, err := observationsFor(m.Name, suite, func(workload string) (*sim.Result, error) {
		r, ok := runs[workload]
		if !ok {
			return nil, fmt.Errorf("experiments: missing run for %s/%s on %s", suiteName, workload, m.Name)
		}
		return r, nil
	})
	if err != nil {
		return nil, st, err
	}
	model, err := fitModel(m, obs, opts)
	if err != nil {
		return nil, st, err
	}
	return &Fitted{Machine: m, Suite: suite, Model: model, Obs: obs, Runs: runs}, st, nil
}

// Plan runs a multi-axis exploration plan through the provider: the
// base fit comes from the cached, singleflight-deduplicated Fitted
// path, the grid cells simulate through the same run store (with one
// materialized trace buffer shared per workload across all cells), and
// the per-cell extrapolation is RunPlan's. The returned result's Stats
// cover only this call's cell simulations (the base is served from the
// model cache). Safe for concurrent callers; concurrent plans over the
// same base share the fit but may race benignly on cell simulations.
// The caller provides an already-validated Plan (NewPlan or
// PlanSpec.Resolve), so a bogus axis or value list never costs a suite
// simulation.
func (p *Provider) Plan(plan *Plan) (*PlanResult, error) {
	f, err := p.Fitted(plan.Base, plan.Suite)
	if err != nil {
		return nil, err
	}
	lab, err := NewCustomLab(plan.Machines, []suites.Suite{f.Suite}, p.opts)
	if err != nil {
		return nil, err
	}
	lab.adopt(plan.Base.Name, plan.Suite, f)
	if err := lab.Simulate(); err != nil {
		p.addSimStats(lab.SimStats())
		return nil, err
	}
	p.addSimStats(lab.SimStats())
	return planResult(lab, plan, f.Model)
}

// Optimize searches a design-space grid through the provider: the base
// fit comes from the cached, singleflight-deduplicated Fitted path, and
// every probe simulates through the same run store. The returned
// result's Stats cover only this call's probe simulations (the base is
// served from the model cache). Safe for concurrent callers.
func (p *Provider) Optimize(o *Optimize) (*OptimizeResult, error) {
	return p.OptimizeContext(context.Background(), o, nil)
}

// OptimizeContext is Optimize with cancellation and a probe hook (see
// RunOptimizeContext). Note the base fit itself joins the singleflight
// path and is not cancellable; only the probe phase observes ctx.
func (p *Provider) OptimizeContext(ctx context.Context, o *Optimize, onProbe func(done int)) (*OptimizeResult, error) {
	f, err := p.Fitted(o.Plan.Base, o.Plan.Suite)
	if err != nil {
		return nil, err
	}
	res, st, err := runOptimize(ctx, o, f, p.opts, onProbe)
	p.addSimStats(st)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Sweep runs a one-axis sensitivity sweep through the provider — a
// single-axis Plan projected into the sweep shape, exactly as RunSweep
// adapts RunPlan, so daemon and CLI sweeps stay bit-identical.
func (p *Provider) Sweep(base *uarch.Machine, param string, values []int, suiteName string) (*SweepResult, error) {
	// Validate and derive the grid before touching the expensive fit
	// path: a bogus parameter or value list must not cost a suite
	// simulation.
	plan, err := NewPlan(base, []PlanAxis{{Param: param, Values: values}}, suiteName)
	if err != nil {
		return nil, err
	}
	res, err := p.Plan(plan)
	if err != nil {
		return nil, err
	}
	return sweepFromPlan(res)
}

func (p *Provider) addSimStats(st SimStats) {
	p.mu.Lock()
	p.stats.Sim.Hits += st.Hits
	p.stats.Sim.Simulated += st.Simulated
	p.stats.Sim.TraceGens += st.TraceGens
	p.mu.Unlock()
}
