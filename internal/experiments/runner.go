package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/runstore"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// simJob is one (machine, workload) simulation request, tagged with the
// caller's RunKey so results can be recorded wherever the caller keeps
// them.
type simJob struct {
	machine *uarch.Machine
	spec    trace.Spec
	run     RunKey
}

// sharedTrace is one workload's materialized µop stream, shared across
// every machine that simulates it in a single runSimJobs call: the
// first worker to need the stream materializes it (once-guarded, so
// concurrent workers block instead of regenerating), later workers
// replay it through independent cursors, and the last user releases the
// backing store for the garbage collector.
type sharedTrace struct {
	once sync.Once
	buf  *trace.Buffer
	left atomic.Int64
}

// runSimJobs is the shared simulation path under Lab.Simulate (batch
// campaigns and grid plans), Provider fits (on-demand serving) and the
// async Jobs engine: every job is first resolved against the run store
// (when one is configured in opts), and only the misses are dispatched
// to a bounded worker pool, their results written back to the store as
// workers finish. record is invoked once per completed job; calls are
// never concurrent, so record may touch shared state without further
// locking. opts.Progress, when set, is additionally invoked once per
// completed job with its RunKey and sourcing (store hit vs simulated),
// under the same serialization guarantee.
//
// Workloads simulated on more than one machine (a campaign's machine
// grid, a plan's cells) share one materialized trace.Buffer per spec:
// the stream is generated once and replayed per machine, instead of
// regenerated per (machine, workload) pair. To bound how many buffers
// are live at once, misses are dispatched workload-major (all machines
// of one workload adjacently) regardless of the order jobs were
// enqueued in. Results are deterministic regardless of scheduling,
// sourcing and stream kind (a replayed buffer is bit-identical to its
// generating stream, and a cached Result is exactly what re-simulating
// would produce).
//
// Cancelling ctx stops the dispatch of new simulations: jobs already
// running on a worker finish (and are recorded and stored), everything
// still pending is abandoned, and ctx.Err() is returned. A partially
// cancelled run therefore leaves the store consistent — every persisted
// entry is a complete, exact result — so a follow-up run resumes warm.
// The returned SimStats reports how many runs each path served and how
// many µop streams were actually generated.
func runSimJobs(ctx context.Context, jobs []simJob, opts Options, record func(RunKey, *sim.Result)) (SimStats, error) {
	var st SimStats
	store := opts.Store
	progress := func(run RunKey, hit bool) {
		if opts.Progress != nil {
			opts.Progress(run, hit)
		}
	}
	type missJob struct {
		simJob
		key      string // run-store key; "" when no store is configured
		specHash string
		shared   *sharedTrace // non-nil when the spec's trace is shared
	}
	var misses []missJob
	for _, j := range jobs {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		mj := missJob{simJob: j}
		if store != nil {
			mj.key = runstore.SimKey(j.machine, j.spec)
			res, ok, err := store.GetResult(mj.key)
			if err != nil {
				return st, fmt.Errorf("experiments: %s on %s: %w", j.spec.Name, j.machine.Name, err)
			}
			if ok {
				record(j.run, res)
				st.Hits++
				progress(j.run, true)
				continue
			}
		}
		misses = append(misses, mj)
	}
	if len(misses) == 0 {
		return st, nil
	}

	// Group the misses workload-major and set up trace sharing: jobs
	// arrive machine-major (every workload of machine 1, then machine
	// 2, …), which would keep every shared buffer alive across the
	// whole run; making each spec's uses adjacent bounds the live
	// buffers to roughly the worker count.
	first := make(map[string]int, len(misses))
	uses := make(map[string]int, len(misses))
	for i := range misses {
		h := misses[i].spec.ConfigHash()
		misses[i].specHash = h
		if _, ok := first[h]; !ok {
			first[h] = i
		}
		uses[h]++
	}
	sort.SliceStable(misses, func(a, b int) bool {
		return first[misses[a].specHash] < first[misses[b].specHash]
	})
	buffers := map[string]*sharedTrace{}
	for h, n := range uses {
		if n > 1 && !opts.NoSharedTraces {
			sh := &sharedTrace{}
			sh.left.Store(int64(n))
			buffers[h] = sh
		}
	}
	for i := range misses {
		misses[i].shared = buffers[misses[i].specHash]
	}

	var (
		mu        sync.Mutex
		firstErr  error
		wg        sync.WaitGroup
		traceGens atomic.Int64
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	ch := make(chan missJob)
	for i := 0; i < opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One simulator per machine per worker, lazily built.
			sims := map[string]*sim.Simulator{}
			for j := range ch {
				s, ok := sims[j.machine.Name]
				if !ok {
					var err error
					s, err = sim.New(j.machine)
					if err != nil {
						fail(err)
						continue
					}
					sims[j.machine.Name] = s
				}
				var src trace.Source
				if sh := j.shared; sh != nil {
					sh.once.Do(func() {
						sh.buf = trace.Materialize(j.spec)
						traceGens.Add(1)
					})
					src = sh.buf.Replay()
				} else {
					src = trace.New(j.spec)
					traceGens.Add(1)
				}
				res, err := s.Run(src)
				if sh := j.shared; sh != nil && sh.left.Add(-1) == 0 {
					sh.buf = nil // last user: release the stream for GC
				}
				if err != nil {
					fail(fmt.Errorf("experiments: %s on %s: %w", j.spec.Name, j.machine.Name, err))
					continue
				}
				if j.key != "" {
					if err := store.PutResult(j.key, res); err != nil {
						fail(fmt.Errorf("experiments: %s on %s: %w", j.spec.Name, j.machine.Name, err))
						continue
					}
				}
				mu.Lock()
				record(j.run, res)
				st.Simulated++
				progress(j.run, false)
				mu.Unlock()
			}
		}()
	}
feed:
	for _, j := range misses {
		// Stop feeding once a worker has failed: the campaign is doomed
		// anyway, and the remaining simulations would waste minutes.
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		select {
		case ch <- j:
		case <-ctx.Done():
			break feed
		}
	}
	close(ch)
	wg.Wait()
	st.TraceGens = int(traceGens.Load())
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return st, firstErr
}
