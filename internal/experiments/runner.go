package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/runstore"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// simJob is one (machine, workload) simulation request, tagged with the
// caller's RunKey so results can be recorded wherever the caller keeps
// them.
type simJob struct {
	machine *uarch.Machine
	spec    trace.Spec
	run     RunKey
	// record, when non-nil, overrides the batch-level record callback
	// for this job. Combined batches (a seed sweep's per-seed labs)
	// use it to route each result to its own accumulator while sharing
	// one worker pool; the serialization guarantee is unchanged.
	record func(RunKey, *sim.Result)
}

// sharedTrace is one workload's materialized µop stream, shared across
// every machine that simulates it in a single runSimJobs call. The
// materializer pipeline produces the stream ahead of the workers and
// closes ready; workers replay it through independent cursors, and the
// last user hands the backing store back for recycling. buf is nil
// after ready closes when materialization was aborted (cancellation or
// an earlier failure).
type sharedTrace struct {
	spec  trace.Spec
	ready chan struct{}
	buf   *trace.Buffer
	left  atomic.Int64
}

// runSimJobs is the shared simulation path under Lab.Simulate (batch
// campaigns and grid plans), Provider fits (on-demand serving) and the
// async Jobs engine: every job is first resolved against the run store
// (when one is configured in opts), and only the misses are dispatched
// to a bounded worker pool, their results written back to the store as
// workers finish. record is invoked once per completed job; calls are
// never concurrent, so record may touch shared state without further
// locking. opts.Progress, when set, is additionally invoked once per
// completed job with its RunKey and sourcing (store hit vs simulated),
// under the same serialization guarantee.
//
// Workloads simulated on more than one machine (a campaign's machine
// grid, a plan's cells) share one materialized trace.Buffer per spec:
// the stream is generated once and replayed per machine, instead of
// regenerated per (machine, workload) pair. Misses are dispatched
// workload-major (all machines of one workload adjacently) regardless
// of the order jobs were enqueued in, and a dedicated materializer
// goroutine produces the buffers in that same order, ahead of the
// workers — cells simulate while the next workload's stream generates
// instead of stalling on it. At most opts.LiveBuffers streams (default
// workers+1, ≈56·NumOps bytes each) are live at once: the materializer
// blocks until a slot frees, and the last user
// of each buffer returns its backing store for the next workload to
// refill in place, so a long plan touches a bounded set of stores
// instead of allocating one per workload. Results are deterministic
// regardless of scheduling, sourcing and stream kind (a replayed buffer
// is bit-identical to its generating stream, and a cached Result is
// exactly what re-simulating would produce).
//
// Cancelling ctx stops the dispatch of new simulations: jobs already
// running on a worker finish (and are recorded and stored), everything
// still pending is abandoned, and ctx.Err() is returned. A partially
// cancelled run therefore leaves the store consistent — every persisted
// entry is a complete, exact result — so a follow-up run resumes warm.
// The returned SimStats reports how many runs each path served and how
// many µop streams were actually generated.
func runSimJobs(ctx context.Context, jobs []simJob, opts Options, record func(RunKey, *sim.Result)) (SimStats, error) {
	var st SimStats
	store := opts.Store
	// Workers can reach here unclamped (callers that build Options by
	// hand skip withDefaults); a non-positive count would spawn no
	// workers and deadlock the feed loop, so derive it the same way
	// withDefaults does.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	progress := func(run RunKey, hit bool) {
		if opts.Progress != nil {
			opts.Progress(run, hit)
		}
	}
	recordFor := func(override func(RunKey, *sim.Result)) func(RunKey, *sim.Result) {
		if override != nil {
			return override
		}
		return record
	}
	type missJob struct {
		simJob
		key      string // run-store key; "" when no store is configured
		specHash string
		shared   *sharedTrace // non-nil when the spec's trace is shared
	}
	var misses []missJob
	for _, j := range jobs {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		mj := missJob{simJob: j}
		if store != nil {
			mj.key = runstore.SimKey(j.machine, j.spec)
			res, ok, err := store.GetResult(mj.key)
			if err != nil {
				return st, fmt.Errorf("experiments: %s on %s: %w", j.spec.Name, j.machine.Name, err)
			}
			if ok {
				recordFor(j.record)(j.run, res)
				st.Hits++
				progress(j.run, true)
				continue
			}
		}
		misses = append(misses, mj)
	}
	if len(misses) == 0 {
		return st, nil
	}

	// Group the misses workload-major: jobs arrive machine-major (every
	// workload of machine 1, then machine 2, …), which would keep every
	// shared buffer alive across the whole run; making each spec's uses
	// adjacent bounds the live buffers and gives the materializer its
	// production order.
	first := make(map[string]int, len(misses))
	uses := make(map[string]int, len(misses))
	for i := range misses {
		h := misses[i].spec.ConfigHash()
		misses[i].specHash = h
		if _, ok := first[h]; !ok {
			first[h] = i
		}
		uses[h]++
	}
	sort.SliceStable(misses, func(a, b int) bool {
		return first[misses[a].specHash] < first[misses[b].specHash]
	})
	var groups []*sharedTrace // shared workloads in dispatch order
	if !opts.NoSharedTraces {
		buffers := make(map[string]*sharedTrace)
		for i := range misses {
			h := misses[i].specHash
			if uses[h] <= 1 {
				continue
			}
			sh, ok := buffers[h]
			if !ok {
				sh = &sharedTrace{spec: misses[i].spec, ready: make(chan struct{})}
				sh.left.Store(int64(uses[h]))
				buffers[h] = sh
				groups = append(groups, sh)
			}
			misses[i].shared = sh
		}
	}

	var (
		mu        sync.Mutex
		firstErr  error
		abort     = make(chan struct{}) // closed on the first failure
		wg        sync.WaitGroup
		matWG     sync.WaitGroup
		traceGens atomic.Int64
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			close(abort)
		}
		mu.Unlock()
	}

	// Materializer pipeline. freeSlots carries the recyclable backing
	// stores (nil until first use); its capacity is the live-buffer
	// bound. The loop always closes every group's ready channel so no
	// worker blocks forever, even when aborting.
	var freeSlots chan []trace.MicroOp
	if len(groups) > 0 {
		liveBufs := opts.LiveBuffers
		if liveBufs <= 0 {
			liveBufs = workers + 1
		}
		if liveBufs > len(groups) {
			liveBufs = len(groups)
		}
		freeSlots = make(chan []trace.MicroOp, liveBufs)
		for i := 0; i < liveBufs; i++ {
			freeSlots <- nil
		}
		matWG.Add(1)
		go func() {
			defer matWG.Done()
			for _, sh := range groups {
				select {
				case ops := <-freeSlots:
					// File-aware: generated specs expand through the
					// generator, file-backed ones decode from disk with
					// their content hash verified. On failure the slot
					// goes back so later groups still materialize.
					buf, err := trace.MaterializeSpecInto(sh.spec, ops)
					if err != nil {
						freeSlots <- ops
						fail(fmt.Errorf("experiments: materialize %s: %w", sh.spec.Name, err))
					} else {
						sh.buf = buf
						traceGens.Add(1)
					}
				case <-ctx.Done():
				case <-abort:
				}
				close(sh.ready)
			}
		}()
	}

	ch := make(chan missJob)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One simulator per machine per worker, lazily built.
			sims := map[string]*sim.Simulator{}
			for j := range ch {
				s, ok := sims[j.machine.Name]
				if !ok {
					var err error
					s, err = sim.New(j.machine)
					if err != nil {
						fail(err)
						continue
					}
					sims[j.machine.Name] = s
				}
				var src trace.Source
				var buf *trace.Buffer
				if sh := j.shared; sh != nil {
					<-sh.ready
					if buf = sh.buf; buf == nil {
						continue // materialization aborted
					}
					src = buf.Replay()
				} else {
					var err error
					src, err = trace.NewSpecSource(j.spec)
					if err != nil {
						fail(fmt.Errorf("experiments: %s on %s: %w", j.spec.Name, j.machine.Name, err))
						continue
					}
					traceGens.Add(1)
				}
				res, err := s.Run(src)
				if sh := j.shared; sh != nil && sh.left.Add(-1) == 0 {
					// Last user: recycle the stream's backing store for
					// the workload the materializer produces next.
					sh.buf = nil
					freeSlots <- buf.ReleaseOps()
				}
				if err != nil {
					fail(fmt.Errorf("experiments: %s on %s: %w", j.spec.Name, j.machine.Name, err))
					continue
				}
				if j.key != "" {
					if err := store.PutResult(j.key, res); err != nil {
						fail(fmt.Errorf("experiments: %s on %s: %w", j.spec.Name, j.machine.Name, err))
						continue
					}
				}
				mu.Lock()
				recordFor(j.record)(j.run, res)
				st.Simulated++
				progress(j.run, false)
				mu.Unlock()
			}
		}()
	}
feed:
	for _, j := range misses {
		// Stop feeding once a worker has failed: the campaign is doomed
		// anyway, and the remaining simulations would waste minutes.
		select {
		case <-abort:
			break feed
		default:
		}
		select {
		case ch <- j:
		case <-ctx.Done():
			break feed
		}
	}
	close(ch)
	wg.Wait()
	matWG.Wait()
	st.TraceGens = int(traceGens.Load())
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return st, firstErr
}
