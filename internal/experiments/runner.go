package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/runstore"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// simJob is one (machine, workload) simulation request, tagged with the
// caller's RunKey so results can be recorded wherever the caller keeps
// them.
type simJob struct {
	machine *uarch.Machine
	spec    trace.Spec
	run     RunKey
}

// runSimJobs is the shared simulation path under Lab.Simulate (batch
// campaigns), Provider fits (on-demand serving) and the async Jobs
// engine: every job is first resolved against the run store (when one is
// configured in opts), and only the misses are dispatched to a bounded
// worker pool, their results written back to the store as workers
// finish. record is invoked once per completed job; calls are never
// concurrent, so record may touch shared state without further locking.
// opts.Progress, when set, is additionally invoked once per completed
// job with its sourcing (store hit vs simulated), under the same
// serialization guarantee. Results are deterministic regardless of
// scheduling (every run is independent and seeded) and regardless of the
// store (a cached Result is exactly what re-simulating would produce).
//
// Cancelling ctx stops the dispatch of new simulations: jobs already
// running on a worker finish (and are recorded and stored), everything
// still pending is abandoned, and ctx.Err() is returned. A partially
// cancelled run therefore leaves the store consistent — every persisted
// entry is a complete, exact result — so a follow-up run resumes warm.
// The returned SimStats reports how many runs each path served.
func runSimJobs(ctx context.Context, jobs []simJob, opts Options, record func(RunKey, *sim.Result)) (SimStats, error) {
	var st SimStats
	store := opts.Store
	progress := func(hit bool) {
		if opts.Progress != nil {
			opts.Progress(hit)
		}
	}
	type missJob struct {
		simJob
		key string // run-store key; "" when no store is configured
	}
	var misses []missJob
	for _, j := range jobs {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		mj := missJob{simJob: j}
		if store != nil {
			mj.key = runstore.SimKey(j.machine, j.spec)
			res, ok, err := store.GetResult(mj.key)
			if err != nil {
				return st, fmt.Errorf("experiments: %s on %s: %w", j.spec.Name, j.machine.Name, err)
			}
			if ok {
				record(j.run, res)
				st.Hits++
				progress(true)
				continue
			}
		}
		misses = append(misses, mj)
	}
	if len(misses) == 0 {
		return st, nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	ch := make(chan missJob)
	for i := 0; i < opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One simulator per machine per worker, lazily built.
			sims := map[string]*sim.Simulator{}
			for j := range ch {
				s, ok := sims[j.machine.Name]
				if !ok {
					var err error
					s, err = sim.New(j.machine)
					if err != nil {
						fail(err)
						continue
					}
					sims[j.machine.Name] = s
				}
				res, err := s.Run(trace.New(j.spec))
				if err != nil {
					fail(fmt.Errorf("experiments: %s on %s: %w", j.spec.Name, j.machine.Name, err))
					continue
				}
				if j.key != "" {
					if err := store.PutResult(j.key, res); err != nil {
						fail(fmt.Errorf("experiments: %s on %s: %w", j.spec.Name, j.machine.Name, err))
						continue
					}
				}
				mu.Lock()
				record(j.run, res)
				st.Simulated++
				progress(false)
				mu.Unlock()
			}
		}()
	}
feed:
	for _, j := range misses {
		// Stop feeding once a worker has failed: the campaign is doomed
		// anyway, and the remaining simulations would waste minutes.
		mu.Lock()
		stop := firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		select {
		case ch <- j:
		case <-ctx.Done():
			break feed
		}
	}
	close(ch)
	wg.Wait()
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}
	return st, firstErr
}
