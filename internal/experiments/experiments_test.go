package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// sharedLab is simulated once and reused across tests (read-mostly; the
// model cache is filled on demand but deterministic).
var sharedLab *Lab

func lab(t *testing.T) *Lab {
	t.Helper()
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	if sharedLab == nil {
		l := NewLab(Options{NumOps: 60000, FitStarts: 6})
		if err := l.Simulate(); err != nil {
			t.Fatal(err)
		}
		sharedLab = l
	}
	return sharedLab
}

func TestSimulatePopulatesAllRuns(t *testing.T) {
	l := lab(t)
	for _, m := range l.Machines() {
		for _, sname := range l.SuiteNames() {
			s, _ := l.Suite(sname)
			for _, w := range s.Workloads {
				r, err := l.Run(m.Name, sname, w.Name)
				if err != nil {
					t.Fatalf("%s/%s on %s: %v", sname, w.Name, m.Name, err)
				}
				if r.Counters.Uops == 0 {
					t.Fatalf("empty run for %s on %s", w.Name, m.Name)
				}
			}
		}
	}
}

func TestRunBeforeSimulateErrors(t *testing.T) {
	l := NewLab(Options{NumOps: 1000})
	if _, err := l.Run("core2", "cpu2000", "gzip.1"); err == nil {
		t.Error("expected error before Simulate")
	}
}

func TestTable1(t *testing.T) {
	l := NewLab(Options{})
	out := l.Table1()
	for _, want := range []string{"pentium4", "core2", "corei7", "8MB", "4MB", "tournament"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow")
	}
	l := NewLab(Options{})
	rows, text, err := l.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 machines, got %d", len(rows))
	}
	for _, r := range rows {
		// Calibrated values should be close to configured (Table 2).
		if d := r.Measured.MemLat - r.Configured.MemLat; d < -5 || d > 5 {
			t.Errorf("%s: calibrated mem %d vs configured %d", r.Machine,
				r.Measured.MemLat, r.Configured.MemLat)
		}
	}
	if !strings.Contains(text, "313") {
		t.Error("Table 2 text missing P4 memory latency")
	}
}

func TestFig2AccuracyMatchesPaperShape(t *testing.T) {
	l := lab(t)
	panels, text, err := l.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 6 {
		t.Fatalf("want 6 panels (2 suites × 3 machines), got %d", len(panels))
	}
	for _, p := range panels {
		// Paper: ~10% average error; allow headroom for the short runs.
		if p.MARE > 0.20 {
			t.Errorf("%s/%s: avg error %.1f%%, want < 20%%", p.Suite, p.Machine, 100*p.MARE)
		}
		// Paper: 90% of benchmarks below 20% error; require most below.
		if p.FracBelow20 < 0.70 {
			t.Errorf("%s/%s: only %.0f%% of benchmarks below 20%% error",
				p.Suite, p.Machine, 100*p.FracBelow20)
		}
		if len(p.Points) < 48 {
			t.Errorf("%s/%s: %d points", p.Suite, p.Machine, len(p.Points))
		}
	}
	if !strings.Contains(text, "bisector") {
		t.Error("Fig2 text missing scatter plots")
	}
}

func TestFig3TransferStaysClose(t *testing.T) {
	l := lab(t)
	results, text, err := l.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("want 3 machines, got %d", len(results))
	}
	for _, r := range results {
		// The paper's robustness claim: the transferred model is only
		// slightly worse. Allow up to 2× + 6 points of degradation.
		if r.TransferMARE > 2*r.InSuiteMARE+0.06 {
			t.Errorf("%s: transfer MARE %.1f%% vs in-suite %.1f%% — model not robust",
				r.Machine, 100*r.TransferMARE, 100*r.InSuiteMARE)
		}
	}
	if !strings.Contains(text, "cpu2000 model") {
		t.Error("Fig3 text missing curves")
	}
}

func TestFig4CrossValidationFavorsMechanistic(t *testing.T) {
	l := lab(t)
	cells, text, err := l.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("want 12 cells, got %d", len(cells))
	}
	var cvME, cvEmp []float64
	for _, c := range cells {
		if c.TrainSuite != c.EvalSuite {
			cvME = append(cvME, c.Mechanistic)
			worstEmp := c.Linear
			if c.ANN > worstEmp {
				worstEmp = c.ANN
			}
			cvEmp = append(cvEmp, worstEmp)
		}
	}
	// Paper: under cross-validation the ME model clearly beats the
	// empirical ones on average (they overfit).
	var meSum, empSum float64
	for i := range cvME {
		meSum += cvME[i]
		empSum += cvEmp[i]
	}
	if meSum >= empSum {
		t.Errorf("cross-validated ME error sum %.3f should beat worst-empirical %.3f",
			meSum, empSum)
	}
	if !strings.Contains(text, "cross-validation") {
		t.Error("Fig4 text missing panels")
	}
}

func TestFig5ComponentErrors(t *testing.T) {
	l := lab(t)
	res, text, err := l.Fig5("core2", "cpu2006")
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples[sim.CompBase] == 0 {
		t.Fatal("base component should always be significant")
	}
	// Base is exact by construction (both are 1/D).
	if res.MAREByComp[sim.CompBase] > 0.01 {
		t.Errorf("base component error %.2f%%, want ~0", 100*res.MAREByComp[sim.CompBase])
	}
	if res.Samples[sim.CompLLCLoad] == 0 {
		t.Error("expected significant LLC-load components in cpu2006")
	}
	if !strings.Contains(text, "component") {
		t.Error("Fig5 text missing table")
	}
}

func TestFig6DeltaStacksShape(t *testing.T) {
	l := lab(t)
	deltas, text, err := l.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 4 {
		t.Fatalf("want 4 delta sets, got %d", len(deltas))
	}
	for key, d := range deltas {
		// The newer machine should win overall on both steps (the paper's
		// top-row deltas are net negative).
		if d.NewCPI >= d.OldCPI && strings.Contains(key, "pentium4") {
			t.Errorf("%s: new CPI %.3f not better than old %.3f", key, d.NewCPI, d.OldCPI)
		}
	}
	// Core2-over-P4: wider dispatch and fusion must contribute
	// improvements (negative deltas) on both suites.
	for _, suite := range []string{"cpu2000", "cpu2006"} {
		d := deltas[suite+":pentium4->core2"]
		if d == nil {
			t.Fatalf("missing pentium4->core2 delta for %s", suite)
		}
		if d.Overall.Width >= 0 {
			t.Errorf("%s: width delta %.4f should be negative (3→4 wide)", suite, d.Overall.Width)
		}
		if d.Overall.Fusion >= 0 {
			t.Errorf("%s: fusion delta %.4f should be negative (fusion added)", suite, d.Overall.Fusion)
		}
		if d.Overall.Branch >= 0 {
			t.Errorf("%s: branch delta %.4f should be negative (14 vs 31 deep)", suite, d.Overall.Branch)
		}
	}
	if !strings.Contains(text, "µop fusion") {
		t.Error("Fig6 text missing decomposition")
	}
}

func TestAblations(t *testing.T) {
	l := lab(t)
	res, text, err := l.Ablations("core2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("want 4 ablations, got %d", len(res))
	}
	for _, r := range res {
		if r.FullCVErr <= 0 || r.AblatedCVErr <= 0 {
			t.Errorf("%s: degenerate errors %v/%v", r.Name, r.FullCVErr, r.AblatedCVErr)
		}
	}
	if !strings.Contains(text, "variant") {
		t.Error("ablation text missing table")
	}
}

func TestRunKeySeparatesSharedWorkloadNames(t *testing.T) {
	// bzip2 variants exist in both suites; the struct key must keep the
	// runs distinct per suite (the old name-tagging hack's job).
	l := lab(t)
	a, err := l.Run("core2", "cpu2000", "bzip2.1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Run("core2", "cpu2006", "bzip2.1")
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters == b.Counters {
		t.Error("cpu2000 and cpu2006 bzip2.1 runs should differ (different specs)")
	}
}
