package serve

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the predict golden from live output")

// TestPredictGoldenResponse pins the /v1/predict wire format
// byte-for-byte (ops=2000, starts=2, seed=1), in the style of the fig2
// golden: field names, field order, indentation, float formatting and
// the numbers themselves must not drift silently. Regenerate with
//
//	go test ./internal/serve -run TestPredictGoldenResponse -update-golden
//
// only for an intentional wire-format or simulator/model change.
func TestPredictGoldenResponse(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	ts, _ := newTestServer(t, experiments.Options{})
	code, body := postJSON(t, ts.URL+"/v1/predict",
		`{"machine": {"name": "core2"}, "suite": "cpu2000", "workload": "mcf"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}

	path := filepath.Join("testdata", "predict_core2_cpu2000_ops2000.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("/v1/predict response drifted from golden (%d vs %d bytes):\n%s", len(body), len(want), body)
	}
}

// TestSuitesGoldenResponse pins the GET /v1/suites wire format — the
// suite roster, each suite's source classification ("builtin" vs
// "file"), and the workload lists. Regenerate with
//
//	go test ./internal/serve -run TestSuitesGoldenResponse -update-golden
//
// only for an intentional roster or wire-format change (e.g. a new
// registered suite family).
func TestSuitesGoldenResponse(t *testing.T) {
	ts, _ := newTestServer(t, experiments.Options{})
	resp, err := http.Get(ts.URL + "/v1/suites")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "suites_ops2000.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("/v1/suites response drifted from golden (%d vs %d bytes):\n%s", len(body), len(want), body)
	}
}

// TestOptimizeGoldenResponse pins the /v1/optimize wire format the same
// way: a one-axis min-CPI descent over core2's dispatch width on cpu2000
// (ops=2000, starts=2, seed=1). Regenerate with
//
//	go test ./internal/serve -run TestOptimizeGoldenResponse -update-golden
//
// only for an intentional wire-format or simulator/model change.
func TestOptimizeGoldenResponse(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end optimize is slow")
	}
	ts, _ := newTestServer(t, experiments.Options{})
	code, body := postJSON(t, ts.URL+"/v1/optimize",
		`{"base": {"name": "core2"}, "axes": [{"param": "width", "values": [2, 4]}], "suite": "cpu2000", "objective": {"kind": "min-cpi"}}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}

	path := filepath.Join("testdata", "optimize_core2_cpu2000_ops2000.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, body, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("/v1/optimize response drifted from golden (%d vs %d bytes):\n%s", len(body), len(want), body)
	}
}
