// Package serve implements the HTTP/JSON layer of the mecpid daemon:
// the paper's fitted mechanistic-empirical model, exposed as a
// long-running prediction service. Handlers are thin translations from
// wire requests to the experiments.Provider — the concurrent model
// cache with singleflight fitting — so N identical in-flight predict
// requests cost one simulate+fit, and a warm run store costs zero
// simulations. All responses are JSON; errors come back as
// {"error": "..."} with a 4xx/5xx status.
//
// Endpoints:
//
//	GET    /healthz        liveness + simulator version
//	GET    /v1/machines    registered machine names
//	GET    /v1/suites      registered suites and their workloads
//	GET    /v1/params      registered exploration axes (valid sweep/plan params)
//	POST   /v1/predict     CPI + CPI stack for a machine spec × suite[/workload]
//	POST   /v1/sweep       one-axis what-if sweep over a derived machine
//	POST   /v1/plan        multi-axis exploration grid, fitted once and extrapolated per cell
//	POST   /v1/jobs        submit an async campaign, sweep or plan job
//	GET    /v1/jobs        list jobs (submission order)
//	GET    /v1/jobs/{id}   one job's state, progress and result
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /v1/stats       request, model-cache, simulation, store and job counters
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/suites"
	"repro/internal/uarch"
)

// maxBodyBytes bounds request bodies; predict and sweep requests are a
// few hundred bytes of JSON.
const maxBodyBytes = 1 << 20

// Server translates HTTP requests into provider and job-engine calls.
// Construct with New; all methods are safe for concurrent use.
type Server struct {
	prov *experiments.Provider
	jobs *experiments.Jobs
	mux  *http.ServeMux

	inflight atomic.Int64
	reqs     struct {
		healthz, machines, suites, params, predict, sweep, plan, stats atomic.Int64
		jobSubmit, jobList, jobGet, jobCancel                          atomic.Int64
	}
}

// New builds a server around the given provider and job engine. jobs may
// be nil, in which case the /v1/jobs endpoints answer 503.
func New(prov *experiments.Provider, jobs *experiments.Jobs) *Server {
	s := &Server{prov: prov, jobs: jobs, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/machines", s.handleMachines)
	s.mux.HandleFunc("GET /v1/suites", s.handleSuites)
	s.mux.HandleFunc("GET /v1/params", s.handleParams)
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/plan", s.handlePlan)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// Handler returns the daemon's root handler: the route mux wrapped with
// the in-flight gauge.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		s.mux.ServeHTTP(w, r)
	})
}

// writeJSON emits v indented, so responses read well from curl and pin
// down a stable golden wire format.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decodeStrict parses a request body with the same strictness as
// scenario files: unknown fields and trailing documents are errors.
func decodeStrict(r *http.Request, w http.ResponseWriter, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("parse request: %w", err)
	}
	if dec.More() {
		return errors.New("parse request: trailing data after JSON document")
	}
	return nil
}

// HealthzResponse is the GET /healthz body.
type HealthzResponse struct {
	Status     string `json:"status"`
	SimVersion string `json:"simVersion"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.reqs.healthz.Add(1)
	writeJSON(w, http.StatusOK, HealthzResponse{Status: "ok", SimVersion: sim.Version})
}

// MachinesResponse is the GET /v1/machines body.
type MachinesResponse struct {
	Machines []string `json:"machines"`
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	s.reqs.machines.Add(1)
	writeJSON(w, http.StatusOK, MachinesResponse{Machines: uarch.Names()})
}

// SuiteInfo describes one registered suite at the daemon's µop count.
type SuiteInfo struct {
	Name      string   `json:"name"`
	Workloads []string `json:"workloads"`
}

// SuitesResponse is the GET /v1/suites body.
type SuitesResponse struct {
	Ops    int         `json:"ops"`
	Suites []SuiteInfo `json:"suites"`
}

func (s *Server) handleSuites(w http.ResponseWriter, r *http.Request) {
	s.reqs.suites.Add(1)
	ops := s.prov.Opts().NumOps
	resp := SuitesResponse{Ops: ops}
	for _, name := range suites.Names() {
		suite, err := suites.ByName(name, suites.Options{NumOps: ops})
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		info := SuiteInfo{Name: name}
		for _, wl := range suite.Workloads {
			info.Workloads = append(info.Workloads, wl.Name)
		}
		resp.Suites = append(resp.Suites, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ParamInfo describes one registered exploration axis.
type ParamInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// ParamsResponse is the GET /v1/params body: the axes a sweep or plan
// request may explore, in display order — clients discover valid plan
// axes here instead of hard-coding them.
type ParamsResponse struct {
	Params []ParamInfo `json:"params"`
}

func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	s.reqs.params.Add(1)
	var resp ParamsResponse
	for _, p := range experiments.SweepParams() {
		resp.Params = append(resp.Params, ParamInfo{Name: p.Name, Doc: p.Doc})
	}
	writeJSON(w, http.StatusOK, resp)
}

// PredictRequest asks for CPI predictions of a machine spec (a
// registered name, or base + overrides exactly as in scenario files) on
// a suite. With Workload set, the response carries that workload alone;
// otherwise every workload plus the suite-wide accuracy.
type PredictRequest struct {
	Machine  experiments.MachineSpec `json:"machine"`
	Suite    string                  `json:"suite"`
	Workload string                  `json:"workload,omitempty"`
}

// StackEntry is one CPI-stack component, in stack order (base first).
type StackEntry struct {
	Component string  `json:"component"`
	CPI       float64 `json:"cpi"`
}

func stackEntries(st sim.Stack) []StackEntry {
	out := make([]StackEntry, 0, sim.NumComponents)
	for _, c := range sim.Components() {
		out = append(out, StackEntry{Component: c.String(), CPI: st.Cycles[c]})
	}
	return out
}

// WorkloadPrediction is the model's answer for one workload: measured
// (counter-derived) CPI, the model's prediction, and the predicted
// per-component CPI stack — the paper's headline deliverable, over HTTP.
// RelErr is signed — negative means the model under-predicts — the
// convention every relErr field on this wire follows; the accuracy
// aggregates are magnitudes.
type WorkloadPrediction struct {
	Workload     string       `json:"workload"`
	MeasuredCPI  float64      `json:"measuredCPI"`
	PredictedCPI float64      `json:"predictedCPI"`
	RelErr       float64      `json:"relErr"`
	Stack        []StackEntry `json:"stack"`
}

// SuiteAccuracy summarizes suite-wide model error, as cmd/mecpi prints.
type SuiteAccuracy struct {
	AvgRelErr      float64 `json:"avgRelErr"`
	MaxRelErr      float64 `json:"maxRelErr"`
	FracBelow20Pct float64 `json:"fracBelow20pct"`
}

// PredictResponse is the POST /v1/predict body.
type PredictResponse struct {
	Machine    string               `json:"machine"`
	ConfigHash string               `json:"configHash"`
	Suite      string               `json:"suite"`
	Ops        int                  `json:"ops"`
	FitStarts  int                  `json:"fitStarts"`
	Seed       uint64               `json:"seed"`
	Params     core.Params          `json:"params"`
	Workloads  []WorkloadPrediction `json:"workloads"`
	Accuracy   *SuiteAccuracy       `json:"accuracy,omitempty"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.reqs.predict.Add(1)
	var req PredictRequest
	if err := decodeStrict(r, w, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	m, err := req.Machine.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	suite, err := suites.ByName(req.Suite, suites.Options{NumOps: s.prov.Opts().NumOps})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Reject a typoed workload before the expensive simulate+fit, not
	// after: the suite listing is already in hand.
	if req.Workload != "" {
		found := false
		for _, wl := range suite.Workloads {
			if wl.Name == req.Workload {
				found = true
				break
			}
		}
		if !found {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("workload %q not in suite %s", req.Workload, suite.Name))
			return
		}
	}
	f, err := s.prov.Fitted(m, req.Suite)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	opts := s.prov.Opts()
	resp := PredictResponse{
		Machine:    m.Name,
		ConfigHash: m.ConfigHash(),
		Suite:      req.Suite,
		Ops:        opts.NumOps,
		FitStarts:  opts.FitStarts,
		Seed:       opts.Seed,
		Params:     f.Model.P,
	}
	if req.Workload != "" {
		o, err := f.Observation(req.Workload)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp.Workloads = []WorkloadPrediction{predictWorkload(f.Model, o)}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	errs := make([]float64, 0, len(f.Obs))
	for i := range f.Obs {
		wp := predictWorkload(f.Model, &f.Obs[i])
		resp.Workloads = append(resp.Workloads, wp)
		errs = append(errs, stats.RelErr(wp.PredictedCPI, wp.MeasuredCPI))
	}
	resp.Accuracy = &SuiteAccuracy{
		AvgRelErr:      stats.Mean(errs),
		MaxRelErr:      stats.Max(errs),
		FracBelow20Pct: stats.FractionBelow(errs, 0.20),
	}
	writeJSON(w, http.StatusOK, resp)
}

func predictWorkload(m *core.Model, o *core.Observation) WorkloadPrediction {
	pred := m.PredictCPI(o.Feat)
	return WorkloadPrediction{
		Workload:     o.Name,
		MeasuredCPI:  o.MeasuredCPI,
		PredictedCPI: pred,
		RelErr:       (pred - o.MeasuredCPI) / o.MeasuredCPI,
		Stack:        stackEntries(m.Stack(o.Feat)),
	}
}

// SweepRequest asks for a one-axis sensitivity sweep: the model is
// fitted at the base machine and extrapolated to each derived value.
type SweepRequest struct {
	Base   experiments.MachineSpec `json:"base"`
	Param  string                  `json:"param"`
	Values []int                   `json:"values"`
	Suite  string                  `json:"suite"`
}

// SweepPointResponse is one swept configuration: simulated vs
// model-extrapolated suite-mean CPI and stacks. RelErr is signed,
// matching WorkloadPrediction (negative = model under-predicts).
type SweepPointResponse struct {
	Value      int          `json:"value"`
	Machine    string       `json:"machine"`
	SimCPI     float64      `json:"simCPI"`
	ModelCPI   float64      `json:"modelCPI"`
	RelErr     float64      `json:"relErr"`
	SimStack   []StackEntry `json:"simStack"`
	ModelStack []StackEntry `json:"modelStack"`
}

// SweepResponse is the POST /v1/sweep body.
type SweepResponse struct {
	Base      string               `json:"base"`
	Param     string               `json:"param"`
	BaseValue int                  `json:"baseValue"`
	Suite     string               `json:"suite"`
	Ops       int                  `json:"ops"`
	Points    []SweepPointResponse `json:"points"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.reqs.sweep.Add(1)
	var req SweepRequest
	if err := decodeStrict(r, w, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	base, err := req.Base.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := experiments.SweepParamByName(req.Param); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := suites.ByName(req.Suite, suites.Options{NumOps: s.prov.Opts().NumOps}); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := experiments.ValidateSweepValues(req.Values); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.prov.Sweep(base, req.Param, req.Values, req.Suite)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := SweepResponse{
		Base:      res.Base,
		Param:     res.Param.Name,
		BaseValue: res.BaseValue,
		Suite:     res.Suite,
		Ops:       res.NumOps,
	}
	for _, p := range res.Points {
		resp.Points = append(resp.Points, SweepPointResponse{
			Value:      p.Value,
			Machine:    p.Machine,
			SimCPI:     p.SimCPI,
			ModelCPI:   p.ModelCPI,
			RelErr:     (p.ModelCPI - p.SimCPI) / p.SimCPI,
			SimStack:   stackEntries(p.SimStack),
			ModelStack: stackEntries(p.ModelStack),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// PlanRequest is the POST /v1/plan body: a declarative multi-axis
// exploration plan, strict-decoded with the plan-file rules. The axes
// must name registered params (see GET /v1/params) with positive,
// duplicate-free values.
type PlanRequest = experiments.PlanSpec

// PlanCellResponse is one evaluated grid cell: its axis values (aligned
// with the request's axes), the derived machine, and simulated vs
// model-extrapolated suite-mean CPI and stacks. RelErr is signed,
// matching WorkloadPrediction (negative = model under-predicts).
type PlanCellResponse struct {
	Values     []int        `json:"values"`
	Machine    string       `json:"machine"`
	SimCPI     float64      `json:"simCPI"`
	ModelCPI   float64      `json:"modelCPI"`
	RelErr     float64      `json:"relErr"`
	SimStack   []StackEntry `json:"simStack"`
	ModelStack []StackEntry `json:"modelStack"`
}

// PlanResponse is the POST /v1/plan body: the model fitted once at the
// base machine and extrapolated to every cell of the crossed grid.
// Cells appear row-major with the last axis fastest; BaseValues is the
// fit point on each axis. Sims reports this plan's run sourcing — on a
// warm store a whole grid answers with zero simulations and zero trace
// generations.
type PlanResponse struct {
	Base       string                 `json:"base"`
	Suite      string                 `json:"suite"`
	Ops        int                    `json:"ops"`
	Axes       []experiments.PlanAxis `json:"axes"`
	BaseValues []int                  `json:"baseValues"`
	Cells      []PlanCellResponse     `json:"cells"`
	Sims       SimSourcing            `json:"sims"`
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.reqs.plan.Add(1)
	var req PlanRequest
	if err := decodeStrict(r, w, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, err := suites.ByName(req.Suite, suites.Options{NumOps: s.prov.Opts().NumOps}); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Resolve validates everything else — base machine, axis names,
	// values, grid size, cell derivability — before anything simulates.
	plan, err := req.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.prov.Plan(plan)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := PlanResponse{
		Base:       res.Base,
		Suite:      res.Suite,
		Ops:        res.NumOps,
		Axes:       res.Axes,
		BaseValues: res.BaseValues,
		Sims: SimSourcing{
			StoreHits: res.Stats.Hits,
			Simulated: res.Stats.Simulated,
			TraceGens: res.Stats.TraceGens,
		},
	}
	for _, pt := range res.Points {
		resp.Cells = append(resp.Cells, PlanCellResponse{
			Values:     pt.Values,
			Machine:    pt.Machine,
			SimCPI:     pt.SimCPI,
			ModelCPI:   pt.ModelCPI,
			RelErr:     (pt.ModelCPI - pt.SimCPI) / pt.SimCPI,
			SimStack:   stackEntries(pt.SimStack),
			ModelStack: stackEntries(pt.ModelStack),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// JobSubmitRequest is the POST /v1/jobs body: a job spec, strict-decoded
// with exactly the scenario-file rules (unknown fields are errors, down
// into the nested campaign).
type JobSubmitRequest = experiments.JobSpec

// JobListResponse is the GET /v1/jobs body, in submission order.
type JobListResponse struct {
	Jobs []experiments.JobStatus `json:"jobs"`
}

// jobsEnabled answers 503 and returns false when no job engine is
// configured.
func (s *Server) jobsEnabled(w http.ResponseWriter) bool {
	if s.jobs == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("job engine not configured"))
		return false
	}
	return true
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.reqs.jobSubmit.Add(1)
	if !s.jobsEnabled(w) {
		return
	}
	var req JobSubmitRequest
	if err := decodeStrict(r, w, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.jobs.Submit(req)
	if err != nil {
		// A full queue or a draining engine is backpressure, not a bad
		// request.
		if errors.Is(err, experiments.ErrJobQueueFull) || errors.Is(err, experiments.ErrJobsDraining) {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.reqs.jobList.Add(1)
	if !s.jobsEnabled(w) {
		return
	}
	writeJSON(w, http.StatusOK, JobListResponse{Jobs: s.jobs.List()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.reqs.jobGet.Add(1)
	if !s.jobsEnabled(w) {
		return
	}
	st, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.reqs.jobCancel.Add(1)
	if !s.jobsEnabled(w) {
		return
	}
	st, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	// Cancelling a terminal job is an idempotent no-op; the snapshot
	// tells the caller what actually happened either way.
	writeJSON(w, http.StatusOK, st)
}

// RequestStats counts handled requests per endpoint.
type RequestStats struct {
	Healthz   int64 `json:"healthz"`
	Machines  int64 `json:"machines"`
	Suites    int64 `json:"suites"`
	Params    int64 `json:"params"`
	Predict   int64 `json:"predict"`
	Sweep     int64 `json:"sweep"`
	Plan      int64 `json:"plan"`
	JobSubmit int64 `json:"jobSubmit"`
	JobList   int64 `json:"jobList"`
	JobGet    int64 `json:"jobGet"`
	JobCancel int64 `json:"jobCancel"`
	Stats     int64 `json:"stats"`
}

// ModelStats reports the provider's model cache.
type ModelStats struct {
	Cached int `json:"cached"`
	Fits   int `json:"fits"`
	Hits   int `json:"hits"`
}

// SimSourcing reports where simulation runs came from, and how many
// µop streams were actually generated to serve them (shared trace
// buffers count one generation per workload, not per machine).
type SimSourcing struct {
	StoreHits int `json:"storeHits"`
	Simulated int `json:"simulated"`
	TraceGens int `json:"traceGens"`
}

// StoreStats mirrors the run store's counters (present only when the
// daemon runs with a store).
type StoreStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
}

// StatsResponse is the GET /v1/stats body. Jobs is present only when the
// daemon runs a job engine; Sims covers the provider's synchronous
// requests only — each job carries its own progress counters.
type StatsResponse struct {
	Inflight int64                  `json:"inflight"`
	Requests RequestStats           `json:"requests"`
	Models   ModelStats             `json:"models"`
	Sims     SimSourcing            `json:"sims"`
	Store    *StoreStats            `json:"store,omitempty"`
	Jobs     *experiments.JobCounts `json:"jobs,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.reqs.stats.Add(1)
	ps := s.prov.Stats()
	resp := StatsResponse{
		Inflight: s.inflight.Load(),
		Requests: RequestStats{
			Healthz:   s.reqs.healthz.Load(),
			Machines:  s.reqs.machines.Load(),
			Suites:    s.reqs.suites.Load(),
			Params:    s.reqs.params.Load(),
			Predict:   s.reqs.predict.Load(),
			Sweep:     s.reqs.sweep.Load(),
			Plan:      s.reqs.plan.Load(),
			JobSubmit: s.reqs.jobSubmit.Load(),
			JobList:   s.reqs.jobList.Load(),
			JobGet:    s.reqs.jobGet.Load(),
			JobCancel: s.reqs.jobCancel.Load(),
			Stats:     s.reqs.stats.Load(),
		},
		Models: ModelStats{Cached: s.prov.CachedModels(), Fits: ps.Fits, Hits: ps.ModelHits},
		Sims:   SimSourcing{StoreHits: ps.Sim.Hits, Simulated: ps.Sim.Simulated, TraceGens: ps.Sim.TraceGens},
	}
	if store := s.prov.Opts().Store; store != nil {
		st := store.Stats()
		resp.Store = &StoreStats{Hits: st.Hits, Misses: st.Misses, Puts: st.Puts}
	}
	if s.jobs != nil {
		jc := s.jobs.Counts()
		resp.Jobs = &jc
	}
	writeJSON(w, http.StatusOK, resp)
}
