// Package serve implements the HTTP/JSON layer of the mecpid daemon:
// the paper's fitted mechanistic-empirical model, exposed as a
// long-running prediction service. Handlers are thin translations from
// wire requests to the experiments.Provider — the concurrent model
// cache with singleflight fitting — so N identical in-flight predict
// requests cost one simulate+fit, and a warm run store costs zero
// simulations. All responses are JSON; errors come back as a structured
// envelope, {"error": {"code": "<stable-slug>", "message": "..."}} with
// a 4xx/5xx status — clients branch on the code, never on message text.
//
// Endpoints (GET /v1 serves this index over the wire):
//
//	GET    /v1             API discovery: endpoint index, version, capability flags
//	GET    /healthz        liveness + simulator version
//	GET    /v1/machines    registered machine names
//	GET    /v1/suites      registered suites and their workloads
//	GET    /v1/params      registered exploration axes (valid sweep/plan params)
//	POST   /v1/predict     CPI + CPI stack for machine spec(s) × suite[/workload]
//	POST   /v1/sweep       one-axis what-if sweep over a derived machine
//	POST   /v1/plan        multi-axis exploration grid, fitted once and extrapolated per cell
//	POST   /v1/optimize    design-space search (min CPI / min cost / Pareto) over a grid
//	POST   /v1/seeds       multi-seed replication sweep: mean/CI on CPI and model error, fit stability
//	POST   /v1/jobs        submit an async campaign, sweep, plan, optimize or seeds job
//	GET    /v1/jobs        list jobs (submission order)
//	GET    /v1/jobs/{id}   one job's state, progress and result
//	DELETE /v1/jobs/{id}   cancel a queued or running job
//	GET    /v1/stats       request, model-cache, simulation, store and job counters
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/suites"
	"repro/internal/uarch"
)

// maxBodyBytes bounds request bodies; predict and sweep requests are a
// few hundred bytes of JSON.
const maxBodyBytes = 1 << 20

// Server translates HTTP requests into provider and job-engine calls.
// Construct with New; all methods are safe for concurrent use.
type Server struct {
	prov      *experiments.Provider
	jobs      *experiments.Jobs
	mux       *http.ServeMux
	endpoints []EndpointInfo

	inflight atomic.Int64
	reqs     struct {
		discovery, healthz, machines, suites, params, predict, sweep, plan, optimize, seeds, stats atomic.Int64
		jobSubmit, jobList, jobGet, jobCancel                                                      atomic.Int64
	}
}

// New builds a server around the given provider and job engine. jobs may
// be nil, in which case the /v1/jobs endpoints answer 503 with code
// jobs_disabled (GET /v1 reports the capability up front).
func New(prov *experiments.Provider, jobs *experiments.Jobs) *Server {
	s := &Server{prov: prov, jobs: jobs, mux: http.NewServeMux()}
	// The route table is registered and served from one place: GET /v1
	// returns exactly what was mounted, so the discovery index can never
	// drift from the mux.
	add := func(method, path, doc string, h http.HandlerFunc) {
		s.mux.HandleFunc(method+" "+path, h)
		s.endpoints = append(s.endpoints, EndpointInfo{Method: method, Path: path, Doc: doc})
	}
	add("GET", "/v1", "API discovery: endpoint index, simulator version, capability flags", s.handleDiscovery)
	add("GET", "/healthz", "liveness + simulator version", s.handleHealthz)
	add("GET", "/v1/machines", "registered machine names", s.handleMachines)
	add("GET", "/v1/suites", "registered suites and their workloads", s.handleSuites)
	add("GET", "/v1/params", "registered exploration axes (valid sweep/plan params)", s.handleParams)
	add("POST", "/v1/predict", "CPI + CPI stack for machine spec(s) × suite[/workload]", s.handlePredict)
	add("POST", "/v1/sweep", "one-axis what-if sweep over a derived machine", s.handleSweep)
	add("POST", "/v1/plan", "multi-axis exploration grid, fitted once and extrapolated per cell", s.handlePlan)
	add("POST", "/v1/optimize", "design-space search (min CPI / min cost / Pareto) over a grid", s.handleOptimize)
	add("POST", "/v1/seeds", "multi-seed replication sweep: mean/CI on CPI and model error, fit stability", s.handleSeeds)
	add("POST", "/v1/jobs", "submit an async campaign, sweep, plan, optimize or seeds job", s.handleJobSubmit)
	add("GET", "/v1/jobs", "list jobs (submission order)", s.handleJobList)
	add("GET", "/v1/jobs/{id}", "one job's state, progress and result", s.handleJobGet)
	add("DELETE", "/v1/jobs/{id}", "cancel a queued or running job", s.handleJobCancel)
	add("GET", "/v1/stats", "request, model-cache, simulation, store and job counters", s.handleStats)
	return s
}

// Handler returns the daemon's root handler: the route mux wrapped with
// the in-flight gauge.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		s.mux.ServeHTTP(w, r)
	})
}

// writeJSON emits v indented, so responses read well from curl and pin
// down a stable golden wire format.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"response encoding failed"}}`,
			http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// Stable error codes, the machine-readable half of the error envelope.
// Codes are API contract: clients branch on them (messages are for
// humans and may change), so existing codes must never be renamed.
const (
	// CodeBadRequest: the request body failed to parse or validate.
	CodeBadRequest = "bad_request"
	// CodeUnknownMachine: a machine name absent from the registry.
	CodeUnknownMachine = "unknown_machine"
	// CodeUnknownSuite: a suite name absent from the registry.
	CodeUnknownSuite = "unknown_suite"
	// CodeUnknownJob: a job ID the engine doesn't know (never existed,
	// or evicted past the retention bound).
	CodeUnknownJob = "unknown_job"
	// CodeJobsDisabled: the daemon runs without a job engine.
	CodeJobsDisabled = "jobs_disabled"
	// CodeQueueFull: job backlog at capacity — retry later.
	CodeQueueFull = "queue_full"
	// CodeJobsDraining: the daemon is shutting down — retry elsewhere.
	CodeJobsDraining = "jobs_draining"
	// CodeInternal: the request was fine; the server failed.
	CodeInternal = "internal"
)

// ErrorBody is the error envelope's payload: a stable machine-readable
// code and a human-readable message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorResponse is the uniform error wire shape:
// {"error": {"code": "...", "message": "..."}}.
type errorResponse struct {
	Error ErrorBody `json:"error"`
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorResponse{Error: ErrorBody{Code: code, Message: err.Error()}})
}

// badRequest answers 400, classifying the error into the most specific
// stable code. Classification is by sentinel (errors.Is), never by
// message text, which a submitted machine or suite name could collide
// with.
func badRequest(w http.ResponseWriter, err error) {
	code := CodeBadRequest
	switch {
	case errors.Is(err, uarch.ErrUnknownMachine):
		code = CodeUnknownMachine
	case errors.Is(err, suites.ErrUnknownSuite):
		code = CodeUnknownSuite
	}
	writeError(w, http.StatusBadRequest, code, err)
}

// decodeStrict parses a request body with the same strictness as
// scenario files: unknown fields and trailing documents are errors.
func decodeStrict(r *http.Request, w http.ResponseWriter, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("parse request: %w", err)
	}
	if dec.More() {
		return errors.New("parse request: trailing data after JSON document")
	}
	return nil
}

// EndpointInfo describes one mounted route.
type EndpointInfo struct {
	Method string `json:"method"`
	Path   string `json:"path"`
	Doc    string `json:"doc"`
}

// Capabilities flags optional daemon features so clients can probe once
// instead of poking endpoints: Jobs is false when /v1/jobs would answer
// jobs_disabled, Store is false when the daemon simulates without a
// persistent run store.
type Capabilities struct {
	Jobs  bool `json:"jobs"`
	Store bool `json:"store"`
}

// DiscoveryResponse is the GET /v1 body: the versioned API surface, as
// mounted — the endpoint index is built from the same table the router
// serves, so it cannot drift.
type DiscoveryResponse struct {
	SimVersion   string         `json:"simVersion"`
	Endpoints    []EndpointInfo `json:"endpoints"`
	Capabilities Capabilities   `json:"capabilities"`
}

func (s *Server) handleDiscovery(w http.ResponseWriter, r *http.Request) {
	s.reqs.discovery.Add(1)
	writeJSON(w, http.StatusOK, DiscoveryResponse{
		SimVersion: sim.Version,
		Endpoints:  s.endpoints,
		Capabilities: Capabilities{
			Jobs:  s.jobs != nil,
			Store: s.prov.Opts().Store != nil,
		},
	})
}

// HealthzResponse is the GET /healthz body.
type HealthzResponse struct {
	Status     string `json:"status"`
	SimVersion string `json:"simVersion"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.reqs.healthz.Add(1)
	writeJSON(w, http.StatusOK, HealthzResponse{Status: "ok", SimVersion: sim.Version})
}

// MachinesResponse is the GET /v1/machines body.
type MachinesResponse struct {
	Machines []string `json:"machines"`
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	s.reqs.machines.Add(1)
	writeJSON(w, http.StatusOK, MachinesResponse{Machines: uarch.Names()})
}

// SuiteInfo describes one registered suite at the daemon's µop count.
// Source is "builtin" for generated suites and "file" for suites backed
// by imported trace files (registered via -trace-suite); file-backed
// workloads carry recorded streams, so their op counts are fixed by the
// file rather than the daemon's -ops.
type SuiteInfo struct {
	Name      string   `json:"name"`
	Source    string   `json:"source"`
	Workloads []string `json:"workloads"`
}

// SuitesResponse is the GET /v1/suites body.
type SuitesResponse struct {
	Ops    int         `json:"ops"`
	Suites []SuiteInfo `json:"suites"`
}

func (s *Server) handleSuites(w http.ResponseWriter, r *http.Request) {
	s.reqs.suites.Add(1)
	ops := s.prov.Opts().NumOps
	resp := SuitesResponse{Ops: ops}
	for _, name := range suites.Names() {
		suite, err := suites.ByName(name, suites.Options{NumOps: ops})
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err)
			return
		}
		src, err := suites.SuiteSource(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err)
			return
		}
		info := SuiteInfo{Name: name, Source: string(src)}
		for _, wl := range suite.Workloads {
			info.Workloads = append(info.Workloads, wl.Name)
		}
		resp.Suites = append(resp.Suites, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ParamInfo describes one registered exploration axis.
type ParamInfo struct {
	Name string `json:"name"`
	Doc  string `json:"doc"`
}

// ParamsResponse is the GET /v1/params body: the axes a sweep or plan
// request may explore, in display order — clients discover valid plan
// axes here instead of hard-coding them.
type ParamsResponse struct {
	Params []ParamInfo `json:"params"`
}

func (s *Server) handleParams(w http.ResponseWriter, r *http.Request) {
	s.reqs.params.Add(1)
	var resp ParamsResponse
	for _, p := range experiments.SweepParams() {
		resp.Params = append(resp.Params, ParamInfo{Name: p.Name, Doc: p.Doc})
	}
	writeJSON(w, http.StatusOK, resp)
}

// PredictRequest asks for CPI predictions of machine specs (registered
// names, or base + overrides exactly as in scenario files) on a suite.
// Exactly one of Machine (the single-machine form, whose response is
// PredictResponse) or Machines (the batch form, answered with
// BatchPredictResponse, machines in request order) must be set. With
// Workload set, responses carry that workload alone; otherwise every
// workload plus the suite-wide accuracy.
type PredictRequest struct {
	Machine  *experiments.MachineSpec  `json:"machine,omitempty"`
	Machines []experiments.MachineSpec `json:"machines,omitempty"`
	Suite    string                    `json:"suite"`
	Workload string                    `json:"workload,omitempty"`
}

// StackEntry is one CPI-stack component, in stack order (base first).
type StackEntry struct {
	Component string  `json:"component"`
	CPI       float64 `json:"cpi"`
}

func stackEntries(st sim.Stack) []StackEntry {
	out := make([]StackEntry, 0, sim.NumComponents)
	for _, c := range sim.Components() {
		out = append(out, StackEntry{Component: c.String(), CPI: st.Cycles[c]})
	}
	return out
}

// WorkloadPrediction is the model's answer for one workload: measured
// (counter-derived) CPI, the model's prediction, and the predicted
// per-component CPI stack — the paper's headline deliverable, over HTTP.
// RelErr is signed — negative means the model under-predicts — the
// convention every relErr field on this wire follows; the accuracy
// aggregates are magnitudes.
type WorkloadPrediction struct {
	Workload     string       `json:"workload"`
	MeasuredCPI  float64      `json:"measuredCPI"`
	PredictedCPI float64      `json:"predictedCPI"`
	RelErr       float64      `json:"relErr"`
	Stack        []StackEntry `json:"stack"`
}

// SuiteAccuracy summarizes suite-wide model error, as cmd/mecpi prints.
type SuiteAccuracy struct {
	AvgRelErr      float64 `json:"avgRelErr"`
	MaxRelErr      float64 `json:"maxRelErr"`
	FracBelow20Pct float64 `json:"fracBelow20pct"`
}

// PredictResponse is the POST /v1/predict body for the single-machine
// request form.
type PredictResponse struct {
	Machine    string               `json:"machine"`
	ConfigHash string               `json:"configHash"`
	Suite      string               `json:"suite"`
	Ops        int                  `json:"ops"`
	FitStarts  int                  `json:"fitStarts"`
	Seed       uint64               `json:"seed"`
	Params     core.Params          `json:"params"`
	Workloads  []WorkloadPrediction `json:"workloads"`
	Accuracy   *SuiteAccuracy       `json:"accuracy,omitempty"`
}

// MachinePrediction is one machine's slice of a batch predict response:
// PredictResponse with the request-wide fields (suite, fit options)
// hoisted to the batch envelope.
type MachinePrediction struct {
	Machine    string               `json:"machine"`
	ConfigHash string               `json:"configHash"`
	Params     core.Params          `json:"params"`
	Workloads  []WorkloadPrediction `json:"workloads"`
	Accuracy   *SuiteAccuracy       `json:"accuracy,omitempty"`
}

// BatchPredictResponse is the POST /v1/predict body for the batch
// request form, machines in request order.
type BatchPredictResponse struct {
	Suite     string              `json:"suite"`
	Ops       int                 `json:"ops"`
	FitStarts int                 `json:"fitStarts"`
	Seed      uint64              `json:"seed"`
	Machines  []MachinePrediction `json:"machines"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.reqs.predict.Add(1)
	var req PredictRequest
	if err := decodeStrict(r, w, &req); err != nil {
		badRequest(w, err)
		return
	}
	if (req.Machine == nil) == (len(req.Machines) == 0) {
		badRequest(w, errors.New("predict request needs exactly one of machine or machines"))
		return
	}
	specs := req.Machines
	if req.Machine != nil {
		specs = []experiments.MachineSpec{*req.Machine}
	}
	// Resolve every machine before fitting any: a typo in the last spec
	// of a batch must not cost the fits of the first.
	machines := make([]*uarch.Machine, 0, len(specs))
	for _, spec := range specs {
		m, err := spec.Resolve()
		if err != nil {
			badRequest(w, err)
			return
		}
		machines = append(machines, m)
	}
	suite, err := suites.ByName(req.Suite, suites.Options{NumOps: s.prov.Opts().NumOps})
	if err != nil {
		badRequest(w, err)
		return
	}
	// Reject a typoed workload before the expensive simulate+fit, not
	// after: the suite listing is already in hand.
	if req.Workload != "" {
		found := false
		for _, wl := range suite.Workloads {
			if wl.Name == req.Workload {
				found = true
				break
			}
		}
		if !found {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				fmt.Errorf("workload %q not in suite %s", req.Workload, suite.Name))
			return
		}
	}
	preds := make([]MachinePrediction, 0, len(machines))
	for _, m := range machines {
		f, err := s.prov.Fitted(m, req.Suite)
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, err)
			return
		}
		mp, err := predictMachine(f, req.Workload)
		if err != nil {
			badRequest(w, err)
			return
		}
		preds = append(preds, mp)
	}
	opts := s.prov.Opts()
	if req.Machine != nil {
		// The single-machine form keeps its original flat wire shape.
		mp := preds[0]
		writeJSON(w, http.StatusOK, PredictResponse{
			Machine:    mp.Machine,
			ConfigHash: mp.ConfigHash,
			Suite:      req.Suite,
			Ops:        opts.NumOps,
			FitStarts:  opts.FitStarts,
			Seed:       opts.Seed,
			Params:     mp.Params,
			Workloads:  mp.Workloads,
			Accuracy:   mp.Accuracy,
		})
		return
	}
	writeJSON(w, http.StatusOK, BatchPredictResponse{
		Suite:     req.Suite,
		Ops:       opts.NumOps,
		FitStarts: opts.FitStarts,
		Seed:      opts.Seed,
		Machines:  preds,
	})
}

// predictMachine condenses one fitted model into its wire slice: every
// workload (or the one requested) predicted, plus suite-wide accuracy
// for the whole-suite form.
func predictMachine(f *experiments.Fitted, workload string) (MachinePrediction, error) {
	mp := MachinePrediction{
		Machine:    f.Machine.Name,
		ConfigHash: f.Machine.ConfigHash(),
		Params:     f.Model.P,
	}
	if workload != "" {
		o, err := f.Observation(workload)
		if err != nil {
			return MachinePrediction{}, err
		}
		mp.Workloads = []WorkloadPrediction{predictWorkload(f.Model, o)}
		return mp, nil
	}
	errs := make([]float64, 0, len(f.Obs))
	for i := range f.Obs {
		wp := predictWorkload(f.Model, &f.Obs[i])
		mp.Workloads = append(mp.Workloads, wp)
		errs = append(errs, stats.RelErr(wp.PredictedCPI, wp.MeasuredCPI))
	}
	mp.Accuracy = &SuiteAccuracy{
		AvgRelErr:      stats.Mean(errs),
		MaxRelErr:      stats.Max(errs),
		FracBelow20Pct: stats.FractionBelow(errs, 0.20),
	}
	return mp, nil
}

func predictWorkload(m *core.Model, o *core.Observation) WorkloadPrediction {
	pred := m.PredictCPI(o.Feat)
	return WorkloadPrediction{
		Workload:     o.Name,
		MeasuredCPI:  o.MeasuredCPI,
		PredictedCPI: pred,
		RelErr:       (pred - o.MeasuredCPI) / o.MeasuredCPI,
		Stack:        stackEntries(m.Stack(o.Feat)),
	}
}

// SweepRequest asks for a one-axis sensitivity sweep: the model is
// fitted at the base machine and extrapolated to each derived value.
type SweepRequest struct {
	Base   experiments.MachineSpec `json:"base"`
	Param  string                  `json:"param"`
	Values []int                   `json:"values"`
	Suite  string                  `json:"suite"`
}

// SweepPointResponse is one swept configuration: simulated vs
// model-extrapolated suite-mean CPI and stacks. RelErr is signed,
// matching WorkloadPrediction (negative = model under-predicts).
type SweepPointResponse struct {
	Value      int          `json:"value"`
	Machine    string       `json:"machine"`
	SimCPI     float64      `json:"simCPI"`
	ModelCPI   float64      `json:"modelCPI"`
	RelErr     float64      `json:"relErr"`
	SimStack   []StackEntry `json:"simStack"`
	ModelStack []StackEntry `json:"modelStack"`
}

// SweepResponse is the POST /v1/sweep body.
type SweepResponse struct {
	Base      string               `json:"base"`
	Param     string               `json:"param"`
	BaseValue int                  `json:"baseValue"`
	Suite     string               `json:"suite"`
	Ops       int                  `json:"ops"`
	Points    []SweepPointResponse `json:"points"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.reqs.sweep.Add(1)
	var req SweepRequest
	if err := decodeStrict(r, w, &req); err != nil {
		badRequest(w, err)
		return
	}
	base, err := req.Base.Resolve()
	if err != nil {
		badRequest(w, err)
		return
	}
	if _, err := experiments.SweepParamByName(req.Param); err != nil {
		badRequest(w, err)
		return
	}
	if _, err := suites.ByName(req.Suite, suites.Options{NumOps: s.prov.Opts().NumOps}); err != nil {
		badRequest(w, err)
		return
	}
	if err := experiments.ValidateSweepValues(req.Values); err != nil {
		badRequest(w, err)
		return
	}
	res, err := s.prov.Sweep(base, req.Param, req.Values, req.Suite)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	resp := SweepResponse{
		Base:      res.Base,
		Param:     res.Param.Name,
		BaseValue: res.BaseValue,
		Suite:     res.Suite,
		Ops:       res.NumOps,
	}
	for _, p := range res.Points {
		resp.Points = append(resp.Points, SweepPointResponse{
			Value:      p.Value,
			Machine:    p.Machine,
			SimCPI:     p.SimCPI,
			ModelCPI:   p.ModelCPI,
			RelErr:     (p.ModelCPI - p.SimCPI) / p.SimCPI,
			SimStack:   stackEntries(p.SimStack),
			ModelStack: stackEntries(p.ModelStack),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// PlanRequest is the POST /v1/plan body: a declarative multi-axis
// exploration plan, strict-decoded with the plan-file rules. The axes
// must name registered params (see GET /v1/params) with positive,
// duplicate-free values.
type PlanRequest = experiments.PlanSpec

// PlanCellResponse is one evaluated grid cell: its axis values (aligned
// with the request's axes), the derived machine, and simulated vs
// model-extrapolated suite-mean CPI and stacks. RelErr is signed,
// matching WorkloadPrediction (negative = model under-predicts).
type PlanCellResponse struct {
	Values     []int        `json:"values"`
	Machine    string       `json:"machine"`
	SimCPI     float64      `json:"simCPI"`
	ModelCPI   float64      `json:"modelCPI"`
	RelErr     float64      `json:"relErr"`
	SimStack   []StackEntry `json:"simStack"`
	ModelStack []StackEntry `json:"modelStack"`
}

// PlanResponse is the POST /v1/plan body: the model fitted once at the
// base machine and extrapolated to every cell of the crossed grid.
// Cells appear row-major with the last axis fastest; BaseValues is the
// fit point on each axis. Sims reports this plan's run sourcing — on a
// warm store a whole grid answers with zero simulations and zero trace
// generations.
type PlanResponse struct {
	Base       string                 `json:"base"`
	Suite      string                 `json:"suite"`
	Ops        int                    `json:"ops"`
	Axes       []experiments.PlanAxis `json:"axes"`
	BaseValues []int                  `json:"baseValues"`
	Cells      []PlanCellResponse     `json:"cells"`
	Sims       SimSourcing            `json:"sims"`
}

// PlanResponseFrom converts an executed plan into the wire shape. It is
// exported so cmd/sweep's -json plan mode emits byte-identical reports
// to POST /v1/plan — the determinism harness (make sim-nondeterminism)
// diffs that JSON across GOMAXPROCS settings.
func PlanResponseFrom(res *experiments.PlanResult) PlanResponse {
	resp := PlanResponse{
		Base:       res.Base,
		Suite:      res.Suite,
		Ops:        res.NumOps,
		Axes:       res.Axes,
		BaseValues: res.BaseValues,
		Sims: SimSourcing{
			StoreHits: res.Stats.Hits,
			Simulated: res.Stats.Simulated,
			TraceGens: res.Stats.TraceGens,
		},
	}
	for _, pt := range res.Points {
		resp.Cells = append(resp.Cells, PlanCellResponse{
			Values:     pt.Values,
			Machine:    pt.Machine,
			SimCPI:     pt.SimCPI,
			ModelCPI:   pt.ModelCPI,
			RelErr:     (pt.ModelCPI - pt.SimCPI) / pt.SimCPI,
			SimStack:   stackEntries(pt.SimStack),
			ModelStack: stackEntries(pt.ModelStack),
		})
	}
	return resp
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	s.reqs.plan.Add(1)
	var req PlanRequest
	if err := decodeStrict(r, w, &req); err != nil {
		badRequest(w, err)
		return
	}
	if _, err := suites.ByName(req.Suite, suites.Options{NumOps: s.prov.Opts().NumOps}); err != nil {
		badRequest(w, err)
		return
	}
	// Resolve validates everything else — base machine, axis names,
	// values, grid size, cell derivability — before anything simulates.
	plan, err := req.Resolve()
	if err != nil {
		badRequest(w, err)
		return
	}
	res, err := s.prov.Plan(plan)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, PlanResponseFrom(res))
}

// OptimizeRequest is the POST /v1/optimize body: a declarative
// design-space search, strict-decoded with the optimize-file rules. See
// experiments.OptimizeSpec for the objective and search knobs.
type OptimizeRequest = experiments.OptimizeSpec

// OptimizeResponse is the POST /v1/optimize body: the search outcome —
// best point or Pareto frontier, probe accounting, and run sourcing (a
// warm store answers with zero simulations and zero trace generations).
type OptimizeResponse = experiments.OptimizeReport

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.reqs.optimize.Add(1)
	var req OptimizeRequest
	if err := decodeStrict(r, w, &req); err != nil {
		badRequest(w, err)
		return
	}
	if _, err := suites.ByName(req.Suite, suites.Options{NumOps: s.prov.Opts().NumOps}); err != nil {
		badRequest(w, err)
		return
	}
	// Resolve validates everything else — base machine, axes, objective,
	// search knobs, cell derivability — before anything simulates.
	o, err := req.Resolve()
	if err != nil {
		badRequest(w, err)
		return
	}
	res, err := s.prov.Optimize(o)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, res.Report())
}

// SeedsRequest is the POST /v1/seeds body: a declarative seed-sweep
// campaign, strict-decoded with the seeds-file rules. See
// experiments.SeedsSpec for the subject and replication knobs.
type SeedsRequest = experiments.SeedsSpec

// SeedsResponse is the POST /v1/seeds body: per-(machine, suite)
// across-seed distributions — mean, sample standard deviation and
// Student-t 95% CI on CPI and model error, plus per-coefficient fit
// stability — and run sourcing (a warm store and model cache answer
// with zero simulations and zero trace generations).
type SeedsResponse = experiments.SeedsReport

func (s *Server) handleSeeds(w http.ResponseWriter, r *http.Request) {
	s.reqs.seeds.Add(1)
	var req SeedsRequest
	if err := decodeStrict(r, w, &req); err != nil {
		badRequest(w, err)
		return
	}
	// Resolve validates everything — subject machines, suite names (via
	// the registry sentinels), the seed list — before anything simulates.
	sweep, err := req.Resolve()
	if err != nil {
		badRequest(w, err)
		return
	}
	res, err := s.prov.Seeds(r.Context(), sweep, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err)
		return
	}
	writeJSON(w, http.StatusOK, res.Report())
}

// JobSubmitRequest is the POST /v1/jobs body: a job spec, strict-decoded
// with exactly the scenario-file rules (unknown fields are errors, down
// into the nested campaign).
type JobSubmitRequest = experiments.JobSpec

// JobListResponse is the GET /v1/jobs body, in submission order.
type JobListResponse struct {
	Jobs []experiments.JobStatus `json:"jobs"`
}

// jobsEnabled answers 503 and returns false when no job engine is
// configured.
func (s *Server) jobsEnabled(w http.ResponseWriter) bool {
	if s.jobs == nil {
		writeError(w, http.StatusServiceUnavailable, CodeJobsDisabled,
			errors.New("job engine not configured"))
		return false
	}
	return true
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.reqs.jobSubmit.Add(1)
	if !s.jobsEnabled(w) {
		return
	}
	var req JobSubmitRequest
	if err := decodeStrict(r, w, &req); err != nil {
		badRequest(w, err)
		return
	}
	st, err := s.jobs.Submit(req)
	if err != nil {
		// A full queue or a draining engine is backpressure, not a bad
		// request.
		switch {
		case errors.Is(err, experiments.ErrJobQueueFull):
			writeError(w, http.StatusServiceUnavailable, CodeQueueFull, err)
		case errors.Is(err, experiments.ErrJobsDraining):
			writeError(w, http.StatusServiceUnavailable, CodeJobsDraining, err)
		default:
			badRequest(w, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.reqs.jobList.Add(1)
	if !s.jobsEnabled(w) {
		return
	}
	writeJSON(w, http.StatusOK, JobListResponse{Jobs: s.jobs.List()})
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.reqs.jobGet.Add(1)
	if !s.jobsEnabled(w) {
		return
	}
	st, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownJob,
			fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.reqs.jobCancel.Add(1)
	if !s.jobsEnabled(w) {
		return
	}
	st, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownJob,
			fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	// Cancelling a terminal job is an idempotent no-op; the snapshot
	// tells the caller what actually happened either way.
	writeJSON(w, http.StatusOK, st)
}

// RequestStats counts handled requests per endpoint.
type RequestStats struct {
	Discovery int64 `json:"discovery"`
	Healthz   int64 `json:"healthz"`
	Machines  int64 `json:"machines"`
	Suites    int64 `json:"suites"`
	Params    int64 `json:"params"`
	Predict   int64 `json:"predict"`
	Sweep     int64 `json:"sweep"`
	Plan      int64 `json:"plan"`
	Optimize  int64 `json:"optimize"`
	Seeds     int64 `json:"seeds"`
	JobSubmit int64 `json:"jobSubmit"`
	JobList   int64 `json:"jobList"`
	JobGet    int64 `json:"jobGet"`
	JobCancel int64 `json:"jobCancel"`
	Stats     int64 `json:"stats"`
}

// ModelStats reports the provider's model cache.
type ModelStats struct {
	Cached int `json:"cached"`
	Fits   int `json:"fits"`
	Hits   int `json:"hits"`
}

// SimSourcing reports where simulation runs came from, and how many
// µop streams were actually generated to serve them (shared trace
// buffers count one generation per workload, not per machine).
type SimSourcing struct {
	StoreHits int `json:"storeHits"`
	Simulated int `json:"simulated"`
	TraceGens int `json:"traceGens"`
}

// StoreStats mirrors the run store's counters (present only when the
// daemon runs with a store).
type StoreStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
}

// StatsResponse is the GET /v1/stats body. Jobs is present only when the
// daemon runs a job engine; Sims covers the provider's synchronous
// requests only — each job carries its own progress counters.
type StatsResponse struct {
	Inflight int64                  `json:"inflight"`
	Requests RequestStats           `json:"requests"`
	Models   ModelStats             `json:"models"`
	Sims     SimSourcing            `json:"sims"`
	Store    *StoreStats            `json:"store,omitempty"`
	Jobs     *experiments.JobCounts `json:"jobs,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.reqs.stats.Add(1)
	ps := s.prov.Stats()
	resp := StatsResponse{
		Inflight: s.inflight.Load(),
		Requests: RequestStats{
			Discovery: s.reqs.discovery.Load(),
			Healthz:   s.reqs.healthz.Load(),
			Machines:  s.reqs.machines.Load(),
			Suites:    s.reqs.suites.Load(),
			Params:    s.reqs.params.Load(),
			Predict:   s.reqs.predict.Load(),
			Sweep:     s.reqs.sweep.Load(),
			Plan:      s.reqs.plan.Load(),
			Optimize:  s.reqs.optimize.Load(),
			Seeds:     s.reqs.seeds.Load(),
			JobSubmit: s.reqs.jobSubmit.Load(),
			JobList:   s.reqs.jobList.Load(),
			JobGet:    s.reqs.jobGet.Load(),
			JobCancel: s.reqs.jobCancel.Load(),
			Stats:     s.reqs.stats.Load(),
		},
		Models: ModelStats{Cached: s.prov.CachedModels(), Fits: ps.Fits, Hits: ps.ModelHits},
		Sims:   SimSourcing{StoreHits: ps.Sim.Hits, Simulated: ps.Sim.Simulated, TraceGens: ps.Sim.TraceGens},
	}
	if store := s.prov.Opts().Store; store != nil {
		st := store.Stats()
		resp.Store = &StoreStats{Hits: st.Hits, Misses: st.Misses, Puts: st.Puts}
	}
	if s.jobs != nil {
		jc := s.jobs.Counts()
		resp.Jobs = &jc
	}
	writeJSON(w, http.StatusOK, resp)
}
