package serve

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

func deleteJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// pollJob GETs the job until it is terminal, asserting every observed
// state is legal and the progress counters are monotone, and returns the
// terminal status.
func pollJob(t *testing.T, baseURL, id string, timeout time.Duration) experiments.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var prev experiments.JobProgress
	seenRunning := false
	for {
		var st experiments.JobStatus
		getJSON(t, baseURL+"/v1/jobs/"+id, &st)
		switch st.State {
		case experiments.JobQueued, experiments.JobRunning, experiments.JobDone,
			experiments.JobFailed, experiments.JobCancelled:
		default:
			t.Fatalf("illegal job state %q", st.State)
		}
		if seenRunning && st.State == experiments.JobQueued {
			t.Fatal("job went back from running to queued")
		}
		seenRunning = seenRunning || st.State == experiments.JobRunning
		if st.Progress.DoneRuns < prev.DoneRuns || st.Progress.StoreHits < prev.StoreHits ||
			st.Progress.Simulated < prev.Simulated {
			t.Fatalf("progress went backwards: %+v then %+v", prev, st.Progress)
		}
		if st.Progress.DoneRuns != st.Progress.StoreHits+st.Progress.Simulated {
			t.Fatalf("progress inconsistent: %+v", st.Progress)
		}
		prev = st.Progress
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v (progress %+v)", id, st.State, timeout, st.Progress)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobCampaignMatchesBlockingRun is the jobs e2e: a submitted
// campaign job progresses queued→running→done with monotone counters,
// and its result matches the equivalent blocking cmd/experiments
// computation per-float.
func TestJobCampaignMatchesBlockingRun(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end campaign is slow")
	}
	ts, _ := newTestServer(t, experiments.Options{})

	code, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"kind": "campaign", "campaign": {"machines": [{"name": "core2"}], "suites": ["cpu2000"]}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	var sub experiments.JobStatus
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.State != experiments.JobQueued || sub.ID == "" {
		t.Fatalf("submitted job = %+v, want a queued job with an id", sub)
	}
	if sub.Progress.TotalRuns != 48 || sub.Progress.DoneRuns != 0 {
		t.Errorf("initial progress = %+v", sub.Progress)
	}

	final := pollJob(t, ts.URL, sub.ID, 60*time.Second)
	if final.State != experiments.JobDone {
		t.Fatalf("job finished %s (error %q), want done", final.State, final.Error)
	}
	if final.Progress.DoneRuns != final.Progress.TotalRuns {
		t.Errorf("done job progress = %+v, want all runs done", final.Progress)
	}
	if final.Started == nil || final.Finished == nil {
		t.Error("terminal job missing started/finished timestamps")
	}
	var res experiments.CampaignJobResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}

	// The equivalent blocking run, exactly as cmd/experiments executes a
	// scenario: NewCampaignLab → Simulate → Model.
	campaign := experiments.Campaign{
		Machines: []experiments.MachineSpec{{Name: "core2"}},
		Suites:   []string{"cpu2000"},
	}
	lab, err := experiments.NewCampaignLab(campaign, experiments.Options{NumOps: testOps, FitStarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := lab.Simulate(); err != nil {
		t.Fatal(err)
	}
	model, err := lab.Model("core2", "cpu2000")
	if err != nil {
		t.Fatal(err)
	}
	obs, err := lab.Observations("core2", "cpu2000")
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Models) != 1 {
		t.Fatalf("job result has %d models, want 1", len(res.Models))
	}
	mr := res.Models[0]
	if mr.Params != model.P {
		t.Errorf("job params diverged from the blocking fit:\n  job      %+v\n  blocking %+v", mr.Params, model.P)
	}
	if len(mr.Workloads) != len(obs) {
		t.Fatalf("job predicted %d workloads, blocking run has %d", len(mr.Workloads), len(obs))
	}
	for i, wp := range mr.Workloads {
		o := obs[i]
		if wp.Workload != o.Name {
			t.Fatalf("workload order diverged at %d: %s vs %s", i, wp.Workload, o.Name)
		}
		if math.Float64bits(wp.MeasuredCPI) != math.Float64bits(o.MeasuredCPI) {
			t.Errorf("%s: measured CPI %v != blocking %v", o.Name, wp.MeasuredCPI, o.MeasuredCPI)
		}
		want := model.PredictCPI(o.Feat)
		if math.Float64bits(wp.PredictedCPI) != math.Float64bits(want) {
			t.Errorf("%s: predicted CPI %v != blocking %v (bit mismatch)", o.Name, wp.PredictedCPI, want)
		}
	}

	// The finished job shows up in the listing and the stats gauges.
	var listing JobListResponse
	getJSON(t, ts.URL+"/v1/jobs", &listing)
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != sub.ID {
		t.Errorf("listing = %+v, want exactly the submitted job", listing.Jobs)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Jobs == nil || st.Jobs.Done != 1 {
		t.Errorf("stats job gauges = %+v, want one done job", st.Jobs)
	}
	if st.Requests.JobSubmit != 1 || st.Requests.JobGet == 0 {
		t.Errorf("job request counters = %+v", st.Requests)
	}
}

// TestJobCancellationOverHTTP: DELETE on a running job yields a
// cancelled terminal state with zero further dispatched simulations.
func TestJobCancellationOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end campaign is slow")
	}
	// A single simulation worker and a real µop count keep the campaign
	// mid-flight long enough to cancel it deterministically.
	ts, _, _ := newTestServerJobs(t,
		experiments.Options{NumOps: 50000, FitStarts: 2, Workers: 1},
		experiments.JobsConfig{})

	code, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"kind": "campaign", "campaign": {"machines": [{"name": "core2"}, {"name": "corei7"}], "suites": ["cpu2000"]}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", code, body)
	}
	var sub experiments.JobStatus
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	total := sub.Progress.TotalRuns

	// Wait until demonstrably running, then cancel over the wire.
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st experiments.JobStatus
		getJSON(t, ts.URL+"/v1/jobs/"+sub.ID, &st)
		if st.State == experiments.JobRunning && st.Progress.DoneRuns >= 2 {
			break
		}
		if st.State.Terminal() {
			t.Fatalf("job finished %s before it could be cancelled", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never got mid-flight")
		}
		time.Sleep(2 * time.Millisecond)
	}
	code, _ = deleteJSON(t, ts.URL+"/v1/jobs/"+sub.ID)
	if code != http.StatusOK {
		t.Fatalf("cancel status %d", code)
	}

	final := pollJob(t, ts.URL, sub.ID, 30*time.Second)
	if final.State != experiments.JobCancelled {
		t.Fatalf("state after DELETE = %s, want cancelled", final.State)
	}
	if final.Progress.DoneRuns >= total {
		t.Errorf("cancelled job still completed all %d runs", total)
	}
	if len(final.Result) != 0 {
		t.Error("cancelled job carries a result")
	}

	// Zero further dispatched simulations: the counters are frozen.
	time.Sleep(100 * time.Millisecond)
	var again experiments.JobStatus
	getJSON(t, ts.URL+"/v1/jobs/"+sub.ID, &again)
	if again.Progress != final.Progress {
		t.Errorf("progress moved after cancellation: %+v then %+v", final.Progress, again.Progress)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Jobs == nil || st.Jobs.Cancelled != 1 {
		t.Errorf("stats job gauges = %+v, want one cancelled job", st.Jobs)
	}
}

func TestJobEndpointValidation(t *testing.T) {
	ts, _ := newTestServer(t, experiments.Options{})
	cases := []struct {
		name, body string
		wantStatus int
		wantCode   string
		wantErr    string
	}{
		{"malformed JSON", `{`, http.StatusBadRequest, CodeBadRequest, "parse request"},
		{"unknown top-level field", `{"kind": "campaign", "typo": 1}`, http.StatusBadRequest, CodeBadRequest, "typo"},
		{"unknown nested field", `{"kind": "campaign", "campaign": {"machines": [{"name": "core2"}], "suites": ["cpu2000"], "typo": 1}}`, http.StatusBadRequest, CodeBadRequest, "typo"},
		{"unknown kind", `{"kind": "fleet"}`, http.StatusBadRequest, CodeBadRequest, "unknown job kind"},
		{"kind/payload mismatch", `{"kind": "sweep", "campaign": {"machines": [{"name": "core2"}], "suites": ["cpu2000"]}}`, http.StatusBadRequest, CodeBadRequest, "without a sweep payload"},
		{"unknown machine", `{"kind": "campaign", "campaign": {"machines": [{"name": "core9"}], "suites": ["cpu2000"]}}`, http.StatusBadRequest, CodeUnknownMachine, "unknown machine"},
		{"bad sweep param", `{"kind": "sweep", "sweep": {"base": {"name": "core2"}, "param": "cores", "values": [2], "suite": "cpu2000"}}`, http.StatusBadRequest, CodeBadRequest, "unknown sweep parameter"},
		{"bad optimize objective", `{"kind": "optimize", "optimize": {"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [48, 96]}], "suite": "cpu2000", "objective": {"kind": "max-fun"}}}`, http.StatusBadRequest, CodeBadRequest, "unknown objective kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postJSON(t, ts.URL+"/v1/jobs", tc.body)
			if code != tc.wantStatus {
				t.Errorf("status %d, want %d (%s)", code, tc.wantStatus, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body is not JSON: %s", body)
			}
			if e.Error.Code != tc.wantCode {
				t.Errorf("error code %q, want %q", e.Error.Code, tc.wantCode)
			}
			if !strings.Contains(e.Error.Message, tc.wantErr) {
				t.Errorf("error %q should mention %q", e.Error.Message, tc.wantErr)
			}
		})
	}

	// Unknown job ids are 404 on GET and DELETE, with the unknown_job code.
	resp, err := http.Get(ts.URL + "/v1/jobs/job-doesnotexist")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job: status %d, want 404", resp.StatusCode)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body is not JSON: %s", body)
	}
	if e.Error.Code != CodeUnknownJob {
		t.Errorf("GET unknown job: code %q, want %q", e.Error.Code, CodeUnknownJob)
	}
	code, body := deleteJSON(t, ts.URL+"/v1/jobs/job-doesnotexist")
	if code != http.StatusNotFound {
		t.Errorf("DELETE unknown job: status %d, want 404", code)
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body is not JSON: %s", body)
	}
	if e.Error.Code != CodeUnknownJob {
		t.Errorf("DELETE unknown job: code %q, want %q", e.Error.Code, CodeUnknownJob)
	}
}

// TestJobsDisabled: a daemon constructed without a job engine answers
// every /v1/jobs route 503 with the jobs_disabled code, and GET /v1
// reports the missing capability.
func TestJobsDisabled(t *testing.T) {
	prov := experiments.NewProvider(experiments.Options{NumOps: testOps, FitStarts: 2})
	ts := httptest.NewServer(New(prov, nil).Handler())
	defer ts.Close()

	var disc DiscoveryResponse
	getJSON(t, ts.URL+"/v1", &disc)
	if disc.Capabilities.Jobs {
		t.Error("discovery reports jobs capability on a jobless daemon")
	}

	checkDisabled := func(status int, body []byte) {
		t.Helper()
		if status != http.StatusServiceUnavailable {
			t.Errorf("status %d, want 503 (%s)", status, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("error body is not JSON: %s", body)
		}
		if e.Error.Code != CodeJobsDisabled {
			t.Errorf("error code %q, want %q", e.Error.Code, CodeJobsDisabled)
		}
	}

	code, body := postJSON(t, ts.URL+"/v1/jobs", `{"kind": "campaign"}`)
	checkDisabled(code, body)
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	checkDisabled(resp.StatusCode, body)
	code, body = deleteJSON(t, ts.URL+"/v1/jobs/any")
	checkDisabled(code, body)
}
