package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/runstore"
	"repro/internal/uarch"
)

// testOps keeps end-to-end fits fast: the suites still carry their full
// workload populations, each workload just runs few µops.
const testOps = 2000

func newTestServer(t *testing.T, opts experiments.Options) (*httptest.Server, *experiments.Provider) {
	ts, prov, _ := newTestServerJobs(t, opts, experiments.JobsConfig{})
	return ts, prov
}

// newTestServerJobs is newTestServer with control over the job engine's
// configuration; every test server runs one, as the daemon does.
func newTestServerJobs(t *testing.T, opts experiments.Options, cfg experiments.JobsConfig) (*httptest.Server, *experiments.Provider, *experiments.Jobs) {
	t.Helper()
	if opts.NumOps == 0 {
		opts.NumOps = testOps
	}
	if opts.FitStarts == 0 {
		opts.FitStarts = 2
	}
	prov := experiments.NewProvider(opts)
	jobs := experiments.NewJobs(opts, cfg)
	ts := httptest.NewServer(New(prov, jobs).Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		jobs.Drain(ctx)
	})
	return ts, prov, jobs
}

// postJSONErr is the goroutine-safe POST helper: no t.Fatal, so it may
// be called off the test goroutine.
func postJSONErr(url, body string) (int, []byte, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	code, data, err := postJSONErr(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return code, data
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHealthzAndListings(t *testing.T) {
	ts, _ := newTestServer(t, experiments.Options{})

	var h HealthzResponse
	getJSON(t, ts.URL+"/healthz", &h)
	if h.Status != "ok" || h.SimVersion == "" {
		t.Errorf("healthz = %+v", h)
	}

	var m MachinesResponse
	getJSON(t, ts.URL+"/v1/machines", &m)
	for _, want := range []string{"pentium4", "core2", "corei7"} {
		found := false
		for _, name := range m.Machines {
			found = found || name == want
		}
		if !found {
			t.Errorf("machines listing missing %q: %v", want, m.Machines)
		}
	}

	var s SuitesResponse
	getJSON(t, ts.URL+"/v1/suites", &s)
	if s.Ops != testOps {
		t.Errorf("suites ops = %d, want %d", s.Ops, testOps)
	}
	names := map[string]int{}
	for _, info := range s.Suites {
		names[info.Name] = len(info.Workloads)
	}
	if names["cpu2000"] != 48 || names["cpu2006"] != 55 {
		t.Errorf("suite workload counts = %v, want cpu2000:48 cpu2006:55", names)
	}
}

// TestConcurrentPredictSingleflight is the singleflight proof: N
// identical concurrent predict requests against a cold daemon must
// produce byte-identical responses and exactly one model fit.
func TestConcurrentPredictSingleflight(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	ts, _ := newTestServer(t, experiments.Options{})
	req := `{"machine": {"name": "core2"}, "suite": "cpu2000", "workload": "mcf"}`

	const callers = 8
	bodies := make([][]byte, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, err := postJSONErr(ts.URL+"/v1/predict", req)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			if code != http.StatusOK {
				t.Errorf("caller %d: status %d: %s", i, code, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()

	for i := 1; i < callers; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("caller %d got a different response body", i)
		}
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Models.Fits != 1 {
		t.Errorf("%d concurrent predicts fitted %d models, want exactly 1", callers, st.Models.Fits)
	}
	if st.Models.Hits != callers-1 {
		t.Errorf("model hits = %d, want %d", st.Models.Hits, callers-1)
	}
	if st.Requests.Predict != callers {
		t.Errorf("predict request count = %d, want %d", st.Requests.Predict, callers)
	}
	if st.Inflight < 1 {
		t.Errorf("inflight gauge = %d, want >= 1 (the stats request itself)", st.Inflight)
	}
}

// TestPredictMatchesOfflineMecpi asserts the daemon's numbers are
// bit-for-bit the offline cmd/mecpi answer: both run the exact same
// provider path (simulate → sorted observations → fit → predict), and
// Go's JSON float encoding round-trips exactly.
func TestPredictMatchesOfflineMecpi(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	ts, _ := newTestServer(t, experiments.Options{})

	code, body := postJSON(t, ts.URL+"/v1/predict",
		`{"machine": {"name": "core2"}, "suite": "cpu2000"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}

	// The offline path: a fresh provider with the same options, exactly
	// as cmd/mecpi constructs it.
	m, err := uarch.ByName("core2")
	if err != nil {
		t.Fatal(err)
	}
	offline := experiments.NewProvider(experiments.Options{NumOps: testOps, FitStarts: 2})
	f, err := offline.Fitted(m, "cpu2000")
	if err != nil {
		t.Fatal(err)
	}

	if resp.Params != f.Model.P {
		t.Errorf("served params diverged from offline fit:\n  served  %+v\n  offline %+v", resp.Params, f.Model.P)
	}
	if len(resp.Workloads) != len(f.Obs) {
		t.Fatalf("served %d workloads, offline has %d", len(resp.Workloads), len(f.Obs))
	}
	for i, wp := range resp.Workloads {
		o := f.Obs[i]
		if wp.Workload != o.Name {
			t.Fatalf("workload order diverged at %d: %s vs %s", i, wp.Workload, o.Name)
		}
		if math.Float64bits(wp.MeasuredCPI) != math.Float64bits(o.MeasuredCPI) {
			t.Errorf("%s: measured CPI %v != offline %v", o.Name, wp.MeasuredCPI, o.MeasuredCPI)
		}
		want := f.Model.PredictCPI(o.Feat)
		if math.Float64bits(wp.PredictedCPI) != math.Float64bits(want) {
			t.Errorf("%s: predicted CPI %v != offline %v (bit mismatch)", o.Name, wp.PredictedCPI, want)
		}
		stack := f.Model.Stack(o.Feat)
		var sum float64
		for j, e := range wp.Stack {
			if math.Float64bits(e.CPI) != math.Float64bits(stack.Cycles[j]) {
				t.Errorf("%s: stack[%s] %v != offline %v", o.Name, e.Component, e.CPI, stack.Cycles[j])
			}
			sum += e.CPI
		}
		if rel := math.Abs(sum-wp.PredictedCPI) / wp.PredictedCPI; rel > 1e-9 {
			t.Errorf("%s: stack sums to %v, predicted CPI %v", o.Name, sum, wp.PredictedCPI)
		}
	}
}

// TestPredictWarmStoreDispatchesZeroSimulations is the serve-smoke
// assertion as a unit test: against a pre-warmed run store the daemon
// answers without a single simulation.
func TestPredictWarmStoreDispatchesZeroSimulations(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	dir := t.TempDir()
	store, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warmup := experiments.NewProvider(experiments.Options{NumOps: testOps, FitStarts: 2, Store: store})
	m, err := uarch.ByName("core2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warmup.Fitted(m, "cpu2000"); err != nil {
		t.Fatal(err)
	}

	daemonStore, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t, experiments.Options{NumOps: testOps, FitStarts: 2, Store: daemonStore})
	code, body := postJSON(t, ts.URL+"/v1/predict",
		`{"machine": {"name": "core2"}, "suite": "cpu2000", "workload": "mcf"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Sims.Simulated != 0 {
		t.Errorf("warm daemon dispatched %d simulations, want 0", st.Sims.Simulated)
	}
	if st.Sims.StoreHits == 0 {
		t.Error("warm daemon should have served runs from the store")
	}
	if st.Store == nil || st.Store.Misses != 0 {
		t.Errorf("warm daemon store stats = %+v, want zero misses", st.Store)
	}
}

func TestSweepEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep is slow")
	}
	ts, _ := newTestServer(t, experiments.Options{})
	code, body := postJSON(t, ts.URL+"/v1/sweep",
		`{"base": {"name": "core2"}, "param": "rob", "values": [48, 96], "suite": "cpu2000"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Base != "core2" || resp.Param != "rob" || len(resp.Points) != 2 {
		t.Errorf("sweep response = %+v", resp)
	}
	for _, p := range resp.Points {
		if p.SimCPI <= 0 || p.ModelCPI <= 0 {
			t.Errorf("point %d has degenerate CPIs: %+v", p.Value, p)
		}
		if len(p.SimStack) == 0 || len(p.ModelStack) == 0 {
			t.Errorf("point %d missing stacks", p.Value)
		}
	}

	// The sweep's base fit lands in the shared model cache: a predict
	// for the same machine and suite must not re-fit.
	code, body = postJSON(t, ts.URL+"/v1/predict",
		`{"machine": {"name": "core2"}, "suite": "cpu2000", "workload": "mcf"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Models.Fits != 1 {
		t.Errorf("sweep+predict fitted %d models, want 1 shared fit", st.Models.Fits)
	}
	if st.Requests.Sweep != 1 {
		t.Errorf("sweep request count = %d, want 1", st.Requests.Sweep)
	}
}

func TestRequestValidation(t *testing.T) {
	ts, _ := newTestServer(t, experiments.Options{})
	cases := []struct {
		name, path, body string
		wantStatus       int
		wantCode         string
		wantErr          string
	}{
		{"malformed JSON", "/v1/predict", `{`, http.StatusBadRequest, CodeBadRequest, "parse request"},
		{"unknown field", "/v1/predict", `{"machine": {"name": "core2"}, "suite": "cpu2000", "typo": 1}`, http.StatusBadRequest, CodeBadRequest, "typo"},
		{"trailing document", "/v1/predict", `{"machine": {"name": "core2"}, "suite": "cpu2000"} {}`, http.StatusBadRequest, CodeBadRequest, "trailing"},
		{"unknown machine", "/v1/predict", `{"machine": {"name": "core9"}, "suite": "cpu2000"}`, http.StatusBadRequest, CodeUnknownMachine, "unknown machine"},
		{"neither machine nor machines", "/v1/predict", `{"suite": "cpu2000"}`, http.StatusBadRequest, CodeBadRequest, "exactly one of machine or machines"},
		{"both machine and machines", "/v1/predict", `{"machine": {"name": "core2"}, "machines": [{"name": "corei7"}], "suite": "cpu2000"}`, http.StatusBadRequest, CodeBadRequest, "exactly one of machine or machines"},
		{"empty machine name", "/v1/predict", `{"machine": {}, "suite": "cpu2000"}`, http.StatusBadRequest, CodeBadRequest, "empty name"},
		{"unknown suite", "/v1/predict", `{"machine": {"name": "core2"}, "suite": "cpu2017"}`, http.StatusBadRequest, CodeUnknownSuite, "unknown suite"},
		{"unknown workload rejected pre-fit", "/v1/predict", `{"machine": {"name": "core2"}, "suite": "cpu2000", "workload": "mfc"}`, http.StatusBadRequest, CodeBadRequest, "not in suite"},
		{"invalid derivation", "/v1/predict", `{"machine": {"name": "x", "base": "core2", "overrides": {"iqSize": 9999}}, "suite": "cpu2000"}`, http.StatusBadRequest, CodeBadRequest, "derive"},
		{"batch with unknown member", "/v1/predict", `{"machines": [{"name": "core2"}, {"name": "core9"}], "suite": "cpu2000"}`, http.StatusBadRequest, CodeUnknownMachine, "unknown machine"},
		{"unknown sweep param", "/v1/sweep", `{"base": {"name": "core2"}, "param": "cores", "values": [2], "suite": "cpu2000"}`, http.StatusBadRequest, CodeBadRequest, "unknown sweep parameter"},
		{"no sweep values", "/v1/sweep", `{"base": {"name": "core2"}, "param": "rob", "values": [], "suite": "cpu2000"}`, http.StatusBadRequest, CodeBadRequest, "at least one value"},
		{"negative sweep value", "/v1/sweep", `{"base": {"name": "core2"}, "param": "rob", "values": [-8], "suite": "cpu2000"}`, http.StatusBadRequest, CodeBadRequest, "must be positive"},
		{"duplicate sweep value", "/v1/sweep", `{"base": {"name": "core2"}, "param": "rob", "values": [64, 64], "suite": "cpu2000"}`, http.StatusBadRequest, CodeBadRequest, "listed twice"},
		{"optimize unknown objective", "/v1/optimize", `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [48, 96]}], "suite": "cpu2000", "objective": {"kind": "max-fun"}}`, http.StatusBadRequest, CodeBadRequest, "unknown objective kind"},
		{"optimize unknown suite", "/v1/optimize", `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [48, 96]}], "suite": "cpu2017", "objective": {"kind": "min-cpi"}}`, http.StatusBadRequest, CodeUnknownSuite, "unknown suite"},
		{"optimize unknown base", "/v1/optimize", `{"base": {"name": "core9"}, "axes": [{"param": "rob", "values": [48, 96]}], "suite": "cpu2000", "objective": {"kind": "min-cpi"}}`, http.StatusBadRequest, CodeUnknownMachine, "unknown machine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postJSON(t, ts.URL+tc.path, tc.body)
			if code != tc.wantStatus {
				t.Errorf("status %d, want %d (%s)", code, tc.wantStatus, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body is not JSON: %s", body)
			}
			if e.Error.Code != tc.wantCode {
				t.Errorf("error code %q, want %q", e.Error.Code, tc.wantCode)
			}
			if !strings.Contains(e.Error.Message, tc.wantErr) {
				t.Errorf("error %q should mention %q", e.Error.Message, tc.wantErr)
			}
		})
	}

	// Wrong methods get 405 from the method-scoped mux patterns.
	for _, tc := range []struct{ method, path string }{
		{http.MethodGet, "/v1/predict"},
		{http.MethodGet, "/v1/sweep"},
		{http.MethodPost, "/v1/stats"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
	}
}

// TestDerivedMachinePredict exercises the base+overrides spec path the
// scenario files use, over the wire.
func TestDerivedMachinePredict(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	ts, _ := newTestServer(t, experiments.Options{})
	code, body := postJSON(t, ts.URL+"/v1/predict",
		`{"machine": {"name": "core2-rob48", "base": "core2", "overrides": {"robSize": 48}}, "suite": "cpu2000", "workload": "mcf"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp PredictResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Machine != "core2-rob48" {
		t.Errorf("machine = %q, want the derived name", resp.Machine)
	}
	base, err := uarch.ByName("core2")
	if err != nil {
		t.Fatal(err)
	}
	if resp.ConfigHash == base.ConfigHash() {
		t.Error("derived machine served with the base machine's config hash")
	}
	if len(resp.Workloads) != 1 || resp.Workloads[0].Workload != "mcf" {
		t.Errorf("workloads = %+v, want just mcf", resp.Workloads)
	}
	if len(resp.Workloads[0].Stack) != 9 {
		t.Errorf("stack has %d components, want 9", len(resp.Workloads[0].Stack))
	}
}

// TestParamsEndpoint asserts the axis-discovery listing mirrors the
// shared param registry, docs included.
func TestParamsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, experiments.Options{})
	var resp ParamsResponse
	getJSON(t, ts.URL+"/v1/params", &resp)
	reg := experiments.SweepParams()
	if len(resp.Params) != len(reg) {
		t.Fatalf("served %d params, registry has %d", len(resp.Params), len(reg))
	}
	for i, p := range resp.Params {
		if p.Name != reg[i].Name || p.Doc != reg[i].Doc {
			t.Errorf("param %d = %+v, want %s (%s)", i, p, reg[i].Name, reg[i].Doc)
		}
	}
}

// TestPlanEndpointValidation asserts every bogus plan request is
// rejected before anything simulates — the wire half of the
// duplicate-values fix included.
func TestPlanEndpointValidation(t *testing.T) {
	ts, prov := newTestServer(t, experiments.Options{})
	cases := []struct {
		name, body, wantCode, wantErr string
	}{
		{"unknown field", `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [64]}], "suite": "cpu2000", "cores": 2}`, CodeBadRequest, "unknown field"},
		{"unknown axis", `{"base": {"name": "core2"}, "axes": [{"param": "cores", "values": [2]}], "suite": "cpu2000"}`, CodeBadRequest, "unknown sweep parameter"},
		{"duplicate axis", `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [48]}, {"param": "rob", "values": [96]}], "suite": "cpu2000"}`, CodeBadRequest, "twice"},
		{"duplicate values", `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [64, 64]}], "suite": "cpu2000"}`, CodeBadRequest, "listed twice"},
		{"non-positive value", `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [0]}], "suite": "cpu2000"}`, CodeBadRequest, "positive"},
		{"unknown suite", `{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [64]}], "suite": "cpu2017"}`, CodeUnknownSuite, "unknown suite"},
		{"unknown base", `{"base": {"name": "core9"}, "axes": [{"param": "rob", "values": [64]}], "suite": "cpu2000"}`, CodeUnknownMachine, "unknown machine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postJSON(t, ts.URL+"/v1/plan", tc.body)
			if code != http.StatusBadRequest {
				t.Errorf("status %d, want 400 (%s)", code, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body is not JSON: %s", body)
			}
			if e.Error.Code != tc.wantCode {
				t.Errorf("error code %q, want %q", e.Error.Code, tc.wantCode)
			}
			if !strings.Contains(e.Error.Message, tc.wantErr) {
				t.Errorf("error %q should mention %q", e.Error.Message, tc.wantErr)
			}
		})
	}
	if st := prov.Stats(); st.Fits != 0 || st.Sim.Simulated != 0 {
		t.Errorf("invalid plan requests cost simulations: %+v", st)
	}
}

// TestPlanEndpointMatchesBlockingRunPlan is the grid flavour of the
// daemon-vs-CLI bit-identity proof: a served 2×2 plan must reproduce
// the blocking RunPlan computation per-float, and its sourcing stats
// must show the shared-trace economics (one generation per workload).
func TestPlanEndpointMatchesBlockingRunPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end grid fit is slow")
	}
	ts, _ := newTestServer(t, experiments.Options{})
	code, body := postJSON(t, ts.URL+"/v1/plan",
		`{"base": {"name": "core2"}, "axes": [{"param": "rob", "values": [48, 96]}, {"param": "mshrs", "values": [4, 8]}], "suite": "cpu2000"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp PlanResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Base != "core2" || resp.Suite != "cpu2000" || len(resp.Cells) != 4 {
		t.Fatalf("plan response shape: %+v", resp)
	}
	// The response's sourcing covers the 4 grid cells (the base fit is
	// a separate, cached provider fit): 4×48 simulations served by one
	// materialized buffer per workload.
	if resp.Sims.Simulated != 4*48 || resp.Sims.TraceGens != 48 {
		t.Errorf("sourcing %+v, want 192 simulated from 48 trace generations", resp.Sims)
	}

	// Blocking reference: RunPlan with the daemon's options.
	m, err := uarch.ByName("core2")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := experiments.NewPlan(m, []experiments.PlanAxis{
		{Param: "rob", Values: []int{48, 96}},
		{Param: "mshrs", Values: []int{4, 8}},
	}, "cpu2000")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := experiments.RunPlan(plan, experiments.Options{NumOps: testOps, FitStarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, cell := range resp.Cells {
		pt := ref.Points[i]
		if cell.Machine != pt.Machine {
			t.Fatalf("cell %d machine %q vs blocking %q", i, cell.Machine, pt.Machine)
		}
		if math.Float64bits(cell.SimCPI) != math.Float64bits(pt.SimCPI) ||
			math.Float64bits(cell.ModelCPI) != math.Float64bits(pt.ModelCPI) {
			t.Errorf("cell %d CPIs diverge from the blocking run", i)
		}
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests.Plan != 1 {
		t.Errorf("plan request count = %d, want 1", st.Requests.Plan)
	}
	// The daemon-wide gauge additionally counts the base fit's 48
	// generations (one suite simulated on one machine, nothing shared).
	if st.Sims.TraceGens != resp.Sims.TraceGens+48 {
		t.Errorf("stats traceGens %d, want %d (cells) + 48 (base fit)",
			st.Sims.TraceGens, resp.Sims.TraceGens)
	}
}

// TestDiscoveryEndpoint asserts GET /v1 reports the full mounted route
// table, the simulator version and the capability flags.
func TestDiscoveryEndpoint(t *testing.T) {
	dir := t.TempDir()
	store, err := runstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t, experiments.Options{Store: store})

	var resp DiscoveryResponse
	getJSON(t, ts.URL+"/v1", &resp)
	if resp.SimVersion == "" {
		t.Error("discovery missing simVersion")
	}
	if !resp.Capabilities.Jobs || !resp.Capabilities.Store {
		t.Errorf("capabilities = %+v, want jobs and store on", resp.Capabilities)
	}
	routes := map[string]bool{}
	for _, e := range resp.Endpoints {
		if e.Doc == "" {
			t.Errorf("endpoint %s %s has no doc", e.Method, e.Path)
		}
		routes[e.Method+" "+e.Path] = true
	}
	for _, want := range []string{
		"GET /v1", "GET /healthz", "GET /v1/machines", "GET /v1/suites",
		"GET /v1/params", "POST /v1/predict", "POST /v1/sweep", "POST /v1/plan",
		"POST /v1/optimize", "POST /v1/seeds", "POST /v1/jobs", "GET /v1/jobs",
		"GET /v1/jobs/{id}", "DELETE /v1/jobs/{id}", "GET /v1/stats",
	} {
		if !routes[want] {
			t.Errorf("discovery missing route %q", want)
		}
	}
	if len(resp.Endpoints) != 15 {
		t.Errorf("discovery lists %d endpoints, want 15", len(resp.Endpoints))
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests.Discovery != 1 {
		t.Errorf("discovery request count = %d, want 1", st.Requests.Discovery)
	}
}

// TestBatchPredict asserts the batch form answers each machine exactly
// as its single-machine request would — same fits, same floats — with
// the request-wide fields hoisted to the envelope.
func TestBatchPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end fit is slow")
	}
	ts, _ := newTestServer(t, experiments.Options{})

	var singles []PredictResponse
	for _, m := range []string{"core2", "corei7"} {
		code, body := postJSON(t, ts.URL+"/v1/predict",
			`{"machine": {"name": "`+m+`"}, "suite": "cpu2000", "workload": "mcf"}`)
		if code != http.StatusOK {
			t.Fatalf("single %s: status %d: %s", m, code, body)
		}
		var r PredictResponse
		if err := json.Unmarshal(body, &r); err != nil {
			t.Fatal(err)
		}
		singles = append(singles, r)
	}

	code, body := postJSON(t, ts.URL+"/v1/predict",
		`{"machines": [{"name": "core2"}, {"name": "corei7"}], "suite": "cpu2000", "workload": "mcf"}`)
	if code != http.StatusOK {
		t.Fatalf("batch: status %d: %s", code, body)
	}
	var batch BatchPredictResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Suite != "cpu2000" || batch.Ops != testOps || batch.FitStarts != 2 {
		t.Errorf("batch envelope = %+v", batch)
	}
	if len(batch.Machines) != 2 {
		t.Fatalf("batch answered %d machines, want 2 in request order", len(batch.Machines))
	}
	for i, mp := range batch.Machines {
		single := singles[i]
		if mp.Machine != single.Machine || mp.ConfigHash != single.ConfigHash {
			t.Errorf("machine %d = %s/%s, want %s/%s", i, mp.Machine, mp.ConfigHash, single.Machine, single.ConfigHash)
		}
		if mp.Params != single.Params {
			t.Errorf("%s: batch params diverged from the single-machine fit", mp.Machine)
		}
		if len(mp.Workloads) != 1 || mp.Workloads[0].Workload != "mcf" {
			t.Fatalf("%s: workloads = %+v, want just mcf", mp.Machine, mp.Workloads)
		}
		if math.Float64bits(mp.Workloads[0].PredictedCPI) != math.Float64bits(single.Workloads[0].PredictedCPI) {
			t.Errorf("%s: batch predicted CPI diverged from single (bit mismatch)", mp.Machine)
		}
	}

	// The batch joined the singles' cached fits: still exactly two.
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Models.Fits != 2 {
		t.Errorf("batch after singles fitted %d models, want the 2 cached fits", st.Models.Fits)
	}
	if st.Models.Hits != 2 {
		t.Errorf("model hits = %d, want 2 (one per batch member)", st.Models.Hits)
	}
}

// TestOptimizeEndpointMatchesBlockingRun: the served optimizer answer is
// bit-identical to the blocking RunOptimize computation, and the wire
// report carries the probe accounting the CLI prints.
func TestOptimizeEndpointMatchesBlockingRun(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end optimize is slow")
	}
	ts, _ := newTestServer(t, experiments.Options{})
	code, body := postJSON(t, ts.URL+"/v1/optimize",
		`{"base": {"name": "core2"}, "axes": [{"param": "width", "values": [2, 4]}, {"param": "memlat", "values": [150, 300]}], "suite": "cpu2000", "objective": {"kind": "min-cpi"}}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp OptimizeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Base != "core2" || resp.Suite != "cpu2000" || resp.Algorithm != experiments.SearchCoordinateDescent {
		t.Fatalf("optimize response shape: base=%q suite=%q algorithm=%q", resp.Base, resp.Suite, resp.Algorithm)
	}
	if resp.GridCells != 4 || resp.Probes == 0 || resp.Probes > resp.GridCells {
		t.Errorf("probe accounting: %d probes over %d cells", resp.Probes, resp.GridCells)
	}
	if resp.Best == nil || len(resp.Best.ModelStack) != 9 {
		t.Fatalf("best point = %+v, want one with a 9-component model stack", resp.Best)
	}

	// Blocking reference with the daemon's options.
	spec := experiments.OptimizeSpec{
		Base: experiments.MachineSpec{Name: "core2"},
		Axes: []experiments.PlanAxis{
			{Param: "width", Values: []int{2, 4}},
			{Param: "memlat", Values: []int{150, 300}},
		},
		Suite:     "cpu2000",
		Objective: experiments.ObjectiveSpec{Kind: experiments.ObjectiveMinCPI},
	}
	o, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := experiments.RunOptimize(o, experiments.Options{NumOps: testOps, FitStarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Probes != ref.Probes {
		t.Errorf("served %d probes, blocking run made %d", resp.Probes, ref.Probes)
	}
	if !slicesEqual(resp.Best.Values, ref.Best.Values) {
		t.Errorf("served best %v, blocking best %v", resp.Best.Values, ref.Best.Values)
	}
	if math.Float64bits(resp.Best.SimCPI) != math.Float64bits(ref.Best.SimCPI) ||
		math.Float64bits(resp.Best.ModelCPI) != math.Float64bits(ref.Best.ModelCPI) {
		t.Error("served best CPIs diverge from the blocking run (bit mismatch)")
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests.Optimize != 1 {
		t.Errorf("optimize request count = %d, want 1", st.Requests.Optimize)
	}
}

func slicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSeedsEndpointValidation asserts every bogus seeds request is
// rejected with the structured error envelope before anything
// simulates, registry sentinels classified into their codes.
func TestSeedsEndpointValidation(t *testing.T) {
	ts, prov := newTestServer(t, experiments.Options{})
	cases := []struct {
		name, body, wantCode, wantErr string
	}{
		{"unknown field", `{"base": {"name": "core2"}, "suite": "cpu2000", "count": 2, "ops": 500}`, CodeBadRequest, "unknown field"},
		{"no subject", `{"count": 2}`, CodeBadRequest, "base+suite or a campaign"},
		{"base and campaign", `{"base": {"name": "core2"}, "suite": "cpu2000", "campaign": {"machines": [{"name": "core2"}], "suites": ["cpu2000"]}, "count": 2}`, CodeBadRequest, "not both"},
		{"campaign with ops", `{"campaign": {"machines": [{"name": "core2"}], "suites": ["cpu2000"], "ops": 500}, "count": 2}`, CodeBadRequest, "must not set ops"},
		{"seeds and count", `{"base": {"name": "core2"}, "suite": "cpu2000", "seeds": [1], "count": 2}`, CodeBadRequest, "not both"},
		{"no replications", `{"base": {"name": "core2"}, "suite": "cpu2000"}`, CodeBadRequest, "seed list or a count"},
		{"seed zero", `{"base": {"name": "core2"}, "suite": "cpu2000", "seeds": [0]}`, CodeBadRequest, "reserved"},
		{"duplicate seed", `{"base": {"name": "core2"}, "suite": "cpu2000", "seeds": [5, 5]}`, CodeBadRequest, "listed twice"},
		{"count over limit", `{"base": {"name": "core2"}, "suite": "cpu2000", "count": 65}`, CodeBadRequest, "exceed"},
		{"unknown suite", `{"base": {"name": "core2"}, "suite": "cpu2017", "count": 2}`, CodeUnknownSuite, "unknown suite"},
		{"unknown base", `{"base": {"name": "core9"}, "suite": "cpu2000", "count": 2}`, CodeUnknownMachine, "unknown machine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := postJSON(t, ts.URL+"/v1/seeds", tc.body)
			if code != http.StatusBadRequest {
				t.Errorf("status %d, want 400 (%s)", code, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body is not JSON: %s", body)
			}
			if e.Error.Code != tc.wantCode {
				t.Errorf("error code %q, want %q", e.Error.Code, tc.wantCode)
			}
			if !strings.Contains(e.Error.Message, tc.wantErr) {
				t.Errorf("error %q should mention %q", e.Error.Message, tc.wantErr)
			}
		})
	}
	if st := prov.Stats(); st.Fits != 0 || st.Sim.Simulated != 0 {
		t.Errorf("invalid seeds requests cost simulations: %+v", st)
	}
}

// TestSeedsEndpointMatchesBlockingRunSeeds is the replication flavour of
// the daemon-vs-CLI bit-identity proof: a served 2-seed sweep must
// reproduce the blocking RunSeeds statistics per-float — same per-seed
// values, same means, intervals and coefficient stability.
func TestSeedsEndpointMatchesBlockingRunSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end replication sweep is slow")
	}
	ts, _ := newTestServer(t, experiments.Options{})
	code, body := postJSON(t, ts.URL+"/v1/seeds",
		`{"base": {"name": "core2"}, "suite": "cpu2000", "count": 2}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp SeedsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Seeds) != 2 || resp.Ops != testOps || resp.FitStarts != 2 {
		t.Fatalf("seeds response envelope: %+v", resp)
	}
	if len(resp.Machines) != 1 || len(resp.Suites) != 1 || len(resp.Cells) != 1 {
		t.Fatalf("seeds response shape: %+v", resp)
	}
	// Two seeds × 48 workloads, nothing shareable between seeds.
	if resp.Sims.Simulated != 2*48 {
		t.Errorf("sourcing %+v, want 96 simulated", resp.Sims)
	}

	// Blocking reference: RunSeeds with the daemon's options. The
	// statistical surface must agree per-float (JSON float round-trips
	// are exact); sourcing is a per-path property and compared above.
	s, err := experiments.SeedsSpec{Base: &experiments.MachineSpec{Name: "core2"},
		Suite: "cpu2000", Count: 2}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := experiments.RunSeeds(s, experiments.Options{NumOps: testOps, FitStarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Cells, ref.Report().Cells) {
		t.Error("served seeds cells diverge from the blocking sweep")
	}
	if !reflect.DeepEqual(resp.Seeds, ref.Seeds) {
		t.Errorf("served seeds %v, blocking %v", resp.Seeds, ref.Seeds)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests.Seeds != 1 {
		t.Errorf("seeds request count = %d, want 1", st.Requests.Seeds)
	}
}
