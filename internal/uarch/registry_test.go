package uarch

import (
	"strings"
	"testing"
)

func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := Register("core2", CoreTwo); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration: got %v", err)
	}
	if err := Register("", CoreTwo); err == nil {
		t.Error("empty name should not register")
	}
	if err := Register("nilfactory", nil); err == nil {
		t.Error("nil factory should not register")
	}
}

func TestNamesContainsStockSorted(t *testing.T) {
	names := Names()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
		if i > 0 && names[i-1] >= n {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	for _, want := range []string{"pentium4", "core2", "corei7"} {
		if _, ok := idx[want]; !ok {
			t.Errorf("Names missing %s: %v", want, names)
		}
	}
}

func TestByNameReturnsFreshInstances(t *testing.T) {
	a, err := ByName("core2")
	if err != nil {
		t.Fatal(err)
	}
	a.ROBSize = 1 // must not leak into later lookups
	b, err := ByName("core2")
	if err != nil {
		t.Fatal(err)
	}
	if b.ROBSize != CoreTwo().ROBSize {
		t.Error("ByName returned a shared, mutated instance")
	}
}

func TestByNameUnknownListsRegistered(t *testing.T) {
	_, err := ByName("atom")
	if err == nil || !strings.Contains(err.Error(), "unknown machine") {
		t.Fatalf("expected unknown machine error, got %v", err)
	}
	if !strings.Contains(err.Error(), "core2") {
		t.Errorf("error should list registered names: %v", err)
	}
}

func TestDeriveAppliesOverrides(t *testing.T) {
	base := CoreTwo()
	m, err := Derive(base, "core2-big", Overrides{
		ROBSize: 192,
		MSHRs:   12,
		MemLat:  200,
		L2:      CacheOverrides{SizeBytes: 2 << 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "core2-big" || m.ROBSize != 192 || m.MSHRs != 12 || m.MemLat != 200 {
		t.Errorf("overrides not applied: %+v", m)
	}
	if m.L2.SizeBytes != 2<<20 || m.L2.LatCycles != base.L2.LatCycles {
		t.Errorf("cache override should change size only: %+v", m.L2)
	}
	if m.IQSize != base.IQSize || m.DispatchWidth != base.DispatchWidth {
		t.Error("untouched parameters must keep base values")
	}
	if base.ROBSize != CoreTwo().ROBSize || base.Name != "core2" {
		t.Error("Derive mutated the base machine")
	}
}

func TestDeriveFollowsIQUnderShrunkenROB(t *testing.T) {
	m, err := Derive(PentiumFour(), "p4-rob32", Overrides{ROBSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if m.IQSize != 32 {
		t.Errorf("IQ should follow ROB down to 32, got %d", m.IQSize)
	}
	// An explicitly pinned IQ larger than the ROB must still fail.
	if _, err := Derive(PentiumFour(), "p4-bad", Overrides{ROBSize: 32, IQSize: 64}); err == nil {
		t.Error("expected validation error for IQ > ROB")
	}
}

func TestDeriveFusionRateZeroIsExpressible(t *testing.T) {
	zero := 0.0
	m, err := Derive(CoreTwo(), "core2-nofuse", Overrides{FusionRate: &zero})
	if err != nil {
		t.Fatal(err)
	}
	if m.FusionRate != 0 {
		t.Errorf("fusion rate %v, want 0", m.FusionRate)
	}
}

func TestDeriveRejectsInvalidVariants(t *testing.T) {
	if _, err := Derive(CoreTwo(), "", Overrides{}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := Derive(CoreTwo(), "bad-geom", Overrides{
		L2: CacheOverrides{SizeBytes: 3000},
	}); err == nil {
		t.Error("invalid cache geometry should fail validation")
	}
}

func TestDerivedMachineHashSensitivity(t *testing.T) {
	base := CoreTwo()
	a, err := Derive(base, "core2-rob160", Overrides{ROBSize: 160})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Derive(base, "core2-rob160", Overrides{ROBSize: 160})
	if err != nil {
		t.Fatal(err)
	}
	if a.ConfigHash() != b.ConfigHash() {
		t.Error("identical derivations must hash equal")
	}
	if a.ConfigHash() == base.ConfigHash() {
		t.Error("derived machine must not alias its base in content-addressed stores")
	}
	c, err := Derive(base, "core2-rob160", Overrides{ROBSize: 160, MSHRs: base.MSHRs + 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.ConfigHash() == c.ConfigHash() {
		t.Error("changing an override must change the hash")
	}
}

func TestRegisterDerived(t *testing.T) {
	if err := RegisterDerived("core2", "core2-mem300", Overrides{MemLat: 300}); err != nil {
		t.Fatal(err)
	}
	m, err := ByName("core2-mem300")
	if err != nil {
		t.Fatal(err)
	}
	if m.MemLat != 300 || m.L2.SizeBytes != CoreTwo().L2.SizeBytes {
		t.Errorf("registered variant wrong: %+v", m)
	}
	if err := RegisterDerived("core2", "core2-mem300", Overrides{MemLat: 300}); err == nil {
		t.Error("duplicate derived registration should fail")
	}
	if err := RegisterDerived("nope", "x", Overrides{}); err == nil {
		t.Error("unknown base should fail")
	}
	if err := RegisterDerived("core2", "core2-broken", Overrides{ROBSize: 8, IQSize: 64}); err == nil {
		t.Error("invalid derivation should fail eagerly, not at first ByName")
	}
}
