package uarch

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentAccess contends every registry entry point at
// once — Register, ByName, Names, Derive, RegisterDerived — so the
// RWMutex discipline is actually exercised under -race. Registrations
// are process-global and permanent, so all test names are namespaced.
func TestRegistryConcurrentAccess(t *testing.T) {
	base, err := ByName("core2")
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("racetest-uarch-%d", i)
			if err := Register(name, func() *Machine {
				m := *base
				m.Name = name
				return &m
			}); err != nil {
				t.Errorf("Register(%s): %v", name, err)
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ByName("core2"); err != nil {
				t.Errorf("ByName(core2): %v", err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if names := Names(); len(names) == 0 {
				t.Error("Names() empty during concurrent registration")
			}
		}()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d, err := Derive(base, fmt.Sprintf("racetest-derive-%d", i), Overrides{ROBSize: 32 + i})
			if err != nil {
				t.Errorf("Derive: %v", err)
				return
			}
			if d.ROBSize != 32+i {
				t.Errorf("Derive applied ROBSize %d, want %d", d.ROBSize, 32+i)
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("racetest-regderived-%d", i)
			if err := RegisterDerived("core2", name, Overrides{MSHRs: 4 + i}); err != nil {
				t.Errorf("RegisterDerived(%s): %v", name, err)
			}
		}(i)
	}
	wg.Wait()

	// Every concurrent registration must be visible afterwards.
	for i := 0; i < n; i++ {
		for _, name := range []string{
			fmt.Sprintf("racetest-uarch-%d", i),
			fmt.Sprintf("racetest-regderived-%d", i),
		} {
			if _, err := ByName(name); err != nil {
				t.Errorf("registration lost: %v", err)
			}
		}
	}
}

// TestRegisterConcurrentDuplicates races many registrations of one name:
// exactly one must win, the rest must error, and none may panic or
// corrupt the map.
func TestRegisterConcurrentDuplicates(t *testing.T) {
	base, err := ByName("core2")
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = Register("racetest-dup", func() *Machine {
				m := *base
				m.Name = "racetest-dup"
				return &m
			})
		}(i)
	}
	wg.Wait()
	won := 0
	for _, err := range errs {
		if err == nil {
			won++
		}
	}
	if won != 1 {
		t.Errorf("%d registrations of the same name succeeded, want exactly 1", won)
	}
}
