package uarch

import (
	"strings"
	"testing"
)

func TestStockMachinesValidate(t *testing.T) {
	for _, m := range StockMachines() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestTableTwoParameters(t *testing.T) {
	// The machine-visible model parameters must match the paper's Table 2.
	cases := []struct {
		m                         *Machine
		width, depth, l2, l3, mem int
		tlb                       int
	}{
		{PentiumFour(), 3, 31, 31, 0, 313, 70},
		{CoreTwo(), 4, 14, 19, 0, 169, 30},
		{CoreI7(), 4, 14, 14, 30, 160, 40},
	}
	for _, c := range cases {
		p := c.m.Params()
		if p.DispatchWidth != c.width {
			t.Errorf("%s width %d, want %d", c.m.Name, p.DispatchWidth, c.width)
		}
		if p.FrontEndDepth != c.depth {
			t.Errorf("%s depth %d, want %d", c.m.Name, p.FrontEndDepth, c.depth)
		}
		if p.L2Lat != c.l2 {
			t.Errorf("%s L2 lat %d, want %d", c.m.Name, p.L2Lat, c.l2)
		}
		if p.L3Lat != c.l3 {
			t.Errorf("%s L3 lat %d, want %d", c.m.Name, p.L3Lat, c.l3)
		}
		if p.MemLat != c.mem {
			t.Errorf("%s mem lat %d, want %d", c.m.Name, p.MemLat, c.mem)
		}
		if p.TLBLat != c.tlb {
			t.Errorf("%s TLB lat %d, want %d", c.m.Name, p.TLBLat, c.tlb)
		}
	}
}

func TestTableOneCaches(t *testing.T) {
	p4, c2, i7 := PentiumFour(), CoreTwo(), CoreI7()
	if p4.L1D.SizeBytes != 16<<10 {
		t.Errorf("P4 L1D %d, want 16KB", p4.L1D.SizeBytes)
	}
	if p4.L2.SizeBytes != 1<<20 {
		t.Errorf("P4 L2 %d, want 1MB", p4.L2.SizeBytes)
	}
	if p4.HasL3() {
		t.Error("P4 should not have L3")
	}
	if c2.L2.SizeBytes != 4<<20 {
		t.Errorf("Core2 L2 %d, want 4MB", c2.L2.SizeBytes)
	}
	if c2.HasL3() {
		t.Error("Core2 should not have L3")
	}
	if i7.L2.SizeBytes != 256<<10 {
		t.Errorf("i7 L2 %d, want 256KB", i7.L2.SizeBytes)
	}
	if !i7.HasL3() || i7.L3.SizeBytes != 8<<20 {
		t.Errorf("i7 L3 %d, want 8MB", i7.L3.SizeBytes)
	}
}

func TestGenerationTrends(t *testing.T) {
	p4, c2, i7 := PentiumFour(), CoreTwo(), CoreI7()
	// Fusion improves across generations.
	if !(p4.FusionRate < c2.FusionRate && c2.FusionRate < i7.FusionRate) {
		t.Error("fusion rate should grow across generations")
	}
	// i7 ROB larger than Core 2 (paper explains growing branch resolution
	// time on i7 via the larger window).
	if i7.ROBSize <= c2.ROBSize {
		t.Error("i7 ROB should exceed Core 2 ROB")
	}
	// Memory latency improves after P4.
	if !(p4.MemLat > c2.MemLat && c2.MemLat > i7.MemLat) {
		t.Error("memory latency should shrink across generations")
	}
}

func TestCacheConfigSetsAndValid(t *testing.T) {
	c := CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, LatCycles: 3}
	if c.Sets() != 64 {
		t.Errorf("sets %d, want 64", c.Sets())
	}
	if err := c.Valid(); err != nil {
		t.Error(err)
	}
	bad := CacheConfig{SizeBytes: 3000, LineBytes: 64, Assoc: 2}
	if err := bad.Valid(); err == nil {
		t.Error("expected invalid geometry error")
	}
	zero := CacheConfig{}
	if zero.Sets() != 0 {
		t.Error("zero config should have 0 sets")
	}
	if err := zero.Valid(); err == nil {
		t.Error("zero config should be invalid")
	}
	nonPow2 := CacheConfig{SizeBytes: 24 << 10, LineBytes: 64, Assoc: 2} // 192 sets
	if err := nonPow2.Valid(); err == nil {
		t.Error("non-power-of-two sets should be invalid")
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	breakers := []func(*Machine){
		func(m *Machine) { m.Name = "" },
		func(m *Machine) { m.DispatchWidth = 0 },
		func(m *Machine) { m.FrontEndDepth = 0 },
		func(m *Machine) { m.ROBSize = 0 },
		func(m *Machine) { m.IQSize = m.ROBSize + 1 },
		func(m *Machine) { m.MSHRs = 0 },
		func(m *Machine) { m.L1D.Assoc = 0 },
		func(m *Machine) { m.MemLat = 0 },
		func(m *Machine) { m.DTLB.Entries = 0 },
		func(m *Machine) { m.FusionRate = 1.5 },
	}
	for i, breaker := range breakers {
		m := CoreTwo()
		breaker(m)
		if err := m.Validate(); err == nil {
			t.Errorf("breaker %d: expected validation error", i)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"pentium4", "core2", "corei7"} {
		m, err := ByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("ByName(%s) returned %s", name, m.Name)
		}
	}
	if _, err := ByName("atom"); err == nil || !strings.Contains(err.Error(), "unknown machine") {
		t.Errorf("expected unknown machine error, got %v", err)
	}
}

func TestPredictorKindString(t *testing.T) {
	if PredBimodal.String() != "bimodal" || PredGshare.String() != "gshare" ||
		PredTournament.String() != "tournament" {
		t.Error("predictor kind strings wrong")
	}
	if PredictorKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestLLCLoadMissLat(t *testing.T) {
	if CoreTwo().LLCLoadMissLat() != 169 {
		t.Error("LLC miss latency should be memory latency")
	}
}

func TestConfigHashStableAndSensitive(t *testing.T) {
	a, b := CoreI7(), CoreI7()
	if a.ConfigHash() != b.ConfigHash() {
		t.Error("identical configs must hash equal")
	}
	if len(a.ConfigHash()) != 64 {
		t.Errorf("hash length %d, want 64 hex chars", len(a.ConfigHash()))
	}
	b.MSHRs++
	if a.ConfigHash() == b.ConfigHash() {
		t.Error("changing MSHRs must change the hash")
	}
	c := CoreI7()
	c.Prefetch = PrefetchConfig{Enabled: true, Streams: 64, Degree: 4}
	if a.ConfigHash() == c.ConfigHash() {
		t.Error("enabling the prefetcher must change the hash")
	}
	names := map[string]bool{}
	for _, m := range StockMachines() {
		names[m.ConfigHash()] = true
	}
	if len(names) != 3 {
		t.Errorf("stock machines share a hash: %d unique", len(names))
	}
}
