package uarch

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrUnknownMachine is wrapped by ByName failures for names absent from
// the registry. Callers (the serving layer's error classifier) match it
// with errors.Is — never by error text, which a machine name could
// collide with.
var ErrUnknownMachine = errors.New("unknown machine")

// The machine registry maps names to configuration factories, in the
// declarative-registry style config-driven systems use for module
// wiring: consumers ask for machines by name and never hard-code the
// available set. The stock paper machines self-register in init; derived
// variants can be registered at runtime (RegisterDerived) or built ad
// hoc (Derive) without touching the registry.
var (
	regMu    sync.RWMutex
	registry = map[string]func() *Machine{}
)

// Register adds a named machine factory. The factory must return a fresh
// Machine on every call (callers mutate the returned value freely). The
// name must match the Name of the machines the factory produces.
// Registering a name twice is an error, so two packages cannot silently
// fight over a configuration.
func Register(name string, factory func() *Machine) error {
	if name == "" {
		return fmt.Errorf("uarch: cannot register machine with empty name")
	}
	if factory == nil {
		return fmt.Errorf("uarch: nil factory for machine %q", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("uarch: machine %q already registered", name)
	}
	registry[name] = factory
	return nil
}

// MustRegister is Register, panicking on error. For init-time wiring of
// statically known machines, where a failure is a programming bug.
func MustRegister(name string, factory func() *Machine) {
	if err := Register(name, factory); err != nil {
		panic(err)
	}
}

// Names returns all registered machine names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName returns a fresh instance of the registered machine.
func ByName(name string) (*Machine, error) {
	regMu.RLock()
	factory, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("uarch: %w %q (registered: %v)", ErrUnknownMachine, name, Names())
	}
	m := factory()
	if m.Name != name {
		return nil, fmt.Errorf("uarch: factory for %q produced machine named %q", name, m.Name)
	}
	return m, nil
}

// CacheOverrides selects cache-geometry parameters to change in a
// derived machine. Zero-valued fields keep the base geometry.
type CacheOverrides struct {
	SizeBytes int `json:"sizeBytes,omitempty"`
	LineBytes int `json:"lineBytes,omitempty"`
	Assoc     int `json:"assoc,omitempty"`
	LatCycles int `json:"latCycles,omitempty"`
}

func (o CacheOverrides) apply(c *CacheConfig) {
	if o.SizeBytes > 0 {
		c.SizeBytes = o.SizeBytes
	}
	if o.LineBytes > 0 {
		c.LineBytes = o.LineBytes
	}
	if o.Assoc > 0 {
		c.Assoc = o.Assoc
	}
	if o.LatCycles > 0 {
		c.LatCycles = o.LatCycles
	}
}

// Overrides selects machine parameters to change in a derived machine.
// Zero-valued fields keep the base value (every overridable parameter is
// strictly positive on a valid machine, except FusionRate, which uses a
// pointer so an explicit 0 is expressible). The JSON form is what
// campaign scenario files embed.
type Overrides struct {
	DispatchWidth int `json:"dispatchWidth,omitempty"`
	IssueWidth    int `json:"issueWidth,omitempty"`
	CommitWidth   int `json:"commitWidth,omitempty"`
	FrontEndDepth int `json:"frontEndDepth,omitempty"`
	ROBSize       int `json:"robSize,omitempty"`
	IQSize        int `json:"iqSize,omitempty"`
	LoadQueueSize int `json:"loadQueueSize,omitempty"`
	MSHRs         int `json:"mshrs,omitempty"`
	MemLat        int `json:"memLat,omitempty"`

	L1I CacheOverrides `json:"l1i,omitzero"`
	L1D CacheOverrides `json:"l1d,omitzero"`
	L2  CacheOverrides `json:"l2,omitzero"`
	L3  CacheOverrides `json:"l3,omitzero"`

	FusionRate *float64 `json:"fusionRate,omitempty"`
}

// Derive produces a named variant of base with the given overrides
// applied, leaving base untouched. The result is validated, so a
// geometrically impossible variant (say, an IQ larger than the shrunken
// ROB) fails here rather than deep inside the simulator. ConfigHash
// flows through automatically: any effective override — including the
// new name — yields a distinct hash, so run stores never alias a variant
// to its base.
func Derive(base *Machine, name string, ov Overrides) (*Machine, error) {
	if name == "" {
		return nil, fmt.Errorf("uarch: derived machine needs a name")
	}
	m := *base
	m.Name = name
	for _, f := range []struct {
		v   int
		dst *int
	}{
		{ov.DispatchWidth, &m.DispatchWidth},
		{ov.IssueWidth, &m.IssueWidth},
		{ov.CommitWidth, &m.CommitWidth},
		{ov.FrontEndDepth, &m.FrontEndDepth},
		{ov.ROBSize, &m.ROBSize},
		{ov.IQSize, &m.IQSize},
		{ov.LoadQueueSize, &m.LoadQueueSize},
		{ov.MSHRs, &m.MSHRs},
		{ov.MemLat, &m.MemLat},
	} {
		if f.v > 0 {
			*f.dst = f.v
		}
	}
	ov.L1I.apply(&m.L1I)
	ov.L1D.apply(&m.L1D)
	ov.L2.apply(&m.L2)
	ov.L3.apply(&m.L3)
	if ov.FusionRate != nil {
		m.FusionRate = *ov.FusionRate
	}
	// Shrinking the ROB under the base IQ is the one coupling a sweep
	// constantly trips over; follow the window down unless the caller
	// pinned the IQ explicitly.
	if ov.IQSize == 0 && m.IQSize > m.ROBSize {
		m.IQSize = m.ROBSize
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("uarch: derive %q from %q: %w", name, base.Name, err)
	}
	return &m, nil
}

// RegisterDerived derives a variant from a registered base machine and
// registers it under its own name.
func RegisterDerived(base, name string, ov Overrides) error {
	b, err := ByName(base)
	if err != nil {
		return err
	}
	if _, err := Derive(b, name, ov); err != nil {
		return err
	}
	return Register(name, func() *Machine {
		b, err := ByName(base)
		if err != nil {
			panic(err) // base was registered above; registrations are permanent
		}
		m, err := Derive(b, name, ov)
		if err != nil {
			panic(err) // validated above against the same base
		}
		return m
	})
}
