// Package uarch defines micro-architecture configurations for the
// simulated machines. The three stock configurations mirror the paper's
// Table 1 and Table 2: a Pentium 4-like deep/narrow NetBurst core, a
// Core 2-like wide/shallow core with a large L2, and a Core i7-like core
// with a three-level cache hierarchy.
//
// These configurations feed two consumers: the cycle-level simulator in
// internal/sim (which plays the role of the real hardware) and the
// mechanistic-empirical model in internal/core (which only sees the
// "machine parameters" a modeler would know: dispatch width, front-end
// depth, and the cache/TLB/memory latencies from Table 2).
package uarch

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	LineBytes int // line size
	Assoc     int // set associativity
	LatCycles int // access latency on hit at this level (cycles, load-to-use)
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int {
	if c.SizeBytes == 0 || c.LineBytes == 0 || c.Assoc == 0 {
		return 0
	}
	return c.SizeBytes / (c.LineBytes * c.Assoc)
}

// Valid checks geometric consistency.
func (c CacheConfig) Valid() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("uarch: cache config has non-positive geometry: %+v", c)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("uarch: cache size %d not divisible by line*assoc", c.SizeBytes)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("uarch: cache sets %d not a power of two", s)
	}
	return nil
}

// TLBConfig describes a TLB.
type TLBConfig struct {
	Entries   int
	PageBytes int
	MissLat   int // page-walk latency in cycles (Table 2 "TLB" column)
}

// PredictorKind selects the branch predictor implementation.
type PredictorKind int

// Predictor kinds.
const (
	PredBimodal PredictorKind = iota
	PredGshare
	PredTournament
)

func (k PredictorKind) String() string {
	switch k {
	case PredBimodal:
		return "bimodal"
	case PredGshare:
		return "gshare"
	case PredTournament:
		return "tournament"
	default:
		return fmt.Sprintf("PredictorKind(%d)", int(k))
	}
}

// PrefetchConfig describes an optional stride prefetcher attached to the
// L2 cache (a Core/Nehalem-era "streamer"). Disabled in the stock
// machine configurations so the documented paper numbers are exactly
// reproducible; enable it to explore its effect (see the prefetch
// ablation bench and example).
type PrefetchConfig struct {
	Enabled bool
	Streams int // stream-table entries (power of two)
	Degree  int // lines prefetched per confident trigger
}

// PredictorConfig describes the branch predictor.
type PredictorConfig struct {
	Kind        PredictorKind
	TableBits   int // log2 of pattern table entries
	HistoryBits int // global history length (gshare/tournament)
}

// Machine is a complete micro-architecture description.
type Machine struct {
	Name string

	// Core.
	DispatchWidth int // D in Eq. 1 (dispatch = front-end exit width)
	IssueWidth    int
	CommitWidth   int
	FrontEndDepth int // c_fe: branch misprediction front-end refill penalty
	ROBSize       int
	IQSize        int
	LoadQueueSize int
	MSHRs         int // outstanding misses to memory (bounds achievable MLP)

	// Functional unit latencies (cycles).
	IntLat   int
	MulLat   int
	FPLat    int
	DivLat   int
	LoadAGU  int // address-generation cycles before cache access
	StoreLat int

	// Memory hierarchy. L3 is optional (SizeBytes==0 means absent).
	L1I, L1D, L2, L3 CacheConfig
	MemLat           int // main memory access latency (cycles)
	ITLB, DTLB       TLBConfig

	Predictor PredictorConfig
	Prefetch  PrefetchConfig

	// FusionRate is the fraction of fusible µop pairs the decoder
	// actually fuses into a single dispatched/committed µop
	// (micro-/macro-fusion). NetBurst fuses nothing; Core/Nehalem fuse
	// increasingly — the paper's "µop fusion" delta-stack component.
	FusionRate float64
}

// ConfigHash returns a stable content hash of the complete configuration.
// Two machines hash equal iff every architectural parameter is equal, so
// the hash can key caches of simulation results: any config change —
// including adding a field to Machine — yields a new hash and therefore a
// cold cache entry, never a stale hit.
func (m *Machine) ConfigHash() string {
	b, err := json.Marshal(m)
	if err != nil {
		// Machine is a plain struct of scalars; marshalling cannot fail.
		panic(fmt.Sprintf("uarch: marshal %s: %v", m.Name, err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// HasL3 reports whether the machine has a third cache level.
func (m *Machine) HasL3() bool { return m.L3.SizeBytes > 0 }

// LLCLoadMissLat returns the latency a demand load pays on a last-level
// cache miss (the model's c_mem).
func (m *Machine) LLCLoadMissLat() int { return m.MemLat }

// Validate checks internal consistency of the configuration.
func (m *Machine) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("uarch: machine has no name")
	}
	if m.DispatchWidth <= 0 || m.IssueWidth <= 0 || m.CommitWidth <= 0 {
		return fmt.Errorf("uarch: %s: non-positive width", m.Name)
	}
	if m.FrontEndDepth <= 0 {
		return fmt.Errorf("uarch: %s: non-positive front-end depth", m.Name)
	}
	if m.ROBSize <= 0 || m.IQSize <= 0 {
		return fmt.Errorf("uarch: %s: non-positive window sizes", m.Name)
	}
	if m.IQSize > m.ROBSize {
		return fmt.Errorf("uarch: %s: IQ (%d) larger than ROB (%d)", m.Name, m.IQSize, m.ROBSize)
	}
	if m.MSHRs <= 0 {
		return fmt.Errorf("uarch: %s: need at least one MSHR", m.Name)
	}
	for _, c := range []struct {
		name string
		cfg  CacheConfig
	}{{"L1I", m.L1I}, {"L1D", m.L1D}, {"L2", m.L2}} {
		if err := c.cfg.Valid(); err != nil {
			return fmt.Errorf("%s %s: %w", m.Name, c.name, err)
		}
	}
	if m.HasL3() {
		if err := m.L3.Valid(); err != nil {
			return fmt.Errorf("%s L3: %w", m.Name, err)
		}
	}
	if m.MemLat <= 0 {
		return fmt.Errorf("uarch: %s: non-positive memory latency", m.Name)
	}
	if m.ITLB.Entries <= 0 || m.DTLB.Entries <= 0 || m.ITLB.PageBytes <= 0 || m.DTLB.PageBytes <= 0 {
		return fmt.Errorf("uarch: %s: invalid TLB config", m.Name)
	}
	if m.FusionRate < 0 || m.FusionRate > 1 {
		return fmt.Errorf("uarch: %s: fusion rate %v outside [0,1]", m.Name, m.FusionRate)
	}
	if m.Prefetch.Enabled {
		if m.Prefetch.Streams <= 0 || m.Prefetch.Streams&(m.Prefetch.Streams-1) != 0 {
			return fmt.Errorf("uarch: %s: prefetch streams %d must be a power of two", m.Name, m.Prefetch.Streams)
		}
		if m.Prefetch.Degree <= 0 || m.Prefetch.Degree > 16 {
			return fmt.Errorf("uarch: %s: prefetch degree %d out of range", m.Name, m.Prefetch.Degree)
		}
	}
	return nil
}

// ModelParams are the machine-only model inputs of the paper's Table 2:
// everything the mechanistic-empirical model needs to know about the
// hardware (as opposed to the counter values, which are per workload).
type ModelParams struct {
	DispatchWidth int
	FrontEndDepth int // c_fe
	L2Lat         int // c_L2: L1 I-miss penalty
	L3Lat         int // c_L3: L2 I-miss penalty on 3-level machines (0 if absent)
	MemLat        int // c_mem
	TLBLat        int // c_TLB
}

// Params extracts the model-visible machine parameters using the
// specification values. In the full pipeline these latencies are instead
// estimated with internal/calibrator microbenchmarks, exactly as the
// paper runs the Calibrator tool rather than trusting spec sheets.
func (m *Machine) Params() ModelParams {
	p := ModelParams{
		DispatchWidth: m.DispatchWidth,
		FrontEndDepth: m.FrontEndDepth,
		L2Lat:         m.L2.LatCycles,
		MemLat:        m.MemLat,
		TLBLat:        m.DTLB.MissLat,
	}
	if m.HasL3() {
		p.L3Lat = m.L3.LatCycles
	}
	return p
}

// PentiumFour returns the Pentium 4 (NetBurst, Prescott)-like machine:
// narrow (3-wide), very deep (31-stage front end), small L1 caches, 1MB
// L2, slow memory (313 cycles), slow TLB walks (70 cycles). Table 1/2.
func PentiumFour() *Machine {
	return &Machine{
		Name:          "pentium4",
		DispatchWidth: 3,
		IssueWidth:    3,
		CommitWidth:   3,
		FrontEndDepth: 31,
		ROBSize:       126,
		IQSize:        64,
		LoadQueueSize: 48,
		MSHRs:         8,
		IntLat:        1,
		MulLat:        4,
		FPLat:         5,
		DivLat:        23,
		LoadAGU:       1,
		StoreLat:      1,
		// Trace cache of 12K µops modeled as a small 8KB L1I equivalent.
		L1I:    CacheConfig{SizeBytes: 8 << 10, LineBytes: 64, Assoc: 4, LatCycles: 1},
		L1D:    CacheConfig{SizeBytes: 16 << 10, LineBytes: 64, Assoc: 8, LatCycles: 4},
		L2:     CacheConfig{SizeBytes: 1 << 20, LineBytes: 64, Assoc: 8, LatCycles: 31},
		MemLat: 313,
		ITLB:   TLBConfig{Entries: 64, PageBytes: 4096, MissLat: 70},
		DTLB:   TLBConfig{Entries: 64, PageBytes: 4096, MissLat: 70},
		// The P4's predictor is *more* accurate than Core 2's (paper §6:
		// MPKI 4.1 vs 5.8 on CPU2006) — large tournament predictor.
		Predictor:  PredictorConfig{Kind: PredTournament, TableBits: 14, HistoryBits: 14},
		FusionRate: 0, // NetBurst: no fusion
	}
}

// CoreTwo returns the Core 2 (Conroe)-like machine: 4-wide, 14-stage
// front end, 32KB L1s, 4MB L2, 169-cycle memory, 30-cycle TLB walk.
func CoreTwo() *Machine {
	return &Machine{
		Name:          "core2",
		DispatchWidth: 4,
		IssueWidth:    4,
		CommitWidth:   4,
		FrontEndDepth: 14,
		ROBSize:       96,
		IQSize:        32,
		LoadQueueSize: 32,
		MSHRs:         8,
		IntLat:        1,
		MulLat:        3,
		FPLat:         4,
		DivLat:        18,
		LoadAGU:       1,
		StoreLat:      1,
		L1I:           CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, LatCycles: 1},
		L1D:           CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, LatCycles: 3},
		L2:            CacheConfig{SizeBytes: 4 << 20, LineBytes: 64, Assoc: 16, LatCycles: 19},
		MemLat:        169,
		ITLB:          TLBConfig{Entries: 128, PageBytes: 4096, MissLat: 30},
		DTLB:          TLBConfig{Entries: 256, PageBytes: 4096, MissLat: 30},
		// Smaller predictor than the P4 (paper observes more mispredictions
		// on Core 2), compensated by the shallow pipeline.
		Predictor:  PredictorConfig{Kind: PredGshare, TableBits: 12, HistoryBits: 10},
		FusionRate: 0.55, // micro-fusion
	}
}

// CoreI7 returns the Core i7 (Nehalem, Bloomfield)-like machine: 4-wide,
// 14-stage front end, 256KB L2 + 8MB L3, 160-cycle memory, 40-cycle TLB.
func CoreI7() *Machine {
	return &Machine{
		Name:          "corei7",
		DispatchWidth: 4,
		IssueWidth:    4,
		CommitWidth:   4,
		FrontEndDepth: 14,
		ROBSize:       128,
		IQSize:        36,
		LoadQueueSize: 48,
		MSHRs:         16, // Nehalem's key memory-side advance: much deeper
		// miss handling (integrated memory controller) → more MLP
		IntLat:   1,
		MulLat:   3,
		FPLat:    4,
		DivLat:   18,
		LoadAGU:  1,
		StoreLat: 1,
		L1I:      CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 4, LatCycles: 1},
		L1D:      CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Assoc: 8, LatCycles: 4},
		L2:       CacheConfig{SizeBytes: 256 << 10, LineBytes: 64, Assoc: 8, LatCycles: 14},
		L3:       CacheConfig{SizeBytes: 8 << 20, LineBytes: 64, Assoc: 16, LatCycles: 30},
		MemLat:   160,
		ITLB:     TLBConfig{Entries: 128, PageBytes: 4096, MissLat: 40},
		DTLB:     TLBConfig{Entries: 512, PageBytes: 4096, MissLat: 40},
		// Better predictor than Core 2 (paper: fewer mispredictions on i7,
		// but a larger ROB lengthens resolution time).
		Predictor:  PredictorConfig{Kind: PredTournament, TableBits: 13, HistoryBits: 12},
		FusionRate: 0.75, // micro- + macro-fusion
	}
}

// StockMachines returns the three machines of the paper, in generation
// order: Pentium 4, Core 2, Core i7.
func StockMachines() []*Machine {
	return []*Machine{PentiumFour(), CoreTwo(), CoreI7()}
}

// The paper's machines are the registry's built-ins.
func init() {
	MustRegister("pentium4", PentiumFour)
	MustRegister("core2", CoreTwo)
	MustRegister("corei7", CoreI7)
}
