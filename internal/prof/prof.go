// Package prof wires the runtime's CPU and heap profilers into the
// command-line tools. Every batch CLI (mecpi, sweep, experiments)
// exposes -cpuprofile/-memprofile flags through Start, so any slow run
// can be reprofiled with the exact flags that produced it; the daemon
// uses net/http/pprof on a dedicated listener instead (see cmd/mecpid).
//
// The helpers treat an empty path as "profiling off" so callers can
// pass flag values through unconditionally.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile at cpuPath (when non-empty) and returns a
// stop function that ends the CPU profile and writes a heap profile to
// memPath (when non-empty). The stop function must be called before the
// process exits — a CPU profile is only valid once stopped — and is
// safe to call when both paths are empty, so callers can defer it
// unconditionally.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	stopCPU, err := StartCPU(cpuPath)
	if err != nil {
		return nil, err
	}
	return func() error {
		err := stopCPU()
		if herr := WriteHeap(memPath); herr != nil && err == nil {
			err = herr
		}
		return err
	}, nil
}

// StartCPU begins a CPU profile written to path and returns the
// function that stops it and closes the file. An empty path is a no-op.
func StartCPU(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: %s: %w", path, err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		return nil
	}, nil
}

// WriteHeap writes an allocation profile to path. It runs a GC first so
// the profile reflects live objects at the call, not whenever the last
// cycle happened to finish. An empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	runtime.GC()
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("prof: %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	return nil
}
