package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn a little CPU and heap so the profiles have content.
	sink := 0
	buf := make([]byte, 1<<16)
	for i := range buf {
		sink += int(buf[i]) + i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("stat %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
}

func TestEmptyPathsAreNoOps(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := WriteHeap(""); err != nil {
		t.Fatalf("WriteHeap: %v", err)
	}
}

func TestStartCPUBadPath(t *testing.T) {
	if _, err := StartCPU(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Fatal("expected error for unwritable path")
	}
}
