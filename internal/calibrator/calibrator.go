// Package calibrator estimates the memory-system latencies of a machine
// by running microbenchmarks against it — the role the Calibrator tool
// plays in the paper (Section 4): cache and TLB miss latencies "are not
// as easily obtained" from spec sheets, so they are measured with
// parameterized pointer-chase kernels on the target.
//
// Two experiments run against the machine's memory hierarchy:
//
//  1. A footprint sweep with line-stride dependent accesses. When the
//     working set exceeds a cache level, every access misses that level
//     and the median access latency jumps to the next level's latency.
//     Clustering the per-footprint medians yields one plateau per level:
//     L1, L2, (L3,) memory.
//
//  2. A TLB experiment: a fixed number of cache lines is spread first
//     densely (TLB-resident) and then sparsely across pages (TLB
//     thrashing) while staying L1-resident; the median latency difference
//     is the TLB miss (page walk) latency.
//
// The estimates feed uarch.ModelParams, exactly as the paper feeds
// Calibrator output into the model instead of trusting documentation.
package calibrator

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/uarch"
)

// Version identifies the calibration algorithm (sweep geometry, pass
// counts, plateau clustering). Content-addressed caches of calibration
// Results key on it in addition to sim.Version, so bump it whenever a
// change here can alter an estimate.
const Version = "cal-v1"

// Estimates holds measured latencies in cycles.
type Estimates struct {
	L1Lat  int // L1 load-to-use (not a model input, but reported)
	L2Lat  int // model's c_L2
	L3Lat  int // model's c_L3 (0 when the machine has two levels)
	MemLat int // model's c_mem
	TLBLat int // model's c_TLB
}

// SweepPoint is one footprint-sweep observation (for reporting).
type SweepPoint struct {
	FootprintBytes int64
	MedianLat      float64
}

// Result bundles estimates with the raw sweep for inspection.
type Result struct {
	Estimates Estimates
	Sweep     []SweepPoint
}

// Params converts estimates into the machine-side model parameters,
// taking dispatch width and front-end depth from the specification (those
// two are documented, as the paper notes: "easy to determine from reading
// the processor specifications").
func (e Estimates) Params(m *uarch.Machine) uarch.ModelParams {
	return uarch.ModelParams{
		DispatchWidth: m.DispatchWidth,
		FrontEndDepth: m.FrontEndDepth,
		L2Lat:         e.L2Lat,
		L3Lat:         e.L3Lat,
		MemLat:        e.MemLat,
		TLBLat:        e.TLBLat,
	}
}

// chase performs passes of dependent accesses over the given address
// sequence and returns the median access latency of the final pass.
// Earlier passes warm the hierarchy.
func chase(h *cache.Hierarchy, addrs []uint64, passes int) float64 {
	if passes < 2 {
		passes = 2
	}
	var lats []int
	for p := 0; p < passes; p++ {
		record := p == passes-1
		if record {
			lats = make([]int, 0, len(addrs))
		}
		for _, a := range addrs {
			r := h.Do(cache.Access{Addr: a})
			if record {
				lats = append(lats, r.Lat)
			}
		}
	}
	sort.Ints(lats)
	return float64(lats[len(lats)/2])
}

// sweepAddrs builds a line-stride footprint walk. Consecutive lines cycle
// through the footprint; with true LRU a footprint exceeding a level's
// capacity misses that level on every access.
func sweepAddrs(base uint64, footprint int64, line int64) []uint64 {
	n := footprint / line
	addrs := make([]uint64, n)
	for i := int64(0); i < n; i++ {
		addrs[i] = base + uint64(i*line)
	}
	return addrs
}

// Calibrate measures the machine's latencies. It builds a fresh memory
// hierarchy for the machine, so it never disturbs a simulator's state.
func Calibrate(m *uarch.Machine) (*Result, error) {
	h, err := cache.NewHierarchy(m)
	if err != nil {
		return nil, err
	}
	const base = uint64(0x4000_0000)
	line := int64(m.L1D.LineBytes)

	// --- Footprint sweep: 4KB … 4× the largest cache (or 64MB minimum
	// ceiling) in ×2 steps.
	maxCache := int64(m.L2.SizeBytes)
	if m.HasL3() && int64(m.L3.SizeBytes) > maxCache {
		maxCache = int64(m.L3.SizeBytes)
	}
	limit := maxCache * 4
	if limit < 64<<20 {
		limit = 64 << 20
	}
	var sweep []SweepPoint
	for fp := int64(4 << 10); fp <= limit; fp *= 2 {
		h.Reset()
		med := chase(h, sweepAddrs(base, fp, line), 3)
		sweep = append(sweep, SweepPoint{FootprintBytes: fp, MedianLat: med})
	}

	// Cluster the plateau values: collect distinct medians (within a
	// ±1-cycle tolerance) in ascending footprint order.
	var plateaus []float64
	for _, p := range sweep {
		if len(plateaus) == 0 || p.MedianLat > plateaus[len(plateaus)-1]+1 {
			plateaus = append(plateaus, p.MedianLat)
		}
	}
	wantLevels := 3
	if m.HasL3() {
		wantLevels = 4
	}
	if len(plateaus) < wantLevels {
		return nil, fmt.Errorf("calibrator: found %d latency plateaus on %s, want %d (sweep: %v)",
			len(plateaus), m.Name, wantLevels, sweep)
	}
	// More plateaus than levels means a transition point produced an
	// intermediate median; keep the first (L1), last (memory), and the
	// best-separated interior values.
	est := Estimates{L1Lat: int(plateaus[0] + 0.5)}
	if m.HasL3() {
		est.L2Lat = int(plateaus[1] + 0.5)
		est.L3Lat = int(plateaus[2] + 0.5)
	} else {
		est.L2Lat = int(plateaus[1] + 0.5)
	}
	est.MemLat = int(plateaus[len(plateaus)-1] + 0.5)

	// --- TLB experiment: the same set of cache lines laid out densely
	// (few pages — TLB-resident) and sparsely (one line per page, 4× the
	// TLB reach — every access walks the page table). Keeping the line
	// count identical keeps both walks at the same cache level, so the
	// median latency difference isolates the page-walk cost. Line offsets
	// are staggered within each sparse page so cache sets are used
	// uniformly (page-aligned addresses would all collide in one set).
	page := int64(m.DTLB.PageBytes)
	nLines := int64(m.DTLB.Entries) * 4
	linesPerPage := page / line
	if linesPerPage < 1 {
		linesPerPage = 1
	}
	// The sparse walk's page-aligned component only varies the high set
	// bits, so the in-page offset must supply the remaining set bits of
	// the cache level the walk lives in. With sets = S = linesPerPage·M,
	// offset (i/M) mod linesPerPage makes line(i) → set a bijection over
	// each window of S consecutive i, i.e. perfectly uniform set usage.
	target := m.L1D
	for _, c := range []uarch.CacheConfig{m.L2, m.L3} {
		if int64(target.SizeBytes) < nLines*line && c.SizeBytes > 0 {
			target = c
		}
	}
	mBits := int64(target.Sets()) / linesPerPage
	if mBits < 1 {
		mBits = 1
	}
	dense := make([]uint64, nLines)
	sparse := make([]uint64, nLines)
	for i := int64(0); i < nLines; i++ {
		off := uint64(((i / mBits) % linesPerPage) * line)
		dense[i] = base + uint64(i*line)
		sparse[i] = base + uint64(i)*uint64(page) + off
	}
	h.Reset()
	denseLat := chase(h, dense, 3)
	h.Reset()
	sparseLat := chase(h, sparse, 3)
	tlb := int(sparseLat - denseLat + 0.5)
	if tlb < 0 {
		tlb = 0
	}
	est.TLBLat = tlb

	return &Result{Estimates: est, Sweep: sweep}, nil
}
