package calibrator

import (
	"testing"

	"repro/internal/uarch"
)

func TestCalibrateRecoversTableTwo(t *testing.T) {
	// The calibrator must recover the configured latencies (Table 2)
	// within a small tolerance — this is the whole point of the tool.
	cases := []struct {
		m *uarch.Machine
	}{
		{uarch.PentiumFour()},
		{uarch.CoreTwo()},
		{uarch.CoreI7()},
	}
	for _, c := range cases {
		res, err := Calibrate(c.m)
		if err != nil {
			t.Fatalf("%s: %v", c.m.Name, err)
		}
		e := res.Estimates
		within := func(got, want, tol int, what string) {
			if got < want-tol || got > want+tol {
				t.Errorf("%s %s: measured %d, configured %d", c.m.Name, what, got, want)
			}
		}
		within(e.L1Lat, c.m.L1D.LatCycles, 1, "L1 latency")
		within(e.L2Lat, c.m.L2.LatCycles, 2, "L2 latency")
		if c.m.HasL3() {
			within(e.L3Lat, c.m.L3.LatCycles, 2, "L3 latency")
		} else if e.L3Lat != 0 {
			t.Errorf("%s: spurious L3 latency %d on 2-level machine", c.m.Name, e.L3Lat)
		}
		within(e.MemLat, c.m.MemLat, 3, "memory latency")
		within(e.TLBLat, c.m.DTLB.MissLat, 3, "TLB miss latency")
	}
}

func TestSweepMonotone(t *testing.T) {
	res, err := Calibrate(uarch.CoreTwo())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweep) < 6 {
		t.Fatalf("sweep too short: %d points", len(res.Sweep))
	}
	prev := 0.0
	for _, p := range res.Sweep {
		if p.MedianLat < prev-0.5 {
			t.Errorf("sweep median decreased at %dKB: %.1f after %.1f",
				p.FootprintBytes/1024, p.MedianLat, prev)
		}
		if p.MedianLat > prev {
			prev = p.MedianLat
		}
	}
	// First point is L1-resident; last is memory-bound.
	first := res.Sweep[0].MedianLat
	last := res.Sweep[len(res.Sweep)-1].MedianLat
	if first >= float64(uarch.CoreTwo().L2.LatCycles) {
		t.Errorf("smallest footprint median %.1f should be L1-like", first)
	}
	if last < float64(uarch.CoreTwo().MemLat) {
		t.Errorf("largest footprint median %.1f should be memory-like", last)
	}
}

func TestParamsMergesSpecAndMeasurement(t *testing.T) {
	m := uarch.CoreI7()
	res, err := Calibrate(m)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Estimates.Params(m)
	if p.DispatchWidth != m.DispatchWidth || p.FrontEndDepth != m.FrontEndDepth {
		t.Error("width/depth must come from the spec")
	}
	if p.L2Lat != res.Estimates.L2Lat || p.MemLat != res.Estimates.MemLat ||
		p.TLBLat != res.Estimates.TLBLat || p.L3Lat != res.Estimates.L3Lat {
		t.Error("latencies must come from the measurement")
	}
}

func TestCalibrateCustomMachine(t *testing.T) {
	// A made-up machine with unusual latencies must also be recovered —
	// the calibrator must not hard-code the stock configs.
	m := uarch.CoreTwo()
	m.Name = "custom"
	m.L2.LatCycles = 25
	m.MemLat = 220
	m.DTLB.MissLat = 55
	res, err := Calibrate(m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates.L2Lat < 23 || res.Estimates.L2Lat > 27 {
		t.Errorf("custom L2: %d", res.Estimates.L2Lat)
	}
	if res.Estimates.MemLat < 215 || res.Estimates.MemLat > 225 {
		t.Errorf("custom mem: %d", res.Estimates.MemLat)
	}
	if res.Estimates.TLBLat < 50 || res.Estimates.TLBLat > 60 {
		t.Errorf("custom TLB: %d", res.Estimates.TLBLat)
	}
}

func TestCalibrateInvalidMachine(t *testing.T) {
	m := uarch.CoreTwo()
	m.L1D.Assoc = 0
	if _, err := Calibrate(m); err == nil {
		t.Error("expected error for invalid machine")
	}
}
