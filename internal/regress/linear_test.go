package regress

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFitLinearExact(t *testing.T) {
	// y = 2x1 - 3x2 + 5, noiseless.
	X := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 3}, {4, 1}, {-1, 2}}
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = 2*x[0] - 3*x[1] + 5
	}
	m, err := FitLinear(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-2) > 1e-9 || math.Abs(m.Weights[1]+3) > 1e-9 || math.Abs(m.Intercept-5) > 1e-9 {
		t.Errorf("got w=%v b=%v", m.Weights, m.Intercept)
	}
	for i, x := range X {
		if math.Abs(m.Predict(x)-y[i]) > 1e-9 {
			t.Errorf("predict sample %d: got %v want %v", i, m.Predict(x), y[i])
		}
	}
}

func TestFitLinearNoisy(t *testing.T) {
	r := rng.New(5)
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		X[i] = []float64{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		y[i] = 1.5*X[i][0] - 0.5*X[i][1] + 2*X[i][2] + 10 + 0.01*r.NormFloat64()
	}
	m, err := FitLinear(X, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, -0.5, 2}
	for j := range want {
		if math.Abs(m.Weights[j]-want[j]) > 0.01 {
			t.Errorf("weight %d: got %v want %v", j, m.Weights[j], want[j])
		}
	}
	if math.Abs(m.Intercept-10) > 0.01 {
		t.Errorf("intercept: got %v want 10", m.Intercept)
	}
}

func TestFitLinearCollinearFallsBackToRidge(t *testing.T) {
	// Second feature is an exact copy of the first: QR must detect
	// singularity and the ridge fallback must still produce a usable fit.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{2, 4, 6, 8}
	m, err := FitLinear(X, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if math.Abs(m.Predict(x)-y[i]) > 1e-3 {
			t.Errorf("collinear predict %d: got %v want %v", i, m.Predict(x), y[i])
		}
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear(nil, nil); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := FitLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected error on length mismatch")
	}
	if _, err := FitLinear([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("expected error on ragged matrix")
	}
}

func TestPredictPanicsOnWrongDims(t *testing.T) {
	m := &Linear{Weights: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestSolveQRSquare(t *testing.T) {
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveQR(A, b)
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Errorf("got %v", x)
	}
}

func TestSolveQRSingular(t *testing.T) {
	A := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	b := []float64{1, 2, 3}
	if _, err := SolveQR(A, b); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestSolveQRUnderdetermined(t *testing.T) {
	A := [][]float64{{1, 2, 3}}
	if _, err := SolveQR(A, []float64{1}); err == nil {
		t.Error("expected error for underdetermined system")
	}
}

func TestSolveCholesky(t *testing.T) {
	A := [][]float64{{4, 2}, {2, 3}}
	b := []float64{10, 9}
	x, err := SolveCholesky(A, b)
	if err != nil {
		t.Fatal(err)
	}
	// 4x+2y=10, 2x+3y=9 → x=1.5, y=2
	if math.Abs(x[0]-1.5) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Errorf("got %v", x)
	}
}

func TestSolveCholeskyNotPD(t *testing.T) {
	A := [][]float64{{0, 0}, {0, 0}}
	if _, err := SolveCholesky(A, []float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

// Property: for random well-conditioned systems, QR reproduces the known
// solution of A·x = b.
func TestSolveQRRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 4
		// Diagonally dominant → well-conditioned.
		A := make([][]float64, n)
		xTrue := make([]float64, n)
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				A[i][j] = r.NormFloat64()
			}
			A[i][i] += 10
			xTrue[i] = r.NormFloat64()
		}
		b := make([]float64, n)
		for i := range b {
			for j := range xTrue {
				b[i] += A[i][j] * xTrue[j]
			}
		}
		x, err := SolveQR(A, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 20}, {5, 30}}
	s, err := FitStandardizer(X)
	if err != nil {
		t.Fatal(err)
	}
	Z := s.ApplyAll(X)
	for j := 0; j < 2; j++ {
		var mean, varr float64
		for i := range Z {
			mean += Z[i][j]
		}
		mean /= float64(len(Z))
		for i := range Z {
			d := Z[i][j] - mean
			varr += d * d
		}
		varr /= float64(len(Z))
		if math.Abs(mean) > 1e-9 || math.Abs(varr-1) > 1e-9 {
			t.Errorf("feature %d: standardized mean %v var %v", j, mean, varr)
		}
	}
}

func TestStandardizerConstantFeature(t *testing.T) {
	X := [][]float64{{7, 1}, {7, 2}, {7, 3}}
	s, err := FitStandardizer(X)
	if err != nil {
		t.Fatal(err)
	}
	z := s.Apply([]float64{7, 2})
	if z[0] != 0 {
		t.Errorf("constant feature should standardize to 0, got %v", z[0])
	}
}

func TestStandardizerErrors(t *testing.T) {
	if _, err := FitStandardizer(nil); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := FitStandardizer([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("expected error on ragged input")
	}
}

func TestFitLinearRelative(t *testing.T) {
	// Exact linear data: relative fit recovers the same coefficients.
	X := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 3}, {4, 1}, {0.5, 2}}
	y := make([]float64, len(X))
	for i, x := range X {
		y[i] = 2*x[0] + 3*x[1] + 5
	}
	m, err := FitLinearRelative(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Weights[0]-2) > 1e-9 || math.Abs(m.Weights[1]-3) > 1e-9 || math.Abs(m.Intercept-5) > 1e-9 {
		t.Errorf("got w=%v b=%v", m.Weights, m.Intercept)
	}
}

func TestFitLinearRelativeWeighting(t *testing.T) {
	// Targets spanning two decades with a non-linear kink: no line fits
	// everything, so the two objectives must trade off differently. The
	// relative fit should win on mean *relative* error.
	X := [][]float64{{1}, {2}, {3}, {100}, {150}, {200}}
	y := []float64{1, 2.6, 3.1, 90, 180, 230}
	abs, err := FitLinear(X, y)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := FitLinearRelative(X, y)
	if err != nil {
		t.Fatal(err)
	}
	mare := func(m *Linear) float64 {
		var s float64
		for i, x := range X {
			s += math.Abs(m.Predict(x)-y[i]) / y[i]
		}
		return s / float64(len(X))
	}
	if mare(rel) > mare(abs)+1e-9 {
		t.Errorf("relative fit should win on relative error: rel %.4f abs %.4f",
			mare(rel), mare(abs))
	}
}

func TestFitLinearRelativeErrors(t *testing.T) {
	if _, err := FitLinearRelative(nil, nil); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := FitLinearRelative([][]float64{{1}}, []float64{0}); err == nil {
		t.Error("expected error on non-positive target")
	}
	if _, err := FitLinearRelative([][]float64{{1, 2}, {1}}, []float64{1, 1}); err == nil {
		t.Error("expected error on ragged matrix")
	}
}

func TestFitLinearRelativeCollinearFallback(t *testing.T) {
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{2, 4, 6, 8}
	m, err := FitLinearRelative(X, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		if math.Abs(m.Predict(x)-y[i]) > 1e-3 {
			t.Errorf("collinear relative predict %d: got %v want %v", i, m.Predict(x), y[i])
		}
	}
}
