package regress

import (
	"fmt"
	"math"
)

// Standardizer rescales features to zero mean and unit variance, which
// both the linear-regression and ANN baselines need for stable training.
// A Standardizer fitted on a training suite is reused unchanged on the
// evaluation suite (as in the paper's cross-validation setup).
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer computes per-feature mean and standard deviation over
// the rows of X. Features with zero variance get Std 1 so they pass
// through unchanged (minus the mean).
func FitStandardizer(X [][]float64) (*Standardizer, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("regress: FitStandardizer on empty matrix")
	}
	p := len(X[0])
	s := &Standardizer{Mean: make([]float64, p), Std: make([]float64, p)}
	for _, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("regress: FitStandardizer ragged matrix")
		}
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Apply returns a standardized copy of x.
func (s *Standardizer) Apply(x []float64) []float64 {
	if len(x) != len(s.Mean) {
		panic(fmt.Sprintf("regress: Standardizer.Apply got %d features, want %d", len(x), len(s.Mean)))
	}
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// ApplyAll standardizes every row of X into a new matrix.
func (s *Standardizer) ApplyAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Apply(row)
	}
	return out
}
