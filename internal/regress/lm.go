package regress

import (
	"math"
)

// ResidualFunc maps a parameter vector to a residual vector. For the
// paper's objective Σ(ŷ−y)²/y, each residual is (ŷᵢ−yᵢ)/√yᵢ so that the
// sum of squared residuals equals the sum of relative squared errors.
type ResidualFunc func(params []float64) []float64

// LMOptions configures the Levenberg–Marquardt refinement.
type LMOptions struct {
	MaxIter  int     // maximum outer iterations (default 100)
	Tol      float64 // relative improvement convergence threshold (default 1e-12)
	Lambda0  float64 // initial damping (default 1e-3)
	FDStep   float64 // finite-difference step for the Jacobian (default 1e-6)
	LambdaUp float64 // damping multiplier on failure (default 10)
	LambdaDn float64 // damping divisor on success (default 10)
}

func (o LMOptions) withDefaults() LMOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	if o.Lambda0 <= 0 {
		o.Lambda0 = 1e-3
	}
	if o.FDStep <= 0 {
		o.FDStep = 1e-6
	}
	if o.LambdaUp <= 1 {
		o.LambdaUp = 10
	}
	if o.LambdaDn <= 1 {
		o.LambdaDn = 10
	}
	return o
}

func sumSq(r []float64) float64 {
	var s float64
	for _, v := range r {
		s += v * v
	}
	return s
}

// LevenbergMarquardt minimizes ||r(p)||² starting from x0, clamped inside
// bounds, using a numerically differentiated Jacobian. It is used to
// polish the Nelder–Mead solution of the mechanistic-empirical fit; on
// its own it is sensitive to the starting point because the model is
// non-convex in the power-law exponents.
func LevenbergMarquardt(resid ResidualFunc, x0 []float64, bounds Bounds, opts LMOptions) Result {
	opts = opts.withDefaults()
	n := len(x0)
	p := bounds.Clamp(x0)
	r := resid(p)
	m := len(r)
	cost := sumSq(r)
	lambda := opts.Lambda0
	iters := 0

	jac := make([][]float64, m)
	for i := range jac {
		jac[i] = make([]float64, n)
	}

	for ; iters < opts.MaxIter; iters++ {
		// Finite-difference Jacobian, column by column.
		for j := 0; j < n; j++ {
			h := opts.FDStep * math.Max(math.Abs(p[j]), 1e-3)
			pj := append([]float64(nil), p...)
			pj[j] += h
			pj = bounds.Clamp(pj)
			dh := pj[j] - p[j]
			if dh == 0 {
				// At the upper bound: step down instead.
				pj[j] = p[j] - h
				pj = bounds.Clamp(pj)
				dh = pj[j] - p[j]
				if dh == 0 {
					for i := 0; i < m; i++ {
						jac[i][j] = 0
					}
					continue
				}
			}
			rj := resid(pj)
			for i := 0; i < m; i++ {
				jac[i][j] = (rj[i] - r[i]) / dh
			}
		}

		// Normal equations (JᵀJ + λ·diag(JᵀJ))δ = -Jᵀr.
		jtj := make([][]float64, n)
		for i := range jtj {
			jtj[i] = make([]float64, n)
		}
		jtr := make([]float64, n)
		for i := 0; i < m; i++ {
			for a := 0; a < n; a++ {
				jtr[a] += jac[i][a] * r[i]
				for b := a; b < n; b++ {
					jtj[a][b] += jac[i][a] * jac[i][b]
				}
			}
		}
		for a := 0; a < n; a++ {
			for b := 0; b < a; b++ {
				jtj[a][b] = jtj[b][a]
			}
		}

		improved := false
		for attempt := 0; attempt < 10; attempt++ {
			A := make([][]float64, n)
			for a := range A {
				A[a] = append([]float64(nil), jtj[a]...)
				damp := lambda * jtj[a][a]
				if damp == 0 {
					damp = lambda
				}
				A[a][a] += damp
			}
			rhs := make([]float64, n)
			for a := range rhs {
				rhs[a] = -jtr[a]
			}
			delta, err := SolveCholesky(A, rhs)
			if err != nil {
				lambda *= opts.LambdaUp
				continue
			}
			cand := make([]float64, n)
			for a := range cand {
				cand[a] = p[a] + delta[a]
			}
			cand = bounds.Clamp(cand)
			rc := resid(cand)
			cc := sumSq(rc)
			if cc < cost {
				rel := (cost - cc) / (cost + 1e-300)
				p, r, cost = cand, rc, cc
				lambda /= opts.LambdaDn
				if lambda < 1e-12 {
					lambda = 1e-12
				}
				improved = true
				if rel < opts.Tol {
					return Result{Params: p, Value: cost, Iters: iters + 1}
				}
				break
			}
			lambda *= opts.LambdaUp
			if lambda > 1e12 {
				return Result{Params: p, Value: cost, Iters: iters + 1}
			}
		}
		if !improved {
			break
		}
	}
	return Result{Params: p, Value: cost, Iters: iters}
}

// MinimizeRelSq minimizes the paper's objective — the sum of relative
// squared errors between model predictions and measured values — over the
// model's free parameters. It combines multi-start Nelder–Mead with a
// Levenberg–Marquardt polish.
//
// predict maps parameters to a prediction vector aligned with measured.
func MinimizeRelSq(predict func(params []float64) []float64, measured []float64,
	x0 []float64, bounds Bounds, opts MultiStartOptions) Result {

	resid := func(params []float64) []float64 {
		pred := predict(params)
		out := make([]float64, len(pred))
		for i := range pred {
			den := math.Sqrt(math.Abs(measured[i]))
			if den == 0 {
				den = 1
			}
			out[i] = (pred[i] - measured[i]) / den
		}
		return out
	}
	obj := func(params []float64) float64 { return sumSq(resid(params)) }

	best := MultiStartNelderMead(obj, x0, bounds, opts)
	polished := LevenbergMarquardt(resid, best.Params, bounds, LMOptions{})
	if polished.Value < best.Value {
		polished.Iters += best.Iters
		return polished
	}
	return best
}
