package regress

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Objective is a scalar function of a parameter vector to be minimized.
type Objective func(params []float64) float64

// Bounds restricts each parameter to [Lo[i], Hi[i]]. Parameters are
// clamped into the box before the objective is evaluated, which keeps the
// simplex well-behaved on power-law exponents.
type Bounds struct {
	Lo, Hi []float64
}

// Clamp returns a copy of p with every coordinate clamped into the box.
func (b Bounds) Clamp(p []float64) []float64 {
	out := append([]float64(nil), p...)
	for i := range out {
		if i < len(b.Lo) && out[i] < b.Lo[i] {
			out[i] = b.Lo[i]
		}
		if i < len(b.Hi) && out[i] > b.Hi[i] {
			out[i] = b.Hi[i]
		}
	}
	return out
}

// Contains reports whether p lies inside the box.
func (b Bounds) Contains(p []float64) bool {
	for i := range p {
		if i < len(b.Lo) && p[i] < b.Lo[i] {
			return false
		}
		if i < len(b.Hi) && p[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// NMOptions configures the Nelder–Mead minimizer.
type NMOptions struct {
	MaxIter int     // maximum simplex iterations (default 2000)
	Tol     float64 // convergence tolerance on objective spread (default 1e-10)
	Scale   float64 // initial simplex edge scale relative to |x0| (default 0.1)
}

func (o NMOptions) withDefaults() NMOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Scale <= 0 {
		o.Scale = 0.1
	}
	return o
}

// Result holds the outcome of a minimization.
type Result struct {
	Params []float64
	Value  float64
	Iters  int
}

// NelderMead minimizes f starting from x0 inside bounds using the standard
// simplex method (reflection/expansion/contraction/shrink with the usual
// coefficients 1, 2, 0.5, 0.5).
func NelderMead(f Objective, x0 []float64, bounds Bounds, opts NMOptions) Result {
	opts = opts.withDefaults()
	n := len(x0)
	if n == 0 {
		panic("regress: NelderMead needs at least one parameter")
	}
	eval := func(p []float64) float64 {
		v := f(bounds.Clamp(p))
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	// Build the initial simplex: x0 plus n perturbed vertices.
	simplex := make([][]float64, n+1)
	vals := make([]float64, n+1)
	simplex[0] = bounds.Clamp(x0)
	vals[0] = eval(simplex[0])
	for i := 0; i < n; i++ {
		v := append([]float64(nil), simplex[0]...)
		step := opts.Scale * math.Abs(v[i])
		if step == 0 {
			step = opts.Scale
		}
		v[i] += step
		simplex[i+1] = bounds.Clamp(v)
		vals[i+1] = eval(simplex[i+1])
	}

	order := make([]int, n+1)
	for iter := 0; iter < opts.MaxIter; iter++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
		best, worst, second := order[0], order[n], order[n-1]

		if vals[worst]-vals[best] < opts.Tol*(math.Abs(vals[best])+opts.Tol) {
			// Values have converged; make sure the simplex itself has too.
			// Two vertices symmetric around a minimum can tie in value while
			// straddling it (common in low dimensions), so shrink instead of
			// returning while the simplex is still wide.
			var diam float64
			for _, v := range simplex[1:] {
				for j := range v {
					d := math.Abs(v[j] - simplex[0][j])
					if d > diam {
						diam = d
					}
				}
			}
			scale := 1.0
			for j := range simplex[best] {
				scale = math.Max(scale, math.Abs(simplex[best][j]))
			}
			if diam < 1e-8*scale {
				return Result{Params: simplex[best], Value: vals[best], Iters: iter}
			}
			for _, idx := range order[1:] {
				for j := range simplex[idx] {
					simplex[idx][j] = simplex[best][j] + 0.5*(simplex[idx][j]-simplex[best][j])
				}
				simplex[idx] = bounds.Clamp(simplex[idx])
				vals[idx] = eval(simplex[idx])
			}
			continue
		}

		// Centroid of all vertices except the worst.
		centroid := make([]float64, n)
		for _, idx := range order[:n] {
			for j := range centroid {
				centroid[j] += simplex[idx][j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}

		combine := func(alpha float64) ([]float64, float64) {
			p := make([]float64, n)
			for j := range p {
				p[j] = centroid[j] + alpha*(centroid[j]-simplex[worst][j])
			}
			p = bounds.Clamp(p)
			return p, eval(p)
		}

		refl, fRefl := combine(1)
		switch {
		case fRefl < vals[best]:
			// Try expanding further in the same direction.
			exp, fExp := combine(2)
			if fExp < fRefl {
				simplex[worst], vals[worst] = exp, fExp
			} else {
				simplex[worst], vals[worst] = refl, fRefl
			}
		case fRefl < vals[second]:
			simplex[worst], vals[worst] = refl, fRefl
		default:
			// Contract toward the centroid.
			var con []float64
			var fCon float64
			if fRefl < vals[worst] {
				con, fCon = combine(0.5) // outside contraction
			} else {
				con, fCon = combine(-0.5) // inside contraction
			}
			if fCon < math.Min(fRefl, vals[worst]) {
				simplex[worst], vals[worst] = con, fCon
			} else {
				// Shrink everything toward the best vertex.
				for _, idx := range order[1:] {
					for j := range simplex[idx] {
						simplex[idx][j] = simplex[best][j] + 0.5*(simplex[idx][j]-simplex[best][j])
					}
					simplex[idx] = bounds.Clamp(simplex[idx])
					vals[idx] = eval(simplex[idx])
				}
			}
		}
	}

	bestIdx := 0
	for i := range vals {
		if vals[i] < vals[bestIdx] {
			bestIdx = i
		}
	}
	return Result{Params: simplex[bestIdx], Value: vals[bestIdx], Iters: opts.MaxIter}
}

// MultiStartOptions configures the multi-start driver.
type MultiStartOptions struct {
	Starts int    // number of random restarts in addition to x0 (default 8)
	Seed   uint64 // RNG seed for the random starts (default 1)
	NM     NMOptions
}

func (o MultiStartOptions) withDefaults() MultiStartOptions {
	if o.Starts <= 0 {
		o.Starts = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// MultiStartNelderMead runs Nelder–Mead from x0 and from opts.Starts
// additional points sampled log-uniformly (when Lo>0) or uniformly inside
// the bounds, returning the best result. This is how the non-convex
// 10-parameter fit of the paper's model avoids poor local minima.
func MultiStartNelderMead(f Objective, x0 []float64, bounds Bounds, opts MultiStartOptions) Result {
	opts = opts.withDefaults()
	if len(bounds.Lo) != len(x0) || len(bounds.Hi) != len(x0) {
		panic(fmt.Sprintf("regress: MultiStartNelderMead bounds dims (%d,%d) do not match x0 (%d)",
			len(bounds.Lo), len(bounds.Hi), len(x0)))
	}
	best := NelderMead(f, x0, bounds, opts.NM)
	r := rng.New(opts.Seed)
	for s := 0; s < opts.Starts; s++ {
		start := make([]float64, len(x0))
		for i := range start {
			lo, hi := bounds.Lo[i], bounds.Hi[i]
			if lo > 0 && hi > lo {
				// Sample log-uniformly across the positive range.
				start[i] = math.Exp(math.Log(lo) + r.Float64()*(math.Log(hi)-math.Log(lo)))
			} else {
				start[i] = lo + r.Float64()*(hi-lo)
			}
		}
		res := NelderMead(f, start, bounds, opts.NM)
		if res.Value < best.Value {
			best = res
		}
	}
	return best
}
