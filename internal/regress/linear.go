// Package regress implements the regression machinery the paper delegates
// to SPSS: non-linear least-squares minimization of the sum of relative
// squared errors (Nelder–Mead simplex with deterministic multi-start,
// optionally polished with Levenberg–Marquardt), plus an ordinary
// least-squares linear regression baseline built on a Householder QR
// decomposition. Everything is dependency-free and deterministic.
package regress

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system is (numerically) singular.
var ErrSingular = errors.New("regress: singular system")

// Linear is a fitted linear model y = w·x + b.
type Linear struct {
	Weights   []float64 // one per feature
	Intercept float64
}

// Predict evaluates the linear model on a feature vector.
func (l *Linear) Predict(x []float64) float64 {
	if len(x) != len(l.Weights) {
		panic(fmt.Sprintf("regress: Linear.Predict got %d features, model has %d", len(x), len(l.Weights)))
	}
	y := l.Intercept
	for i, w := range l.Weights {
		y += w * x[i]
	}
	return y
}

// PredictAll evaluates the model on each row of X.
func (l *Linear) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = l.Predict(x)
	}
	return out
}

// FitLinear fits y ≈ Xw + b by ordinary least squares using a Householder
// QR decomposition of the design matrix augmented with an intercept
// column. X is row-major: X[i] is the feature vector of sample i.
//
// When the system is rank deficient (e.g., collinear features or fewer
// samples than features), a small ridge term is applied to keep the fit
// well-defined; this mirrors what statistical packages do silently.
func FitLinear(X [][]float64, y []float64) (*Linear, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("regress: FitLinear needs matching non-empty X (%d) and y (%d)", n, len(y))
	}
	p := len(X[0])
	for i, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("regress: FitLinear row %d has %d features, want %d", i, len(row), p)
		}
	}
	cols := p + 1 // + intercept
	// Build augmented design matrix A (n×cols), column cols-1 is all ones.
	A := make([][]float64, n)
	for i := range A {
		A[i] = make([]float64, cols)
		copy(A[i], X[i])
		A[i][cols-1] = 1
	}
	b := append([]float64(nil), y...)
	w, err := SolveQR(A, b)
	if errors.Is(err, ErrSingular) {
		w, err = solveRidge(X, y, 1e-8)
	}
	if err != nil {
		return nil, err
	}
	return &Linear{Weights: w[:p], Intercept: w[p]}, nil
}

// FitLinearRelative fits y ≈ Xw + b minimizing the sum of *relative*
// squared errors Σ(ŷ−y)²/y — the same Tofallis objective the paper uses
// for the mechanistic-empirical fit, so the linear baseline competes on
// equal terms. Targets must be positive. Implemented as weighted least
// squares: each row is scaled by 1/√yᵢ.
func FitLinearRelative(X [][]float64, y []float64) (*Linear, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("regress: FitLinearRelative needs matching non-empty X (%d) and y (%d)", n, len(y))
	}
	p := len(X[0])
	A := make([][]float64, n)
	b := make([]float64, n)
	for i, row := range X {
		if len(row) != p {
			return nil, fmt.Errorf("regress: FitLinearRelative ragged matrix at row %d", i)
		}
		if y[i] <= 0 {
			return nil, fmt.Errorf("regress: FitLinearRelative needs positive targets (row %d has %v)", i, y[i])
		}
		w := 1 / math.Sqrt(y[i])
		A[i] = make([]float64, p+1)
		for j, v := range row {
			A[i][j] = v * w
		}
		A[i][p] = w // intercept column, scaled
		b[i] = y[i] * w
	}
	coef, err := SolveQR(A, b)
	if errors.Is(err, ErrSingular) {
		// Rank-deficient: fall back to the unweighted ridge solution.
		return FitLinear(X, y)
	}
	if err != nil {
		return nil, err
	}
	return &Linear{Weights: coef[:p], Intercept: coef[p]}, nil
}

// SolveQR solves the least-squares problem min ||Ax - b||₂ via Householder
// QR. A is row-major n×m with n >= m. A and b are modified in place.
func SolveQR(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	if n == 0 {
		return nil, errors.New("regress: SolveQR on empty matrix")
	}
	m := len(A[0])
	if n < m {
		return nil, fmt.Errorf("regress: SolveQR underdetermined system %dx%d", n, m)
	}
	if len(b) != n {
		return nil, fmt.Errorf("regress: SolveQR rhs length %d, want %d", len(b), n)
	}
	// Householder triangularization, applying reflectors to b as we go.
	v := make([]float64, n)
	for k := 0; k < m; k++ {
		// Compute the norm of column k below the diagonal.
		var norm float64
		for i := k; i < n; i++ {
			norm += A[i][k] * A[i][k]
		}
		norm = math.Sqrt(norm)
		if norm < 1e-13 {
			return nil, ErrSingular
		}
		alpha := -norm
		if A[k][k] < 0 {
			alpha = norm
		}
		// v = x - alpha*e1
		var vnorm2 float64
		for i := k; i < n; i++ {
			v[i] = A[i][k]
			if i == k {
				v[i] -= alpha
			}
			vnorm2 += v[i] * v[i]
		}
		if vnorm2 < 1e-300 {
			continue // column already triangular
		}
		// Apply H = I - 2vvᵀ/(vᵀv) to remaining columns of A and to b.
		for j := k; j < m; j++ {
			var dot float64
			for i := k; i < n; i++ {
				dot += v[i] * A[i][j]
			}
			f := 2 * dot / vnorm2
			for i := k; i < n; i++ {
				A[i][j] -= f * v[i]
			}
		}
		var dot float64
		for i := k; i < n; i++ {
			dot += v[i] * b[i]
		}
		f := 2 * dot / vnorm2
		for i := k; i < n; i++ {
			b[i] -= f * v[i]
		}
	}
	// Back substitution on the upper-triangular R (stored in A[:m][:m]).
	x := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		if math.Abs(A[i][i]) < 1e-13 {
			return nil, ErrSingular
		}
		s := b[i]
		for j := i + 1; j < m; j++ {
			s -= A[i][j] * x[j]
		}
		x[i] = s / A[i][i]
	}
	return x, nil
}

// solveRidge solves (XᵀX + λI)w = Xᵀy with an intercept column, used as a
// fallback for rank-deficient systems. Returns p+1 coefficients with the
// intercept last.
func solveRidge(X [][]float64, y []float64, lambda float64) ([]float64, error) {
	n := len(X)
	p := len(X[0])
	cols := p + 1
	// Normal equations with augmented intercept column.
	ata := make([][]float64, cols)
	for i := range ata {
		ata[i] = make([]float64, cols)
	}
	aty := make([]float64, cols)
	col := func(row []float64, j int) float64 {
		if j == p {
			return 1
		}
		return row[j]
	}
	for r := 0; r < n; r++ {
		for i := 0; i < cols; i++ {
			ci := col(X[r], i)
			aty[i] += ci * y[r]
			for j := i; j < cols; j++ {
				ata[i][j] += ci * col(X[r], j)
			}
		}
	}
	for i := 0; i < cols; i++ {
		ata[i][i] += lambda
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
	}
	return SolveCholesky(ata, aty)
}

// SolveCholesky solves the symmetric positive-definite system Ax = b via
// Cholesky decomposition. A is modified in place.
func SolveCholesky(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	if n == 0 || len(b) != n {
		return nil, errors.New("regress: SolveCholesky dimension mismatch")
	}
	// Decompose A = LLᵀ in place (lower triangle).
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := A[i][j]
			for k := 0; k < j; k++ {
				s -= A[i][k] * A[j][k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				A[i][i] = math.Sqrt(s)
			} else {
				A[i][j] = s / A[j][j]
			}
		}
	}
	// Forward substitution Ly = b.
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= A[i][k] * x[k]
		}
		x[i] = s / A[i][i]
	}
	// Back substitution Lᵀx = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= A[k][i] * x[k]
		}
		x[i] = s / A[i][i]
	}
	return x, nil
}
