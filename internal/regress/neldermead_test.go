package regress

import (
	"math"
	"testing"
)

func quadratic(center []float64) Objective {
	return func(p []float64) float64 {
		var s float64
		for i := range p {
			d := p[i] - center[i]
			s += d * d
		}
		return s
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := quadratic([]float64{3, -2})
	b := Bounds{Lo: []float64{-10, -10}, Hi: []float64{10, 10}}
	res := NelderMead(f, []float64{0, 0}, b, NMOptions{})
	if math.Abs(res.Params[0]-3) > 1e-4 || math.Abs(res.Params[1]+2) > 1e-4 {
		t.Errorf("got %v", res.Params)
	}
	if res.Value > 1e-7 {
		t.Errorf("value %v", res.Value)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	rosen := func(p []float64) float64 {
		a := 1 - p[0]
		b := p[1] - p[0]*p[0]
		return a*a + 100*b*b
	}
	b := Bounds{Lo: []float64{-5, -5}, Hi: []float64{5, 5}}
	res := NelderMead(rosen, []float64{-1.2, 1}, b, NMOptions{MaxIter: 5000})
	if math.Abs(res.Params[0]-1) > 1e-3 || math.Abs(res.Params[1]-1) > 1e-3 {
		t.Errorf("rosenbrock min at %v, want (1,1), f=%v", res.Params, res.Value)
	}
}

func TestNelderMeadRespectsBounds(t *testing.T) {
	f := quadratic([]float64{10}) // true min outside the box
	b := Bounds{Lo: []float64{-1}, Hi: []float64{2}}
	res := NelderMead(f, []float64{0}, b, NMOptions{})
	if res.Params[0] < -1-1e-12 || res.Params[0] > 2+1e-12 {
		t.Errorf("solution %v escaped bounds", res.Params)
	}
	if math.Abs(res.Params[0]-2) > 1e-3 {
		t.Errorf("bounded min should be at upper bound 2, got %v", res.Params[0])
	}
}

func TestNelderMeadHandlesNaN(t *testing.T) {
	f := func(p []float64) float64 {
		if p[0] < 0 {
			return math.NaN()
		}
		return (p[0] - 1) * (p[0] - 1)
	}
	b := Bounds{Lo: []float64{-5}, Hi: []float64{5}}
	res := NelderMead(f, []float64{4}, b, NMOptions{})
	if math.Abs(res.Params[0]-1) > 1e-3 {
		t.Errorf("got %v", res.Params)
	}
}

func TestNelderMeadEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty x0")
		}
	}()
	NelderMead(quadratic(nil), nil, Bounds{}, NMOptions{})
}

func TestBoundsClampContains(t *testing.T) {
	b := Bounds{Lo: []float64{0, -1}, Hi: []float64{1, 1}}
	c := b.Clamp([]float64{2, -3})
	if c[0] != 1 || c[1] != -1 {
		t.Errorf("clamp got %v", c)
	}
	if b.Contains([]float64{2, 0}) {
		t.Error("Contains should be false outside box")
	}
	if !b.Contains([]float64{0.5, 0}) {
		t.Error("Contains should be true inside box")
	}
}

func TestMultiStartFindsGlobalMin(t *testing.T) {
	// Double-well: local min near x=4 (value 1), global near x=1 (value 0).
	f := func(p []float64) float64 {
		x := p[0]
		a := (x - 1) * (x - 1)
		b := (x-4)*(x-4) + 1
		return math.Min(a, b)
	}
	bounds := Bounds{Lo: []float64{0.1}, Hi: []float64{10}}
	// Plain NM from x0=5 lands in the local well…
	local := NelderMead(f, []float64{5}, bounds, NMOptions{})
	if math.Abs(local.Params[0]-4) > 0.1 {
		t.Skipf("local run unexpectedly escaped; got %v", local.Params)
	}
	// …but multi-start explores enough to find the global one.
	global := MultiStartNelderMead(f, []float64{5}, bounds, MultiStartOptions{Starts: 16, Seed: 3})
	if math.Abs(global.Params[0]-1) > 0.05 {
		t.Errorf("multi-start got %v, want ~1", global.Params)
	}
}

func TestMultiStartDeterministic(t *testing.T) {
	f := quadratic([]float64{2, 2, 2})
	b := Bounds{Lo: []float64{0, 0, 0}, Hi: []float64{5, 5, 5}}
	r1 := MultiStartNelderMead(f, []float64{1, 1, 1}, b, MultiStartOptions{Starts: 4, Seed: 9})
	r2 := MultiStartNelderMead(f, []float64{1, 1, 1}, b, MultiStartOptions{Starts: 4, Seed: 9})
	for i := range r1.Params {
		if r1.Params[i] != r2.Params[i] {
			t.Fatalf("non-deterministic multi-start: %v vs %v", r1.Params, r2.Params)
		}
	}
}

func TestMultiStartBoundsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched bounds")
		}
	}()
	MultiStartNelderMead(quadratic([]float64{0}), []float64{0},
		Bounds{Lo: []float64{0, 0}, Hi: []float64{1, 1}}, MultiStartOptions{})
}

func TestLevenbergMarquardtExponentialFit(t *testing.T) {
	// Fit y = a·exp(b·x) to noiseless data with a=2, b=0.5.
	xs := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 * math.Exp(0.5*x)
	}
	resid := func(p []float64) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = p[0]*math.Exp(p[1]*x) - ys[i]
		}
		return out
	}
	b := Bounds{Lo: []float64{0.01, -2}, Hi: []float64{100, 2}}
	res := LevenbergMarquardt(resid, []float64{1, 0.1}, b, LMOptions{})
	if math.Abs(res.Params[0]-2) > 1e-5 || math.Abs(res.Params[1]-0.5) > 1e-5 {
		t.Errorf("LM got %v, want (2, 0.5); cost %v", res.Params, res.Value)
	}
}

func TestLevenbergMarquardtAtBound(t *testing.T) {
	// Minimum outside the box; LM must converge to the boundary without
	// stalling on the clamped finite-difference step.
	resid := func(p []float64) []float64 { return []float64{p[0] - 5} }
	b := Bounds{Lo: []float64{0}, Hi: []float64{2}}
	res := LevenbergMarquardt(resid, []float64{1}, b, LMOptions{})
	if math.Abs(res.Params[0]-2) > 1e-6 {
		t.Errorf("got %v, want 2 (boundary)", res.Params[0])
	}
}

func TestMinimizeRelSq(t *testing.T) {
	// Model: y = p0·x^p1 on positive data; fit in the relative-error sense.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 0.7)
	}
	predict := func(p []float64) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = p[0] * math.Pow(x, p[1])
		}
		return out
	}
	b := Bounds{Lo: []float64{0.01, 0}, Hi: []float64{100, 3}}
	res := MinimizeRelSq(predict, ys, []float64{1, 1}, b, MultiStartOptions{Starts: 6, Seed: 2})
	if math.Abs(res.Params[0]-3) > 1e-3 || math.Abs(res.Params[1]-0.7) > 1e-3 {
		t.Errorf("got %v, want (3, 0.7)", res.Params)
	}
}
