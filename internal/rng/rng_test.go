package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 collide on %d/100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64MeanVariance(t *testing.T) {
	r := New(9)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sq += f * f
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("uniform variance %v, want ~1/12", variance)
	}
}

func TestIntn(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("Intn(10) value %d has count %d, expected ~10000", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) should panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestNormFloat64(t *testing.T) {
	r := New(11)
	n := 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v, want ~1", variance)
	}
}

func TestExpFloat64(t *testing.T) {
	r := New(13)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatal("negative exponential variate")
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %v, want ~1", mean)
	}
}

func TestGeometric(t *testing.T) {
	r := New(17)
	p := 0.25
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Geometric(p)
		if v < 0 {
			t.Fatal("negative geometric variate")
		}
		sum += float64(v)
	}
	want := (1 - p) / p // mean of failures-before-success geometric
	if mean := sum / float64(n); math.Abs(mean-want) > 0.1 {
		t.Errorf("geometric mean %v, want ~%v", mean, want)
	}
	if New(1).Geometric(1) != 0 {
		t.Error("Geometric(1) should always be 0")
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Geometric(0) should panic")
		}
	}()
	New(1).Geometric(0)
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(19)
	n := 1000
	countsLow := 0
	total := 100000
	for i := 0; i < total; i++ {
		k := r.Zipf(n, 1.2)
		if k < 0 || k >= n {
			t.Fatalf("Zipf out of range: %d", k)
		}
		if k < 10 {
			countsLow++
		}
	}
	// With skew 1.2 the first 1% of the support should receive far more
	// than 1% of the mass.
	if frac := float64(countsLow) / float64(total); frac < 0.3 {
		t.Errorf("Zipf(1.2) low-index mass %v, expected heavily skewed (>0.3)", frac)
	}
	// Skew 0 is uniform.
	r2 := New(23)
	countsLow = 0
	for i := 0; i < total; i++ {
		if r2.Zipf(n, 0) < 10 {
			countsLow++
		}
	}
	if frac := float64(countsLow) / float64(total); frac > 0.02 {
		t.Errorf("Zipf(0) low-index mass %v, expected ~0.01", frac)
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Zipf(0, 1) should panic")
		}
	}()
	New(1).Zipf(0, 1)
}

func TestPerm(t *testing.T) {
	r := New(29)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBool(t *testing.T) {
	r := New(31)
	n := 100000
	c := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			c++
		}
	}
	if frac := float64(c) / float64(n); math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %v", frac)
	}
}

// Property: Perm always returns a valid permutation.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Zipf values always stay in range for any seed/skew.
func TestZipfRangeProperty(t *testing.T) {
	f := func(seed uint64, skewRaw uint8) bool {
		s := float64(skewRaw) / 64.0 // 0..~4
		r := New(seed)
		for i := 0; i < 100; i++ {
			k := r.Zipf(100, s)
			if k < 0 || k >= 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
