// Package rng provides a small, fast, deterministic pseudo-random number
// generator (splitmix64 seeding a xoshiro256**) used throughout the
// workload generator, regression multi-start, and ANN initialization.
//
// The standard library's math/rand is avoided deliberately: every
// experiment in this repository must be bit-reproducible across runs and
// Go releases, so the generator algorithm is pinned here.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is not valid; construct
// with New.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 expands a seed into stream state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Different seeds give
// independent streams; the same seed always gives the same stream.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	r.s0 = splitmix64(&x)
	r.s1 = splitmix64(&x)
	r.s2 = splitmix64(&x)
	r.s3 = splitmix64(&x)
	// All-zero state is invalid for xoshiro; splitmix64 of any seed cannot
	// produce four zero words, but guard regardless.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	return r.Uint64() % n
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	// Guard against log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Geometric returns a geometric variate with success probability p,
// counting the number of failures before the first success (support {0,1,...}).
// p must be in (0, 1].
func (r *RNG) Geometric(p float64) int {
	return NewGeometric(p).Next(r)
}

// GeometricDist is a geometric distribution with its log-constant
// precomputed. The generator's hot loop draws millions of variates with
// a fixed p; hoisting math.Log(1-p) out of the per-draw path halves the
// transcendental work while producing bit-identical variates (the
// remaining per-draw computation is unchanged).
type GeometricDist struct {
	one  bool    // p == 1: always 0
	logq float64 // math.Log(1-p)
}

// NewGeometric validates p and precomputes the distribution constants.
// It panics if p is outside (0, 1], exactly as Geometric does.
func NewGeometric(p float64) GeometricDist {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs p in (0,1]")
	}
	if p == 1 {
		return GeometricDist{one: true}
	}
	return GeometricDist{logq: math.Log(1 - p)}
}

// Next draws the next variate from r.
func (d GeometricDist) Next(r *RNG) int {
	if d.one {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / d.logq))
}

// Zipf returns a value in [0, n) drawn from a (truncated) Zipf-like
// distribution with skew s >= 0: P(k) ∝ 1/(k+1)^s. Skew 0 is uniform.
// Uses inverse-CDF on a precomputed-free approximation via rejection for
// small n, and a power-law inverse transform for speed.
func (r *RNG) Zipf(n int, s float64) int {
	return NewZipf(n, s).Next(r)
}

// ZipfDist is a truncated Zipf-like distribution over [0, n) with its
// power-law constants precomputed. The inverse transform needs two
// math.Pow evaluations per draw when computed from scratch; one of them
// (the normalization of the support) depends only on (n, s), so hoisting
// it halves the per-draw transcendental cost. Variates are bit-identical
// to Zipf's: the per-draw arithmetic is exactly the same operations on
// exactly the same values.
type ZipfDist struct {
	n       int
	uniform bool    // s <= 0
	unit    bool    // s == 1: x = (n+1)^u
	nf      float64 // float64(n) + 1
	bm1     float64 // math.Pow(n+1, 1-s) - 1
	inv     float64 // 1 / (1 - s)
}

// NewZipf validates n and precomputes the distribution constants. It
// panics if n <= 0, exactly as Zipf does.
func NewZipf(n int, s float64) ZipfDist {
	if n <= 0 {
		panic("rng: Zipf needs n > 0")
	}
	d := ZipfDist{n: n, nf: float64(n) + 1}
	switch {
	case s <= 0:
		d.uniform = true
	case s == 1:
		d.unit = true
	default:
		d.bm1 = math.Pow(float64(n)+1, 1-s) - 1
		d.inv = 1 / (1 - s)
	}
	return d
}

// Next draws the next variate from r.
func (d ZipfDist) Next(r *RNG) int {
	if d.uniform {
		return r.Intn(d.n)
	}
	// Inverse transform of the continuous analogue: density f(x) ∝ x^(-s)
	// on [1, n+1), then shift to [0, n). This is a standard fast
	// approximation of the discrete Zipf CDF; exactness is unnecessary for
	// synthetic locality generation.
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	var x float64
	if d.unit {
		x = math.Pow(d.nf, u)
	} else {
		x = math.Pow(u*d.bm1+1, d.inv)
	}
	k := int(x) - 1
	if k < 0 {
		k = 0
	}
	if k >= d.n {
		k = d.n - 1
	}
	return k
}

// Perm returns a pseudo-random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
