// Package suites defines the two synthetic benchmark suites standing in
// for SPEC CPU2000 and CPU2006. Each suite is a set of workload
// specifications (48 and 55 benchmark-input pairs, matching the paper's
// counts) whose characteristics — instruction mix, branch
// predictability, code/data footprints, locality, pointer chasing,
// dependence structure — are curated per benchmark to echo the published
// behaviour of their namesakes: mcf chases pointers across a huge heap,
// gcc has a large code footprint, milc/soplex/lbm stream through memory,
// calculix and gromacs barely miss anywhere (the paper's outliers), and
// so on. Benchmarks with multiple reference inputs appear once per input
// with deterministically perturbed parameters, as on real SPEC runs.
//
// The CPU2006-like suite is deliberately more memory-intensive than the
// CPU2000-like one (larger data footprints), reproducing the contrast the
// paper leans on in Section 6.
//
// Two further synthetic families deliberately break the stationarity
// those suites (and the paper's model) assume: "phased" workloads are
// piecewise-stationary phase schedules and "bursty" workloads cluster
// their cache misses in time (see families.go). Model error on them
// measures what the steady-state assumptions cost.
//
// Suites resolve by name through a registry (Register/ByName). Besides
// the built-in generated suites, recorded traces resolve as file-backed
// suites: the "file:PATH" spec form points at a .mtrc trace file or a
// directory of them (see internal/trace's file format), and
// RegisterFile mounts such a directory under a plain name. File-backed
// workloads carry the file's content hash in their spec, so their runs
// key separately from generated ones in the content-addressed run
// store, and they have no seed axis — re-seeding a recording is
// rejected rather than silently ignored.
package suites

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/trace"
)

// Suite is a named set of workloads.
type Suite struct {
	Name      string
	Workloads []trace.Spec
}

// Options controls suite instantiation.
type Options struct {
	// NumOps is the µop count per workload (default 300000). Experiments
	// trade a little measurement noise for wall-clock time through this.
	NumOps int
	// SeedBase decorrelates whole-suite replications (default 0 — the
	// standard suites).
	SeedBase uint64
}

func (o Options) withDefaults() Options {
	if o.NumOps <= 0 {
		o.NumOps = 300000
	}
	return o
}

// profile is the curated per-benchmark characteristic set.
type profile struct {
	name   string
	inputs int     // number of reference inputs (spec variants)
	fp     float64 // FP fraction of non-branch µops
	load   float64
	store  float64
	hard   float64 // fraction of hard-to-predict static branches
	codeKB int
	cloc   float64 // code locality
	dataMB float64
	dloc   float64 // data locality
	chase  float64 // pointer-chase fraction of loads
	dep    float64 // mean register-dependence distance (ILP)
	chain  float64 // serial-chain fraction
	hotMB  float64 // uniformly re-referenced resident set (0 = none);
	// sized to straddle cache capacities across machine generations
	// (1–3MB: between the P4's 1MB L2 and the Core 2's 4MB;
	//  4.5–6.5MB: between the Core 2's 4MB L2 and the i7's 8MB L3)
}

// specs expands a profile into one trace.Spec per reference input. Input
// variants perturb footprints and mix slightly (deterministically), the
// way different SPEC inputs stress the same binary differently.
func (p profile) specs(suite string, opts Options) []trace.Spec {
	out := make([]trace.Spec, 0, p.inputs)
	for i := 0; i < p.inputs; i++ {
		name := p.name
		if p.inputs > 1 {
			name = fmt.Sprintf("%s.%d", p.name, i+1)
		}
		seed := hashName(suite+"/"+name) + opts.SeedBase
		r := rng.New(seed ^ 0xabcdef12345)
		jitter := func(v, rel float64) float64 {
			f := v * (1 + rel*(2*r.Float64()-1))
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			return f
		}
		dataMB := p.dataMB * (0.6 + 0.8*r.Float64())
		codeKB := float64(p.codeKB) * (0.75 + 0.5*r.Float64())
		dep := p.dep * (0.85 + 0.3*r.Float64())
		if dep < 1.2 {
			dep = 1.2
		}
		spec := trace.Spec{
			Name:             name,
			Seed:             seed,
			NumOps:           opts.NumOps,
			LoadFrac:         jitter(p.load, 0.08),
			StoreFrac:        jitter(p.store, 0.08),
			FPFrac:           jitter(p.fp, 0.08),
			MulFrac:          0.02,
			DivFrac:          0.003,
			BranchHardFrac:   jitter(p.hard, 0.12),
			CodeFootprint:    maxI64(4096, int64(codeKB*1024)),
			CodeLocality:     jitter(p.cloc, 0.05),
			DataFootprint:    maxI64(8192, int64(dataMB*(1<<20))),
			DataLocality:     jitter(p.dloc, 0.05),
			PointerChaseFrac: jitter(p.chase, 0.1),
			DepDistMean:      dep,
			LongChainFrac:    jitter(p.chain, 0.1),
			FusibleFrac:      0.45,
			HotBytes:         int64(p.hotMB * (0.92 + 0.16*r.Float64()) * (1 << 20)),
		}
		// The hot-set and footprint jitters are independent draws, so a
		// hot set near the footprint's low range can come out larger than
		// the footprint itself — a spec trace.New rejects. Clamp to the
		// footprint: a fully hot working set is the physical reading, and
		// every in-range draw (the whole canonical seed base among them)
		// is untouched, keeping existing store keys warm.
		if spec.HotBytes > spec.DataFootprint {
			spec.HotBytes = spec.DataFootprint
		}
		out = append(out, spec)
	}
	return out
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// hashName gives a stable 64-bit seed per workload name (FNV-1a).
func hashName(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// cpu2000Profiles: 26 benchmarks, 48 benchmark-input pairs.
var cpu2000Profiles = []profile{
	// --- CINT2000 (33 pairs) ---
	{name: "gzip", inputs: 5, fp: 0, load: 0.24, store: 0.10, hard: 0.22, codeKB: 24, cloc: 0.85, dataMB: 1.2, dloc: 0.65, chase: 0.02, dep: 7, chain: 0.10},
	{name: "vpr", inputs: 2, fp: 0.04, load: 0.28, store: 0.09, hard: 0.35, codeKB: 48, cloc: 0.80, dataMB: 2.0, dloc: 0.55, chase: 0.10, dep: 8, chain: 0.10, hotMB: 1.2},
	{name: "gcc", inputs: 5, fp: 0, load: 0.26, store: 0.13, hard: 0.30, codeKB: 1400, cloc: 0.55, dataMB: 6.0, dloc: 0.55, chase: 0.12, dep: 9, chain: 0.08},
	{name: "mcf", inputs: 1, fp: 0, load: 0.32, store: 0.08, hard: 0.28, codeKB: 16, cloc: 0.90, dataMB: 96, dloc: 0.15, chase: 0.45, dep: 6, chain: 0.15},
	{name: "crafty", inputs: 1, fp: 0, load: 0.27, store: 0.07, hard: 0.30, codeKB: 160, cloc: 0.70, dataMB: 1.5, dloc: 0.70, chase: 0.03, dep: 10, chain: 0.06},
	{name: "parser", inputs: 1, fp: 0, load: 0.26, store: 0.10, hard: 0.32, codeKB: 120, cloc: 0.70, dataMB: 12, dloc: 0.45, chase: 0.22, dep: 7, chain: 0.12, hotMB: 1.5},
	{name: "eon", inputs: 3, fp: 0.12, load: 0.28, store: 0.12, hard: 0.12, codeKB: 300, cloc: 0.70, dataMB: 0.5, dloc: 0.80, chase: 0.02, dep: 11, chain: 0.08},
	{name: "perlbmk", inputs: 7, fp: 0, load: 0.27, store: 0.12, hard: 0.25, codeKB: 600, cloc: 0.60, dataMB: 8, dloc: 0.55, chase: 0.14, dep: 9, chain: 0.08},
	{name: "gap", inputs: 1, fp: 0, load: 0.26, store: 0.11, hard: 0.20, codeKB: 400, cloc: 0.65, dataMB: 24, dloc: 0.45, chase: 0.12, dep: 9, chain: 0.09, hotMB: 1.9},
	{name: "vortex", inputs: 3, fp: 0, load: 0.29, store: 0.14, hard: 0.10, codeKB: 500, cloc: 0.60, dataMB: 20, dloc: 0.50, chase: 0.15, dep: 10, chain: 0.07},
	{name: "bzip2", inputs: 3, fp: 0, load: 0.25, store: 0.10, hard: 0.28, codeKB: 20, cloc: 0.85, dataMB: 10, dloc: 0.50, chase: 0.02, dep: 7, chain: 0.11},
	{name: "twolf", inputs: 1, fp: 0.03, load: 0.28, store: 0.08, hard: 0.38, codeKB: 90, cloc: 0.75, dataMB: 2.5, dloc: 0.55, chase: 0.08, dep: 7, chain: 0.12, hotMB: 1.1},
	// --- CFP2000 (15 pairs) ---
	{name: "wupwise", inputs: 1, fp: 0.30, load: 0.26, store: 0.10, hard: 0.04, codeKB: 32, cloc: 0.85, dataMB: 40, dloc: 0.50, chase: 0.01, dep: 14, chain: 0.12, hotMB: 0.2},
	{name: "swim", inputs: 1, fp: 0.32, load: 0.28, store: 0.11, hard: 0.02, codeKB: 16, cloc: 0.90, dataMB: 100, dloc: 0.30, chase: 0.00, dep: 18, chain: 0.08, hotMB: 0.2},
	{name: "mgrid", inputs: 1, fp: 0.34, load: 0.30, store: 0.08, hard: 0.02, codeKB: 16, cloc: 0.90, dataMB: 28, dloc: 0.45, chase: 0.00, dep: 16, chain: 0.10, hotMB: 0.2},
	{name: "applu", inputs: 1, fp: 0.33, load: 0.27, store: 0.10, hard: 0.03, codeKB: 40, cloc: 0.85, dataMB: 64, dloc: 0.35, chase: 0.00, dep: 15, chain: 0.14, hotMB: 0.2},
	{name: "mesa", inputs: 1, fp: 0.18, load: 0.25, store: 0.12, hard: 0.10, codeKB: 280, cloc: 0.70, dataMB: 4, dloc: 0.70, chase: 0.03, dep: 11, chain: 0.08},
	{name: "galgel", inputs: 1, fp: 0.32, load: 0.28, store: 0.08, hard: 0.05, codeKB: 64, cloc: 0.80, dataMB: 12, dloc: 0.60, chase: 0.00, dep: 15, chain: 0.12, hotMB: 2.5},
	{name: "art", inputs: 2, fp: 0.26, load: 0.31, store: 0.07, hard: 0.08, codeKB: 12, cloc: 0.90, dataMB: 3.5, dloc: 0.25, chase: 0.02, dep: 12, chain: 0.18, hotMB: 2.8},
	{name: "equake", inputs: 1, fp: 0.28, load: 0.30, store: 0.08, hard: 0.05, codeKB: 24, cloc: 0.88, dataMB: 32, dloc: 0.40, chase: 0.08, dep: 12, chain: 0.16, hotMB: 2.2},
	{name: "facerec", inputs: 1, fp: 0.28, load: 0.27, store: 0.08, hard: 0.06, codeKB: 48, cloc: 0.82, dataMB: 12, dloc: 0.55, chase: 0.01, dep: 14, chain: 0.10},
	{name: "ammp", inputs: 1, fp: 0.26, load: 0.28, store: 0.09, hard: 0.08, codeKB: 64, cloc: 0.80, dataMB: 20, dloc: 0.40, chase: 0.10, dep: 10, chain: 0.18, hotMB: 1.6},
	{name: "lucas", inputs: 1, fp: 0.33, load: 0.26, store: 0.10, hard: 0.02, codeKB: 24, cloc: 0.88, dataMB: 80, dloc: 0.35, chase: 0.00, dep: 16, chain: 0.10, hotMB: 0.2},
	{name: "fma3d", inputs: 1, fp: 0.29, load: 0.27, store: 0.11, hard: 0.06, codeKB: 700, cloc: 0.60, dataMB: 48, dloc: 0.45, chase: 0.02, dep: 13, chain: 0.12},
	{name: "sixtrack", inputs: 1, fp: 0.31, load: 0.26, store: 0.09, hard: 0.04, codeKB: 500, cloc: 0.65, dataMB: 1.5, dloc: 0.75, chase: 0.00, dep: 14, chain: 0.14},
	{name: "apsi", inputs: 1, fp: 0.30, load: 0.27, store: 0.10, hard: 0.05, codeKB: 96, cloc: 0.78, dataMB: 24, dloc: 0.45, chase: 0.00, dep: 14, chain: 0.12},
}

// cpu2006Profiles: 29 benchmarks, 55 benchmark-input pairs. Larger data
// footprints overall than CPU2000 (the suite is more memory-intensive).
var cpu2006Profiles = []profile{
	// --- CINT2006 (35 pairs) ---
	{name: "perlbench", inputs: 3, fp: 0, load: 0.27, store: 0.12, hard: 0.24, codeKB: 900, cloc: 0.60, dataMB: 24, dloc: 0.55, chase: 0.12, dep: 9, chain: 0.08},
	{name: "bzip2", inputs: 6, fp: 0, load: 0.25, store: 0.10, hard: 0.30, codeKB: 24, cloc: 0.85, dataMB: 40, dloc: 0.45, chase: 0.02, dep: 7, chain: 0.11},
	{name: "gcc", inputs: 9, fp: 0, load: 0.26, store: 0.13, hard: 0.30, codeKB: 2600, cloc: 0.50, dataMB: 48, dloc: 0.50, chase: 0.13, dep: 9, chain: 0.08},
	{name: "mcf", inputs: 1, fp: 0, load: 0.33, store: 0.08, hard: 0.30, codeKB: 16, cloc: 0.90, dataMB: 600, dloc: 0.12, chase: 0.50, dep: 6, chain: 0.15},
	{name: "gobmk", inputs: 5, fp: 0, load: 0.26, store: 0.09, hard: 0.36, codeKB: 1200, cloc: 0.62, dataMB: 8, dloc: 0.60, chase: 0.06, dep: 8, chain: 0.09},
	{name: "hmmer", inputs: 2, fp: 0, load: 0.29, store: 0.11, hard: 0.08, codeKB: 80, cloc: 0.82, dataMB: 6, dloc: 0.65, chase: 0.01, dep: 12, chain: 0.08},
	{name: "sjeng", inputs: 1, fp: 0, load: 0.24, store: 0.08, hard: 0.36, codeKB: 130, cloc: 0.75, dataMB: 64, dloc: 0.55, chase: 0.05, dep: 8, chain: 0.09},
	{name: "libquantum", inputs: 1, fp: 0.02, load: 0.28, store: 0.09, hard: 0.06, codeKB: 16, cloc: 0.92, dataMB: 96, dloc: 0.25, chase: 0.00, dep: 14, chain: 0.10, hotMB: 0.2},
	{name: "h264ref", inputs: 3, fp: 0.03, load: 0.30, store: 0.12, hard: 0.18, codeKB: 500, cloc: 0.68, dataMB: 24, dloc: 0.60, chase: 0.02, dep: 10, chain: 0.09},
	{name: "omnetpp", inputs: 1, fp: 0, load: 0.30, store: 0.12, hard: 0.28, codeKB: 600, cloc: 0.60, dataMB: 120, dloc: 0.30, chase: 0.30, dep: 8, chain: 0.11, hotMB: 5.8},
	{name: "astar", inputs: 2, fp: 0.02, load: 0.30, store: 0.09, hard: 0.32, codeKB: 40, cloc: 0.82, dataMB: 180, dloc: 0.35, chase: 0.25, dep: 7, chain: 0.12, hotMB: 5.2},
	{name: "xalancbmk", inputs: 1, fp: 0, load: 0.30, store: 0.11, hard: 0.24, codeKB: 2400, cloc: 0.52, dataMB: 160, dloc: 0.40, chase: 0.22, dep: 9, chain: 0.09, hotMB: 6.0},
	// --- CFP2006 (20 pairs) ---
	{name: "bwaves", inputs: 1, fp: 0.33, load: 0.28, store: 0.09, hard: 0.02, codeKB: 24, cloc: 0.90, dataMB: 400, dloc: 0.30, chase: 0.00, dep: 17, chain: 0.09, hotMB: 0.2},
	{name: "gamess", inputs: 3, fp: 0.30, load: 0.26, store: 0.09, hard: 0.05, codeKB: 2000, cloc: 0.62, dataMB: 1.2, dloc: 0.80, chase: 0.00, dep: 13, chain: 0.12},
	{name: "milc", inputs: 1, fp: 0.30, load: 0.30, store: 0.11, hard: 0.03, codeKB: 80, cloc: 0.82, dataMB: 500, dloc: 0.18, chase: 0.00, dep: 15, chain: 0.11, hotMB: 0.2},
	{name: "zeusmp", inputs: 1, fp: 0.32, load: 0.27, store: 0.10, hard: 0.03, codeKB: 160, cloc: 0.78, dataMB: 360, dloc: 0.35, chase: 0.00, dep: 15, chain: 0.11, hotMB: 5.4},
	{name: "gromacs", inputs: 1, fp: 0.31, load: 0.26, store: 0.08, hard: 0.02, codeKB: 260, cloc: 0.80, dataMB: 1.0, dloc: 0.85, chase: 0.00, dep: 13, chain: 0.13},
	{name: "cactusADM", inputs: 1, fp: 0.34, load: 0.28, store: 0.10, hard: 0.02, codeKB: 240, cloc: 0.75, dataMB: 420, dloc: 0.35, chase: 0.00, dep: 16, chain: 0.11, hotMB: 0.2},
	{name: "leslie3d", inputs: 1, fp: 0.33, load: 0.28, store: 0.10, hard: 0.02, codeKB: 64, cloc: 0.85, dataMB: 80, dloc: 0.35, chase: 0.00, dep: 16, chain: 0.10, hotMB: 4.8},
	{name: "namd", inputs: 1, fp: 0.30, load: 0.28, store: 0.08, hard: 0.04, codeKB: 220, cloc: 0.80, dataMB: 3.0, dloc: 0.80, chase: 0.00, dep: 14, chain: 0.11},
	{name: "dealII", inputs: 1, fp: 0.26, load: 0.29, store: 0.10, hard: 0.10, codeKB: 1600, cloc: 0.60, dataMB: 24, dloc: 0.60, chase: 0.08, dep: 11, chain: 0.10, hotMB: 4.5},
	{name: "soplex", inputs: 2, fp: 0.24, load: 0.30, store: 0.08, hard: 0.14, codeKB: 400, cloc: 0.68, dataMB: 280, dloc: 0.25, chase: 0.10, dep: 11, chain: 0.12, hotMB: 5.5},
	{name: "povray", inputs: 1, fp: 0.24, load: 0.28, store: 0.10, hard: 0.16, codeKB: 900, cloc: 0.64, dataMB: 1.5, dloc: 0.80, chase: 0.04, dep: 11, chain: 0.10},
	{name: "calculix", inputs: 1, fp: 0.31, load: 0.26, store: 0.08, hard: 0.02, codeKB: 1400, cloc: 0.85, dataMB: 0.8, dloc: 0.88, chase: 0.00, dep: 14, chain: 0.12},
	{name: "GemsFDTD", inputs: 1, fp: 0.33, load: 0.28, store: 0.10, hard: 0.02, codeKB: 160, cloc: 0.80, dataMB: 400, dloc: 0.30, chase: 0.00, dep: 16, chain: 0.10, hotMB: 6.2},
	{name: "tonto", inputs: 1, fp: 0.29, load: 0.27, store: 0.10, hard: 0.06, codeKB: 2200, cloc: 0.62, dataMB: 6, dloc: 0.70, chase: 0.01, dep: 13, chain: 0.11},
	{name: "lbm", inputs: 1, fp: 0.32, load: 0.29, store: 0.12, hard: 0.01, codeKB: 12, cloc: 0.92, dataMB: 420, dloc: 0.22, chase: 0.00, dep: 18, chain: 0.08, hotMB: 0.2},
	{name: "wrf", inputs: 1, fp: 0.31, load: 0.27, store: 0.10, hard: 0.04, codeKB: 2000, cloc: 0.65, dataMB: 120, dloc: 0.45, chase: 0.00, dep: 14, chain: 0.11, hotMB: 5.6},
	{name: "sphinx3", inputs: 1, fp: 0.28, load: 0.29, store: 0.08, hard: 0.08, codeKB: 160, cloc: 0.78, dataMB: 48, dloc: 0.40, chase: 0.02, dep: 13, chain: 0.11, hotMB: 5.0},
}

func build(name string, profiles []profile, opts Options) Suite {
	opts = opts.withDefaults()
	s := Suite{Name: name}
	for _, p := range profiles {
		s.Workloads = append(s.Workloads, p.specs(name, opts)...)
	}
	return s
}

// CPU2000Like returns the 48-workload CPU2000 stand-in suite.
func CPU2000Like(opts Options) Suite { return build("cpu2000", cpu2000Profiles, opts) }

// CPU2006Like returns the 55-workload CPU2006 stand-in suite.
func CPU2006Like(opts Options) Suite { return build("cpu2006", cpu2006Profiles, opts) }

// Find returns the workload spec with the given name, if present.
func (s *Suite) Find(name string) (trace.Spec, bool) {
	for _, w := range s.Workloads {
		if w.Name == name {
			return w, true
		}
	}
	return trace.Spec{}, false
}

// MeanDataFootprint returns the average data footprint in bytes, used to
// verify the 2006 suite is the more memory-intensive one.
func (s *Suite) MeanDataFootprint() float64 {
	if len(s.Workloads) == 0 {
		return 0
	}
	var sum float64
	for _, w := range s.Workloads {
		sum += float64(w.DataFootprint)
	}
	return sum / float64(len(s.Workloads))
}
