package suites

import "repro/internal/trace"

// The synthetic families deliberately violate the stationarity the two
// SPEC-like suites (and the paper's model) assume. The "phased" suite
// is piecewise-stationary — locality, pointer chasing, and branch
// predictability jump at segment boundaries, the way real programs move
// between loop nests — and the "bursty" suite clusters its cache misses
// in time so the same long-run miss ratio arrives in MSHR-saturating
// storms. Model error on these families measures how much the
// mechanistic-empirical model's steady-state assumptions cost outside
// the paper's 3×2 grid.

// familyBase is the common starting spec for family workloads: a
// moderately memory-intensive integer program that individual workloads
// then reshape. Seeding follows the registry convention
// (hashName(suite+"/"+name) + SeedBase), so family streams are
// decorrelated across workloads and across seed-sweep replications.
func familyBase(suite, name string, opts Options) trace.Spec {
	return trace.Spec{
		Name:             name,
		Seed:             hashName(suite+"/"+name) + opts.SeedBase,
		NumOps:           opts.NumOps,
		LoadFrac:         0.27,
		StoreFrac:        0.10,
		FPFrac:           0.08,
		MulFrac:          0.02,
		DivFrac:          0.003,
		BranchHardFrac:   0.22,
		CodeFootprint:    96 << 10,
		CodeLocality:     0.75,
		DataFootprint:    64 << 20,
		DataLocality:     0.5,
		PointerChaseFrac: 0.05,
		DepDistMean:      9,
		LongChainFrac:    0.10,
		FusibleFrac:      0.45,
	}
}

// PhasedSuite returns the phase-changing family: each workload is a
// schedule of piecewise-stationary segments with distinct data
// locality, pointer chasing, and branch noise. A model fitted to the
// aggregate counters sees the average program; the hardware ran the
// phases.
func PhasedSuite(opts Options) Suite {
	opts = opts.withDefaults()
	const name = "phased"
	mk := func(wl string, mut func(*trace.Spec)) trace.Spec {
		s := familyBase(name, wl, opts)
		mut(&s)
		return s
	}
	return Suite{Name: name, Workloads: []trace.Spec{
		// Cold start scattering over the heap, then a resident hot loop.
		mk("startup-steady", func(s *trace.Spec) {
			s.Phases = []trace.Phase{
				{Frac: 0.3, DataLocality: 0.15, PointerChaseFrac: 0.10},
				{Frac: 0.7, DataLocality: 0.90, PointerChaseFrac: 0.02},
			}
		}),
		// Two loop nests the program alternates between.
		mk("loop-alternate", func(s *trace.Spec) {
			s.Phases = []trace.Phase{
				{Frac: 0.25, DataLocality: 0.90, PointerChaseFrac: 0.02},
				{Frac: 0.25, DataLocality: 0.20, PointerChaseFrac: 0.20},
				{Frac: 0.25, DataLocality: 0.90, PointerChaseFrac: 0.02},
				{Frac: 0.25, DataLocality: 0.20, PointerChaseFrac: 0.20},
			}
		}),
		// Working set grows past each cache level in turn.
		mk("drift", func(s *trace.Spec) {
			s.DataFootprint = 256 << 20
			s.Phases = []trace.Phase{
				{Frac: 0.25, DataLocality: 0.85},
				{Frac: 0.25, DataLocality: 0.60},
				{Frac: 0.25, DataLocality: 0.40},
				{Frac: 0.25, DataLocality: 0.15},
			}
		}),
		// Array traversal that switches to linked-structure chasing.
		mk("chase-onset", func(s *trace.Spec) {
			s.DataFootprint = 192 << 20
			s.Phases = []trace.Phase{
				{Frac: 0.5, DataLocality: 0.55},
				{Frac: 0.5, DataLocality: 0.30, PointerChaseFrac: 0.45},
			}
		}),
		// Data-dependent control flow in the middle third only.
		mk("noisy-middle", func(s *trace.Spec) {
			s.Phases = []trace.Phase{
				{Frac: 0.33, DataLocality: 0.70},
				{Frac: 0.34, DataLocality: 0.70, BranchNoise: 0.60},
				{Frac: 0.33, DataLocality: 0.70},
			}
		}),
		// A collector-like sweep interrupting a well-behaved mutator.
		mk("gc-pause", func(s *trace.Spec) {
			s.DataFootprint = 128 << 20
			s.Phases = []trace.Phase{
				{Frac: 0.45, DataLocality: 0.85, PointerChaseFrac: 0.04},
				{Frac: 0.10, DataLocality: 0.05, PointerChaseFrac: 0.50, BranchNoise: 0.30},
				{Frac: 0.45, DataLocality: 0.85, PointerChaseFrac: 0.04},
			}
		}),
		// Everything shifts at once, twice.
		mk("mixed-storm", func(s *trace.Spec) {
			s.DataFootprint = 128 << 20
			s.Phases = []trace.Phase{
				{Frac: 0.4, DataLocality: 0.80, PointerChaseFrac: 0.02, BranchNoise: 0},
				{Frac: 0.2, DataLocality: 0.10, PointerChaseFrac: 0.35, BranchNoise: 0.50},
				{Frac: 0.4, DataLocality: 0.65, PointerChaseFrac: 0.10, BranchNoise: 0.10},
			}
		}),
		// Eight fine-grained segments: phase length approaches the
		// window the model's interval analysis averages over.
		mk("fine-grain", func(s *trace.Spec) {
			ph := make([]trace.Phase, 8)
			for i := range ph {
				ph[i] = trace.Phase{Frac: 0.125, DataLocality: 0.85}
				if i%2 == 1 {
					ph[i].DataLocality = 0.25
					ph[i].BranchNoise = 0.25
				}
			}
			s.Phases = ph
		}),
	}}
}

// BurstySuite returns the clustered-miss family: stationary parameters
// except that data accesses alternate between calm locality-governed
// stretches and bursts that scatter uniformly over the footprint. Mean
// behaviour matches a stationary workload of the same miss ratio; the
// variance — miss storms piling into the MSHRs — is what the paper's
// steady-state memory-level-parallelism term does not see.
func BurstySuite(opts Options) Suite {
	opts = opts.withDefaults()
	const name = "bursty"
	mk := func(wl string, frac, length float64, mut func(*trace.Spec)) trace.Spec {
		s := familyBase(name, wl, opts)
		s.BurstFrac = frac
		s.BurstLen = length
		if mut != nil {
			mut(&s)
		}
		return s
	}
	return Suite{Name: name, Workloads: []trace.Spec{
		// Short, rare bursts: near-stationary control point.
		mk("drizzle", 0.05, 8, nil),
		// The reference storm: a fifth of accesses in 32-access bursts.
		mk("squall", 0.20, 32, nil),
		// Long heavy bursts over a big footprint.
		mk("monsoon", 0.40, 128, func(s *trace.Spec) { s.DataFootprint = 256 << 20 }),
		// Very short frequent bursts — scattered misses, minimal runs.
		mk("microburst", 0.10, 4, nil),
		// Bursts long enough to drain and refill the whole MSHR file.
		mk("longstorm", 0.30, 512, func(s *trace.Spec) { s.DataFootprint = 256 << 20 }),
		// Serialized storms: bursts whose loads also chase pointers, so
		// the clustered misses cannot overlap.
		mk("chase-storm", 0.20, 64, func(s *trace.Spec) { s.PointerChaseFrac = 0.30 }),
		// A cache-resident hot set between storms.
		mk("hot-calm", 0.15, 48, func(s *trace.Spec) {
			s.HotBytes = 2 << 20
			s.DataFootprint = 128 << 20
		}),
		// Burst-dominated: the calm state is the exception.
		mk("saturate", 0.60, 256, func(s *trace.Spec) { s.DataFootprint = 256 << 20 }),
	}}
}
