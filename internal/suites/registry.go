package suites

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/trace"
)

// ErrUnknownSuite is wrapped by ByName failures for names absent from
// the registry. Callers (the serving layer's error classifier) match it
// with errors.Is — never by error text, which a suite name could
// collide with.
var ErrUnknownSuite = errors.New("unknown suite")

// Source classifies where a suite's workloads come from.
type Source string

const (
	// SourceBuiltin marks suites whose workloads are generated from
	// curated Specs (the paper suites and synthetic families).
	SourceBuiltin Source = "builtin"
	// SourceFile marks suites whose workloads are recorded trace files
	// imported from disk.
	SourceFile Source = "file"
)

// FilePrefix is the dynamic suite-spec form: "file:PATH" resolves PATH
// (one .mtrc trace file, or a directory of them) as a suite without
// registration, anywhere a suite name is accepted — campaigns, sweeps,
// plans, and the daemon.
const FilePrefix = "file:"

// The suite registry maps names to suite builders, mirroring the machine
// registry in internal/uarch: experiments name suites declaratively and
// the registry resolves them, so new workload collections plug in
// without touching the experiment stack. The paper suites and synthetic
// families self-register in init; trace files join via RegisterFile or
// the "file:" spec form.
var (
	regMu    sync.RWMutex
	registry = map[string]entry{}
)

type entry struct {
	build  func(Options) (Suite, error)
	source Source
}

// Builder instantiates a suite with the given options.
type Builder func(Options) Suite

// Register adds a named builtin suite builder. The builder must produce
// suites whose Name matches the registered name. Registering a name
// twice is an error.
func Register(name string, b Builder) error {
	if b == nil {
		return fmt.Errorf("suites: nil builder for suite %q", name)
	}
	return register(name, entry{
		build:  func(opts Options) (Suite, error) { return b(opts), nil },
		source: SourceBuiltin,
	})
}

// MustRegister is Register, panicking on error.
func MustRegister(name string, b Builder) {
	if err := Register(name, b); err != nil {
		panic(err)
	}
}

// RegisterFile adds a named file-backed suite from path — one .mtrc
// trace file or a directory of them. The files are read and verified
// now (checksums included), and the resulting workload set is cached:
// listing the suite later costs nothing, and a file rewritten after
// registration is caught at materialization time by the content-hash
// check. File suites carry their own recorded streams, so the builder
// ignores Options.NumOps and rejects non-zero SeedBase.
func RegisterFile(name, path string) error {
	suite, err := loadFileSuite(path)
	if err != nil {
		return err
	}
	suite.Name = name
	return register(name, entry{
		build: func(opts Options) (Suite, error) {
			if opts.SeedBase != 0 {
				return Suite{}, fmt.Errorf("suites: %s: file-backed suites carry recorded traces and cannot be re-seeded (SeedBase=%d)", name, opts.SeedBase)
			}
			return suite, nil
		},
		source: SourceFile,
	})
}

func register(name string, e entry) error {
	if name == "" {
		return fmt.Errorf("suites: cannot register suite with empty name")
	}
	if strings.HasPrefix(name, FilePrefix) {
		return fmt.Errorf("suites: name %q collides with the %q spec form", name, FilePrefix)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("suites: suite %q already registered", name)
	}
	registry[name] = e
	return nil
}

// Names returns all registered suite names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName instantiates the suite with the given options. Besides
// registered names it accepts the dynamic "file:PATH" form, which
// resolves PATH as a file-backed suite on the spot.
func ByName(name string, opts Options) (Suite, error) {
	if path, ok := strings.CutPrefix(name, FilePrefix); ok {
		if opts.SeedBase != 0 {
			return Suite{}, fmt.Errorf("suites: %s: file-backed suites carry recorded traces and cannot be re-seeded (SeedBase=%d)", name, opts.SeedBase)
		}
		s, err := loadFileSuite(path)
		if err != nil {
			return Suite{}, err
		}
		s.Name = name
		return s, nil
	}
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Suite{}, fmt.Errorf("suites: %w %q (registered: %v)", ErrUnknownSuite, name, Names())
	}
	s, err := e.build(opts)
	if err != nil {
		return Suite{}, err
	}
	if s.Name != name {
		return Suite{}, fmt.Errorf("suites: builder for %q produced suite named %q", name, s.Name)
	}
	return s, nil
}

// SuiteSource classifies a suite name without instantiating it:
// SourceFile for "file:" specs and registered file suites, SourceBuiltin
// for generated ones, ErrUnknownSuite otherwise.
func SuiteSource(name string) (Source, error) {
	if strings.HasPrefix(name, FilePrefix) {
		return SourceFile, nil
	}
	regMu.RLock()
	e, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return "", fmt.Errorf("suites: %w %q", ErrUnknownSuite, name)
	}
	return e.source, nil
}

// IsFileBacked reports whether the name denotes a file-backed suite —
// either the "file:" spec form or a RegisterFile registration. Unknown
// names report false; resolution errors surface later in ByName.
func IsFileBacked(name string) bool {
	src, err := SuiteSource(name)
	return err == nil && src == SourceFile
}

// loadFileSuite resolves path into a suite: a single trace file becomes
// a one-workload suite, a directory contributes every *.mtrc file in
// sorted name order. Each file is fully verified (ReadFileSpec streams
// it through the checksum) but nothing is materialized.
func loadFileSuite(path string) (Suite, error) {
	info, err := os.Stat(path)
	if err != nil {
		return Suite{}, fmt.Errorf("suites: %w", err)
	}
	var files []string
	if info.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "*"+trace.FileExt))
		if err != nil {
			return Suite{}, fmt.Errorf("suites: %s: %w", path, err)
		}
		if len(files) == 0 {
			return Suite{}, fmt.Errorf("suites: %s: no %s trace files in directory", path, trace.FileExt)
		}
		sort.Strings(files)
	} else {
		files = []string{path}
	}

	s := Suite{Name: FilePrefix + path}
	seen := make(map[string]string, len(files))
	for _, f := range files {
		spec, err := trace.ReadFileSpec(f)
		if err != nil {
			return Suite{}, fmt.Errorf("suites: %w", err)
		}
		if prev, dup := seen[spec.Name]; dup {
			return Suite{}, fmt.Errorf("suites: %s: workload %q appears in both %s and %s", path, spec.Name, prev, f)
		}
		seen[spec.Name] = f
		s.Workloads = append(s.Workloads, spec)
	}
	return s, nil
}

func init() {
	MustRegister("cpu2000", CPU2000Like)
	MustRegister("cpu2006", CPU2006Like)
	MustRegister("phased", PhasedSuite)
	MustRegister("bursty", BurstySuite)
}
