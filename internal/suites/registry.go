package suites

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrUnknownSuite is wrapped by ByName failures for names absent from
// the registry. Callers (the serving layer's error classifier) match it
// with errors.Is — never by error text, which a suite name could
// collide with.
var ErrUnknownSuite = errors.New("unknown suite")

// The suite registry maps names to suite builders, mirroring the machine
// registry in internal/uarch: experiments name suites declaratively and
// the registry resolves them, so new workload collections plug in
// without touching the experiment stack. The two paper suites
// self-register in init.
var (
	regMu    sync.RWMutex
	registry = map[string]Builder{}
)

// Builder instantiates a suite with the given options.
type Builder func(Options) Suite

// Register adds a named suite builder. The builder must produce suites
// whose Name matches the registered name. Registering a name twice is an
// error.
func Register(name string, b Builder) error {
	if name == "" {
		return fmt.Errorf("suites: cannot register suite with empty name")
	}
	if b == nil {
		return fmt.Errorf("suites: nil builder for suite %q", name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("suites: suite %q already registered", name)
	}
	registry[name] = b
	return nil
}

// MustRegister is Register, panicking on error.
func MustRegister(name string, b Builder) {
	if err := Register(name, b); err != nil {
		panic(err)
	}
}

// Names returns all registered suite names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ByName instantiates the registered suite with the given options.
func ByName(name string, opts Options) (Suite, error) {
	regMu.RLock()
	b, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Suite{}, fmt.Errorf("suites: %w %q (registered: %v)", ErrUnknownSuite, name, Names())
	}
	s := b(opts)
	if s.Name != name {
		return Suite{}, fmt.Errorf("suites: builder for %q produced suite named %q", name, s.Name)
	}
	return s, nil
}

func init() {
	MustRegister("cpu2000", CPU2000Like)
	MustRegister("cpu2006", CPU2006Like)
}
