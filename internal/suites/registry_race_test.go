package suites

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentAccess contends Register, ByName and Names at
// once so the registry's RWMutex discipline is exercised under -race.
// Registrations are process-global and permanent, so test names are
// namespaced.
func TestRegistryConcurrentAccess(t *testing.T) {
	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("racetest-suite-%d", i)
			err := Register(name, func(opts Options) Suite {
				s := CPU2000Like(opts)
				s.Name = name
				return s
			})
			if err != nil {
				t.Errorf("Register(%s): %v", name, err)
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ByName("cpu2006", Options{NumOps: 1000}); err != nil {
				t.Errorf("ByName(cpu2006): %v", err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if names := Names(); len(names) < 2 {
				t.Errorf("Names() lost the stock suites: %v", names)
			}
		}()
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		name := fmt.Sprintf("racetest-suite-%d", i)
		s, err := ByName(name, Options{NumOps: 1000})
		if err != nil {
			t.Errorf("registration lost: %v", err)
			continue
		}
		if len(s.Workloads) == 0 {
			t.Errorf("suite %s instantiated empty", name)
		}
	}
}

// TestByNameConcurrentDuplicates races duplicate registrations: exactly
// one wins, the rest error.
func TestByNameConcurrentDuplicates(t *testing.T) {
	const n = 12
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = Register("racetest-dup-suite", func(opts Options) Suite {
				s := CPU2006Like(opts)
				s.Name = "racetest-dup-suite"
				return s
			})
		}(i)
	}
	wg.Wait()
	won := 0
	for _, err := range errs {
		if err == nil {
			won++
		}
	}
	if won != 1 {
		t.Errorf("%d registrations of the same name succeeded, want exactly 1", won)
	}
}
