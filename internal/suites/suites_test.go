package suites

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestSuiteSizesMatchPaper(t *testing.T) {
	s2000 := CPU2000Like(Options{})
	s2006 := CPU2006Like(Options{})
	if len(s2000.Workloads) != 48 {
		t.Errorf("CPU2000-like has %d workloads, want 48", len(s2000.Workloads))
	}
	if len(s2006.Workloads) != 55 {
		t.Errorf("CPU2006-like has %d workloads, want 55", len(s2006.Workloads))
	}
}

func TestAllSpecsValid(t *testing.T) {
	for _, s := range []Suite{CPU2000Like(Options{}), CPU2006Like(Options{})} {
		for _, w := range s.Workloads {
			if err := w.Validate(); err != nil {
				t.Errorf("%s/%s: %v", s.Name, w.Name, err)
			}
		}
	}
}

func TestWorkloadNamesUnique(t *testing.T) {
	for _, s := range []Suite{CPU2000Like(Options{}), CPU2006Like(Options{})} {
		seen := map[string]bool{}
		for _, w := range s.Workloads {
			if seen[w.Name] {
				t.Errorf("%s: duplicate workload name %s", s.Name, w.Name)
			}
			seen[w.Name] = true
		}
	}
}

func TestSeedsUnique(t *testing.T) {
	seen := map[uint64]string{}
	for _, s := range []Suite{CPU2000Like(Options{}), CPU2006Like(Options{})} {
		for _, w := range s.Workloads {
			if prev, ok := seen[w.Seed]; ok {
				t.Errorf("seed collision: %s/%s and %s", s.Name, w.Name, prev)
			}
			seen[w.Seed] = s.Name + "/" + w.Name
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := CPU2006Like(Options{})
	b := CPU2006Like(Options{})
	for i := range a.Workloads {
		if a.Workloads[i].ConfigHash() != b.Workloads[i].ConfigHash() {
			t.Fatalf("workload %d differs between constructions", i)
		}
	}
}

func Test2006MoreMemoryIntensive(t *testing.T) {
	s2000 := CPU2000Like(Options{})
	s2006 := CPU2006Like(Options{})
	if s2006.MeanDataFootprint() < 2*s2000.MeanDataFootprint() {
		t.Errorf("CPU2006-like mean footprint %.0fMB should dwarf CPU2000-like %.0fMB",
			s2006.MeanDataFootprint()/(1<<20), s2000.MeanDataFootprint()/(1<<20))
	}
}

func TestNumOpsOption(t *testing.T) {
	s := CPU2000Like(Options{NumOps: 12345})
	for _, w := range s.Workloads {
		if w.NumOps != 12345 {
			t.Fatalf("workload %s NumOps %d", w.Name, w.NumOps)
		}
	}
	d := CPU2000Like(Options{})
	if d.Workloads[0].NumOps != 300000 {
		t.Errorf("default NumOps %d, want 300000", d.Workloads[0].NumOps)
	}
}

func TestSeedBaseChangesSeedsOnly(t *testing.T) {
	a := CPU2000Like(Options{})
	b := CPU2000Like(Options{SeedBase: 99})
	if a.Workloads[0].Seed == b.Workloads[0].Seed {
		t.Error("SeedBase should alter seeds")
	}
	if a.Workloads[0].Name != b.Workloads[0].Name {
		t.Error("SeedBase should not alter names")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"cpu2000", "cpu2006"} {
		s, err := ByName(n, Options{})
		if err != nil || s.Name != n {
			t.Errorf("ByName(%s): %v, %s", n, err, s.Name)
		}
	}
	if _, err := ByName("cpu2017", Options{}); err == nil {
		t.Error("expected error for unknown suite")
	}
}

func TestFind(t *testing.T) {
	s := CPU2006Like(Options{})
	w, ok := s.Find("mcf")
	if !ok || w.Name != "mcf" {
		t.Error("mcf should be present in CPU2006-like")
	}
	if _, ok := s.Find("doom3"); ok {
		t.Error("doom3 should not be present")
	}
}

func TestPaperOutlierCharacteristics(t *testing.T) {
	// calculix and gromacs are the paper's low-miss outliers; milc and
	// soplex its high-miss ones (Section 5.1/5.2). Check the suite encodes
	// that contrast.
	s := CPU2006Like(Options{})
	calculix, _ := s.Find("calculix")
	gromacs, _ := s.Find("gromacs")
	milc, _ := s.Find("milc")
	soplex, _ := s.Find("soplex.1")
	for _, low := range []trace.Spec{calculix, gromacs} {
		if low.DataFootprint > 4<<20 {
			t.Errorf("%s footprint %d should be cache-resident", low.Name, low.DataFootprint)
		}
		if low.BranchHardFrac > 0.1 {
			t.Errorf("%s should have low branch entropy", low.Name)
		}
	}
	for _, high := range []trace.Spec{milc, soplex} {
		if high.DataFootprint < 64<<20 {
			t.Errorf("%s footprint %d should be memory-bound", high.Name, high.DataFootprint)
		}
	}
	// mcf chases pointers.
	mcf, _ := s.Find("mcf")
	if mcf.PointerChaseFrac < 0.3 {
		t.Errorf("mcf chase fraction %.2f should be high", mcf.PointerChaseFrac)
	}
	// gcc has a big code footprint.
	gcc, _ := s.Find("gcc.1")
	if gcc.CodeFootprint < 1<<20 {
		t.Errorf("gcc code footprint %d should exceed 1MB", gcc.CodeFootprint)
	}
}

func TestInputVariantsDiffer(t *testing.T) {
	s := CPU2000Like(Options{})
	g1, ok1 := s.Find("gzip.1")
	g2, ok2 := s.Find("gzip.2")
	if !ok1 || !ok2 {
		t.Fatal("gzip variants missing")
	}
	if g1.Seed == g2.Seed {
		t.Error("variants must have distinct seeds")
	}
	if g1.DataFootprint == g2.DataFootprint {
		t.Error("variants should perturb footprints")
	}
	if !strings.HasPrefix(g1.Name, "gzip.") {
		t.Errorf("variant naming: %s", g1.Name)
	}
}

func TestSuitesGenerateTraces(t *testing.T) {
	// Spot-check that a few representative specs actually generate.
	s := CPU2006Like(Options{NumOps: 2000})
	for _, name := range []string{"mcf", "gcc.1", "lbm", "calculix"} {
		w, ok := s.Find(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		g := trace.New(w)
		var op trace.MicroOp
		n := 0
		for g.Next(&op) {
			n++
		}
		if n != 2000 {
			t.Errorf("%s generated %d ops", name, n)
		}
	}
}

// TestSuiteSpecsValidAcrossSeedBases: every workload of every
// registered suite must produce a valid trace spec under every seed
// base a seed sweep can reach, not just the canonical instantiation.
// Regression: the hot-set and footprint jitters are independent draws,
// and certain bases used to draw HotBytes beyond DataFootprint (e.g.
// cpu2000/art at base 3), panicking trace generation mid-sweep.
func TestSuiteSpecsValidAcrossSeedBases(t *testing.T) {
	for _, name := range Names() {
		if _, err := ByName(name, Options{}); err != nil {
			continue // a registry-test fixture with a misbehaving builder
		}
		if IsFileBacked(name) {
			continue // recorded traces have no seed axis; ByName rejects SeedBase
		}
		for base := uint64(0); base < 64; base++ {
			s, err := ByName(name, Options{NumOps: 1000, SeedBase: base})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range s.Workloads {
				if err := w.Validate(); err != nil {
					t.Errorf("suite %s seed base %d: %v", name, base, err)
				}
			}
		}
	}
}
