package suites

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := Register("cpu2000", CPU2000Like); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration: got %v", err)
	}
	if err := Register("", CPU2000Like); err == nil {
		t.Error("empty name should not register")
	}
	if err := Register("nilbuilder", nil); err == nil {
		t.Error("nil builder should not register")
	}
}

func TestNamesContainsPaperSuites(t *testing.T) {
	names := Names()
	for i, n := range names {
		if i > 0 && names[i-1] >= n {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["cpu2000"] || !found["cpu2006"] {
		t.Errorf("paper suites missing from registry: %v", names)
	}
}

func TestByNameUnknownListsRegistered(t *testing.T) {
	_, err := ByName("cpu2017", Options{})
	if err == nil || !strings.Contains(err.Error(), "unknown suite") {
		t.Fatalf("expected unknown suite error, got %v", err)
	}
	if !strings.Contains(err.Error(), "cpu2006") {
		t.Errorf("error should list registered names: %v", err)
	}
}

func TestRegisterCustomSuite(t *testing.T) {
	build := func(opts Options) Suite {
		opts = opts.withDefaults()
		return Suite{Name: "registry-micro", Workloads: []trace.Spec{{
			Name: "loopy", Seed: 42, NumOps: opts.NumOps,
			LoadFrac: 0.2, StoreFrac: 0.1,
			CodeFootprint: 4096, CodeLocality: 0.9,
			DataFootprint: 8192, DataLocality: 0.9,
			DepDistMean: 5,
		}}}
	}
	if err := Register("registry-micro", build); err != nil {
		t.Fatal(err)
	}
	s, err := ByName("registry-micro", Options{NumOps: 777})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Workloads) != 1 || s.Workloads[0].NumOps != 777 {
		t.Errorf("custom suite not built with options: %+v", s)
	}
}

func TestByNameRejectsMisnamedBuilder(t *testing.T) {
	if err := Register("liar", func(opts Options) Suite {
		return Suite{Name: "something-else"}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("liar", Options{}); err == nil {
		t.Error("builder producing a differently named suite should fail")
	}
}
