package suites

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestRoundTripAllRegisteredSuites is the format's property test: for
// every workload of every registered suite — the SPEC-like pair and
// both synthetic families — Materialize → Encode → Decode → Replay is
// op-for-op identical to replaying the original buffer. MicroOp is
// pure scalars, so struct equality is bit-identity.
func TestRoundTripAllRegisteredSuites(t *testing.T) {
	if testing.Short() {
		t.Skip("materializes every workload of every suite")
	}
	for _, name := range Names() {
		suite, err := ByName(name, Options{NumOps: 2000})
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range suite.Workloads {
			orig := trace.Materialize(spec)
			var f bytes.Buffer
			if err := orig.Encode(&f); err != nil {
				t.Fatalf("%s/%s: encode: %v", name, spec.Name, err)
			}
			dec, err := trace.Decode(bytes.NewReader(f.Bytes()))
			if err != nil {
				t.Fatalf("%s/%s: decode: %v", name, spec.Name, err)
			}
			oc, dc := orig.Replay(), dec.Replay()
			var a, b trace.MicroOp
			for i := 0; oc.Next(&a); i++ {
				if !dc.Next(&b) {
					t.Fatalf("%s/%s: decoded stream ends at op %d", name, spec.Name, i)
				}
				if a != b {
					t.Fatalf("%s/%s: op %d differs after round trip:\n  %+v\n  %+v", name, spec.Name, i, a, b)
				}
			}
			if dc.Next(&b) {
				t.Fatalf("%s/%s: decoded stream too long", name, spec.Name)
			}
		}
	}
}

// exportSuite writes every workload of a suite to dir as .mtrc files.
func exportSuite(t *testing.T, name string, opts Options, dir string) Suite {
	t.Helper()
	suite, err := ByName(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range suite.Workloads {
		buf, err := trace.MaterializeSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteFile(filepath.Join(dir, spec.Name+trace.FileExt), buf); err != nil {
			t.Fatal(err)
		}
	}
	return suite
}

func TestFileSpecForm(t *testing.T) {
	dir := t.TempDir()
	gen := exportSuite(t, "bursty", Options{NumOps: 2000}, dir)

	spec := FilePrefix + dir
	got, err := ByName(spec, Options{NumOps: 999999}) // NumOps ignored for files
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != spec {
		t.Errorf("suite name %q, want %q", got.Name, spec)
	}
	if len(got.Workloads) != len(gen.Workloads) {
		t.Fatalf("file suite has %d workloads, generated %d", len(got.Workloads), len(gen.Workloads))
	}
	for _, wl := range got.Workloads {
		if wl.Content == "" || wl.SourceFile == "" {
			t.Errorf("workload %s missing Content/SourceFile", wl.Name)
		}
		if wl.NumOps != 2000 {
			t.Errorf("workload %s carries %d ops, want the recorded 2000", wl.Name, wl.NumOps)
		}
		genSpec, ok := gen.Find(wl.Name)
		if !ok {
			t.Fatalf("file suite workload %s not in generated suite", wl.Name)
		}
		if wl.ConfigHash() == genSpec.ConfigHash() {
			t.Errorf("workload %s: file-backed identity must differ from generated (Content folds in)", wl.Name)
		}
	}

	// A single file resolves as a one-workload suite.
	single := filepath.Join(dir, gen.Workloads[0].Name+trace.FileExt)
	one, err := ByName(FilePrefix+single, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Workloads) != 1 || one.Workloads[0].Name != gen.Workloads[0].Name {
		t.Fatalf("single-file suite resolved to %+v", one.Workloads)
	}

	// Re-seeding a recorded trace is impossible; fail loudly.
	if _, err := ByName(spec, Options{SeedBase: 3}); err == nil {
		t.Error("file suite accepted a SeedBase")
	}
}

func TestRegisterFile(t *testing.T) {
	dir := t.TempDir()
	exportSuite(t, "phased", Options{NumOps: 2000}, dir)

	const name = "phased-import-test"
	if err := RegisterFile(name, dir); err != nil {
		t.Fatal(err)
	}
	got, err := ByName(name, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != name || len(got.Workloads) != 8 {
		t.Fatalf("registered file suite %q has %d workloads", got.Name, len(got.Workloads))
	}
	src, err := SuiteSource(name)
	if err != nil || src != SourceFile {
		t.Errorf("SuiteSource = %v, %v; want file", src, err)
	}
	if !IsFileBacked(name) {
		t.Error("IsFileBacked(registered file suite) = false")
	}
	if IsFileBacked("cpu2000") {
		t.Error("IsFileBacked(cpu2000) = true")
	}
	if !IsFileBacked(FilePrefix + dir) {
		t.Error("IsFileBacked(file: spec) = false")
	}
	if _, err := ByName(name, Options{SeedBase: 1}); err == nil {
		t.Error("registered file suite accepted a SeedBase")
	}
	if err := RegisterFile(name, dir); err == nil {
		t.Error("duplicate registration succeeded")
	}
	if err := RegisterFile("", dir); err == nil {
		t.Error("empty name registration succeeded")
	}
	if err := RegisterFile(FilePrefix+"x", dir); err == nil {
		t.Error("name colliding with the file: form succeeded")
	}
	found := false
	for _, n := range Names() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Error("registered file suite missing from Names()")
	}
}

func TestFileSuiteErrors(t *testing.T) {
	if _, err := ByName(FilePrefix+filepath.Join(t.TempDir(), "nope"), Options{}); err == nil {
		t.Error("missing path resolved")
	}
	if _, err := ByName(FilePrefix+t.TempDir(), Options{}); err == nil {
		t.Error("empty directory resolved")
	}
	if _, err := SuiteSource("no-such-suite"); !errors.Is(err, ErrUnknownSuite) {
		t.Errorf("SuiteSource(unknown) = %v, want ErrUnknownSuite", err)
	}

	// Duplicate workload names across files are ambiguous.
	dir := t.TempDir()
	spec := trace.Spec{
		Name: "dup", Seed: 3, NumOps: 1000,
		LoadFrac: 0.2, BranchHardFrac: 0.2,
		CodeFootprint: 16 << 10, CodeLocality: 0.8,
		DataFootprint: 1 << 20, DataLocality: 0.5, DepDistMean: 6,
	}
	buf := trace.Materialize(spec)
	for _, f := range []string{"a.mtrc", "b.mtrc"} {
		if err := trace.WriteFile(filepath.Join(dir, f), buf); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ByName(FilePrefix+dir, Options{}); err == nil || !strings.Contains(err.Error(), "dup") {
		t.Errorf("duplicate workload names resolved: %v", err)
	}

	// A corrupt file in the directory fails the whole suite.
	dir2 := t.TempDir()
	if err := trace.WriteFile(filepath.Join(dir2, "ok.mtrc"), buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, "bad.mtrc"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName(FilePrefix+dir2, Options{}); err == nil {
		t.Error("suite with a corrupt member resolved")
	}
}

func TestFamilySuitesRegistered(t *testing.T) {
	for _, tc := range []struct {
		name string
		want int
	}{{"phased", 8}, {"bursty", 8}} {
		s, err := ByName(tc.name, Options{NumOps: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Workloads) != tc.want {
			t.Errorf("%s has %d workloads, want %d", tc.name, len(s.Workloads), tc.want)
		}
		for _, wl := range s.Workloads {
			if wl.NumOps != 1000 {
				t.Errorf("%s/%s ignores Options.NumOps", tc.name, wl.Name)
			}
			if err := wl.Validate(); err != nil {
				t.Errorf("%s/%s: %v", tc.name, wl.Name, err)
			}
		}
		src, err := SuiteSource(tc.name)
		if err != nil || src != SourceBuiltin {
			t.Errorf("SuiteSource(%s) = %v, %v; want builtin", tc.name, src, err)
		}
	}
	// The families must actually use their modulations.
	ph, _ := ByName("phased", Options{NumOps: 1000})
	for _, wl := range ph.Workloads {
		if len(wl.Phases) < 2 {
			t.Errorf("phased/%s has no phase schedule", wl.Name)
		}
	}
	bu, _ := ByName("bursty", Options{NumOps: 1000})
	for _, wl := range bu.Workloads {
		if wl.BurstFrac <= 0 || wl.BurstLen < 1 {
			t.Errorf("bursty/%s has no burst modulation", wl.Name)
		}
	}
}
