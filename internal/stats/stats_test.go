package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v want %v (tol %v)", msg, got, want, tol)
	}
}

func TestMean(t *testing.T) {
	approx(t, Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12, "mean 1..4")
	approx(t, Mean(nil), 0, 0, "mean empty")
	approx(t, Mean([]float64{-5}), -5, 0, "mean single")
}

func TestGeoMean(t *testing.T) {
	approx(t, GeoMean([]float64{1, 4}), 2, 1e-12, "geomean 1,4")
	approx(t, GeoMean([]float64{2, 8}), 4, 1e-12, "geomean 2,8")
	approx(t, GeoMean(nil), 0, 0, "geomean empty")
	// Non-positive values are skipped.
	approx(t, GeoMean([]float64{-1, 0, 9}), 9, 1e-12, "geomean skips nonpositive")
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Variance(xs), 4, 1e-12, "variance")
	approx(t, StdDev(xs), 2, 1e-12, "std")
	approx(t, Variance([]float64{3}), 0, 0, "variance single")
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	approx(t, Min(xs), -1, 0, "min")
	approx(t, Max(xs), 7, 0, "max")
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil) should be +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil) should be -Inf")
	}
}

func TestRelErr(t *testing.T) {
	approx(t, RelErr(11, 10), 0.1, 1e-12, "relerr over")
	approx(t, RelErr(9, 10), 0.1, 1e-12, "relerr under")
	approx(t, RelErr(0, 0), 0, 0, "relerr both zero")
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) should be +Inf")
	}
	// Negative actuals use the absolute value as denominator.
	approx(t, RelErr(-9, -10), 0.1, 1e-12, "relerr negative")
}

func TestMAREAndMax(t *testing.T) {
	pred := []float64{11, 9, 10}
	act := []float64{10, 10, 10}
	approx(t, MARE(pred, act), (0.1+0.1+0)/3, 1e-12, "mare")
	approx(t, MaxRelErr(pred, act), 0.1, 1e-12, "max rel err")
}

func TestRelErrsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	RelErrs([]float64{1}, []float64{1, 2})
}

func TestRelSqErrSum(t *testing.T) {
	// (11-10)^2/10 + (8-10)^2/10 = 0.1 + 0.4
	approx(t, RelSqErrSum([]float64{11, 8}, []float64{10, 10}), 0.5, 1e-12, "relsq")
	// Zero actual falls back to absolute squared error.
	approx(t, RelSqErrSum([]float64{2}, []float64{0}), 4, 1e-12, "relsq zero actual")
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, Percentile(xs, 0), 1, 0, "p0")
	approx(t, Percentile(xs, 100), 5, 0, "p100")
	approx(t, Percentile(xs, 50), 3, 1e-12, "p50")
	approx(t, Percentile(xs, 25), 2, 1e-12, "p25")
	approx(t, Percentile(xs, 10), 1.4, 1e-12, "p10 interpolated")
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{0.05, 0.15, 0.25, 0.35}
	approx(t, FractionBelow(xs, 0.20), 0.5, 1e-12, "fraction below")
	approx(t, FractionBelow(xs, 0.05), 0, 0, "strictly below")
	approx(t, FractionBelow(nil, 1), 0, 0, "empty")
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{0.3, 0.1, 0.2})
	if len(pts) != 3 {
		t.Fatalf("want 3 points, got %d", len(pts))
	}
	approx(t, pts[0].Value, 0.1, 0, "cdf sorted value 0")
	approx(t, pts[2].Value, 0.3, 0, "cdf sorted value 2")
	approx(t, pts[0].Frac, 1.0/3, 1e-12, "cdf frac 0")
	approx(t, pts[2].Frac, 1, 1e-12, "cdf frac 2")
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Errorf("N=%d", s.N)
	}
	approx(t, s.Mean, 3, 1e-12, "summary mean")
	approx(t, s.Median, 3, 1e-12, "summary median")
	approx(t, s.Min, 1, 0, "summary min")
	approx(t, s.Max, 5, 0, "summary max")
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	approx(t, Pearson(xs, ys), 1, 1e-12, "perfect positive")
	neg := []float64{8, 6, 4, 2}
	approx(t, Pearson(xs, neg), -1, 1e-12, "perfect negative")
	if !math.IsNaN(Pearson(xs, []float64{1, 1, 1, 1})) {
		t.Error("zero-variance Pearson should be NaN")
	}
	if !math.IsNaN(Pearson(xs, []float64{1})) {
		t.Error("mismatched Pearson should be NaN")
	}
}

// Property: MARE is invariant under positive scaling of both vectors.
func TestMAREScaleInvariantProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(math.Abs(v), 1e6)
		}
		p := []float64{clamp(a) + 1, clamp(b) + 2}
		y := []float64{clamp(c) + 1, clamp(a) + 3}
		k := 3.7
		ps := []float64{p[0] * k, p[1] * k}
		ys := []float64{y[0] * k, y[1] * k}
		return math.Abs(MARE(p, y)-MARE(ps, ys)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 12.5 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CDF fractions are increasing and end at exactly 1.
func TestCDFProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].Frac <= pts[i-1].Frac || pts[i].Value < pts[i-1].Value {
				return false
			}
		}
		return pts[len(pts)-1].Frac == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
