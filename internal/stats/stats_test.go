package stats

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %v want %v (tol %v)", msg, got, want, tol)
	}
}

func TestMean(t *testing.T) {
	approx(t, Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12, "mean 1..4")
	approx(t, Mean(nil), 0, 0, "mean empty")
	approx(t, Mean([]float64{-5}), -5, 0, "mean single")
}

func TestGeoMean(t *testing.T) {
	approx(t, GeoMean([]float64{1, 4}), 2, 1e-12, "geomean 1,4")
	approx(t, GeoMean([]float64{2, 8}), 4, 1e-12, "geomean 2,8")
	approx(t, GeoMean(nil), 0, 0, "geomean empty")
	// Non-positive values are outside the geometric mean's domain and
	// must be skipped — log(0) is -Inf and log(<0) is NaN, neither of
	// which may leak out.
	approx(t, GeoMean([]float64{-1, 0, 9}), 9, 1e-12, "geomean skips nonpositive")
	approx(t, GeoMean([]float64{0, 0, 0}), 0, 0, "geomean all zero")
	approx(t, GeoMean([]float64{-3, -7}), 0, 0, "geomean all negative")
	for _, xs := range [][]float64{nil, {0}, {-1}, {0, -2, 0}} {
		if g := GeoMean(xs); math.IsNaN(g) || math.IsInf(g, 0) {
			t.Errorf("GeoMean(%v) = %v, want finite", xs, g)
		}
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Variance(xs), 4, 1e-12, "variance")
	approx(t, StdDev(xs), 2, 1e-12, "std")
	approx(t, Variance([]float64{3}), 0, 0, "variance single")
}

func TestSampleVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Population variance 4 over n=8 becomes 32/7 under Bessel.
	approx(t, SampleVariance(xs), 32.0/7, 1e-12, "sample variance")
	approx(t, SampleStdDev(xs), math.Sqrt(32.0/7), 1e-12, "sample std")
	// n < 2 carries no spread information: defined 0, never NaN.
	approx(t, SampleVariance(nil), 0, 0, "sample variance empty")
	approx(t, SampleVariance([]float64{3}), 0, 0, "sample variance single")
	approx(t, SampleStdDev([]float64{3}), 0, 0, "sample std single")
	// Sample variance is strictly larger than population variance for
	// any sample with spread.
	if SampleVariance(xs) <= Variance(xs) {
		t.Error("sample variance should exceed population variance")
	}
}

func TestCI95(t *testing.T) {
	// n=4, mean 5, sample std 2: half-width t(0.975,3)·2/√4 = 3.182.
	xs := []float64{3, 4, 6, 7}
	lo, hi, ok := CI95(xs)
	if !ok {
		t.Fatal("CI95 over 4 samples should be defined")
	}
	m, s := Mean(xs), SampleStdDev(xs)
	h := 3.182 * s / 2
	approx(t, lo, m-h, 1e-12, "ci lo")
	approx(t, hi, m+h, 1e-12, "ci hi")

	// Small n uses the t table, not the normal 1.96: for n=2 the
	// critical value is 12.706.
	lo2, hi2, ok2 := CI95([]float64{1, 3})
	if !ok2 {
		t.Fatal("CI95 over 2 samples should be defined")
	}
	h2 := 12.706 * SampleStdDev([]float64{1, 3}) / math.Sqrt2
	approx(t, lo2, 2-h2, 1e-9, "ci lo n=2")
	approx(t, hi2, 2+h2, 1e-9, "ci hi n=2")

	// Beyond df 30 the critical value falls back to 1.96.
	big := make([]float64, 40)
	for i := range big {
		big[i] = float64(i % 5)
	}
	loB, hiB, _ := CI95(big)
	hB := 1.96 * SampleStdDev(big) / math.Sqrt(40)
	approx(t, loB, Mean(big)-hB, 1e-12, "ci lo large n")
	approx(t, hiB, Mean(big)+hB, 1e-12, "ci hi large n")

	// No interval exists under two samples: ok=false, bounds collapse
	// to the mean and stay finite.
	for _, xs := range [][]float64{nil, {7}} {
		lo, hi, ok := CI95(xs)
		if ok {
			t.Errorf("CI95(%v) ok = true, want false", xs)
		}
		if lo != Mean(xs) || hi != Mean(xs) {
			t.Errorf("CI95(%v) = [%v, %v], want collapsed to mean", xs, lo, hi)
		}
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	approx(t, Min(xs), -1, 0, "min")
	approx(t, Max(xs), 7, 0, "max")
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil) should be +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil) should be -Inf")
	}
}

func TestRelErr(t *testing.T) {
	approx(t, RelErr(11, 10), 0.1, 1e-12, "relerr over")
	approx(t, RelErr(9, 10), 0.1, 1e-12, "relerr under")
	approx(t, RelErr(0, 0), 0, 0, "relerr both zero")
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) should be +Inf")
	}
	// Negative actuals use the absolute value as denominator.
	approx(t, RelErr(-9, -10), 0.1, 1e-12, "relerr negative")
}

func TestMAREAndMax(t *testing.T) {
	pred := []float64{11, 9, 10}
	act := []float64{10, 10, 10}
	approx(t, MARE(pred, act), (0.1+0.1+0)/3, 1e-12, "mare")
	approx(t, MaxRelErr(pred, act), 0.1, 1e-12, "max rel err")
}

func TestRelErrsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	RelErrs([]float64{1}, []float64{1, 2})
}

func TestRelSqErrSum(t *testing.T) {
	// (11-10)^2/10 + (8-10)^2/10 = 0.1 + 0.4
	approx(t, RelSqErrSum([]float64{11, 8}, []float64{10, 10}), 0.5, 1e-12, "relsq")
	// Zero actual falls back to absolute squared error.
	approx(t, RelSqErrSum([]float64{2}, []float64{0}), 4, 1e-12, "relsq zero actual")
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, Percentile(xs, 0), 1, 0, "p0")
	approx(t, Percentile(xs, 100), 5, 0, "p100")
	approx(t, Percentile(xs, 50), 3, 1e-12, "p50")
	approx(t, Percentile(xs, 25), 2, 1e-12, "p25")
	approx(t, Percentile(xs, 10), 1.4, 1e-12, "p10 interpolated")
	// An empty sample has no order statistics: defined 0, never the NaN
	// that encoding/json refuses to marshal.
	approx(t, Percentile(nil, 50), 0, 0, "percentile empty")
	approx(t, Percentile([]float64{}, 90), 0, 0, "percentile empty slice")
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{0.05, 0.15, 0.25, 0.35}
	approx(t, FractionBelow(xs, 0.20), 0.5, 1e-12, "fraction below")
	approx(t, FractionBelow(xs, 0.05), 0, 0, "strictly below")
	approx(t, FractionBelow(nil, 1), 0, 0, "empty")
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{0.3, 0.1, 0.2})
	if len(pts) != 3 {
		t.Fatalf("want 3 points, got %d", len(pts))
	}
	approx(t, pts[0].Value, 0.1, 0, "cdf sorted value 0")
	approx(t, pts[2].Value, 0.3, 0, "cdf sorted value 2")
	approx(t, pts[0].Frac, 1.0/3, 1e-12, "cdf frac 0")
	approx(t, pts[2].Frac, 1, 1e-12, "cdf frac 2")
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Errorf("N=%d", s.N)
	}
	approx(t, s.Mean, 3, 1e-12, "summary mean")
	approx(t, s.Median, 3, 1e-12, "summary median")
	approx(t, s.Min, 1, 0, "summary min")
	approx(t, s.Max, 5, 0, "summary max")
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

// TestSummarizeEmptyRoundTripsJSON pins the empty-input contract: the
// summary of no samples is the zero Summary, and it survives a JSON
// round trip. Before the guard, Median/P90 were NaN and Min/Max ±Inf —
// encoding/json errors on all of them, so any wire response embedding
// an empty-sample summary failed at encode time with a 500.
func TestSummarizeEmptyRoundTripsJSON(t *testing.T) {
	for _, xs := range [][]float64{nil, {}} {
		s := Summarize(xs)
		if s != (Summary{}) {
			t.Errorf("Summarize(%v) = %+v, want zero Summary", xs, s)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal empty summary: %v", err)
		}
		var back Summary
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal empty summary: %v", err)
		}
		if back != s {
			t.Errorf("round trip changed summary: %+v vs %+v", back, s)
		}
	}
	// A non-empty summary must round-trip too (all fields finite).
	s := Summarize([]float64{1, 2, 3})
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal summary: %v", err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Errorf("round trip changed summary: %+v vs %+v", back, s)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	approx(t, Pearson(xs, ys), 1, 1e-12, "perfect positive")
	neg := []float64{8, 6, 4, 2}
	approx(t, Pearson(xs, neg), -1, 1e-12, "perfect negative")
	if !math.IsNaN(Pearson(xs, []float64{1, 1, 1, 1})) {
		t.Error("zero-variance Pearson should be NaN")
	}
	if !math.IsNaN(Pearson(xs, []float64{1})) {
		t.Error("mismatched Pearson should be NaN")
	}
}

// Property: MARE is invariant under positive scaling of both vectors.
func TestMAREScaleInvariantProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(math.Abs(v), 1e6)
		}
		p := []float64{clamp(a) + 1, clamp(b) + 2}
		y := []float64{clamp(c) + 1, clamp(a) + 3}
		k := 3.7
		ps := []float64{p[0] * k, p[1] * k}
		ys := []float64{y[0] * k, y[1] * k}
		return math.Abs(MARE(p, y)-MARE(ps, ys)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 12.5 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CDF fractions are increasing and end at exactly 1.
func TestCDFProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pts := CDF(xs)
		for i := 1; i < len(pts); i++ {
			if pts[i].Frac <= pts[i-1].Frac || pts[i].Value < pts[i-1].Value {
				return false
			}
		}
		return pts[len(pts)-1].Frac == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
