// Package stats provides the statistical utilities used throughout the
// mechanistic-empirical modeling pipeline: error metrics (the paper's
// average absolute relative prediction error), summary statistics,
// percentiles, and cumulative error distributions (for Figure 3 style
// plots).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. The geometric mean is only
// defined over positive reals (log(0) is -Inf and log of a negative is
// NaN), so the domain is guarded explicitly: non-positive values are
// skipped and the mean is taken over the positive ones alone; when no
// value is positive — all zero, all negative, or an empty slice — the
// result is a defined 0, never -Inf or NaN.
func GeoMean(xs []float64) float64 {
	var s float64
	var n int
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleVariance returns the unbiased sample variance of xs (Bessel's
// correction: the squared deviations divided by n-1, not n). This is the
// estimator confidence intervals need when xs is a sample — a handful of
// seeds — rather than the whole population. Fewer than two samples carry
// no spread information; the result is then a defined 0 rather than the
// NaN a naive 0/0 would produce.
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// SampleStdDev returns the sample standard deviation of xs (the square
// root of SampleVariance), 0 for fewer than two samples.
func SampleStdDev(xs []float64) float64 { return math.Sqrt(SampleVariance(xs)) }

// tCrit95 holds the two-sided Student-t critical values t(0.975, df) for
// df 1..30. Seed sweeps have single-digit sample counts, where the
// normal 1.96 badly understates the interval (df=2 needs 4.30); past
// df 30 the t distribution is within ~2% of normal and tCrit falls back
// to 1.96.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tCrit(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.96
}

// CI95 returns the Student-t 95% confidence interval for the mean of xs,
// treating xs as an i.i.d. sample: mean ± t(0.975, n-1)·s/√n with s the
// sample (Bessel-corrected) standard deviation. With fewer than two
// samples no interval exists: ok is false and both bounds collapse to
// the mean, so callers that serialize the bounds unconditionally still
// emit finite JSON.
func CI95(xs []float64) (lo, hi float64, ok bool) {
	n := len(xs)
	m := Mean(xs)
	if n < 2 {
		return m, m, false
	}
	h := tCrit(n-1) * SampleStdDev(xs) / math.Sqrt(float64(n))
	return m - h, m + h, true
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// RelErr returns the absolute relative error |pred-actual|/actual.
// It returns +Inf when actual is zero and pred is not, and 0 when both are 0.
func RelErr(pred, actual float64) float64 {
	if actual == 0 {
		if pred == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(pred-actual) / math.Abs(actual)
}

// RelErrs returns the element-wise absolute relative errors of pred vs
// actual. The slices must have equal length.
func RelErrs(pred, actual []float64) []float64 {
	if len(pred) != len(actual) {
		panic(fmt.Sprintf("stats: RelErrs length mismatch %d vs %d", len(pred), len(actual)))
	}
	out := make([]float64, len(pred))
	for i := range pred {
		out[i] = RelErr(pred[i], actual[i])
	}
	return out
}

// MARE returns the mean absolute relative error of pred vs actual — the
// paper's "average prediction error".
func MARE(pred, actual []float64) float64 { return Mean(RelErrs(pred, actual)) }

// MaxRelErr returns the maximum absolute relative error of pred vs actual.
func MaxRelErr(pred, actual []float64) float64 { return Max(RelErrs(pred, actual)) }

// RelSqErrSum returns the sum of relative squared errors
// Σ (pred-actual)²/actual — the paper's regression objective
// (least-squares percentage regression, Tofallis 2009).
func RelSqErrSum(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic(fmt.Sprintf("stats: RelSqErrSum length mismatch %d vs %d", len(pred), len(actual)))
	}
	var s float64
	for i := range pred {
		d := pred[i] - actual[i]
		if actual[i] == 0 {
			s += d * d
			continue
		}
		s += d * d / math.Abs(actual[i])
	}
	return s
}

// Percentile returns the p-th percentile of xs (p in [0,100]) using linear
// interpolation between order statistics. It does not modify xs.
//
// An empty slice has no order statistics; the result is then a defined 0.
// It used to be NaN, which encoding/json refuses to marshal — any wire
// response embedding a percentile of an empty sample would 500 at encode
// time. Callers that must distinguish "empty" from "zero-valued" check
// len(xs) themselves (Summary carries N for exactly that reason).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// FractionBelow returns the fraction of xs strictly below the threshold t.
func FractionBelow(xs []float64, t float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var n int
	for _, x := range xs {
		if x < t {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// CDFPoint is one point of an empirical cumulative distribution: Frac of
// the samples have a value at or below Value. Used for Figure 3 style
// "x% of benchmarks have a prediction error below y%" curves.
type CDFPoint struct {
	Frac  float64
	Value float64
}

// CDF returns the empirical cumulative distribution of xs as sorted
// (fraction, value) points, one per sample.
func CDF(xs []float64) []CDFPoint {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, v := range s {
		out[i] = CDFPoint{Frac: float64(i+1) / float64(len(s)), Value: v}
	}
	return out
}

// Summary describes a sample in one struct, convenient for table output.
// N distinguishes an empty sample (every field a defined 0) from a
// sample whose statistics happen to be 0.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	Std    float64
	Min    float64
	Max    float64
	P90    float64
}

// Summarize computes a Summary of xs. An empty sample yields the zero
// Summary (N=0, every statistic 0) — not the NaN median/P90 and ±Inf
// min/max the underlying helpers would report, none of which
// encoding/json can marshal. The zero value round-trips through JSON.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Percentile(xs, 50),
		Std:    StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P90:    Percentile(xs, 90),
	}
}

// String renders the summary on a single line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g median=%.4g std=%.4g min=%.4g max=%.4g p90=%.4g",
		s.N, s.Mean, s.Median, s.Std, s.Min, s.Max, s.P90)
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}
