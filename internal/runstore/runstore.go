// Package runstore is a disk-backed, content-addressed cache of
// simulation results. An entry is keyed by a stable hash of everything
// that determines its value — the full machine configuration, the full
// workload spec, and the simulator version — so a hit is always exact:
// the cached Result is byte-for-byte what re-simulating would produce.
// Any change to a machine parameter, a workload knob, or the simulator's
// timing semantics changes the key and cold-misses instead of returning
// stale data.
//
// The store is a directory of JSON envelope files sharded by key prefix
// (dir/ab/abcd….json). Writes are atomic (temp file + rename in the same
// directory), so a crashed or concurrent writer can never leave a
// half-written entry visible; concurrent writers of the same key race
// benignly because both write identical content. Corrupt, truncated, or
// version-mismatched entries are treated as misses and evicted so the
// next Put rewrites them.
//
// experiments.Lab consults the store before dispatching simulations,
// which makes every downstream experiment incremental: a warm rerun of
// cmd/experiments, cmd/mecpi, or the top-level benchmarks performs zero
// new simulations.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/calibrator"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// FormatVersion is the on-disk envelope format. Entries written with a
// different format version are treated as misses.
const FormatVersion = 1

// SimKey returns the content address of simulating spec on machine m with
// the current simulator. The spec must be exactly the one handed to the
// trace generator.
func SimKey(m *uarch.Machine, spec trace.Spec) string {
	return keyOf("sim", m.ConfigHash(), spec.ConfigHash())
}

// CalibrationKey returns the content address of calibrating machine m.
// Calibration runs microbenchmarks against the simulated hierarchy, so
// its result depends on the machine configuration, the simulator
// version, and the calibration algorithm (calibrator.Version).
func CalibrationKey(m *uarch.Machine) string {
	return keyOf("calibration@"+calibrator.Version, m.ConfigHash())
}

func keyOf(kind string, parts ...string) string {
	h := sha256.New()
	io.WriteString(h, "repro/"+kind+"@"+sim.Version+"\n")
	for _, p := range parts {
		io.WriteString(h, p+"\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stats counts store interactions since Open.
type Stats struct {
	Hits   int64 // Get found a valid entry
	Misses int64 // Get found nothing usable (absent, corrupt, or stale)
	Puts   int64 // entries written
}

// HitRate returns hits as a fraction of lookups (0 when no lookups).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Store is a content-addressed result cache rooted at one directory.
// Safe for concurrent use.
type Store struct {
	dir string

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
}

// envelope is the on-disk entry framing. Key and Version are stored
// redundantly so a mis-filed or stale entry is detected on read even
// though the key already encodes the version.
type envelope struct {
	Format  int             `json:"format"`
	Version string          `json:"version"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the interaction counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Puts:   s.puts.Load(),
	}
}

// path returns the entry file for key, sharded by its first byte.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".json")
}

// Get looks key up and, on a hit, unmarshals the payload into v (which
// must be a pointer). Absent, corrupt, and stale entries all report a
// miss — including a payload that no longer unmarshals into v — and the
// unusable file is evicted so the next Put heals the entry. Get never
// returns an error today; the return is kept so callers are ready for
// store backends where lookups can genuinely fail.
func (s *Store) Get(key string, v any) (bool, error) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return false, nil
	}
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Format != FormatVersion || e.Version != sim.Version || e.Key != key {
		s.evict(key)
		s.misses.Add(1)
		return false, nil
	}
	if err := json.Unmarshal(e.Payload, v); err != nil {
		s.evict(key)
		s.misses.Add(1)
		return false, nil
	}
	s.hits.Add(1)
	return true, nil
}

// Put writes v under key atomically: the entry is marshalled to a temp
// file in the destination directory and renamed into place, so readers
// only ever observe complete entries.
func (s *Store) Put(key string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runstore: marshal payload for %s: %w", key[:12], err)
	}
	data, err := json.Marshal(envelope{
		Format:  FormatVersion,
		Version: sim.Version,
		Key:     key,
		Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("runstore: marshal envelope for %s: %w", key[:12], err)
	}
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "."+key[:12]+".tmp-*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("runstore: write %s: %w", key[:12], werr)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runstore: commit %s: %w", key[:12], err)
	}
	s.puts.Add(1)
	return nil
}

// GetResult looks up a cached simulation Result. Entries that no longer
// decode as a Result are evicted and report a miss, like any other
// corruption.
func (s *Store) GetResult(key string) (*sim.Result, bool, error) {
	var raw json.RawMessage
	ok, err := s.Get(key, &raw)
	if !ok || err != nil {
		return nil, false, err
	}
	r, err := sim.DecodeResult(raw)
	if err != nil {
		s.evict(key)
		s.hits.Add(-1)
		s.misses.Add(1)
		return nil, false, nil
	}
	return r, true, nil
}

// PutResult stores a simulation Result under key using sim's
// deterministic encoding.
func (s *Store) PutResult(key string, r *sim.Result) error {
	data, err := r.Encode()
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	return s.Put(key, json.RawMessage(data))
}

// evict removes a corrupt or stale entry (best effort).
func (s *Store) evict(key string) {
	os.Remove(s.path(key))
}
