package runstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/suites"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// simulateOne produces a small but real Result to cache.
func simulateOne(t *testing.T) (*uarch.Machine, trace.Spec, *sim.Result) {
	t.Helper()
	m := uarch.CoreTwo()
	suite := suites.CPU2000Like(suites.Options{NumOps: 20000})
	w := suite.Workloads[0]
	s, err := sim.New(m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Run(trace.New(w))
	if err != nil {
		t.Fatal(err)
	}
	return m, w, r
}

func TestResultRoundTrip(t *testing.T) {
	m, w, r := simulateOne(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := SimKey(m, w)

	if _, ok, err := st.GetResult(key); ok || err != nil {
		t.Fatalf("empty store: got hit=%v err=%v", ok, err)
	}
	if err := st.PutResult(key, r); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.GetResult(key)
	if err != nil || !ok {
		t.Fatalf("get after put: hit=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("round-trip mismatch:\n got %+v\nwant %+v", got, r)
	}
	if s := st.Stats(); s.Hits != 1 || s.Misses != 1 || s.Puts != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 put", s)
	}
	if got := st.Stats().HitRate(); got != 0.5 {
		t.Errorf("hit rate %v, want 0.5", got)
	}
}

func TestCorruptEntryIsMissAndEvicted(t *testing.T) {
	m, w, r := simulateOne(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := SimKey(m, w)
	if err := st.PutResult(key, r); err != nil {
		t.Fatal(err)
	}
	// Truncate the entry mid-JSON, as a crashed non-atomic writer would.
	if err := os.WriteFile(st.path(key), []byte(`{"format":1,"ver`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.GetResult(key); ok || err != nil {
		t.Fatalf("corrupt entry: got hit=%v err=%v, want clean miss", ok, err)
	}
	if _, err := os.Stat(st.path(key)); !os.IsNotExist(err) {
		t.Error("corrupt entry not evicted")
	}
	// The store heals: a fresh Put serves hits again.
	if err := st.PutResult(key, r); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := st.GetResult(key); !ok || !reflect.DeepEqual(got, r) {
		t.Error("store did not heal after eviction")
	}
}

func TestVersionMismatchIsMiss(t *testing.T) {
	m, w, r := simulateOne(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := SimKey(m, w)
	if err := st.PutResult(key, r); err != nil {
		t.Fatal(err)
	}

	// Rewrite the entry claiming an older simulator version.
	data, err := os.ReadFile(st.path(key))
	if err != nil {
		t.Fatal(err)
	}
	var e envelope
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatal(err)
	}
	e.Version = "sim-v0"
	stale, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path(key), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.GetResult(key); ok || err != nil {
		t.Fatalf("stale-version entry: got hit=%v err=%v, want miss", ok, err)
	}

	// Same for a future envelope format.
	e.Version = sim.Version
	e.Format = FormatVersion + 1
	future, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path(key), future, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.GetResult(key); ok || err != nil {
		t.Fatalf("future-format entry: got hit=%v err=%v, want miss", ok, err)
	}
}

func TestUndecodablePayloadIsMissAndEvicted(t *testing.T) {
	m, w, _ := simulateOne(t)
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := SimKey(m, w)
	// Valid envelope, but the payload is not a Result.
	if err := st.Put(key, "not a result"); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.GetResult(key); ok || err != nil {
		t.Fatalf("non-Result payload: got hit=%v err=%v, want clean miss", ok, err)
	}
	if _, err := os.Stat(st.path(key)); !os.IsNotExist(err) {
		t.Error("undecodable entry not evicted")
	}
	if s := st.Stats(); s.Hits != 0 || s.Misses != 1 {
		t.Errorf("stats = %+v, want 0 hits / 1 miss", s)
	}
}

func TestKeySensitivity(t *testing.T) {
	m := uarch.CoreTwo()
	suite := suites.CPU2000Like(suites.Options{NumOps: 20000})
	w := suite.Workloads[0]

	if SimKey(m, w) != SimKey(uarch.CoreTwo(), w) {
		t.Error("identical config+spec must hash equal")
	}
	m2 := uarch.CoreTwo()
	m2.MemLat++
	if SimKey(m, w) == SimKey(m2, w) {
		t.Error("machine change must change the key")
	}
	w2 := w
	w2.NumOps++
	if SimKey(m, w) == SimKey(m, w2) {
		t.Error("spec change must change the key")
	}
	if SimKey(m, w) == CalibrationKey(m) {
		t.Error("kinds must not collide")
	}
	if CalibrationKey(m) == CalibrationKey(m2) {
		t.Error("calibration key must track the machine config")
	}
}

func TestGenericPutGet(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	type payload struct {
		A int
		B string
	}
	key := CalibrationKey(uarch.PentiumFour())
	want := payload{A: 42, B: "walk"}
	if err := st.Put(key, &want); err != nil {
		t.Fatal(err)
	}
	var got payload
	hit, err := st.Get(key, &got)
	if err != nil || !hit {
		t.Fatalf("get: hit=%v err=%v", hit, err)
	}
	if got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
}

func TestPutLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, w, r := simulateOne(t)
	if err := st.PutResult(SimKey(m, w), r); err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.Contains(d.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("want error for empty dir")
	}
}
