// Package trace generates synthetic micro-operation streams that stand in
// for the SPEC CPU2000/CPU2006 binaries the paper runs on real hardware.
//
// A workload is described by a Spec: instruction mix, branch
// predictability, code footprint, data footprint and locality, pointer
// chasing, and register-dependence structure. The generator expands the
// spec into a deterministic, seeded stream of micro-ops with concrete
// program counters, data addresses, branch outcomes, and producer
// distances, which the cycle-level simulator in internal/sim executes.
//
// The same Spec always produces the exact same µop stream, so every
// machine configuration observes the same program — differences in
// counter values across machines come from the hardware, as on real
// silicon.
package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Kind classifies a micro-op.
type Kind uint8

// Micro-op kinds.
const (
	KindInt Kind = iota // single-cycle integer ALU
	KindMul             // integer multiply
	KindFP              // floating-point arithmetic
	KindDiv             // long-latency divide
	KindLoad
	KindStore
	KindBranch // conditional branch
	kindCount
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindMul:
		return "mul"
	case KindFP:
		return "fp"
	case KindDiv:
		return "div"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsMem reports whether the kind accesses data memory.
func (k Kind) IsMem() bool { return k == KindLoad || k == KindStore }

// MicroOp is one micro-operation of the canonical (unfused) stream.
type MicroOp struct {
	Seq    uint64 // canonical sequence number, starting at 0
	Kind   Kind
	PC     uint64 // instruction address
	Addr   uint64 // data address (loads/stores only)
	Target uint64 // branch target (branches only)
	Taken  bool   // branch outcome (branches only)

	// Dep1 and Dep2 are backward distances (in canonical sequence numbers)
	// to producer µops; 0 means no register dependence. For loads, Dep1
	// is an address-generation dependence.
	Dep1, Dep2 uint32

	// InstrFirst marks the first µop of a macro-instruction. The number
	// of macro-instructions executed is the count of InstrFirst µops.
	InstrFirst bool

	// FuseHead marks a µop that a fusing machine may merge with its
	// immediate successor (e.g. compare+branch macro-fusion or load+op
	// micro-fusion). The successor is then the FuseTail.
	FuseHead bool
	FuseTail bool
}

// Spec describes a synthetic workload. All fractions are in [0,1].
type Spec struct {
	Name string
	Seed uint64
	// NumOps is the number of canonical µops to generate.
	NumOps int

	// Instruction mix, as fractions of non-branch µops (the remainder are
	// integer ALU ops; branches are emitted by the basic-block structure
	// at a density set by block lengths, roughly one in eight µops).
	// LoadFrac+StoreFrac+FPFrac+MulFrac+DivFrac must be <= 0.95 so some
	// plain integer ops remain.
	LoadFrac  float64
	StoreFrac float64
	FPFrac    float64
	MulFrac   float64
	DivFrac   float64

	// BranchHardFrac is the fraction of *static* branches with
	// near-random outcomes (taken probability drawn in [0.35, 0.65]);
	// the rest are strongly biased (p in [0, 0.08] or [0.92, 1]).
	BranchHardFrac float64

	// CodeFootprint is the static code size in bytes; it determines
	// I-cache and I-TLB behaviour. CodeLocality in [0,1] skews block
	// reuse toward a hot region (1 = tight loop nest, 0 = flat profile).
	CodeFootprint int64
	CodeLocality  float64

	// DataFootprint is the total data working set in bytes; DataLocality
	// in [0,1] skews accesses toward hot lines. PointerChaseFrac is the
	// fraction of loads whose address depends on the previous load
	// (serializing misses and suppressing MLP).
	DataFootprint    int64
	DataLocality     float64
	PointerChaseFrac float64

	// HotBytes, when non-zero, models a uniformly re-referenced resident
	// set at the start of the footprint: a fraction HotFrac of accesses
	// fall uniformly inside it, the rest follow the Zipf tail over the
	// whole footprint. A resident set that straddles two machines' cache
	// capacities is what makes a larger last-level cache remove misses
	// (e.g. art thrashing a 1MB L2 but fitting 4MB; SPEC2006 sets
	// straddling 4MB vs 8MB). HotFrac defaults to 0.9 when HotBytes is
	// set and HotFrac is zero.
	HotBytes int64
	HotFrac  float64

	// DepDistMean is the mean backward distance of register dependences;
	// small values mean long dependence chains and low ILP.
	// LongChainFrac is the fraction of µops chained directly to their
	// predecessor (distance 1), creating serial chains that fill the
	// window and cause dispatch stalls.
	DepDistMean   float64
	LongChainFrac float64

	// FusibleFrac is the fraction of µop pairs marked fusible; fusing
	// machines merge a machine-dependent share of them.
	FusibleFrac float64

	// Phases, when non-empty, makes the workload piecewise-stationary:
	// the stream is split into len(Phases) consecutive segments, each a
	// Frac share of NumOps, and within a segment the data locality,
	// pointer chasing, and branch predictability take that phase's
	// values instead of the spec-wide ones. Stationary workloads (the
	// only kind the generator produced before this field existed) leave
	// Phases empty; their streams and ConfigHashes are unchanged. At
	// least two phases are required when the field is used, and the
	// Frac values must sum to 1.
	Phases []Phase `json:"phases,omitempty"`

	// BurstFrac and BurstLen modulate data accesses with a two-state
	// (calm/burst) Markov process: a BurstFrac share of accesses falls
	// inside bursts of mean length BurstLen accesses, during which
	// addresses scatter uniformly over the whole footprint — clustered
	// cold misses — while calm stretches follow the usual locality
	// draw. This is temporal clustering the stationary Zipf picker
	// cannot express: the same long-run miss ratio arrives in storms
	// that pile up in the MSHRs instead of spreading evenly, stressing
	// the model's steady-state memory-level-parallelism assumption.
	// BurstFrac 0 (the default) disables the modulation and leaves
	// existing streams untouched; when set it must be in (0, 0.9] with
	// BurstLen >= 1.
	BurstFrac float64 `json:"burstFrac,omitempty"`
	BurstLen  float64 `json:"burstLen,omitempty"`

	// Content is the identity override for file-backed workloads: the
	// content hash (hex SHA-256 file checksum) of the trace file the
	// spec was read from. It folds into ConfigHash, so two files that
	// declare identical generation parameters but carry different µop
	// streams can never collide in content-addressed caches. Generated
	// workloads leave it empty; Decode sets it.
	Content string `json:"content,omitempty"`

	// SourceFile is the path of the trace file backing this spec, set
	// by ReadFile/ReadFileSpec. It is deliberately excluded from JSON
	// (and therefore from ConfigHash): moving or copying a trace file
	// must not change the identity of its runs — Content carries that.
	SourceFile string `json:"-"`
}

// MaxPhases bounds how many piecewise-stationary segments a spec may
// declare; a phase schedule longer than this is a malformed file, not a
// workload.
const MaxPhases = 64

// Phase is one piecewise-stationary segment of a phase-changing
// workload. Each phase fully specifies its behavioural knobs — there is
// no inheritance from the spec-wide values, so a phase schedule reads
// as a table of regimes.
type Phase struct {
	// Frac is this phase's share of NumOps, in (0,1]; all phases must
	// sum to 1. Segment boundaries land on whole µops (rounded), with
	// the last phase absorbing the remainder.
	Frac float64 `json:"frac"`
	// DataLocality replaces Spec.DataLocality within the phase.
	DataLocality float64 `json:"dataLocality"`
	// PointerChaseFrac replaces Spec.PointerChaseFrac within the phase.
	PointerChaseFrac float64 `json:"pointerChaseFrac"`
	// BranchNoise is the fraction of this phase's branch executions
	// whose outcome is re-drawn 50/50, degrading predictability without
	// touching the static program: 0 keeps each block's bias, 1 makes
	// every branch a coin flip.
	BranchNoise float64 `json:"branchNoise"`
}

// ConfigHash returns a stable content hash of the workload description.
// Because the generator is a pure function of the Spec, equal hashes mean
// identical µop streams; the hash therefore identifies the workload in
// content-addressed caches of simulation results.
func (s Spec) ConfigHash() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Spec is a plain struct of scalars; marshalling cannot fail.
		panic(fmt.Sprintf("trace: marshal %s: %v", s.Name, err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Validate checks the spec for consistency.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("trace: spec has no name")
	}
	if s.NumOps <= 0 {
		return fmt.Errorf("trace: %s: NumOps must be positive", s.Name)
	}
	mix := s.LoadFrac + s.StoreFrac + s.FPFrac + s.MulFrac + s.DivFrac
	if mix > 0.95 {
		return fmt.Errorf("trace: %s: instruction mix sums to %.2f > 0.95", s.Name, mix)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"LoadFrac", s.LoadFrac}, {"StoreFrac", s.StoreFrac}, {"FPFrac", s.FPFrac},
		{"MulFrac", s.MulFrac}, {"DivFrac", s.DivFrac},
		{"BranchHardFrac", s.BranchHardFrac}, {"CodeLocality", s.CodeLocality},
		{"DataLocality", s.DataLocality}, {"PointerChaseFrac", s.PointerChaseFrac},
		{"LongChainFrac", s.LongChainFrac}, {"FusibleFrac", s.FusibleFrac},
		{"HotFrac", s.HotFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("trace: %s: %s=%v outside [0,1]", s.Name, f.name, f.v)
		}
	}
	if s.CodeFootprint < 1024 {
		return fmt.Errorf("trace: %s: code footprint %d too small", s.Name, s.CodeFootprint)
	}
	if s.DataFootprint < 4096 {
		return fmt.Errorf("trace: %s: data footprint %d too small", s.Name, s.DataFootprint)
	}
	if s.DepDistMean < 1 {
		return fmt.Errorf("trace: %s: DepDistMean must be >= 1", s.Name)
	}
	if s.HotBytes < 0 || s.HotBytes > s.DataFootprint {
		return fmt.Errorf("trace: %s: HotBytes %d outside [0, footprint]", s.Name, s.HotBytes)
	}
	if len(s.Phases) == 1 {
		return fmt.Errorf("trace: %s: a phase-changing spec needs at least two phases", s.Name)
	}
	if len(s.Phases) > MaxPhases {
		return fmt.Errorf("trace: %s: %d phases exceed the %d-phase cap", s.Name, len(s.Phases), MaxPhases)
	}
	if len(s.Phases) > 0 {
		sum := 0.0
		for i, p := range s.Phases {
			if p.Frac <= 0 || p.Frac > 1 {
				return fmt.Errorf("trace: %s: phase %d Frac=%v outside (0,1]", s.Name, i, p.Frac)
			}
			for _, f := range []struct {
				name string
				v    float64
			}{
				{"DataLocality", p.DataLocality},
				{"PointerChaseFrac", p.PointerChaseFrac},
				{"BranchNoise", p.BranchNoise},
			} {
				if f.v < 0 || f.v > 1 {
					return fmt.Errorf("trace: %s: phase %d %s=%v outside [0,1]", s.Name, i, f.name, f.v)
				}
			}
			sum += p.Frac
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("trace: %s: phase fractions sum to %v, want 1", s.Name, sum)
		}
	}
	if s.BurstFrac < 0 || s.BurstFrac > 0.9 {
		return fmt.Errorf("trace: %s: BurstFrac=%v outside [0, 0.9]", s.Name, s.BurstFrac)
	}
	if s.BurstFrac > 0 && s.BurstLen < 1 {
		return fmt.Errorf("trace: %s: BurstLen=%v must be >= 1 when BurstFrac is set", s.Name, s.BurstLen)
	}
	if s.BurstFrac == 0 && s.BurstLen != 0 {
		return fmt.Errorf("trace: %s: BurstLen=%v without BurstFrac", s.Name, s.BurstLen)
	}
	return nil
}

// depProb returns the geometric success probability of the producer-
// distance draw: the reciprocal mean, clamped to a valid probability.
func (s *Spec) depProb() float64 {
	p := 1 / s.DepDistMean
	if p > 1 {
		p = 1
	}
	return p
}

// Layout constants for synthetic address spaces.
const (
	codeBase   = 0x0040_0000 // where synthetic code is laid out
	dataBase   = 0x1000_0000 // where the data working set is laid out
	bytesPerOp = 4           // static bytes per µop in the code layout
	lineBytes  = 64          // data line granularity for locality
)

// Source is a replayable µop stream: the simulator's input contract.
// A Source always replays the exact same stream after Reset, so one
// workload can be run on many machine configurations and every machine
// observes the same program. Implementations are not safe for
// concurrent use; Buffer.Replay hands out independent cursors over one
// shared materialization.
type Source interface {
	// Spec returns the workload description the stream was generated
	// from.
	Spec() Spec
	// NumOps returns the stream length.
	NumOps() int
	// Reset restarts the stream from the beginning.
	Reset()
	// Next fills op with the next µop and returns true, or returns
	// false when the stream is exhausted.
	Next(op *MicroOp) bool
}

// Chunked is an optional Source extension for batched cursor reads: a
// source that can hand out a contiguous read-only view of its upcoming
// ops lets the simulator iterate a plain slice instead of paying an
// interface call (plus a µop copy) per op. NextChunk returns the next
// ops — as many as the source has ready, at least one unless the stream
// is exhausted (then nil) — and advances the cursor past them. The
// returned slice aliases the source's backing store and must be treated
// as immutable; it stays valid until the source is Reset.
//
// Interleaving NextChunk with Next is allowed and reads the same
// stream: both advance the same cursor.
type Chunked interface {
	Source
	NextChunk() []MicroOp
}

// Buffer is a materialized µop stream: the whole sequence a Generator
// would emit, expanded once into memory and replayed from there. A
// Buffer replay is bit-identical to the generating stream (it is that
// stream, recorded), so simulation Results are unchanged — but replay
// skips the RNG and block-walk work entirely, which is what makes a
// grid of machines over one workload cheaper than regenerating the
// trace per machine.
//
// The ops backing store is shared and immutable; a Buffer itself is a
// cursor (not safe for concurrent use), and Replay returns additional
// independent cursors over the same backing store for concurrent
// machines.
type Buffer struct {
	spec Spec
	ops  []MicroOp
	pos  int
}

// Materialize expands the spec's entire stream through a fresh
// Generator. It panics if the spec is invalid, exactly as New does;
// call Validate first for graceful handling.
func Materialize(spec Spec) *Buffer {
	return MaterializeInto(spec, nil)
}

// MaterializeInto is Materialize recycling a previously released
// backing store: when ops has capacity it is truncated and refilled in
// place, otherwise a fresh store is allocated. The caller must own ops
// exclusively — recycle a buffer's store only after every cursor over
// it is done (the plan engine recycles a workload's buffer once its
// last machine finishes). The produced stream is identical either way.
func MaterializeInto(spec Spec, ops []MicroOp) *Buffer {
	g := New(spec)
	if cap(ops) < spec.NumOps {
		ops = make([]MicroOp, 0, spec.NumOps)
	}
	ops = ops[:0]
	var op MicroOp
	for g.Next(&op) {
		ops = append(ops, op)
	}
	return &Buffer{spec: spec, ops: ops}
}

// Spec returns the workload specification.
func (b *Buffer) Spec() Spec { return b.spec }

// NumOps returns the stream length.
func (b *Buffer) NumOps() int { return len(b.ops) }

// Reset restarts this cursor from the beginning.
func (b *Buffer) Reset() { b.pos = 0 }

// Next fills op with the next µop and returns true, or returns false
// when the stream is exhausted.
func (b *Buffer) Next(op *MicroOp) bool {
	if b.pos >= len(b.ops) {
		return false
	}
	*op = b.ops[b.pos]
	b.pos++
	return true
}

// NextChunk returns the whole remaining stream as one immutable slice
// view and advances the cursor to the end — the Chunked fast path the
// simulator uses to consume a replayed buffer without per-op interface
// calls.
func (b *Buffer) NextChunk() []MicroOp {
	if b.pos >= len(b.ops) {
		return nil
	}
	out := b.ops[b.pos:]
	b.pos = len(b.ops)
	return out
}

// Replay returns a fresh cursor over the same materialized stream,
// positioned at the start. Cursors share the immutable backing store,
// so concurrent simulations of one workload on different machines cost
// one materialization total.
func (b *Buffer) Replay() *Buffer {
	return &Buffer{spec: b.spec, ops: b.ops}
}

// ReleaseOps detaches the buffer's backing store and returns it for
// recycling through MaterializeInto. The caller must be done with every
// cursor over the buffer: the returned slice is the live store those
// cursors alias, and refilling it overwrites their stream. The buffer
// itself reads as exhausted afterwards.
func (b *Buffer) ReleaseOps() []MicroOp {
	ops := b.ops
	b.ops = nil
	b.pos = 0
	return ops
}

// block is a static basic block of the synthetic program.
type block struct {
	startPC   uint64
	numOps    int
	takenProb float64
	target    int // target block index when the terminating branch is taken
}

// Generator streams the µop sequence of one workload. Not safe for
// concurrent use; create one per goroutine.
type Generator struct {
	spec   Spec
	blocks []block

	r             *rng.RNG
	emitted       int
	blockIdx      int
	opInBlk       int
	lastLoad      uint64 // canonical seq of the most recent load
	hasLoad       bool
	opsSinceInstr int
	fuseArmed     bool // previous µop was a FuseHead

	// data regions: hot/cold split of the footprint in lines.
	dataLines int
	hotLines  int
	hotFrac   float64

	// Precomputed distribution constants for the per-µop draws. All are
	// pure functions of the Spec, hoisted out of the hot loop: the drawn
	// variates are bit-identical to computing them from scratch (see
	// rng.NewZipf/rng.NewGeometric), the stream is unchanged.
	dataZipf rng.ZipfDist      // pickDataLine's cold-path line skew
	depGeo   rng.GeometricDist // assignDeps' producer-distance draw
	kindCum  [5]float64        // pickKind's cumulative mix thresholds

	// Phase-changing workloads (Spec.Phases): the active phase's knobs
	// are copied into cur* on each boundary crossing, so the hot loop
	// reads one field instead of indexing the schedule. Stationary
	// specs load cur* once from the spec-wide values and never pay a
	// phase check beyond the `phased` bool.
	phased      bool
	phaseIdx    int
	phaseEnd    int            // first µop of the next phase (NumOps for the last)
	phaseBounds []int          // cumulative segment boundaries, one per phase
	phaseZipf   []rng.ZipfDist // per-phase cold-path line skew
	curZipf     rng.ZipfDist   // active cold-path line skew
	curChase    float64        // active pointer-chase fraction
	curNoise    float64        // active branch-outcome noise

	// Bursty workloads (Spec.BurstFrac): two-state modulation of the
	// data-access stream. stateLeft counts accesses remaining in the
	// current state; burstGeo/calmGeo draw the next dwell lengths.
	bursty    bool
	inBurst   bool
	stateLeft int
	burstGeo  rng.GeometricDist
	calmGeo   rng.GeometricDist
}

// Both stream kinds satisfy the simulator's input contract.
var (
	_ Source = (*Generator)(nil)
	_ Source = (*Buffer)(nil)
)

// New constructs a generator for the spec. It panics if the spec is
// invalid; call Validate first for graceful handling.
func New(spec Spec) *Generator {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	g := &Generator{spec: spec}
	g.buildProgram()
	g.Reset()
	return g
}

// buildProgram lays out the static basic blocks deterministically from
// the seed. Block structure is part of the program, not the dynamic
// stream, so it uses a dedicated RNG stream (seed^const).
func (g *Generator) buildProgram() {
	r := rng.New(g.spec.Seed ^ 0x9e3779b97f4a7c15)
	// Average block ~8 µops → blockBytes ~32.
	nBlocks := int(g.spec.CodeFootprint / (8 * bytesPerOp))
	if nBlocks < 4 {
		nBlocks = 4
	}
	g.blocks = make([]block, nBlocks)
	pc := uint64(codeBase)
	codeZipf := rng.NewZipf(nBlocks, 0.3+1.4*g.spec.CodeLocality)
	for i := range g.blocks {
		n := 4 + r.Intn(9) // 4..12 µops
		var p float64
		if r.Float64() < g.spec.BranchHardFrac {
			p = 0.35 + 0.3*r.Float64() // hard-to-predict
		} else if r.Bool(0.5) {
			p = 0.08 * r.Float64() // strongly not-taken
		} else {
			p = 1 - 0.08*r.Float64() // strongly taken
		}
		// Taken targets are Zipf-skewed toward low block indices: a hot
		// loop region at the start of the code, colder code later. The
		// skew grows with CodeLocality; coefficients are tuned so that
		// large-code workloads (gcc-like, MBs of text at locality ~0.5)
		// spill out of a 32KB L1I at a realistic rate while tight kernels
		// (locality ~0.9) stay resident.
		target := codeZipf.Next(r)
		g.blocks[i] = block{startPC: pc, numOps: n, takenProb: p, target: target}
		pc += uint64(n * bytesPerOp)
	}
	g.dataLines = int(g.spec.DataFootprint / lineBytes)
	if g.dataLines < 16 {
		g.dataLines = 16
	}
	if g.spec.HotBytes > 0 {
		g.hotLines = int(g.spec.HotBytes / lineBytes)
		if g.hotLines < 1 {
			g.hotLines = 1
		}
		g.hotFrac = g.spec.HotFrac
		if g.hotFrac == 0 {
			g.hotFrac = 0.9
		}
	}

	// Hoist the per-µop draw constants (identical values to computing
	// them inline; see pickDataLine, pickKind and assignDeps).
	s := &g.spec
	g.dataZipf = rng.NewZipf(g.dataLines, 1.05+0.85*s.DataLocality)
	g.depGeo = rng.NewGeometric(s.depProb())
	g.kindCum = [5]float64{
		s.LoadFrac,
		s.LoadFrac + s.StoreFrac,
		s.LoadFrac + s.StoreFrac + s.FPFrac,
		s.LoadFrac + s.StoreFrac + s.FPFrac + s.MulFrac,
		s.LoadFrac + s.StoreFrac + s.FPFrac + s.MulFrac + s.DivFrac,
	}

	// Phase schedule: cumulative boundaries in µops (the last phase
	// absorbs rounding remainder) and a pre-built Zipf per phase so
	// boundary crossings are copies, not allocations.
	if len(s.Phases) > 0 {
		g.phased = true
		g.phaseBounds = make([]int, len(s.Phases))
		g.phaseZipf = make([]rng.ZipfDist, len(s.Phases))
		cum := 0.0
		for i, p := range s.Phases {
			cum += p.Frac
			g.phaseBounds[i] = int(math.Round(cum * float64(s.NumOps)))
			g.phaseZipf[i] = rng.NewZipf(g.dataLines, 1.05+0.85*p.DataLocality)
		}
		g.phaseBounds[len(s.Phases)-1] = s.NumOps
	}

	// Burst modulation: dwell lengths are 1+geometric draws, so the
	// burst-state mean is BurstLen and the calm-state mean is sized to
	// make bursts a BurstFrac share of accesses in the long run.
	if s.BurstFrac > 0 {
		g.bursty = true
		g.burstGeo = rng.NewGeometric(1 / s.BurstLen)
		calmP := s.BurstFrac / (s.BurstLen * (1 - s.BurstFrac))
		if calmP > 1 {
			calmP = 1
		}
		g.calmGeo = rng.NewGeometric(calmP)
	}
}

// Reset restarts the dynamic stream from the beginning. The static
// program layout is preserved, so the regenerated stream is identical.
func (g *Generator) Reset() {
	g.r = rng.New(g.spec.Seed)
	g.emitted = 0
	g.blockIdx = 0
	g.opInBlk = 0
	g.lastLoad = 0
	g.hasLoad = false
	g.opsSinceInstr = 0
	g.fuseArmed = false
	if g.phased {
		g.phaseIdx = 0
		g.phaseEnd = g.phaseBounds[0]
		g.curZipf = g.phaseZipf[0]
		g.curChase = g.spec.Phases[0].PointerChaseFrac
		g.curNoise = g.spec.Phases[0].BranchNoise
	} else {
		g.curZipf = g.dataZipf
		g.curChase = g.spec.PointerChaseFrac
		g.curNoise = 0
	}
	if g.bursty {
		// Start in a calm stretch; the dwell draw comes from the fresh
		// stream RNG, so Reset reproduces the identical modulation.
		g.inBurst = false
		g.stateLeft = g.calmGeo.Next(g.r) + 1
	}
}

// Spec returns the workload specification.
func (g *Generator) Spec() Spec { return g.spec }

// NumOps returns the stream length.
func (g *Generator) NumOps() int { return g.spec.NumOps }

// Next fills op with the next µop and returns true, or returns false when
// the stream is exhausted.
func (g *Generator) Next(op *MicroOp) bool {
	if g.emitted >= g.spec.NumOps {
		return false
	}
	s := &g.spec
	if g.phased && g.emitted >= g.phaseEnd {
		for g.phaseIdx+1 < len(g.phaseBounds) && g.emitted >= g.phaseEnd {
			g.phaseIdx++
			g.phaseEnd = g.phaseBounds[g.phaseIdx]
		}
		p := &s.Phases[g.phaseIdx]
		g.curZipf = g.phaseZipf[g.phaseIdx]
		g.curChase = p.PointerChaseFrac
		g.curNoise = p.BranchNoise
	}
	blk := &g.blocks[g.blockIdx]

	*op = MicroOp{
		Seq: uint64(g.emitted),
		PC:  blk.startPC + uint64(g.opInBlk*bytesPerOp),
	}

	lastInBlock := g.opInBlk == blk.numOps-1
	if lastInBlock {
		// Terminating conditional branch of the block.
		op.Kind = KindBranch
		op.Taken = g.r.Bool(blk.takenProb)
		if g.phased && g.r.Bool(g.curNoise) {
			// Phase noise re-draws the outcome 50/50 *before* target
			// selection, so the target stays consistent with Taken. The
			// draws are gated on phased: stationary streams are untouched.
			op.Taken = g.r.Bool(0.5)
		}
		if op.Taken {
			op.Target = g.blocks[blk.target].startPC
		} else {
			next := (g.blockIdx + 1) % len(g.blocks)
			op.Target = g.blocks[next].startPC
		}
	} else {
		op.Kind = g.pickKind()
	}

	// Data address for memory ops.
	if op.Kind.IsMem() {
		line := g.pickDataLine()
		off := uint64(g.r.Intn(lineBytes/8) * 8)
		op.Addr = dataBase + uint64(line)*lineBytes + off
	}

	// Register dependences.
	g.assignDeps(op)

	// Macro-instruction boundaries: roughly 1.5 canonical µops per
	// instruction (NetBurst-style cracking); memory ops tend to start
	// instructions (load+op pairs).
	if g.opsSinceInstr == 0 {
		op.InstrFirst = true
		g.opsSinceInstr = 1
		if g.r.Bool(0.5) {
			g.opsSinceInstr = 0 // single-µop instruction
		}
	} else {
		g.opsSinceInstr = 0
	}

	// Fusibility: mark head/tail pairs (never across a branch target,
	// which in this synthetic layout means never across blocks).
	if op.FuseTail = g.pendingFuseTail(); !op.FuseTail {
		if !lastInBlock && g.r.Bool(s.FusibleFrac) {
			op.FuseHead = true
			g.fuseArmed = true
		}
	}

	if op.Kind == KindLoad {
		g.lastLoad = op.Seq
		g.hasLoad = true
	}

	// Advance program position.
	if lastInBlock {
		if op.Taken {
			g.blockIdx = blk.target
		} else {
			g.blockIdx = (g.blockIdx + 1) % len(g.blocks)
		}
		g.opInBlk = 0
	} else {
		g.opInBlk++
	}
	g.emitted++
	return true
}

func (g *Generator) pendingFuseTail() bool {
	if g.fuseArmed {
		g.fuseArmed = false
		return true
	}
	return false
}

// pickKind draws a non-branch µop kind from the mix. The cumulative
// thresholds are hoisted into kindCum (same sums, same comparison
// order), so the hot path is threshold compares only.
func (g *Generator) pickKind() Kind {
	u := g.r.Float64()
	c := &g.kindCum
	switch {
	case u < c[0]:
		return KindLoad
	case u < c[1]:
		return KindStore
	case u < c[2]:
		return KindFP
	case u < c[3]:
		return KindMul
	case u < c[4]:
		return KindDiv
	default:
		return KindInt
	}
}

// pickDataLine selects a data line index with Zipf locality. The skew
// mapping is calibrated so that even "low locality" workloads reuse most
// of their accesses (as real programs do): at locality 0.12 over a
// ~500MB footprint roughly 10% of accesses fall outside a 4MB hot set
// (mcf-like LLC miss rates of tens per thousand instructions), while at
// locality 0.85 the working set is cache-resident. The gap between the
// beyond-4MB and beyond-8MB tails is what lets a larger last-level
// cache remove misses (the paper's Core i7 observation).
func (g *Generator) pickDataLine() int {
	if g.bursty {
		if g.stateLeft <= 0 {
			g.inBurst = !g.inBurst
			if g.inBurst {
				g.stateLeft = g.burstGeo.Next(g.r) + 1
			} else {
				g.stateLeft = g.calmGeo.Next(g.r) + 1
			}
		}
		g.stateLeft--
		if g.inBurst {
			// Burst state: scatter uniformly over the whole footprint —
			// a storm of cold lines clustered in time.
			return g.r.Intn(g.dataLines)
		}
	}
	if g.hotLines > 0 && g.r.Bool(g.hotFrac) {
		return g.r.Intn(g.hotLines)
	}
	// curZipf is dataZipf for stationary specs (same draws) and the
	// active phase's skew for phase-changing ones.
	return g.curZipf.Next(g.r)
}

// assignDeps draws producer distances for op.
func (g *Generator) assignDeps(op *MicroOp) {
	s := &g.spec
	seq := op.Seq
	maxDist := seq // cannot reach before the stream start
	if maxDist == 0 {
		return
	}
	draw := func() uint32 {
		if g.r.Bool(s.LongChainFrac) {
			return 1
		}
		// Geometric with the requested mean (success probability hoisted
		// into depGeo), clamped to the window-ish range [1, 96] so
		// dependences stay plausible.
		d := uint32(g.depGeo.Next(g.r)) + 1
		if d > 96 {
			d = 96
		}
		return d
	}
	clamp := func(d uint32) uint32 {
		if uint64(d) > maxDist {
			return uint32(maxDist)
		}
		return d
	}

	if op.Kind == KindLoad && g.hasLoad && g.r.Bool(g.curChase) {
		// Pointer chase: address depends on the most recent load.
		d := seq - g.lastLoad
		if d >= 1 && d <= 256 {
			op.Dep1 = uint32(d)
		} else {
			op.Dep1 = clamp(draw())
		}
	} else {
		op.Dep1 = clamp(draw())
	}
	// Second source operand with 40% probability (stores always have a
	// data operand besides the address).
	if op.Kind == KindStore || g.r.Bool(0.4) {
		op.Dep2 = clamp(draw())
	}
}
