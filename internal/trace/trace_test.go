package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func testSpec() Spec {
	return Spec{
		Name:             "test",
		Seed:             42,
		NumOps:           50000,
		LoadFrac:         0.25,
		StoreFrac:        0.10,
		FPFrac:           0.10,
		MulFrac:          0.02,
		DivFrac:          0.005,
		BranchHardFrac:   0.3,
		CodeFootprint:    64 << 10,
		CodeLocality:     0.7,
		DataFootprint:    1 << 20,
		DataLocality:     0.6,
		PointerChaseFrac: 0.1,
		DepDistMean:      8,
		LongChainFrac:    0.1,
		FusibleFrac:      0.3,
	}
}

func collect(g *Generator) []MicroOp {
	var ops []MicroOp
	var op MicroOp
	for g.Next(&op) {
		ops = append(ops, op)
	}
	return ops
}

func TestStreamLength(t *testing.T) {
	g := New(testSpec())
	ops := collect(g)
	if len(ops) != 50000 {
		t.Fatalf("got %d ops, want 50000", len(ops))
	}
	var op MicroOp
	if g.Next(&op) {
		t.Error("Next should keep returning false after exhaustion")
	}
	if g.NumOps() != 50000 {
		t.Errorf("NumOps()=%d", g.NumOps())
	}
}

func TestDeterministicAndResettable(t *testing.T) {
	a := collect(New(testSpec()))
	g := New(testSpec())
	b := collect(g)
	g.Reset()
	c := collect(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("two generators diverged at op %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i] != c[i] {
			t.Fatalf("reset stream diverged at op %d: %+v vs %+v", i, a[i], c[i])
		}
	}
}

func TestSequenceNumbers(t *testing.T) {
	ops := collect(New(testSpec()))
	for i, op := range ops {
		if op.Seq != uint64(i) {
			t.Fatalf("op %d has Seq %d", i, op.Seq)
		}
	}
}

func TestInstructionMix(t *testing.T) {
	spec := testSpec()
	spec.NumOps = 200000
	ops := collect(New(spec))
	counts := map[Kind]int{}
	for _, op := range ops {
		counts[op.Kind]++
	}
	n := float64(len(ops))
	// Branch fraction is set by block lengths (4..12, mean 8) → ~1/8.
	if f := float64(counts[KindBranch]) / n; f < 0.08 || f > 0.18 {
		t.Errorf("branch fraction %.3f, want ~0.125", f)
	}
	// Non-branch kinds follow the mix applied to non-branch slots (~87.5%).
	nonBr := n - float64(counts[KindBranch])
	if f := float64(counts[KindLoad]) / nonBr; math.Abs(f-0.25) > 0.03 {
		t.Errorf("load fraction %.3f, want ~0.25 of non-branch", f)
	}
	if f := float64(counts[KindStore]) / nonBr; math.Abs(f-0.10) > 0.02 {
		t.Errorf("store fraction %.3f, want ~0.10", f)
	}
	if f := float64(counts[KindFP]) / nonBr; math.Abs(f-0.10) > 0.02 {
		t.Errorf("fp fraction %.3f, want ~0.10", f)
	}
	if counts[KindDiv] == 0 || counts[KindMul] == 0 || counts[KindInt] == 0 {
		t.Error("expected some div, mul and int ops")
	}
}

func TestAddressesWithinFootprints(t *testing.T) {
	spec := testSpec()
	ops := collect(New(spec))
	for _, op := range ops {
		if op.Kind.IsMem() {
			if op.Addr < dataBase || op.Addr >= dataBase+uint64(spec.DataFootprint) {
				t.Fatalf("data address %#x outside footprint", op.Addr)
			}
		}
		if op.PC < codeBase || op.PC >= codeBase+uint64(spec.CodeFootprint)+64 {
			t.Fatalf("PC %#x outside code footprint", op.PC)
		}
		if op.Kind == KindBranch {
			if op.Target < codeBase || op.Target >= codeBase+uint64(spec.CodeFootprint)+64 {
				t.Fatalf("branch target %#x outside code footprint", op.Target)
			}
		}
	}
}

func TestDependencesValid(t *testing.T) {
	ops := collect(New(testSpec()))
	for i, op := range ops {
		if uint64(op.Dep1) > op.Seq || uint64(op.Dep2) > op.Seq {
			t.Fatalf("op %d: dependence beyond stream start (dep1=%d dep2=%d seq=%d)",
				i, op.Dep1, op.Dep2, op.Seq)
		}
	}
	// First op can have no dependences.
	if ops[0].Dep1 != 0 || ops[0].Dep2 != 0 {
		t.Error("first op must have no dependences")
	}
}

func TestStoresHaveTwoOperands(t *testing.T) {
	ops := collect(New(testSpec()))
	for _, op := range ops {
		if op.Kind == KindStore && op.Seq > 10 && op.Dep2 == 0 {
			t.Fatalf("store at seq %d lacks a data operand", op.Seq)
		}
	}
}

func TestFusePairsWellFormed(t *testing.T) {
	ops := collect(New(testSpec()))
	for i := 0; i < len(ops); i++ {
		if ops[i].FuseHead {
			if ops[i].FuseTail {
				t.Fatalf("op %d is both head and tail", i)
			}
			if i+1 < len(ops) && !ops[i+1].FuseTail {
				t.Fatalf("head at %d not followed by tail", i)
			}
		}
		if ops[i].FuseTail && i > 0 && !ops[i-1].FuseHead {
			t.Fatalf("tail at %d not preceded by head", i)
		}
	}
}

func TestTakenBranchesGoToTargets(t *testing.T) {
	ops := collect(New(testSpec()))
	for i := 0; i < len(ops)-1; i++ {
		if ops[i].Kind == KindBranch {
			// The next op's PC must equal the recorded target (taken or
			// fall-through — the generator stores the actual next PC).
			if ops[i+1].PC != ops[i].Target {
				t.Fatalf("branch at %d: target %#x but next PC %#x", i, ops[i].Target, ops[i+1].PC)
			}
		}
	}
}

func TestInstrBoundaries(t *testing.T) {
	spec := testSpec()
	spec.NumOps = 100000
	ops := collect(New(spec))
	instrs := 0
	for _, op := range ops {
		if op.InstrFirst {
			instrs++
		}
	}
	ratio := float64(len(ops)) / float64(instrs)
	// ~1.5 canonical µops per instruction by construction.
	if ratio < 1.3 || ratio > 1.7 {
		t.Errorf("µops per instruction %.2f, want ~1.5", ratio)
	}
	if !ops[0].InstrFirst {
		t.Error("first µop must start an instruction")
	}
}

func TestBranchHardFracAffectsBias(t *testing.T) {
	// With all-hard branches, outcomes should be near 50/50; with
	// all-easy, heavily biased one way or another per branch site.
	hard := testSpec()
	hard.Name = "hard"
	hard.BranchHardFrac = 1
	hard.NumOps = 100000
	easy := testSpec()
	easy.Name = "easy"
	easy.BranchHardFrac = 0
	easy.NumOps = 100000

	flipRate := func(spec Spec) float64 {
		// Measure per-PC outcome instability: fraction of branches whose
		// outcome differs from that PC's previous outcome. Random branches
		// flip ~50% of the time, biased ones rarely.
		g := New(spec)
		last := map[uint64]bool{}
		flips, total := 0, 0
		var op MicroOp
		for g.Next(&op) {
			if op.Kind != KindBranch {
				continue
			}
			if prev, ok := last[op.PC]; ok {
				total++
				if prev != op.Taken {
					flips++
				}
			}
			last[op.PC] = op.Taken
		}
		return float64(flips) / float64(total)
	}
	fHard, fEasy := flipRate(hard), flipRate(easy)
	if fHard < 0.3 {
		t.Errorf("hard branches flip rate %.3f, want >= 0.3", fHard)
	}
	if fEasy > 0.15 {
		t.Errorf("easy branches flip rate %.3f, want <= 0.15", fEasy)
	}
	if fHard <= fEasy {
		t.Errorf("hard flip rate (%.3f) should exceed easy (%.3f)", fHard, fEasy)
	}
}

func TestDataLocalityConcentratesAccesses(t *testing.T) {
	lowLoc := testSpec()
	lowLoc.Name = "lowloc"
	lowLoc.DataLocality = 0
	hiLoc := testSpec()
	hiLoc.Name = "hiloc"
	hiLoc.DataLocality = 1

	hotMass := func(spec Spec) float64 {
		g := New(spec)
		var op MicroOp
		hot, total := 0, 0
		hotLimit := dataBase + uint64(spec.DataFootprint)/10
		for g.Next(&op) {
			if op.Kind.IsMem() {
				total++
				if op.Addr < hotLimit {
					hot++
				}
			}
		}
		return float64(hot) / float64(total)
	}
	lo, hi := hotMass(lowLoc), hotMass(hiLoc)
	if hi <= lo {
		t.Errorf("high locality hot mass %.3f should exceed low locality %.3f", hi, lo)
	}
	if hi < 0.5 {
		t.Errorf("high locality hot mass %.3f, want > 0.5", hi)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	breakers := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.NumOps = 0 },
		func(s *Spec) { s.LoadFrac = 0.9; s.StoreFrac = 0.9 },
		func(s *Spec) { s.BranchHardFrac = 1.5 },
		func(s *Spec) { s.PointerChaseFrac = -0.1 },
		func(s *Spec) { s.CodeFootprint = 100 },
		func(s *Spec) { s.DataFootprint = 100 },
		func(s *Spec) { s.DepDistMean = 0.5 },
	}
	for i, b := range breakers {
		s := testSpec()
		b(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("breaker %d: expected validation error", i)
		}
	}
	good := testSpec()
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestNewPanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Spec{})
}

func TestKindStrings(t *testing.T) {
	for k := KindInt; k < kindCount; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should render")
	}
	if !KindLoad.IsMem() || !KindStore.IsMem() || KindInt.IsMem() {
		t.Error("IsMem misclassifies")
	}
}

// Property: any valid-ish spec yields a stream with consistent PCs,
// dependences and length.
func TestStreamInvariantsProperty(t *testing.T) {
	f := func(seed uint64, loadF, locality uint8) bool {
		spec := testSpec()
		spec.Seed = seed
		spec.NumOps = 2000
		spec.LoadFrac = float64(loadF%40) / 100
		spec.DataLocality = float64(locality%100) / 100
		g := New(spec)
		var op MicroOp
		count := 0
		for g.Next(&op) {
			if op.Seq != uint64(count) {
				return false
			}
			if uint64(op.Dep1) > op.Seq || uint64(op.Dep2) > op.Seq {
				return false
			}
			if op.Kind.IsMem() && op.Addr == 0 {
				return false
			}
			count++
		}
		return count == spec.NumOps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSpecConfigHashStableAndSensitive(t *testing.T) {
	a := Spec{Name: "w", Seed: 7, NumOps: 1000, CodeFootprint: 4096,
		DataFootprint: 1 << 20, DepDistMean: 6}
	b := a
	if a.ConfigHash() != b.ConfigHash() {
		t.Error("identical specs must hash equal")
	}
	b.Seed++
	if a.ConfigHash() == b.ConfigHash() {
		t.Error("changing the seed must change the hash")
	}
	c := a
	c.PointerChaseFrac = 0.3
	if a.ConfigHash() == c.ConfigHash() {
		t.Error("changing a knob must change the hash")
	}
}

// A materialized Buffer must replay the exact µop sequence its
// Generator emits — the invariant the whole shared-trace grid path
// rests on — and Replay cursors must be independent of each other.
func TestBufferReplaysGeneratorStreamExactly(t *testing.T) {
	spec := Spec{
		Name: "buffered", Seed: 11, NumOps: 20000,
		LoadFrac: 0.25, StoreFrac: 0.1, FPFrac: 0.05,
		BranchHardFrac: 0.2,
		CodeFootprint:  64 << 10, CodeLocality: 0.7,
		DataFootprint: 2 << 20, DataLocality: 0.5,
		PointerChaseFrac: 0.05, DepDistMean: 8,
		LongChainFrac: 0.1, FusibleFrac: 0.3,
	}
	g := New(spec)
	buf := Materialize(spec)
	if buf.NumOps() != spec.NumOps {
		t.Fatalf("buffer holds %d ops, want %d", buf.NumOps(), spec.NumOps)
	}
	if buf.Spec().ConfigHash() != spec.ConfigHash() {
		t.Error("buffer spec round-trip failed")
	}
	var want, got MicroOp
	for i := 0; g.Next(&want); i++ {
		if !buf.Next(&got) {
			t.Fatalf("buffer exhausted at op %d", i)
		}
		if got != want {
			t.Fatalf("op %d differs: buffer %+v vs generator %+v", i, got, want)
		}
	}
	if buf.Next(&got) {
		t.Error("buffer longer than the generating stream")
	}

	// Reset restarts the cursor; Replay cursors advance independently.
	buf.Reset()
	a, b := buf.Replay(), buf.Replay()
	var oa, ob MicroOp
	if !a.Next(&oa) || !a.Next(&oa) {
		t.Fatal("replay cursor exhausted early")
	}
	if !b.Next(&ob) || ob.Seq != 0 {
		t.Errorf("second cursor should start at seq 0, got %d", ob.Seq)
	}
	if !buf.Next(&oa) || oa.Seq != 0 {
		t.Errorf("reset buffer should restart at seq 0, got %d", oa.Seq)
	}
}

func TestMaterializePanicsOnInvalidSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Materialize of an invalid spec should panic, as New does")
		}
	}()
	Materialize(Spec{Name: "bad"})
}
