// Trace file codec: a versioned binary on-disk format for materialized
// µop streams, so workloads can leave the process that generated them —
// exported by cmd/tracetool, imported as file-backed suites, and run
// through the same store-keyed pipeline as generated traces.
//
// Layout (all integers little-endian):
//
//	offset  size  field
//	0       8     magic "MECPITRC"
//	8       4     format version (currently 1)
//	12      4     spec section length S
//	16      S     spec as strict JSON (Content/SourceFile cleared)
//	16+S    8     op count N (must equal spec.NumOps)
//	24+S    42×N  op records (see below)
//	end-32  32    SHA-256 over every preceding byte
//
// Op record, 42 bytes: Seq(8) PC(8) Addr(8) Target(8) Dep1(4) Dep2(4)
// Kind(1) flags(1), where flags bit0=Taken bit1=InstrFirst bit2=FuseHead
// bit3=FuseTail and the remaining bits must be zero.
//
// Versioning policy: any layout change bumps FileVersion; Decode rejects
// every version it was not built for rather than guessing. The trailing
// checksum doubles as the file's content identity — Decode folds it into
// Spec.Content, which is what derives run-store keys for file-backed
// workloads.

package trace

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

const (
	// FileMagic opens every trace file.
	FileMagic = "MECPITRC"
	// FileVersion is the format version this build reads and writes.
	FileVersion = 1
	// FileExt is the conventional trace file extension.
	FileExt = ".mtrc"

	// MaxFileOps caps the op count Decode will allocate for, so a
	// malformed header cannot demand an absurd allocation (64Mi ops is
	// ~30× the largest suite workload).
	MaxFileOps = 1 << 26

	opRecordBytes = 42
	maxSpecJSON   = 1 << 20
	checksumBytes = sha256.Size
)

// Op record flag bits.
const (
	flagTaken = 1 << iota
	flagInstrFirst
	flagFuseHead
	flagFuseTail
	flagsValid = flagTaken | flagInstrFirst | flagFuseHead | flagFuseTail
)

// Encode writes the buffer's full stream (regardless of cursor position)
// in the versioned binary format. The embedded spec is normalized —
// Content and SourceFile cleared — so exporting an imported buffer
// re-encodes byte-identically and the checksum only ever covers
// generation parameters plus the ops themselves.
func (b *Buffer) Encode(w io.Writer) error {
	if len(b.ops) != b.spec.NumOps {
		return fmt.Errorf("trace: encode %s: buffer holds %d ops, spec declares %d (released backing store?)",
			b.spec.Name, len(b.ops), b.spec.NumOps)
	}
	norm := b.spec
	norm.Content = ""
	norm.SourceFile = ""
	specJSON, err := json.Marshal(norm)
	if err != nil {
		return fmt.Errorf("trace: encode %s: marshal spec: %v", b.spec.Name, err)
	}
	if len(specJSON) > maxSpecJSON {
		return fmt.Errorf("trace: encode %s: spec section %d bytes exceeds %d", b.spec.Name, len(specJSON), maxSpecJSON)
	}

	bw := bufio.NewWriter(w)
	h := sha256.New()
	mw := io.MultiWriter(bw, h)

	var hdr [16]byte
	copy(hdr[:8], FileMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], FileVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(specJSON)))
	if _, err := mw.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: encode %s: %w", b.spec.Name, err)
	}
	if _, err := mw.Write(specJSON); err != nil {
		return fmt.Errorf("trace: encode %s: %w", b.spec.Name, err)
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(b.ops)))
	if _, err := mw.Write(cnt[:]); err != nil {
		return fmt.Errorf("trace: encode %s: %w", b.spec.Name, err)
	}

	var rec [opRecordBytes]byte
	for i := range b.ops {
		op := &b.ops[i]
		binary.LittleEndian.PutUint64(rec[0:8], op.Seq)
		binary.LittleEndian.PutUint64(rec[8:16], op.PC)
		binary.LittleEndian.PutUint64(rec[16:24], op.Addr)
		binary.LittleEndian.PutUint64(rec[24:32], op.Target)
		binary.LittleEndian.PutUint32(rec[32:36], op.Dep1)
		binary.LittleEndian.PutUint32(rec[36:40], op.Dep2)
		rec[40] = uint8(op.Kind)
		var flags uint8
		if op.Taken {
			flags |= flagTaken
		}
		if op.InstrFirst {
			flags |= flagInstrFirst
		}
		if op.FuseHead {
			flags |= flagFuseHead
		}
		if op.FuseTail {
			flags |= flagFuseTail
		}
		rec[41] = flags
		if _, err := mw.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: encode %s: %w", b.spec.Name, err)
		}
	}

	if _, err := bw.Write(h.Sum(nil)); err != nil {
		return fmt.Errorf("trace: encode %s: %w", b.spec.Name, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: encode %s: %w", b.spec.Name, err)
	}
	return nil
}

// Decode reads one trace file from r. It is strict: wrong magic,
// unknown versions, malformed or unknown spec fields, op-count
// mismatches, undefined kinds or flag bits, checksum mismatches,
// truncation, and trailing garbage all return errors — Decode never
// panics on hostile input. The returned buffer's spec carries the
// verified file checksum in Content.
func Decode(r io.Reader) (*Buffer, error) {
	return decode(r, nil, true)
}

// decode is Decode with an optional recycled backing store (see
// MaterializeSpecInto) and a switch for materializing ops at all: when
// keepOps is false the records are integrity-checked and hashed but
// thrown away, which is how ReadFileSpec verifies a file it is only
// listing.
func decode(r io.Reader, ops []MicroOp, keepOps bool) (*Buffer, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	h := sha256.New()
	tr := io.TeeReader(br, h)

	var hdr [16]byte
	if _, err := io.ReadFull(tr, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if string(hdr[:8]) != FileMagic {
		return nil, fmt.Errorf("trace: bad magic %q: not a trace file", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != FileVersion {
		return nil, fmt.Errorf("trace: unsupported trace file version %d (this build reads version %d)", v, FileVersion)
	}
	specLen := binary.LittleEndian.Uint32(hdr[12:16])
	if specLen == 0 || specLen > maxSpecJSON {
		return nil, fmt.Errorf("trace: spec section of %d bytes outside (0, %d]", specLen, maxSpecJSON)
	}

	specJSON := make([]byte, specLen)
	if _, err := io.ReadFull(tr, specJSON); err != nil {
		return nil, fmt.Errorf("trace: read spec section: %w", err)
	}
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(specJSON))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("trace: decode spec: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trace: trailing data after spec JSON")
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("trace: file spec invalid: %w", err)
	}

	var cnt [8]byte
	if _, err := io.ReadFull(tr, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: read op count: %w", err)
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	if n != uint64(spec.NumOps) {
		return nil, fmt.Errorf("trace: file has %d ops but spec declares NumOps=%d", n, spec.NumOps)
	}
	if n > MaxFileOps {
		return nil, fmt.Errorf("trace: %d ops exceed the %d-op file cap", n, MaxFileOps)
	}

	if keepOps {
		if cap(ops) < int(n) {
			ops = make([]MicroOp, 0, n)
		}
		ops = ops[:0]
	}
	var rec [opRecordBytes]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(tr, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: read op %d of %d: %w", i, n, err)
		}
		kind := rec[40]
		if kind >= uint8(kindCount) {
			return nil, fmt.Errorf("trace: op %d has undefined kind %d", i, kind)
		}
		flags := rec[41]
		if flags&^uint8(flagsValid) != 0 {
			return nil, fmt.Errorf("trace: op %d has undefined flag bits %#x", i, flags)
		}
		if !keepOps {
			continue
		}
		ops = append(ops, MicroOp{
			Seq:        binary.LittleEndian.Uint64(rec[0:8]),
			Kind:       Kind(kind),
			PC:         binary.LittleEndian.Uint64(rec[8:16]),
			Addr:       binary.LittleEndian.Uint64(rec[16:24]),
			Target:     binary.LittleEndian.Uint64(rec[24:32]),
			Taken:      flags&flagTaken != 0,
			Dep1:       binary.LittleEndian.Uint32(rec[32:36]),
			Dep2:       binary.LittleEndian.Uint32(rec[36:40]),
			InstrFirst: flags&flagInstrFirst != 0,
			FuseHead:   flags&flagFuseHead != 0,
			FuseTail:   flags&flagFuseTail != 0,
		})
	}

	sum := h.Sum(nil)
	var declared [checksumBytes]byte
	if _, err := io.ReadFull(br, declared[:]); err != nil {
		return nil, fmt.Errorf("trace: read checksum: %w", err)
	}
	if !bytes.Equal(sum, declared[:]) {
		return nil, fmt.Errorf("trace: checksum mismatch: file carries %x, content hashes to %x", declared, sum)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trace: trailing garbage after checksum")
	}

	spec.Content = hex.EncodeToString(declared[:])
	if !keepOps {
		return &Buffer{spec: spec}, nil
	}
	return &Buffer{spec: spec, ops: ops}, nil
}

// WriteFile encodes the buffer to path atomically (temp file + rename in
// the destination directory), the runstore discipline: readers never see
// a half-written trace.
func WriteFile(path string, b *Buffer) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".mtrc-*")
	if err != nil {
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	if err := b.Encode(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	return nil
}

// ReadFile decodes the trace file at path. The returned buffer's spec
// has Content set to the verified checksum and SourceFile set to path.
func ReadFile(path string) (*Buffer, error) {
	return readFileInto(path, nil)
}

func readFileInto(path string, ops []MicroOp) (*Buffer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	b, err := decode(f, ops, true)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	b.spec.SourceFile = path
	return b, nil
}

// ReadFileSpec reads and fully verifies the trace file at path but
// materializes nothing: it returns just the embedded spec with Content
// (the verified checksum) and SourceFile filled in. This is what suite
// registration and listings use — identity without the memory.
func ReadFileSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	b, err := decode(f, nil, false)
	if err != nil {
		return Spec{}, fmt.Errorf("trace: %s: %w", path, err)
	}
	spec := b.spec
	spec.SourceFile = path
	return spec, nil
}

// MaterializeSpec is the file-aware Materialize: specs from trace files
// (SourceFile set) are decoded from disk and verified against the
// Content hash they were registered under, all others are generated.
// Unlike Materialize it reports invalid specs and file problems as
// errors instead of panicking.
func MaterializeSpec(spec Spec) (*Buffer, error) {
	return MaterializeSpecInto(spec, nil)
}

// MaterializeSpecInto is MaterializeSpec recycling a released backing
// store, with the same ownership rules as MaterializeInto.
func MaterializeSpecInto(spec Spec, ops []MicroOp) (*Buffer, error) {
	if spec.SourceFile == "" {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		return MaterializeInto(spec, ops), nil
	}
	b, err := readFileInto(spec.SourceFile, ops)
	if err != nil {
		return nil, err
	}
	if spec.Content != "" && b.spec.Content != spec.Content {
		return nil, fmt.Errorf("trace: %s: content hash %.12s… does not match registered %.12s… (file rewritten since import?)",
			spec.SourceFile, b.spec.Content, spec.Content)
	}
	return b, nil
}

// NewSpecSource is the file-aware trace.New: a streaming generator for
// generated specs, a decoded buffer for file-backed ones, and errors
// instead of panics either way.
func NewSpecSource(spec Spec) (Source, error) {
	if spec.SourceFile == "" {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		return New(spec), nil
	}
	return MaterializeSpec(spec)
}
