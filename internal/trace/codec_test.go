package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func codecSpec() Spec {
	return Spec{
		Name: "codec-wl", Seed: 11, NumOps: 20000,
		LoadFrac: 0.25, StoreFrac: 0.1, FPFrac: 0.1, MulFrac: 0.02, DivFrac: 0.01,
		BranchHardFrac: 0.2, CodeFootprint: 64 << 10, CodeLocality: 0.7,
		DataFootprint: 2 << 20, DataLocality: 0.5,
		PointerChaseFrac: 0.05, DepDistMean: 8,
		LongChainFrac: 0.1, FusibleFrac: 0.3,
	}
}

func phasedSpec() Spec {
	s := codecSpec()
	s.Name = "codec-phased"
	s.Phases = []Phase{
		{Frac: 0.5, DataLocality: 0.9, PointerChaseFrac: 0, BranchNoise: 0},
		{Frac: 0.5, DataLocality: 0.1, PointerChaseFrac: 0.3, BranchNoise: 0.5},
	}
	return s
}

func burstySpec() Spec {
	s := codecSpec()
	s.Name = "codec-bursty"
	s.BurstFrac = 0.2
	s.BurstLen = 32
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, spec := range []Spec{codecSpec(), phasedSpec(), burstySpec()} {
		t.Run(spec.Name, func(t *testing.T) {
			orig := Materialize(spec)
			var buf bytes.Buffer
			if err := orig.Encode(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if got.NumOps() != orig.NumOps() {
				t.Fatalf("decoded %d ops, want %d", got.NumOps(), orig.NumOps())
			}
			var a, b MicroOp
			oc, gc := orig.Replay(), got.Replay()
			for i := 0; oc.Next(&a); i++ {
				if !gc.Next(&b) {
					t.Fatalf("decoded stream ends at op %d", i)
				}
				if a != b {
					t.Fatalf("op %d differs:\n  orig    %+v\n  decoded %+v", i, a, b)
				}
			}
			if gc.Next(&b) {
				t.Fatal("decoded stream longer than original")
			}
			if got.Spec().Content == "" {
				t.Error("decode left Content empty")
			}
			if got.Spec().ConfigHash() == spec.ConfigHash() {
				t.Error("file-backed spec should not share the generated spec's ConfigHash")
			}
		})
	}
}

// Re-encoding a decoded buffer must reproduce the file byte-for-byte:
// that is what makes the file checksum a stable content identity across
// export → import → export chains.
func TestReencodeByteStable(t *testing.T) {
	orig := Materialize(phasedSpec())
	var first bytes.Buffer
	if err := orig.Encode(&first); err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := dec.Encode(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("re-encode of a decoded buffer is not byte-identical")
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wl"+FileExt)
	orig := Materialize(codecSpec())
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}

	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec().SourceFile != path {
		t.Errorf("SourceFile = %q, want %q", got.Spec().SourceFile, path)
	}
	if got.NumOps() != orig.NumOps() {
		t.Fatalf("read %d ops, want %d", got.NumOps(), orig.NumOps())
	}

	spec, err := ReadFileSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Content != got.Spec().Content {
		t.Error("ReadFileSpec and ReadFile disagree on Content")
	}
	if spec.SourceFile != path {
		t.Errorf("ReadFileSpec SourceFile = %q, want %q", spec.SourceFile, path)
	}
	// SourceFile must not leak into identity: hashes keyed by Content only.
	moved := filepath.Join(dir, "renamed"+FileExt)
	if err := os.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	spec2, err := ReadFileSpec(moved)
	if err != nil {
		t.Fatal(err)
	}
	if spec2.ConfigHash() != spec.ConfigHash() {
		t.Error("moving a trace file changed its ConfigHash")
	}
}

func TestMaterializeSpecFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wl"+FileExt)
	orig := Materialize(burstySpec())
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	spec, err := ReadFileSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := MaterializeSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	var a, b MicroOp
	oc, bc := orig.Replay(), buf.Replay()
	for oc.Next(&a) {
		if !bc.Next(&b) || a != b {
			t.Fatal("file-materialized stream differs from original")
		}
	}

	// A rewritten file no longer matches the registered Content hash.
	other := Materialize(codecSpec())
	if err := WriteFile(path, other); err != nil {
		t.Fatal(err)
	}
	if _, err := MaterializeSpec(spec); err == nil {
		t.Fatal("materializing against a rewritten file should fail the content check")
	}
}

// Hostile inputs: every corruption decodes to an error, never a panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	var good bytes.Buffer
	if err := Materialize(codecSpec()).Encode(&good); err != nil {
		t.Fatal(err)
	}
	raw := good.Bytes()

	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), raw...)
		return f(b)
	}

	cases := []struct {
		name string
		data []byte
		want string // substring the error must mention
	}{
		{"empty", nil, "header"},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b }), "magic"},
		{"future version", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], FileVersion+1)
			return b
		}), "version"},
		{"huge spec length", mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[12:16], maxSpecJSON+1)
			return b
		}), "spec section"},
		{"truncated mid-spec", raw[:20], "spec"},
		{"truncated mid-ops", raw[:len(raw)/2], "op"},
		{"missing checksum", raw[:len(raw)-checksumBytes], "checksum"},
		{"flipped op byte", mutate(func(b []byte) []byte {
			b[len(b)-checksumBytes-10] ^= 0xFF
			return b
		}), ""},
		{"flipped checksum byte", mutate(func(b []byte) []byte {
			b[len(b)-1] ^= 0xFF
			return b
		}), "checksum"},
		{"trailing garbage", append(append([]byte(nil), raw...), 0xAA), "trailing"},
		{"undefined kind", mutate(func(b []byte) []byte {
			// First op record starts after the 16-byte header, the spec
			// JSON, and the 8-byte count; kind is byte 40 of the record.
			specLen := binary.LittleEndian.Uint32(b[12:16])
			b[16+int(specLen)+8+40] = uint8(kindCount)
			return b
		}), "kind"},
		{"undefined flag bits", mutate(func(b []byte) []byte {
			specLen := binary.LittleEndian.Uint32(b[12:16])
			b[16+int(specLen)+8+41] |= 0x80
			return b
		}), "flag"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("decode accepted corrupt input")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDecodeRejectsOpCountMismatch(t *testing.T) {
	var good bytes.Buffer
	if err := Materialize(codecSpec()).Encode(&good); err != nil {
		t.Fatal(err)
	}
	b := good.Bytes()
	specLen := binary.LittleEndian.Uint32(b[12:16])
	binary.LittleEndian.PutUint64(b[16+int(specLen):], uint64(codecSpec().NumOps+1))
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Fatal("decode accepted an op count that contradicts the spec")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.mtrc")); err == nil {
		t.Fatal("reading a missing file should error")
	}
	if _, err := ReadFileSpec(filepath.Join(t.TempDir(), "nope.mtrc")); err == nil {
		t.Fatal("reading a missing file's spec should error")
	}
}
