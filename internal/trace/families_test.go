package trace

import "testing"

// The two modulations new in this format version: piecewise-stationary
// phases and bursty data access. Both must be deterministic across
// Reset and must actually change the stream statistics they claim to.

func TestPhasedDeterministic(t *testing.T) {
	g := New(phasedSpec())
	first := make([]MicroOp, 0, g.NumOps())
	var op MicroOp
	for g.Next(&op) {
		first = append(first, op)
	}
	g.Reset()
	for i := 0; g.Next(&op); i++ {
		if op != first[i] {
			t.Fatalf("op %d differs after Reset", i)
		}
	}
	if len(first) != g.NumOps() {
		t.Fatalf("emitted %d ops, want %d", len(first), g.NumOps())
	}
}

func TestPhasesChangeLocality(t *testing.T) {
	spec := phasedSpec() // phase 0: locality 0.9; phase 1: locality 0.1
	buf := Materialize(spec)
	half := spec.NumOps / 2
	uniq := [2]map[uint64]bool{{}, {}}
	var op MicroOp
	for buf.Next(&op) {
		if !op.Kind.IsMem() {
			continue
		}
		ph := 0
		if int(op.Seq) >= half {
			ph = 1
		}
		uniq[ph][op.Addr/lineBytes] = true
	}
	if len(uniq[1]) < 2*len(uniq[0]) {
		t.Errorf("low-locality phase touches %d lines, high-locality phase %d; want a clear spread",
			len(uniq[1]), len(uniq[0]))
	}
}

func TestPhaseBranchNoise(t *testing.T) {
	spec := codecSpec()
	spec.Name = "noise"
	spec.BranchHardFrac = 0 // every static branch strongly biased
	spec.Phases = []Phase{
		{Frac: 0.5, DataLocality: 0.5},
		{Frac: 0.5, DataLocality: 0.5, BranchNoise: 1},
	}
	buf := Materialize(spec)
	half := spec.NumOps / 2
	var taken, branches [2]int
	var op MicroOp
	for buf.Next(&op) {
		if op.Kind != KindBranch {
			continue
		}
		ph := 0
		if int(op.Seq) >= half {
			ph = 1
		}
		branches[ph]++
		if op.Taken {
			taken[ph]++
		}
	}
	// Full noise makes every outcome a coin flip: taken rate ~0.5.
	rate := float64(taken[1]) / float64(branches[1])
	if rate < 0.45 || rate > 0.55 {
		t.Errorf("noisy phase taken rate %.3f, want ~0.5", rate)
	}
}

func TestBurstyDeterministicAndScattered(t *testing.T) {
	spec := burstySpec()
	a, b := Materialize(spec), Materialize(spec)
	var x, y MicroOp
	for i := 0; a.Next(&x); i++ {
		if !b.Next(&y) || x != y {
			t.Fatalf("bursty generation not deterministic at op %d", i)
		}
	}

	calm := spec
	calm.Name = "calm"
	calm.BurstFrac = 0
	calm.BurstLen = 0
	lines := func(s Spec) int {
		u := map[uint64]bool{}
		buf := Materialize(s)
		var op MicroOp
		for buf.Next(&op) {
			if op.Kind.IsMem() {
				u[op.Addr/lineBytes] = true
			}
		}
		return len(u)
	}
	if lb, lc := lines(spec), lines(calm); lb <= lc {
		t.Errorf("bursty stream touches %d lines, calm %d; uniform burst scatter should widen the set", lb, lc)
	}
}
