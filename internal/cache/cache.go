// Package cache implements the memory-hierarchy substrate of the
// simulated machines: set-associative write-allocate caches with true-LRU
// replacement, fully-associative TLBs, and a multi-level Hierarchy that
// composes L1I/L1D, a unified L2, an optional unified L3, and main
// memory. The Hierarchy reports load-to-use latencies (Table 2 semantics:
// each level's latency is the total latency when the access is satisfied
// there, not an increment) and keeps the per-side hit/miss statistics the
// performance-counter layer exposes.
package cache

import (
	"fmt"

	"repro/internal/uarch"
)

// Level identifies where an access was satisfied.
type Level int

// Hierarchy levels.
const (
	LvlL1 Level = iota
	LvlL2
	LvlL3
	LvlMem
)

func (l Level) String() string {
	switch l {
	case LvlL1:
		return "L1"
	case LvlL2:
		return "L2"
	case LvlL3:
		return "L3"
	case LvlMem:
		return "mem"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Cache is one set-associative cache with true-LRU replacement.
type Cache struct {
	cfg       uarch.CacheConfig
	tags      []uint64 // sets*assoc entries
	valid     []bool
	lru       []uint32 // per-line stamp; larger = more recent
	stamp     uint32
	setsMask  uint64
	lineShift uint
	assoc     int

	hits, misses uint64
}

// NewCache builds a cache from the configuration.
func NewCache(cfg uarch.CacheConfig) (*Cache, error) {
	if err := cfg.Valid(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:      cfg,
		tags:     make([]uint64, sets*cfg.Assoc),
		valid:    make([]bool, sets*cfg.Assoc),
		lru:      make([]uint32, sets*cfg.Assoc),
		setsMask: uint64(sets - 1),
		assoc:    cfg.Assoc,
	}
	for c.cfg.LineBytes>>c.lineShift > 1 {
		c.lineShift++
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() uarch.CacheConfig { return c.cfg }

// Access looks up addr, updates LRU state, allocates on miss, and reports
// whether it hit. (Write-allocate: reads and writes behave identically
// for tag-state purposes.)
func (c *Cache) Access(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	set := lineAddr & c.setsMask
	base := int(set) * c.assoc
	c.stamp++
	if c.stamp == 0 { // wrapped: reset all stamps to preserve ordering roughly
		for i := range c.lru {
			c.lru[i] = 0
		}
		c.stamp = 1
	}
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == lineAddr {
			c.lru[i] = c.stamp
			c.hits++
			return true
		}
	}
	c.misses++
	// Allocate: pick an invalid way, else the LRU way.
	victim := base
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			break
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	c.tags[victim] = lineAddr
	c.valid[victim] = true
	c.lru[victim] = c.stamp
	return false
}

// Probe reports whether addr is present without updating any state.
func (c *Cache) Probe(addr uint64) bool {
	lineAddr := addr >> c.lineShift
	set := lineAddr & c.setsMask
	base := int(set) * c.assoc
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == lineAddr {
			return true
		}
	}
	return false
}

// Stats returns cumulative hits and misses.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
	}
	c.stamp = 0
	c.hits = 0
	c.misses = 0
}

// tlbHashK is the 64-bit golden-ratio multiplier (Fibonacci hashing):
// the high bits of page*K are well mixed even for the sequential and
// strided page numbers trace generators produce.
const tlbHashK = 0x9E3779B97F4A7C15

// TLB is a fully-associative translation buffer with true-LRU
// replacement. Residency is tracked in an open-addressed page→slot
// table (linear probing, backward-shift deletion, ≤50% load) and
// recency in an intrusive doubly-linked list threaded through the
// slots, so both the hit and the miss/evict path are O(1) and
// allocation-free. A last-page fast path skips even the table probe on
// repeated accesses; deferring the list move is safe because the last
// page is by definition already at the MRU position.
type TLB struct {
	cfg   uarch.TLBConfig
	pages []uint64 // per-slot resident page number
	// LRU list over slots; index Entries is the sentinel. next walks
	// MRU→LRU, so next[sentinel] is the MRU slot and prev[sentinel]
	// the victim.
	next, prev []int32
	key        []uint64 // open-addressed table: page keys...
	slot       []int32  // ...and their slot index, -1 when empty
	tmask      uint64   // len(key)-1; len(key) is a power of two
	hashShift  uint     // 64 - log2(len(key))
	filled     int      // slots allocated since Reset (they fill 0..Entries-1 in order)
	lastPage   uint64
	lastValid  bool
	pageShift  uint

	hits, misses uint64
}

// NewTLB builds a TLB from the configuration.
func NewTLB(cfg uarch.TLBConfig) (*TLB, error) {
	if cfg.Entries <= 0 || cfg.PageBytes <= 0 {
		return nil, fmt.Errorf("cache: invalid TLB config %+v", cfg)
	}
	if cfg.PageBytes&(cfg.PageBytes-1) != 0 {
		return nil, fmt.Errorf("cache: TLB page size %d not a power of two", cfg.PageBytes)
	}
	tsize := 8
	for tsize < 2*cfg.Entries {
		tsize <<= 1
	}
	t := &TLB{
		cfg:   cfg,
		pages: make([]uint64, cfg.Entries),
		next:  make([]int32, cfg.Entries+1),
		prev:  make([]int32, cfg.Entries+1),
		key:   make([]uint64, tsize),
		slot:  make([]int32, tsize),
		tmask: uint64(tsize - 1),
	}
	t.hashShift = 64
	for s := tsize; s > 1; s >>= 1 {
		t.hashShift--
	}
	for cfg.PageBytes>>t.pageShift > 1 {
		t.pageShift++
	}
	t.clearState()
	return t, nil
}

// clearState restores the freshly-constructed empty state; NewTLB and
// Reset share it so Reset is bit-identical to a new TLB.
func (t *TLB) clearState() {
	for i := range t.pages {
		t.pages[i] = 0
		t.next[i] = 0
		t.prev[i] = 0
	}
	s := int32(len(t.pages)) // sentinel
	t.next[s] = s
	t.prev[s] = s
	for i := range t.slot {
		t.key[i] = 0
		t.slot[i] = -1
	}
	t.filled = 0
	t.lastPage = 0
	t.lastValid = false
	t.hits = 0
	t.misses = 0
}

// home returns the preferred table index for page.
func (t *TLB) home(page uint64) uint64 {
	return (page * tlbHashK) >> t.hashShift
}

// unlink removes slot s from the LRU list.
func (t *TLB) unlink(s int32) {
	n, p := t.next[s], t.prev[s]
	t.next[p] = n
	t.prev[n] = p
}

// pushFront makes slot s the MRU entry.
func (t *TLB) pushFront(s int32) {
	sent := int32(len(t.pages))
	n := t.next[sent]
	t.next[s] = n
	t.prev[s] = sent
	t.prev[n] = s
	t.next[sent] = s
}

// tableDel empties table index i, backward-shifting the following
// probe-chain entries so lookups never need tombstones.
func (t *TLB) tableDel(i uint64) {
	t.slot[i] = -1
	j := i
	for {
		j = (j + 1) & t.tmask
		if t.slot[j] < 0 {
			return
		}
		h := t.home(t.key[j])
		// Move j's entry into the hole unless its home lies strictly
		// after the hole on the cyclic probe path ending at j.
		if (j-h)&t.tmask >= (j-i)&t.tmask {
			t.key[i] = t.key[j]
			t.slot[i] = t.slot[j]
			t.slot[j] = -1
			i = j
		}
	}
}

// find probes for page and returns the table index holding it, or the
// first empty index on its probe chain when absent.
func (t *TLB) find(page uint64) uint64 {
	i := t.home(page)
	for t.slot[i] >= 0 {
		if t.key[i] == page {
			return i
		}
		i = (i + 1) & t.tmask
	}
	return i
}

// Access translates addr, allocating on miss; it reports whether the
// translation hit.
func (t *TLB) Access(addr uint64) bool {
	page := addr >> t.pageShift
	// Fast path: repeated access to the most recent page, which is
	// already the MRU list entry — no probe or list move needed.
	if t.lastValid && page == t.lastPage {
		t.hits++
		return true
	}
	i := t.find(page)
	if s := t.slot[i]; s >= 0 {
		t.unlink(s)
		t.pushFront(s)
		t.lastPage = page
		t.lastValid = true
		t.hits++
		return true
	}
	t.misses++
	var s int32
	if t.filled < len(t.pages) {
		// Empty slots are the suffix filled..Entries-1; taking them in
		// order matches the old first-invalid-slot scan.
		s = int32(t.filled)
		t.filled++
	} else {
		s = t.prev[len(t.pages)] // LRU victim
		t.unlink(s)
		t.tableDel(t.find(t.pages[s]))
		i = t.find(page) // deletion may have shifted the insert position
	}
	t.pages[s] = page
	t.key[i] = page
	t.slot[i] = s
	t.pushFront(s)
	t.lastPage = page
	t.lastValid = true
	return false
}

// Stats returns cumulative hits and misses.
func (t *TLB) Stats() (hits, misses uint64) { return t.hits, t.misses }

// Reset invalidates all entries and clears statistics, restoring state
// bit-identical to a freshly built TLB.
func (t *TLB) Reset() {
	t.clearState()
}

// SideStats counts per-level misses for one side (instruction or data).
type SideStats struct {
	L1Misses  uint64 // L1 misses (any destination)
	L2Misses  uint64 // L2 misses (only accesses that reached L2)
	L3Misses  uint64 // L3 misses (only on 3-level machines)
	LLCMisses uint64 // misses at the last level — trips to memory
	TLBMisses uint64

	// Load-only subsets (data side): the model's m_L2D$ counts *load*
	// misses because store misses drain through the write buffer.
	LLCLoadMisses uint64
	L1LoadMisses  uint64
	L1LoadL2Hits  uint64 // L1 load misses that hit in L2 (model's mpµ_DL1)
}

// Access classifies a hierarchy access.
type Access struct {
	Addr    uint64
	IsWrite bool
	IsInstr bool
}

// Result describes the outcome of a hierarchy access.
type Result struct {
	Lat     int   // load-to-use latency in cycles, including TLB penalty
	Level   Level // level that satisfied the access
	TLBMiss bool
	MemTrip bool // access went to main memory (consumes an MSHR)
}

// Hierarchy composes the full memory system of one machine.
type Hierarchy struct {
	machine *uarch.Machine
	l1i     *Cache
	l1d     *Cache
	l2      *Cache
	l3      *Cache // nil when absent
	itlb    *TLB
	dtlb    *TLB
	pf      *Prefetcher // optional L2 stride prefetcher (nil when disabled)

	IStats SideStats
	DStats SideStats
}

// NewHierarchy builds the memory system for m.
func NewHierarchy(m *uarch.Machine) (*Hierarchy, error) {
	h := &Hierarchy{machine: m}
	var err error
	if h.l1i, err = NewCache(m.L1I); err != nil {
		return nil, fmt.Errorf("L1I: %w", err)
	}
	if h.l1d, err = NewCache(m.L1D); err != nil {
		return nil, fmt.Errorf("L1D: %w", err)
	}
	if h.l2, err = NewCache(m.L2); err != nil {
		return nil, fmt.Errorf("L2: %w", err)
	}
	if m.HasL3() {
		if h.l3, err = NewCache(m.L3); err != nil {
			return nil, fmt.Errorf("L3: %w", err)
		}
	}
	if h.itlb, err = NewTLB(m.ITLB); err != nil {
		return nil, fmt.Errorf("ITLB: %w", err)
	}
	if h.dtlb, err = NewTLB(m.DTLB); err != nil {
		return nil, fmt.Errorf("DTLB: %w", err)
	}
	if m.Prefetch.Enabled {
		if h.pf, err = NewPrefetcher(m.Prefetch, h.l2); err != nil {
			return nil, fmt.Errorf("prefetcher: %w", err)
		}
	}
	return h, nil
}

// Prefetcher returns the L2 prefetcher, or nil when disabled.
func (h *Hierarchy) Prefetcher() *Prefetcher { return h.pf }

// Machine returns the owning machine configuration.
func (h *Hierarchy) Machine() *uarch.Machine { return h.machine }

// L1I, L1D, L2, L3, ITLB, DTLB expose the components (L3 may be nil).
func (h *Hierarchy) L1I() *Cache { return h.l1i }
func (h *Hierarchy) L1D() *Cache { return h.l1d }
func (h *Hierarchy) L2() *Cache  { return h.l2 }
func (h *Hierarchy) L3() *Cache  { return h.l3 }
func (h *Hierarchy) ITLB() *TLB  { return h.itlb }
func (h *Hierarchy) DTLB() *TLB  { return h.dtlb }

// Do performs one access through the hierarchy and returns its outcome.
func (h *Hierarchy) Do(a Access) Result {
	if a.IsInstr {
		return h.do(h.l1i, h.itlb, &h.IStats, a.Addr, !a.IsWrite, true)
	}
	return h.do(h.l1d, h.dtlb, &h.DStats, a.Addr, !a.IsWrite, false)
}

// DoInstr performs one instruction-fetch access.
func (h *Hierarchy) DoInstr(addr uint64) Result {
	return h.do(h.l1i, h.itlb, &h.IStats, addr, true, true)
}

// DoLoad performs one data-load access.
func (h *Hierarchy) DoLoad(addr uint64) Result {
	return h.do(h.l1d, h.dtlb, &h.DStats, addr, true, false)
}

// DoStore performs one data-store access. Stores drain through the
// write buffer, so the caller never needs the latency outcome.
func (h *Hierarchy) DoStore(addr uint64) {
	h.do(h.l1d, h.dtlb, &h.DStats, addr, false, false)
}

// do is the shared access path; the side (L1, TLB, statistics) is
// resolved by the Do* wrappers so the per-µop call sites pay no
// per-access side selection. isLoad only matters on the data side
// (isInstr false): load misses feed the model's load-specific counters.
func (h *Hierarchy) do(l1 *Cache, tlb *TLB, side *SideStats, addr uint64, isRead, isInstr bool) Result {
	m := h.machine
	var res Result

	if !tlb.Access(addr) {
		res.TLBMiss = true
		side.TLBMisses++
	}

	isLoad := isRead && !isInstr
	if l1.Access(addr) {
		res.Level = LvlL1
		res.Lat = l1.cfg.LatCycles
	} else {
		side.L1Misses++
		if isLoad {
			side.L1LoadMisses++
		}
		if h.pf != nil && !isInstr {
			// The streamer watches the L2's demand stream (L1D misses) and
			// pre-populates the L2 before the demand lookup below.
			h.pf.OnDemand(addr, h.l2.Probe(addr))
		}
		if h.l2.Access(addr) {
			res.Level = LvlL2
			res.Lat = m.L2.LatCycles
			if isLoad {
				side.L1LoadL2Hits++
			}
		} else {
			side.L2Misses++
			if h.l3 != nil {
				if h.l3.Access(addr) {
					res.Level = LvlL3
					res.Lat = m.L3.LatCycles
				} else {
					side.L3Misses++
					side.LLCMisses++
					if isLoad {
						side.LLCLoadMisses++
					}
					res.Level = LvlMem
					res.Lat = m.MemLat
					res.MemTrip = true
				}
			} else {
				side.LLCMisses++
				if isLoad {
					side.LLCLoadMisses++
				}
				res.Level = LvlMem
				res.Lat = m.MemLat
				res.MemTrip = true
			}
		}
	}
	if res.TLBMiss {
		res.Lat += tlb.cfg.MissLat
	}
	return res
}

// Reset clears all cache/TLB state and statistics.
func (h *Hierarchy) Reset() {
	h.l1i.Reset()
	h.l1d.Reset()
	h.l2.Reset()
	if h.l3 != nil {
		h.l3.Reset()
	}
	h.itlb.Reset()
	h.dtlb.Reset()
	h.IStats = SideStats{}
	h.DStats = SideStats{}
}
