package cache

import (
	"testing"

	"repro/internal/uarch"
)

func pfTarget(t *testing.T) *Cache {
	t.Helper()
	c, err := NewCache(uarch.CacheConfig{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 8, LatCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func newPF(t *testing.T, target *Cache) *Prefetcher {
	t.Helper()
	p, err := NewPrefetcher(uarch.PrefetchConfig{Enabled: true, Streams: 64, Degree: 2}, target)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPrefetcherErrors(t *testing.T) {
	target := pfTarget(t)
	cases := []uarch.PrefetchConfig{
		{Streams: 0, Degree: 2},
		{Streams: 3, Degree: 2}, // not a power of two
		{Streams: 64, Degree: 0},
		{Streams: 64, Degree: 99},
	}
	for i, cfg := range cases {
		if _, err := NewPrefetcher(cfg, target); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
	if _, err := NewPrefetcher(uarch.PrefetchConfig{Streams: 64, Degree: 2}, nil); err == nil {
		t.Error("expected error for nil target")
	}
}

func TestStrideDetectionPrefetchesAhead(t *testing.T) {
	target := pfTarget(t)
	pf := newPF(t, target)
	// Sequential line stride within one 4KB region: after two strides the
	// prefetcher becomes confident and runs ahead.
	base := uint64(0x10000)
	for i := 0; i < 4; i++ {
		addr := base + uint64(i*64)
		pf.OnDemand(addr, target.Probe(addr))
		target.Access(addr)
	}
	// Lines 4 and 5 (degree 2 ahead of line 3) should now be resident.
	if !target.Probe(base + 4*64) {
		t.Error("line +4 should be prefetched")
	}
	if !target.Probe(base + 5*64) {
		t.Error("line +5 should be prefetched")
	}
	issued, _ := pf.Stats()
	if issued == 0 {
		t.Error("no prefetches issued")
	}
}

func TestNonUnitStride(t *testing.T) {
	target := pfTarget(t)
	pf := newPF(t, target)
	base := uint64(0x20000)
	stride := uint64(192) // 3 lines
	for i := 0; i < 5; i++ {
		addr := base + uint64(i)*stride
		pf.OnDemand(addr, target.Probe(addr))
		target.Access(addr)
	}
	next := base + 5*stride
	if !target.Probe(next) {
		t.Errorf("stride-3 stream: line %#x should be prefetched", next)
	}
}

func TestUsefulnessAccounting(t *testing.T) {
	target := pfTarget(t)
	pf := newPF(t, target)
	base := uint64(0x30000)
	for i := 0; i < 8; i++ {
		addr := base + uint64(i*64)
		pf.OnDemand(addr, target.Probe(addr))
		target.Access(addr)
	}
	_, useful := pf.Stats()
	if useful == 0 {
		t.Error("sequential stream should produce useful prefetches")
	}
	if pf.Accuracy() <= 0 || pf.Accuracy() > 1 {
		t.Errorf("accuracy %v out of range", pf.Accuracy())
	}
}

func TestRandomStreamIssuesFewPrefetches(t *testing.T) {
	target := pfTarget(t)
	pf := newPF(t, target)
	// Addresses bouncing across regions with no consistent stride.
	addrs := []uint64{0x10000, 0x91040, 0x23480, 0x77000, 0x410c0, 0x88fc0, 0x15080, 0x62000}
	for _, a := range addrs {
		pf.OnDemand(a, target.Probe(a))
		target.Access(a)
	}
	issued, _ := pf.Stats()
	if issued > 4 {
		t.Errorf("random stream issued %d prefetches, want few", issued)
	}
}

func TestPrefetcherReset(t *testing.T) {
	target := pfTarget(t)
	pf := newPF(t, target)
	for i := 0; i < 6; i++ {
		addr := uint64(0x40000 + i*64)
		pf.OnDemand(addr, target.Probe(addr))
		target.Access(addr)
	}
	pf.Reset()
	issued, useful := pf.Stats()
	if issued != 0 || useful != 0 {
		t.Error("reset should clear stats")
	}
	if pf.Accuracy() != 0 {
		t.Error("reset accuracy should be 0")
	}
}

func TestHierarchyWithPrefetcher(t *testing.T) {
	m := uarch.CoreTwo()
	m.Prefetch = uarch.PrefetchConfig{Enabled: true, Streams: 64, Degree: 4}
	h, err := NewHierarchy(m)
	if err != nil {
		t.Fatal(err)
	}
	if h.Prefetcher() == nil {
		t.Fatal("prefetcher should be attached")
	}
	// A long sequential scan over a working set larger than L1: without
	// prefetch every line misses to memory; with the streamer, L2 misses
	// collapse after the stream trains.
	for i := 0; i < 4096; i++ {
		h.Do(Access{Addr: uint64(0x1000_0000 + i*64)})
	}
	withPF := h.DStats.L2Misses

	m2 := uarch.CoreTwo()
	h2, err := NewHierarchy(m2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		h2.Do(Access{Addr: uint64(0x1000_0000 + i*64)})
	}
	withoutPF := h2.DStats.L2Misses
	if withPF*2 > withoutPF {
		t.Errorf("streamer should cut sequential L2 misses: %d with vs %d without", withPF, withoutPF)
	}
	// Disabled machines get no prefetcher.
	if h2.Prefetcher() != nil {
		t.Error("stock machine must not have a prefetcher")
	}
}

func TestHierarchyPrefetcherIgnoresInstructionSide(t *testing.T) {
	m := uarch.CoreTwo()
	m.Prefetch = uarch.PrefetchConfig{Enabled: true, Streams: 64, Degree: 4}
	h, err := NewHierarchy(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 512; i++ {
		h.Do(Access{Addr: uint64(0x0040_0000 + i*64), IsInstr: true})
	}
	if issued, _ := h.Prefetcher().Stats(); issued != 0 {
		t.Errorf("I-side fetches must not train the data streamer (issued %d)", issued)
	}
}
