package cache

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/uarch"
)

func smallCache(t *testing.T, size, line, assoc, lat int) *Cache {
	t.Helper()
	c, err := NewCache(uarch.CacheConfig{SizeBytes: size, LineBytes: line, Assoc: assoc, LatCycles: lat})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheColdMissThenHit(t *testing.T) {
	c := smallCache(t, 1024, 64, 2, 3)
	if c.Access(0x1000) {
		t.Error("cold access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	if !c.Access(0x1008) {
		t.Error("same-line access should hit")
	}
	if c.Access(0x1040) {
		t.Error("next line should miss")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Errorf("stats hits=%d misses=%d, want 2/2", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way cache, 8 sets of 64B lines (1KB). Three lines mapping to the
	// same set: the least recently used one must be evicted.
	c := smallCache(t, 1024, 64, 2, 3)
	a := uint64(0x0000) // set 0
	b := uint64(0x0200) // set 0 (+8 lines)
	d := uint64(0x0400) // set 0 (+16 lines)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a more recent than b
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Error("a should survive")
	}
	if c.Probe(b) {
		t.Error("b should be evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Error("d should be present")
	}
}

func TestCacheProbeDoesNotAllocate(t *testing.T) {
	c := smallCache(t, 1024, 64, 2, 3)
	if c.Probe(0x1000) {
		t.Error("probe of absent line should be false")
	}
	if c.Access(0x1000) {
		t.Error("probe must not have allocated")
	}
}

func TestCacheReset(t *testing.T) {
	c := smallCache(t, 1024, 64, 2, 3)
	c.Access(0x1000)
	c.Reset()
	if c.Probe(0x1000) {
		t.Error("reset should invalidate")
	}
	h, m := c.Stats()
	if h != 0 || m != 0 {
		t.Error("reset should clear stats")
	}
}

func TestCacheWorkingSetCapacity(t *testing.T) {
	// A working set that fits sees ~100% hits after warmup; twice the
	// capacity with LRU cycling sees ~0%.
	c := smallCache(t, 4096, 64, 4, 3)
	lines := 4096 / 64
	// Fits exactly.
	for round := 0; round < 3; round++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i * 64))
		}
	}
	h, m := c.Stats()
	if h < uint64(2*lines) {
		t.Errorf("fitting working set: hits=%d misses=%d", h, m)
	}
	// Twice capacity, sequential cycling defeats LRU entirely.
	c.Reset()
	for round := 0; round < 3; round++ {
		for i := 0; i < 2*lines; i++ {
			c.Access(uint64(i * 64))
		}
	}
	h, m = c.Stats()
	if h != 0 {
		t.Errorf("thrashing working set should never hit, got hits=%d", h)
	}
}

func TestNewCacheRejectsBadConfig(t *testing.T) {
	if _, err := NewCache(uarch.CacheConfig{}); err == nil {
		t.Error("expected error")
	}
}

func TestTLBBasic(t *testing.T) {
	tlb, err := NewTLB(uarch.TLBConfig{Entries: 4, PageBytes: 4096, MissLat: 30})
	if err != nil {
		t.Fatal(err)
	}
	if tlb.Access(0x1000) {
		t.Error("cold TLB access should miss")
	}
	if !tlb.Access(0x1fff) {
		t.Error("same page should hit")
	}
	if tlb.Access(0x2000) {
		t.Error("different page should miss")
	}
}

func TestTLBLRU(t *testing.T) {
	tlb, err := NewTLB(uarch.TLBConfig{Entries: 2, PageBytes: 4096, MissLat: 30})
	if err != nil {
		t.Fatal(err)
	}
	tlb.Access(0x0000) // page 0
	tlb.Access(0x1000) // page 1
	tlb.Access(0x0000) // page 0 again (page 1 now LRU)
	tlb.Access(0x2000) // page 2, evicts page 1
	if !tlb.Access(0x0000) {
		t.Error("page 0 should survive")
	}
	if tlb.Access(0x1000) {
		t.Error("page 1 should have been evicted")
	}
}

func TestTLBErrorsAndReset(t *testing.T) {
	if _, err := NewTLB(uarch.TLBConfig{Entries: 0, PageBytes: 4096}); err == nil {
		t.Error("expected error for zero entries")
	}
	if _, err := NewTLB(uarch.TLBConfig{Entries: 4, PageBytes: 3000}); err == nil {
		t.Error("expected error for non-power-of-two page")
	}
	tlb, _ := NewTLB(uarch.TLBConfig{Entries: 4, PageBytes: 4096, MissLat: 30})
	tlb.Access(0x1000)
	tlb.Reset()
	if tlb.Access(0x1000) {
		t.Error("reset should invalidate")
	}
	h, m := tlb.Stats()
	if h != 0 || m != 1 {
		t.Errorf("stats after reset+access: %d/%d", h, m)
	}
}

func newTestHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(uarch.CoreI7())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyLatencies(t *testing.T) {
	h := newTestHierarchy(t)
	m := h.Machine()
	addr := uint64(0x1000_0000)
	// Cold: miss everywhere → memory latency + TLB walk.
	r := h.Do(Access{Addr: addr})
	if r.Level != LvlMem || !r.MemTrip {
		t.Errorf("cold access level %v", r.Level)
	}
	if !r.TLBMiss {
		t.Error("cold access should miss TLB")
	}
	if r.Lat != m.MemLat+m.DTLB.MissLat {
		t.Errorf("cold latency %d, want %d", r.Lat, m.MemLat+m.DTLB.MissLat)
	}
	// Warm: L1 hit at L1 latency.
	r = h.Do(Access{Addr: addr})
	if r.Level != LvlL1 || r.Lat != m.L1D.LatCycles {
		t.Errorf("warm access level %v lat %d", r.Level, r.Lat)
	}
}

func TestHierarchyL2AndL3Levels(t *testing.T) {
	h := newTestHierarchy(t)
	m := h.Machine()
	// Fill L1D far beyond capacity so early lines fall out of L1 but stay
	// in L2 (256KB) — then re-access one.
	lines := (m.L1D.SizeBytes / 64) * 4
	for i := 0; i < lines; i++ {
		h.Do(Access{Addr: uint64(0x1000_0000 + i*64)})
	}
	r := h.Do(Access{Addr: 0x1000_0000})
	if r.Level != LvlL2 {
		t.Fatalf("expected L2 hit, got %v", r.Level)
	}
	if r.Lat < m.L2.LatCycles {
		t.Errorf("L2 latency %d below %d", r.Lat, m.L2.LatCycles)
	}
	// Now blow out L2 (256KB) but stay within L3 (8MB).
	lines = (m.L2.SizeBytes / 64) * 4
	for i := 0; i < lines; i++ {
		h.Do(Access{Addr: uint64(0x2000_0000 + i*64)})
	}
	r = h.Do(Access{Addr: 0x2000_0000})
	if r.Level != LvlL3 {
		t.Fatalf("expected L3 hit, got %v", r.Level)
	}
}

func TestHierarchyTwoLevelMachine(t *testing.T) {
	h, err := NewHierarchy(uarch.CoreTwo())
	if err != nil {
		t.Fatal(err)
	}
	if h.L3() != nil {
		t.Error("Core 2 should have no L3")
	}
	r := h.Do(Access{Addr: 0x1234_5678})
	if r.Level != LvlMem {
		t.Errorf("cold miss should reach memory, got %v", r.Level)
	}
}

func TestHierarchySideStats(t *testing.T) {
	h := newTestHierarchy(t)
	// One cold data load and one cold instruction fetch.
	h.Do(Access{Addr: 0x1000_0000})
	h.Do(Access{Addr: 0x0040_0000, IsInstr: true})
	if h.DStats.L1Misses != 1 || h.DStats.LLCMisses != 1 || h.DStats.LLCLoadMisses != 1 {
		t.Errorf("DStats: %+v", h.DStats)
	}
	if h.IStats.L1Misses != 1 || h.IStats.LLCMisses != 1 {
		t.Errorf("IStats: %+v", h.IStats)
	}
	if h.IStats.LLCLoadMisses != 0 {
		t.Error("instruction misses must not count as load misses")
	}
	// A store miss counts as an LLC miss but not an LLC *load* miss.
	h.Do(Access{Addr: 0x3000_0000, IsWrite: true})
	if h.DStats.LLCMisses != 2 || h.DStats.LLCLoadMisses != 1 {
		t.Errorf("store miss accounting wrong: %+v", h.DStats)
	}
}

func TestHierarchyL1LoadL2Hits(t *testing.T) {
	h := newTestHierarchy(t)
	m := h.Machine()
	// Load a line, evict it from L1 (stays in L2), reload → L1LoadL2Hit.
	h.Do(Access{Addr: 0x1000_0000})
	lines := (m.L1D.SizeBytes / 64) * 2
	for i := 1; i <= lines; i++ {
		h.Do(Access{Addr: uint64(0x1000_0000 + i*64)})
	}
	before := h.DStats.L1LoadL2Hits
	r := h.Do(Access{Addr: 0x1000_0000})
	if r.Level != LvlL2 {
		t.Skipf("expected L2 hit for this geometry, got %v", r.Level)
	}
	if h.DStats.L1LoadL2Hits != before+1 {
		t.Errorf("L1LoadL2Hits not incremented")
	}
}

func TestHierarchyReset(t *testing.T) {
	h := newTestHierarchy(t)
	h.Do(Access{Addr: 0x1000_0000})
	h.Reset()
	if h.DStats.L1Misses != 0 {
		t.Error("reset should clear stats")
	}
	r := h.Do(Access{Addr: 0x1000_0000})
	if r.Level != LvlMem {
		t.Error("reset should clear cache contents")
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{LvlL1: "L1", LvlL2: "L2", LvlL3: "L3", LvlMem: "mem"} {
		if l.String() != want {
			t.Errorf("Level %d string %q, want %q", l, l.String(), want)
		}
	}
	if Level(9).String() == "" {
		t.Error("unknown level should render")
	}
}

// Property: hits+misses equals total accesses, and a line just accessed
// always probes true.
func TestCacheInvariantProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c, err := NewCache(uarch.CacheConfig{SizeBytes: 2048, LineBytes: 64, Assoc: 2, LatCycles: 1})
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Probe(uint64(a)) {
				return false
			}
		}
		h, m := c.Stats()
		return h+m == uint64(len(addrs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// refTLB is the pre-rewrite map+linear-scan TLB, kept verbatim as the
// behavioral reference for the O(1) open-addressed implementation: the
// two must agree hit-for-hit on any access stream.
type refTLB struct {
	pages     []uint64
	valid     []bool
	lru       []uint64
	slot      map[uint64]int
	lastPage  uint64
	lastSlot  int
	lastValid bool
	stamp     uint64
	pageShift uint

	hits, misses uint64
}

func newRefTLB(cfg uarch.TLBConfig) *refTLB {
	t := &refTLB{
		pages: make([]uint64, cfg.Entries),
		valid: make([]bool, cfg.Entries),
		lru:   make([]uint64, cfg.Entries),
		slot:  make(map[uint64]int, cfg.Entries),
	}
	for cfg.PageBytes>>t.pageShift > 1 {
		t.pageShift++
	}
	return t
}

func (t *refTLB) access(addr uint64) bool {
	page := addr >> t.pageShift
	t.stamp++
	if t.lastValid && page == t.lastPage {
		t.hits++
		return true
	}
	if t.lastValid {
		t.lru[t.lastSlot] = t.stamp
		t.stamp++
	}
	if i, ok := t.slot[page]; ok {
		t.lru[i] = t.stamp
		t.lastPage = page
		t.lastSlot = i
		t.lastValid = true
		t.hits++
		return true
	}
	t.misses++
	victim := -1
	for i := range t.pages {
		if !t.valid[i] {
			victim = i
			break
		}
		if victim < 0 || t.lru[i] < t.lru[victim] {
			victim = i
		}
	}
	if t.valid[victim] {
		delete(t.slot, t.pages[victim])
	}
	t.pages[victim] = page
	t.valid[victim] = true
	t.lru[victim] = t.stamp
	t.slot[page] = victim
	t.lastPage = page
	t.lastSlot = victim
	t.lastValid = true
	return false
}

// TestTLBEquivalenceProperty drives the rewritten TLB and the reference
// implementation over randomized configurations and address streams and
// requires bit-identical hit/miss decisions and statistics. Streams mix
// sequential, strided, and looping-working-set phases so the fast path,
// the probe path, eviction, and re-reference after eviction are all
// exercised.
func TestTLBEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 200; trial++ {
		entries := 1 + rng.Intn(96)
		pageBytes := 1 << (6 + rng.Intn(9)) // 64B..16KB pages
		cfg := uarch.TLBConfig{Entries: entries, PageBytes: pageBytes, MissLat: 30}
		nt, err := NewTLB(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefTLB(cfg)
		// Working set a bit larger than the TLB forces steady eviction.
		span := uint64(entries+1+rng.Intn(entries+4)) * uint64(pageBytes)
		addr := uint64(rng.Int63())
		for op := 0; op < 4000; op++ {
			switch rng.Intn(4) {
			case 0: // repeat last address (fast path)
			case 1: // small stride, same or next page
				addr += uint64(rng.Intn(256))
			case 2: // hop within the working set
				addr = addr - addr%span + uint64(rng.Int63())%span
			default: // far jump to a fresh region
				addr = uint64(rng.Int63())
			}
			got, want := nt.Access(addr), ref.access(addr)
			if got != want {
				t.Fatalf("trial %d op %d entries=%d page=%d addr=%#x: new=%v ref=%v",
					trial, op, entries, pageBytes, addr, got, want)
			}
		}
		gh, gm := nt.Stats()
		if gh != ref.hits || gm != ref.misses {
			t.Fatalf("trial %d stats diverged: new %d/%d ref %d/%d",
				trial, gh, gm, ref.hits, ref.misses)
		}
	}
}

// TestTLBResetMatchesFresh mirrors the branch predictor's reset test:
// after heavy traffic, Reset must restore state bit-identical to a
// freshly constructed TLB — same fields, and the same decisions on a
// subsequent stream.
func TestTLBResetMatchesFresh(t *testing.T) {
	cfg := uarch.TLBConfig{Entries: 48, PageBytes: 4096, MissLat: 30}
	used, err := NewTLB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		used.Access(uint64(rng.Int63()))
	}
	used.Reset()
	fresh, err := NewTLB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(used, fresh) {
		t.Error("Reset state differs from NewTLB state")
	}
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Int63())
		if used.Access(addr) != fresh.Access(addr) {
			t.Fatalf("post-reset decision %d diverged", i)
		}
	}
	uh, um := used.Stats()
	fh, fm := fresh.Stats()
	if uh != fh || um != fm {
		t.Errorf("post-reset stats: used %d/%d fresh %d/%d", uh, um, fh, fm)
	}
}

// TestTLBAccessNoAllocs pins the allocation-free contract of the hot
// path.
func TestTLBAccessNoAllocs(t *testing.T) {
	tlb, err := NewTLB(uarch.TLBConfig{Entries: 16, PageBytes: 4096, MissLat: 30})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	addrs := make([]uint64, 1024)
	for i := range addrs {
		addrs[i] = uint64(rng.Int63())
	}
	var i int
	allocs := testing.AllocsPerRun(200, func() {
		tlb.Access(addrs[i%len(addrs)])
		i++
	})
	if allocs != 0 {
		t.Errorf("TLB.Access allocates %.1f times per call, want 0", allocs)
	}
}
