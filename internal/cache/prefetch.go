package cache

import (
	"fmt"

	"repro/internal/uarch"
)

// Prefetcher is a stride-detecting hardware prefetcher attached to one
// cache level (the style of the L2 streamers in Core/Nehalem-era parts).
// It watches the demand-miss address stream, detects constant-stride
// sequences per address region, and on a confident detection prefetches
// the next lines of the stream into the cache.
//
// Stock machine configurations ship with prefetching disabled so that the
// reproduced paper numbers stay exactly as documented; the prefetcher is
// an extension used by the prefetch example, tests and ablation benches
// to explore "what the paper's machines would look like with streamers".
type Prefetcher struct {
	cfg     uarch.PrefetchConfig
	target  *Cache
	entries []streamEntry
	mask    uint64

	issued uint64 // prefetches issued
	useful uint64 // prefetched lines that saw a demand hit
	// prefetched tracks lines brought in by the prefetcher that have not
	// yet been demanded, for usefulness accounting.
	prefetched map[uint64]bool
}

// streamEntry tracks one potential stride stream, indexed by region.
type streamEntry struct {
	lastLine   uint64
	stride     int64
	confidence int
	valid      bool
}

// NewPrefetcher builds a prefetcher feeding lines into target.
func NewPrefetcher(cfg uarch.PrefetchConfig, target *Cache) (*Prefetcher, error) {
	if target == nil {
		return nil, fmt.Errorf("cache: prefetcher needs a target cache")
	}
	if cfg.Streams <= 0 || cfg.Streams > 1<<16 || cfg.Streams&(cfg.Streams-1) != 0 {
		return nil, fmt.Errorf("cache: prefetcher streams %d must be a power of two in (0, 65536]", cfg.Streams)
	}
	if cfg.Degree <= 0 || cfg.Degree > 16 {
		return nil, fmt.Errorf("cache: prefetcher degree %d out of range (1..16)", cfg.Degree)
	}
	return &Prefetcher{
		cfg:        cfg,
		target:     target,
		entries:    make([]streamEntry, cfg.Streams),
		mask:       uint64(cfg.Streams - 1),
		prefetched: map[uint64]bool{},
	}, nil
}

// OnDemand observes one demand access (line-granular address) and issues
// prefetches when a stride stream is confident. hit reports whether the
// demand access hit in the target cache (for usefulness accounting).
func (p *Prefetcher) OnDemand(addr uint64, hit bool) {
	line := addr >> 6 // line-granular stream detection (64B lines)
	if hit && p.prefetched[line] {
		p.useful++
		delete(p.prefetched, line)
	}
	// Streams are tracked per 4KB region: accesses within one page train
	// one entry, so interleaved streams don't destroy each other.
	region := (addr >> 12) & p.mask
	e := &p.entries[region]
	if !e.valid {
		*e = streamEntry{lastLine: line, valid: true}
		return
	}
	stride := int64(line) - int64(e.lastLine)
	if stride == 0 {
		return // same line; no training signal
	}
	if stride == e.stride {
		if e.confidence < 4 {
			e.confidence++
		}
	} else {
		e.stride = stride
		e.confidence = 1
	}
	e.lastLine = line
	if e.confidence < 2 {
		return
	}
	// Confident: prefetch the next Degree lines of the stream.
	for d := 1; d <= p.cfg.Degree; d++ {
		next := int64(line) + e.stride*int64(d)
		if next <= 0 {
			break
		}
		nextAddr := uint64(next) << 6
		if !p.target.Probe(nextAddr) {
			p.target.Access(nextAddr) // allocate
			p.issued++
			p.prefetched[uint64(next)] = true
		}
	}
}

// Stats returns prefetches issued and the number that were subsequently
// demanded while still resident ("useful").
func (p *Prefetcher) Stats() (issued, useful uint64) { return p.issued, p.useful }

// Accuracy returns useful/issued (0 when nothing was issued).
func (p *Prefetcher) Accuracy() float64 {
	if p.issued == 0 {
		return 0
	}
	return float64(p.useful) / float64(p.issued)
}

// Reset clears training state and statistics.
func (p *Prefetcher) Reset() {
	for i := range p.entries {
		p.entries[i] = streamEntry{}
	}
	p.issued = 0
	p.useful = 0
	clear(p.prefetched)
}
