// Package branch implements the direction predictors used by the
// simulated cores: a bimodal (per-PC 2-bit counter) predictor, a gshare
// predictor (global history XOR PC indexing a 2-bit counter table), and a
// tournament predictor (a per-PC chooser selecting between bimodal and
// gshare components), plus a direct-mapped branch target buffer.
//
// Predictors are deliberately simple and deterministic: the paper's model
// only needs the *number* of mispredictions as a counter input, but the
// simulator needs realistic per-workload variation in that number across
// the three machine generations.
package branch

import (
	"fmt"

	"repro/internal/uarch"
)

// Predictor predicts conditional branch directions and learns outcomes.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
	// PredictUpdate returns the predicted direction for the branch at pc
	// and trains the predictor with the actual outcome in one pass. It is
	// exactly Predict followed by Update — the simulator always resolves
	// a branch immediately after predicting it, and the fused form
	// computes each table index once instead of up to three times.
	PredictUpdate(pc uint64, taken bool) bool
	// Reset restores the freshly-constructed state: a reset predictor
	// behaves bit-identically to a new one with the same configuration.
	Reset()
	// Name identifies the predictor for reporting.
	Name() string
}

// New constructs the predictor described by cfg.
func New(cfg uarch.PredictorConfig) (Predictor, error) {
	if cfg.TableBits <= 0 || cfg.TableBits > 24 {
		return nil, fmt.Errorf("branch: table bits %d out of range (1..24)", cfg.TableBits)
	}
	switch cfg.Kind {
	case uarch.PredBimodal:
		return newBimodal(cfg.TableBits), nil
	case uarch.PredGshare:
		if cfg.HistoryBits <= 0 || cfg.HistoryBits > 32 {
			return nil, fmt.Errorf("branch: history bits %d out of range (1..32)", cfg.HistoryBits)
		}
		return newGshare(cfg.TableBits, cfg.HistoryBits), nil
	case uarch.PredTournament:
		if cfg.HistoryBits <= 0 || cfg.HistoryBits > 32 {
			return nil, fmt.Errorf("branch: history bits %d out of range (1..32)", cfg.HistoryBits)
		}
		return newTournament(cfg.TableBits, cfg.HistoryBits), nil
	default:
		return nil, fmt.Errorf("branch: unknown predictor kind %v", cfg.Kind)
	}
}

// counter is a saturating 2-bit counter: 0,1 predict not-taken; 2,3 taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// ctrNext is counter.update as a lookup table, indexed c<<1|takenBit —
// the branchless form the per-µop PredictUpdate paths use.
var ctrNext = [8]counter{0, 1, 0, 2, 1, 3, 2, 3}

// Bimodal is a per-PC 2-bit counter table.
type Bimodal struct {
	table []counter
	mask  uint64
}

func newBimodal(bits int) *Bimodal {
	n := 1 << bits
	t := make([]counter, n)
	for i := range t {
		t[i] = 2 // weakly taken: most branches are taken
	}
	return &Bimodal{table: t, mask: uint64(n - 1)}
}

func (b *Bimodal) index(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements Predictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.index(pc)].taken() }

// Update implements Predictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.index(pc)
	b.table[i] = b.table[i].update(taken)
}

// PredictUpdate implements Predictor.
func (b *Bimodal) PredictUpdate(pc uint64, taken bool) bool {
	i := b.index(pc)
	c := b.table[i]
	b.table[i] = ctrNext[int(c)<<1|int(boolBit(taken))]
	return c.taken()
}

// Reset implements Predictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 2
	}
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return "bimodal" }

// Gshare XORs global history with the PC to index a 2-bit counter table.
type Gshare struct {
	table    []counter
	mask     uint64
	history  uint64
	histMask uint64
}

func newGshare(tableBits, histBits int) *Gshare {
	n := 1 << tableBits
	t := make([]counter, n)
	for i := range t {
		t[i] = 2
	}
	return &Gshare{table: t, mask: uint64(n - 1), histMask: (1 << histBits) - 1}
}

func (g *Gshare) index(pc uint64) uint64 { return ((pc >> 2) ^ g.history) & g.mask }

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool { return g.table[g.index(pc)].taken() }

// Update implements Predictor. The history is updated with the actual
// outcome (idealized immediate update, as in trace-driven simulators).
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	g.table[i] = g.table[i].update(taken)
	g.history = ((g.history << 1) | boolBit(taken)) & g.histMask
}

// PredictUpdate implements Predictor.
func (g *Gshare) PredictUpdate(pc uint64, taken bool) bool {
	i := g.index(pc)
	c := g.table[i]
	bit := boolBit(taken)
	g.table[i] = ctrNext[int(c)<<1|int(bit)]
	g.history = ((g.history << 1) | bit) & g.histMask
	return c.taken()
}

// Reset implements Predictor.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 2
	}
	g.history = 0
}

// Name implements Predictor.
func (g *Gshare) Name() string { return "gshare" }

// Tournament combines a bimodal and a gshare component with a per-PC
// 2-bit chooser (Alpha 21264 style).
type Tournament struct {
	bimodal *Bimodal
	gshare  *Gshare
	chooser []counter // 0,1 → use bimodal; 2,3 → use gshare
	mask    uint64
}

func newTournament(tableBits, histBits int) *Tournament {
	n := 1 << tableBits
	ch := make([]counter, n)
	for i := range ch {
		ch[i] = 2 // slight initial preference for the history component
	}
	return &Tournament{
		bimodal: newBimodal(tableBits),
		gshare:  newGshare(tableBits, histBits),
		chooser: ch,
		mask:    uint64(n - 1),
	}
}

// Predict implements Predictor.
func (t *Tournament) Predict(pc uint64) bool {
	if t.chooser[(pc>>2)&t.mask].taken() {
		return t.gshare.Predict(pc)
	}
	return t.bimodal.Predict(pc)
}

// Update implements Predictor: the chooser is trained toward whichever
// component was correct when they disagree.
func (t *Tournament) Update(pc uint64, taken bool) {
	pb := t.bimodal.Predict(pc)
	pg := t.gshare.Predict(pc)
	i := (pc >> 2) & t.mask
	if pb != pg {
		t.chooser[i] = t.chooser[i].update(pg == taken)
	}
	t.bimodal.Update(pc, taken)
	t.gshare.Update(pc, taken)
}

// PredictUpdate implements Predictor: one pass over the component
// tables — Predict followed by Update touches the bimodal table twice
// and the gshare table twice (the history only advances in Update, so
// both reads index the same entry); the fused form reads and writes
// each entry once with identical results.
func (t *Tournament) PredictUpdate(pc uint64, taken bool) bool {
	bi := t.bimodal.index(pc)
	cb := t.bimodal.table[bi]
	gi := t.gshare.index(pc)
	cg := t.gshare.table[gi]
	pb, pg := cb.taken(), cg.taken()
	ci := (pc >> 2) & t.mask
	pred := pb
	if t.chooser[ci].taken() {
		pred = pg
	}
	if pb != pg {
		t.chooser[ci] = t.chooser[ci].update(pg == taken)
	}
	bit := boolBit(taken)
	t.bimodal.table[bi] = ctrNext[int(cb)<<1|int(bit)]
	t.gshare.table[gi] = ctrNext[int(cg)<<1|int(bit)]
	t.gshare.history = ((t.gshare.history << 1) | bit) & t.gshare.histMask
	return pred
}

// Reset implements Predictor.
func (t *Tournament) Reset() {
	t.bimodal.Reset()
	t.gshare.Reset()
	for i := range t.chooser {
		t.chooser[i] = 2
	}
}

// Name implements Predictor.
func (t *Tournament) Name() string { return "tournament" }

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// BTB is a direct-mapped branch target buffer. A BTB miss on a taken
// branch costs a front-end redirect even when the direction was right.
type BTB struct {
	tags    []uint64
	targets []uint64
	mask    uint64
}

// NewBTB creates a BTB with 2^bits entries.
func NewBTB(bits int) *BTB {
	if bits <= 0 || bits > 24 {
		panic(fmt.Sprintf("branch: BTB bits %d out of range", bits))
	}
	n := 1 << bits
	return &BTB{
		tags:    make([]uint64, n),
		targets: make([]uint64, n),
		mask:    uint64(n - 1),
	}
}

// Lookup returns the stored target for pc and whether it hit.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	i := (pc >> 2) & b.mask
	if b.tags[i] == pc {
		return b.targets[i], true
	}
	return 0, false
}

// Insert records the target for pc.
func (b *BTB) Insert(pc, target uint64) {
	i := (pc >> 2) & b.mask
	b.tags[i] = pc
	b.targets[i] = target
}
