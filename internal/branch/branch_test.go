package branch

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/uarch"
)

func TestNewKinds(t *testing.T) {
	cases := []uarch.PredictorConfig{
		{Kind: uarch.PredBimodal, TableBits: 10},
		{Kind: uarch.PredGshare, TableBits: 10, HistoryBits: 8},
		{Kind: uarch.PredTournament, TableBits: 10, HistoryBits: 8},
	}
	names := []string{"bimodal", "gshare", "tournament"}
	for i, cfg := range cases {
		p, err := New(cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if p.Name() != names[i] {
			t.Errorf("got name %s, want %s", p.Name(), names[i])
		}
	}
}

func TestNewErrors(t *testing.T) {
	bad := []uarch.PredictorConfig{
		{Kind: uarch.PredBimodal, TableBits: 0},
		{Kind: uarch.PredBimodal, TableBits: 30},
		{Kind: uarch.PredGshare, TableBits: 10, HistoryBits: 0},
		{Kind: uarch.PredGshare, TableBits: 10, HistoryBits: 40},
		{Kind: uarch.PredTournament, TableBits: 10, HistoryBits: 0},
		{Kind: uarch.PredictorKind(9), TableBits: 10},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error for %+v", i, cfg)
		}
	}
}

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	c = c.update(false)
	if c != 0 {
		t.Error("counter should saturate at 0")
	}
	for i := 0; i < 5; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter should saturate at 3, got %d", c)
	}
	if !c.taken() {
		t.Error("3 should predict taken")
	}
	if counter(1).taken() {
		t.Error("1 should predict not-taken")
	}
}

// accuracy trains a predictor on a synthetic branch stream and returns
// the fraction of correct predictions.
func accuracy(p Predictor, outcomes func(i int) (pc uint64, taken bool), n int) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		pc, taken := outcomes(i)
		if p.Predict(pc) == taken {
			correct++
		}
		p.Update(pc, taken)
	}
	return float64(correct) / float64(n)
}

func TestBimodalLearnsBias(t *testing.T) {
	p := newBimodal(10)
	// Strongly biased branch: ~always taken.
	acc := accuracy(p, func(i int) (uint64, bool) { return 0x4000, true }, 1000)
	if acc < 0.99 {
		t.Errorf("bimodal accuracy on constant branch %.3f", acc)
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	// Period-4 pattern TTNT: impossible for bimodal, easy for gshare.
	pattern := []bool{true, true, false, true}
	pg := newGshare(12, 8)
	accG := accuracy(pg, func(i int) (uint64, bool) { return 0x4000, pattern[i%4] }, 4000)
	pb := newBimodal(12)
	accB := accuracy(pb, func(i int) (uint64, bool) { return 0x4000, pattern[i%4] }, 4000)
	if accG < 0.95 {
		t.Errorf("gshare accuracy on periodic pattern %.3f, want >0.95", accG)
	}
	if accB > 0.85 {
		t.Errorf("bimodal accuracy on periodic pattern %.3f, unexpectedly high", accB)
	}
}

func TestTournamentBeatsComponentsOnMixedWorkload(t *testing.T) {
	// Half the branch sites are biased (bimodal-friendly), half follow a
	// global pattern (gshare-friendly). The tournament should be at least
	// as good as the weaker component on each site class.
	mixed := func(i int) (uint64, bool) {
		site := uint64(i % 8)
		pc := 0x4000 + site*4
		if site < 4 {
			return pc, true // biased sites
		}
		return pc, (i/8)%2 == 0 // pattern sites
	}
	accT := accuracy(newTournament(12, 10), mixed, 8000)
	if accT < 0.9 {
		t.Errorf("tournament accuracy %.3f on mixed workload, want > 0.9", accT)
	}
}

func TestRandomBranchesNearChance(t *testing.T) {
	r := rng.New(77)
	for _, p := range []Predictor{newBimodal(12), newGshare(12, 10), newTournament(12, 10)} {
		acc := accuracy(p, func(i int) (uint64, bool) { return 0x4000, r.Bool(0.5) }, 20000)
		if acc < 0.40 || acc > 0.60 {
			t.Errorf("%s accuracy on random branches %.3f, want ~0.5", p.Name(), acc)
		}
	}
}

func TestAliasingDistinctPCs(t *testing.T) {
	// Two branches with opposite bias at different PCs must not destroy
	// each other in a big enough bimodal table.
	p := newBimodal(12)
	acc := accuracy(p, func(i int) (uint64, bool) {
		if i%2 == 0 {
			return 0x4000, true
		}
		return 0x8004, false
	}, 4000)
	if acc < 0.99 {
		t.Errorf("two biased branches accuracy %.3f", acc)
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(8)
	if _, ok := b.Lookup(0x4000); ok {
		t.Error("empty BTB should miss")
	}
	b.Insert(0x4000, 0x5000)
	if tgt, ok := b.Lookup(0x4000); !ok || tgt != 0x5000 {
		t.Errorf("BTB lookup got (%#x,%v)", tgt, ok)
	}
	// Conflicting entry evicts (direct mapped): same index, different tag.
	conflict := uint64(0x4000 + (1<<8)*4)
	b.Insert(conflict, 0x6000)
	if _, ok := b.Lookup(0x4000); ok {
		t.Error("conflicting insert should evict")
	}
}

func TestBTBPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewBTB(0)
}

func TestStockConfigsConstruct(t *testing.T) {
	for _, m := range uarch.StockMachines() {
		if _, err := New(m.Predictor); err != nil {
			t.Errorf("%s predictor: %v", m.Name, err)
		}
	}
}

// TestPredictUpdateMatchesPredictThenUpdate pins the fused hot path:
// for every predictor kind, a PredictUpdate stream must return exactly
// what Predict would have and leave the predictor in exactly the state
// Predict+Update would — the simulator's bit-identity depends on it.
// Small tables force heavy aliasing so the single-index fusion is
// exercised where it could plausibly diverge.
func TestPredictUpdateMatchesPredictThenUpdate(t *testing.T) {
	mk := func() []Predictor {
		return []Predictor{newBimodal(4), newGshare(4, 6), newTournament(4, 6)}
	}
	ref, fused := mk(), mk()
	r := rng.New(99)
	for i := 0; i < 50000; i++ {
		pc := uint64(r.Uint64n(64)) << 2
		taken := r.Bool(0.6)
		for j := range ref {
			want := ref[j].Predict(pc)
			ref[j].Update(pc, taken)
			if got := fused[j].PredictUpdate(pc, taken); got != want {
				t.Fatalf("%s: step %d: PredictUpdate = %v, Predict+Update = %v",
					ref[j].Name(), i, got, want)
			}
		}
	}
	// The states converged too: both streams predict identically on a
	// fresh probe sweep.
	for j := range ref {
		for pc := uint64(0); pc < 64<<2; pc += 4 {
			if ref[j].Predict(pc) != fused[j].Predict(pc) {
				t.Errorf("%s: diverged state at pc %#x after identical streams", ref[j].Name(), pc)
			}
		}
	}
}

// TestResetMatchesFresh pins Reset: a trained-then-reset predictor must
// behave bit-identically to a newly constructed one (the simulator
// reuses one predictor across runs instead of reallocating).
func TestResetMatchesFresh(t *testing.T) {
	mk := func() []Predictor {
		return []Predictor{newBimodal(6), newGshare(6, 8), newTournament(6, 8)}
	}
	used, fresh := mk(), mk()
	r := rng.New(123)
	for i := 0; i < 20000; i++ {
		pc := uint64(r.Uint64n(256)) << 2
		for j := range used {
			used[j].PredictUpdate(pc, r.Bool(0.5))
		}
	}
	for j := range used {
		used[j].Reset()
	}
	r2 := rng.New(321)
	for i := 0; i < 20000; i++ {
		pc := uint64(r2.Uint64n(256)) << 2
		taken := r2.Bool(0.7)
		for j := range used {
			if used[j].PredictUpdate(pc, taken) != fresh[j].PredictUpdate(pc, taken) {
				t.Fatalf("%s: step %d: reset predictor diverged from a fresh one",
					used[j].Name(), i)
			}
		}
	}
}
