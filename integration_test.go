// Cross-module integration tests: the full pipeline from workload
// generation through simulation, calibration, model fitting and stack
// construction, exercised end-to-end with the public flows the examples
// and CLIs use.
package repro

import (
	"math"
	"testing"

	"repro/internal/calibrator"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/suites"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// pipeline runs a suite subset on a machine and fits a model using
// calibrated (not configured) latencies — the paper's full Figure 1 flow.
func pipeline(t *testing.T, m *uarch.Machine, numOps, stride int) (*core.Model, []core.Observation) {
	t.Helper()
	cal, err := calibrator.Calibrate(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(m)
	if err != nil {
		t.Fatal(err)
	}
	suite := suites.CPU2000Like(suites.Options{NumOps: numOps})
	var obs []core.Observation
	for i, w := range suite.Workloads {
		if i%stride != 0 {
			continue
		}
		r, err := s.Run(trace.New(w))
		if err != nil {
			t.Fatal(err)
		}
		o, err := core.ObservationFrom(w.Name, &r.Counters)
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, o)
	}
	model, err := core.Fit(cal.Estimates.Params(m), obs, core.FitOptions{Starts: 8})
	if err != nil {
		t.Fatal(err)
	}
	return model, obs
}

func TestFullPipelineWithCalibratedLatencies(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	model, obs := pipeline(t, uarch.CoreTwo(), 60000, 2)
	pred := model.PredictAll(obs)
	meas := make([]float64, len(obs))
	for i := range obs {
		meas[i] = obs[i].MeasuredCPI
	}
	if mare := stats.MARE(pred, meas); mare > 0.20 {
		t.Errorf("calibrated-parameter pipeline MARE %.1f%%, want < 20%%", 100*mare)
	}
	// Stacks must decompose the prediction exactly.
	for _, o := range obs[:5] {
		st := model.Stack(o.Feat)
		if math.Abs(st.Total()-model.PredictCPI(o.Feat)) > 1e-9 {
			t.Errorf("%s: stack does not sum to prediction", o.Name)
		}
	}
}

func TestWholePipelineDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	m1, obs1 := pipeline(t, uarch.CoreI7(), 30000, 5)
	m2, obs2 := pipeline(t, uarch.CoreI7(), 30000, 5)
	if m1.P != m2.P {
		t.Errorf("fitted parameters differ across identical pipelines:\n%+v\n%+v", m1.P, m2.P)
	}
	for i := range obs1 {
		if obs1[i].MeasuredCPI != obs2[i].MeasuredCPI {
			t.Fatalf("measured CPI differs for %s", obs1[i].Name)
		}
	}
}

func TestModelStackTracksGroundTruthTotals(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	// The model's predicted total CPI must track the simulator's measured
	// total on the training workloads (that is what the fit optimizes);
	// spot-check the agreement workload by workload.
	m := uarch.CoreTwo()
	s, err := sim.New(m)
	if err != nil {
		t.Fatal(err)
	}
	suite := suites.CPU2006Like(suites.Options{NumOps: 60000})
	var obs []core.Observation
	truthTotals := map[string]float64{}
	for i, w := range suite.Workloads {
		if i%3 != 0 {
			continue
		}
		r, err := s.Run(trace.New(w))
		if err != nil {
			t.Fatal(err)
		}
		o, err := core.ObservationFrom(w.Name, &r.Counters)
		if err != nil {
			t.Fatal(err)
		}
		obs = append(obs, o)
		ts := r.Truth.CPIStack(r.Counters.Uops)
		truthTotals[w.Name] = ts.Total()
	}
	model, err := core.Fit(m.Params(), obs, core.FitOptions{Starts: 8})
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, o := range obs {
		if stats.RelErr(model.PredictCPI(o.Feat), truthTotals[o.Name]) > 0.35 {
			bad++
		}
	}
	if frac := float64(bad) / float64(len(obs)); frac > 0.25 {
		t.Errorf("%.0f%% of workloads deviate >35%% from ground-truth totals", 100*frac)
	}
}

func TestCharacterizationOnSimulatedSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test is slow")
	}
	model, obs := pipeline(t, uarch.PentiumFour(), 40000, 4)
	chars := core.Characterize(model, obs)
	if len(chars) != len(obs) {
		t.Fatalf("characterized %d of %d workloads", len(chars), len(obs))
	}
	seen := map[string]bool{}
	for _, c := range chars {
		if seen[c.Name] {
			t.Errorf("duplicate characterization for %s", c.Name)
		}
		seen[c.Name] = true
		if c.PredictedCPI <= 0 {
			t.Errorf("%s: non-positive predicted CPI", c.Name)
		}
	}
	// On the deep-pipelined P4 at short run lengths, branch and memory
	// dominate; the classifier must at least spread workloads across more
	// than one bottleneck class.
	classes := map[sim.Component]bool{}
	for _, c := range chars {
		classes[c.Dominant] = true
	}
	if len(classes) < 2 {
		t.Errorf("all workloads classified identically (%v)", classes)
	}
}
