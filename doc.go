// Package repro is a from-scratch Go reproduction of Eyerman, Hoste and
// Eeckhout, "Mechanistic-Empirical Processor Performance Modeling for
// Constructing CPI Stacks on Real Hardware" (ISPASS 2011).
//
// The paper's contribution — the gray-box CPI model of Equations (1)–(6),
// its inference by non-linear regression on performance counters, and
// CPI/CPI-delta stacks — lives in internal/core. Everything the paper
// merely *uses* is built here too: a cycle-level out-of-order simulator
// standing in for the three Intel machines (internal/sim + cache, branch,
// uarch), synthetic SPEC-like workload suites (internal/suites +
// internal/trace), a latency calibrator (internal/calibrator), the
// regression and ANN machinery (internal/regress, internal/ann), and an
// experiment harness regenerating every table and figure
// (internal/experiments, cmd/experiments).
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results. The
// top-level bench_test.go regenerates each table/figure as a benchmark.
package repro
