// Package repro is a from-scratch Go reproduction of Eyerman, Hoste and
// Eeckhout, "Mechanistic-Empirical Processor Performance Modeling for
// Constructing CPI Stacks on Real Hardware" (ISPASS 2011).
//
// The paper's contribution — the gray-box CPI model of Equations (1)–(6),
// its inference by non-linear regression on performance counters, and
// CPI/CPI-delta stacks — lives in internal/core. Everything the paper
// merely *uses* is built here too: the machines, the workloads, the
// counters, the calibration harness, and the experiment pipeline that
// regenerates every table and figure.
//
// # Package index
//
// The hardware substrate (stands in for the paper's three Intel boxes):
//
//   - internal/uarch — machine configurations: Pentium 4, Core 2,
//     Core i7 (Tables 1–2), a registry of named machines, and derived
//     variants (base + overrides) for scenario files and sweeps.
//   - internal/sim — the cycle-level out-of-order simulator with
//     FMT-style ground-truth CPI accounting; internal/cache and
//     internal/branch supply its cache/TLB hierarchy and branch
//     predictors.
//   - internal/perfctr — the performance-counter façade the model
//     reads, standing in for perfex/perfmon.
//   - internal/calibrator — latency microbenchmarks recovering the
//     machine parameters the model consumes (the paper's Calibrator).
//
// The workloads:
//
//   - internal/trace — the synthetic µop-trace generator
//     (deterministic, seeded, phase- and burst-capable) and the
//     versioned .mtrc trace file format: Encode/Decode with checksums,
//     WriteFile/ReadFile, and spec-level loading for file-backed
//     workloads.
//   - internal/suites — the SPEC-like suites (cpu2000, cpu2006), the
//     non-stationary families (phased, bursty), and the suite registry
//     including file-backed suites ("file:PATH", RegisterFile).
//   - internal/rng — the splittable deterministic RNG and the
//     Zipf/geometric distributions the generator draws from.
//
// The model and its baselines:
//
//   - internal/core — Equations (1)–(6), the mechanistic-empirical
//     model, its fitting, CPI stacks and delta stacks.
//   - internal/regress — non-linear least squares with multi-start.
//   - internal/ann — the ANN baseline of Figure 4.
//   - internal/stats — sample statistics, Student-t intervals, and
//     relative-error helpers for the multi-seed layer.
//
// The experiment pipeline and serving:
//
//   - internal/experiments — campaigns (the paper grid and declarative
//     scenarios), every table/figure emitter, one-axis sweeps,
//     multi-axis grid plans with shared trace replay, design-space
//     optimization, and multi-seed replication sweeps.
//   - internal/runstore — the disk-backed content-addressed cache of
//     simulation results keyed by machine config × workload spec ×
//     simulator version.
//   - internal/serve — the HTTP/JSON v1 API (predict, sweep, plan,
//     optimize, seeds, async jobs) over the same provider path the
//     CLIs use.
//   - internal/prof, internal/stack — pprof wiring and small shared
//     plumbing.
//
// The commands:
//
//   - cmd/experiments — regenerate the paper's tables and figures, or
//     run a declarative scenario.
//   - cmd/mecpi — fit one model, print one CPI stack.
//   - cmd/sweep — parameter sweeps, grid plans (-plan), design-space
//     search (-optimize), and seed sweeps (-seeds).
//   - cmd/tracetool — generate, export, inspect, import and convert
//     .mtrc trace files.
//   - cmd/mecpid — the long-running model-serving daemon.
//   - cmd/calibrate — run the latency calibrator.
//   - cmd/benchjson — benchmark snapshots and the CI regression gate.
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// substitutions (§14 documents the trace file format), and EXPERIMENTS.md
// for paper-vs-measured results. The top-level bench_test.go regenerates
// each table/figure as a benchmark.
package repro
