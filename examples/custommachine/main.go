// Custommachine: model a processor that does not exist.
//
// The library is not limited to the three paper machines. This example
// defines a hypothetical "core2-deep" — a Core 2 with a doubled ROB, a
// much deeper front end, and slower memory — then runs the full pipeline
// against it: calibrate its latencies with microbenchmarks (never trust
// the spec sheet), collect counters on a workload subset, fit a model,
// and compare its CPI stack for a branchy workload against stock Core 2
// to see the deeper pipeline's branch penalty appear in the stack.
//
// Run with: go run ./examples/custommachine
package main

import (
	"fmt"
	"log"

	"repro/internal/calibrator"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stack"
	"repro/internal/suites"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// deepCore2 is the hypothetical machine.
func deepCore2() *uarch.Machine {
	m := uarch.CoreTwo()
	m.Name = "core2-deep"
	m.FrontEndDepth = 28 // much deeper pipeline
	m.ROBSize = 192      // doubled window
	m.IQSize = 64
	m.MemLat = 240 // slower memory
	return m
}

func fitFor(m *uarch.Machine, suite suites.Suite, params uarch.ModelParams) (*core.Model, []core.Observation) {
	s, err := sim.New(m)
	if err != nil {
		log.Fatal(err)
	}
	var obs []core.Observation
	for _, w := range suite.Workloads {
		res, err := s.Run(trace.New(w))
		if err != nil {
			log.Fatal(err)
		}
		o, err := core.ObservationFrom(w.Name, &res.Counters)
		if err != nil {
			log.Fatal(err)
		}
		obs = append(obs, o)
	}
	model, err := core.Fit(params, obs, core.FitOptions{Starts: 10})
	if err != nil {
		log.Fatal(err)
	}
	return model, obs
}

func main() {
	custom := deepCore2()
	if err := custom.Validate(); err != nil {
		log.Fatal(err)
	}

	// Calibrate the custom machine the honest way: microbenchmarks.
	fmt.Printf("calibrating %s…\n", custom.Name)
	cal, err := calibrator.Calibrate(custom)
	if err != nil {
		log.Fatal(err)
	}
	params := cal.Estimates.Params(custom)
	fmt.Printf("  measured: L2=%d mem=%d TLB=%d cycles\n\n",
		params.L2Lat, params.MemLat, params.TLBLat)

	suite := suites.CPU2000Like(suites.Options{NumOps: 100000})
	fmt.Printf("fitting models for core2 and %s…\n", custom.Name)
	stockModel, stockObs := fitFor(uarch.CoreTwo(), suite, uarch.CoreTwo().Params())
	customModel, customObs := fitFor(custom, suite, params)

	// twolf is the branchiest CPU2000 workload in the suite tables;
	// the deep pipeline should blow up its branch component.
	pick := func(obs []core.Observation) core.Observation {
		for _, o := range obs {
			if o.Name == "twolf" {
				return o
			}
		}
		return obs[0]
	}
	so, co := pick(stockObs), pick(customObs)

	fmt.Println()
	fmt.Print(stack.RenderCPIStack("twolf on stock core2", stockModel.Stack(so.Feat)))
	fmt.Println()
	fmt.Print(stack.RenderCPIStack("twolf on core2-deep", customModel.Stack(co.Feat)))

	sb := stockModel.Stack(so.Feat).Cycles[sim.CompBranch]
	cb := customModel.Stack(co.Feat).Cycles[sim.CompBranch]
	fmt.Printf("\nbranch component: %.3f → %.3f CPI (×%.1f from the deeper pipeline)\n",
		sb, cb, cb/sb)
}
