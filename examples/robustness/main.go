// Robustness: reproduce the paper's Section 5.2 experiment in miniature.
//
// Two models are inferred for the Core i7-like machine — one from the
// CPU2000-like suite, one from the CPU2006-like suite — and both are
// evaluated on CPU2006. A robust (non-overfitting) model transfers: the
// CPU2000-trained model should be only slightly less accurate than the
// in-suite one. For contrast, the same transfer is done with a linear
// regression on identical inputs, which degrades much more.
//
// Run with: go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/suites"
	"repro/internal/trace"
	"repro/internal/uarch"
)

func observe(s *sim.Simulator, suite suites.Suite) []core.Observation {
	var obs []core.Observation
	for _, w := range suite.Workloads {
		res, err := s.Run(trace.New(w))
		if err != nil {
			log.Fatal(err)
		}
		o, err := core.ObservationFrom(w.Name, &res.Counters)
		if err != nil {
			log.Fatal(err)
		}
		obs = append(obs, o)
	}
	return obs
}

func mare(pred []float64, obs []core.Observation) float64 {
	meas := make([]float64, len(obs))
	for i := range obs {
		meas[i] = obs[i].MeasuredCPI
	}
	return stats.MARE(pred, meas)
}

func main() {
	machine := uarch.CoreI7()
	s, err := sim.New(machine)
	if err != nil {
		log.Fatal(err)
	}
	const ops = 120000
	fmt.Println("simulating both suites on", machine.Name, "…")
	train00 := observe(s, suites.CPU2000Like(suites.Options{NumOps: ops}))
	eval06 := observe(s, suites.CPU2006Like(suites.Options{NumOps: ops}))

	fit := func(obs []core.Observation) *core.Model {
		m, err := core.Fit(machine.Params(), obs, core.FitOptions{Starts: 10})
		if err != nil {
			log.Fatal(err)
		}
		return m
	}
	fmt.Println("fitting the cpu2000 and cpu2006 models…")
	model00 := fit(train00)
	model06 := fit(eval06)

	inSuite := mare(model06.PredictAll(eval06), eval06)
	transfer := mare(model00.PredictAll(eval06), eval06)

	// The linear-regression contrast, trained on the same features.
	X := make([][]float64, len(train00))
	y := make([]float64, len(train00))
	for i, o := range train00 {
		X[i] = o.Feat.Vector()
		y[i] = o.MeasuredCPI
	}
	lin, err := regress.FitLinearRelative(X, y)
	if err != nil {
		log.Fatal(err)
	}
	linPred := make([]float64, len(eval06))
	for i, o := range eval06 {
		linPred[i] = lin.Predict(o.Feat.Vector())
	}
	linTransfer := mare(linPred, eval06)

	fmt.Println()
	fmt.Println("evaluation on cpu2006 (avg CPI error):")
	fmt.Printf("  mechanistic-empirical, trained on cpu2006 : %5.1f%%  (in-suite)\n", 100*inSuite)
	fmt.Printf("  mechanistic-empirical, trained on cpu2000 : %5.1f%%  (transferred)\n", 100*transfer)
	fmt.Printf("  linear regression,     trained on cpu2000 : %5.1f%%  (transferred)\n", 100*linTransfer)
	fmt.Println()
	if transfer < linTransfer {
		fmt.Println("→ the gray-box structure transfers across suites; the black-box model overfits.")
	} else {
		fmt.Println("→ unexpected: the linear model transferred better on this sample.")
	}
}
